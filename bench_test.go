package repro

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the figure at QuickScale (a full multiprocessor
// simulation sweep), so run with -benchtime=1x for a single regeneration:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// The benchmark reports, besides wall time, the simulated instructions per
// wall-clock second of the figure's runs (sim_MIPS) — the simulator's own
// throughput metric.

import (
	"testing"

	"repro/internal/experiments"
)

func benchFigure(b *testing.B, run func(experiments.Scale) (*experiments.Result, error)) {
	b.ReportAllocs()
	var instr uint64 // accumulated across iterations, reported once
	for i := 0; i < b.N; i++ {
		res, err := run(experiments.QuickScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Reports {
			instr += r.Instructions
		}
	}
	b.ReportMetric(float64(instr)/1e6/b.Elapsed().Seconds(), "sim_Minstr/s")
}

func BenchmarkFig2a(b *testing.B)     { benchFigure(b, experiments.Fig2a) }
func BenchmarkFig2b(b *testing.B)     { benchFigure(b, experiments.Fig2b) }
func BenchmarkFig2c(b *testing.B)     { benchFigure(b, experiments.Fig2c) }
func BenchmarkFig2dg(b *testing.B)    { benchFigure(b, experiments.Fig2dg) }
func BenchmarkFig3a(b *testing.B)     { benchFigure(b, experiments.Fig3a) }
func BenchmarkFig3b(b *testing.B)     { benchFigure(b, experiments.Fig3b) }
func BenchmarkFig3c(b *testing.B)     { benchFigure(b, experiments.Fig3c) }
func BenchmarkFig3dg(b *testing.B)    { benchFigure(b, experiments.Fig3dg) }
func BenchmarkFig4(b *testing.B)      { benchFigure(b, experiments.Fig4) }
func BenchmarkFig5(b *testing.B)      { benchFigure(b, experiments.Fig5) }
func BenchmarkFig6(b *testing.B)      { benchFigure(b, experiments.Fig6) }
func BenchmarkFig7a(b *testing.B)     { benchFigure(b, experiments.Fig7a) }
func BenchmarkFig7b(b *testing.B)     { benchFigure(b, experiments.Fig7b) }
func BenchmarkMissRates(b *testing.B) { benchFigure(b, experiments.MissRates) }
func BenchmarkMigratory(b *testing.B) { benchFigure(b, experiments.MigratoryCharacterization) }

// Ablations and extensions (see DESIGN.md per-experiment index).
func BenchmarkExtLineSize(b *testing.B) { benchFigure(b, experiments.AblationLineSize) }
func BenchmarkExtFlushInv(b *testing.B) { benchFigure(b, experiments.AblationFlushInvalidate) }
func BenchmarkExtRestart(b *testing.B)  { benchFigure(b, experiments.AblationBranchPenalty) }
func BenchmarkExtMigProto(b *testing.B) { benchFigure(b, experiments.MigratoryProtocol) }
func BenchmarkExtUniSB(b *testing.B)    { benchFigure(b, experiments.UniStreamBuffer) }
func BenchmarkExtBTBPf(b *testing.B)    { benchFigure(b, experiments.BTBPrefetch) }
func BenchmarkExtValidate(b *testing.B) { benchFigure(b, experiments.Validation) }

// BenchmarkSimulatorOLTP measures raw simulator throughput on one OLTP
// configuration (no sweep).
func BenchmarkSimulatorOLTP(b *testing.B) {
	b.ReportAllocs()
	var instr uint64
	for i := 0; i < b.N; i++ {
		rep, err := RunOLTP(DefaultConfig(), QuickScale, "bench", HintNone)
		if err != nil {
			b.Fatal(err)
		}
		instr += rep.Instructions
	}
	b.ReportMetric(float64(instr)/1e6/b.Elapsed().Seconds(), "sim_Minstr/s")
}

// BenchmarkSimulatorDSS measures raw simulator throughput on one DSS
// configuration.
func BenchmarkSimulatorDSS(b *testing.B) {
	b.ReportAllocs()
	var instr uint64
	for i := 0; i < b.N; i++ {
		rep, err := RunDSS(DefaultConfig(), QuickScale, "bench")
		if err != nil {
			b.Fatal(err)
		}
		instr += rep.Instructions
	}
	b.ReportMetric(float64(instr)/1e6/b.Elapsed().Seconds(), "sim_Minstr/s")
}

// The Parallel arms run the same configurations through the epoch-parallel
// engine (SimThreads = 4, clamped to GOMAXPROCS by the pool). Results are
// bit-identical to the serial arms — the SimThreads identity tests assert
// it — so any throughput difference is pure engine overhead or speedup.
// On a single-CPU host the pool clamps to one worker and this measures the
// engine's dispatch overhead over the serial span loop.

// BenchmarkSimulatorOLTPParallel is BenchmarkSimulatorOLTP under the
// epoch-parallel engine.
func BenchmarkSimulatorOLTPParallel(b *testing.B) {
	b.ReportAllocs()
	sc := QuickScale
	sc.SimThreads = 4
	var instr uint64
	for i := 0; i < b.N; i++ {
		rep, err := RunOLTP(DefaultConfig(), sc, "bench", HintNone)
		if err != nil {
			b.Fatal(err)
		}
		instr += rep.Instructions
	}
	b.ReportMetric(float64(instr)/1e6/b.Elapsed().Seconds(), "sim_Minstr/s")
}

// BenchmarkSimulatorDSSParallel is BenchmarkSimulatorDSS under the
// epoch-parallel engine.
func BenchmarkSimulatorDSSParallel(b *testing.B) {
	b.ReportAllocs()
	sc := QuickScale
	sc.SimThreads = 4
	var instr uint64
	for i := 0; i < b.N; i++ {
		rep, err := RunDSS(DefaultConfig(), sc, "bench")
		if err != nil {
			b.Fatal(err)
		}
		instr += rep.Instructions
	}
	b.ReportMetric(float64(instr)/1e6/b.Elapsed().Seconds(), "sim_Minstr/s")
}
