// Package repro is a from-scratch reproduction of Ranganathan,
// Gharachorloo, Adve & Barroso, "Performance of Database Workloads on
// Shared-Memory Systems with Out-of-Order Processors" (ASPLOS 1998).
//
// It provides a cycle-level, trace-driven simulator of a CC-NUMA
// shared-memory multiprocessor built from aggressive out-of-order
// processors (internal/cpu, internal/memsys, internal/coherence,
// internal/mesh), a miniature database engine standing in for Oracle
// (internal/db), OLTP (TPC-B style) and DSS (TPC-D Query 6 style) workload
// generators (internal/workload), and a harness that regenerates every
// table and figure of the paper's evaluation (internal/experiments).
//
// This package is the public facade: it re-exports the configuration,
// machine, workload, and experiment types so that applications depend only
// on the module root.
//
// Quick start:
//
//	cfg := repro.DefaultConfig()
//	rep, err := repro.RunOLTP(cfg, repro.QuickScale, "my-run", repro.HintNone)
//	fmt.Printf("IPC %.2f\n", rep.IPC(cfg.Nodes))
//
// Or drive the machine directly with your own instruction streams:
//
//	m, _ := repro.NewMachine(cfg)
//	m.AddProcess(0, myStream) // any repro.Stream implementation
//	rep, _ := m.Run(repro.RunOptions{Label: "custom"})
package repro

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload/dss"
	"repro/internal/workload/oltp"
)

// Machine configuration (Figure 1 of the paper).
type (
	// Config holds every machine parameter; start from DefaultConfig.
	Config = config.Config
	// ConsistencyModel selects SC, PC, or RC.
	ConsistencyModel = config.ConsistencyModel
	// ConsistencyImpl selects plain, +prefetch, or +speculative-load
	// implementations (Section 3.4).
	ConsistencyImpl = config.ConsistencyImpl
)

// Consistency models and implementation levels.
const (
	RC = config.RC
	PC = config.PC
	SC = config.SC

	ImplPlain       = config.ImplPlain
	ImplPrefetch    = config.ImplPrefetch
	ImplSpeculative = config.ImplSpeculative
)

// DefaultConfig returns the paper's base system (Figure 1): 4 nodes,
// 4-way-issue out-of-order cores with 64-entry windows, 128KB L1s, 8MB L2,
// 8 MSHRs, release consistency.
func DefaultConfig() Config { return config.Default() }

// The simulated machine.
type (
	// Machine is the whole simulated multiprocessor.
	Machine = core.System
	// RunOptions controls a simulation (warm-up, cycle bound).
	RunOptions = core.RunOptions
	// Report is the statistics report of one run.
	Report = stats.Report
	// Breakdown is execution time split into the paper's categories.
	Breakdown = stats.Breakdown
	// Category indexes a Breakdown component.
	Category = stats.Category
)

// Execution-time categories (indexes into Breakdown).
const (
	CatBusy       = stats.Busy
	CatCPUStall   = stats.CPUStall
	CatInstr      = stats.Instr
	CatReadL1     = stats.ReadL1
	CatReadL2     = stats.ReadL2
	CatReadLocal  = stats.ReadLocal
	CatReadRemote = stats.ReadRemote
	CatReadDirty  = stats.ReadDirty
	CatReadDTLB   = stats.ReadDTLB
	CatWrite      = stats.Write
	CatSync       = stats.Sync
)

// NewMachine builds a machine for cfg.
func NewMachine(cfg Config) (*Machine, error) { return core.NewSystem(cfg) }

// Instruction traces.
type (
	// Stream produces dynamic instructions (implemented by the workload
	// generators and by trace-file readers).
	Stream = trace.Stream
	// Instr is one dynamic instruction.
	Instr = trace.Instr
)

// Workloads.
type (
	// OLTPConfig scales the TPC-B style workload.
	OLTPConfig = oltp.Config
	// OLTPWorkload generates OLTP server-process streams.
	OLTPWorkload = oltp.Workload
	// DSSConfig scales the TPC-D Query 6 style workload.
	DSSConfig = dss.Config
	// DSSWorkload generates parallel-query-server streams.
	DSSWorkload = dss.Workload
	// HintLevel selects the Section 4.2 software flush/prefetch hints.
	HintLevel = oltp.HintLevel
)

// Software-hint levels for the OLTP workload (Figure 7b).
const (
	HintNone          = oltp.HintNone
	HintFlush         = oltp.HintFlush
	HintFlushPrefetch = oltp.HintFlushPrefetch
)

// NewOLTP builds the shared OLTP workload (engine + code layout).
func NewOLTP(cfg OLTPConfig) *OLTPWorkload { return oltp.New(cfg) }

// DefaultOLTPConfig returns the paper-matched OLTP scaling for a machine
// with nodes processors (8 server processes per CPU).
func DefaultOLTPConfig(nodes int) OLTPConfig { return oltp.DefaultConfig(nodes) }

// NewDSS builds the shared DSS workload.
func NewDSS(cfg DSSConfig) *DSSWorkload { return dss.New(cfg) }

// DefaultDSSConfig returns the paper-matched DSS scaling (4 query servers
// per CPU).
func DefaultDSSConfig(nodes int) DSSConfig { return dss.DefaultConfig(nodes) }

// Experiments (every table and figure of the paper).
type (
	// Scale controls how much work each experiment simulates.
	Scale = experiments.Scale
	// Result is one experiment's reports and rendered tables.
	Result = experiments.Result
)

// Experiment scales.
var (
	// DefaultScale is the EXPERIMENTS.md scale.
	DefaultScale = experiments.DefaultScale
	// QuickScale keeps runs short (benchmarks, smoke tests).
	QuickScale = experiments.QuickScale
)

// RunOLTP simulates the OLTP workload on a machine configured by cfg.
func RunOLTP(cfg Config, sc Scale, label string, hints HintLevel) (*Report, error) {
	return experiments.RunOLTP(cfg, sc, label, hints)
}

// RunDSS simulates the DSS workload on a machine configured by cfg.
func RunDSS(cfg Config, sc Scale, label string) (*Report, error) {
	return experiments.RunDSS(cfg, sc, label)
}

// Interval telemetry (attach a pipeline via RunOptions.Telemetry; the
// collector is a pure observer — instruction and cycle counts are
// identical with telemetry on or off).
type (
	// TelemetryPipeline is the per-run sampling pipeline (interval, tags,
	// probes, and a router fanning samples out to sinks).
	TelemetryPipeline = telemetry.Pipeline
	// TelemetrySample is one interval's measurements.
	TelemetrySample = telemetry.Sample
	// TelemetrySink consumes samples (JSONL, CSV, Prometheus HTTP, or
	// any custom implementation).
	TelemetrySink = telemetry.Sink
	// TelemetryFilter gates a sink by sample tags.
	TelemetryFilter = telemetry.Filter
	// TelemetryFuncSink adapts a function into a TelemetrySink.
	TelemetryFuncSink = telemetry.FuncSink
)

// NewTelemetry builds a pipeline sampling every interval cycles
// (0 = Config.TelemetryInterval, or 100k if that is also zero).
func NewTelemetry(interval uint64) *TelemetryPipeline { return telemetry.New(interval) }

// OpenJSONLSink appends one JSON object per sample to path.
func OpenJSONLSink(path string) (TelemetrySink, error) { return telemetry.OpenJSONLSink(path) }

// OpenCSVSink writes samples as CSV rows to path.
func OpenCSVSink(path string) (TelemetrySink, error) { return telemetry.OpenCSVSink(path) }

// ListenTelemetry serves the latest sample and accumulated totals in
// Prometheus text format on addr (endpoint /metrics).
func ListenTelemetry(addr string) (*telemetry.PromSink, error) {
	return telemetry.ListenPromSink(addr)
}

// Robustness & diagnostics.
type (
	// FaultConfig configures the deterministic fault injector (timing-only
	// mesh delays, directory NACKs with bounded retry, memory stalls).
	FaultConfig = config.FaultConfig
	// Snapshot is a machine-state dump (pipelines, in-flight misses,
	// directory, locks, mesh) attached to watchdog and crash errors.
	Snapshot = diag.Snapshot
	// ProgressError reports a forward-progress watchdog trip.
	ProgressError = core.ProgressError
	// CycleLimitError reports an exceeded MaxCycles bound; it wraps
	// ErrMaxCycles.
	CycleLimitError = core.CycleLimitError
	// CanceledError reports a run ended by its RunOptions.Context.
	CanceledError = core.CanceledError
	// PanicError is a machine-model panic recovered by Run, carrying the
	// panic value, stack, and a best-effort snapshot.
	PanicError = diag.PanicError
)

// ErrMaxCycles is the sentinel wrapped by CycleLimitError; test with
// errors.Is.
var ErrMaxCycles = core.ErrMaxCycles

// DefaultWatchdogWindow is the default forward-progress window in cycles.
const DefaultWatchdogWindow = core.DefaultWatchdogWindow

// Experiment binds a paper table/figure id to its regenerating function.
type Experiment = experiments.Experiment

// Experiments returns every reproducible table and figure (the paper's
// evaluation plus the ablations and extensions in DESIGN.md).
func Experiments() []Experiment { return experiments.All }
