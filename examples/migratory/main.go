// Migratory-data study (Section 4.2 / Figure 7b): OLTP's communication
// misses are dominated by migratory data — lock-protected metadata that
// moves processor to processor with the locks. This example first
// characterizes the sharing pattern, then applies the paper's software
// remedies: flush/write-through hints at the ends of the critical sections
// (so later readers are serviced by memory instead of a slower
// cache-to-cache transfer) and exclusive prefetches at their beginnings.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Characterization on the base machine (with a 4-entry stream buffer,
	// as in the paper's Figure 7b baseline).
	cfg := repro.DefaultConfig()
	cfg.StreamBufEntries = 4
	base, err := repro.RunOLTP(cfg, repro.QuickScale, "base", repro.HintNone)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Migratory sharing characterization (paper values in parentheses):")
	fmt.Printf("  shared writes to migratory data        %4.0f%%  (88%%)\n", base.SharedWriteMigratory*100)
	fmt.Printf("  dirty reads to migratory data          %4.0f%%  (79%%)\n", base.ReadDirtyMigratory*100)
	fmt.Printf("  migratory lines / generating PCs     %5d / %d (~520 / ~100)\n",
		base.MigratoryLines, base.MigratoryPCs)
	fmt.Printf("  writes inside critical sections        %4.0f%%  (74%%)\n", base.WriteCSFraction*100)
	fmt.Printf("  reads inside critical sections         %4.0f%%  (54%%)\n\n", base.ReadCSFraction*100)

	variants := []struct {
		name  string
		hints repro.HintLevel
	}{
		{"base (4-entry SB)", repro.HintNone},
		{"+flush hints", repro.HintFlush},
		{"+flush+prefetch hints", repro.HintFlushPrefetch},
	}
	fmt.Println("Software hints (normalized execution time, dirty-read stall):")
	b := base.ExecTime()
	for _, v := range variants {
		rep := base
		if v.hints != repro.HintNone {
			rep, err = repro.RunOLTP(cfg, repro.QuickScale, v.name, v.hints)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  %-24s %6.3f   dirty %.3f\n",
			v.name, rep.ExecTime()/b, rep.Breakdown[repro.CatReadDirty]/b)
	}
	fmt.Println("\npaper: flush hints alone cut execution time 7.5%; adding prefetches")
	fmt.Println("reaches 12% (the memory-service bound on migratory reads is ~9%).")
}
