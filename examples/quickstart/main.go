// Quickstart: simulate both database workloads on the paper's base machine
// and print the headline characterization (Section 3.1): OLTP is memory-
// and instruction-stall bound at low IPC; DSS is compute-bound at high IPC.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()

	fmt.Printf("Simulating %d-node CC-NUMA machine, %d-way out-of-order cores, %d-entry windows\n\n",
		cfg.Nodes, cfg.IssueWidth, cfg.WindowSize)

	oltp, err := repro.RunOLTP(cfg, repro.QuickScale, "OLTP", repro.HintNone)
	if err != nil {
		log.Fatal(err)
	}
	dss, err := repro.RunDSS(cfg, repro.QuickScale, "DSS")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %6s %8s %8s %8s | %5s %6s %6s %6s\n",
		"", "IPC", "L1I%", "L1D%", "L2%", "CPU", "instr", "read", "sync")
	for _, r := range []*repro.Report{oltp, dss} {
		n := r.Normalized(r)
		fmt.Printf("%-6s %6.2f %7.1f%% %7.1f%% %7.1f%% | %5.2f %6.2f %6.2f %6.2f\n",
			r.Label, r.IPC(cfg.Nodes),
			r.L1IMissRate*100, r.L1DMissRate*100, r.L2MissRate*100,
			n.CPU(), n[repro.CatInstr], n.Read(), n[repro.CatSync])
	}
	fmt.Println("\n(paper: OLTP IPC 0.5 with L1I 7.6% / L1D 14.1% / L2 7.4%;")
	fmt.Println("        DSS  IPC 2.2 with L1I ~0%  / L1D 0.9%  / L2 23.1%)")
}
