// Consistency-model study (Section 3.4 / Figure 6): how much do the
// ILP-enabled optimizations — hardware prefetch from the instruction window
// and speculative load execution — close the gap between sequential
// consistency and release consistency for database workloads?
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	models := []struct {
		name  string
		model repro.ConsistencyModel
	}{{"SC", repro.SC}, {"PC", repro.PC}, {"RC", repro.RC}}
	impls := []struct {
		name string
		impl repro.ConsistencyImpl
	}{
		{"straightforward", repro.ImplPlain},
		{"+prefetch", repro.ImplPrefetch},
		{"+prefetch+speculative", repro.ImplSpeculative},
	}

	fmt.Println("OLTP execution time by consistency model (normalized to straightforward SC)")
	fmt.Printf("%-24s %8s %8s %8s\n", "implementation", "SC", "PC", "RC")

	var base float64
	for _, im := range impls {
		fmt.Printf("%-24s", im.name)
		for _, m := range models {
			cfg := repro.DefaultConfig()
			cfg.Consistency = m.model
			cfg.ConsistencyOpts = im.impl
			rep, err := repro.RunOLTP(cfg, repro.QuickScale,
				m.name+"/"+im.name, repro.HintNone)
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = rep.ExecTime()
			}
			fmt.Printf(" %8.3f", rep.ExecTime()/base)
		}
		fmt.Println()
	}
	fmt.Println("\npaper: prefetching plus speculative loads cut SC's execution time by 26%")
	fmt.Println("for OLTP (37% for DSS), bringing it within 10-15% of release consistency.")
}
