// Instruction stream-buffer study (Section 4.1 / Figure 7a): OLTP's
// instruction footprint (~560KB) streams through the 128KB L1 I-cache, so a
// small sequential prefetch buffer between the L1I and L2 recovers most of
// the instruction stall time.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	variants := []struct {
		name string
		mod  func(*repro.Config)
	}{
		{"no stream buffer", func(c *repro.Config) {}},
		{"2-entry stream buffer", func(c *repro.Config) { c.StreamBufEntries = 2 }},
		{"4-entry stream buffer", func(c *repro.Config) { c.StreamBufEntries = 4 }},
		{"8-entry stream buffer", func(c *repro.Config) { c.StreamBufEntries = 8 }},
		{"perfect I-cache", func(c *repro.Config) { c.PerfectICache = true }},
	}

	fmt.Println("OLTP with instruction stream buffers (normalized execution time)")
	fmt.Printf("%-24s %8s %10s %12s\n", "configuration", "time", "instr-stall", "SB hit rate")
	var base float64
	for _, v := range variants {
		cfg := repro.DefaultConfig()
		v.mod(&cfg)
		rep, err := repro.RunOLTP(cfg, repro.QuickScale, v.name, repro.HintNone)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = rep.ExecTime()
		}
		n := rep.Breakdown
		fmt.Printf("%-24s %8.3f %10.3f %11.0f%%\n",
			v.name, rep.ExecTime()/base, n[repro.CatInstr]/base, rep.StreamBufHitRate*100)
	}
	fmt.Println("\npaper: a 2-element buffer removes ~64% of remaining I-misses and a 2- or")
	fmt.Println("4-element buffer cuts execution time ~16-17%, within 15% of a perfect I-cache.")
}
