// Package checkpoint implements the on-disk container for deterministic
// mid-run machine checkpoints: a versioned, integrity-hashed file format
// with an atomic write-temp+fsync+rename protocol and torn/corrupt-file
// detection on load.
//
// The package is a pure container. It knows nothing about the simulator:
// callers (core.System.CheckpointState) gob-encode the machine state into
// an opaque payload and attach a small metadata header (the spec hash of
// the configuration the state belongs to, and the cycle it was captured
// at). Keeping the container free of simulator imports lets every layer —
// core, runner, sweep service, the fuzz tests — share it without cycles.
//
// File layout (all integers little-endian):
//
//	[ 8] magic "DBCKPT01"
//	[ 4] format version
//	[ 4] spec-hash length n
//	[ n] spec hash (ASCII)
//	[ 8] capture cycle
//	[ 8] payload length m
//	[32] SHA-256 over everything above plus the payload
//	[ m] payload (opaque to this package)
//
// A torn write (crash mid-write, truncated copy) fails the length checks;
// a corrupted write (bit flips, concatenated garbage) fails the digest.
// Both are reported as errors wrapping ErrCorrupt so callers can fall
// back to from-scratch execution, never silently wrong output. The
// atomic protocol (write temp in the destination directory, fsync, rename
// over the destination, fsync the directory) guarantees the destination
// path only ever names either the previous complete checkpoint or the new
// one.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Magic identifies a checkpoint file; bump Version when the payload
// encoding or header layout changes incompatibly.
const (
	Magic   = "DBCKPT01"
	Version = 1
)

// maxHeader bounds the variable-length parts a loader will trust before
// the digest is verified, so a corrupt length field cannot drive a huge
// allocation.
const (
	maxSpecHash = 1 << 10
	maxPayload  = 1 << 32 // 4 GiB; real checkpoints are a few MB
)

// ErrCorrupt is wrapped by every load error caused by a torn, truncated
// or corrupted checkpoint file (as opposed to the file being absent).
var ErrCorrupt = errors.New("corrupt checkpoint")

// IsCorrupt reports whether err indicates a torn/corrupt checkpoint file.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// Meta is the header a checkpoint is stored under.
type Meta struct {
	// SpecHash identifies the (config, workload, seed) the state belongs
	// to; loads for a different spec are rejected by the caller.
	SpecHash string
	// Cycle is the simulation cycle the state was captured at.
	Cycle uint64
}

// Cumulative process-wide activity counters, exported through the
// telemetry self-sample (satellite: checkpoint count/bytes/duration on
// existing metrics surfaces). Atomics: checkpoint writers may run on
// worker goroutines.
var (
	totalCount atomic.Uint64
	totalBytes atomic.Uint64
	totalNanos atomic.Uint64
)

// Stats returns the cumulative number of checkpoints written by this
// process, the total bytes written, and the total seconds spent writing.
func Stats() (count, bytes uint64, seconds float64) {
	return totalCount.Load(), totalBytes.Load(), float64(totalNanos.Load()) / 1e9
}

// encode renders the full file image for meta+payload.
func encode(meta Meta, payload []byte) ([]byte, error) {
	if len(meta.SpecHash) > maxSpecHash {
		return nil, fmt.Errorf("checkpoint: spec hash too long (%d bytes)", len(meta.SpecHash))
	}
	if uint64(len(payload)) > maxPayload {
		return nil, fmt.Errorf("checkpoint: payload too large (%d bytes)", len(payload))
	}
	var hdr bytes.Buffer
	hdr.WriteString(Magic)
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], Version)
	hdr.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(meta.SpecHash)))
	hdr.Write(u32[:])
	hdr.WriteString(meta.SpecHash)
	binary.LittleEndian.PutUint64(u64[:], meta.Cycle)
	hdr.Write(u64[:])
	binary.LittleEndian.PutUint64(u64[:], uint64(len(payload)))
	hdr.Write(u64[:])

	h := sha256.New()
	h.Write(hdr.Bytes())
	h.Write(payload)

	out := make([]byte, 0, hdr.Len()+sha256.Size+len(payload))
	out = append(out, hdr.Bytes()...)
	out = h.Sum(out)
	out = append(out, payload...)
	return out, nil
}

// Write atomically writes a checkpoint to path: the image is written to a
// temp file in the destination directory, fsynced, renamed over path, and
// the directory is fsynced so the rename itself is durable. On any error
// the destination is left untouched (still the previous checkpoint, or
// absent).
func Write(path string, meta Meta, payload []byte) error {
	start := time.Now()
	img, err := encode(meta, payload)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("checkpoint: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("checkpoint: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is advisory on some filesystems; the rename is
		// already atomic, this only hardens durability of the new name.
		d.Sync()
		d.Close()
	}
	totalCount.Add(1)
	totalBytes.Add(uint64(len(img)))
	totalNanos.Add(uint64(time.Since(start)))
	return nil
}

// Read loads and verifies a checkpoint file. Errors caused by the file
// being torn, truncated, or corrupted wrap ErrCorrupt; an absent file
// returns the underlying fs.ErrNotExist error unwrapped so callers can
// distinguish "no checkpoint yet" from "checkpoint damaged".
func Read(path string) (Meta, []byte, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, err
	}
	meta, payload, err := Decode(img)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return meta, payload, nil
}

// Decode verifies and unpacks a checkpoint image. All failure modes wrap
// ErrCorrupt. It is exported (and pure) so the fuzz tests can drive the
// corruption detector directly.
func Decode(img []byte) (Meta, []byte, error) {
	r := bytes.NewReader(img)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != Magic {
		return Meta{}, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return Meta{}, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(u32[:]); v != Version {
		return Meta{}, nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, Version)
	}
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return Meta{}, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	hashLen := binary.LittleEndian.Uint32(u32[:])
	if uint64(hashLen) > maxSpecHash {
		return Meta{}, nil, fmt.Errorf("%w: spec-hash length %d out of range", ErrCorrupt, hashLen)
	}
	specHash := make([]byte, hashLen)
	if _, err := io.ReadFull(r, specHash); err != nil {
		return Meta{}, nil, fmt.Errorf("%w: truncated spec hash", ErrCorrupt)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return Meta{}, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	cycle := binary.LittleEndian.Uint64(u64[:])
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return Meta{}, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint64(u64[:])
	if payloadLen > maxPayload {
		return Meta{}, nil, fmt.Errorf("%w: payload length %d out of range", ErrCorrupt, payloadLen)
	}
	digest := make([]byte, sha256.Size)
	if _, err := io.ReadFull(r, digest); err != nil {
		return Meta{}, nil, fmt.Errorf("%w: truncated digest", ErrCorrupt)
	}
	// Compare the claimed payload length against the bytes actually
	// present BEFORE allocating: a forged length field must not drive a
	// multi-gigabyte allocation for a file that is plainly torn.
	if rest := uint64(r.Len()); payloadLen != rest {
		if payloadLen > rest {
			return Meta{}, nil, fmt.Errorf("%w: truncated payload (torn write?)", ErrCorrupt)
		}
		return Meta{}, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, rest-payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Meta{}, nil, fmt.Errorf("%w: truncated payload (torn write?)", ErrCorrupt)
	}
	headerLen := len(img) - int(payloadLen) - sha256.Size
	h := sha256.New()
	h.Write(img[:headerLen])
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), digest) {
		return Meta{}, nil, fmt.Errorf("%w: integrity hash mismatch", ErrCorrupt)
	}
	return Meta{SpecHash: string(specHash), Cycle: cycle}, payload, nil
}
