package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzImage builds a valid checkpoint image for seeding.
func fuzzImage(t interface{ Fatal(...any) }, spec string, cycle uint64, payload []byte) []byte {
	img, err := encode(Meta{SpecHash: spec, Cycle: cycle}, payload)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// FuzzDecode drives the checkpoint corruption detector with arbitrary
// images: valid files, truncations, bit flips, oversized length fields,
// trailing garbage. The invariants:
//
//   - Decode never panics and never over-allocates off an unverified
//     length field (the fuzzer's memory limit enforces this);
//   - on success, the decoded (meta, payload) re-encode to exactly the
//     input image — acceptance implies the image is the canonical
//     encoding, so no corrupted variant of a file can decode to the same
//     state as the original;
//   - every failure wraps ErrCorrupt, the classification the restore
//     fallback path switches on.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	valid := fuzzImage(f, "spec-abc", 123456, []byte("machine state bytes"))
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x40 // payload bit flip under the digest
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), "trailing garbage"...))
	f.Add(fuzzImage(f, "", 0, nil)) // minimal valid image

	f.Fuzz(func(t *testing.T, img []byte) {
		meta, payload, err := Decode(img)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("Decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		re, err := encode(meta, payload)
		if err != nil {
			t.Fatalf("decoded state does not re-encode: %v", err)
		}
		if !bytes.Equal(re, img) {
			t.Fatalf("accepted image is not canonical:\n in %x\nout %x", img, re)
		}
	})
}

// FuzzReadFile is the same detector through the file path: whatever bytes
// land on disk (torn copies, concatenations, noise), Read either returns
// the exact (meta, payload) a Write stored or an error classified as
// corruption — never silently wrong state.
func FuzzReadFile(f *testing.F) {
	valid := fuzzImage(f, "s", 42, []byte{1, 2, 3})
	f.Add(valid)
	f.Add(valid[:17])
	f.Add([]byte("not a checkpoint at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		meta, payload, err := Read(path)
		if err != nil {
			if !IsCorrupt(err) {
				t.Fatalf("Read error on existing file does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		if re, _ := encode(meta, payload); !bytes.Equal(re, data) {
			t.Fatal("Read accepted a non-canonical file")
		}
	})
}
