package coherence

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFirstReadGrantsExclusive(t *testing.T) {
	d := NewDirectory()
	res := d.Read(0, 100)
	if res.Source != SrcMemory || !res.Exclusive {
		t.Errorf("first read: %+v, want memory+exclusive", res)
	}
	if d.Sharers(100) != 1 {
		t.Errorf("sharers = %d", d.Sharers(100))
	}
}

func TestSecondReadShares(t *testing.T) {
	d := NewDirectory()
	d.Read(0, 100)
	res := d.Read(1, 100)
	if res.Source != SrcMemory || res.Exclusive {
		t.Errorf("second read: %+v, want memory, not exclusive", res)
	}
	if d.Sharers(100) != 2 {
		t.Errorf("sharers = %d", d.Sharers(100))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := NewDirectory()
	d.Read(0, 100)
	d.Read(1, 100)
	d.Read(2, 100)
	res := d.Write(1, 100)
	if res.Source != SrcNone { // node 1 already shares: upgrade
		t.Errorf("upgrade source = %v", res.Source)
	}
	if len(res.Invalidates) != 2 {
		t.Errorf("invalidates %v, want nodes 0 and 2", res.Invalidates)
	}
	for _, n := range res.Invalidates {
		if n == 1 {
			t.Error("requester must not invalidate itself")
		}
	}
	if d.OwnerOf(100) != 1 {
		t.Errorf("owner = %d", d.OwnerOf(100))
	}
	if !res.WasShared {
		t.Error("write to shared line must be flagged")
	}
}

func TestDirtyReadForwards(t *testing.T) {
	d := NewDirectory()
	d.Write(2, 50)
	res := d.Read(3, 50)
	if res.Source != SrcOwnerCache || res.Owner != 2 {
		t.Fatalf("dirty read: %+v, want forward from node 2", res)
	}
	// Owner downgrades: both nodes now share; no owner.
	if d.OwnerOf(50) != -1 {
		t.Error("owner not cleared after sharing write-back")
	}
	if d.Sharers(50) != 2 {
		t.Errorf("sharers = %d", d.Sharers(50))
	}
	if d.ReadsDirty != 1 {
		t.Errorf("ReadsDirty = %d", d.ReadsDirty)
	}
}

func TestOwnershipTransfer(t *testing.T) {
	d := NewDirectory()
	d.Write(0, 7)
	res := d.Write(1, 7)
	if res.Source != SrcOwnerCache || res.Owner != 0 {
		t.Fatalf("M->M transfer: %+v", res)
	}
	if d.OwnerOf(7) != 1 {
		t.Errorf("owner = %d", d.OwnerOf(7))
	}
}

func TestWriteback(t *testing.T) {
	d := NewDirectory()
	d.Write(0, 9)
	d.Writeback(0, 9)
	if d.OwnerOf(9) != -1 || d.Sharers(9) != 0 {
		t.Error("writeback did not clear ownership")
	}
	res := d.Read(1, 9)
	if res.Source != SrcMemory {
		t.Error("post-writeback read should be serviced by memory")
	}
}

func TestEvictClean(t *testing.T) {
	d := NewDirectory()
	d.Read(0, 11)
	d.Read(1, 11)
	d.EvictClean(0, 11)
	if d.Sharers(11) != 1 {
		t.Errorf("sharers = %d after clean eviction", d.Sharers(11))
	}
	d.EvictClean(0, 999) // unknown line: no-op
}

func TestFlushKeepsCleanCopy(t *testing.T) {
	d := NewDirectory()
	d.Write(2, 13)
	if !d.Flush(2, 13, true) {
		t.Fatal("flush of owned dirty line failed")
	}
	if d.OwnerOf(13) != -1 {
		t.Error("flush did not clear ownership")
	}
	if d.Sharers(13) != 1 {
		t.Error("flush dropped the clean copy despite keepClean")
	}
	// Next read is serviced by memory, not cache-to-cache: the paper's
	// point.
	res := d.Read(3, 13)
	if res.Source != SrcMemory {
		t.Errorf("post-flush read source = %v, want memory", res.Source)
	}
	// Flushing a non-owned line is a no-op.
	if d.Flush(0, 13, true) {
		t.Error("flush of unowned line should fail")
	}
}

func TestFlushDropCopy(t *testing.T) {
	d := NewDirectory()
	d.Write(1, 14)
	d.Flush(1, 14, false)
	if d.Sharers(14) != 0 {
		t.Error("flush with keepClean=false should drop the copy")
	}
}

// TestMigratoryDetectionHeuristic checks the paper's footnote exactly: a
// line is marked migratory when an exclusive request arrives, the number of
// cached copies is 2, and the last writer is not the requester.
func TestMigratoryDetectionHeuristic(t *testing.T) {
	d := NewDirectory()
	// Classic migratory pattern: node 0 reads+writes, node 1 reads (2
	// copies: after the dirty read both share), node 1 writes.
	d.Read(0, 21)
	d.Write(0, 21)
	d.Read(1, 21) // dirty read: sharers {0, 1}
	if d.IsMigratory(21) {
		t.Fatal("line marked migratory too early")
	}
	res := d.Write(1, 21) // copies == 2, last writer 0 != requester 1
	if !res.Migratory || !d.IsMigratory(21) {
		t.Fatal("migratory pattern not detected")
	}
	if d.MigratoryLines != 1 {
		t.Errorf("MigratoryLines = %d", d.MigratoryLines)
	}
}

func TestMigratoryNotDetectedForSelfUpgrade(t *testing.T) {
	d := NewDirectory()
	// Same node re-acquiring exclusivity must not flag migratory.
	d.Read(0, 22)
	d.Write(0, 22)
	d.Read(0, 22)
	d.Write(0, 22)
	if d.IsMigratory(22) {
		t.Error("self re-acquisition flagged migratory")
	}
	// Wide sharing (3 copies) must not flag either.
	d2 := NewDirectory()
	d2.Write(0, 23)
	d2.Read(1, 23)
	d2.Read(2, 23) // 3 sharers
	d2.Write(1, 23)
	if d2.IsMigratory(23) {
		t.Error("wide sharing flagged migratory")
	}
}

// Property: under random operations there is never simultaneously an owner
// and another sharer (single-writer invariant), and sharer count stays
// within node count.
func TestSingleWriterInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		d := NewDirectory()
		const nodes = 4
		for i := 0; i < 400; i++ {
			node := rng.IntN(nodes)
			line := uint64(rng.IntN(8))
			switch rng.IntN(5) {
			case 0, 1:
				d.Read(node, line)
			case 2:
				d.Write(node, line)
			case 3:
				d.Writeback(node, line)
			case 4:
				d.Flush(node, line, rng.IntN(2) == 0)
			}
			if o := d.OwnerOf(line); o >= 0 {
				if d.Sharers(line) != 0 {
					return false // owner coexisting with sharers
				}
			}
			if d.Sharers(line) > nodes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyReadFraction(t *testing.T) {
	d := NewDirectory()
	if d.DirtyReadFraction() != 0 {
		t.Error("empty directory fraction should be 0")
	}
	d.Write(0, 1)
	d.Read(1, 1) // dirty
	d.Read(2, 2) // clean
	if got := d.DirtyReadFraction(); got != 0.5 {
		t.Errorf("dirty fraction = %f, want 0.5", got)
	}
}

func TestAdaptiveMigratoryProtocol(t *testing.T) {
	d := NewDirectory()
	d.MigratoryOpt = true
	// Build the migratory classification first (same pattern as above).
	d.Read(0, 31)
	d.Write(0, 31)
	d.Read(1, 31)
	d.Write(1, 31) // classified migratory here
	if !d.IsMigratory(31) {
		t.Fatal("setup: line not migratory")
	}
	// Node 2 reads: with the adaptive protocol it receives ownership and
	// node 1 is invalidated.
	res := d.Read(2, 31)
	if res.Source != SrcOwnerCache || !res.MigratoryTransfer || !res.Exclusive {
		t.Fatalf("migratory read: %+v, want exclusive ownership transfer", res)
	}
	if d.OwnerOf(31) != 2 {
		t.Errorf("owner = %d, want 2", d.OwnerOf(31))
	}
	if d.Sharers(31) != 0 {
		t.Errorf("sharers = %d; the old owner must be invalidated", d.Sharers(31))
	}
	// Node 2's subsequent write needs no coherence action at all.
	w := d.Write(2, 31)
	if w.Source != SrcNone || len(w.Invalidates) != 0 {
		t.Errorf("post-transfer write: %+v, want silent local upgrade", w)
	}
	if d.MigratoryTransfers != 1 {
		t.Errorf("transfers = %d", d.MigratoryTransfers)
	}
	// Without the option the same read must behave as plain MESI.
	d2 := NewDirectory()
	d2.Read(0, 31)
	d2.Write(0, 31)
	d2.Read(1, 31)
	d2.Write(1, 31)
	r2 := d2.Read(2, 31)
	if r2.MigratoryTransfer {
		t.Error("migratory transfer without MigratoryOpt")
	}
}
