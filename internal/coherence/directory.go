// Package coherence implements the invalidation-based four-state MESI
// full-map directory protocol of the simulated CC-NUMA machine (Section 2.4
// of the paper), including cache-to-cache transfers for dirty lines, the
// "flush"/sharing-write-back primitive of Section 4.2 (which pushes a dirty
// line back to memory while keeping a clean cached copy), and the migratory
// line detection heuristic from the paper's footnote: a line is marked
// migratory when the directory receives a request for exclusive ownership,
// the number of cached copies is 2, and the last writer is not the
// requester (Cox & Fowler / Stenstrom et al.).
//
// The directory is pure protocol state: it decides who supplies data and who
// must be invalidated; the memory system (internal/memsys) performs the
// cache updates and timing.
package coherence

import "math/bits"

// Source says who supplies the data for a transaction.
type Source uint8

const (
	// SrcMemory means the home node's memory supplies the line.
	SrcMemory Source = iota
	// SrcOwnerCache means a dirty copy is forwarded cache-to-cache.
	SrcOwnerCache
	// SrcNone means no data transfer is needed (e.g. S->M upgrade).
	SrcNone
)

const noNode = -1

type dirEntry struct {
	sharers    uint64 // bitmask of nodes with a cached copy
	owner      int8   // node holding the line Modified, or noNode
	lastWriter int8   // most recent exclusive owner ever, or noNode
	migratory  bool
	everShared bool // cached by >=2 nodes, or written by >=2 distinct nodes
}

// ReadResult describes how a read (GETS) is serviced.
type ReadResult struct {
	Source    Source
	Owner     int  // supplying node when Source == SrcOwnerCache
	Exclusive bool // granted Exclusive (no other sharers)
	Migratory bool // line was classified migratory
	// MigratoryTransfer: the adaptive migratory protocol handed the reader
	// an exclusive (ownership) copy and invalidated the previous owner, so
	// the reader's upcoming write needs no further coherence action.
	MigratoryTransfer bool
}

// WriteResult describes how a write (GETX/upgrade) is serviced.
type WriteResult struct {
	Source      Source
	Owner       int   // supplying node when Source == SrcOwnerCache
	Invalidates []int // other nodes whose copies must be invalidated
	Migratory   bool  // line classified migratory (after this request)
	WasShared   bool  // the write required coherence action on others
}

// Directory is the machine-wide directory (conceptually distributed across
// home nodes; homing affects timing in memsys, not protocol state). Not
// safe for concurrent use.
type Directory struct {
	entries map[uint64]dirEntry
	invBuf  []int

	// MigratoryOpt enables the adaptive migratory protocol of Cox & Fowler
	// / Stenstrom et al.: reads of lines classified migratory receive an
	// exclusive (ownership) copy, and the previous owner is invalidated,
	// eliminating the reader's subsequent upgrade request. The paper's
	// footnote 2 observes that under a relaxed consistency model this
	// cannot help, because the write latency it saves is already hidden —
	// the ext-migproto experiment reproduces that claim.
	MigratoryOpt bool

	MigratoryTransfers uint64

	// Protocol statistics.
	Reads            uint64
	ReadsDirty       uint64 // serviced cache-to-cache
	Writes           uint64
	WritesShared     uint64 // writes that found other cached copies / prior writers
	Upgrades         uint64
	Writebacks       uint64
	Flushes          uint64
	MigratoryLines   uint64 // lines ever classified migratory
	MigratoryReadsCC uint64 // dirty reads to migratory lines
	MigratoryWrites  uint64 // shared writes to migratory lines
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[uint64]dirEntry)}
}

// Lines returns the number of lines with directory state.
func (d *Directory) Lines() int { return len(d.entries) }

// Sharers returns the number of nodes caching the line (tests/invariants).
func (d *Directory) Sharers(lineAddr uint64) int {
	return bits.OnesCount64(d.entries[lineAddr].sharers)
}

// OwnerOf returns the modified owner of the line, or -1.
func (d *Directory) OwnerOf(lineAddr uint64) int {
	e, ok := d.entries[lineAddr]
	if !ok {
		return noNode
	}
	return int(e.owner)
}

// IsMigratory reports whether the line has been classified migratory.
func (d *Directory) IsMigratory(lineAddr uint64) bool {
	return d.entries[lineAddr].migratory
}

func newEntry() dirEntry { return dirEntry{owner: noNode, lastWriter: noNode} }

// Read services a GETS from node for lineAddr.
func (d *Directory) Read(node int, lineAddr uint64) ReadResult {
	d.Reads++
	e, ok := d.entries[lineAddr]
	if !ok {
		e = newEntry()
	}
	res := ReadResult{Source: SrcMemory, Owner: noNode, Migratory: e.migratory}
	switch {
	case e.owner == int8(node):
		// Requesting node already owns it dirty (can happen when an L1 read
		// misses but the node's L2 holds it Modified) — treated by memsys
		// as a local hierarchy fill; directory state is unchanged.
		res.Source = SrcNone
		return res
	case e.owner != noNode:
		// Dirty elsewhere: cache-to-cache transfer.
		d.ReadsDirty++
		if e.migratory {
			d.MigratoryReadsCC++
		}
		res.Source = SrcOwnerCache
		res.Owner = int(e.owner)
		if d.MigratoryOpt && e.migratory {
			// Adaptive migratory protocol: pass ownership with the data;
			// the previous owner's copy is invalidated.
			d.MigratoryTransfers++
			res.MigratoryTransfer = true
			res.Exclusive = true
			e.sharers = 0
			e.owner = int8(node)
			e.lastWriter = int8(node)
			d.entries[lineAddr] = e
			return res
		}
		// Plain MESI: owner downgrades to Shared, memory picks up the data.
		e.sharers |= 1 << uint(e.owner)
		e.owner = noNode
	default:
		res.Source = SrcMemory
	}
	e.sharers |= 1 << uint(node)
	if bits.OnesCount64(e.sharers) == 1 && res.Source == SrcMemory {
		res.Exclusive = true
	}
	if bits.OnesCount64(e.sharers) >= 2 {
		e.everShared = true
	}
	d.entries[lineAddr] = e
	return res
}

// Write services a GETX (or upgrade) from node for lineAddr.
func (d *Directory) Write(node int, lineAddr uint64) WriteResult {
	d.Writes++
	e, ok := d.entries[lineAddr]
	if !ok {
		e = newEntry()
	}
	d.invBuf = d.invBuf[:0]
	res := WriteResult{Source: SrcMemory, Owner: noNode}

	nodeBit := uint64(1) << uint(node)
	copies := bits.OnesCount64(e.sharers)
	if e.owner != noNode {
		copies = 1
	}

	// Migratory detection heuristic (paper footnote 2).
	if copies == 2 && e.lastWriter != noNode && e.lastWriter != int8(node) {
		if !e.migratory {
			d.MigratoryLines++
		}
		e.migratory = true
	}

	switch {
	case e.owner == int8(node):
		// Already modified here (L1 write miss, node L2 owns): local.
		res.Source = SrcNone
	case e.owner != noNode:
		// Dirty elsewhere: transfer ownership cache-to-cache.
		res.Source = SrcOwnerCache
		res.Owner = int(e.owner)
		d.invBuf = append(d.invBuf, int(e.owner))
		res.WasShared = true
	default:
		// Clean: invalidate all other sharers; upgrade if we already share.
		for s := e.sharers &^ nodeBit; s != 0; {
			n := bits.TrailingZeros64(s)
			d.invBuf = append(d.invBuf, n)
			s &^= 1 << uint(n)
			res.WasShared = true
		}
		if e.sharers&nodeBit != 0 {
			res.Source = SrcNone // upgrade: data already present
			d.Upgrades++
		}
	}
	if e.lastWriter != noNode && e.lastWriter != int8(node) {
		res.WasShared = true
		e.everShared = true
	}
	if res.WasShared {
		d.WritesShared++
		if e.migratory {
			d.MigratoryWrites++
		}
	}
	e.sharers = 0
	e.owner = int8(node)
	e.lastWriter = int8(node)
	d.entries[lineAddr] = e
	res.Invalidates = d.invBuf
	res.Migratory = e.migratory
	return res
}

// Writeback records a dirty eviction from node: memory becomes the owner.
func (d *Directory) Writeback(node int, lineAddr uint64) {
	e, ok := d.entries[lineAddr]
	if !ok {
		return
	}
	d.Writebacks++
	if e.owner == int8(node) {
		e.owner = noNode
		e.sharers &^= 1 << uint(node)
	}
	d.entries[lineAddr] = e
}

// EvictClean records a clean (S/E) eviction from node.
func (d *Directory) EvictClean(node int, lineAddr uint64) {
	e, ok := d.entries[lineAddr]
	if !ok {
		return
	}
	if e.owner == int8(node) {
		e.owner = noNode
	}
	e.sharers &^= 1 << uint(node)
	d.entries[lineAddr] = e
}

// Flush services the software flush / sharing-write-back hint: if node owns
// the line dirty, the data is pushed to memory. When keepClean is true the
// node retains a Shared copy (the paper found keeping the copy essential);
// otherwise the copy is dropped. Returns true if a write-back happened.
func (d *Directory) Flush(node int, lineAddr uint64, keepClean bool) bool {
	e, ok := d.entries[lineAddr]
	if !ok || e.owner != int8(node) {
		return false
	}
	d.Flushes++
	e.owner = noNode
	if keepClean {
		e.sharers |= 1 << uint(node)
	} else {
		e.sharers &^= 1 << uint(node)
	}
	d.entries[lineAddr] = e
	return true
}

// DirtyReadFraction returns the fraction of directory reads serviced
// cache-to-cache (the paper: ~50% of OLTP L2 misses are dirty misses).
func (d *Directory) DirtyReadFraction() float64 {
	if d.Reads == 0 {
		return 0
	}
	return float64(d.ReadsDirty) / float64(d.Reads)
}

// ResetStats zeroes the protocol counters (directory state is kept); the
// migratory classification of lines is retained, since it describes the
// data, not the measurement interval.
func (d *Directory) ResetStats() {
	d.Reads, d.ReadsDirty, d.Writes, d.WritesShared = 0, 0, 0, 0
	d.Upgrades, d.Writebacks, d.Flushes = 0, 0, 0
	d.MigratoryLines, d.MigratoryReadsCC, d.MigratoryWrites = 0, 0, 0
}
