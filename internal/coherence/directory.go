// Package coherence implements the invalidation-based four-state MESI
// full-map directory protocol of the simulated CC-NUMA machine (Section 2.4
// of the paper), including cache-to-cache transfers for dirty lines, the
// "flush"/sharing-write-back primitive of Section 4.2 (which pushes a dirty
// line back to memory while keeping a clean cached copy), and the migratory
// line detection heuristic from the paper's footnote: a line is marked
// migratory when the directory receives a request for exclusive ownership,
// the number of cached copies is 2, and the last writer is not the
// requester (Cox & Fowler / Stenstrom et al.).
//
// The directory is pure protocol state: it decides who supplies data and who
// must be invalidated; the memory system (internal/memsys) performs the
// cache updates and timing.
package coherence

import (
	"fmt"
	"math/bits"
)

// Source says who supplies the data for a transaction.
type Source uint8

const (
	// SrcMemory means the home node's memory supplies the line.
	SrcMemory Source = iota
	// SrcOwnerCache means a dirty copy is forwarded cache-to-cache.
	SrcOwnerCache
	// SrcNone means no data transfer is needed (e.g. S->M upgrade).
	SrcNone
)

const noNode = -1

type dirEntry struct {
	sharers    uint64 // bitmask of nodes with a cached copy
	owner      int8   // node holding the line Modified, or noNode
	excl       int8   // node granted a clean Exclusive copy, or noNode
	lastWriter int8   // most recent exclusive owner ever, or noNode
	migratory  bool
	everShared bool // cached by >=2 nodes, or written by >=2 distinct nodes
}

// ReadResult describes how a read (GETS) is serviced.
type ReadResult struct {
	Source    Source
	Owner     int  // supplying node when Source == SrcOwnerCache
	Exclusive bool // granted Exclusive (no other sharers)
	Migratory bool // line was classified migratory
	// MigratoryTransfer: the adaptive migratory protocol handed the reader
	// an exclusive (ownership) copy and invalidated the previous owner, so
	// the reader's upcoming write needs no further coherence action.
	MigratoryTransfer bool
	// Downgrade names a node that held the line clean-Exclusive and must
	// fold its copy to Shared (so it can no longer upgrade silently), or -1.
	Downgrade int
	// Sharers is the number of nodes that cached the line (owner included)
	// when the request arrived, before this transaction changed the state.
	Sharers int
}

// WriteResult describes how a write (GETX/upgrade) is serviced.
type WriteResult struct {
	Source      Source
	Owner       int   // supplying node when Source == SrcOwnerCache
	Invalidates []int // other nodes whose copies must be invalidated
	Migratory   bool  // line classified migratory (after this request)
	WasShared   bool  // the write required coherence action on others
	// Sharers is the number of nodes that cached the line (owner included)
	// when the request arrived, before this transaction changed the state.
	Sharers int
}

// Directory is the machine-wide directory (conceptually distributed across
// home nodes; homing affects timing in memsys, not protocol state). Not
// safe for concurrent use.
type Directory struct {
	entries map[uint64]dirEntry
	invBuf  []int

	// probeDirty asks the memory system whether node's L2 actually holds
	// lineAddr Modified. A node granted a clean Exclusive copy may upgrade
	// it to Modified without a directory transaction (legal MESI); the
	// directory only learns on the next conflicting request, by probing.
	probeDirty func(node int, lineAddr uint64) bool

	// MigratoryOpt enables the adaptive migratory protocol of Cox & Fowler
	// / Stenstrom et al.: reads of lines classified migratory receive an
	// exclusive (ownership) copy, and the previous owner is invalidated,
	// eliminating the reader's subsequent upgrade request. The paper's
	// footnote 2 observes that under a relaxed consistency model this
	// cannot help, because the write latency it saves is already hidden —
	// the ext-migproto experiment reproduces that claim.
	MigratoryOpt bool

	MigratoryTransfers uint64

	// Protocol statistics.
	Reads            uint64
	ReadsDirty       uint64 // serviced cache-to-cache
	Writes           uint64
	WritesShared     uint64 // writes that found other cached copies / prior writers
	Upgrades         uint64
	Writebacks       uint64
	Flushes          uint64
	MigratoryLines   uint64 // lines ever classified migratory
	MigratoryReadsCC uint64 // dirty reads to migratory lines
	MigratoryWrites  uint64 // shared writes to migratory lines
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[uint64]dirEntry)}
}

// Lines returns the number of lines with directory state.
func (d *Directory) Lines() int { return len(d.entries) }

// Sharers returns the number of nodes caching the line (tests/invariants).
func (d *Directory) Sharers(lineAddr uint64) int {
	return bits.OnesCount64(d.entries[lineAddr].sharers)
}

// OwnerOf returns the modified owner of the line, or -1.
func (d *Directory) OwnerOf(lineAddr uint64) int {
	e, ok := d.entries[lineAddr]
	if !ok {
		return noNode
	}
	return int(e.owner)
}

// IsMigratory reports whether the line has been classified migratory.
func (d *Directory) IsMigratory(lineAddr uint64) bool {
	return d.entries[lineAddr].migratory
}

func newEntry() dirEntry { return dirEntry{owner: noNode, excl: noNode, lastWriter: noNode} }

// SetProbe installs the memory system's dirty-probe callback (see the
// probeDirty field). Without one, Exclusive grantees are assumed clean.
func (d *Directory) SetProbe(probe func(node int, lineAddr uint64) bool) {
	d.probeDirty = probe
}

// resolveExcl settles an outstanding clean-Exclusive grant before a
// conflicting request from node is serviced. If the grantee has silently
// upgraded to Modified it becomes the recorded owner (so the dirty
// cache-to-cache path services the request); otherwise it stays a plain
// sharer, and its id is returned so the caller can downgrade its cached
// copy E->S. Returns noNode when there is nothing to downgrade.
func (d *Directory) resolveExcl(e *dirEntry, lineAddr uint64, node int) int {
	if e.excl == noNode || e.excl == int8(node) {
		// No grant outstanding, or the grantee itself is requesting again
		// (possible after a silent local refetch); either way it is just a
		// sharer now and the grant is spent.
		e.excl = noNode
		return noNode
	}
	holder := int(e.excl)
	e.excl = noNode
	if d.probeDirty != nil && d.probeDirty(holder, lineAddr) {
		e.owner = int8(holder)
		e.sharers = 0
		return noNode
	}
	return holder
}

// Read services a GETS from node for lineAddr.
func (d *Directory) Read(node int, lineAddr uint64) ReadResult {
	d.Reads++
	e, ok := d.entries[lineAddr]
	if !ok {
		e = newEntry()
	}
	res := ReadResult{Source: SrcMemory, Owner: noNode, Migratory: e.migratory, Downgrade: noNode}
	res.Sharers = bits.OnesCount64(e.sharers)
	if e.owner != noNode {
		res.Sharers++
	}
	res.Downgrade = d.resolveExcl(&e, lineAddr, node)
	switch {
	case e.owner == int8(node):
		// Requesting node already owns it dirty (can happen when an L1 read
		// misses but the node's L2 holds it Modified) — treated by memsys
		// as a local hierarchy fill; directory state is unchanged.
		res.Source = SrcNone
		return res
	case e.owner != noNode:
		// Dirty elsewhere: cache-to-cache transfer.
		d.ReadsDirty++
		if e.migratory {
			d.MigratoryReadsCC++
		}
		res.Source = SrcOwnerCache
		res.Owner = int(e.owner)
		if d.MigratoryOpt && e.migratory {
			// Adaptive migratory protocol: pass ownership with the data;
			// the previous owner's copy is invalidated.
			d.MigratoryTransfers++
			res.MigratoryTransfer = true
			res.Exclusive = true
			e.sharers = 0
			e.owner = int8(node)
			e.lastWriter = int8(node)
			d.entries[lineAddr] = e
			return res
		}
		// Plain MESI: owner downgrades to Shared, memory picks up the data.
		e.sharers |= 1 << uint(e.owner)
		e.owner = noNode
	default:
		res.Source = SrcMemory
	}
	e.sharers |= 1 << uint(node)
	if bits.OnesCount64(e.sharers) == 1 && res.Source == SrcMemory {
		// Sole cached copy from memory: grant Exclusive and remember the
		// grantee, since it may later upgrade to Modified without telling us.
		res.Exclusive = true
		e.excl = int8(node)
	}
	if bits.OnesCount64(e.sharers) >= 2 {
		e.everShared = true
	}
	d.entries[lineAddr] = e
	return res
}

// Write services a GETX (or upgrade) from node for lineAddr.
func (d *Directory) Write(node int, lineAddr uint64) WriteResult {
	d.Writes++
	e, ok := d.entries[lineAddr]
	if !ok {
		e = newEntry()
	}
	d.invBuf = d.invBuf[:0]
	res := WriteResult{Source: SrcMemory, Owner: noNode}
	res.Sharers = bits.OnesCount64(e.sharers)
	if e.owner != noNode {
		res.Sharers++
	}

	// A clean-Exclusive grantee either becomes the recorded dirty owner
	// (cache-to-cache below) or a plain sharer (invalidated below).
	d.resolveExcl(&e, lineAddr, node)

	nodeBit := uint64(1) << uint(node)
	copies := bits.OnesCount64(e.sharers)
	if e.owner != noNode {
		copies = 1
	}

	// Migratory detection heuristic (paper footnote 2).
	if copies == 2 && e.lastWriter != noNode && e.lastWriter != int8(node) {
		if !e.migratory {
			d.MigratoryLines++
		}
		e.migratory = true
	}

	switch {
	case e.owner == int8(node):
		// Already modified here (L1 write miss, node L2 owns): local.
		res.Source = SrcNone
	case e.owner != noNode:
		// Dirty elsewhere: transfer ownership cache-to-cache.
		res.Source = SrcOwnerCache
		res.Owner = int(e.owner)
		d.invBuf = append(d.invBuf, int(e.owner))
		res.WasShared = true
	default:
		// Clean: invalidate all other sharers; upgrade if we already share.
		for s := e.sharers &^ nodeBit; s != 0; {
			n := bits.TrailingZeros64(s)
			d.invBuf = append(d.invBuf, n)
			s &^= 1 << uint(n)
			res.WasShared = true
		}
		if e.sharers&nodeBit != 0 {
			res.Source = SrcNone // upgrade: data already present
			d.Upgrades++
		}
	}
	if e.lastWriter != noNode && e.lastWriter != int8(node) {
		res.WasShared = true
		e.everShared = true
	}
	if res.WasShared {
		d.WritesShared++
		if e.migratory {
			d.MigratoryWrites++
		}
	}
	e.sharers = 0
	e.owner = int8(node)
	e.lastWriter = int8(node)
	d.entries[lineAddr] = e
	res.Invalidates = d.invBuf
	res.Migratory = e.migratory
	return res
}

// Writeback records a dirty eviction from node: memory becomes the owner.
func (d *Directory) Writeback(node int, lineAddr uint64) {
	e, ok := d.entries[lineAddr]
	if !ok {
		return
	}
	d.Writebacks++
	if e.excl == int8(node) {
		// Silent E->M upgrade surfacing as a dirty eviction.
		e.excl = noNode
		e.sharers &^= 1 << uint(node)
	}
	if e.owner == int8(node) {
		e.owner = noNode
		e.sharers &^= 1 << uint(node)
	}
	d.entries[lineAddr] = e
}

// EvictClean records a clean (S/E) eviction from node.
func (d *Directory) EvictClean(node int, lineAddr uint64) {
	e, ok := d.entries[lineAddr]
	if !ok {
		return
	}
	if e.owner == int8(node) {
		e.owner = noNode
	}
	if e.excl == int8(node) {
		e.excl = noNode
	}
	e.sharers &^= 1 << uint(node)
	d.entries[lineAddr] = e
}

// Flush services the software flush / sharing-write-back hint: if node owns
// the line dirty, the data is pushed to memory. When keepClean is true the
// node retains a Shared copy (the paper found keeping the copy essential);
// otherwise the copy is dropped. Returns true if a write-back happened.
func (d *Directory) Flush(node int, lineAddr uint64, keepClean bool) bool {
	e, ok := d.entries[lineAddr]
	if !ok {
		return false
	}
	if e.excl == int8(node) {
		// The flusher holds a clean-Exclusive grant; memsys only issues a
		// flush for a line its L2 holds Modified, so the grant has silently
		// become ownership.
		e.excl = noNode
		e.owner = int8(node)
	}
	if e.owner != int8(node) {
		return false
	}
	d.Flushes++
	e.owner = noNode
	if keepClean {
		e.sharers |= 1 << uint(node)
	} else {
		e.sharers &^= 1 << uint(node)
	}
	d.entries[lineAddr] = e
	return true
}

// IsSharer reports whether the directory records node as caching the line.
func (d *Directory) IsSharer(node int, lineAddr uint64) bool {
	e, ok := d.entries[lineAddr]
	if !ok {
		return false
	}
	return e.owner == int8(node) || e.sharers&(1<<uint(node)) != 0
}

// ExclusiveOf returns the node holding an unresolved clean-Exclusive grant
// for the line, or -1 (tests/invariants).
func (d *Directory) ExclusiveOf(lineAddr uint64) int {
	e, ok := d.entries[lineAddr]
	if !ok {
		return noNode
	}
	return int(e.excl)
}

// CheckLine verifies the directory's own invariants for one line against a
// machine with nodes nodes: the owner and Exclusive grantee are valid node
// ids, the sharer mask names only real nodes, a dirty owner excludes all
// sharers, and an Exclusive grantee is the sole sharer. Returns nil when
// the line has no directory state.
func (d *Directory) CheckLine(lineAddr uint64, nodes int) error {
	e, ok := d.entries[lineAddr]
	if !ok {
		return nil
	}
	if e.owner < noNode || int(e.owner) >= nodes {
		return fmt.Errorf("coherence: line %#x: owner %d out of range [0,%d)", lineAddr, e.owner, nodes)
	}
	if e.excl < noNode || int(e.excl) >= nodes {
		return fmt.Errorf("coherence: line %#x: exclusive grantee %d out of range [0,%d)", lineAddr, e.excl, nodes)
	}
	if nodes < 64 && e.sharers>>uint(nodes) != 0 {
		return fmt.Errorf("coherence: line %#x: sharer mask %#x names nodes >= %d", lineAddr, e.sharers, nodes)
	}
	if e.owner != noNode {
		if e.sharers != 0 {
			return fmt.Errorf("coherence: line %#x: dirty owner %d coexists with sharer mask %#x (single-owner violated)",
				lineAddr, e.owner, e.sharers)
		}
		if e.excl != noNode {
			return fmt.Errorf("coherence: line %#x: dirty owner %d coexists with exclusive grantee %d",
				lineAddr, e.owner, e.excl)
		}
	}
	if e.excl != noNode && e.sharers != 1<<uint(e.excl) {
		return fmt.Errorf("coherence: line %#x: exclusive grantee %d but sharer mask %#x is not exactly its bit",
			lineAddr, e.excl, e.sharers)
	}
	return nil
}

// CheckAll runs CheckLine over every line with directory state.
func (d *Directory) CheckAll(nodes int) error {
	for lineAddr := range d.entries {
		if err := d.CheckLine(lineAddr, nodes); err != nil {
			return err
		}
	}
	return nil
}

// StateCounts summarizes directory state for diagnostics: total lines
// tracked, lines dirty in some cache (including unresolved Exclusive
// grants, which may be silently dirty), lines cached by >= 2 nodes, and
// lines classified migratory.
func (d *Directory) StateCounts() (lines, owned, shared, migratory int) {
	lines = len(d.entries)
	for _, e := range d.entries {
		if e.owner != noNode || e.excl != noNode {
			owned++
		}
		if bits.OnesCount64(e.sharers) >= 2 {
			shared++
		}
		if e.migratory {
			migratory++
		}
	}
	return
}

// DirtyReadFraction returns the fraction of directory reads serviced
// cache-to-cache (the paper: ~50% of OLTP L2 misses are dirty misses).
func (d *Directory) DirtyReadFraction() float64 {
	if d.Reads == 0 {
		return 0
	}
	return float64(d.ReadsDirty) / float64(d.Reads)
}

// ResetStats zeroes the protocol counters (directory state is kept); the
// migratory classification of lines is retained, since it describes the
// data, not the measurement interval.
func (d *Directory) ResetStats() {
	d.Reads, d.ReadsDirty, d.Writes, d.WritesShared = 0, 0, 0, 0
	d.Upgrades, d.Writebacks, d.Flushes = 0, 0, 0
	d.MigratoryLines, d.MigratoryReadsCC, d.MigratoryWrites = 0, 0, 0
}
