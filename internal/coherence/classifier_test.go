package coherence

import "testing"

func TestClassifierConcentration(t *testing.T) {
	c := NewClassifier()
	// One very hot line (90 misses) and 9 cold lines (1 each): the top 10%
	// of lines (1 line) covers 90/99 of the misses.
	for i := 0; i < 90; i++ {
		c.RecordWrite(1, 0x100, true)
	}
	for l := uint64(2); l <= 10; l++ {
		c.RecordWrite(l, 0x200+l, false)
	}
	if got := c.MigratoryLineCount(); got != 10 {
		t.Fatalf("line count = %d", got)
	}
	conc := c.WriteMissConcentration(0.10)
	if conc < 0.9 || conc > 0.92 {
		t.Errorf("top-10%% concentration = %f, want ~0.91", conc)
	}
	// CS fraction: 90 of 99 writes were inside critical sections.
	if got := c.WriteCSFraction(); got < 0.90 || got > 0.92 {
		t.Errorf("write CS fraction = %f", got)
	}
}

func TestClassifierPCConcentration(t *testing.T) {
	c := NewClassifier()
	for i := 0; i < 80; i++ {
		c.RecordRead(5, 0xAAA, true)
	}
	for pc := uint64(0); pc < 19; pc++ {
		c.RecordRead(6, 0x1000+pc*4, false)
	}
	// 20 PCs total; top 10% (2 PCs) covers 81/99.
	conc := c.PCConcentration(0.10)
	if conc < 0.8 || conc > 0.85 {
		t.Errorf("PC concentration = %f", conc)
	}
	if got := c.ReadCSFraction(); got < 0.8 || got > 0.82 {
		t.Errorf("read CS fraction = %f", got)
	}
}

func TestHotLines(t *testing.T) {
	c := NewClassifier()
	c.RecordWrite(3, 1, false)
	c.RecordWrite(3, 1, false)
	c.RecordWrite(7, 1, false)
	hot := c.HotLines(5)
	if len(hot) != 2 || hot[0] != 3 || hot[1] != 7 {
		t.Errorf("HotLines = %v, want [3 7]", hot)
	}
	if got := c.HotLines(1); len(got) != 1 || got[0] != 3 {
		t.Errorf("HotLines(1) = %v", got)
	}
}

func TestClassifierReset(t *testing.T) {
	c := NewClassifier()
	c.RecordWrite(1, 2, true)
	c.RecordRead(1, 2, true)
	c.Reset()
	if c.MigratoryLineCount() != 0 || c.MigWriteTotal != 0 || c.MigReadTotal != 0 {
		t.Error("Reset incomplete")
	}
	if c.WriteCSFraction() != 0 || c.ReadCSFraction() != 0 {
		t.Error("fractions nonzero after reset")
	}
}

func TestEmptyClassifier(t *testing.T) {
	c := NewClassifier()
	if c.WriteMissConcentration(0.1) != 0 || c.PCConcentration(0.1) != 0 {
		t.Error("empty classifier should report zero concentration")
	}
	if len(c.HotLines(3)) != 0 {
		t.Error("empty classifier should have no hot lines")
	}
}
