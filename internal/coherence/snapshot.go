package coherence

// Checkpoint DTOs for the directory protocol state and the migratory
// classifier. The probe callback and MigratoryOpt flag are re-wired /
// re-derived from configuration by memsys on rebuild.

// DirEntryState is one line's directory state.
type DirEntryState struct {
	Sharers    uint64
	Owner      int8
	Excl       int8
	LastWriter int8
	Migratory  bool
	EverShared bool
}

// DirectoryState is the dynamic state of the Directory.
type DirectoryState struct {
	Entries map[uint64]DirEntryState

	MigratoryTransfers uint64
	Reads              uint64
	ReadsDirty         uint64
	Writes             uint64
	WritesShared       uint64
	Upgrades           uint64
	Writebacks         uint64
	Flushes            uint64
	MigratoryLines     uint64
	MigratoryReadsCC   uint64
	MigratoryWrites    uint64
}

// Snapshot captures the directory.
func (d *Directory) Snapshot() DirectoryState {
	s := DirectoryState{
		Entries:            make(map[uint64]DirEntryState, len(d.entries)),
		MigratoryTransfers: d.MigratoryTransfers,
		Reads:              d.Reads,
		ReadsDirty:         d.ReadsDirty,
		Writes:             d.Writes,
		WritesShared:       d.WritesShared,
		Upgrades:           d.Upgrades,
		Writebacks:         d.Writebacks,
		Flushes:            d.Flushes,
		MigratoryLines:     d.MigratoryLines,
		MigratoryReadsCC:   d.MigratoryReadsCC,
		MigratoryWrites:    d.MigratoryWrites,
	}
	for line, e := range d.entries {
		s.Entries[line] = DirEntryState{
			Sharers:    e.sharers,
			Owner:      e.owner,
			Excl:       e.excl,
			LastWriter: e.lastWriter,
			Migratory:  e.migratory,
			EverShared: e.everShared,
		}
	}
	return s
}

// Restore refills the directory. The probe callback installed by
// SetProbe and the MigratoryOpt flag are left as configured.
func (d *Directory) Restore(s DirectoryState) {
	clear(d.entries)
	for line, e := range s.Entries {
		d.entries[line] = dirEntry{
			sharers:    e.Sharers,
			owner:      e.Owner,
			excl:       e.Excl,
			lastWriter: e.LastWriter,
			migratory:  e.Migratory,
			everShared: e.EverShared,
		}
	}
	d.MigratoryTransfers = s.MigratoryTransfers
	d.Reads = s.Reads
	d.ReadsDirty = s.ReadsDirty
	d.Writes = s.Writes
	d.WritesShared = s.WritesShared
	d.Upgrades = s.Upgrades
	d.Writebacks = s.Writebacks
	d.Flushes = s.Flushes
	d.MigratoryLines = s.MigratoryLines
	d.MigratoryReadsCC = s.MigratoryReadsCC
	d.MigratoryWrites = s.MigratoryWrites
}

// ClassifierState is the dynamic state of the Classifier.
type ClassifierState struct {
	LineWriteMisses map[uint64]uint64
	PCRefs          map[uint64]uint64
	MigWriteTotal   uint64
	MigWriteInCS    uint64
	MigReadTotal    uint64
	MigReadInCS     uint64
}

// Snapshot captures the classifier.
func (c *Classifier) Snapshot() ClassifierState {
	s := ClassifierState{
		LineWriteMisses: make(map[uint64]uint64, len(c.lineWriteMisses)),
		PCRefs:          make(map[uint64]uint64, len(c.pcRefs)),
		MigWriteTotal:   c.MigWriteTotal,
		MigWriteInCS:    c.MigWriteInCS,
		MigReadTotal:    c.MigReadTotal,
		MigReadInCS:     c.MigReadInCS,
	}
	for k, v := range c.lineWriteMisses {
		s.LineWriteMisses[k] = v
	}
	for k, v := range c.pcRefs {
		s.PCRefs[k] = v
	}
	return s
}

// Restore refills the classifier.
func (c *Classifier) Restore(s ClassifierState) {
	clear(c.lineWriteMisses)
	clear(c.pcRefs)
	for k, v := range s.LineWriteMisses {
		c.lineWriteMisses[k] = v
	}
	for k, v := range s.PCRefs {
		c.pcRefs[k] = v
	}
	c.MigWriteTotal = s.MigWriteTotal
	c.MigWriteInCS = s.MigWriteInCS
	c.MigReadTotal = s.MigReadTotal
	c.MigReadInCS = s.MigReadInCS
}
