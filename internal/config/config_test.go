package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Nodes != 4 || cfg.IssueWidth != 4 || cfg.WindowSize != 64 {
		t.Error("defaults do not match Figure 1")
	}
	if cfg.L1I.SizeBytes != 128<<10 || cfg.L1D.SizeBytes != 128<<10 || cfg.L2.SizeBytes != 8<<20 {
		t.Error("cache sizes do not match Figure 1")
	}
	if cfg.LineBytes() != 64 || cfg.PageBytes != 8<<10 {
		t.Error("line/page sizes do not match Figure 1")
	}
	if cfg.Consistency != RC {
		t.Error("base system must be release consistent")
	}
}

func TestCacheGeometry(t *testing.T) {
	c := CacheConfig{SizeBytes: 128 << 10, Assoc: 2, LineBytes: 64, HitCycles: 1, Ports: 1, MSHRs: 8}
	if got, want := c.Sets(), 1024; got != want {
		t.Errorf("Sets() = %d, want %d", got, want)
	}
	if err := c.Validate("t"); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
		want string
	}{
		{"no nodes", func(c *Config) { c.Nodes = 0 }, "node"},
		{"zero issue", func(c *Config) { c.IssueWidth = 0 }, "issue"},
		{"window < issue", func(c *Config) { c.WindowSize = 2 }, "window"},
		{"zero memq", func(c *Config) { c.MemQueueSize = 0 }, "memory queue"},
		{"bad line", func(c *Config) { c.L1D.LineBytes = 48 }, "divisible"},
		{"line mismatch", func(c *Config) { c.L1I.LineBytes = 128; c.L1I.SizeBytes = 256 << 10 }, "line sizes"},
		{"bad page", func(c *Config) { c.PageBytes = 3000 }, "page size"},
		{"page < line", func(c *Config) { c.PageBytes = 32 }, "page size"},
		{"no mshr", func(c *Config) { c.L2.MSHRs = 0 }, "MSHR"},
		{"negative sbuf", func(c *Config) { c.StreamBufEntries = -1 }, "stream buffer"},
		{"bad model", func(c *Config) { c.Consistency = ConsistencyModel(9) }, "consistency"},
	}
	for _, tc := range cases {
		cfg := Default()
		tc.mod(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if RC.String() != "RC" || PC.String() != "PC" || SC.String() != "SC" {
		t.Error("consistency model names wrong")
	}
	if ImplPlain.String() != "plain" || ImplSpeculative.String() != "+pf+spec" {
		t.Error("implementation names wrong")
	}
	if !strings.Contains(ConsistencyModel(7).String(), "7") {
		t.Error("unknown model should include its value")
	}
}

func TestLatencyComposition(t *testing.T) {
	// Verify the documented Figure 1 composition arithmetic stays true if
	// someone edits the constants.
	cfg := Default()
	local := 1 + 1 + cfg.L2.HitCycles + cfg.BusCycles + cfg.DirCycles + cfg.MemoryCycles + cfg.BusCycles
	if local < 85 || local > 115 {
		t.Errorf("local read composition = %d cycles, want ~100 (Figure 1)", local)
	}
	ctrl := cfg.HopCycles + cfg.CtrlFlits*cfg.FlitCycles
	data := cfg.HopCycles + cfg.DataFlits*cfg.FlitCycles
	remote := local + ctrl + data
	if remote < 150 || remote > 195 {
		t.Errorf("remote read composition = %d cycles, want 160-180", remote)
	}
	dirty := 2*cfg.BusCycles + 2*ctrl + cfg.DirCycles + cfg.InterventionCycles + cfg.L2.HitCycles + data - ctrl
	if dirty < 250 || dirty > 340 {
		t.Errorf("cache-to-cache composition = %d cycles, want 280-310", dirty)
	}
}
