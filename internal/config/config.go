// Package config defines the simulated machine parameters.
//
// The defaults reproduce Figure 1 of Ranganathan et al., "Performance of
// Database Workloads on Shared-Memory Systems with Out-of-Order Processors"
// (ASPLOS 1998): a 4-node CC-NUMA machine built from 1 GHz 4-way-issue
// out-of-order processors with 64-entry instruction windows, 128KB 2-way L1
// caches, an 8MB 4-way L2, 8 MSHRs per cache, fully associative 128-entry
// TLBs, and contentionless latencies of roughly 100 cycles for local reads,
// 160-180 for remote reads, and 280-310 for cache-to-cache transfers.
package config

import "fmt"

// ConsistencyModel selects the hardware memory consistency model.
type ConsistencyModel int

const (
	// RC is release consistency (the paper's shorthand for the Alpha
	// memory model with MB/WMB fences at synchronization points).
	RC ConsistencyModel = iota
	// PC is processor consistency: stores retire in order through a FIFO
	// store buffer, loads issue in program order but may bypass stores.
	PC
	// SC is sequential consistency: memory operations are issued one at a
	// time in program order in the straightforward implementation.
	SC
)

func (m ConsistencyModel) String() string {
	switch m {
	case RC:
		return "RC"
	case PC:
		return "PC"
	case SC:
		return "SC"
	}
	return fmt.Sprintf("ConsistencyModel(%d)", int(m))
}

// ConsistencyImpl selects the implementation aggressiveness for the chosen
// consistency model (Section 3.4 of the paper).
type ConsistencyImpl int

const (
	// ImplPlain is the straightforward implementation.
	ImplPlain ConsistencyImpl = iota
	// ImplPrefetch adds hardware prefetching from the instruction window:
	// non-binding prefetches are issued for memory operations whose
	// addresses are known but which are blocked by consistency constraints.
	ImplPrefetch
	// ImplSpeculative additionally allows speculative load execution with
	// rollback on detected ordering violations.
	ImplSpeculative
)

func (i ConsistencyImpl) String() string {
	switch i {
	case ImplPlain:
		return "plain"
	case ImplPrefetch:
		return "+pf"
	case ImplSpeculative:
		return "+pf+spec"
	}
	return fmt.Sprintf("ConsistencyImpl(%d)", int(i))
}

// LatchPolicy selects how the db engine's latch (lock) instructions
// execute — the pluggable concurrency-control entry point of the lock
// path. The zero value is the plain test-and-set latch the paper models,
// so existing configurations are unchanged.
type LatchPolicy int

const (
	// LatchPlain spins on the lock table and performs the latch
	// read-modify-write on acquire (the baseline migratory latch line).
	LatchPlain LatchPolicy = iota
	// LatchHints wraps the plain latch with the paper's software hints
	// (Section 4.2): a non-binding exclusive prefetch of the latch line
	// while spinning, and a flush pushing it home at release.
	LatchHints
	// LatchHTM elides the latch with a best-effort hardware transaction
	// (internal/htm): the critical section runs speculatively, conflicts
	// and capacity overflows abort, and a bounded retry policy falls back
	// to the real latch so forward progress is never speculative.
	LatchHTM
)

func (p LatchPolicy) String() string {
	switch p {
	case LatchPlain:
		return "plain"
	case LatchHints:
		return "hints"
	case LatchHTM:
		return "htm"
	}
	return fmt.Sprintf("LatchPolicy(%d)", int(p))
}

// ParseLatchPolicy inverts String.
func ParseLatchPolicy(s string) (LatchPolicy, bool) {
	for _, p := range []LatchPolicy{LatchPlain, LatchHints, LatchHTM} {
		if p.String() == s {
			return p, true
		}
	}
	return LatchPlain, false
}

// HTMConfig bounds the best-effort hardware-transaction model used by
// LatchHTM. Zero set bounds are derived from the cache geometry at system
// construction (see Config.HTMReadSetLines/HTMWriteSetLines).
type HTMConfig struct {
	// ReadSetLines / WriteSetLines bound the transactional read and write
	// sets in cache lines. 0 = derive from the cache geometry: the read
	// set tracks up to the L1D capacity, the write set a quarter of it
	// (the POWER-style asymmetry: stores need speculative versioning
	// space, loads only tracking).
	ReadSetLines  int
	WriteSetLines int
	// MaxRetries is the number of speculative re-execution attempts after
	// an abort before the fallback path takes the real latch.
	MaxRetries int
	// BackoffCycles is the linear backoff unit between retries: attempt k
	// waits k*BackoffCycles before re-speculating.
	BackoffCycles int
}

// Validate reports the first HTM parameter inconsistency found.
func (h HTMConfig) Validate() error {
	if h.ReadSetLines < 0 || h.WriteSetLines < 0 {
		return fmt.Errorf("config: htm: set bounds must be non-negative")
	}
	if h.MaxRetries < 0 {
		return fmt.Errorf("config: htm: MaxRetries must be non-negative")
	}
	if h.BackoffCycles < 0 {
		return fmt.Errorf("config: htm: BackoffCycles must be non-negative")
	}
	return nil
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	Assoc     int // ways per set
	LineBytes int // line size
	HitCycles int // access latency on a hit
	Ports     int // requests accepted per cycle
	MSHRs     int // outstanding misses to distinct lines
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (c.Assoc * c.LineBytes)
}

// Validate reports a descriptive error when the geometry is inconsistent.
func (c CacheConfig) Validate(name string) error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("config: %s: size/assoc/line must be positive", name)
	}
	if c.SizeBytes%(c.Assoc*c.LineBytes) != 0 {
		return fmt.Errorf("config: %s: size %d not divisible by assoc*line %d",
			name, c.SizeBytes, c.Assoc*c.LineBytes)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("config: %s: line size %d not a power of two", name, c.LineBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("config: %s: set count %d not a power of two", name, s)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("config: %s: need at least one MSHR", name)
	}
	if c.Ports <= 0 {
		return fmt.Errorf("config: %s: need at least one port", name)
	}
	return nil
}

// FaultConfig configures the deterministic fault injector (internal/fault).
// The zero value injects nothing. All faults are timing-only: they delay
// messages and retry transactions but never change protocol or workload
// state, so a run with faults enabled retires exactly the instructions of a
// fault-free run.
type FaultConfig struct {
	Enabled bool
	// Seed makes the injected fault sequence reproducible. Two runs with
	// the same seed and configuration inject identical faults.
	Seed uint64

	// MeshDelayProb delays each mesh message with this probability by a
	// uniform 1..MeshDelayMax extra cycles (link jitter, router faults).
	MeshDelayProb float64
	MeshDelayMax  int

	// NACKProb makes the home directory NACK an incoming request with this
	// probability (resource conflict, buffer full). The requester backs off
	// NACKBackoff*(attempt+1) cycles and retries; after NACKMaxRetries
	// consecutive NACKs the request is serviced unconditionally, bounding
	// the retry storm.
	NACKProb       float64
	NACKMaxRetries int
	NACKBackoff    int

	// MemStallProb stalls each memory-bank access with this probability for
	// MemStallCycles extra cycles (transient DRAM contention/refresh).
	MemStallProb   float64
	MemStallCycles int
}

// Validate reports the first fault-injection inconsistency found.
func (f FaultConfig) Validate() error {
	if !f.Enabled {
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"MeshDelayProb", f.MeshDelayProb},
		{"NACKProb", f.NACKProb},
		{"MemStallProb", f.MemStallProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("config: faults: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	if f.MeshDelayProb > 0 && f.MeshDelayMax <= 0 {
		return fmt.Errorf("config: faults: MeshDelayMax must be positive when MeshDelayProb > 0")
	}
	if f.NACKProb > 0 && f.NACKMaxRetries <= 0 {
		return fmt.Errorf("config: faults: NACKMaxRetries must be positive when NACKProb > 0")
	}
	if f.NACKBackoff < 0 || f.MemStallCycles < 0 {
		return fmt.Errorf("config: faults: backoff/stall cycles must be non-negative")
	}
	if f.MemStallProb > 0 && f.MemStallCycles <= 0 {
		return fmt.Errorf("config: faults: MemStallCycles must be positive when MemStallProb > 0")
	}
	return nil
}

// Config holds every machine parameter. The zero value is not usable; start
// from Default() and override fields.
type Config struct {
	// --- system ---
	Nodes int // processors (one per node)

	// --- processor core ---
	InOrder            bool // in-order issue instead of out-of-order
	IssueWidth         int  // fetch/dispatch/issue/retire width
	WindowSize         int  // instruction window (reorder buffer) entries
	IntALUs            int  // integer functional units
	FPUs               int  // floating-point functional units
	AddrGenUnits       int  // address-generation units
	IntLatency         int  // integer op latency (cycles)
	FPLatency          int  // floating-point op latency (cycles)
	MemQueueSize       int  // load/store queue entries
	WriteBufEntries    int  // post-retirement store/write buffer entries
	MaxSpeculatedBr    int  // simultaneously speculated branches
	BranchRestart      int  // pipeline restart cycles after mispredict/violation
	PerfectBPred       bool // Figure 4: perfect branch prediction
	InfiniteFUs        bool // Figure 4: infinite functional units
	PerfectICache      bool // Figure 4 / 7a: every instruction fetch hits
	PerfectITLB        bool // Figure 7a: no iTLB misses
	PerfectDTLB        bool // Figure 4 (rightmost bar)
	CtxSwitchCycles    int  // OS context-switch cost
	FetchBufferEntries int  // decoupled fetch buffer capacity (instructions)

	// --- branch predictor (PA(4K,12,1)/g(12,12) hybrid, Figure 1) ---
	BPredPAEntries   int // per-address history table entries
	BPredHistoryBits int // history register width
	BTBEntries       int
	BTBAssoc         int
	RASEntries       int

	// --- memory consistency ---
	Consistency     ConsistencyModel
	ConsistencyOpts ConsistencyImpl

	// --- latch execution policy ---

	// LatchPolicy selects the lock-path strategy: plain latch, the
	// paper's prefetch+flush hints, or HTM elision. The zero value
	// (LatchPlain) reproduces the baseline exactly.
	LatchPolicy LatchPolicy
	// HTM bounds the transactional model when LatchPolicy is LatchHTM.
	HTM HTMConfig

	// --- caches ---
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	// Instruction stream buffer between L1I and L2 (Section 4.1).
	// 0 disables it.
	StreamBufEntries int

	// BTBPrefetch enables the Section 4.1 alternative the paper evaluated
	// in a preliminary study: prefetching the instruction lines of
	// predicted branch targets through the BTB. The paper found the
	// benefits limited by path-prediction accuracy; ext-btbpf checks.
	BTBPrefetch bool

	// --- TLBs / VM ---
	PageBytes   int
	ITLBEntries int
	DTLBEntries int
	TLBMissCost int // software miss-handler cycles

	// --- memory & interconnect (contentionless latencies compose to the
	// Figure 1 targets: local ~100, remote ~160-180, dirty ~280-310) ---
	MemoryCycles       int  // DRAM access at the home node
	BusCycles          int  // split-transaction bus traversal within a node
	DirCycles          int  // directory controller occupancy/lookup
	HopCycles          int  // per-hop mesh router latency
	FlitCycles         int  // per-flit serialization per link
	DataFlits          int  // flits in a data (line) message
	CtrlFlits          int  // flits in a control message
	MemBanks           int  // interleaved memory banks per node (contention)
	InterventionCycles int  // extra owner-side cost of a cache-to-cache forward
	MigratoryBound     bool // Figure 7b bound: migratory reads serviced 40% faster
	FlushKeepsClean    bool // flush keeps a clean copy in the cache (paper's choice)
	// MigratoryProtocol enables the adaptive migratory coherence protocol
	// (Cox & Fowler / Stenstrom et al.): reads of migratory lines receive
	// ownership with the data. The paper's footnote 2 argues this cannot
	// help under relaxed consistency; the ext-migproto ablation checks it.
	MigratoryProtocol bool

	// --- telemetry ---

	// TelemetryInterval is the sampling period, in simulated cycles, for
	// the interval telemetry pipeline (internal/telemetry) when a run has
	// one attached and the pipeline does not set its own interval. 0
	// falls back to telemetry.DefaultInterval (100k cycles). Sampling is
	// a pure observer: it never changes simulated timing.
	TelemetryInterval uint64

	// --- robustness / debugging ---

	// DebugChecks enables the coherence invariant checker (single dirty
	// copy, sharer-list consistency after every directory transition) and
	// the processor's load/store order checks under SC/PC. Violations
	// panic; core.System.Run recovers them into diagnostic errors.
	DebugChecks bool

	// Faults configures the deterministic fault injector (internal/fault).
	Faults FaultConfig
}

// Default returns the base system of Figure 1.
func Default() Config {
	return Config{
		Nodes: 4,

		InOrder:            false,
		IssueWidth:         4,
		WindowSize:         64,
		IntALUs:            2,
		FPUs:               2,
		AddrGenUnits:       2,
		IntLatency:         1,
		FPLatency:          4,
		MemQueueSize:       32,
		WriteBufEntries:    8,
		MaxSpeculatedBr:    8,
		BranchRestart:      4,
		CtxSwitchCycles:    2000,
		FetchBufferEntries: 32,

		BPredPAEntries:   4096,
		BPredHistoryBits: 12,
		BTBEntries:       512,
		BTBAssoc:         4,
		RASEntries:       32,

		Consistency:     RC,
		ConsistencyOpts: ImplPlain,

		LatchPolicy: LatchPlain,
		HTM:         HTMConfig{MaxRetries: 4, BackoffCycles: 32},

		L1I: CacheConfig{SizeBytes: 128 << 10, Assoc: 2, LineBytes: 64, HitCycles: 1, Ports: 1, MSHRs: 8},
		L1D: CacheConfig{SizeBytes: 128 << 10, Assoc: 2, LineBytes: 64, HitCycles: 1, Ports: 2, MSHRs: 8},
		L2:  CacheConfig{SizeBytes: 8 << 20, Assoc: 4, LineBytes: 64, HitCycles: 20, Ports: 1, MSHRs: 8},

		StreamBufEntries: 0,

		PageBytes:   8 << 10,
		ITLBEntries: 128,
		DTLBEntries: 128,
		TLBMissCost: 30,

		// These compose to the Figure 1 contentionless latencies:
		// local read  = L1(1) + L2 port(1) + L2(20) + bus(10) + dir(15)
		//             + mem(45) + bus(10)                      ~= 102
		// remote read = local + ctrl msg(20+2*3) + data msg(20+8*3) ~= 172
		// dirty read  = bus + ctrl + dir + fwd ctrl + intervention
		//             + owner L2(20) + data + bus               ~= 291
		MemoryCycles:       45,
		BusCycles:          10,
		DirCycles:          15,
		HopCycles:          20,
		FlitCycles:         3,
		DataFlits:          8,
		CtrlFlits:          2,
		MemBanks:           4,
		InterventionCycles: 140,
		FlushKeepsClean:    true,

		TelemetryInterval: 100_000,
	}
}

// Validate reports the first configuration inconsistency found.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("config: need at least one node, got %d", c.Nodes)
	}
	if c.IssueWidth <= 0 {
		return fmt.Errorf("config: issue width must be positive, got %d", c.IssueWidth)
	}
	if c.WindowSize < c.IssueWidth {
		return fmt.Errorf("config: window size %d smaller than issue width %d", c.WindowSize, c.IssueWidth)
	}
	if c.MemQueueSize <= 0 {
		return fmt.Errorf("config: memory queue must be positive, got %d", c.MemQueueSize)
	}
	if err := c.L1I.Validate("L1I"); err != nil {
		return err
	}
	if err := c.L1D.Validate("L1D"); err != nil {
		return err
	}
	if err := c.L2.Validate("L2"); err != nil {
		return err
	}
	if c.L1I.LineBytes != c.L2.LineBytes || c.L1D.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("config: L1/L2 line sizes must match")
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("config: page size %d must be a positive power of two", c.PageBytes)
	}
	if c.PageBytes < c.L2.LineBytes {
		return fmt.Errorf("config: page size %d smaller than line size %d", c.PageBytes, c.L2.LineBytes)
	}
	if c.StreamBufEntries < 0 {
		return fmt.Errorf("config: stream buffer entries must be non-negative")
	}
	if c.Consistency != RC && c.Consistency != PC && c.Consistency != SC {
		return fmt.Errorf("config: unknown consistency model %d", c.Consistency)
	}
	if c.ITLBEntries <= 0 || c.DTLBEntries <= 0 {
		return fmt.Errorf("config: TLB entry counts must be positive (iTLB %d, dTLB %d)", c.ITLBEntries, c.DTLBEntries)
	}
	if c.MemBanks <= 0 {
		return fmt.Errorf("config: memory banks must be positive, got %d", c.MemBanks)
	}
	if c.WriteBufEntries <= 0 {
		return fmt.Errorf("config: write buffer entries must be positive, got %d", c.WriteBufEntries)
	}
	if c.FetchBufferEntries <= 0 {
		return fmt.Errorf("config: fetch buffer entries must be positive, got %d", c.FetchBufferEntries)
	}
	if c.LatchPolicy != LatchPlain && c.LatchPolicy != LatchHints && c.LatchPolicy != LatchHTM {
		return fmt.Errorf("config: unknown latch policy %d", c.LatchPolicy)
	}
	if err := c.HTM.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// LineBytes returns the (common) cache line size.
func (c Config) LineBytes() int { return c.L2.LineBytes }

// HTMReadSetLines resolves the transactional read-set bound: the
// configured value, or the L1D line capacity when unset — the tracking
// structure rides the data cache, so its reach is the cache's.
func (c Config) HTMReadSetLines() int {
	if c.HTM.ReadSetLines > 0 {
		return c.HTM.ReadSetLines
	}
	return c.L1D.SizeBytes / c.L1D.LineBytes
}

// HTMWriteSetLines resolves the transactional write-set bound: the
// configured value, or a quarter of the L1D line capacity when unset
// (speculative store versioning is the scarcer resource).
func (c Config) HTMWriteSetLines() int {
	if c.HTM.WriteSetLines > 0 {
		return c.HTM.WriteSetLines
	}
	return c.L1D.SizeBytes / c.L1D.LineBytes / 4
}
