// Package bpred implements the paper's branch prediction scheme (Figure 1):
// a hybrid PA(4K,12,1)/g(12,12) two-level predictor for conditional branches
// (Yeh & Patt style per-address component plus a global-history component,
// combined by a chooser table), a 512-entry 4-way branch target buffer for
// jump-target branches, and a 32-element return-address stack for
// call/return branches.
//
// The simulator is trace-driven, so the predictor's job is to decide whether
// a fetched branch would have been predicted correctly; mispredicted
// branches stall fetch until the branch resolves (the paper does not fetch
// wrong-path instructions either).
package bpred

import "repro/internal/trace"

// Config selects predictor geometry. Zero values are replaced by the
// paper's defaults in New.
type Config struct {
	PAEntries   int // per-address branch history table entries (4096)
	HistoryBits int // history register width for both components (12)
	BTBEntries  int // branch target buffer entries (512)
	BTBAssoc    int // BTB associativity (4)
	RASEntries  int // return address stack depth (32)
	Perfect     bool
}

// Predictor is a hybrid two-level branch predictor with BTB and RAS. Not
// safe for concurrent use; each simulated processor owns one.
type Predictor struct {
	cfg Config

	histMask uint32
	// Per-address component: BHT of history registers, PHT of 2-bit counters.
	paBHT []uint32
	paPHT []uint8
	// Global component.
	gHist uint32
	gPHT  []uint8
	// Chooser: 2-bit counters, 0/1 prefer per-address, 2/3 prefer global.
	chooser []uint8

	// BTB: set-associative, tag+target+LRU stamp.
	btbSets  int
	btbTags  []uint64
	btbTgt   []uint64
	btbStamp []uint64
	stamp    uint64

	// Return-address stack.
	ras    []uint64
	rasTop int

	// Statistics.
	CondBranches   uint64
	CondMispred    uint64
	TargetBranches uint64
	TargetMispred  uint64
}

// New returns a predictor with the given geometry (zeros = paper defaults).
func New(cfg Config) *Predictor {
	if cfg.PAEntries == 0 {
		cfg.PAEntries = 4096
	}
	if cfg.HistoryBits == 0 {
		cfg.HistoryBits = 12
	}
	if cfg.BTBEntries == 0 {
		cfg.BTBEntries = 512
	}
	if cfg.BTBAssoc == 0 {
		cfg.BTBAssoc = 4
	}
	if cfg.RASEntries == 0 {
		cfg.RASEntries = 32
	}
	p := &Predictor{cfg: cfg}
	p.histMask = (1 << cfg.HistoryBits) - 1
	phtSize := 1 << cfg.HistoryBits
	p.paBHT = make([]uint32, cfg.PAEntries)
	p.paPHT = make([]uint8, phtSize)
	p.gPHT = make([]uint8, phtSize)
	p.chooser = make([]uint8, cfg.PAEntries)
	for i := range p.paPHT {
		p.paPHT[i] = 1 // weakly not-taken
		p.gPHT[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	p.btbSets = cfg.BTBEntries / cfg.BTBAssoc
	if p.btbSets == 0 {
		p.btbSets = 1
	}
	n := p.btbSets * cfg.BTBAssoc
	p.btbTags = make([]uint64, n)
	p.btbTgt = make([]uint64, n)
	p.btbStamp = make([]uint64, n)
	p.ras = make([]uint64, cfg.RASEntries)
	return p
}

func taken2bit(c uint8) bool { return c >= 2 }

func inc2bit(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return c
}

func dec2bit(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}

// pcIndex hashes an instruction address to a table index (instructions are
// 4-byte aligned).
func pcIndex(pc uint64, n int) int { return int((pc >> 2) % uint64(n)) }

// PredictAndUpdate consults and trains the predictor for the fetched branch
// in, returning true when the prediction (direction and target, as
// applicable) was correct. Non-branch instructions return true.
func (p *Predictor) PredictAndUpdate(in *trace.Instr) bool {
	switch in.Op {
	case trace.OpBranch:
		return p.condBranch(in)
	case trace.OpJump:
		return p.targetBranch(in)
	case trace.OpCall:
		// Calls push the return address; the target is predicted by the BTB.
		ok := p.targetBranch(in)
		p.rasPush(in.PC + 4)
		return ok
	case trace.OpReturn:
		p.TargetBranches++
		predicted := p.rasPop()
		if p.cfg.Perfect {
			return true
		}
		if predicted != in.Target {
			p.TargetMispred++
			return false
		}
		return true
	}
	return true
}

func (p *Predictor) condBranch(in *trace.Instr) bool {
	p.CondBranches++
	bi := pcIndex(in.PC, len(p.paBHT))
	hist := p.paBHT[bi] & p.histMask
	paPred := taken2bit(p.paPHT[hist])
	gPred := taken2bit(p.gPHT[p.gHist&p.histMask])
	useGlobal := p.chooser[bi] >= 2
	pred := paPred
	if useGlobal {
		pred = gPred
	}

	// Train: chooser moves toward whichever component was right when they
	// disagree; both PHTs train on the outcome; histories shift in the
	// outcome.
	if paPred != gPred {
		if gPred == in.Taken {
			p.chooser[bi] = inc2bit(p.chooser[bi])
		} else {
			p.chooser[bi] = dec2bit(p.chooser[bi])
		}
	}
	if in.Taken {
		p.paPHT[hist] = inc2bit(p.paPHT[hist])
		p.gPHT[p.gHist&p.histMask] = inc2bit(p.gPHT[p.gHist&p.histMask])
	} else {
		p.paPHT[hist] = dec2bit(p.paPHT[hist])
		p.gPHT[p.gHist&p.histMask] = dec2bit(p.gPHT[p.gHist&p.histMask])
	}
	bit := uint32(0)
	if in.Taken {
		bit = 1
	}
	p.paBHT[bi] = ((p.paBHT[bi] << 1) | bit) & p.histMask
	p.gHist = ((p.gHist << 1) | bit) & p.histMask

	if p.cfg.Perfect {
		return true
	}
	if pred != in.Taken {
		p.CondMispred++
		return false
	}
	return true
}

func (p *Predictor) targetBranch(in *trace.Instr) bool {
	p.TargetBranches++
	set := pcIndex(in.PC, p.btbSets)
	base := set * p.cfg.BTBAssoc
	p.stamp++
	hitWay := -1
	for w := 0; w < p.cfg.BTBAssoc; w++ {
		if p.btbTags[base+w] == in.PC {
			hitWay = w
			break
		}
	}
	correct := false
	if hitWay >= 0 {
		correct = p.btbTgt[base+hitWay] == in.Target
		p.btbTgt[base+hitWay] = in.Target
		p.btbStamp[base+hitWay] = p.stamp
	} else {
		// Install, evicting the LRU way.
		lru := 0
		for w := 1; w < p.cfg.BTBAssoc; w++ {
			if p.btbStamp[base+w] < p.btbStamp[base+lru] {
				lru = w
			}
		}
		p.btbTags[base+lru] = in.PC
		p.btbTgt[base+lru] = in.Target
		p.btbStamp[base+lru] = p.stamp
	}
	if p.cfg.Perfect {
		return true
	}
	if !correct {
		p.TargetMispred++
	}
	return correct
}

func (p *Predictor) rasPush(addr uint64) {
	p.ras[p.rasTop] = addr
	p.rasTop = (p.rasTop + 1) % len(p.ras)
}

func (p *Predictor) rasPop() uint64 {
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	return p.ras[p.rasTop]
}

// MispredictRate returns the cumulative conditional-branch misprediction
// rate (the paper reports 11% for OLTP).
func (p *Predictor) MispredictRate() float64 {
	if p.CondBranches == 0 {
		return 0
	}
	return float64(p.CondMispred) / float64(p.CondBranches)
}
