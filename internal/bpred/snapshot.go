package bpred

import "fmt"

// PredictorState is the dynamic state of a Predictor: history tables,
// BTB contents, return-address stack, and counters. Geometry is rebuilt
// from configuration by New.
type PredictorState struct {
	PABHT    []uint32
	PAPHT    []uint8
	GHist    uint32
	GPHT     []uint8
	Chooser  []uint8
	BTBTags  []uint64
	BTBTgt   []uint64
	BTBStamp []uint64
	Stamp    uint64
	RAS      []uint64
	RASTop   int

	CondBranches   uint64
	CondMispred    uint64
	TargetBranches uint64
	TargetMispred  uint64
}

// Snapshot captures the predictor.
func (p *Predictor) Snapshot() PredictorState {
	return PredictorState{
		PABHT:          append([]uint32(nil), p.paBHT...),
		PAPHT:          append([]uint8(nil), p.paPHT...),
		GHist:          p.gHist,
		GPHT:           append([]uint8(nil), p.gPHT...),
		Chooser:        append([]uint8(nil), p.chooser...),
		BTBTags:        append([]uint64(nil), p.btbTags...),
		BTBTgt:         append([]uint64(nil), p.btbTgt...),
		BTBStamp:       append([]uint64(nil), p.btbStamp...),
		Stamp:          p.stamp,
		RAS:            append([]uint64(nil), p.ras...),
		RASTop:         p.rasTop,
		CondBranches:   p.CondBranches,
		CondMispred:    p.CondMispred,
		TargetBranches: p.TargetBranches,
		TargetMispred:  p.TargetMispred,
	}
}

// Restore refills the predictor from a snapshot taken with the same
// geometry.
func (p *Predictor) Restore(s PredictorState) error {
	if len(s.PABHT) != len(p.paBHT) || len(s.PAPHT) != len(p.paPHT) ||
		len(s.GPHT) != len(p.gPHT) || len(s.Chooser) != len(p.chooser) ||
		len(s.BTBTags) != len(p.btbTags) || len(s.BTBTgt) != len(p.btbTgt) ||
		len(s.BTBStamp) != len(p.btbStamp) || len(s.RAS) != len(p.ras) {
		return fmt.Errorf("bpred: snapshot geometry does not match configured predictor")
	}
	if s.RASTop < 0 || s.RASTop >= len(p.ras) {
		return fmt.Errorf("bpred: snapshot RAS top %d out of range", s.RASTop)
	}
	copy(p.paBHT, s.PABHT)
	copy(p.paPHT, s.PAPHT)
	p.gHist = s.GHist
	copy(p.gPHT, s.GPHT)
	copy(p.chooser, s.Chooser)
	copy(p.btbTags, s.BTBTags)
	copy(p.btbTgt, s.BTBTgt)
	copy(p.btbStamp, s.BTBStamp)
	p.stamp = s.Stamp
	copy(p.ras, s.RAS)
	p.rasTop = s.RASTop
	p.CondBranches = s.CondBranches
	p.CondMispred = s.CondMispred
	p.TargetBranches = s.TargetBranches
	p.TargetMispred = s.TargetMispred
	return nil
}
