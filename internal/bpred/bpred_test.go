package bpred

import (
	"testing"

	"repro/internal/trace"
)

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(Config{})
	in := trace.Instr{Op: trace.OpBranch, PC: 0x1000, Taken: true, Target: 0x900}
	// Always-taken branch: once the 12-bit history registers saturate
	// (12+ visits), predictions must be correct.
	for i := 0; i < 20; i++ {
		p.PredictAndUpdate(&in)
	}
	miss := 0
	for i := 0; i < 100; i++ {
		if !p.PredictAndUpdate(&in) {
			miss++
		}
	}
	if miss != 0 {
		t.Errorf("%d mispredictions on an always-taken branch after warm-up", miss)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	p := New(Config{})
	// A single-site alternating pattern is captured by the per-address
	// history component.
	for i := 0; i < 60; i++ {
		in := trace.Instr{Op: trace.OpBranch, PC: 0x2000, Taken: i%2 == 0, Target: 0x1f00}
		p.PredictAndUpdate(&in)
	}
	miss := 0
	for i := 0; i < 100; i++ {
		in := trace.Instr{Op: trace.OpBranch, PC: 0x2000, Taken: i%2 == 0, Target: 0x1f00}
		if !p.PredictAndUpdate(&in) {
			miss++
		}
	}
	if miss > 2 {
		t.Errorf("%d mispredictions on a learned alternating pattern", miss)
	}
}

func TestBTBTargetPrediction(t *testing.T) {
	p := New(Config{})
	jmp := trace.Instr{Op: trace.OpJump, PC: 0x3000, Target: 0x8000}
	if p.PredictAndUpdate(&jmp) {
		t.Error("first jump must miss the BTB")
	}
	if !p.PredictAndUpdate(&jmp) {
		t.Error("second identical jump must hit the BTB")
	}
	// Changing the target mispredicts once, then relearns.
	jmp.Target = 0x9000
	if p.PredictAndUpdate(&jmp) {
		t.Error("changed target must mispredict")
	}
	if !p.PredictAndUpdate(&jmp) {
		t.Error("new target must be learned")
	}
}

func TestRASNestedCalls(t *testing.T) {
	p := New(Config{})
	// call A -> call B -> return B -> return A: returns must predict.
	callA := trace.Instr{Op: trace.OpCall, PC: 0x100, Target: 0x1000}
	callB := trace.Instr{Op: trace.OpCall, PC: 0x1004, Target: 0x2000}
	retB := trace.Instr{Op: trace.OpReturn, PC: 0x2010, Target: 0x1008}
	retA := trace.Instr{Op: trace.OpReturn, PC: 0x1010, Target: 0x104}
	p.PredictAndUpdate(&callA)
	p.PredictAndUpdate(&callB)
	if !p.PredictAndUpdate(&retB) {
		t.Error("return B mispredicted despite matching RAS")
	}
	if !p.PredictAndUpdate(&retA) {
		t.Error("return A mispredicted despite matching RAS")
	}
	if p.TargetMispred != 2 { // the two cold calls missed the BTB
		t.Errorf("target mispredicts = %d, want 2 (cold calls)", p.TargetMispred)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	p := New(Config{RASEntries: 4})
	// Deep call chain overflows the 4-entry stack; inner returns still
	// predict, outermost do not (standard RAS behaviour).
	var calls []trace.Instr
	pc := uint64(0x100)
	for i := 0; i < 6; i++ {
		calls = append(calls, trace.Instr{Op: trace.OpCall, PC: pc, Target: pc + 0x1000})
		pc += 0x1000
	}
	for i := range calls {
		p.PredictAndUpdate(&calls[i])
	}
	// Innermost 4 returns predict correctly.
	for i := 5; i >= 2; i-- {
		ret := trace.Instr{Op: trace.OpReturn, PC: calls[i].Target + 4, Target: calls[i].PC + 4}
		if !p.PredictAndUpdate(&ret) {
			t.Errorf("return %d mispredicted within RAS depth", i)
		}
	}
}

func TestPerfectMode(t *testing.T) {
	p := New(Config{Perfect: true})
	for i := 0; i < 50; i++ {
		in := trace.Instr{Op: trace.OpBranch, PC: uint64(0x100 + 4*i), Taken: i%3 == 0, Target: 0x50}
		if !p.PredictAndUpdate(&in) {
			t.Fatal("perfect predictor mispredicted")
		}
		j := trace.Instr{Op: trace.OpJump, PC: uint64(0x9000 + 4*i), Target: uint64(i) * 64}
		if !p.PredictAndUpdate(&j) {
			t.Fatal("perfect predictor missed a jump target")
		}
	}
	if p.MispredictRate() != 0 {
		t.Error("perfect predictor has nonzero mispredict rate")
	}
}

func TestNonBranchIsAlwaysCorrect(t *testing.T) {
	p := New(Config{})
	in := trace.Instr{Op: trace.OpIntALU}
	if !p.PredictAndUpdate(&in) {
		t.Error("non-branches must not mispredict")
	}
	if p.CondBranches != 0 || p.TargetBranches != 0 {
		t.Error("non-branches must not be counted")
	}
}

func TestMispredictRate(t *testing.T) {
	p := New(Config{})
	if p.MispredictRate() != 0 {
		t.Error("empty predictor should report 0")
	}
	in := trace.Instr{Op: trace.OpBranch, PC: 0x4000, Taken: true}
	p.PredictAndUpdate(&in) // cold: weakly not-taken -> mispredict
	if p.MispredictRate() != 1 {
		t.Errorf("rate = %f after one cold mispredict", p.MispredictRate())
	}
}
