// Plain-text renderings of the three aggregate reports, shared by dbsim
// and traceview so both print identical tables.

package tracing

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// FormatStallProfile renders the stall-attribution profile: one row per
// site (or engine operation for rollup rows), busy and stall cycles, and
// the dominant stall categories. reference, when non-nil, is the
// simulator's own CPI breakdown; the footer then reports how closely the
// profile reconciles with it.
func FormatStallProfile(rows []ProfileRow, totals stats.Breakdown, reference *stats.Breakdown) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-10s %12s %12s | %10s %10s %10s %10s %10s\n",
		"pc", "op", "busy", "stall", "instr", "read_dirty", "read_other", "write", "sync")
	for _, r := range rows {
		pc := "-"
		if r.PC != 0 || r.Op == "" {
			pc = fmt.Sprintf("%#x", r.PC)
		}
		op := r.Op
		if op == "" {
			op = "?"
		}
		readOther := r.ByCat.Read() - r.ByCat[stats.ReadDirty]
		fmt.Fprintf(&sb, "%-12s %-10s %12.0f %12.0f | %10.0f %10.0f %10.0f %10.0f %10.0f\n",
			pc, op, r.ByCat[stats.Busy], r.Stall(),
			r.ByCat[stats.Instr], r.ByCat[stats.ReadDirty], readOther,
			r.ByCat[stats.Write], r.ByCat[stats.Sync])
	}
	pct := totals.Percentages()
	fmt.Fprintf(&sb, "total %.0f slot-cycles: busy %.1f%%, cpu_stall %.1f%%, instr %.1f%%, read %.1f%%, write %.1f%%, sync %.1f%%\n",
		totals.Total(), pct[stats.Busy], pct[stats.CPUStall], pct[stats.Instr],
		pct[stats.ReadL1]+pct[stats.ReadL2]+pct[stats.ReadLocal]+pct[stats.ReadRemote]+pct[stats.ReadDirty]+pct[stats.ReadDTLB],
		pct[stats.Write], pct[stats.Sync])
	if reference != nil {
		fmt.Fprintf(&sb, "reconciliation vs simulator breakdown: max category error %.3f%%\n",
			ReconcileError(totals, *reference)*100)
	}
	return sb.String()
}

// ReconcileError returns the largest per-category absolute difference
// between two breakdowns, as a fraction of the reference total (0 when
// the reference is empty).
func ReconcileError(got, ref stats.Breakdown) float64 {
	t := ref.Total()
	if t == 0 {
		return 0
	}
	var worst float64
	for i := range ref {
		if d := math.Abs(got[i]-ref[i]) / t; d > worst {
			worst = d
		}
	}
	return worst
}

// FormatMigratory renders the paper-§6-style dirty-miss attribution:
// the migratory vs non-migratory split, then the top individual lines.
func FormatMigratory(mig, non MigratoryTotals, rows []MigratoryRow) string {
	var sb strings.Builder
	totalCycles := mig.DirtyCycles + non.DirtyCycles
	pct := func(c uint64) float64 {
		if totalCycles == 0 {
			return 0
		}
		return float64(c) / float64(totalCycles) * 100
	}
	fmt.Fprintf(&sb, "%-14s %8s %12s %14s %8s\n", "sharing", "lines", "dirty misses", "dirty cycles", "time%")
	fmt.Fprintf(&sb, "%-14s %8d %12d %14d %7.1f%%\n", "migratory", mig.Lines, mig.DirtyMisses, mig.DirtyCycles, pct(mig.DirtyCycles))
	fmt.Fprintf(&sb, "%-14s %8d %12d %14d %7.1f%%\n", "non-migratory", non.Lines, non.DirtyMisses, non.DirtyCycles, pct(non.DirtyCycles))
	if len(rows) == 0 {
		return sb.String()
	}
	sb.WriteString("\ntop lines by dirty-miss cycles:\n")
	fmt.Fprintf(&sb, "%-12s %-8s %7s %8s %7s %12s %14s %-10s %9s\n",
		"line", "region", "block", "tenures", "owning", "dirty misses", "dirty cycles", "class", "protocol%")
	for _, r := range rows {
		blk := "-"
		if r.Block >= 0 {
			blk = fmt.Sprintf("%d", r.Block)
		}
		class := "non-migratory"
		if r.Migratory {
			class = "migratory"
		}
		fmt.Fprintf(&sb, "%#-12x %-8s %7s %8d %7d %12d %14d %-10s %8.0f%%\n",
			r.Line, r.Region, blk, r.Tenures, r.Owning, r.DirtyMisses, r.DirtyCycles,
			class, r.ProtocolAgree*100)
	}
	return sb.String()
}

// FormatHTM renders the latch-elision lifecycle: begins, commit rate,
// the abort taxonomy, and — against the stall-attribution totals — how
// the run's synchronization time splits between residual sync stall and
// abort-resolution stall by cause. totals is Analysis.Totals(), which
// reconciles with the simulator's own breakdown, so the recovered-stall
// attribution carries the same ~0% error.
func FormatHTM(h HTMTotals, totals stats.Breakdown) string {
	var sb strings.Builder
	commitPct := 0.0
	if h.Begins > 0 {
		commitPct = float64(h.Commits) / float64(h.Begins) * 100
	}
	fmt.Fprintf(&sb, "htm latch elision: begins %d  commits %d (%.1f%%)  fallbacks %d\n",
		h.Begins, h.Commits, commitPct, h.Fallbacks)
	fmt.Fprintf(&sb, "aborts: total %d  conflict %d  capacity %d  explicit %d\n",
		h.TotalAborts(), h.Aborts[0], h.Aborts[1], h.Aborts[2])
	fmt.Fprintf(&sb, "elided (latch-free) critical-section cycles: %d\n", h.ElidedCycles)
	fmt.Fprintf(&sb, "stall attribution (slot-cycles): sync %.0f  htm_conflict %.0f  htm_capacity %.0f  htm_explicit %.0f\n",
		totals[stats.Sync], totals[stats.HTMConflict], totals[stats.HTMCapacity], totals[stats.HTMExplicit])
	return sb.String()
}

// FormatLatency renders the per-class miss-latency histograms.
func FormatLatency(lat *[NumClasses]LatencyHist) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %9s %6s %6s |", "class", "misses", "mean", "min", "max")
	for _, b := range LatencyBounds {
		fmt.Fprintf(&sb, " %6s", fmt.Sprintf("<%d", b))
	}
	fmt.Fprintf(&sb, " %6s\n", fmt.Sprintf(">=%d", LatencyBounds[len(LatencyBounds)-1]))
	for c := Class(0); c < NumClasses; c++ {
		h := &lat[c]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-8s %10d %9.1f %6d %6d |", c, h.Count, h.Mean(), h.Min, h.Max)
		for _, n := range h.Buckets {
			fmt.Fprintf(&sb, " %6d", n)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
