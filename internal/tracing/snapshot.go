package tracing

import (
	"fmt"

	"repro/internal/stats"
)

// Checkpoint DTOs for the tracer. Options, the PC resolver, and meta
// are configuration re-applied on rebuild; the dynamic state is the
// retained ring, the id/sampling counters, the aggregators, and the
// open stall/lock/miss scratch. The ring is serialized in chronological
// order, so after restore Events() — the only order that reaches
// exports — is unchanged, though the internal head position is not
// preserved.

// StallSpanState mirrors stallSpan.
type StallSpanState struct {
	Active bool
	PC     uint64
	Cat    stats.Category
	Start  uint64
	Last   uint64
	Cycles float64
	Proc   int32
}

// LockPendState mirrors lockPend.
type LockPendState struct {
	Active bool
	Addr   uint64
	PC     uint64
	Start  uint64
	Proc   int32
}

// LineSharingState is a LineSharing plus its open-tenure scratch.
type LineSharingState struct {
	LineSharing
	Started  bool
	CurNode  int16
	CurWrite bool
}

// AnalysisState is the serialized aggregate view.
type AnalysisState struct {
	StartCycle uint64
	EndCycle   uint64
	Recorded   [numKinds]uint64
	Sites      map[uint64]Site
	Lines      map[uint64]LineSharingState
	Lat        [NumClasses]LatencyHist
	HTM        HTMTotals
}

// TracerState is the dynamic state of a Tracer.
type TracerState struct {
	Ring        []Event // chronological (oldest first)
	NextID      uint64
	Seen        [numKinds]uint64
	Kept        uint64
	SampledOut  uint64
	Overwritten uint64

	An AnalysisState

	Stalls  []StallSpanState
	Locks   []LockPendState
	LastAcq map[uint64]uint64
	LastRel map[uint64]uint64

	Miss       Event
	MissActive bool
}

// Snapshot captures the tracer's dynamic state.
func (t *Tracer) Snapshot() TracerState {
	s := TracerState{
		Ring:        t.Events(),
		NextID:      t.nextID,
		Seen:        t.seen,
		Kept:        t.kept,
		SampledOut:  t.sampledOut,
		Overwritten: t.overwritten,
		An: AnalysisState{
			StartCycle: t.an.StartCycle,
			EndCycle:   t.an.EndCycle,
			Recorded:   t.an.Recorded,
			Sites:      make(map[uint64]Site, len(t.an.Sites)),
			Lines:      make(map[uint64]LineSharingState, len(t.an.Lines)),
			Lat:        t.an.Lat,
			HTM:        t.an.HTM,
		},
		LastAcq:    make(map[uint64]uint64, len(t.lastAcq)),
		LastRel:    make(map[uint64]uint64, len(t.lastRel)),
		Miss:       t.miss,
		MissActive: t.missActive,
	}
	for pc, site := range t.an.Sites {
		s.An.Sites[pc] = *site
	}
	for addr, l := range t.an.Lines {
		s.An.Lines[addr] = LineSharingState{
			LineSharing: *l,
			Started:     l.started,
			CurNode:     l.curNode,
			CurWrite:    l.curWrite,
		}
	}
	for _, sp := range t.stalls {
		s.Stalls = append(s.Stalls, StallSpanState{
			Active: sp.active, PC: sp.pc, Cat: sp.cat,
			Start: sp.start, Last: sp.last, Cycles: sp.cycles, Proc: sp.proc,
		})
	}
	for _, lp := range t.locks {
		s.Locks = append(s.Locks, LockPendState{
			Active: lp.active, Addr: lp.addr, PC: lp.pc, Start: lp.start, Proc: lp.proc,
		})
	}
	for k, v := range t.lastAcq {
		s.LastAcq[k] = v
	}
	for k, v := range t.lastRel {
		s.LastRel[k] = v
	}
	return s
}

// Restore refills a tracer built with the same Options.
func (t *Tracer) Restore(s TracerState) error {
	if len(s.Ring) > cap(t.ring) {
		return fmt.Errorf("tracing: snapshot ring holds %d events, tracer capacity %d", len(s.Ring), cap(t.ring))
	}
	t.ring = append(t.ring[:0], s.Ring...)
	t.head = 0
	t.wrapped = s.Overwritten > 0
	t.nextID = s.NextID
	t.seen = s.Seen
	t.kept = s.Kept
	t.sampledOut = s.SampledOut
	t.overwritten = s.Overwritten

	t.an = NewAnalysis()
	t.an.StartCycle = s.An.StartCycle
	t.an.EndCycle = s.An.EndCycle
	t.an.Recorded = s.An.Recorded
	t.an.Lat = s.An.Lat
	t.an.HTM = s.An.HTM
	for pc, site := range s.An.Sites {
		site := site
		t.an.Sites[pc] = &site
	}
	for addr, ls := range s.An.Lines {
		l := ls.LineSharing
		l.started = ls.Started
		l.curNode = ls.CurNode
		l.curWrite = ls.CurWrite
		t.an.Lines[addr] = &l
	}

	t.stalls = t.stalls[:0]
	for _, sp := range s.Stalls {
		t.stalls = append(t.stalls, stallSpan{
			active: sp.Active, pc: sp.PC, cat: sp.Cat,
			start: sp.Start, last: sp.Last, cycles: sp.Cycles, proc: sp.Proc,
		})
	}
	t.locks = t.locks[:0]
	for _, lp := range s.Locks {
		t.locks = append(t.locks, lockPend{
			active: lp.Active, addr: lp.Addr, pc: lp.PC, start: lp.Start, proc: lp.Proc,
		})
	}
	t.lastAcq = make(map[uint64]uint64, len(s.LastAcq))
	for k, v := range s.LastAcq {
		t.lastAcq[k] = v
	}
	t.lastRel = make(map[uint64]uint64, len(s.LastRel))
	for k, v := range s.LastRel {
		t.lastRel[k] = v
	}
	t.miss = s.Miss
	t.missActive = s.MissActive
	return nil
}
