// The three aggregators: per-PC stall attribution, migratory-sharing
// classification of shared lines, and per-miss latency histograms. They
// are fed every event before sampling or ring overwrite, so their totals
// are exact and reconcile with the simulator's own CPI breakdown.

package tracing

import (
	"sort"

	"repro/internal/db"
	"repro/internal/htm"
	"repro/internal/stats"
)

// Site accumulates the execution-time charged to one instruction address,
// split by CPI category (busy slots plus every stall category).
type Site struct {
	ByCat stats.Breakdown
}

// LatencyBounds are the histogram bucket upper bounds (cycles); the last
// bucket is open-ended. Chosen around the simulated service points: L2
// hits ~20, local memory ~100, remote ~150-200, dirty 2-hop ~250-400.
var LatencyBounds = [...]uint64{32, 64, 128, 192, 256, 384, 512, 1024}

// NumLatencyBuckets includes the open-ended overflow bucket.
const NumLatencyBuckets = len(LatencyBounds) + 1

// LatencyHist is a per-service-class miss latency histogram.
type LatencyHist struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [NumLatencyBuckets]uint64
}

func (h *LatencyHist) add(lat uint64) {
	if h.Count == 0 || lat < h.Min {
		h.Min = lat
	}
	if lat > h.Max {
		h.Max = lat
	}
	h.Count++
	h.Sum += lat
	for i, b := range LatencyBounds {
		if lat < b {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[NumLatencyBuckets-1]++
}

// Mean returns the average latency (0 for an empty histogram).
func (h *LatencyHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// LineSharing tracks one cache line's cross-node handoff behaviour. A
// *tenure* is a maximal run of consecutive misses to the line by the same
// node; a tenure in which the node wrote (took ownership) is an *owning*
// tenure. A line is classified migratory when ownership ping-pongs: at
// least two tenures, and owning tenures make up at least half of them —
// the read-modify-write handoff pattern of paper Section 6 (locks,
// sequence counters, hot block headers).
type LineSharing struct {
	Tenures      uint32
	OwningTenure uint32
	Misses       uint64
	WriteMisses  uint64
	DirtyMisses  uint64
	DirtyCycles  uint64
	// ProtocolMigratory counts dirty misses the coherence layer itself
	// flagged as migratory transfers (the optimized 2-hop bound), used to
	// cross-check the event-stream classification against the protocol.
	ProtocolMigratory uint64

	// open-tenure scratch, not exported to reports
	started  bool
	curNode  int16
	curWrite bool
}

func (l *LineSharing) observe(ev *Event) {
	if !l.started || l.curNode != ev.CPU {
		l.closeTenure()
		l.started = true
		l.curNode = ev.CPU
	}
	if ev.Write {
		l.curWrite = true
		l.WriteMisses++
	}
	l.Misses++
	if ev.Class == ClassRemoteDirty {
		l.DirtyMisses++
		if ev.End > ev.Start {
			l.DirtyCycles += ev.End - ev.Start
		}
		if ev.Migratory {
			l.ProtocolMigratory++
		}
	}
}

func (l *LineSharing) closeTenure() {
	if !l.started {
		return
	}
	l.Tenures++
	if l.curWrite {
		l.OwningTenure++
	}
	l.curWrite = false
}

// IsMigratory reports the event-stream classification of the line.
func (l *LineSharing) IsMigratory() bool {
	return l.Tenures >= 2 && 2*l.OwningTenure >= l.Tenures
}

// Analysis is the exact aggregate view of a trace: it can be produced
// live by a Tracer, embedded in and recovered from an exported trace
// file, or (with reduced fidelity) rebuilt from retained raw events.
type Analysis struct {
	StartCycle uint64
	EndCycle   uint64
	// Recorded counts every event per kind before sampling/overwrite.
	Recorded [numKinds]uint64

	Sites map[uint64]*Site        // pc -> stall/busy attribution
	Lines map[uint64]*LineSharing // physical line addr -> sharing behaviour
	Lat   [NumClasses]LatencyHist // miss latency by service class
	HTM   HTMTotals               // latch-elision lifecycle totals
}

// HTMTotals aggregates the latch-elision lifecycle over the trace window.
type HTMTotals struct {
	Begins       uint64
	Commits      uint64
	Fallbacks    uint64
	Aborts       [htm.NumAbortCauses]uint64
	ElidedCycles uint64 // cycles inside committed (latch-free) critical sections
}

// TotalAborts sums the abort causes.
func (h *HTMTotals) TotalAborts() uint64 {
	var n uint64
	for _, a := range h.Aborts {
		n += a
	}
	return n
}

func (a *Analysis) addHTM(ev *Event) {
	switch ev.HTMOp {
	case HTMOpBegin:
		a.HTM.Begins++
	case HTMOpCommit:
		a.HTM.Commits++
		if ev.End > ev.Start {
			a.HTM.ElidedCycles += ev.End - ev.Start
		}
	case HTMOpAbort:
		if int(ev.Cause) < len(a.HTM.Aborts) {
			a.HTM.Aborts[ev.Cause]++
		}
	case HTMOpFallback:
		a.HTM.Fallbacks++
	}
}

// NewAnalysis returns an empty analysis.
func NewAnalysis() *Analysis {
	return &Analysis{
		Sites: make(map[uint64]*Site),
		Lines: make(map[uint64]*LineSharing),
	}
}

func (a *Analysis) site(pc uint64) *Site {
	s := a.Sites[pc]
	if s == nil {
		s = &Site{}
		a.Sites[pc] = s
	}
	return s
}

func (a *Analysis) addMiss(ev *Event) {
	if ev.End > ev.Start {
		a.Lat[ev.Class].add(ev.End - ev.Start)
	} else {
		a.Lat[ev.Class].add(0)
	}
	l := a.Lines[ev.Addr]
	if l == nil {
		l = &LineSharing{}
		a.Lines[ev.Addr] = l
	}
	l.observe(ev)
}

func (a *Analysis) closeTenures() {
	for _, l := range a.Lines {
		l.closeTenure()
		l.started = false
	}
}

// Totals sums the per-site attribution into one breakdown; it reconciles
// with the simulator's post-warm-up CPI breakdown (summed over CPUs).
func (a *Analysis) Totals() stats.Breakdown {
	var b stats.Breakdown
	for _, s := range a.Sites {
		b.Add(&s.ByCat)
	}
	return b
}

// RebuildFromEvents folds retained raw events into an Analysis — the
// fallback path for trace files without embedded aggregates. Busy time
// is not carried by raw events (it is aggregate-only), and a wrapped or
// sampled ring makes the result partial; prefer embedded aggregates.
func RebuildFromEvents(events []Event) *Analysis {
	a := NewAnalysis()
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindStall:
			a.site(ev.PC).ByCat[ev.Cat] += ev.Cycles
		case KindMiss:
			a.addMiss(ev)
		case KindHTM:
			a.addHTM(ev)
		}
		a.Recorded[ev.Kind]++
		if ev.End > a.EndCycle {
			a.EndCycle = ev.End
		}
	}
	a.closeTenures()
	return a
}

// ------------------------------------------------------------- reports --

// ProfileRow is one line of the stall-attribution profile.
type ProfileRow struct {
	PC    uint64 // 0 for operation-rollup rows
	Op    string
	ByCat stats.Breakdown
}

// Stall returns the row's non-busy (stall) cycles.
func (r *ProfileRow) Stall() float64 { return r.ByCat.Total() - r.ByCat[stats.Busy] }

// StallProfile returns the top-N sites ranked by stall cycles (busy
// excluded from the rank, included in the row). resolve may be nil.
func (a *Analysis) StallProfile(resolve func(uint64) string, topN int) []ProfileRow {
	rows := make([]ProfileRow, 0, len(a.Sites))
	for pc, s := range a.Sites {
		r := ProfileRow{PC: pc, ByCat: s.ByCat}
		if resolve != nil {
			r.Op = resolve(pc)
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		si, sj := rows[i].Stall(), rows[j].Stall()
		if si != sj {
			return si > sj
		}
		return rows[i].PC < rows[j].PC
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return rows
}

// OperationProfile rolls sites up by engine operation name (unresolved
// PCs fold into "?"), ranked by stall cycles.
func (a *Analysis) OperationProfile(resolve func(uint64) string) []ProfileRow {
	byOp := make(map[string]*ProfileRow)
	for pc, s := range a.Sites {
		op := "?"
		if resolve != nil {
			if n := resolve(pc); n != "" {
				op = n
			}
		}
		r := byOp[op]
		if r == nil {
			r = &ProfileRow{Op: op}
			byOp[op] = r
		}
		r.ByCat.Add(&s.ByCat)
	}
	rows := make([]ProfileRow, 0, len(byOp))
	for _, r := range byOp {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		si, sj := rows[i].Stall(), rows[j].Stall()
		if si != sj {
			return si > sj
		}
		return rows[i].Op < rows[j].Op
	})
	return rows
}

// MigratoryRow is one shared line in the migratory-sharing report.
type MigratoryRow struct {
	Line        uint64
	Region      string
	Block       int // buffer-cache block index, -1 outside the buffer pool
	Tenures     uint32
	Owning      uint32
	Misses      uint64
	DirtyMisses uint64
	DirtyCycles uint64
	Migratory   bool
	// ProtocolAgree is the fraction of the line's dirty misses the
	// protocol also flagged migratory.
	ProtocolAgree float64
}

// MigratoryTotals aggregates dirty-miss attribution over one class of
// lines (migratory or non-migratory).
type MigratoryTotals struct {
	Lines       int
	DirtyMisses uint64
	DirtyCycles uint64
}

// MigratorySummary classifies every line with dirty misses and returns
// the migratory vs non-migratory dirty-miss attribution (paper §6) plus
// the top-N individual lines ranked by dirty-miss cycles.
func (a *Analysis) MigratorySummary(topN int) (mig, non MigratoryTotals, rows []MigratoryRow) {
	for addr, l := range a.Lines {
		if l.DirtyMisses == 0 {
			continue
		}
		isMig := l.IsMigratory()
		tot := &non
		if isMig {
			tot = &mig
		}
		tot.Lines++
		tot.DirtyMisses += l.DirtyMisses
		tot.DirtyCycles += l.DirtyCycles
		row := MigratoryRow{
			Line: addr, Region: db.Region(addr), Block: -1,
			Tenures: l.Tenures, Owning: l.OwningTenure,
			Misses: l.Misses, DirtyMisses: l.DirtyMisses,
			DirtyCycles: l.DirtyCycles, Migratory: isMig,
		}
		if blk, ok := db.BlockOf(addr); ok {
			row.Block = blk
		}
		if l.DirtyMisses > 0 {
			row.ProtocolAgree = float64(l.ProtocolMigratory) / float64(l.DirtyMisses)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].DirtyCycles != rows[j].DirtyCycles {
			return rows[i].DirtyCycles > rows[j].DirtyCycles
		}
		return rows[i].Line < rows[j].Line
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	return mig, non, rows
}
