// Chrome trace-event export for wall-clock observability spans
// (internal/obs) — the sweep-orchestration counterpart of WriteChrome's
// cycle-resolved simulator traces. It reuses the same event/file shapes
// so cmd/sweeptrace output loads in Perfetto and passes
// scripts/tracecheck exactly like a dbsim trace: one Perfetto process
// per OS process (sweep client, sweepd, each worker), one thread per
// sweep point (control-plane spans on a "control" track), X slices with
// clamped durations, and flow links stitching cross-process parent
// edges (lease -> run -> report).

package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// spanTrack picks the thread a span renders on: per-point tracks keep a
// sweep's timelines side by side; everything else is control-plane.
func spanTrack(sp *obs.Span) string {
	if p := sp.Attrs["point"]; p != "" {
		return "point:" + p
	}
	return "control"
}

// WriteChromeSpans renders stitched observability spans as a
// Perfetto-loadable trace-event file. Timestamps are normalized so the
// earliest span starts at ts 0 and rendered in microseconds (wall
// clock, not simulated cycles). Cross-process parent links become flow
// events from the parent slice to the child slice.
func WriteChromeSpans(w io.Writer, spans []obs.Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("tracing: no spans to export")
	}
	sorted := append([]obs.Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})

	// Assign Perfetto pids per OS process and tids per track name.
	procName := func(sp *obs.Span) string {
		if sp.Process == "" {
			return "unknown"
		}
		return sp.Process
	}
	pids := map[string]int{}
	var procs []string
	tids := map[string]map[string]int{} // process -> track -> tid
	tracks := map[string][]string{}
	for i := range sorted {
		p := procName(&sorted[i])
		if _, ok := pids[p]; !ok {
			pids[p] = 0 // assigned after sort
			procs = append(procs, p)
			tids[p] = map[string]int{}
		}
		tr := spanTrack(&sorted[i])
		if _, ok := tids[p][tr]; !ok {
			tids[p][tr] = 0
			tracks[p] = append(tracks[p], tr)
		}
	}
	sort.Strings(procs)
	for i, p := range procs {
		pids[p] = i
		sort.Strings(tracks[p])
		for t, tr := range tracks[p] {
			tids[p][tr] = t
		}
	}

	t0 := sorted[0].Start
	for i := range sorted {
		if sorted[i].Start < t0 {
			t0 = sorted[i].Start
		}
	}
	us := func(ns int64) uint64 {
		if ns < t0 {
			return 0
		}
		return uint64(ns-t0) / 1000
	}

	f := chromeFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"generator":   "sweeptrace",
			"span_count":  len(sorted),
			"epoch_ns":    t0,
			"time_domain": "wallclock",
		},
	}
	for _, p := range procs {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[p],
			Args: map[string]any{"name": p},
		})
		for _, tr := range tracks[p] {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pids[p], Tid: tids[p][tr],
				Args: map[string]any{"name": tr},
			})
		}
	}

	type key struct{ trace, id string }
	byID := make(map[key]*obs.Span, len(sorted))
	for i := range sorted {
		byID[key{sorted[i].Trace, sorted[i].ID}] = &sorted[i]
	}
	for i := range sorted {
		sp := &sorted[i]
		p := procName(sp)
		pid, tid := pids[p], tids[p][spanTrack(sp)]
		args := map[string]any{
			"trace": sp.Trace, "span": sp.ID,
		}
		if sp.Parent != "" {
			args["parent"] = sp.Parent
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: sp.Name, Cat: "span", Ph: "X",
			Ts: us(sp.Start), Dur: dur(us(sp.Start), us(sp.End)),
			Pid: pid, Tid: tid, Args: args,
		})
		// Flow link when the parent lives in another OS process — the
		// causal edge the stitcher exists to recover (submit->lease is
		// in-process; lease->run and run->report cross the wire).
		if sp.Parent == "" {
			continue
		}
		par, ok := byID[key{sp.Trace, sp.Parent}]
		if !ok || procName(par) == p {
			continue
		}
		pp := procName(par)
		f.TraceEvents = append(f.TraceEvents,
			chromeEvent{Name: "link", Cat: "spanflow", Ph: "s", Ts: us(par.Start),
				Pid: pids[pp], Tid: tids[pp][spanTrack(par)], ID: sp.ID},
			chromeEvent{Name: "link", Cat: "spanflow", Ph: "f", BP: "e", Ts: us(sp.Start),
				Pid: pid, Tid: tid, ID: sp.ID},
		)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}
