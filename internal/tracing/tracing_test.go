package tracing

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestStallSpanCoalescing(t *testing.T) {
	tr := New(Options{})
	tr.Start(100)
	// Three consecutive stall cycles at one site coalesce into one span.
	tr.StallSlot(0, 3, 0x40, stats.ReadRemote, 1, 100)
	tr.StallSlot(0, 3, 0x40, stats.ReadRemote, 1, 101)
	tr.StallSlot(0, 3, 0x40, stats.ReadRemote, 0.5, 102)
	// A gap (busy cycle 103) closes the span; cycle 104 opens a new one.
	tr.StallSlot(0, 3, 0x40, stats.ReadRemote, 1, 104)
	// A different site closes again.
	tr.StallSlot(0, 3, 0x44, stats.Sync, 1, 105)
	tr.Finish(106)

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3 coalesced spans: %+v", len(evs), evs)
	}
	first := evs[0]
	if first.Kind != KindStall || first.PC != 0x40 || first.Cat != stats.ReadRemote {
		t.Errorf("first span = %+v", first)
	}
	if first.Start != 100 || first.End != 103 || first.Cycles != 2.5 {
		t.Errorf("first span window = [%d,%d) cycles %v, want [100,103) 2.5",
			first.Start, first.End, first.Cycles)
	}
	if evs[1].Start != 104 || evs[1].End != 105 {
		t.Errorf("second span window = [%d,%d), want [104,105)", evs[1].Start, evs[1].End)
	}
	if evs[2].PC != 0x44 || evs[2].Cat != stats.Sync {
		t.Errorf("third span = %+v", evs[2])
	}

	// The profile saw every charged fraction exactly once.
	tot := tr.Analysis().Totals()
	if got := tot[stats.ReadRemote]; got != 3.5 {
		t.Errorf("profile ReadRemote = %v, want 3.5", got)
	}
	if got := tot[stats.Sync]; got != 1 {
		t.Errorf("profile Sync = %v, want 1", got)
	}

	// Finish is idempotent: no duplicate trailing spans.
	tr.Finish(106)
	if n := len(tr.Events()); n != 3 {
		t.Errorf("events after second Finish = %d, want 3", n)
	}
}

func TestRingWrapOverwritesOldest(t *testing.T) {
	tr := New(Options{BufferCap: 4})
	for i := uint64(0); i < 10; i++ {
		tr.Writeback(0, 0x1000+i*64, i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring cap 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Start != want {
			t.Errorf("event %d at cycle %d, want %d (chronological, oldest overwritten)", i, ev.Start, want)
		}
	}
	kept, sampled, overwritten := tr.Stats()
	if kept != 4 || sampled != 0 || overwritten != 6 {
		t.Errorf("Stats() = (%d,%d,%d), want (4,0,6)", kept, sampled, overwritten)
	}
	if got := tr.Analysis().Recorded[KindWriteback]; got != 10 {
		t.Errorf("Recorded = %d, want all 10 despite overwrite", got)
	}
}

func TestSamplingKeepsAggregatesExact(t *testing.T) {
	tr := New(Options{SampleEvery: 3})
	tr.Start(0)
	for i := uint64(0); i < 9; i++ {
		tr.BeginMiss(1, 0x80, i*100, false, false)
		tr.EndMiss(0x4000_0000, i*100+50, uint8(ClassRemote), false, false)
	}
	tr.Finish(1000)
	if n := len(tr.Events()); n != 3 {
		t.Errorf("retained %d raw events, want every 3rd = 3", n)
	}
	// The aggregators saw all 9 misses.
	if got := tr.Analysis().Lat[ClassRemote].Count; got != 9 {
		t.Errorf("latency count = %d, want 9", got)
	}
	if got := tr.Analysis().Recorded[KindMiss]; got != 9 {
		t.Errorf("Recorded misses = %d, want 9", got)
	}
	kept, sampled, _ := tr.Stats()
	if kept != 3 || sampled != 6 {
		t.Errorf("Stats() = kept %d sampled %d, want 3/6", kept, sampled)
	}
}

// endMiss drives one full miss lifecycle through the tracer.
func endMiss(tr *Tracer, node int, line uint64, at uint64, write bool, class Class, protoMig bool) {
	tr.BeginMiss(node, 0x100, at, write, false)
	tr.EndMiss(line, at+300, uint8(class), protoMig, false)
}

func TestMigratoryClassification(t *testing.T) {
	tr := New(Options{})
	tr.Start(0)
	// Line A: RMW handoff — each node reads-then-writes in its tenure.
	for i := 0; i < 6; i++ {
		endMiss(tr, i%2, 0xA000, uint64(i)*1000, true, ClassRemoteDirty, true)
	}
	// Line B: read-only ping-pong — tenures but never ownership.
	for i := 0; i < 6; i++ {
		endMiss(tr, i%3, 0xB000, uint64(i)*1000, false, ClassRemoteDirty, false)
	}
	// Line C: single node, repeated writes — one tenure only.
	for i := 0; i < 4; i++ {
		endMiss(tr, 2, 0xC000, uint64(i)*1000, true, ClassLocal, false)
	}
	tr.Finish(10_000)

	an := tr.Analysis()
	a, b, c := an.Lines[0xA000], an.Lines[0xB000], an.Lines[0xC000]
	if a == nil || b == nil || c == nil {
		t.Fatalf("missing line records: %v %v %v", a, b, c)
	}
	if !a.IsMigratory() {
		t.Errorf("line A: tenures=%d owning=%d classified non-migratory, want migratory", a.Tenures, a.OwningTenure)
	}
	if a.Tenures != 6 || a.OwningTenure != 6 {
		t.Errorf("line A tenures = %d/%d owning, want 6/6", a.Tenures, a.OwningTenure)
	}
	if a.ProtocolMigratory != a.DirtyMisses {
		t.Errorf("line A protocol agreement = %d/%d", a.ProtocolMigratory, a.DirtyMisses)
	}
	if b.IsMigratory() {
		t.Errorf("line B: read-only sharing classified migratory (tenures=%d owning=%d)", b.Tenures, b.OwningTenure)
	}
	if c.IsMigratory() {
		t.Errorf("line C: single-node line classified migratory (tenures=%d)", c.Tenures)
	}
	if c.Tenures != 1 {
		t.Errorf("line C tenures = %d, want 1", c.Tenures)
	}

	mig, non, rows := an.MigratorySummary(10)
	if mig.Lines != 1 || non.Lines != 1 {
		t.Errorf("summary lines = %d migratory / %d non, want 1/1 (line C has no dirty misses)", mig.Lines, non.Lines)
	}
	if len(rows) != 2 || rows[0].Line != 0xA000 && rows[1].Line != 0xA000 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestLockHandoffLinks(t *testing.T) {
	tr := New(Options{})
	tr.Start(0)
	tr.LockSpin(0, 0, 0x200, 0x2000_0000, 10)
	tr.LockAcquired(0, 0, 0x200, 0x2000_0000, 25, 30)
	tr.LockReleased(0, 0, 0x2000_0000, 40)
	tr.LockAcquired(1, 1, 0x204, 0x2000_0000, 45, 50)
	tr.Finish(60)

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want acquire/release/acquire", len(evs))
	}
	acq1, rel, acq2 := evs[0], evs[1], evs[2]
	if acq1.Kind != KindLock || acq1.Start != 10 || acq1.End != 30 || acq1.Wait != 15 {
		t.Errorf("first acquire = %+v (want span from first spin, wait 15)", acq1)
	}
	if acq1.Link != 0 {
		t.Errorf("first acquire link = %d, want 0 (no prior release)", acq1.Link)
	}
	if rel.Kind != KindUnlock || rel.Link != acq1.ID {
		t.Errorf("release = %+v, want link to acquire %d", rel, acq1.ID)
	}
	if acq2.Link != rel.ID {
		t.Errorf("second acquire link = %d, want handoff from release %d", acq2.Link, rel.ID)
	}
	if acq2.Wait != 0 {
		t.Errorf("uncontended acquire wait = %d, want 0", acq2.Wait)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := New(Options{})
	tr.SetResolver(func(pc uint64) (string, bool) {
		if pc == 0x40 {
			return "bufget", true
		}
		return "", false
	})
	tr.Start(0)
	tr.RetireSlot(0, 0x40, 0.25)
	tr.StallSlot(0, 2, 0x40, stats.ReadDirty, 0.75, 10)
	tr.StallSlot(0, 2, 0x40, stats.ReadDirty, 1, 11)
	tr.BeginMiss(0, 0x40, 12, true, true)
	tr.MissMSHR(13)
	tr.MissDir(3, 40, 2, 1, 2, 7)
	tr.MissSource(200, 1)
	tr.EndMiss(0x4000_0040, 280, uint8(ClassRemoteDirty), true, false)
	tr.LockAcquired(0, 2, 0x48, 0x2000_0000, 300, 310)
	tr.LockReleased(0, 2, 0x2000_0000, 320)
	tr.Writeback(0, 0x9000, 330)
	tr.Finish(400)
	tr.SetMeta(BreakdownMetaKey, BreakdownToMeta(tr.Analysis().Totals()))

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"thread_name"`, `"cpu0"`, `"dir3"`, `"ph":"s"`, `"bp":"e"`,
		`"dbsimAggregates"`, `"stall:read_dirty"`, `"miss:dirty"`, `"bufget"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}

	tf, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tf.FromAggregates {
		t.Error("embedded aggregates not recovered")
	}
	if got, want := tf.Analysis.Totals(), tr.Analysis().Totals(); got != want {
		t.Errorf("round-tripped totals = %v, want %v", got, want)
	}
	if got := tf.Analysis.Lat[ClassRemoteDirty].Count; got != 1 {
		t.Errorf("round-tripped dirty latency count = %d, want 1", got)
	}
	l := tf.Analysis.Lines[0x4000_0040]
	if l == nil || l.DirtyMisses != 1 || l.WriteMisses != 1 {
		t.Errorf("round-tripped line sharing = %+v", l)
	}
	if got := tf.Resolve(0x40); got != "bufget" {
		t.Errorf("offline resolver = %q, want bufget", got)
	}
	// Event reconstruction: one of each kind survived (stall, miss, lock,
	// unlock, writeback), with the miss's directory leg intact.
	kinds := map[Kind]int{}
	var miss *Event
	for i := range tf.Events {
		kinds[tf.Events[i].Kind]++
		if tf.Events[i].Kind == KindMiss {
			miss = &tf.Events[i]
		}
	}
	for k, want := range map[Kind]int{KindStall: 1, KindMiss: 1, KindLock: 1, KindUnlock: 1, KindWriteback: 1} {
		if kinds[k] != want {
			t.Errorf("reconstructed %v events = %d, want %d", k, kinds[k], want)
		}
	}
	if miss == nil || miss.Home != 3 || miss.Hops != 2 || miss.Retries != 1 ||
		miss.Sharers != 2 || miss.ReqQueue != 7 || miss.SrcOwner != 1 || !miss.Write {
		t.Errorf("reconstructed miss = %+v", miss)
	}
	if ref, ok := BreakdownFromMeta(tf.OtherData[BreakdownMetaKey]); !ok {
		t.Error("embedded breakdown not recovered")
	} else if err := ReconcileError(tf.Analysis.Totals(), ref); err != 0 {
		t.Errorf("reconciliation error = %v, want 0", err)
	}
}

func TestRebuildFromEvents(t *testing.T) {
	tr := New(Options{})
	tr.Start(0)
	tr.StallSlot(0, 0, 0x40, stats.Sync, 1, 5)
	endMiss(tr, 0, 0xA000, 100, true, ClassRemoteDirty, false)
	endMiss(tr, 1, 0xA000, 500, true, ClassRemoteDirty, false)
	tr.Finish(1000)

	an := RebuildFromEvents(tr.Events())
	if got := an.Lat[ClassRemoteDirty].Count; got != 2 {
		t.Errorf("rebuilt dirty count = %d, want 2", got)
	}
	l := an.Lines[0xA000]
	if l == nil || l.Tenures != 2 || l.OwningTenure != 2 {
		t.Errorf("rebuilt line sharing = %+v, want 2 owning tenures", l)
	}
	if got := an.Totals()[stats.Sync]; got != 1 {
		t.Errorf("rebuilt sync stall = %v, want 1", got)
	}
}

func TestResetClearsState(t *testing.T) {
	tr := New(Options{})
	tr.Start(0)
	tr.StallSlot(0, 0, 0x40, stats.Sync, 1, 5)
	endMiss(tr, 0, 0xA000, 10, false, ClassL2, false)
	tr.Reset(100)
	tr.Finish(200)
	if n := len(tr.Events()); n != 0 {
		t.Errorf("events after Reset = %d, want 0", n)
	}
	tot := tr.Analysis().Totals()
	if tot.Total() != 0 {
		t.Errorf("totals after Reset = %v, want empty", tot)
	}
	if tr.Analysis().StartCycle != 100 || tr.Analysis().EndCycle != 200 {
		t.Errorf("window = %d..%d, want 100..200", tr.Analysis().StartCycle, tr.Analysis().EndCycle)
	}
}

func TestNilTracerHooksAreGuarded(t *testing.T) {
	// The simulator guards every hook with a nil check; this documents
	// that the disabled state is the nil pointer, not a no-op object.
	var tr *Tracer
	if tr != nil {
		t.Fatal("nil tracer must stay nil")
	}
}
