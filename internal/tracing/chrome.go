// Chrome trace-event JSON export/import. The file is the JSON-object
// form of the trace-event format (Perfetto-loadable): complete-slice
// ("X") events on one track per CPU (pid 0) and one per directory
// (pid 1), flow events ("s"/"f") linking each miss slice to its home
// directory transaction, instant events ("i") for releases and
// writebacks, and metadata ("M") naming the tracks. One simulated cycle
// is rendered as one microsecond.
//
// The exact aggregates are embedded under the extra top-level key
// "dbsimAggregates" (trace viewers ignore unknown keys), so traceview
// reconciles exactly even when the raw ring wrapped or was sampled.

package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/db"
	"repro/internal/htm"
	"repro/internal/stats"
)

type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	OtherData       map[string]any  `json:"otherData,omitempty"`
	Aggregates      *AggregatesJSON `json:"dbsimAggregates,omitempty"`
	TraceEvents     []chromeEvent   `json:"traceEvents"`
}

// Perfetto process ids: cpu tracks and directory tracks.
const (
	pidCPU = 0
	pidDir = 1
)

// AggregatesJSON is the serialized form of Analysis, embedded in the
// trace file and recovered by the reader. Slices are sorted for
// deterministic output.
type AggregatesJSON struct {
	StartCycle uint64            `json:"start_cycle"`
	EndCycle   uint64            `json:"end_cycle"`
	Recorded   map[string]uint64 `json:"recorded_events"`
	Categories []string          `json:"categories"` // column legend for by_cat
	Sites      []SiteJSON        `json:"stall_sites"`
	Latency    []LatencyJSON     `json:"miss_latency"`
	Lines      []LineJSON        `json:"line_sharing"`
	HTM        *HTMJSON          `json:"htm_elision,omitempty"`
}

// HTMJSON is the serialized latch-elision lifecycle totals (present only
// when the run elided at least one latch).
type HTMJSON struct {
	Begins       uint64            `json:"begins"`
	Commits      uint64            `json:"commits"`
	Fallbacks    uint64            `json:"fallbacks"`
	ElidedCycles uint64            `json:"elided_cycles"`
	Aborts       map[string]uint64 `json:"aborts"` // cause name -> count
}

// SiteJSON is one stall site; ByCat follows the Categories legend order.
type SiteJSON struct {
	PC    string    `json:"pc"`
	Op    string    `json:"op,omitempty"`
	ByCat []float64 `json:"by_cat"`
}

// LatencyJSON is one service class histogram.
type LatencyJSON struct {
	Class   string   `json:"class"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Bounds  []uint64 `json:"bounds"`
	Buckets []uint64 `json:"buckets"`
}

// LineJSON is one shared line's sharing behaviour.
type LineJSON struct {
	Line              string `json:"line"`
	Region            string `json:"region"`
	Block             int    `json:"block"` // -1 outside the buffer pool
	Tenures           uint32 `json:"tenures"`
	Owning            uint32 `json:"owning_tenures"`
	Misses            uint64 `json:"misses"`
	WriteMisses       uint64 `json:"write_misses"`
	DirtyMisses       uint64 `json:"dirty_misses"`
	DirtyCycles       uint64 `json:"dirty_cycles"`
	ProtocolMigratory uint64 `json:"protocol_migratory"`
	Migratory         bool   `json:"migratory"`
}

// BreakdownMetaKey is the otherData key under which dbsim embeds the
// simulator's own post-warm-up execution-time breakdown, letting
// traceview reconcile the trace-derived profile offline.
const BreakdownMetaKey = "simulatorBreakdown"

// BreakdownToMeta serializes a breakdown for Tracer.SetMeta.
func BreakdownToMeta(b stats.Breakdown) map[string]any {
	out := make(map[string]any, int(stats.NumCategories))
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		out[c.String()] = b[c]
	}
	return out
}

// BreakdownFromMeta recovers a breakdown from a loaded trace's otherData.
func BreakdownFromMeta(v any) (stats.Breakdown, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return stats.Breakdown{}, false
	}
	var b stats.Breakdown
	found := false
	for name, val := range m {
		f, ok := val.(float64)
		if !ok {
			continue
		}
		if c, ok := stats.ParseCategory(name); ok {
			b[c] = f
			found = true
		}
	}
	return b, found
}

func hexAddr(a uint64) string { return "0x" + strconv.FormatUint(a, 16) }

func parseHex(s string) (uint64, error) {
	if len(s) > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	return strconv.ParseUint(s, 16, 64)
}

func marshalAggregates(a *Analysis, resolve func(uint64) string) *AggregatesJSON {
	out := &AggregatesJSON{
		StartCycle: a.StartCycle,
		EndCycle:   a.EndCycle,
		Recorded:   make(map[string]uint64, int(numKinds)),
	}
	for k := Kind(0); k < numKinds; k++ {
		out.Recorded[k.String()] = a.Recorded[k]
	}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		out.Categories = append(out.Categories, c.String())
	}
	pcs := make([]uint64, 0, len(a.Sites))
	for pc := range a.Sites {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		s := a.Sites[pc]
		sj := SiteJSON{PC: hexAddr(pc), ByCat: append([]float64(nil), s.ByCat[:]...)}
		if resolve != nil {
			sj.Op = resolve(pc)
		}
		out.Sites = append(out.Sites, sj)
	}
	for c := Class(0); c < NumClasses; c++ {
		h := &a.Lat[c]
		if h.Count == 0 {
			continue
		}
		out.Latency = append(out.Latency, LatencyJSON{
			Class: c.String(), Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			Bounds:  append([]uint64(nil), LatencyBounds[:]...),
			Buckets: append([]uint64(nil), h.Buckets[:]...),
		})
	}
	lines := make([]uint64, 0, len(a.Lines))
	for addr := range a.Lines {
		lines = append(lines, addr)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, addr := range lines {
		l := a.Lines[addr]
		lj := LineJSON{
			Line: hexAddr(addr), Region: db.Region(addr), Block: -1,
			Tenures: l.Tenures, Owning: l.OwningTenure,
			Misses: l.Misses, WriteMisses: l.WriteMisses,
			DirtyMisses: l.DirtyMisses, DirtyCycles: l.DirtyCycles,
			ProtocolMigratory: l.ProtocolMigratory, Migratory: l.IsMigratory(),
		}
		if blk, ok := db.BlockOf(addr); ok {
			lj.Block = blk
		}
		out.Lines = append(out.Lines, lj)
	}
	if a.HTM.Begins > 0 {
		hj := &HTMJSON{
			Begins: a.HTM.Begins, Commits: a.HTM.Commits,
			Fallbacks: a.HTM.Fallbacks, ElidedCycles: a.HTM.ElidedCycles,
			Aborts: make(map[string]uint64, int(htm.NumAbortCauses)),
		}
		for c := htm.AbortCause(0); c < htm.NumAbortCauses; c++ {
			if a.HTM.Aborts[c] > 0 {
				hj.Aborts[c.String()] = a.HTM.Aborts[c]
			}
		}
		out.HTM = hj
	}
	return out
}

func unmarshalAggregates(in *AggregatesJSON) (*Analysis, error) {
	a := NewAnalysis()
	a.StartCycle, a.EndCycle = in.StartCycle, in.EndCycle
	for name, n := range in.Recorded {
		for k := Kind(0); k < numKinds; k++ {
			if k.String() == name {
				a.Recorded[k] = n
			}
		}
	}
	for _, sj := range in.Sites {
		pc, err := parseHex(sj.PC)
		if err != nil {
			return nil, fmt.Errorf("tracing: bad site pc %q: %w", sj.PC, err)
		}
		s := a.site(pc)
		for i, v := range sj.ByCat {
			if i >= len(in.Categories) {
				break
			}
			if c, ok := stats.ParseCategory(in.Categories[i]); ok {
				s.ByCat[c] = v
			}
		}
	}
	for _, lj := range in.Latency {
		c, ok := ParseClass(lj.Class)
		if !ok {
			continue
		}
		h := &a.Lat[c]
		h.Count, h.Sum, h.Min, h.Max = lj.Count, lj.Sum, lj.Min, lj.Max
		for i, n := range lj.Buckets {
			if i < NumLatencyBuckets {
				h.Buckets[i] = n
			}
		}
	}
	for _, lj := range in.Lines {
		addr, err := parseHex(lj.Line)
		if err != nil {
			return nil, fmt.Errorf("tracing: bad line addr %q: %w", lj.Line, err)
		}
		a.Lines[addr] = &LineSharing{
			Tenures: lj.Tenures, OwningTenure: lj.Owning,
			Misses: lj.Misses, WriteMisses: lj.WriteMisses,
			DirtyMisses: lj.DirtyMisses, DirtyCycles: lj.DirtyCycles,
			ProtocolMigratory: lj.ProtocolMigratory,
		}
	}
	if in.HTM != nil {
		a.HTM.Begins = in.HTM.Begins
		a.HTM.Commits = in.HTM.Commits
		a.HTM.Fallbacks = in.HTM.Fallbacks
		a.HTM.ElidedCycles = in.HTM.ElidedCycles
		for name, n := range in.HTM.Aborts {
			if c, ok := htm.ParseAbortCause(name); ok {
				a.HTM.Aborts[c] = n
			}
		}
	}
	return a, nil
}

// WriteChrome writes the trace file: metadata naming one track per CPU
// and per directory, all retained events, flow links, and the embedded
// exact aggregates. resolve may be nil.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()
	kept, sampled, overwritten := t.Stats()
	f := chromeFile{
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"generator":          "dbsim",
			"cycles_per_us":      1,
			"events_kept":        kept,
			"events_sampled_out": sampled,
			"events_overwritten": overwritten,
		},
		Aggregates: marshalAggregates(t.an, t.Resolve),
	}
	for k, v := range t.meta {
		f.OtherData[k] = v
	}

	maxCPU, maxDir := -1, -1
	for i := range events {
		if int(events[i].CPU) > maxCPU {
			maxCPU = int(events[i].CPU)
		}
		if int(events[i].Home) > maxDir {
			maxDir = int(events[i].Home)
		}
	}
	f.TraceEvents = append(f.TraceEvents,
		chromeEvent{Name: "process_name", Ph: "M", Pid: pidCPU, Args: map[string]any{"name": "cpu"}},
	)
	for c := 0; c <= maxCPU; c++ {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pidCPU, Tid: c,
			Args: map[string]any{"name": fmt.Sprintf("cpu%d", c)},
		})
	}
	if maxDir >= 0 {
		f.TraceEvents = append(f.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", Pid: pidDir, Args: map[string]any{"name": "directory"}},
		)
		for d := 0; d <= maxDir; d++ {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pidDir, Tid: d,
				Args: map[string]any{"name": fmt.Sprintf("dir%d", d)},
			})
		}
	}

	for i := range events {
		f.TraceEvents = append(f.TraceEvents, t.chromeEvents(&events[i])...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// dur clamps slice durations to >= 1 so zero-length spans stay visible.
func dur(start, end uint64) uint64 {
	if end > start {
		return end - start
	}
	return 1
}

func (t *Tracer) chromeEvents(ev *Event) []chromeEvent {
	op := t.Resolve(ev.PC)
	switch ev.Kind {
	case KindStall:
		return []chromeEvent{{
			Name: "stall:" + ev.Cat.String(), Cat: "stall", Ph: "X",
			Ts: ev.Start, Dur: dur(ev.Start, ev.End), Pid: pidCPU, Tid: int(ev.CPU),
			Args: map[string]any{
				"pc": hexAddr(ev.PC), "op": op, "proc": ev.Proc,
				"category": ev.Cat.String(), "slot_cycles": ev.Cycles,
			},
		}}
	case KindMiss:
		args := map[string]any{
			"pc": hexAddr(ev.PC), "op": op, "line": hexAddr(ev.Addr),
			"region": db.Region(ev.Addr), "class": ev.Class.String(),
			"write": ev.Write, "in_cs": ev.InCS,
			"migratory": ev.Migratory, "tlb_miss": ev.TLBMiss,
			"mshr_at": ev.MSHRAt,
		}
		if blk, ok := db.BlockOf(ev.Addr); ok {
			args["block"] = blk
		}
		out := []chromeEvent{{
			Name: "miss:" + ev.Class.String(), Cat: "miss", Ph: "X",
			Ts: ev.Start, Dur: dur(ev.Start, ev.End), Pid: pidCPU, Tid: int(ev.CPU),
			Args: args,
		}}
		if ev.Home >= 0 && ev.DirAt > 0 {
			args["home"] = ev.Home
			args["dir_at"] = ev.DirAt
			args["hops"] = ev.Hops
			args["retries"] = ev.Retries
			args["sharers"] = ev.Sharers
			args["req_queue"] = ev.ReqQueue
			if ev.SrcOwner >= 0 {
				args["src_owner"] = ev.SrcOwner
			}
			kind := "dir:read"
			if ev.Write {
				kind = "dir:write"
			}
			dirEnd := ev.SrcAt
			if dirEnd <= ev.DirAt {
				dirEnd = ev.DirAt + 1
			}
			id := strconv.FormatUint(ev.ID, 10)
			out = append(out,
				// flow start anchored inside the CPU-side miss slice
				chromeEvent{Name: "miss", Cat: "flow", Ph: "s", Ts: ev.Start,
					Pid: pidCPU, Tid: int(ev.CPU), ID: id},
				chromeEvent{Name: kind, Cat: "dir", Ph: "X",
					Ts: ev.DirAt, Dur: dur(ev.DirAt, dirEnd), Pid: pidDir, Tid: int(ev.Home),
					Args: map[string]any{
						"line": hexAddr(ev.Addr), "requester": ev.CPU,
						"class": ev.Class.String(), "sharers": ev.Sharers,
						"retries": ev.Retries,
					}},
				// flow end bound to the enclosing directory slice
				chromeEvent{Name: "miss", Cat: "flow", Ph: "f", BP: "e", Ts: ev.DirAt,
					Pid: pidDir, Tid: int(ev.Home), ID: id},
			)
		}
		return out
	case KindLock:
		return []chromeEvent{{
			Name: "lock", Cat: "sync", Ph: "X",
			Ts: ev.Start, Dur: dur(ev.Start, ev.End), Pid: pidCPU, Tid: int(ev.CPU),
			Args: map[string]any{
				"addr": hexAddr(ev.Addr), "region": db.Region(ev.Addr),
				"pc": hexAddr(ev.PC), "op": op, "proc": ev.Proc,
				"wait": ev.Wait, "handoff_from": ev.Link,
			},
		}}
	case KindUnlock:
		return []chromeEvent{{
			Name: "unlock", Cat: "sync", Ph: "i", S: "t",
			Ts: ev.Start, Pid: pidCPU, Tid: int(ev.CPU),
			Args: map[string]any{
				"addr": hexAddr(ev.Addr), "proc": ev.Proc, "acquire": ev.Link,
			},
		}}
	case KindWriteback:
		// Writebacks carry the physical line address (no reverse
		// translation at eviction time), so no region tag.
		return []chromeEvent{{
			Name: "writeback", Cat: "miss", Ph: "i", S: "t",
			Ts: ev.Start, Pid: pidCPU, Tid: int(ev.CPU),
			Args: map[string]any{"line": hexAddr(ev.Addr)},
		}}
	case KindHTM:
		args := map[string]any{
			"latch": hexAddr(ev.Addr), "region": db.Region(ev.Addr),
			"proc": ev.Proc, "htm_op": ev.HTMOp.String(),
		}
		switch ev.HTMOp {
		case HTMOpCommit:
			// The committed elision is the one HTM span: the critical
			// section that ran latch-free.
			args["pc"] = hexAddr(ev.PC)
			args["op"] = op
			return []chromeEvent{{
				Name: "htm:commit", Cat: "htm", Ph: "X",
				Ts: ev.Start, Dur: dur(ev.Start, ev.End), Pid: pidCPU, Tid: int(ev.CPU),
				Args: args,
			}}
		case HTMOpAbort:
			args["cause"] = ev.Cause.String()
			args["conflict"] = hexAddr(ev.Conflict)
			return []chromeEvent{{
				Name: "htm:abort:" + ev.Cause.String(), Cat: "htm", Ph: "i", S: "t",
				Ts: ev.Start, Pid: pidCPU, Tid: int(ev.CPU), Args: args,
			}}
		case HTMOpFallback:
			args["cause"] = ev.Cause.String()
			args["pc"] = hexAddr(ev.PC)
			args["op"] = op
			return []chromeEvent{{
				Name: "htm:fallback", Cat: "htm", Ph: "i", S: "t",
				Ts: ev.Start, Pid: pidCPU, Tid: int(ev.CPU), Args: args,
			}}
		default: // HTMOpBegin
			args["pc"] = hexAddr(ev.PC)
			args["op"] = op
			return []chromeEvent{{
				Name: "htm:begin", Cat: "htm", Ph: "i", S: "t",
				Ts: ev.Start, Pid: pidCPU, Tid: int(ev.CPU), Args: args,
			}}
		}
	}
	return nil
}

// TraceFile is a loaded trace: the retained raw events plus the exact
// aggregate analysis (embedded, or rebuilt from events as a fallback).
type TraceFile struct {
	Events         []Event
	Analysis       *Analysis
	FromAggregates bool
	OtherData      map[string]any
	Ops            map[uint64]string // pc -> engine operation, from the embedded sites
}

// Resolve maps a PC to the engine-operation name recorded at export time
// ("" when unknown) — the offline stand-in for the workload's resolver.
func (tf *TraceFile) Resolve(pc uint64) string { return tf.Ops[pc] }

// ReadFile parses a trace written by WriteChrome. Metadata, flow and
// directory-track events are skipped when rebuilding Events; the
// embedded aggregates are preferred for analysis.
func ReadFile(r io.Reader) (*TraceFile, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("tracing: parsing trace file: %w", err)
	}
	tf := &TraceFile{OtherData: f.OtherData, Ops: make(map[uint64]string)}
	if f.Aggregates != nil {
		for _, sj := range f.Aggregates.Sites {
			if sj.Op == "" {
				continue
			}
			if pc, err := parseHex(sj.PC); err == nil {
				tf.Ops[pc] = sj.Op
			}
		}
	}
	for i := range f.TraceEvents {
		ce := &f.TraceEvents[i]
		if ce.Ph != "X" && ce.Ph != "i" {
			continue
		}
		if ce.Pid != pidCPU {
			continue // directory slices are derived views of miss events
		}
		ev, ok := eventFromChrome(ce)
		if !ok {
			continue
		}
		tf.Events = append(tf.Events, ev)
	}
	if f.Aggregates != nil {
		an, err := unmarshalAggregates(f.Aggregates)
		if err != nil {
			return nil, err
		}
		tf.Analysis = an
		tf.FromAggregates = true
	} else {
		tf.Analysis = RebuildFromEvents(tf.Events)
	}
	return tf, nil
}

func argU64(args map[string]any, key string) uint64 {
	switch v := args[key].(type) {
	case float64:
		return uint64(v)
	case string:
		if u, err := parseHex(v); err == nil {
			return u
		}
	}
	return 0
}

func argF64(args map[string]any, key string) float64 {
	if v, ok := args[key].(float64); ok {
		return v
	}
	return 0
}

func argBool(args map[string]any, key string) bool {
	v, _ := args[key].(bool)
	return v
}

func eventFromChrome(ce *chromeEvent) (Event, bool) {
	ev := Event{CPU: int16(ce.Tid), Home: -1, SrcOwner: -1, Proc: -1, Start: ce.Ts, End: ce.Ts + ce.Dur}
	switch {
	case ce.Cat == "stall":
		cat, ok := stats.ParseCategory(ce.Name[len("stall:"):])
		if !ok {
			return ev, false
		}
		ev.Kind, ev.Cat = KindStall, cat
		ev.PC = argU64(ce.Args, "pc")
		ev.Cycles = argF64(ce.Args, "slot_cycles")
		ev.Proc = int32(argU64(ce.Args, "proc"))
	case ce.Cat == "miss" && ce.Ph == "X":
		class, ok := ParseClass(ce.Name[len("miss:"):])
		if !ok {
			return ev, false
		}
		ev.Kind, ev.Class = KindMiss, class
		ev.PC = argU64(ce.Args, "pc")
		ev.Addr = argU64(ce.Args, "line")
		ev.Write = argBool(ce.Args, "write")
		ev.InCS = argBool(ce.Args, "in_cs")
		ev.Migratory = argBool(ce.Args, "migratory")
		ev.TLBMiss = argBool(ce.Args, "tlb_miss")
		ev.MSHRAt = argU64(ce.Args, "mshr_at")
		if _, hasHome := ce.Args["home"]; hasHome {
			ev.Home = int16(argU64(ce.Args, "home"))
			ev.DirAt = argU64(ce.Args, "dir_at")
			ev.Hops = int16(argU64(ce.Args, "hops"))
			ev.Retries = int16(argU64(ce.Args, "retries"))
			ev.Sharers = int16(argU64(ce.Args, "sharers"))
			ev.ReqQueue = argU64(ce.Args, "req_queue")
			if _, hasOwner := ce.Args["src_owner"]; hasOwner {
				ev.SrcOwner = int16(argU64(ce.Args, "src_owner"))
			}
		}
	case ce.Name == "lock":
		ev.Kind = KindLock
		ev.Addr = argU64(ce.Args, "addr")
		ev.PC = argU64(ce.Args, "pc")
		ev.Wait = argU64(ce.Args, "wait")
		ev.Link = argU64(ce.Args, "handoff_from")
		ev.Proc = int32(argU64(ce.Args, "proc"))
	case ce.Name == "unlock":
		ev.Kind = KindUnlock
		ev.Addr = argU64(ce.Args, "addr")
		ev.Link = argU64(ce.Args, "acquire")
		ev.Proc = int32(argU64(ce.Args, "proc"))
	case ce.Name == "writeback":
		ev.Kind = KindWriteback
		ev.Addr = argU64(ce.Args, "line")
	case strings.HasPrefix(ce.Name, "htm:"):
		opName, _ := ce.Args["htm_op"].(string)
		hop, ok := ParseHTMOp(opName)
		if !ok {
			return ev, false
		}
		ev.Kind, ev.HTMOp = KindHTM, hop
		ev.Addr = argU64(ce.Args, "latch")
		ev.PC = argU64(ce.Args, "pc")
		ev.Proc = int32(argU64(ce.Args, "proc"))
		ev.InCS = hop == HTMOpCommit
		if causeName, hasCause := ce.Args["cause"].(string); hasCause {
			if c, okc := htm.ParseAbortCause(causeName); okc {
				ev.Cause = c
			}
		}
		ev.Conflict = argU64(ce.Args, "conflict")
	default:
		return ev, false
	}
	return ev, true
}
