// Aggregate export through the telemetry table machinery: the three
// reports as generic tables that dbsim writes as JSON or CSV next to the
// interval series.

package tracing

import (
	"strconv"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }
func utoa(v uint64) string  { return strconv.FormatUint(v, 10) }

// Tables renders the analysis as telemetry tables: the top-N stall
// sites, the per-operation rollup, the migratory-sharing attribution,
// and the latency histograms. resolve may be nil.
func (a *Analysis) Tables(resolve func(uint64) string, topN int) []*telemetry.Table {
	catCols := make([]string, 0, int(stats.NumCategories))
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		catCols = append(catCols, c.String())
	}

	sites := &telemetry.Table{
		Name:    "stall_sites",
		Columns: append([]string{"pc", "op", "stall_cycles"}, catCols...),
	}
	for _, r := range a.StallProfile(resolve, topN) {
		row := []string{hexAddr(r.PC), r.Op, ftoa(r.Stall())}
		for _, v := range r.ByCat {
			row = append(row, ftoa(v))
		}
		sites.Rows = append(sites.Rows, row)
	}

	ops := &telemetry.Table{
		Name:    "stall_operations",
		Columns: append([]string{"op", "stall_cycles"}, catCols...),
	}
	for _, r := range a.OperationProfile(resolve) {
		row := []string{r.Op, ftoa(r.Stall())}
		for _, v := range r.ByCat {
			row = append(row, ftoa(v))
		}
		ops.Rows = append(ops.Rows, row)
	}

	mig, non, rows := a.MigratorySummary(topN)
	sharing := &telemetry.Table{
		Name: "migratory_sharing",
		Columns: []string{
			"line", "region", "block", "classification", "tenures",
			"owning_tenures", "misses", "dirty_misses", "dirty_cycles", "protocol_agree",
		},
	}
	addTotals := func(label string, t MigratoryTotals) {
		sharing.AddRow("total", "-", "-", label, "-", "-", "-",
			utoa(t.DirtyMisses), utoa(t.DirtyCycles), "-")
	}
	addTotals("migratory", mig)
	addTotals("non-migratory", non)
	for _, r := range rows {
		class := "non-migratory"
		if r.Migratory {
			class = "migratory"
		}
		blk := "-"
		if r.Block >= 0 {
			blk = strconv.Itoa(r.Block)
		}
		sharing.AddRow(hexAddr(r.Line), r.Region, blk, class,
			utoa(uint64(r.Tenures)), utoa(uint64(r.Owning)), utoa(r.Misses),
			utoa(r.DirtyMisses), utoa(r.DirtyCycles), ftoa(r.ProtocolAgree))
	}

	lat := &telemetry.Table{
		Name:    "miss_latency",
		Columns: []string{"class", "count", "sum_cycles", "mean", "min", "max"},
	}
	for _, b := range LatencyBounds {
		lat.Columns = append(lat.Columns, "lt_"+utoa(b))
	}
	lat.Columns = append(lat.Columns, "ge_"+utoa(LatencyBounds[len(LatencyBounds)-1]))
	for c := Class(0); c < NumClasses; c++ {
		h := &a.Lat[c]
		if h.Count == 0 {
			continue
		}
		row := []string{c.String(), utoa(h.Count), utoa(h.Sum), ftoa(h.Mean()), utoa(h.Min), utoa(h.Max)}
		for _, n := range h.Buckets {
			row = append(row, utoa(n))
		}
		lat.Rows = append(lat.Rows, row)
	}

	return []*telemetry.Table{sites, ops, sharing, lat}
}
