// Package tracing is the cycle-resolved structured event tracer: a pure
// observer wired into the processor pipeline and the memory system that
// records typed span events — retire-stall spans by CPI category, full
// L1/L2 data-miss lifecycles (issue, MSHR allocate, directory transaction,
// mesh hops, cache-to-cache or memory service, fill), lock/latch
// acquire–contend–release chains, and writebacks — each tagged with node,
// PC, engine operation (resolved through the workload's code layout), and
// block address.
//
// The tracer answers the attribution questions of Sections 5–6 of the
// paper: *which* instructions, engine operations and shared blocks the
// stall time goes to. Three aggregators consume every event (before any
// sampling) and reproduce the paper's analyses as reports: a per-PC /
// per-operation stall-attribution profile, a migratory-sharing detector
// classifying blocks by read-modify-write handoff patterns across nodes,
// and a per-miss latency histogram split by service class.
//
// Observer guarantees: with a nil *Tracer every hook site is a single
// pointer check (benchmark-asserted ≈ zero cost); with a tracer attached
// the raw stream is bounded by a ring buffer plus a per-kind sampling
// rate, and nothing the tracer does feeds back into simulated state, so
// runs with and without tracing are cycle-identical.
package tracing

import (
	"fmt"

	"repro/internal/htm"
	"repro/internal/stats"
)

// Kind is the event type.
type Kind uint8

const (
	// KindStall is a coalesced retire-stall span: consecutive cycles in
	// which retirement stalled at the same PC for the same category.
	KindStall Kind = iota
	// KindMiss is one data-miss lifecycle through the L1D MSHRs (and,
	// beyond the L2, the directory protocol).
	KindMiss
	// KindLock is a lock/latch acquisition, spanning first attempt to
	// the completion of the winning read-modify-write.
	KindLock
	// KindUnlock is the matching release (instant, linked to the
	// acquisition).
	KindUnlock
	// KindWriteback is a dirty L2 victim written back to its home.
	KindWriteback
	// KindHTM is a hardware-transactional latch-elision lifecycle event:
	// begin/commit/abort/fallback, with abort-cause detail.
	KindHTM

	numKinds
)

var kindNames = [...]string{"stall", "miss", "lock", "unlock", "writeback", "htm"}

// HTMOp is the elision lifecycle step a KindHTM event records.
type HTMOp uint8

const (
	// HTMOpBegin: speculation on an elided latch started.
	HTMOpBegin HTMOp = iota
	// HTMOpCommit: the elided critical section committed (span from begin
	// to commit — the cycles the latch was never taken).
	HTMOpCommit
	// HTMOpAbort: the transaction aborted; Cause and Conflict carry the
	// classified cause and the line that triggered it.
	HTMOpAbort
	// HTMOpFallback: retries exhausted; the real latch was acquired.
	HTMOpFallback

	numHTMOps
)

var htmOpNames = [...]string{"begin", "commit", "abort", "fallback"}

func (o HTMOp) String() string {
	if int(o) < len(htmOpNames) {
		return htmOpNames[o]
	}
	return fmt.Sprintf("HTMOp(%d)", int(o))
}

// ParseHTMOp inverts HTMOp.String.
func ParseHTMOp(s string) (HTMOp, bool) {
	for i, n := range htmOpNames {
		if n == s {
			return HTMOp(i), true
		}
	}
	return 0, false
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Class mirrors the memory system's service classes (internal/memsys).
// The values coincide so the memory system can hand its class through a
// plain uint8 without importing this package's consumers.
type Class uint8

const (
	// ClassL1 is a first-level hit (only appears for merged accesses).
	ClassL1 Class = iota
	// ClassL2 is an L2 hit.
	ClassL2
	// ClassLocal was serviced by local memory.
	ClassLocal
	// ClassRemote was serviced by remote memory.
	ClassRemote
	// ClassRemoteDirty was serviced cache-to-cache (a dirty miss).
	ClassRemoteDirty

	// NumClasses is the number of service classes.
	NumClasses
)

var classNames = [...]string{"L1", "L2", "local", "remote", "dirty"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass is the inverse of Class.String.
func ParseClass(s string) (Class, bool) {
	for i, n := range classNames {
		if n == s {
			return Class(i), true
		}
	}
	return 0, false
}

// Event is one recorded span or instant. Fields are populated per kind;
// unused fields are zero. Start/End are simulated cycles (End == Start
// for instants).
type Event struct {
	ID   uint64 // unique, assigned in record order (stable under sampling)
	Link uint64 // causal parent: lock handoff chain, unlock -> lock (0 = none)
	Kind Kind

	CPU  int16 // requesting processor / node
	Home int16 // home directory node (misses that reached the directory)
	Proc int32 // server process (context) id, -1 when unknown

	PC   uint64 // instruction address charged or issuing
	Addr uint64 // lock address (locks) or physical line address (misses)

	Start uint64
	End   uint64

	// Stall spans.
	Cat    stats.Category
	Cycles float64 // accumulated retire-slot fractions charged in the span

	// Misses.
	Class     Class
	Write     bool
	InCS      bool // issued inside a critical section
	Migratory bool // protocol-flagged migratory transfer
	TLBMiss   bool
	MSHRAt    uint64 // L1D MSHR allocation
	DirAt     uint64 // request accepted at the home directory
	SrcAt     uint64 // data produced by the source (owner cache / memory bank)
	SrcOwner  int16  // owning node for cache-to-cache service (-1 = memory)
	Hops      int16  // mesh hops requester -> home
	Retries   int16  // directory NACK retries before acceptance
	Sharers   int16  // sharer count at the directory when the request arrived
	ReqQueue  uint64 // mesh queueing cycles suffered by the request leg

	// Locks.
	Wait uint64 // cycles between the first attempt and the acquisition

	// HTM elision (KindHTM); Addr is the elided latch address.
	HTMOp    HTMOp
	Cause    htm.AbortCause // abort cause (abort and fallback events)
	Conflict uint64         // conflicting / evicted line (abort events)
}

// Options configures a Tracer.
type Options struct {
	// BufferCap bounds the raw event ring (events); once full the oldest
	// events are overwritten. 0 means DefaultBufferCap.
	BufferCap int
	// SampleEvery keeps every Nth raw event of each kind in the ring
	// (aggregators always see every event). 0 or 1 keeps everything.
	SampleEvery uint64
}

// DefaultBufferCap is the default ring capacity.
const DefaultBufferCap = 1 << 18

type stallSpan struct {
	active bool
	pc     uint64
	cat    stats.Category
	start  uint64
	last   uint64
	cycles float64
	proc   int32
}

type lockPend struct {
	active bool
	addr   uint64
	pc     uint64
	start  uint64
	proc   int32
}

// Tracer records events. Not safe for concurrent use; the simulator is
// single-threaded per run. A nil *Tracer is the disabled state: every
// hook site guards with a nil check and does nothing else.
type Tracer struct {
	opts     Options
	resolver func(pc uint64) (string, bool)
	meta     map[string]any

	ring        []Event
	head        int // index of the oldest event once the ring has wrapped
	wrapped     bool
	nextID      uint64
	seen        [numKinds]uint64
	kept        uint64
	sampledOut  uint64
	overwritten uint64

	an *Analysis

	stalls  []stallSpan
	locks   []lockPend
	lastAcq map[uint64]uint64 // lock addr -> acquire event id
	lastRel map[uint64]uint64 // lock addr -> release event id

	miss       Event
	missActive bool
}

// New builds a tracer.
func New(opts Options) *Tracer {
	if opts.BufferCap <= 0 {
		opts.BufferCap = DefaultBufferCap
	}
	if opts.SampleEvery == 0 {
		opts.SampleEvery = 1
	}
	return &Tracer{
		opts:    opts,
		ring:    make([]Event, 0, opts.BufferCap),
		an:      NewAnalysis(),
		lastAcq: make(map[uint64]uint64),
		lastRel: make(map[uint64]uint64),
	}
}

// SetResolver installs the PC -> engine-operation resolver (the
// workload's code layout). Used when rendering reports and exports.
func (t *Tracer) SetResolver(f func(pc uint64) (string, bool)) { t.resolver = f }

// SetMeta attaches a key to the exported trace's otherData (e.g. the
// simulator's own CPI breakdown, so traceview can reconcile offline).
func (t *Tracer) SetMeta(key string, value any) {
	if t.meta == nil {
		t.meta = make(map[string]any)
	}
	t.meta[key] = value
}

// Resolve maps a PC to its engine operation name ("" when unknown).
func (t *Tracer) Resolve(pc uint64) string {
	if t.resolver != nil {
		if name, ok := t.resolver(pc); ok {
			return name
		}
	}
	return ""
}

// Start marks the beginning of the measured window.
func (t *Tracer) Start(now uint64) { t.an.StartCycle = now }

// Reset discards everything recorded so far (the warm-up statistics
// reset): the raw ring, the aggregators, and any open spans. The
// resolver and options are kept.
func (t *Tracer) Reset(now uint64) {
	t.ring = t.ring[:0]
	t.head, t.wrapped = 0, false
	t.seen = [numKinds]uint64{}
	t.kept, t.sampledOut, t.overwritten = 0, 0, 0
	t.an = NewAnalysis()
	t.an.StartCycle = now
	for i := range t.stalls {
		t.stalls[i] = stallSpan{}
	}
	for i := range t.locks {
		t.locks[i] = lockPend{}
	}
	t.lastAcq = make(map[uint64]uint64)
	t.lastRel = make(map[uint64]uint64)
	t.missActive = false
}

// Finish closes open spans and stamps the end of the measured window.
// Safe to call more than once.
func (t *Tracer) Finish(now uint64) {
	for i := range t.stalls {
		if t.stalls[i].active {
			t.emitStall(&t.stalls[i])
			t.stalls[i] = stallSpan{}
		}
	}
	t.an.closeTenures()
	t.an.EndCycle = now
}

// Analysis returns the aggregate view (exact: fed by every event before
// sampling or ring overwrite).
func (t *Tracer) Analysis() *Analysis { return t.an }

// Events returns the retained raw events in chronological record order.
func (t *Tracer) Events() []Event {
	if !t.wrapped {
		return append([]Event(nil), t.ring...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Stats reports retention: events kept in the ring, dropped by sampling,
// and overwritten after the ring wrapped.
func (t *Tracer) Stats() (kept, sampledOut, overwritten uint64) {
	return t.kept - t.overwritten, t.sampledOut, t.overwritten
}

// commit assigns an id and applies sampling + the ring bound. Aggregators
// are fed by the callers before commit, so they always see every event.
func (t *Tracer) commit(ev Event) uint64 {
	t.nextID++
	ev.ID = t.nextID
	t.an.Recorded[ev.Kind]++
	n := t.seen[ev.Kind]
	t.seen[ev.Kind]++
	if n%t.opts.SampleEvery != 0 {
		t.sampledOut++
		return ev.ID
	}
	t.kept++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return ev.ID
	}
	t.ring[t.head] = ev
	t.head++
	if t.head == len(t.ring) {
		t.head = 0
	}
	t.wrapped = true
	t.overwritten++
	return ev.ID
}

func (t *Tracer) cpuSlot(cpu int) {
	for len(t.stalls) <= cpu {
		t.stalls = append(t.stalls, stallSpan{})
		t.locks = append(t.locks, lockPend{})
	}
}

// ------------------------------------------------------- pipeline hooks --

// RetireSlot charges one retired instruction's slot fraction as busy time
// at its PC (profile only; busy runs are not span events).
func (t *Tracer) RetireSlot(cpu int, pc uint64, frac float64) {
	t.an.site(pc).ByCat[stats.Busy] += frac
}

// StallSlot charges the stalled fraction of one retire cycle to (pc,
// cat), extending or opening the CPU's stall span. A gap (an interleaved
// fully-busy or idle cycle) or a change of site closes the open span.
func (t *Tracer) StallSlot(cpu, proc int, pc uint64, cat stats.Category, frac float64, now uint64) {
	t.cpuSlot(cpu)
	t.an.site(pc).ByCat[cat] += frac
	sp := &t.stalls[cpu]
	if sp.active && sp.pc == pc && sp.cat == cat && now <= sp.last+1 {
		sp.cycles += frac
		sp.last = now
		return
	}
	if sp.active {
		t.emitStall(sp)
	}
	*sp = stallSpan{active: true, pc: pc, cat: cat, start: now, last: now, cycles: frac, proc: int32(proc)}
}

// StallRun charges frac at (pc, cat) for every cycle of the steady span
// [from, to] (inclusive), bit-identically to calling StallSlot once per
// cycle. core.Run uses it to bulk-apply fast-forwarded spans; the profile
// accumulation and span coalescing use stats.AddRepeat so the resulting
// float64s match the per-cycle loop exactly.
func (t *Tracer) StallRun(cpu, proc int, pc uint64, cat stats.Category, frac float64, from, to uint64) {
	t.cpuSlot(cpu)
	n := to - from + 1
	stats.AddRepeat(&t.an.site(pc).ByCat[cat], frac, n)
	sp := &t.stalls[cpu]
	if sp.active && sp.pc == pc && sp.cat == cat && from <= sp.last+1 {
		stats.AddRepeat(&sp.cycles, frac, n)
		sp.last = to
		return
	}
	if sp.active {
		t.emitStall(sp)
	}
	*sp = stallSpan{active: true, pc: pc, cat: cat, start: from, last: to, proc: int32(proc)}
	stats.AddRepeat(&sp.cycles, frac, n)
}

func (t *Tracer) emitStall(sp *stallSpan) {
	// The cpu index is recoverable from the slice position, but spans are
	// emitted from both StallSlot and Finish; carry it explicitly.
	cpu := int16(0)
	for i := range t.stalls {
		if &t.stalls[i] == sp {
			cpu = int16(i)
			break
		}
	}
	t.commit(Event{
		Kind: KindStall, CPU: cpu, Proc: sp.proc, PC: sp.pc,
		Cat: sp.cat, Start: sp.start, End: sp.last + 1, Cycles: sp.cycles,
	})
}

// LockSpin notes a failed acquisition attempt, opening the contention
// window on the first one.
func (t *Tracer) LockSpin(cpu, proc int, pc, addr uint64, now uint64) {
	t.cpuSlot(cpu)
	lp := &t.locks[cpu]
	if lp.active && lp.addr == addr {
		return
	}
	*lp = lockPend{active: true, addr: addr, pc: pc, start: now, proc: int32(proc)}
}

// LockAcquired records a successful acquisition: the span runs from the
// first attempt to the completion of the winning read-modify-write, and
// links to the previous release of the same lock (the handoff chain that
// makes latches migratory).
func (t *Tracer) LockAcquired(cpu, proc int, pc, addr uint64, now, done uint64) {
	t.cpuSlot(cpu)
	start, wait := now, uint64(0)
	lp := &t.locks[cpu]
	if lp.active && lp.addr == addr {
		start = lp.start
		wait = now - lp.start
	}
	*lp = lockPend{}
	id := t.commit(Event{
		Kind: KindLock, CPU: int16(cpu), Proc: int32(proc), PC: pc, Addr: addr,
		Start: start, End: done, Wait: wait, Link: t.lastRel[addr], InCS: true,
	})
	t.lastAcq[addr] = id
}

// LockReleased records the release (instant), linked to the acquisition.
func (t *Tracer) LockReleased(cpu, proc int, addr, now uint64) {
	t.commit(Event{
		Kind: KindUnlock, CPU: int16(cpu), Proc: int32(proc), Addr: addr,
		Start: now, End: now, Link: t.lastAcq[addr], InCS: true,
	})
	t.lastRel[addr] = t.nextID
}

// ------------------------------------------------------------- HTM hooks --

// HTMBegin records the start of speculation on an elided latch (instant).
func (t *Tracer) HTMBegin(cpu, proc int, pc, latch, now uint64) {
	ev := Event{
		Kind: KindHTM, HTMOp: HTMOpBegin, CPU: int16(cpu), Proc: int32(proc),
		PC: pc, Addr: latch, Start: now, End: now,
	}
	t.an.addHTM(&ev)
	t.commit(ev)
}

// HTMCommit records a committed elision as a span from begin to commit:
// the critical section that executed without ever taking the latch.
func (t *Tracer) HTMCommit(cpu, proc int, pc, latch, begin, now uint64) {
	ev := Event{
		Kind: KindHTM, HTMOp: HTMOpCommit, CPU: int16(cpu), Proc: int32(proc),
		PC: pc, Addr: latch, Start: begin, End: now, InCS: true,
	}
	t.an.addHTM(&ev)
	t.commit(ev)
}

// HTMAbort records an abort with its classified cause and the line whose
// invalidation/eviction (or overflow) triggered it (instant).
func (t *Tracer) HTMAbort(cpu, proc int, latch uint64, cause htm.AbortCause, conflict, now uint64) {
	ev := Event{
		Kind: KindHTM, HTMOp: HTMOpAbort, CPU: int16(cpu), Proc: int32(proc),
		Addr: latch, Cause: cause, Conflict: conflict, Start: now, End: now,
	}
	t.an.addHTM(&ev)
	t.commit(ev)
}

// HTMFallback records giving up on speculation: the real latch was
// acquired (instant, tagged with the abort cause that forced it).
func (t *Tracer) HTMFallback(cpu, proc int, pc, latch uint64, cause htm.AbortCause, now uint64) {
	ev := Event{
		Kind: KindHTM, HTMOp: HTMOpFallback, CPU: int16(cpu), Proc: int32(proc),
		PC: pc, Addr: latch, Cause: cause, Start: now, End: now,
	}
	t.an.addHTM(&ev)
	t.commit(ev)
}

// --------------------------------------------------- memory-system hooks --

// BeginMiss opens a data-miss lifecycle on node. The memory system fills
// the phases in before EndMiss commits it; the scratch depth is one
// because accesses are resolved eagerly and never nest.
func (t *Tracer) BeginMiss(node int, pc uint64, now uint64, write, inCS bool) {
	t.miss = Event{
		Kind: KindMiss, CPU: int16(node), Home: -1, Proc: -1, PC: pc,
		Start: now, Write: write, InCS: inCS, SrcOwner: -1,
	}
	t.missActive = true
}

// MissMSHR stamps the L1D MSHR allocation time.
func (t *Tracer) MissMSHR(at uint64) {
	if t.missActive {
		t.miss.MSHRAt = at
	}
}

// MissDir stamps acceptance at the home directory: arrival cycle, mesh
// hop count, NACK retries, the sharer count found, and the request leg's
// mesh queueing. Ignored when no miss is open (stream-buffer prefetches).
func (t *Tracer) MissDir(home int, at uint64, hops, retries, sharers int, reqQueue uint64) {
	if !t.missActive {
		return
	}
	t.miss.Home = int16(home)
	t.miss.DirAt = at
	t.miss.Hops = int16(hops)
	t.miss.Retries = int16(retries)
	t.miss.Sharers = int16(sharers)
	t.miss.ReqQueue = reqQueue
}

// MissSource stamps the cycle the data source finished producing the
// line: the owner's cache for interventions (owner >= 0) or the memory
// bank (owner < 0).
func (t *Tracer) MissSource(at uint64, owner int) {
	if !t.missActive {
		return
	}
	t.miss.SrcAt = at
	t.miss.SrcOwner = int16(owner)
}

// EndMiss completes and commits the open lifecycle.
func (t *Tracer) EndMiss(lineAddr, done uint64, class uint8, migratory, tlbMiss bool) {
	if !t.missActive {
		return
	}
	t.missActive = false
	ev := t.miss
	ev.Addr = lineAddr
	ev.End = done
	ev.Class = Class(class)
	ev.Migratory = migratory
	ev.TLBMiss = tlbMiss
	t.an.addMiss(&ev)
	t.commit(ev)
}

// CancelMiss abandons the open lifecycle (the access hit after all).
func (t *Tracer) CancelMiss() { t.missActive = false }

// Writeback records a dirty L2 victim leaving node for its home.
func (t *Tracer) Writeback(node int, lineAddr, now uint64) {
	t.commit(Event{
		Kind: KindWriteback, CPU: int16(node), Proc: -1, Addr: lineAddr,
		Start: now, End: now,
	})
}
