package tracing

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// WriteChromeSpans output must satisfy the same schema scripts/tracecheck
// enforces on dbsim traces: only X/i/s/f/M phases, X slices with dur>=1,
// paired flow ids, and process/thread metadata for every used track.
func TestWriteChromeSpansSchema(t *testing.T) {
	trace := "t1"
	spans := []obs.Span{
		{Trace: trace, ID: "a", Name: "submit", Process: "sweep", Start: 1000, End: 2000,
			Attrs: map[string]string{"job": "job-1"}},
		{Trace: trace, ID: "b", Parent: "a", Name: "lease", Process: "sweepd", Start: 2000, End: 2000,
			Attrs: map[string]string{"worker": "w1", "point": "fig6"}},
		{Trace: trace, ID: "c", Parent: "b", Name: "run", Process: "w1", Start: 3000, End: 9000,
			Attrs: map[string]string{"point": "fig6", "status": "ok"}},
	}
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}

	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *uint64        `json:"ts"`
			Dur  uint64         `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			ID   string         `json:"id"`
			BP   string         `json:"bp"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	type track struct{ pid, tid int }
	procNamed := map[int]bool{}
	threadNamed := map[track]bool{}
	flowStarts := map[string]int{}
	flowEnds := map[string]int{}
	slices := 0
	for i, ev := range f.TraceEvents {
		if ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing pid/tid", i)
		}
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procNamed[*ev.Pid] = true
			case "thread_name":
				threadNamed[track{*ev.Pid, *ev.Tid}] = true
			}
		case "X":
			slices++
			if ev.Dur < 1 {
				t.Errorf("event %d: X slice with dur %d", i, ev.Dur)
			}
		case "s":
			if ev.ID == "" {
				t.Errorf("event %d: flow start without id", i)
			}
			flowStarts[ev.ID]++
		case "f":
			if ev.ID == "" || ev.BP != "e" {
				t.Errorf("event %d: flow end id=%q bp=%q", i, ev.ID, ev.BP)
			}
			flowEnds[ev.ID]++
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if slices != len(spans) {
		t.Errorf("got %d X slices, want %d", slices, len(spans))
	}
	if len(flowStarts) != 2 {
		// a->b and b->c are both cross-process edges.
		t.Errorf("got %d flow ids, want 2: %v", len(flowStarts), flowStarts)
	}
	for id, n := range flowStarts {
		if flowEnds[id] != n {
			t.Errorf("flow %s: %d starts vs %d ends", id, n, flowEnds[id])
		}
	}
	// Every used (pid,tid) must be named.
	for i, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if !procNamed[*ev.Pid] {
			t.Errorf("event %d: pid %d has no process_name", i, *ev.Pid)
		}
		if !threadNamed[track{*ev.Pid, *ev.Tid}] {
			t.Errorf("event %d: (pid %d, tid %d) has no thread_name", i, *ev.Pid, *ev.Tid)
		}
	}
}

// Deterministic output: identical span sets must serialize identically
// regardless of input order (the stitcher may read logs in any order).
func TestWriteChromeSpansDeterministic(t *testing.T) {
	var spans []obs.Span
	for i := 0; i < 8; i++ {
		spans = append(spans, obs.Span{
			Trace: "t", ID: fmt.Sprintf("s%d", i), Name: "run",
			Process: fmt.Sprintf("w%d", i%3), Start: int64(1000 * i), End: int64(1000*i + 500),
			Attrs: map[string]string{"point": fmt.Sprintf("p%d", i%2)},
		})
	}
	var a, b bytes.Buffer
	if err := WriteChromeSpans(&a, spans); err != nil {
		t.Fatal(err)
	}
	rev := make([]obs.Span, len(spans))
	for i := range spans {
		rev[len(spans)-1-i] = spans[i]
	}
	if err := WriteChromeSpans(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("output depends on input order")
	}
}

func TestWriteChromeSpansEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, nil); err == nil {
		t.Fatal("want error on empty span set")
	}
}
