package db

// Checkpoint DTOs for the engine's generation-time logical state. The
// block layout is pure arithmetic from the configuration and needs no
// serialization; only the running balances, the history insertion point,
// and the redo allocation cursor are dynamic.

// TPCBState is the dynamic state of a TPCB database.
type TPCBState struct {
	BranchBalance []int64
	TellerBalance []int64
	AcctDelta     map[int]int64
	HistCount     uint64
}

// Snapshot captures the logical database state.
func (t *TPCB) Snapshot() TPCBState {
	s := TPCBState{
		BranchBalance: append([]int64(nil), t.branchBalance...),
		TellerBalance: append([]int64(nil), t.tellerBalance...),
		AcctDelta:     make(map[int]int64, len(t.acctDelta)),
		HistCount:     t.histCount,
	}
	for k, v := range t.acctDelta {
		s.AcctDelta[k] = v
	}
	return s
}

// Restore refills the logical database state.
func (t *TPCB) Restore(s TPCBState) {
	copy(t.branchBalance, s.BranchBalance)
	copy(t.tellerBalance, s.TellerBalance)
	clear(t.acctDelta)
	for k, v := range s.AcctDelta {
		t.acctDelta[k] = v
	}
	t.histCount = s.HistCount
}

// RedoLogState is the dynamic state of a RedoLog.
type RedoLogState struct {
	Tail    uint64
	Records uint64
	Bytes   uint64
}

// Snapshot captures the redo log cursor and counters.
func (r *RedoLog) Snapshot() RedoLogState {
	return RedoLogState{Tail: r.tail, Records: r.Records, Bytes: r.Bytes}
}

// Restore refills the redo log cursor and counters.
func (r *RedoLog) Restore(s RedoLogState) {
	r.tail = s.Tail
	r.Records = s.Records
	r.Bytes = s.Bytes
}
