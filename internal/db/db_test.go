package db

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestTPCBLayoutDistinct(t *testing.T) {
	tp := NewTPCB(TPCBConfig{Branches: 40})
	if tp.Branches != 40 || tp.Tellers != 400 || tp.Accounts != 4_000_000 {
		t.Fatalf("scale wrong: %d/%d/%d", tp.Branches, tp.Tellers, tp.Accounts)
	}
	// Branch rows live in distinct blocks (one per branch).
	seen := map[int]bool{}
	for b := 0; b < tp.Branches; b++ {
		blk := tp.BranchBlock(b)
		if seen[blk] {
			t.Fatalf("branches share block %d", blk)
		}
		seen[blk] = true
	}
	// Account blocks pack 80 rows.
	if tp.AccountBlock(0) != tp.AccountBlock(79) {
		t.Error("first 80 accounts should share a block")
	}
	if tp.AccountBlock(79) == tp.AccountBlock(80) {
		t.Error("account 80 should start a new block")
	}
	// Region ordering: branches < tellers < accounts < history.
	if !(tp.BranchBlock(0) < tp.TellerBlock(0) &&
		tp.TellerBlock(tp.Tellers-1) < tp.AccountBlock(0) &&
		tp.AccountBlock(tp.Accounts-1) < tp.TotalBlocks()) {
		t.Error("block regions out of order")
	}
}

func TestTPCBRowAddressesWithinBlocks(t *testing.T) {
	tp := NewTPCB(TPCBConfig{})
	f := func(aid uint32) bool {
		a := int(aid) % tp.Accounts
		addr := tp.AccountRowAddr(a)
		blk := tp.AccountBlock(a)
		return addr >= BlockAddr(blk) && addr < BlockAddr(blk+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTPCBApplyAndConsistency(t *testing.T) {
	tp := NewTPCB(TPCBConfig{Branches: 2})
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 500; i++ {
		tid := rng.IntN(tp.Tellers)
		bid := tid / 10
		aid := bid*100_000 + rng.IntN(100_000)
		if err := tp.Apply(aid, tid, bid, int64(rng.IntN(2001)-1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Corrupt one teller balance: the invariant must trip.
	tp.tellerBalance[0] += 7
	if err := tp.CheckConsistency(); err == nil {
		t.Error("corruption not detected")
	}
}

func TestTPCBApplyBounds(t *testing.T) {
	tp := NewTPCB(TPCBConfig{Branches: 1})
	if err := tp.Apply(-1, 0, 0, 1); err == nil {
		t.Error("negative account accepted")
	}
	if err := tp.Apply(0, tp.Tellers, 0, 1); err == nil {
		t.Error("out-of-range teller accepted")
	}
	if err := tp.Apply(0, 0, 99, 1); err == nil {
		t.Error("out-of-range branch accepted")
	}
}

func TestHistoryAppendAdvances(t *testing.T) {
	tp := NewTPCB(TPCBConfig{})
	b1, a1 := tp.HistoryAppend()
	b2, a2 := tp.HistoryAppend()
	if a1 == a2 {
		t.Error("history rows collide")
	}
	if b1 != b2 {
		t.Error("consecutive rows should share the insertion block")
	}
	if tp.HistoryCount() != 2 {
		t.Errorf("history count = %d", tp.HistoryCount())
	}
	// The insertion point eventually moves to the next block.
	for i := 0; i < 200; i++ {
		tp.HistoryAppend()
	}
	b3, _ := tp.HistoryAppend()
	if b3 == b1 {
		t.Error("insertion block never advanced")
	}
}

func TestSegments(t *testing.T) {
	tp := NewTPCB(TPCBConfig{Segments: 8})
	if tp.SegmentOf(3) != 3 || tp.SegmentOf(11) != 3 {
		t.Error("segment hashing wrong")
	}
	if tp.SegmentLatchAddr(3) != tp.SegmentLatchAddr(11) {
		t.Error("same segment must share its latch")
	}
	if tp.SegmentLatchAddr(0) == tp.SegmentLatchAddr(1) {
		t.Error("different segments must have distinct latches")
	}
	if tp.SlotAddr(0) == tp.SlotAddr(8) {
		t.Error("slots of different procs in one segment must differ")
	}
}

func TestBufferCacheChainWalk(t *testing.T) {
	bc := NewBufferCache(10_000, 4096)
	for blk := 0; blk < 200; blk++ {
		walk := bc.ChainWalk(blk)
		if len(walk) < 2 || len(walk) > 4 {
			t.Fatalf("blk %d: walk length %d", blk, len(walk))
		}
		if walk[len(walk)-1] != bc.HeaderAddr(blk) {
			t.Fatalf("blk %d: walk does not end at own header", blk)
		}
		// Determinism.
		again := bc.ChainWalk(blk)
		for i := range walk {
			if walk[i] != again[i] {
				t.Fatal("chain walk not deterministic")
			}
		}
	}
}

func TestBufferCacheLatchSharing(t *testing.T) {
	bc := NewBufferCache(10_000, 4096)
	// Blocks hashing to the same bucket share a latch; different buckets
	// do not.
	sameBucket := -1
	for b := 1; b < 10_000; b++ {
		if bc.bucketOf(b) == bc.bucketOf(0) {
			sameBucket = b
			break
		}
	}
	if sameBucket < 0 {
		t.Skip("no colliding block found")
	}
	if bc.BucketLatchAddr(0) != bc.BucketLatchAddr(sameBucket) {
		t.Error("same-bucket blocks must share the latch")
	}
}

func TestRedoLogAlloc(t *testing.T) {
	r := NewRedoLog(1 << 20)
	a := r.Alloc(120)
	if len(a) < 2 || len(a) > 3 {
		t.Fatalf("120-byte record spans %d lines", len(a))
	}
	b := r.Alloc(120)
	if a[0] == b[0] && a[len(a)-1] == b[len(b)-1] {
		t.Error("consecutive allocations fully collide")
	}
	if r.Records != 2 || r.Bytes != 240 {
		t.Errorf("counters: %d records, %d bytes", r.Records, r.Bytes)
	}
	// Adjacent allocations may share a boundary line: that is the
	// log-tail sharing the paper observes. All addresses are in-buffer.
	for _, addr := range append(a, b...) {
		if addr < MetaBase || addr > MetaBase+2<<20 {
			t.Errorf("log address %x outside the metadata area", addr)
		}
	}
}

func TestRedoLogWraps(t *testing.T) {
	r := NewRedoLog(4096)
	first := r.Alloc(64)[0]
	for i := 0; i < 63; i++ {
		r.Alloc(64)
	}
	wrapped := r.Alloc(64)[0]
	if wrapped != first {
		t.Errorf("ring did not wrap: %x vs %x", wrapped, first)
	}
}

func TestLineItemDeterminismAndRevenue(t *testing.T) {
	li := NewLineItem(10_000, 16)
	if li.Quantity(0, 5) != li.Quantity(0, 5) {
		t.Error("column values not deterministic")
	}
	if li.Quantity(0, 5) == li.Quantity(1, 5) && li.DiscountBP(0, 5) == li.DiscountBP(1, 5) {
		t.Error("partitions should differ")
	}
	var manual int64
	for i := 0; i < 10_000; i++ {
		if li.Qualifies(0, i) {
			manual += li.PriceCents(0, i) * int64(li.DiscountBP(0, i))
		} else if li.Revenue(0, i) != 0 {
			t.Fatal("non-qualifying row has revenue")
		}
	}
	if got := li.PartitionRevenue(0, 10_000); got != manual {
		t.Errorf("PartitionRevenue = %d, manual = %d", got, manual)
	}
	if manual == 0 {
		t.Error("no qualifying rows in 10k")
	}
}

func TestLineItemLayout(t *testing.T) {
	li := NewLineItem(1000, 16)
	if li.RowAddr(0, 1)-li.RowAddr(0, 0) != 16 {
		t.Error("row stride wrong")
	}
	// Partitions do not overlap.
	if li.RowAddr(1, 0) <= li.RowAddr(0, 999) {
		t.Error("partitions overlap")
	}
	// Block alignment.
	if li.BlockOf(0, 0)%BlockBytes != 0 {
		t.Error("block address not aligned")
	}
	// Value ranges.
	for i := 0; i < 1000; i++ {
		if q := li.Quantity(0, i); q < 1 || q > 50 {
			t.Fatalf("quantity %d out of range", q)
		}
		if d := li.DiscountBP(0, i); d < 0 || d > 1000 {
			t.Fatalf("discount %d out of range", d)
		}
		if p := li.PriceCents(0, i); p < 10_000 || p >= 100_000 {
			t.Fatalf("price %d out of range", p)
		}
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	for p := 0; p < 32; p++ {
		if PrivateBase(p+1)-PrivateBase(p) != PrivStride {
			t.Fatal("private regions not uniformly spaced")
		}
	}
}
