package db

// BufferCache models the SGA block-buffer directory: a hash table of
// buckets, each protected by a "cache buffer chains" latch, whose chains
// link buffer headers describing cached blocks. Looking up a block walks
// the bucket's chain — a genuinely dependent (pointer-chasing) load
// sequence — and pinning a buffer writes its header, which makes the
// headers of hot blocks (branch rows, history insertion point) migrate
// between processors.
type BufferCache struct {
	buckets    int
	blocks     int
	latchBase  uint64
	headerBase uint64
}

// NewBufferCache sizes a directory for blocks cache blocks hashed into
// buckets buckets (buckets should be a power of two).
func NewBufferCache(blocks, buckets int) *BufferCache {
	return &BufferCache{
		buckets: buckets,
		blocks:  blocks,
		// Metadata-area carve-outs: one cache line per bucket latch, two
		// lines (128B) per buffer header.
		latchBase:  MetaBase + 0x0010_0000,
		headerBase: MetaBase + 0x0100_0000,
	}
}

// Blocks returns the number of cacheable blocks.
func (bc *BufferCache) Blocks() int { return bc.blocks }

// bucketOf hashes a block number to its bucket.
func (bc *BufferCache) bucketOf(blk int) int {
	x := uint64(blk) * 0x9E3779B97F4A7C15
	return int(x % uint64(bc.buckets))
}

// BucketLatchAddr returns the latch protecting blk's bucket chain.
func (bc *BufferCache) BucketLatchAddr(blk int) uint64 {
	return bc.latchBase + uint64(bc.bucketOf(blk))*LineBytes
}

// HeaderAddr returns the buffer header address for blk.
func (bc *BufferCache) HeaderAddr(blk int) uint64 {
	return bc.headerBase + uint64(blk)*2*LineBytes
}

// ChainWalk returns the dependent load addresses of a lookup of blk: the
// bucket head pointer, then the headers of the blocks ahead of blk on the
// chain, ending at blk's own header. Chain positions are a deterministic
// function of the block number, so the walk is stable across traces.
func (bc *BufferCache) ChainWalk(blk int) []uint64 {
	depth := int(uint64(blk)*0x2545F4914F6CDD1D>>61) % 3 // 0..2 blocks ahead
	walk := make([]uint64, 0, depth+2)
	walk = append(walk, bc.latchBase+uint64(bc.bucketOf(blk))*LineBytes+8)
	for i := 1; i <= depth; i++ {
		other := (blk + i*bc.buckets) % bc.blocks
		walk = append(walk, bc.HeaderAddr(other))
	}
	walk = append(walk, bc.HeaderAddr(blk))
	return walk
}
