// Address-space region naming for profiling and tracing reports: the
// inverse of the layout constants in layout.go.

package db

// Region names the address-space region an address falls in, using the
// same names throughout traces and reports: "code", "meta" (latches,
// block headers, hash buckets, statistics), "plan" (shared read-mostly
// plan/dictionary), "buffer" (buffer-cache block frames), "private"
// (per-process heaps/stacks), or "other".
func Region(addr uint64) string {
	switch {
	case addr >= PrivBase:
		return "private"
	case addr >= BufBase:
		return "buffer"
	case addr >= SharedPlanBase:
		return "plan"
	case addr >= MetaBase:
		return "meta"
	case addr >= CodeBase:
		return "code"
	default:
		return "other"
	}
}

// BlockOf returns the buffer-cache block index containing addr, or false
// when addr is not inside a block frame.
func BlockOf(addr uint64) (int, bool) {
	if addr < BufBase || addr >= PrivBase {
		return 0, false
	}
	return int((addr - BufBase) / BlockBytes), true
}
