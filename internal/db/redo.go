package db

// RedoLog models the redo (transaction) log buffer and its allocation
// latch. Every updating process serializes briefly on the redo allocation
// latch to reserve space, then copies its redo record into the shared log
// buffer. The latch line and the log-buffer tail lines are therefore the
// hottest migratory data in the engine (Section 4.2 of the paper), and the
// log writer daemon consumes the buffer to disk at commit.
type RedoLog struct {
	bufBase  uint64
	bufBytes uint64
	tail     uint64 // allocation cursor (generation-time state)

	Records uint64
	Bytes   uint64
}

// NewRedoLog returns a log with a bufBytes-byte ring buffer in the SGA
// metadata area.
func NewRedoLog(bufBytes int) *RedoLog {
	return &RedoLog{
		bufBase:  MetaBase + 0x0000_1000,
		bufBytes: uint64(bufBytes),
	}
}

// AllocLatchAddr is the redo allocation latch (one line).
func (r *RedoLog) AllocLatchAddr() uint64 { return MetaBase }

// WriterStateAddr is the log-writer daemon's progress record, read at
// commit to decide whether a log write must be awaited.
func (r *RedoLog) WriterStateAddr() uint64 { return MetaBase + 0x80 }

// Alloc reserves n bytes of log space and returns the line-granular
// addresses the copy will store to. The allocation order at generation
// time differs from the simulated lock-acquisition order, which is fine:
// as in the paper's methodology, the work done by each process is
// independent of the order of lock acquisition.
func (r *RedoLog) Alloc(n int) []uint64 {
	start := r.tail
	r.tail += uint64(n)
	r.Records++
	r.Bytes += uint64(n)
	first := start &^ (LineBytes - 1)
	last := (start + uint64(n) - 1) &^ (LineBytes - 1)
	var addrs []uint64
	for a := first; a <= last; a += LineBytes {
		addrs = append(addrs, r.bufBase+a%r.bufBytes)
	}
	return addrs
}
