package db

import "fmt"

// TPCB models the TPC-B banking database (Section 2.1.1 of the paper): one
// account, teller and branch table plus an append-only history table, all
// living in buffer-cache blocks. Row addresses are computed from the
// deterministic load order; logical balances are maintained so tests can
// verify transactional bookkeeping.
//
// Layout choices mirror tuned TPC-B setups: each branch row lives in its
// own block (otherwise false sharing of branch rows destroys scaling), ten
// teller rows share a block, and account rows pack ~80 to a block.
type TPCB struct {
	Branches int
	Tellers  int // 10 per branch
	Accounts int // 100,000 per branch (addresses only)

	accountRowsPerBlock int
	tellerRowsPerBlock  int

	branchBlock0  int
	tellerBlock0  int
	accountBlock0 int
	historyBlock0 int
	historyBlocks int

	// Logical state (generation-time bookkeeping).
	branchBalance []int64
	tellerBalance []int64
	acctDelta     map[int]int64
	histCount     uint64

	// Rollback-segment transaction slots: procs hash onto segments whose
	// header lines migrate between the CPUs running those procs.
	Segments int
}

// TPCBConfig scales the database.
type TPCBConfig struct {
	Branches      int // default 40, as in the paper's scaled database
	HistoryBlocks int // ring of history blocks
	Segments      int // rollback segments (default 8)
}

// NewTPCB lays out the database in the block buffer area.
func NewTPCB(cfg TPCBConfig) *TPCB {
	if cfg.Branches == 0 {
		cfg.Branches = 40
	}
	if cfg.HistoryBlocks == 0 {
		cfg.HistoryBlocks = 256
	}
	if cfg.Segments == 0 {
		cfg.Segments = 8
	}
	t := &TPCB{
		Branches:            cfg.Branches,
		Tellers:             cfg.Branches * 10,
		Accounts:            cfg.Branches * 100_000,
		accountRowsPerBlock: 80,
		tellerRowsPerBlock:  10,
		Segments:            cfg.Segments,
		historyBlocks:       cfg.HistoryBlocks,
		branchBalance:       make([]int64, cfg.Branches),
		acctDelta:           make(map[int]int64),
	}
	t.tellerBalance = make([]int64, t.Tellers)
	// Block map: branches first, then tellers, accounts, history ring.
	t.branchBlock0 = 0
	t.tellerBlock0 = t.branchBlock0 + t.Branches
	t.accountBlock0 = t.tellerBlock0 + (t.Tellers+t.tellerRowsPerBlock-1)/t.tellerRowsPerBlock
	t.historyBlock0 = t.accountBlock0 + (t.Accounts+t.accountRowsPerBlock-1)/t.accountRowsPerBlock
	return t
}

// TotalBlocks returns the number of buffer blocks the database occupies.
func (t *TPCB) TotalBlocks() int { return t.historyBlock0 + t.historyBlocks }

// BranchBlock returns the block holding branch bid's row.
func (t *TPCB) BranchBlock(bid int) int { return t.branchBlock0 + bid }

// BranchRowAddr returns branch bid's row address.
func (t *TPCB) BranchRowAddr(bid int) uint64 {
	return BlockAddr(t.BranchBlock(bid)) + 128 // after the block header
}

// TellerBlock returns the block holding teller tid's row.
func (t *TPCB) TellerBlock(tid int) int {
	return t.tellerBlock0 + tid/t.tellerRowsPerBlock
}

// TellerRowAddr returns teller tid's row address.
func (t *TPCB) TellerRowAddr(tid int) uint64 {
	return BlockAddr(t.TellerBlock(tid)) + 128 + uint64(tid%t.tellerRowsPerBlock)*100
}

// AccountBlock returns the block holding account aid's row.
func (t *TPCB) AccountBlock(aid int) int {
	return t.accountBlock0 + aid/t.accountRowsPerBlock
}

// AccountRowAddr returns account aid's row address.
func (t *TPCB) AccountRowAddr(aid int) uint64 {
	return BlockAddr(t.AccountBlock(aid)) + 128 + uint64(aid%t.accountRowsPerBlock)*100
}

// HistoryAppend reserves a history row, returning its block and address.
// The insertion point is globally shared, so the current history block
// migrates between processors, as in real TPC-B runs.
func (t *TPCB) HistoryAppend() (block int, addr uint64) {
	const rowsPerBlock = 160
	i := t.histCount
	t.histCount++
	block = t.historyBlock0 + int(i/rowsPerBlock)%t.historyBlocks
	addr = BlockAddr(block) + 128 + (i%rowsPerBlock)*50
	return block, addr
}

// HistoryCount returns the number of history rows appended.
func (t *TPCB) HistoryCount() uint64 { return t.histCount }

// SegmentOf maps a process to its rollback segment.
func (t *TPCB) SegmentOf(proc int) int { return proc % t.Segments }

// SegmentLatchAddr returns the transaction-table latch of proc's segment.
func (t *TPCB) SegmentLatchAddr(proc int) uint64 {
	return MetaBase + 0x0008_0000 + uint64(t.SegmentOf(proc))*LineBytes
}

// SlotAddr returns proc's transaction-slot line within its segment.
func (t *TPCB) SlotAddr(proc int) uint64 {
	slot := uint64(proc / t.Segments % 16)
	return MetaBase + 0x0009_0000 + uint64(t.SegmentOf(proc))*1024 +
		slot*LineBytes
}

// Apply records the logical effect of one TPC-B transaction: account,
// teller and branch balances change by delta and a history row is implied.
func (t *TPCB) Apply(aid, tid, bid int, delta int64) error {
	if aid < 0 || aid >= t.Accounts {
		return fmt.Errorf("db: account %d out of range", aid)
	}
	if tid < 0 || tid >= t.Tellers {
		return fmt.Errorf("db: teller %d out of range", tid)
	}
	if bid < 0 || bid >= t.Branches {
		return fmt.Errorf("db: branch %d out of range", bid)
	}
	t.acctDelta[aid] += delta
	t.tellerBalance[tid] += delta
	t.branchBalance[bid] += delta
	return nil
}

// BranchBalance returns branch bid's balance.
func (t *TPCB) BranchBalance(bid int) int64 { return t.branchBalance[bid] }

// TellerBalance returns teller tid's balance.
func (t *TPCB) TellerBalance(tid int) int64 { return t.tellerBalance[tid] }

// AccountDelta returns the net balance change of account aid.
func (t *TPCB) AccountDelta(aid int) int64 { return t.acctDelta[aid] }

// CheckConsistency verifies TPC-B bookkeeping invariants: the sums of
// account, teller, and branch balance changes must all be equal.
func (t *TPCB) CheckConsistency() error {
	var accounts, tellers, branches int64
	for _, d := range t.acctDelta {
		accounts += d
	}
	for _, b := range t.tellerBalance {
		tellers += b
	}
	for _, b := range t.branchBalance {
		branches += b
	}
	if accounts != tellers || tellers != branches {
		return fmt.Errorf("db: balance mismatch: accounts=%d tellers=%d branches=%d",
			accounts, tellers, branches)
	}
	return nil
}
