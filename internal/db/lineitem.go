package db

// LineItem models the TPC-D lineitem table scanned by Query 6 (Section
// 2.1.2 of the paper). The table is partitioned across the parallel query
// server processes; each partition is scanned sequentially. Column values
// are a deterministic function of the row number, so the generator and the
// verification code agree on which rows qualify and on the aggregate.
//
// Query 6: SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE
// l_shipdate in year AND l_discount in [d-0.01, d+0.01] AND l_quantity < 24.
type LineItem struct {
	RowsPerPartition int
	RowStride        int // bytes between consecutive projected row pieces
	base             uint64
	partitionBytes   uint64
}

// NewLineItem lays out a table with parts partitions. With the default
// 32-byte projected row pieces, a 500MB in-memory table corresponds to tens
// of millions of rows; runs scan a prefix of each partition.
func NewLineItem(rowsPerPartition, rowStride int) *LineItem {
	if rowStride == 0 {
		rowStride = 32
	}
	l := &LineItem{
		RowsPerPartition: rowsPerPartition,
		RowStride:        rowStride,
		base:             BufBase + 0x1000_0000, // beyond the TPC-B blocks
	}
	l.partitionBytes = (uint64(rowsPerPartition)*uint64(rowStride) + BlockBytes - 1) &^ (BlockBytes - 1)
	return l
}

// RowAddr returns the address of row i of partition part.
func (l *LineItem) RowAddr(part, i int) uint64 {
	return l.base + uint64(part)*l.partitionBytes + uint64(i)*uint64(l.RowStride)
}

// BlockOf returns the block-aligned address containing row i of part (block
// header reads happen once per block during the scan).
func (l *LineItem) BlockOf(part, i int) uint64 {
	return l.RowAddr(part, i) &^ (BlockBytes - 1)
}

// rowHash mixes a global row id.
func rowHash(part, i int) uint64 {
	x := uint64(part)<<32 | uint64(uint32(i))
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// Quantity returns l_quantity of the row (1..50).
func (l *LineItem) Quantity(part, i int) int {
	return int(rowHash(part, i)%50) + 1
}

// DiscountBP returns l_discount in basis points (0..1000 = 0..10%).
func (l *LineItem) DiscountBP(part, i int) int {
	return int(rowHash(part, i) >> 16 % 1001)
}

// ShipYearOK reports whether l_shipdate falls in the queried year (1/7 of
// rows).
func (l *LineItem) ShipYearOK(part, i int) bool {
	return rowHash(part, i)>>32%7 == 0
}

// PriceCents returns l_extendedprice in cents.
func (l *LineItem) PriceCents(part, i int) int64 {
	return int64(rowHash(part, i)>>8%90_000) + 10_000
}

// Qualifies evaluates the full Query 6 predicate for a row.
func (l *LineItem) Qualifies(part, i int) bool {
	d := l.DiscountBP(part, i)
	return l.ShipYearOK(part, i) && d >= 500 && d <= 700 && l.Quantity(part, i) < 24
}

// Revenue returns the row's contribution to the Query 6 aggregate (0 when
// it does not qualify), in cents-basis-points.
func (l *LineItem) Revenue(part, i int) int64 {
	if !l.Qualifies(part, i) {
		return 0
	}
	return l.PriceCents(part, i) * int64(l.DiscountBP(part, i))
}

// PartitionRevenue computes the expected aggregate for a partition prefix.
func (l *LineItem) PartitionRevenue(part, rows int) int64 {
	var sum int64
	for i := 0; i < rows; i++ {
		sum += l.Revenue(part, i)
	}
	return sum
}
