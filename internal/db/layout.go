// Package db is the miniature database-engine substrate standing in for the
// Oracle 7.3.2 engine the paper traced. It reproduces the engine structures
// whose memory behaviour drives the paper's results: the System Global Area
// (SGA) with its block-buffer and metadata areas, the hash-based buffer
// directory with per-bucket latches, the redo log with its allocation latch
// (the canonical hot migratory latch), rollback-segment transaction slots,
// the TPC-B tables (account, branch, teller, history), and the TPC-D
// lineitem table scanned by Query 6.
//
// The engine is used at trace-generation time: it hands out the *addresses*
// and structural walks (hash-chain depths, row positions, log tail
// allocations) that the workload generators (internal/workload) expand into
// instruction streams, and it maintains logical table state so tests can
// verify transactional bookkeeping (balance conservation, history counts).
package db

// BlockBytes is the database block size (Oracle-style 8KB blocks, equal to
// the machine page size in Figure 1).
const BlockBytes = 8192

// LineBytes is the coherence granularity assumed when spreading structures
// to avoid or create line sharing deliberately.
const LineBytes = 64

// Address-space layout of the simulated process image. All server
// processes share the SGA mapping (code, metadata, block buffer); each has
// a private region (stack, PGA).
const (
	// CodeBase is where the engine text segment is laid out.
	CodeBase uint64 = 0x1000_0000
	// MetaBase is the SGA metadata area: latches, buffer headers,
	// transaction slots, the redo log buffer (the paper's metadata area).
	MetaBase uint64 = 0x2000_0000
	// BufBase is the SGA block buffer area (cache of database blocks).
	BufBase uint64 = 0x4000_0000
	// SharedPlanBase is the shared SQL/plan cache (read-mostly shared).
	SharedPlanBase uint64 = 0x3000_0000
	// PrivBase is the first per-process private region.
	PrivBase uint64 = 0x8000_0000
	// PrivStride separates consecutive processes' private regions.
	PrivStride uint64 = 0x0100_0000 // 16MB each
)

// PrivateBase returns the base of process proc's private region.
func PrivateBase(proc int) uint64 {
	return PrivBase + uint64(proc)*PrivStride
}

// BlockAddr returns the address of buffer-cache block blk.
func BlockAddr(blk int) uint64 { return BufBase + uint64(blk)*BlockBytes }
