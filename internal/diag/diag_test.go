package diag

import (
	"strings"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		Cycle:  123456,
		Reason: "watchdog",
		Cores: []CoreState{
			{ID: 0, ContextID: 3, Retired: 42, ROB: 12, FetchQ: 4, WriteBuf: 1,
				HeadOp: "LOCKACQ", HeadPC: 0x1000, HeadAddr: 0xA00000,
				Spinning: true, SpinAddr: 0xA00000},
			{ID: 1, ContextID: -1, Retired: 99},
		},
		Nodes: []NodeState{
			{Node: 0, MSHRs: []MSHRState{
				{Level: "L1D", InUse: 1, Max: 8,
					Lines: []MSHRLine{{LineAddr: 0x40, Done: 123500, Write: true}}},
			}},
			{Node: 1},
		},
		Dir:   DirectoryState{Lines: 10, Owned: 2, Shared: 3, Migratory: 1},
		Locks: []LockState{{Addr: 0xA00000, Owner: 7, Waiters: []int{0}}},
		Mesh:  MeshState{Messages: 1000, AvgLatency: 85, QueueCycles: 12, BusyLinks: 2},
	}
}

func TestSnapshotString(t *testing.T) {
	text := sample().String()
	wants := []string{
		"cycle 123456", "watchdog",
		"cpu0", "ctx=3", "SPINNING on lock 0xa00000",
		"cpu1", "ctx=-",
		"node0 in-flight misses", "L1D 1/8", "[w line 0x40 done @123500]",
		"directory: 10 lines (2 owned dirty, 3 shared, 1 migratory)",
		"lock 0xa00000 held by process 7", "cpus [0] spinning",
		"mesh: 1000 messages",
	}
	for _, want := range wants {
		if !strings.Contains(text, want) {
			t.Errorf("rendered snapshot missing %q:\n%s", want, text)
		}
	}
	// An idle node (no in-flight misses) must not emit a node line.
	if strings.Contains(text, "node1") {
		t.Errorf("empty node rendered:\n%s", text)
	}
}

func TestNilSnapshotIsSafe(t *testing.T) {
	var s *Snapshot
	if got := s.String(); !strings.Contains(got, "no snapshot") {
		t.Errorf("nil snapshot rendered %q", got)
	}
}

func TestPanicErrorReport(t *testing.T) {
	e := &PanicError{Value: "boom", Stack: []byte("goroutine 1 ..."), Snapshot: sample()}
	if !strings.Contains(e.Error(), "boom") {
		t.Errorf("Error() = %q", e.Error())
	}
	rep := e.Report()
	for _, want := range []string{"panic: boom", "machine snapshot", "goroutine 1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report() missing %q:\n%s", want, rep)
		}
	}
	// A panic recovered before any snapshot could be taken still reports.
	bare := &PanicError{Value: 42}
	if !strings.Contains(bare.Report(), "no snapshot") {
		t.Errorf("bare Report() = %q", bare.Report())
	}
}
