// Package diag renders machine-state snapshots for crash diagnostics.
//
// When a run dies — the forward-progress watchdog trips, the cycle bound
// is exceeded, or an internal invariant panics — the interesting question
// is *why*: which core stopped retiring, what its oldest instruction is
// waiting on, which misses are in flight, who holds the contended lock.
// A Snapshot captures exactly that state (per-CPU pipeline/ROB occupancy,
// MSHR contents, directory summary, lock-table holders and waiters, and
// in-flight mesh traffic) as plain data, and renders it as a compact text
// report. internal/core builds snapshots and attaches them to its error
// types; this package holds the representation so that tools and tests can
// consume snapshots without importing the whole machine.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// CoreState is one processor's pipeline state. The JSON tags are the
// snapshot's durable wire format: run journals (internal/runner) embed
// snapshots verbatim, so renaming a tag is a journal format change.
type CoreState struct {
	ID        int    `json:"id"`
	ContextID int    `json:"ctx"` // running process, -1 when idle
	Retired   uint64 `json:"retired"`
	ROB       int    `json:"rob"`       // instructions in the window
	FetchQ    int    `json:"fetch_q"`   // instructions in the fetch buffer
	WriteBuf  int    `json:"write_buf"` // stores in the post-retirement write buffer
	HeadOp    string `json:"head_op,omitempty"` // opcode of the oldest unretired instruction ("" if none)
	HeadPC    uint64 `json:"head_pc,omitempty"`
	HeadAddr  uint64 `json:"head_addr,omitempty"`
	Spinning  bool   `json:"spinning,omitempty"`  // the head is a lock acquire that keeps losing
	SpinAddr  uint64 `json:"spin_addr,omitempty"` // the contended lock's address
}

// MSHRLine is one in-flight miss (the memory system's transient state).
type MSHRLine struct {
	LineAddr uint64 `json:"line"`
	Done     uint64 `json:"done"`               // cycle the fill completes
	AllocAt  uint64 `json:"alloc_at,omitempty"` // cycle the register was taken
	Write    bool   `json:"write,omitempty"`    // exclusive (GETX/upgrade) request
}

// MSHRState is one miss file's occupancy.
type MSHRState struct {
	Level string     `json:"level"` // "L1I", "L1D", "L2"
	InUse int        `json:"in_use"`
	Max   int        `json:"max"`
	Lines []MSHRLine `json:"lines,omitempty"`
}

// NodeState is one node's memory-system state.
type NodeState struct {
	Node  int         `json:"node"`
	MSHRs []MSHRState `json:"mshrs,omitempty"`
}

// DirectoryState summarizes the coherence directory.
type DirectoryState struct {
	Lines     int `json:"lines"`     // lines with directory state
	Owned     int `json:"owned"`     // lines dirty in some cache
	Shared    int `json:"shared"`    // lines cached by >= 2 nodes
	Migratory int `json:"migratory"` // lines classified migratory
}

// LockState is one held simulated lock.
type LockState struct {
	Addr    uint64 `json:"addr"`
	Owner   int    `json:"owner"`             // process id of the holder
	Waiters []int  `json:"waiters,omitempty"` // core ids spinning on it
}

// MeshState summarizes the interconnect.
type MeshState struct {
	Messages    uint64  `json:"messages"`
	AvgLatency  float64 `json:"avg_latency"`
	QueueCycles uint64  `json:"queue_cycles"`
	BusyLinks   int     `json:"busy_links"` // links still occupied at snapshot time
}

// Snapshot is the machine state at one instant.
type Snapshot struct {
	Cycle  uint64         `json:"cycle"`
	Reason string         `json:"reason"` // what prompted the snapshot ("watchdog", "panic", ...)
	Cores  []CoreState    `json:"cores,omitempty"`
	Nodes  []NodeState    `json:"nodes,omitempty"`
	Dir    DirectoryState `json:"dir"`
	Locks  []LockState    `json:"locks,omitempty"`
	Mesh   MeshState      `json:"mesh"`
}

// String renders the snapshot as a multi-line diagnostic report.
func (s *Snapshot) String() string {
	if s == nil {
		return "diag: no snapshot"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== machine snapshot @ cycle %d (%s) ===\n", s.Cycle, s.Reason)
	for _, c := range s.Cores {
		fmt.Fprintf(&b, "cpu%-2d ctx=%-3s retired=%-10d rob=%-3d fq=%-3d wbuf=%-2d",
			c.ID, ctxLabel(c.ContextID), c.Retired, c.ROB, c.FetchQ, c.WriteBuf)
		if c.HeadOp != "" {
			fmt.Fprintf(&b, " head=%s pc=%#x", c.HeadOp, c.HeadPC)
			if c.HeadAddr != 0 {
				fmt.Fprintf(&b, " addr=%#x", c.HeadAddr)
			}
		}
		if c.Spinning {
			fmt.Fprintf(&b, " SPINNING on lock %#x", c.SpinAddr)
		}
		b.WriteByte('\n')
	}
	for _, n := range s.Nodes {
		used := 0
		for _, m := range n.MSHRs {
			used += m.InUse
		}
		if used == 0 {
			continue
		}
		fmt.Fprintf(&b, "node%d in-flight misses:", n.Node)
		for _, m := range n.MSHRs {
			if m.InUse == 0 {
				continue
			}
			fmt.Fprintf(&b, " %s %d/%d", m.Level, m.InUse, m.Max)
			for _, l := range m.Lines {
				kind := "r"
				if l.Write {
					kind = "w"
				}
				fmt.Fprintf(&b, " [%s line %#x done @%d]", kind, l.LineAddr, l.Done)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "directory: %d lines (%d owned dirty, %d shared, %d migratory)\n",
		s.Dir.Lines, s.Dir.Owned, s.Dir.Shared, s.Dir.Migratory)
	if len(s.Locks) > 0 {
		locks := append([]LockState(nil), s.Locks...)
		sort.Slice(locks, func(i, j int) bool { return locks[i].Addr < locks[j].Addr })
		for _, l := range locks {
			fmt.Fprintf(&b, "lock %#x held by process %d", l.Addr, l.Owner)
			if len(l.Waiters) > 0 {
				fmt.Fprintf(&b, ", cpus %v spinning", l.Waiters)
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "mesh: %d messages, avg latency %.0f, queueing %d cycles, %d links busy\n",
		s.Mesh.Messages, s.Mesh.AvgLatency, s.Mesh.QueueCycles, s.Mesh.BusyLinks)
	return b.String()
}

func ctxLabel(id int) string {
	if id < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", id)
}

// PanicError is a panic recovered during a simulation run, carrying the
// machine snapshot taken at recovery time.
type PanicError struct {
	Value    any    // the recovered panic value
	Stack    []byte // stack trace captured at recovery
	Snapshot *Snapshot
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("diag: run panicked: %v", e.Value)
}

// Report renders the full diagnostic: panic value, snapshot, stack.
func (e *PanicError) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "panic: %v\n", e.Value)
	b.WriteString(e.Snapshot.String())
	if len(e.Stack) > 0 {
		b.WriteString(string(e.Stack))
	}
	return b.String()
}
