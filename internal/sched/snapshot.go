package sched

import (
	"fmt"

	"repro/internal/cpu"
)

// SchedulerState is the dynamic state of the Scheduler. Queue entries
// are process (context) IDs: the contexts themselves are serialized by
// the cores/core layer and re-linked by Restore through a lookup, so the
// queues' FIFO order — which decides pick() — round-trips exactly.
type SchedulerState struct {
	Queues       [][]int // per-CPU run queues, as ordered context IDs
	SwitchAt     []uint64
	IdleCycles   []uint64
	SwitchCycles []uint64
	Switches     []uint64
}

// Snapshot captures the scheduler.
func (s *Scheduler) Snapshot() SchedulerState {
	st := SchedulerState{
		Queues:       make([][]int, len(s.queues)),
		SwitchAt:     append([]uint64(nil), s.switchAt...),
		IdleCycles:   append([]uint64(nil), s.IdleCycles...),
		SwitchCycles: append([]uint64(nil), s.SwitchCycles...),
		Switches:     append([]uint64(nil), s.Switches...),
	}
	for i, q := range s.queues {
		ids := make([]int, len(q))
		for j, ctx := range q {
			ids[j] = ctx.ID
		}
		st.Queues[i] = ids
	}
	return st
}

// Restore refills the scheduler from a snapshot taken on a machine with
// the same CPU count, resolving queue entries through byID (context ID →
// live context).
func (s *Scheduler) Restore(st SchedulerState, byID map[int]*cpu.Context) error {
	if len(st.Queues) != len(s.queues) || len(st.SwitchAt) != len(s.switchAt) ||
		len(st.IdleCycles) != len(s.IdleCycles) || len(st.SwitchCycles) != len(s.SwitchCycles) ||
		len(st.Switches) != len(s.Switches) {
		return fmt.Errorf("sched: snapshot CPU count does not match configured scheduler")
	}
	for i, ids := range st.Queues {
		q := make([]*cpu.Context, len(ids))
		for j, id := range ids {
			ctx, ok := byID[id]
			if !ok {
				return fmt.Errorf("sched: snapshot queue %d references unknown context %d", i, id)
			}
			q[j] = ctx
		}
		s.queues[i] = q
	}
	copy(s.switchAt, st.SwitchAt)
	copy(s.IdleCycles, st.IdleCycles)
	copy(s.SwitchCycles, st.SwitchCycles)
	copy(s.Switches, st.Switches)
	return nil
}
