package sched

import (
	"testing"

	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/trace"
)

type noLocks struct{}

func (noLocks) TryAcquire(addr uint64, proc int, now uint64) bool { return true }
func (noLocks) Release(addr uint64, proc int, at uint64)          {}

// proc builds a short compute stream ending in a blocking syscall.
func proc(blocks uint32) trace.Stream {
	var ins []trace.Instr
	pc := uint64(0x1000)
	for i := 0; i < 50; i++ {
		ins = append(ins, trace.Instr{Op: trace.OpIntALU, PC: pc, Dest: 1})
		pc += 4
	}
	ins = append(ins, trace.Instr{Op: trace.OpSyscall, PC: pc, Latency: blocks})
	pc += 4
	for i := 0; i < 50; i++ {
		ins = append(ins, trace.Instr{Op: trace.OpIntALU, PC: pc, Dest: 1})
		pc += 4
	}
	return trace.NewSliceStream(ins)
}

func TestSchedulerRoundRobinsBlockedProcesses(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.CtxSwitchCycles = 50
	ms := memsys.MustNew(cfg)
	core := cpu.New(cfg, 0, ms.Node(0), noLocks{})
	s := New(1, cfg.CtxSwitchCycles)
	ctxs := []*cpu.Context{
		{ID: 0, Stream: proc(3000)},
		{ID: 1, Stream: proc(3000)},
		{ID: 2, Stream: proc(3000)},
	}
	for _, c := range ctxs {
		s.Add(0, c)
	}
	for cycle := uint64(1); cycle < 1_000_000; cycle++ {
		s.Tick(0, core, cycle)
		core.Tick(cycle)
		done := true
		for _, c := range ctxs {
			if !c.Finished {
				done = false
			}
		}
		if done && core.Context() == nil {
			break
		}
	}
	for i, c := range ctxs {
		if !c.Finished {
			t.Errorf("process %d never finished", i)
		}
		// The blocking-syscall marker is consumed by the fetch engine as a
		// context-switch hint, not retired as an instruction.
		if c.Retired != 100 {
			t.Errorf("process %d retired %d, want 100", i, c.Retired)
		}
	}
	if s.Switches[0] < 3 {
		t.Errorf("switches = %d, want >= 3 (one per blocking call)", s.Switches[0])
	}
	if s.SwitchCycles[0] == 0 {
		t.Error("context-switch overhead not accounted")
	}
}

func TestSchedulerIdleWhenAllBlocked(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	ms := memsys.MustNew(cfg)
	core := cpu.New(cfg, 0, ms.Node(0), noLocks{})
	s := New(1, 10)
	ctx := &cpu.Context{ID: 0, Stream: proc(50_000)}
	s.Add(0, ctx)
	for cycle := uint64(1); cycle < 200_000; cycle++ {
		s.Tick(0, core, cycle)
		core.Tick(cycle)
		if ctx.Finished && core.Context() == nil {
			break
		}
	}
	if s.IdleCycles[0] < 40_000 {
		t.Errorf("idle cycles = %d; the 50k-cycle block should be idle", s.IdleCycles[0])
	}
	s.ResetStats()
	if s.IdleCycles[0] != 0 || s.Switches[0] != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestPending(t *testing.T) {
	s := New(2, 10)
	if s.Pending(0) {
		t.Error("empty queue reported pending")
	}
	ctx := &cpu.Context{ID: 0, Stream: proc(10)}
	s.Add(1, ctx)
	if s.Pending(0) || !s.Pending(1) {
		t.Error("Pending per-CPU accounting wrong")
	}
	ctx.Finished = true
	if s.Pending(1) {
		t.Error("finished process still pending")
	}
}
