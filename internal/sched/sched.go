// Package sched models the operating-system scheduler of the traced
// system. The paper's traces mark blocking system calls; the simulator uses
// them as context-switch hints while modelling the scheduler internally
// (Section 2.2). Server processes are pinned to their processor (the paper
// runs a fixed number of processes per CPU: eight for OLTP, four for DSS),
// each CPU keeps a local run queue, context switches cost a fixed overhead,
// and cycles with no runnable process are counted idle and factored out of
// the execution-time breakdowns.
package sched

import (
	"repro/internal/cpu"
)

// Scheduler drives context switches for every core. Not safe for
// concurrent use.
type Scheduler struct {
	switchCost uint64
	queues     [][]*cpu.Context // per-CPU run queues
	switchAt   []uint64         // per-CPU: earliest install time after a switch

	IdleCycles   []uint64 // per-CPU cycles with nothing runnable
	SwitchCycles []uint64 // per-CPU cycles spent context switching
	Switches     []uint64
}

// New returns a scheduler for n CPUs with the given switch cost in cycles.
func New(n int, switchCost int) *Scheduler {
	return &Scheduler{
		switchCost:   uint64(switchCost),
		queues:       make([][]*cpu.Context, n),
		switchAt:     make([]uint64, n),
		IdleCycles:   make([]uint64, n),
		SwitchCycles: make([]uint64, n),
		Switches:     make([]uint64, n),
	}
}

// Add pins a process to CPU cpuID.
func (s *Scheduler) Add(cpuID int, ctx *cpu.Context) {
	s.queues[cpuID] = append(s.queues[cpuID], ctx)
}

// Tick runs the per-cycle scheduling decision for one core: swap out a
// blocked process, install the next runnable one, and account idle and
// switch overhead.
func (s *Scheduler) Tick(cpuID int, core *cpu.Core, now uint64) {
	if core.NeedsSwitch() {
		ctx := core.TakeContext(now)
		if ctx != nil && !ctx.Finished {
			s.queues[cpuID] = append(s.queues[cpuID], ctx)
		}
		s.switchAt[cpuID] = now + s.switchCost
		s.Switches[cpuID]++
	}
	if core.Context() != nil {
		return
	}
	if now < s.switchAt[cpuID] {
		s.SwitchCycles[cpuID]++
		return
	}
	if next := s.pick(cpuID, now); next != nil {
		core.SwitchTo(next)
		return
	}
	s.IdleCycles[cpuID]++
}

// pick removes and returns the first runnable process on cpuID's queue.
func (s *Scheduler) pick(cpuID int, now uint64) *cpu.Context {
	q := s.queues[cpuID]
	for i, ctx := range q {
		if ctx.Finished {
			continue
		}
		if ctx.BlockedUntil <= now {
			s.queues[cpuID] = append(q[:i:i], q[i+1:]...)
			return ctx
		}
	}
	return nil
}

// Pending reports whether any unfinished process remains on cpuID's queue.
func (s *Scheduler) Pending(cpuID int) bool {
	for _, ctx := range s.queues[cpuID] {
		if !ctx.Finished {
			return true
		}
	}
	return false
}

// ResetStats zeroes idle/switch accounting.
func (s *Scheduler) ResetStats() {
	for i := range s.IdleCycles {
		s.IdleCycles[i], s.SwitchCycles[i], s.Switches[i] = 0, 0, 0
	}
}
