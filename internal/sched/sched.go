// Package sched models the operating-system scheduler of the traced
// system. The paper's traces mark blocking system calls; the simulator uses
// them as context-switch hints while modelling the scheduler internally
// (Section 2.2). Server processes are pinned to their processor (the paper
// runs a fixed number of processes per CPU: eight for OLTP, four for DSS),
// each CPU keeps a local run queue, context switches cost a fixed overhead,
// and cycles with no runnable process are counted idle and factored out of
// the execution-time breakdowns.
package sched

import (
	"repro/internal/cpu"
)

// Scheduler drives context switches for every core. Not safe for
// concurrent use.
type Scheduler struct {
	switchCost uint64
	queues     [][]*cpu.Context // per-CPU run queues
	switchAt   []uint64         // per-CPU: earliest install time after a switch

	IdleCycles   []uint64 // per-CPU cycles with nothing runnable
	SwitchCycles []uint64 // per-CPU cycles spent context switching
	Switches     []uint64
}

// New returns a scheduler for n CPUs with the given switch cost in cycles.
func New(n int, switchCost int) *Scheduler {
	return &Scheduler{
		switchCost:   uint64(switchCost),
		queues:       make([][]*cpu.Context, n),
		switchAt:     make([]uint64, n),
		IdleCycles:   make([]uint64, n),
		SwitchCycles: make([]uint64, n),
		Switches:     make([]uint64, n),
	}
}

// Add pins a process to CPU cpuID.
func (s *Scheduler) Add(cpuID int, ctx *cpu.Context) {
	s.queues[cpuID] = append(s.queues[cpuID], ctx)
}

// Tick runs the per-cycle scheduling decision for one core: swap out a
// blocked process, install the next runnable one, and account idle and
// switch overhead.
func (s *Scheduler) Tick(cpuID int, core *cpu.Core, now uint64) {
	if core.NeedsSwitch() {
		ctx := core.TakeContext(now)
		if ctx != nil && !ctx.Finished {
			s.queues[cpuID] = append(s.queues[cpuID], ctx)
		}
		s.switchAt[cpuID] = now + s.switchCost
		s.Switches[cpuID]++
	}
	if core.Context() != nil {
		return
	}
	if now < s.switchAt[cpuID] {
		s.SwitchCycles[cpuID]++
		return
	}
	if next := s.pick(cpuID, now); next != nil {
		core.SwitchTo(next)
		return
	}
	s.IdleCycles[cpuID]++
}

// EventNever mirrors cpu.EventNever for the scheduler's next-event bound.
const EventNever = ^uint64(0)

// NextEvent returns a conservative lower bound on the next cycle at which
// Tick(cpuID) would do anything beyond its constant per-cycle accounting
// (SwitchCycles or IdleCycles bumps). now+1 means "cannot prove the next
// cycle is quiet"; EventNever means the scheduler only acts again after the
// core does (a running context's progress is bounded by cpu.NextEvent).
func (s *Scheduler) NextEvent(cpuID int, core *cpu.Core, now uint64) uint64 {
	if core.NeedsSwitch() {
		return now + 1 // the swap-out happens on the next tick
	}
	if core.Context() != nil {
		return EventNever // nothing to do while a process runs
	}
	// Core idle: the next install is the first cycle some queued process is
	// runnable and the switch overhead has elapsed.
	ready := uint64(EventNever)
	for _, ctx := range s.queues[cpuID] {
		if ctx.Finished {
			continue
		}
		if ctx.BlockedUntil < ready {
			ready = ctx.BlockedUntil
		}
	}
	if ready == EventNever {
		return EventNever // processes are pinned: an empty queue stays empty
	}
	if at := s.switchAt[cpuID]; at > ready {
		ready = at
	}
	if ready <= now {
		return now + 1
	}
	return ready
}

// FastForward bulk-applies the per-cycle idle/switch accounting for the
// steady cycles [from, to] (inclusive), which core.Run has proven
// event-free via NextEvent: every cycle t in the span would have counted
// SwitchCycles (t < switchAt) or IdleCycles (otherwise), with no queue or
// core mutation.
func (s *Scheduler) FastForward(cpuID int, core *cpu.Core, from, to uint64) {
	if core.Context() != nil {
		return
	}
	n := to - from + 1
	if at := s.switchAt[cpuID]; at > from {
		sw := at - from // cycles t in [from, min(at, to+1)) count as switching
		if sw > n {
			sw = n
		}
		s.SwitchCycles[cpuID] += sw
		n -= sw
	}
	s.IdleCycles[cpuID] += n
}

// pick removes and returns the first runnable process on cpuID's queue.
func (s *Scheduler) pick(cpuID int, now uint64) *cpu.Context {
	q := s.queues[cpuID]
	for i, ctx := range q {
		if ctx.Finished {
			continue
		}
		if ctx.BlockedUntil <= now {
			s.queues[cpuID] = append(q[:i:i], q[i+1:]...)
			return ctx
		}
	}
	return nil
}

// Pending reports whether any unfinished process remains on cpuID's queue.
func (s *Scheduler) Pending(cpuID int) bool {
	for _, ctx := range s.queues[cpuID] {
		if !ctx.Finished {
			return true
		}
	}
	return false
}

// ResetStats zeroes idle/switch accounting.
func (s *Scheduler) ResetStats() {
	for i := range s.IdleCycles {
		s.IdleCycles[i], s.SwitchCycles[i], s.Switches[i] = 0, 0, 0
	}
}
