package mesh

import (
	"testing"
	"testing/quick"
)

func mustMesh(n, hop, flit int) *Mesh {
	m, err := New(n, hop, flit)
	if err != nil {
		panic(err)
	}
	return m
}

func TestBadGeometryErrors(t *testing.T) {
	if _, err := New(0, 10, 2); err == nil {
		t.Error("expected error for zero nodes")
	}
	if _, err := New(4, -1, 2); err == nil {
		t.Error("expected error for negative hop cycles")
	}
}

func TestDims(t *testing.T) {
	cases := []struct{ n, cols, rows int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {6, 3, 2}, {8, 4, 2}, {9, 3, 3}, {16, 4, 4},
	}
	for _, c := range cases {
		m := mustMesh(c.n, 10, 2)
		cols, rows := m.Dims()
		if cols != c.cols || rows != c.rows {
			t.Errorf("New(%d): dims %dx%d, want %dx%d", c.n, cols, rows, c.cols, c.rows)
		}
		if m.Nodes() != c.n {
			t.Errorf("New(%d): Nodes() = %d", c.n, m.Nodes())
		}
	}
}

func TestHops(t *testing.T) {
	m := mustMesh(4, 10, 2) // 2x2: 0 1 / 2 3
	cases := []struct{ s, d, hops int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {1, 2, 2}, {3, 0, 2},
	}
	for _, c := range cases {
		if got := m.Hops(c.s, c.d); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.s, c.d, got, c.hops)
		}
	}
}

func TestWormholeLatency(t *testing.T) {
	m := mustMesh(4, 10, 2)
	// 1 hop, 8 flits: hops*hop + flits*flit = 10 + 16 = 26.
	if got := m.Send(0, 1, 8, 1000) - 1000; got != 26 {
		t.Errorf("1-hop latency = %d, want 26", got)
	}
	// 2 hops on an idle path: 20 + 16 = 36.
	if got := m.Send(1, 2, 8, 5000) - 5000; got != 36 {
		t.Errorf("2-hop latency = %d, want 36", got)
	}
}

func TestLocalSendIsFree(t *testing.T) {
	m := mustMesh(4, 10, 2)
	if got := m.Send(2, 2, 8, 777); got != 777 {
		t.Errorf("local send arrived at %d, want 777", got)
	}
	if m.Messages != 0 {
		t.Error("local send should not count as network traffic")
	}
}

func TestLinkContention(t *testing.T) {
	m := mustMesh(4, 10, 2)
	// A link has 4 virtual channels: the first four same-cycle messages
	// proceed; the fifth queues.
	var last uint64
	for i := 0; i < 4; i++ {
		last = m.Send(0, 1, 8, 100)
	}
	if last-100 != 26 {
		t.Errorf("messages within VC budget delayed: latency %d", last-100)
	}
	fifth := m.Send(0, 1, 8, 100)
	if fifth <= last {
		t.Errorf("fifth message (%d) not delayed behind VC-full link (%d)", fifth, last)
	}
	if m.QueueCycles == 0 {
		t.Error("contention not recorded in QueueCycles")
	}
	// Opposite direction is a different link: no queueing.
	m2 := mustMesh(4, 10, 2)
	m2.Send(0, 1, 8, 100)
	c := m2.Send(1, 0, 8, 100)
	if c-100 != 26 {
		t.Errorf("reverse-direction message delayed: latency %d", c-100)
	}
}

func TestArrivalMonotoneProperty(t *testing.T) {
	m := mustMesh(9, 10, 2)
	f := func(s, d uint8, flits uint8, now uint32) bool {
		src, dst := int(s%9), int(d%9)
		fl := int(flits%16) + 1
		arr := m.Send(src, dst, fl, uint64(now))
		if src == dst {
			return arr == uint64(now)
		}
		min := uint64(now) + uint64(m.Hops(src, dst))*10 + uint64(fl)*2
		return arr >= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	m := mustMesh(4, 10, 2)
	m.Send(0, 3, 4, 0)
	m.Send(3, 0, 4, 0)
	if m.Messages != 2 || m.FlitsCarried != 8 {
		t.Errorf("traffic counters wrong: %d msgs, %d flits", m.Messages, m.FlitsCarried)
	}
	if m.AvgLatency() <= 0 {
		t.Error("average latency not recorded")
	}
	m.ResetStats()
	if m.Messages != 0 || m.AvgLatency() != 0 {
		t.Error("ResetStats did not clear counters")
	}
}
