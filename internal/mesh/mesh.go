// Package mesh models the system interconnect: a two-dimensional
// wormhole-routed mesh network (Section 2.4 of the paper) with dimension-
// order (XY) routing. Contention is modelled with per-directed-link
// busy-until times: a message's head flit advances one router per HopCycles
// while its body occupies each traversed link for Flits*FlitCycles, giving
// the classic wormhole latency hops*HopCycles + Flits*FlitCycles when the
// network is idle, and queueing delays when links are busy.
package mesh

import "fmt"

// virtualChannels is the number of virtual channels per directed link.
// Besides matching real wormhole routers, VCs keep a message whose path
// reserves a link at a *future* time (transactions are resolved eagerly)
// from blocking unrelated earlier traffic on that link.
const virtualChannels = 4

// Mesh is the interconnect. Not safe for concurrent use.
type Mesh struct {
	cols, rows int
	hopCycles  uint64
	flitCycles uint64

	// busyUntil[from*n+to] for adjacent routers: one slot per VC.
	busyUntil map[int]*[virtualChannels]uint64

	Messages     uint64
	FlitsCarried uint64
	TotalLatency uint64 // sum of (arrival - injected)
	QueueCycles  uint64 // portion of latency due to contention

	lastQueued uint64 // contention suffered by the most recent Send
}

// New builds a mesh for n nodes arranged in the squarest grid with
// cols >= rows (4 nodes -> 2x2, 1 node -> 1x1, 6 -> 3x2).
func New(n, hopCycles, flitCycles int) (*Mesh, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mesh: invalid node count %d", n)
	}
	if hopCycles < 0 || flitCycles < 0 {
		return nil, fmt.Errorf("mesh: negative link timing (hop %d, flit %d)", hopCycles, flitCycles)
	}
	rows := 1
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	cols := n / rows
	return &Mesh{
		cols:       cols,
		rows:       rows,
		hopCycles:  uint64(hopCycles),
		flitCycles: uint64(flitCycles),
		busyUntil:  make(map[int]*[virtualChannels]uint64),
	}, nil
}

func (m *Mesh) coord(node int) (x, y int) { return node % m.cols, node / m.cols }

// Hops returns the XY-routing hop count between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.coord(src)
	dx, dy := m.coord(dst)
	h := sx - dx
	if h < 0 {
		h = -h
	}
	v := sy - dy
	if v < 0 {
		v = -v
	}
	return h + v
}

// route appends the directed links of the XY route from src to dst.
func (m *Mesh) route(src, dst int, links []int) []int {
	sx, sy := m.coord(src)
	dx, dy := m.coord(dst)
	cur := src
	for sx != dx {
		next := cur + 1
		if dx < sx {
			next = cur - 1
		}
		links = append(links, cur*m.cols*m.rows+next)
		cur = next
		if dx < sx {
			sx--
		} else {
			sx++
		}
	}
	for sy != dy {
		next := cur + m.cols
		if dy < sy {
			next = cur - m.cols
		}
		links = append(links, cur*m.cols*m.rows+next)
		cur = next
		if dy < sy {
			sy--
		} else {
			sy++
		}
	}
	return links
}

// Send injects a message of flits flits from src to dst at cycle now and
// returns the cycle at which the full message has arrived at dst. Sending
// to the local node returns now (no network traversal).
func (m *Mesh) Send(src, dst int, flits int, now uint64) uint64 {
	m.lastQueued = 0
	if src == dst {
		return now
	}
	var buf [8]int
	links := m.route(src, dst, buf[:0])
	occupancy := uint64(flits) * m.flitCycles
	head := now
	var queued uint64
	for _, l := range links {
		vcs := m.busyUntil[l]
		if vcs == nil {
			vcs = new([virtualChannels]uint64)
			m.busyUntil[l] = vcs
		}
		best := 0
		for v := 1; v < virtualChannels; v++ {
			if vcs[v] < vcs[best] {
				best = v
			}
		}
		depart := head
		if b := vcs[best]; b > depart {
			queued += b - depart
			depart = b
		}
		vcs[best] = depart + occupancy
		head = depart + m.hopCycles
	}
	arrival := head + occupancy
	m.Messages++
	m.FlitsCarried += uint64(flits)
	m.TotalLatency += arrival - now
	m.QueueCycles += queued
	m.lastQueued = queued
	return arrival
}

// LastQueued returns the contention (queueing) cycles suffered by the
// most recent Send — per-message detail for event tracing, where the
// cumulative QueueCycles counter only gives interval averages.
func (m *Mesh) LastQueued() uint64 { return m.lastQueued }

// Nodes returns the number of routers in the mesh.
func (m *Mesh) Nodes() int { return m.cols * m.rows }

// Dims returns the grid dimensions (cols, rows).
func (m *Mesh) Dims() (int, int) { return m.cols, m.rows }

// AvgLatency returns the mean end-to-end message latency in cycles.
func (m *Mesh) AvgLatency() float64 {
	if m.Messages == 0 {
		return 0
	}
	return float64(m.TotalLatency) / float64(m.Messages)
}

// BusyLinks returns the number of directed links with at least one virtual
// channel still occupied at cycle now (diagnostics).
func (m *Mesh) BusyLinks(now uint64) int {
	n := 0
	for _, vcs := range m.busyUntil {
		for _, b := range vcs {
			if b > now {
				n++
				break
			}
		}
	}
	return n
}

// ResetStats zeroes the traffic counters (link state is kept).
func (m *Mesh) ResetStats() {
	m.Messages, m.FlitsCarried, m.TotalLatency, m.QueueCycles = 0, 0, 0, 0
}
