package mesh

import "fmt"

// MeshState is the dynamic state of the interconnect: per-link virtual-
// channel busy times plus the traffic counters. Geometry and link timing
// are rebuilt from configuration.
type MeshState struct {
	Cols, Rows   int // captured geometry, verified on restore
	BusyUntil    map[int][virtualChannels]uint64
	Messages     uint64
	FlitsCarried uint64
	TotalLatency uint64
	QueueCycles  uint64
	LastQueued   uint64
}

// Snapshot captures the mesh's dynamic state.
func (m *Mesh) Snapshot() MeshState {
	s := MeshState{
		Cols:         m.cols,
		Rows:         m.rows,
		BusyUntil:    make(map[int][virtualChannels]uint64, len(m.busyUntil)),
		Messages:     m.Messages,
		FlitsCarried: m.FlitsCarried,
		TotalLatency: m.TotalLatency,
		QueueCycles:  m.QueueCycles,
		LastQueued:   m.lastQueued,
	}
	for l, vcs := range m.busyUntil {
		s.BusyUntil[l] = *vcs
	}
	return s
}

// Restore refills the mesh from a snapshot taken on the same geometry.
func (m *Mesh) Restore(s MeshState) error {
	if s.Cols != m.cols || s.Rows != m.rows {
		return fmt.Errorf("mesh: snapshot geometry %dx%d != configured %dx%d",
			s.Cols, s.Rows, m.cols, m.rows)
	}
	clear(m.busyUntil)
	for l, vcs := range s.BusyUntil {
		v := vcs
		m.busyUntil[l] = &v
	}
	m.Messages = s.Messages
	m.FlitsCarried = s.FlitsCarried
	m.TotalLatency = s.TotalLatency
	m.QueueCycles = s.QueueCycles
	m.lastQueued = s.LastQueued
	return nil
}
