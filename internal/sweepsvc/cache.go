package sweepsvc

import (
	"container/list"
	"sync"

	"repro/internal/runner"
)

// Cache is the content-addressed result cache: terminal records keyed by
// the runner spec hash, so a point resubmitted in any later job or sweep
// is served instantly instead of re-simulated. Bounded LRU: eviction only
// costs a re-run (simulations are deterministic), never correctness, and
// the ledger still holds every evicted record for audit.
type Cache struct {
	mu  sync.Mutex
	cap int
	lru *list.List               // front = most recent
	idx map[string]*list.Element // hash -> element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	hash string
	rec  *runner.Record
}

// NewCache returns a cache holding at most capacity records (<=0 means
// unbounded).
func NewCache(capacity int) *Cache {
	return &Cache{cap: capacity, lru: list.New(), idx: make(map[string]*list.Element)}
}

// Get returns the cached record for hash (nil on miss) and refreshes its
// recency.
func (c *Cache) Get(hash string) *runner.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[hash]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).rec
}

// Put stores the record for hash, evicting the least-recently-used entry
// when over capacity. Re-putting an existing hash refreshes it (the
// records are identical by determinism).
func (c *Cache) Put(hash string, rec *runner.Record) {
	if rec == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[hash]; ok {
		el.Value.(*cacheEntry).rec = rec
		c.lru.MoveToFront(el)
		return
	}
	c.idx[hash] = c.lru.PushFront(&cacheEntry{hash: hash, rec: rec})
	if c.cap > 0 && c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.idx, oldest.Value.(*cacheEntry).hash)
		c.evictions++
	}
}

// Len returns the number of cached records.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns cumulative hit/miss/eviction counters.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
