package sweepsvc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/runner"
)

// The in-process chaos harness: a sweepd (Manager+Server over a durable
// ledger), three workers, and a seeded fault-injecting transport between
// them. Mid-sweep one worker is killed while holding a lease and the
// server is killed and restarted over the same ledger. The invariant under
// all of it: the merged results are byte-identical to a serial local
// runner.Run over the same grid, and the ledger records each point's
// terminal state exactly once.

// chaosSpec is a synthetic, deterministic point spec: Value depends only
// on X, so any worker, any attempt, any replica computes the same result.
type chaosSpec struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
	X    int    `json:"x"`
	Fail bool   `json:"fail,omitempty"`
}

type chaosResult struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

// chaosRun is the Point.Run both the serial baseline and the workers use.
// The sleep makes points long enough for kills to land mid-run; it does
// not affect the result bytes.
func chaosRun(sp chaosSpec, delay time.Duration) func(ctx context.Context, att runner.Attempt) (any, error) {
	return func(ctx context.Context, att runner.Attempt) (any, error) {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
		if sp.Fail {
			return nil, fmt.Errorf("chaos: %s is wired to fail", sp.Name)
		}
		return &chaosResult{Name: sp.Name, Value: sp.X*sp.X*7 + 1}, nil
	}
}

func chaosGrid(n int) []JobPoint {
	pts := make([]JobPoint, 0, n)
	for i := 0; i < n; i++ {
		sp := chaosSpec{Kind: "chaos", Name: fmt.Sprintf("pt-%02d", i), X: i, Fail: i == n-1}
		raw, _ := json.Marshal(sp)
		pts = append(pts, JobPoint{ID: sp.Name, Spec: raw})
	}
	return pts
}

func buildChaosPoint(delay time.Duration) func(jp *JobPoint) (runner.Point, error) {
	return func(jp *JobPoint) (runner.Point, error) {
		var sp chaosSpec
		if err := json.Unmarshal(jp.Spec, &sp); err != nil {
			return runner.Point{}, err
		}
		return runner.Point{ID: jp.ID, Spec: json.RawMessage(jp.Spec), Run: chaosRun(sp, delay)}, nil
	}
}

// serialBaseline runs the grid through runner.Run locally and returns the
// canonical merged bytes.
func serialBaseline(t *testing.T, grid []JobPoint, delay time.Duration) []byte {
	t.Helper()
	build := buildChaosPoint(delay)
	pts := make([]runner.Point, 0, len(grid))
	for i := range grid {
		pt, err := build(&grid[i])
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, pt)
	}
	sum, err := runner.Run(context.Background(), pts, runner.Options{
		Workers: 1, PointTimeout: 5 * time.Second, MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMerged(&buf, MergedFromRecords(sum.Records)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// chaosServer is a restartable sweepd: kill() drops every client
// connection and closes the ledger; start() replays the same ledger into a
// fresh Manager on a fresh listener. addr is what the rewriteTransport
// routes to, so clients and workers follow the server across restarts.
type chaosServer struct {
	t      *testing.T
	ledger string
	ttl    time.Duration

	addr atomic.Value // host:port

	mu  sync.Mutex
	m   *Manager
	srv *httptest.Server
}

func (cs *chaosServer) start() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	m, err := NewManager(ManagerOptions{
		LedgerPath: cs.ledger,
		LeaseTTL:   cs.ttl,
		Warn:       func(f string, a ...any) { cs.t.Logf("sweepd: "+f, a...) },
	})
	if err != nil {
		cs.t.Fatalf("chaos server start: %v", err)
	}
	srv := httptest.NewServer(NewServer(m).Handler())
	u, _ := url.Parse(srv.URL)
	cs.m, cs.srv = m, srv
	cs.addr.Store(u.Host)
	cs.t.Logf("chaos: sweepd up at %s", u.Host)
}

func (cs *chaosServer) kill() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.srv.CloseClientConnections()
	cs.srv.Close()
	cs.m.Close()
	cs.t.Logf("chaos: sweepd killed")
}

func (cs *chaosServer) restart() {
	cs.kill()
	cs.start()
}

// expireLoop runs lease expiry against whichever manager is current.
func (cs *chaosServer) expireLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			cs.mu.Lock()
			cs.m.ExpireLeases()
			cs.mu.Unlock()
		}
	}
}

func (cs *chaosServer) snapshotMetrics() Metrics {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.m.MetricsSnapshot()
}

func (cs *chaosServer) done(job string) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	st, err := cs.m.JobStatus(job, false)
	if err != nil {
		return 0
	}
	return st.Done + st.Failed
}

// rewriteTransport routes every request to the chaos server's *current*
// address — the client-side half of "sweepd restarted on us".
type rewriteTransport struct {
	addr *atomic.Value
}

func (rt *rewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	r2 := req.Clone(req.Context())
	r2.URL.Scheme = "http"
	r2.URL.Host = rt.addr.Load().(string)
	r2.Host = ""
	return http.DefaultTransport.RoundTrip(r2)
}

// TestChaosSweep is the chaos harness: seeded RPC faults (delays, drops,
// duplicate deliveries), a worker SIGKILL-equivalent mid-point, and a
// sweepd kill+restart mid-sweep — after which the merged results must be
// byte-identical to the serial baseline, the ledger must hold exactly one
// terminal record per point, and resubmission must be served from cache.
func TestChaosSweep(t *testing.T) {
	const (
		nPoints    = 10
		pointDelay = 40 * time.Millisecond
		leaseTTL   = 1200 * time.Millisecond
	)
	grid := chaosGrid(nPoints)
	want := serialBaseline(t, grid, pointDelay)

	cs := &chaosServer{
		t:      t,
		ledger: filepath.Join(t.TempDir(), "ledger.jsonl"),
		ttl:    leaseTTL,
	}
	cs.start()
	defer cs.kill()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go cs.expireLoop(ctx, 100*time.Millisecond)

	// Every RPC — client and workers alike — crosses the seeded fault
	// transport, then gets routed to the current server address.
	ft := &FaultTransport{
		Base:      &rewriteTransport{addr: &cs.addr},
		DelayProb: 0.3, DelayMax: 10 * time.Millisecond,
		DropProb: 0.1,
		DupProb:  0.1,
		Seed:     0xC0FFEE,
	}
	httpClient := &http.Client{Transport: ft}
	newClient := func() *Client {
		return &Client{Base: "http://sweepd.chaos", HTTP: httpClient,
			OnRetry: func(op string, err error, d time.Duration) {
				t.Logf("client: %s failed (%v); retrying in %v", op, err, d)
			}}
	}

	// Three workers; worker-0 will be killed while holding a lease.
	var wg sync.WaitGroup
	workerCtx := make([]context.CancelFunc, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		wctx, wcancel := context.WithCancel(ctx)
		workerCtx[i] = wcancel
		w := &Worker{
			Client:         newClient(),
			Name:           name,
			Build:          buildChaosPoint(pointDelay),
			HeartbeatEvery: leaseTTL / 4,
			PointTimeout:   5 * time.Second,
			MaxAttempts:    1,
			IdleSleep:      25 * time.Millisecond,
			Log:            func(f string, a ...any) { t.Logf(name+": "+f, a...) },
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(wctx) }()
	}
	defer wg.Wait()
	defer cancel()

	client := newClient()
	if _, err := client.Submit(ctx, &SubmitRequest{JobID: "chaos", Points: grid}); err != nil {
		t.Fatalf("submit: %v", err)
	}

	// The chaos choreography: kill worker-0 once the sweep is moving
	// (leaving its leased point to expire and be re-issued), then kill and
	// restart sweepd once a few points are done.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		time.Sleep(3 * pointDelay)
		workerCtx[0]()
		t.Logf("chaos: worker w0 killed")
		for cs.done("chaos") < nPoints/3 && ctx.Err() == nil {
			time.Sleep(20 * time.Millisecond)
		}
		cs.restart()
	}()

	st, err := client.WaitJob(ctx, "chaos", func(ev Event) {
		if ev.Status == PointPending && ev.Seq > 0 {
			t.Logf("event: %s re-queued (lease expired)", ev.ID)
		} else {
			t.Logf("event: %s %s (worker %s)", ev.ID, ev.Status, ev.Worker)
		}
	})
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	<-chaosDone
	if st.Done != nPoints-1 || st.Failed != 1 {
		t.Fatalf("final status: %+v, want %d done + 1 failed", st, nPoints-1)
	}

	// Invariant 1: merged results are byte-identical to the serial run.
	res, err := client.Results(ctx, "chaos")
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	var got bytes.Buffer
	if err := WriteMerged(&got, res.Points); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("merged results diverge from serial baseline:\n--- serial ---\n%s\n--- chaos ---\n%s", want, got.Bytes())
	}

	// Invariant 2: the ledger holds exactly one terminal record per point,
	// despite duplicate deliveries, the worker kill and the restart.
	terminal := make(map[string]int)
	if err := ReplayLedger(cs.ledger, nil, func(r *LedgerRecord) {
		if r.Type == "done" || r.Type == "failed" {
			terminal[r.Hash]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, jp := range grid {
		if n := terminal[jp.Hash()]; n != 1 {
			t.Errorf("point %s has %d terminal ledger records, want exactly 1", jp.ID, n)
		}
	}
	if len(terminal) != nPoints {
		t.Errorf("ledger has %d terminal hashes, want %d", len(terminal), nPoints)
	}

	// Invariant 3: resubmitting the completed points is served entirely
	// from the content-addressed cache — instantly complete, no re-run.
	okGrid := grid[:nPoints-1] // the wired-to-fail point gets a fresh chance by design
	st2, err := client.Submit(ctx, &SubmitRequest{JobID: "chaos-again", Points: okGrid})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !st2.Complete || st2.Cached != len(okGrid) {
		t.Fatalf("resubmit status: %+v, want instant completion with %d cached", st2, len(okGrid))
	}
}

// TestChaosFaultTransportDeterminism: the same seed draws the same RPC
// fault sequence — the property that makes a chaos failure reproducible.
func TestChaosFaultTransportDeterminism(t *testing.T) {
	decisions := func(seed uint64) []string {
		ft := &FaultTransport{DelayProb: 0.3, DropProb: 0.2, DupProb: 0.2, Seed: seed}
		var out []string
		for i := 0; i < 64; i++ {
			d, drop, dup := ft.decide()
			out = append(out, fmt.Sprintf("%v/%v/%v", d, drop, dup))
		}
		return out
	}
	a, b := decisions(7), decisions(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %s vs %s", i, a[i], b[i])
		}
	}
	c := decisions(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds drew identical fault sequences")
	}
}

// --- Checkpoint takeover chaos: kill a worker mid-point, resume elsewhere ---

// ckChaosSpec is a synthetic long-running "simulation": Cycles steps of a
// deterministic accumulator, checkpointed every ckChaosInterval cycles
// when the runner hands the point a checkpoint path. The final value
// depends only on the cycle count, so a run resumed from any capture is
// byte-identical to an uninterrupted one.
type ckChaosSpec struct {
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Cycles uint64 `json:"cycles"`
}

const ckChaosInterval = 80 // cycles between captures

// ckChaosTracker observes each run attempt: the cycle it started at
// (0 = from scratch, >0 = resumed from a capture) and the furthest cycle
// any attempt reached before dying.
type ckChaosTracker struct {
	mu       sync.Mutex
	starts   []uint64
	maxCycle uint64
}

func (tr *ckChaosTracker) start(c uint64) {
	tr.mu.Lock()
	tr.starts = append(tr.starts, c)
	tr.mu.Unlock()
}

func (tr *ckChaosTracker) reach(c uint64) {
	tr.mu.Lock()
	if c > tr.maxCycle {
		tr.maxCycle = c
	}
	tr.mu.Unlock()
}

func (tr *ckChaosTracker) snapshot() ([]uint64, uint64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]uint64(nil), tr.starts...), tr.maxCycle
}

// ckChaosRun steps the accumulator, capturing a checkpoint every
// ckChaosInterval cycles and resuming from one when present — the same
// contract core.RestoreAndRun honors for real simulations, scaled down so
// the takeover choreography runs in test time.
func ckChaosRun(sp ckChaosSpec, stepDelay time.Duration, tr *ckChaosTracker) func(ctx context.Context, att runner.Attempt) (any, error) {
	return func(ctx context.Context, att runner.Attempt) (any, error) {
		var cycle, acc uint64
		path := ""
		if att.CheckpointPath != "" {
			path = att.CheckpointPath + ".state.ckpt"
			if meta, payload, err := checkpoint.Read(path); err == nil && meta.SpecHash == sp.Name && len(payload) == 8 {
				cycle = meta.Cycle
				acc = binary.LittleEndian.Uint64(payload)
			}
		}
		if tr != nil {
			tr.start(cycle)
		}
		for ; cycle < sp.Cycles; cycle++ {
			acc = acc*6364136223846793005 + 1442695040888963407
			if stepDelay > 0 {
				time.Sleep(stepDelay)
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if tr != nil {
				tr.reach(cycle + 1)
			}
			if path != "" && (cycle+1)%ckChaosInterval == 0 {
				var payload [8]byte
				binary.LittleEndian.PutUint64(payload[:], acc)
				if err := checkpoint.Write(path, checkpoint.Meta{SpecHash: sp.Name, Cycle: cycle + 1}, payload[:]); err != nil {
					return nil, err
				}
			}
		}
		return &chaosResult{Name: sp.Name, Value: int(acc & 0x7fffffff)}, nil
	}
}

func buildCkChaosPoint(stepDelay time.Duration, tr *ckChaosTracker) func(jp *JobPoint) (runner.Point, error) {
	return func(jp *JobPoint) (runner.Point, error) {
		var sp ckChaosSpec
		if err := json.Unmarshal(jp.Spec, &sp); err != nil {
			return runner.Point{}, err
		}
		return runner.Point{ID: jp.ID, Spec: json.RawMessage(jp.Spec), Run: ckChaosRun(sp, stepDelay, tr)}, nil
	}
}

// TestChaosCheckpointTakeover is the kill-mid-point chaos case for the
// preemptible-sweep tentpole: worker w0 runs a long point, shipping its
// checkpoints with every heartbeat; w0 is killed (SIGKILL-equivalent: its
// context dies, nothing is reported) mid-run; the lease expires and a
// fresh worker w1 — with its own empty checkpoint directory — takes the
// point over. The invariants:
//
//  1. w1 resumes from a shipped capture (start cycle > 0, on an interval
//     boundary), not from scratch;
//  2. the ledger records the takeover as a durable "resume" record whose
//     FromCycle matches the observed resume point;
//  3. the re-simulated cycles (kill point minus resume point) are bounded
//     by the capture cadence, not the length of the run;
//  4. the merged result is byte-identical to a serial local run that never
//     checkpointed at all.
func TestChaosCheckpointTakeover(t *testing.T) {
	const (
		cycles    = 1000
		stepDelay = 2 * time.Millisecond
		leaseTTL  = 600 * time.Millisecond
		heartbeat = 100 * time.Millisecond
	)
	sp := ckChaosSpec{Kind: "ck-chaos", Name: "ck-pt", Cycles: cycles}
	raw, _ := json.Marshal(sp)
	grid := []JobPoint{{ID: sp.Name, Spec: raw}}

	// Serial baseline: same spec, no checkpoint dir, no tracker.
	basePt, err := buildCkChaosPoint(0, nil)(&grid[0])
	if err != nil {
		t.Fatal(err)
	}
	baseSum, err := runner.Run(context.Background(), []runner.Point{basePt}, runner.Options{
		Workers: 1, PointTimeout: 30 * time.Second, MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteMerged(&want, MergedFromRecords(baseSum.Records)); err != nil {
		t.Fatal(err)
	}

	cs := &chaosServer{
		t:      t,
		ledger: filepath.Join(t.TempDir(), "ledger.jsonl"),
		ttl:    leaseTTL,
	}
	cs.start()
	defer cs.kill()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go cs.expireLoop(ctx, 50*time.Millisecond)

	httpClient := &http.Client{Transport: &rewriteTransport{addr: &cs.addr}}
	newWorker := func(name string, tr *ckChaosTracker) *Worker {
		return &Worker{
			Client:         &Client{Base: "http://sweepd.chaos", HTTP: httpClient},
			Name:           name,
			Build:          buildCkChaosPoint(stepDelay, tr),
			HeartbeatEvery: heartbeat,
			PointTimeout:   30 * time.Second,
			MaxAttempts:    1,
			IdleSleep:      25 * time.Millisecond,
			CheckpointDir:  filepath.Join(t.TempDir(), name+"-ckpts"),
			Log:            func(f string, a ...any) { t.Logf(name+": "+f, a...) },
		}
	}

	client := &Client{Base: "http://sweepd.chaos", HTTP: httpClient}
	if _, err := client.Submit(ctx, &SubmitRequest{JobID: "ck-chaos", Points: grid}); err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Phase 1: w0 runs the point alone until at least one capture has been
	// shipped to sweepd and the run is well past it, then dies.
	tr0 := &ckChaosTracker{}
	w0ctx, w0kill := context.WithCancel(ctx)
	var wg0 sync.WaitGroup
	wg0.Add(1)
	go func() { defer wg0.Done(); newWorker("w0", tr0).Run(w0ctx) }()
	for ctx.Err() == nil {
		_, reached := tr0.snapshot()
		shipped := cs.snapshotMetrics().CheckpointsStored
		if shipped > 0 && reached > cycles/2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	w0kill()
	wg0.Wait()
	_, killCycle := tr0.snapshot()
	t.Logf("chaos: w0 killed at cycle %d with %d checkpoint files shipped",
		killCycle, cs.snapshotMetrics().CheckpointsStored)
	if killCycle >= cycles {
		t.Fatalf("w0 finished the point (cycle %d) before the kill landed; slow the point down", killCycle)
	}

	// Phase 2: w1, with an empty checkpoint dir of its own, takes over.
	tr1 := &ckChaosTracker{}
	var wg1 sync.WaitGroup
	wg1.Add(1)
	w1ctx, w1stop := context.WithCancel(ctx)
	go func() { defer wg1.Done(); newWorker("w1", tr1).Run(w1ctx) }()
	st, err := client.WaitJob(ctx, "ck-chaos", nil)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	w1stop()
	wg1.Wait()
	if st.Done != 1 {
		t.Fatalf("final status: %+v, want 1 done", st)
	}

	// Invariant 1: the takeover resumed mid-run on a capture boundary.
	starts, _ := tr1.snapshot()
	if len(starts) == 0 {
		t.Fatal("w1 never ran the point")
	}
	resumeCycle := starts[0]
	if resumeCycle == 0 {
		t.Error("takeover restarted from cycle 0 — checkpoints were not migrated")
	}
	if resumeCycle%ckChaosInterval != 0 {
		t.Errorf("resume cycle %d is not a capture boundary (interval %d)", resumeCycle, ckChaosInterval)
	}

	// Invariant 2: the ledger durably recorded resume-not-restart.
	var resumes []LedgerRecord
	if err := ReplayLedger(cs.ledger, nil, func(r *LedgerRecord) {
		if r.Type == "resume" {
			resumes = append(resumes, *r)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(resumes) == 0 {
		t.Fatal("no resume record in the ledger")
	}
	last := resumes[len(resumes)-1]
	if last.Hash != grid[0].Hash() || last.Worker != "w1" {
		t.Errorf("resume record %+v, want hash %s worker w1", last, grid[0].Hash())
	}
	if last.FromCycle != resumeCycle {
		t.Errorf("ledger resume FromCycle %d != observed resume cycle %d", last.FromCycle, resumeCycle)
	}
	if mt := cs.snapshotMetrics(); mt.Takeovers == 0 {
		t.Error("manager Takeovers counter is zero after a takeover")
	}

	// Invariant 3: bounded rework. The freshest shippable capture trails
	// the kill point by at most one interval plus however far the run got
	// between the last heartbeat and the kill — generously, a few beats'
	// worth of cycles. Never anywhere near re-running the whole point.
	cyclesPerBeat := uint64(heartbeat/stepDelay) + 1
	if bound := uint64(ckChaosInterval) + 3*cyclesPerBeat; killCycle-resumeCycle > bound {
		t.Errorf("takeover re-simulated %d cycles (kill %d, resume %d), want <= %d",
			killCycle-resumeCycle, killCycle, resumeCycle, bound)
	}

	// Invariant 4: byte-identity with the serial, never-checkpointed run.
	res, err := client.Results(ctx, "ck-chaos")
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	var got bytes.Buffer
	if err := WriteMerged(&got, res.Points); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("merged results diverge from serial baseline:\n--- serial ---\n%s\n--- chaos ---\n%s", want.Bytes(), got.Bytes())
	}
}
