// Package sweepsvc is the distributed sweep service: a long-running job
// server (cmd/sweepd) that hands a sweep's run points to remote workers
// (cmd/sweepworker) over an HTTP/JSON API, with robustness as the headline
// property.
//
// Every point moves through a pending → leased(worker, deadline) →
// done|failed state machine recorded in an append-only, fsync-per-record
// JSONL ledger (a multi-worker extension of internal/runner's journal):
// sweepd restarts replay the ledger last-record-wins, expired leases are
// re-issued to other workers, duplicate completions are deduped by the
// runner spec hash, and a content-addressed result cache keyed by that
// hash serves repeated points instantly across sweeps. Workers run points
// under internal/runner's supervision (deadlines, panic isolation,
// classified retries with jittered backoff) and report results
// idempotently, so the merged output of a chaotic distributed sweep is
// bit-identical to a serial local run — asserted by the in-repo chaos
// harness (chaos_test.go, scripts/chaos_smoke.sh).
package sweepsvc

import (
	"encoding/json"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// JobPoint is one run point in a job submission. Spec is the point's
// canonical JSON identity — the same bytes cmd/sweep hashes for its local
// journal — so the service's ledger, cache and dedupe all key on the
// identical runner.SpecHash the local path uses.
type JobPoint struct {
	ID        string          `json:"id"`
	Spec      json.RawMessage `json:"spec"`
	MaxCycles uint64          `json:"max_cycles,omitempty"`
	Faulty    bool            `json:"faulty,omitempty"`
}

// Hash returns the point's content address.
func (p *JobPoint) Hash() string { return runner.SpecHash(p.Spec) }

// PointStatus is a point's position in the lease state machine.
type PointStatus string

const (
	PointPending PointStatus = "pending"
	PointLeased  PointStatus = "leased"
	PointDone    PointStatus = "done"
	PointFailed  PointStatus = "failed"
)

// Terminal reports whether the status ends the state machine.
func (s PointStatus) Terminal() bool { return s == PointDone || s == PointFailed }

// PointState is the externally visible state of one point.
type PointState struct {
	ID       string      `json:"id"`
	Hash     string      `json:"hash"`
	Status   PointStatus `json:"status"`
	Worker   string      `json:"worker,omitempty"`   // current/last lease holder
	Leases   int         `json:"leases,omitempty"`   // leases issued (re-issues included)
	Cached   bool        `json:"cached,omitempty"`   // served from the result cache
	Class    string      `json:"class,omitempty"`    // failure classification (failed)
	Error    string      `json:"error,omitempty"`    // failure message (failed)
	Attempts int         `json:"attempts,omitempty"` // worker-side attempts (done/failed)
}

// SubmitRequest submits a grid of points as one job. JobID names the job;
// empty lets the server assign one. Points sharing a spec hash with prior
// work (this job, other jobs, or earlier sweeps replayed from the ledger)
// join that work instead of duplicating it. Submit is idempotent: repeating
// a named job's identical grid (a retried or duplicated RPC) returns the
// job's current status rather than an error.
type SubmitRequest struct {
	JobID  string     `json:"job_id,omitempty"`
	Points []JobPoint `json:"points"`

	// Trace is the submitting client's trace context: the job's spans on
	// every process (sweepd lease/expiry/takeover, worker runs) attach
	// under it, so one sweep stitches into one tree. Absent on old
	// clients; sweepd then roots a fresh trace.
	Trace *obs.SpanContext `json:"trace,omitempty"`
	// Provenance identifies the submitting client (binary, host, flags);
	// recorded on the ledger's point registrations.
	Provenance *obs.Provenance `json:"provenance,omitempty"`
}

// JobStatus summarizes a job.
type JobStatus struct {
	JobID    string       `json:"job_id"`
	Total    int          `json:"total"`
	Pending  int          `json:"pending"`
	Leased   int          `json:"leased"`
	Done     int          `json:"done"`
	Failed   int          `json:"failed"`
	Cached   int          `json:"cached"` // of Done, served from the result cache
	Complete bool         `json:"complete"`
	Points   []PointState `json:"points,omitempty"`
}

// Event is one per-point transition, streamed to job watchers. Seq orders
// events within one sweepd process; after a sweepd restart the log is
// rebuilt from ledger replay, so watchers reconcile by (hash, status), not
// by seq alone.
type Event struct {
	Seq    int         `json:"seq"`
	JobID  string      `json:"job_id"`
	ID     string      `json:"id"`
	Hash   string      `json:"hash"`
	Status PointStatus `json:"status"`
	Worker string      `json:"worker,omitempty"`
	Cached bool        `json:"cached,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// LeaseRequest asks for one point to run. Lease is idempotent per worker:
// a worker that already holds a live lease (a retried request whose first
// send actually landed) gets that same lease back.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries the leased point, or no point plus a poll hint
// when nothing is pending.
//
// Checkpoints, when present, are the point's latest mid-run checkpoint
// files (basename → verbatim file bytes) shipped by the previous lease
// holder's heartbeats before it died. The new worker installs them under
// its own checkpoint directory so the run resumes from CheckpointCycle
// instead of restarting at cycle zero — preempted points migrate between
// workers mid-run.
type LeaseResponse struct {
	Point           *JobPoint         `json:"point,omitempty"`
	DeadlineUnix    int64             `json:"deadline_unix_ms,omitempty"`
	RetryAfterMS    int64             `json:"retry_after_ms,omitempty"`
	Checkpoints     map[string][]byte `json:"checkpoints,omitempty"`
	CheckpointCycle uint64            `json:"checkpoint_cycle,omitempty"`

	// Trace is the lease span's context: the worker parents its run span
	// (and the run's heartbeat/checkpoint-ship children) under it, which
	// is what makes the job's span tree connect across processes.
	Trace *obs.SpanContext `json:"trace,omitempty"`
}

// RenewRequest is a worker heartbeat: it extends the lease on hash and
// piggybacks the worker's latest self-monitoring sample for the server's
// /metrics page.
//
// Checkpoints carries the point's checkpoint files whose capture cycle
// advanced since the last successful renewal (basename → verbatim file
// bytes). sweepd validates and retains the newest set in memory; if this
// worker's lease later expires, the next lease holder receives them and
// resumes mid-run.
type RenewRequest struct {
	Worker      string                `json:"worker"`
	Hash        string                `json:"hash"`
	Self        *telemetry.SelfSample `json:"self,omitempty"`
	Checkpoints map[string][]byte     `json:"checkpoints,omitempty"`
}

// RenewResponse returns the extended deadline.
type RenewResponse struct {
	DeadlineUnix int64 `json:"deadline_unix_ms"`
}

// ReportRequest reports a point's terminal record. Reports are idempotent
// by hash: the first terminal record wins, duplicates are acknowledged and
// discarded (simulations are deterministic, so duplicates are identical).
type ReportRequest struct {
	Worker string         `json:"worker"`
	Hash   string         `json:"hash"`
	Record *runner.Record `json:"record"`

	// Trace is the worker's run-span context, so sweepd's report span
	// attaches under the run that produced the record.
	Trace *obs.SpanContext `json:"trace,omitempty"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate"`
}

// MergedPoint is one point of a job's merged results: the canonical output
// the chaos harness compares bit-for-bit against a serial local run. The
// Result bytes are the runner.Record's marshaled result, verbatim.
//
// Provenance rides the /results API response (which binary/worker/trace
// produced each point) but is stripped — like JobID — from the canonical
// merged bytes WriteMerged emits, because those must stay byte-identical
// between a serial local run and a chaotic distributed one.
type MergedPoint struct {
	ID     string          `json:"id"`
	Hash   string          `json:"hash"`
	Status PointStatus     `json:"status"`
	Result json.RawMessage `json:"result,omitempty"`

	Provenance *obs.Provenance `json:"provenance,omitempty"`
}

// MergedResults is a job's merged output, points sorted by ID.
type MergedResults struct {
	JobID  string        `json:"job_id,omitempty"`
	Points []MergedPoint `json:"points"`
}

// MergedFromRecords maps local runner records onto canonical merged
// points — the local half of the "serial local run == distributed run"
// byte-identity the chaos harness asserts.
func MergedFromRecords(recs []*runner.Record) []MergedPoint {
	pts := make([]MergedPoint, 0, len(recs))
	for _, rec := range recs {
		mp := MergedPoint{ID: rec.ID, Hash: rec.SpecHash, Status: PointPending}
		switch rec.Status {
		case runner.StatusOK, runner.StatusRecovered:
			mp.Status = PointDone
		case runner.StatusFailed:
			mp.Status = PointFailed
		}
		mp.Result = rec.Result
		mp.Provenance = rec.Provenance
		pts = append(pts, mp)
	}
	return pts
}
