package sweepsvc

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/obs"
	"repro/internal/runner"
)

// LedgerRecord is one line of the sweep-service ledger: the multi-worker
// extension of internal/runner's journal. Where the journal records only
// terminal outcomes, the ledger also records point registration and lease
// issuance, so a restarted sweepd can rebuild the whole pending → leased →
// done|failed state machine by last-record-wins replay.
//
// Record types:
//
//   - "point":  a point was registered (Job, ID, Hash, Spec, MaxCycles, Faulty)
//   - "lease":  a lease was issued or re-issued (Hash, Worker, DeadlineUnix)
//   - "resume": a lease was issued WITH shipped mid-run checkpoints — the
//     new worker resumes the point from FromCycle instead of restarting
//     (Hash, Worker, FromCycle). Always paired with a "lease" record.
//   - "done":   a point completed (Hash, Worker, Record)
//   - "failed": a point failed terminally on its worker (Hash, Worker, Record)
//
// Lease renewals are deliberately NOT persisted: heartbeats would grow the
// ledger without bound, and the worst a restart can do without them is
// re-issue a still-running point — which the idempotent completion path
// dedupes. Execution is at-least-once; recording is exactly-once. The
// checkpoint images themselves are likewise NOT persisted (they arrive on
// every heartbeat and would grow the ledger without bound); only the
// "resume" takeover fact is durable, so the chaos harness can assert
// resume-not-restart from the ledger alone.
type LedgerRecord struct {
	Type   string `json:"type"`
	Job    string `json:"job,omitempty"`
	ID     string `json:"id,omitempty"`
	Hash   string `json:"hash"`
	Worker string `json:"worker,omitempty"`

	// Lease fields.
	DeadlineUnix int64 `json:"deadline_unix_ms,omitempty"`

	// Resume fields: the capture cycle the takeover resumes from.
	FromCycle uint64 `json:"from_cycle,omitempty"`

	// Point registration fields.
	Spec      json.RawMessage `json:"spec,omitempty"`
	MaxCycles uint64          `json:"max_cycles,omitempty"`
	Faulty    bool            `json:"faulty,omitempty"`

	// Terminal fields.
	Record *runner.Record `json:"record,omitempty"`

	// Observability fields, on "point" records: the job's trace context
	// (so a restarted sweepd keeps new leases linked to the original
	// trace) and the submitting client's provenance. Appended last —
	// tooling greps for adjacent `"type":...,"hash":...` on terminal
	// records, so field order above must not shift.
	Trace      *obs.SpanContext `json:"trace,omitempty"`
	Provenance *obs.Provenance  `json:"provenance,omitempty"`
}

// Ledger is the append-only, fsync-per-record JSONL file behind the sweep
// service. Safe for concurrent Append.
type Ledger struct {
	mu sync.Mutex
	f  *os.File
}

// OpenLedger opens (creating if needed) the ledger at path for appending.
// Re-opening the same path across sweepd restarts is the recovery
// mechanism: Replay rebuilds the state machine from the records in place.
func OpenLedger(path string) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("sweepsvc: ledger: %w", err)
	}
	return &Ledger{f: f}, nil
}

// Append writes one record and syncs it to disk before returning, so a
// machine crash loses at most the record being written — which replay then
// skips as a torn tail.
func (l *Ledger) Append(r *LedgerRecord) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sweepsvc: ledger: %w", err)
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(b); err != nil {
		return fmt.Errorf("sweepsvc: ledger: %w", err)
	}
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReplayLedger streams the records at path into apply in append order. A
// missing file is an empty ledger. Torn or corrupt lines are skipped with
// a warning (runner.ScanJSONL semantics): a crash mid-append must never
// make the ledger unreadable.
func ReplayLedger(path string, warn func(format string, args ...any), apply func(*LedgerRecord)) error {
	err := runner.ScanJSONL(path, warn, func(line []byte) bool {
		var r LedgerRecord
		if err := json.Unmarshal(line, &r); err != nil || r.Type == "" || r.Hash == "" {
			return false
		}
		apply(&r)
		return true
	})
	if err != nil {
		return fmt.Errorf("sweepsvc: ledger: %w", err)
	}
	return nil
}
