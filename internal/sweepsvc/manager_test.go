package sweepsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

// fakeClock is a deterministic manual clock for lease tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func specOf(id string, x int) json.RawMessage {
	b, _ := json.Marshal(map[string]any{"name": id, "x": x})
	return b
}

func okRecord(id, hash string, result any) *runner.Record {
	b, _ := json.Marshal(result)
	return &runner.Record{ID: id, SpecHash: hash, Status: runner.StatusOK, Attempts: 1, Result: b}
}

func newTestManager(t *testing.T, clock *fakeClock, ledger string) *Manager {
	t.Helper()
	m, err := NewManager(ManagerOptions{
		LedgerPath: ledger,
		LeaseTTL:   10 * time.Second,
		Now:        clock.Now,
		Warn:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func submitGrid(t *testing.T, m *Manager, job string, n int) *JobStatus {
	t.Helper()
	req := &SubmitRequest{JobID: job}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("p%d", i)
		req.Points = append(req.Points, JobPoint{ID: id, Spec: specOf(id, i)})
	}
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestLeaseLifecycle is the table-driven state-machine test: each case
// drives pending → leased → (renew | expire | report) under a manual
// clock and asserts who ends up owning the point.
func TestLeaseLifecycle(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, m *Manager, clock *fakeClock, hash string)
	}{
		{
			// A heartbeating worker keeps its lease past the original TTL.
			name: "renew-extends",
			run: func(t *testing.T, m *Manager, clock *fakeClock, hash string) {
				clock.Advance(8 * time.Second)
				if _, err := m.Renew("w1", hash, nil); err != nil {
					t.Fatalf("renew: %v", err)
				}
				clock.Advance(8 * time.Second) // 16s > TTL, but renewed at 8s
				if n := m.ExpireLeases(); n != 0 {
					t.Fatalf("expired %d leases, want 0 (renewed)", n)
				}
				if lr := m.Lease("w2"); lr.Point != nil {
					t.Fatalf("w2 got %s; point should still be leased to w1", lr.Point.ID)
				}
			},
		},
		{
			// A dead worker's lease expires and the point is re-issued.
			name: "expiry-reissues",
			run: func(t *testing.T, m *Manager, clock *fakeClock, hash string) {
				clock.Advance(11 * time.Second)
				if n := m.ExpireLeases(); n != 1 {
					t.Fatalf("expired %d leases, want 1", n)
				}
				lr := m.Lease("w2")
				if lr.Point == nil || lr.Point.Hash() != hash {
					t.Fatalf("w2 was not re-issued the expired point")
				}
				st, _ := m.JobStatus("j", true)
				if st.Points[0].Leases != 2 {
					t.Fatalf("leases = %d, want 2 (issue + re-issue)", st.Points[0].Leases)
				}
				// The original holder's renewals are now rejected.
				if _, err := m.Renew("w1", hash, nil); !errors.Is(err, ErrLeaseLost) {
					t.Fatalf("w1 renew after re-issue: err = %v, want ErrLeaseLost", err)
				}
			},
		},
		{
			// Lease is idempotent per worker: a retried request (response
			// lost) returns the same point, not a second one.
			name: "lease-idempotent-per-worker",
			run: func(t *testing.T, m *Manager, clock *fakeClock, hash string) {
				lr := m.Lease("w1")
				if lr.Point == nil || lr.Point.Hash() != hash {
					t.Fatalf("repeat lease returned a different point")
				}
			},
		},
		{
			// Renewing after another worker completed the point fails: the
			// state machine is terminal.
			name: "terminal-beats-renew",
			run: func(t *testing.T, m *Manager, clock *fakeClock, hash string) {
				clock.Advance(11 * time.Second)
				m.ExpireLeases()
				m.Lease("w2")
				if _, err := m.Report("w2", hash, okRecord("p0", hash, map[string]int{"v": 1})); err != nil {
					t.Fatal(err)
				}
				if _, err := m.Renew("w1", hash, nil); !errors.Is(err, ErrLeaseLost) {
					t.Fatalf("renew on done point: err = %v, want ErrLeaseLost", err)
				}
			},
		},
		{
			// A slow worker whose lease expired can still deliver the
			// result — deterministic simulations make late reports valid.
			name: "late-report-accepted",
			run: func(t *testing.T, m *Manager, clock *fakeClock, hash string) {
				clock.Advance(11 * time.Second)
				m.ExpireLeases()
				resp, err := m.Report("w1", hash, okRecord("p0", hash, map[string]int{"v": 1}))
				if err != nil || !resp.Accepted || resp.Duplicate {
					t.Fatalf("late report: resp=%+v err=%v, want accepted non-duplicate", resp, err)
				}
				st, _ := m.JobStatus("j", false)
				if st.Done != 1 {
					t.Fatalf("done = %d, want 1", st.Done)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			m := newTestManager(t, clock, "")
			submitGrid(t, m, "j", 1)
			lr := m.Lease("w1")
			if lr.Point == nil {
				t.Fatal("no lease granted")
			}
			tc.run(t, m, clock, lr.Point.Hash())
		})
	}
}

// TestDuplicateCompletionIdempotent: two workers racing an expired lease
// both report; exactly one terminal record lands in the ledger.
func TestDuplicateCompletionIdempotent(t *testing.T) {
	clock := newFakeClock()
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	m := newTestManager(t, clock, ledger)
	submitGrid(t, m, "j", 1)
	lr := m.Lease("w1")
	hash := lr.Point.Hash()
	clock.Advance(11 * time.Second)
	m.ExpireLeases()
	m.Lease("w2")

	rec := okRecord("p0", hash, map[string]int{"v": 42})
	if resp, err := m.Report("w1", hash, rec); err != nil || resp.Duplicate {
		t.Fatalf("first report: %+v, %v", resp, err)
	}
	if resp, err := m.Report("w2", hash, rec); err != nil || !resp.Duplicate {
		t.Fatalf("second report: %+v, %v — want duplicate ack", resp, err)
	}
	// Retried RPC from the winner is also a duplicate.
	if resp, err := m.Report("w1", hash, rec); err != nil || !resp.Duplicate {
		t.Fatalf("retried report: %+v, %v — want duplicate ack", resp, err)
	}

	done := 0
	if err := ReplayLedger(ledger, nil, func(r *LedgerRecord) {
		if r.Type == "done" {
			done++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Fatalf("ledger has %d done records, want exactly 1", done)
	}
	mt := m.MetricsSnapshot()
	if mt.ReportsAccepted != 1 || mt.ReportsDuplicate != 2 {
		t.Fatalf("accepted=%d duplicate=%d, want 1/2", mt.ReportsAccepted, mt.ReportsDuplicate)
	}
}

// TestLedgerReplayRestoresState: a sweepd restart mid-sweep rebuilds
// pending/leased/done exactly, and replayed done records seed the result
// cache so resubmission never re-runs them.
func TestLedgerReplayRestoresState(t *testing.T) {
	clock := newFakeClock()
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	m := newTestManager(t, clock, ledger)
	submitGrid(t, m, "j", 3)
	lr := m.Lease("w1") // p0 leased
	doneHash := m.Lease("w2").Point.Hash()
	if _, err := m.Report("w2", doneHash, okRecord("p1", doneHash, map[string]int{"v": 1})); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh manager over the same ledger, clock unchanged.
	m2 := newTestManager(t, clock, ledger)
	st, err := m2.JobStatus("j", true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pending != 1 || st.Leased != 1 || st.Done != 1 {
		t.Fatalf("after replay: pending=%d leased=%d done=%d, want 1/1/1", st.Pending, st.Leased, st.Done)
	}
	// The in-flight lease survives with its original deadline: the holder
	// can renew...
	if _, err := m2.Renew("w1", lr.Point.Hash(), nil); err != nil {
		t.Fatalf("renew after replay: %v", err)
	}
	// ...and resubmitting the done spec is a cache hit, not a re-run.
	st2, err := m2.Submit(&SubmitRequest{JobID: "j2", Points: []JobPoint{{ID: "p1", Spec: specOf("p1", 1)}}})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Done != 1 || st2.Cached != 1 || !st2.Complete {
		t.Fatalf("resubmit after replay: %+v, want instant cached completion", st2)
	}
}

// TestLedgerTornTail: a crash mid-append leaves a torn trailing record;
// replay warns, skips it, and the affected point simply re-runs. A corrupt
// mid-file record is also skipped, with a distinct warning.
func TestLedgerTornTail(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")
	m := newTestManager(t, clock, ledger)
	submitGrid(t, m, "j", 2)
	h0 := m.Lease("w1").Point.Hash()
	if _, err := m.Report("w1", h0, okRecord("p0", h0, map[string]int{"v": 0})); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Simulate the crash: truncate the final record mid-byte.
	b, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ledger, b[:len(b)-25], 0o666); err != nil {
		t.Fatal(err)
	}

	var warns []string
	m2, err := NewManager(ManagerOptions{
		LedgerPath: ledger,
		Now:        clock.Now,
		Warn:       func(f string, a ...any) { warns = append(warns, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatalf("replay with torn tail must not fail: %v", err)
	}
	defer m2.Close()
	found := false
	for _, w := range warns {
		if strings.Contains(w, "torn trailing record") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no torn-tail warning; warns = %q", warns)
	}
	// The torn record was p0's done: it is pending again, and re-runnable.
	st, err := m2.JobStatus("j", false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 0 || st.Pending != 2 && st.Pending+st.Leased != 2 {
		t.Fatalf("after torn-tail replay: %+v, want both points runnable", st)
	}

	// Mid-file corruption: damage an early line, keep valid lines after.
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	lines[0] = `{"broken`
	if err := os.WriteFile(ledger, []byte(strings.Join(lines, "\n")+"\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	warns = nil
	m3, err := NewManager(ManagerOptions{
		LedgerPath: ledger,
		Now:        clock.Now,
		Warn:       func(f string, a ...any) { warns = append(warns, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatalf("replay with mid-file corruption must not fail: %v", err)
	}
	defer m3.Close()
	found = false
	for _, w := range warns {
		if strings.Contains(w, "mid-file corruption") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no mid-file corruption warning; warns = %q", warns)
	}
}

// TestSubmitIdempotent: a duplicated or blindly retried submit RPC of the
// identical grid returns current status; a different grid under the same
// job name is a conflict.
func TestSubmitIdempotent(t *testing.T) {
	clock := newFakeClock()
	m := newTestManager(t, clock, "")
	submitGrid(t, m, "j", 2)
	st, err := m.Submit(&SubmitRequest{JobID: "j", Points: []JobPoint{
		{ID: "p0", Spec: specOf("p0", 0)},
		{ID: "p1", Spec: specOf("p1", 1)},
	}})
	if err != nil {
		t.Fatalf("idempotent resubmit: %v", err)
	}
	if st.Total != 2 || st.Pending != 2 {
		t.Fatalf("resubmit status = %+v, want the job's current status", st)
	}
	if _, err := m.Submit(&SubmitRequest{JobID: "j", Points: []JobPoint{
		{ID: "p0", Spec: specOf("p0", 99)},
	}}); err == nil {
		t.Fatal("different grid under same job name must conflict")
	}
	mt := m.MetricsSnapshot()
	if mt.Jobs != 1 || mt.PointsRegistered != 2 {
		t.Fatalf("jobs=%d points=%d, want 1/2 (no double registration)", mt.Jobs, mt.PointsRegistered)
	}
}

// TestFailedSpecRetriedOnResubmit: failed is terminal within a job, but a
// fresh submission of the same spec gets a fresh chance.
func TestFailedSpecRetriedOnResubmit(t *testing.T) {
	clock := newFakeClock()
	m := newTestManager(t, clock, "")
	submitGrid(t, m, "j", 1)
	h := m.Lease("w1").Point.Hash()
	fail := &runner.Record{ID: "p0", SpecHash: h, Status: runner.StatusFailed, Attempts: 3, Class: runner.ClassPanic, Error: "boom"}
	if _, err := m.Report("w1", h, fail); err != nil {
		t.Fatal(err)
	}
	st, _ := m.JobStatus("j", false)
	if st.Failed != 1 || !st.Complete {
		t.Fatalf("job after failure: %+v, want complete with 1 failed", st)
	}
	st2, err := m.Submit(&SubmitRequest{JobID: "j2", Points: []JobPoint{{ID: "p0", Spec: specOf("p0", 0)}}})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Pending != 1 {
		t.Fatalf("resubmitted failed spec: %+v, want pending (fresh chance)", st2)
	}
}
