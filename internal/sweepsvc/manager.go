package sweepsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/runner"
)

// ErrLeaseLost is returned by Renew when the caller no longer holds the
// lease (it expired and was re-issued, or the point reached a terminal
// state through another worker).
var ErrLeaseLost = errors.New("sweepsvc: lease lost")

// DefaultLeaseTTL is the lease deadline horizon granted on lease and on
// every renewal. Workers heartbeat at a fraction of this; a worker that
// misses a full TTL of heartbeats is presumed dead and its point is
// re-issued.
const DefaultLeaseTTL = 30 * time.Second

// pointState is the authoritative per-hash state. A hash is global: jobs
// submitting the same spec share one state, one execution, one result.
type pointState struct {
	id        string // first-submitted point id (display)
	hash      string
	spec      []byte
	maxCycles uint64
	faulty    bool

	status   PointStatus
	worker   string    // current lease holder (leased) or completer (done/failed)
	deadline time.Time // lease deadline (leased)
	leases   int       // leases issued, re-issues included
	cached   bool      // done was served from the result cache
	record   *runner.Record

	// Latest mid-run checkpoints shipped by heartbeats (basename → file
	// bytes, per-file capture cycle). In-memory only — see the ledger
	// docs for why images aren't persisted. Cleared on terminal state.
	ckpts      map[string][]byte
	ckptCycles map[string]uint64

	// Trace linkage: the submit-span context this point's spans attach
	// under (persisted on the ledger "point" record so a restarted sweepd
	// keeps the linkage), and the current lease's span ID — the parent
	// the lease response advertises to the worker and the anchor for
	// expiry/takeover spans.
	trace     obs.SpanContext
	leaseSpan string
}

// ckptCycle returns the newest capture cycle among the point's stored
// checkpoints (0 when none).
func (p *pointState) ckptCycle() uint64 {
	var max uint64
	for _, c := range p.ckptCycles {
		if c > max {
			max = c
		}
	}
	return max
}

func (p *pointState) state() PointState {
	ps := PointState{
		ID:     p.id,
		Hash:   p.hash,
		Status: p.status,
		Worker: p.worker,
		Leases: p.leases,
		Cached: p.cached,
	}
	if p.record != nil {
		ps.Attempts = p.record.Attempts
		if p.status == PointFailed {
			ps.Class = string(p.record.Class)
			ps.Error = p.record.Error
		}
	}
	return ps
}

// jobState tracks one submitted grid: its (id, hash) members in submission
// order and its event log.
type jobState struct {
	id     string
	points []jobMember
	events []Event
	trace  obs.SpanContext // the job's submit-span context
}

type jobMember struct {
	id   string
	hash string
}

// sameMembers reports whether a submitted grid matches a job's existing
// membership (same ids, same hashes, same order) — the test for treating
// a repeated submit as an idempotent retry.
func sameMembers(members []jobMember, points []JobPoint) bool {
	if len(members) != len(points) {
		return false
	}
	for i := range points {
		if members[i].id != points[i].ID || members[i].hash != points[i].Hash() {
			return false
		}
	}
	return true
}

// Metrics are the manager's cumulative robustness counters, exposed on
// sweepd's /metrics page.
type Metrics struct {
	Jobs             uint64
	PointsRegistered uint64
	LeasesIssued     uint64
	LeasesRenewed    uint64
	LeasesExpired    uint64
	ReportsAccepted  uint64
	ReportsDuplicate uint64
	CacheHits        uint64
	CacheMisses      uint64
	CacheEvictions   uint64
	ReplayWarnings   uint64
	LedgerErrors     uint64

	// Checkpoint migration counters.
	Takeovers         uint64 // leases granted with shipped checkpoints (resume, not restart)
	CheckpointsStored uint64 // checkpoint files accepted from heartbeats
	CheckpointBytes   uint64 // cumulative bytes of accepted checkpoint files
	CheckpointRejects uint64 // shipped files rejected (corrupt, stale, or lease lost)
}

// Manager is the sweep service's brain: the pending → leased → done|failed
// state machine over every known point, durably backed by the Ledger and
// fronted by the result cache. All methods are safe for concurrent use.
type Manager struct {
	mu     sync.Mutex
	now    func() time.Time
	ttl    time.Duration
	ledger *Ledger
	cache  *Cache
	warn   func(format string, args ...any)
	log    *slog.Logger // nil = no structured logs
	spans  *obs.SpanLog // nil-safe: tracing off still propagates contexts

	points  map[string]*pointState // by hash
	pending []string               // FIFO of pending hashes
	jobs    map[string]*jobState
	jobSeq  int
	metrics Metrics

	change chan struct{} // closed+replaced on every transition (broadcast)
}

// ManagerOptions configures NewManager.
type ManagerOptions struct {
	// LedgerPath is the durable ledger file; replayed on open. Empty runs
	// the manager in-memory only (tests).
	LedgerPath string
	// LeaseTTL is the lease deadline horizon (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// CacheCapacity bounds the result cache (<=0 = unbounded).
	CacheCapacity int
	// Now overrides the clock (tests); nil = time.Now.
	Now func() time.Time
	// Warn observes replay warnings and ledger append failures (nil =
	// dropped).
	Warn func(format string, args ...any)
	// Logger, when non-nil, emits structured state-transition lines with
	// the stable obs keys (job, spec_hash, worker, lease).
	Logger *slog.Logger
	// Spans, when non-nil, records the server-side half of every job's
	// span tree (submit, lease, expiry, takeover, report, merge) to an
	// append-only span log. Timestamps come from the manager clock, so
	// fake-clock tests produce deterministic span times.
	Spans *obs.SpanLog
}

// NewManager opens (and replays) the ledger and returns a ready manager.
func NewManager(opt ManagerOptions) (*Manager, error) {
	m := &Manager{
		now:    opt.Now,
		ttl:    opt.LeaseTTL,
		cache:  NewCache(opt.CacheCapacity),
		warn:   opt.Warn,
		log:    opt.Logger,
		spans:  opt.Spans,
		points: make(map[string]*pointState),
		jobs:   make(map[string]*jobState),
		change: make(chan struct{}),
	}
	if m.now == nil {
		m.now = time.Now
	}
	if m.ttl <= 0 {
		m.ttl = DefaultLeaseTTL
	}
	if m.warn == nil {
		m.warn = func(string, ...any) {}
	}
	if opt.LedgerPath != "" {
		warn := func(format string, args ...any) {
			m.metrics.ReplayWarnings++
			m.warn(format, args...)
		}
		if err := ReplayLedger(opt.LedgerPath, warn, m.replay); err != nil {
			return nil, err
		}
		led, err := OpenLedger(opt.LedgerPath)
		if err != nil {
			return nil, err
		}
		m.ledger = led
	}
	return m, nil
}

// Close closes the ledger.
func (m *Manager) Close() error {
	if m.ledger == nil {
		return nil
	}
	return m.ledger.Close()
}

// replay applies one ledger record during recovery (no locking: runs
// before the manager is shared; no re-journaling: the record is already
// durable).
func (m *Manager) replay(r *LedgerRecord) {
	switch r.Type {
	case "point":
		p := m.points[r.Hash]
		if p == nil {
			p = &pointState{id: r.ID, hash: r.Hash, spec: r.Spec, maxCycles: r.MaxCycles, faulty: r.Faulty, status: PointPending}
			if r.Trace != nil {
				// Restore the trace linkage: leases issued after the
				// restart still attach to the original job trace.
				p.trace = *r.Trace
			}
			m.points[r.Hash] = p
			m.pending = append(m.pending, r.Hash)
			m.metrics.PointsRegistered++
		}
		if r.Job != "" {
			j := m.jobs[r.Job]
			if j == nil {
				j = &jobState{id: r.Job}
				if r.Trace != nil {
					j.trace = *r.Trace
				}
				m.jobs[r.Job] = j
				m.jobSeq++
				m.metrics.Jobs++
			}
			j.points = append(j.points, jobMember{id: r.ID, hash: r.Hash})
		}
	case "lease":
		p := m.points[r.Hash]
		if p == nil || p.status.Terminal() {
			return // lease after done: stale record, terminal wins
		}
		if p.status == PointPending {
			m.unqueue(r.Hash)
		}
		p.status = PointLeased
		p.worker = r.Worker
		p.deadline = time.UnixMilli(r.DeadlineUnix)
		p.leases++
	case "resume":
		// Informational: a takeover resumed from shipped checkpoints. The
		// images themselves are not persisted, so replay only restores the
		// counter the chaos harness and /metrics read.
		m.metrics.Takeovers++
	case "done", "failed":
		p := m.points[r.Hash]
		if p == nil || p.status.Terminal() {
			return // duplicate terminal record: first wins
		}
		if p.status == PointPending {
			m.unqueue(r.Hash)
		}
		p.worker = r.Worker
		p.record = r.Record
		p.ckpts, p.ckptCycles = nil, nil
		if r.Type == "done" {
			p.status = PointDone
			m.cache.Put(r.Hash, r.Record)
		} else {
			p.status = PointFailed
		}
	}
}

// unqueue removes hash from the pending queue. Caller holds the lock (or
// is replaying single-threaded).
func (m *Manager) unqueue(hash string) {
	for i, h := range m.pending {
		if h == hash {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return
		}
	}
}

// append writes a ledger record, tolerating a nil ledger (in-memory mode)
// and counting failures (an unwritable ledger degrades durability, not
// availability).
func (m *Manager) append(r *LedgerRecord) {
	if m.ledger == nil {
		return
	}
	if err := m.ledger.Append(r); err != nil {
		m.metrics.LedgerErrors++
		m.warn("ledger append failed: %v", err)
	}
}

// span records an instant span at the manager clock's now under parent,
// returning the new span's context. Nil-safe end to end: with no span
// log configured it still mints IDs, so lease responses always carry a
// usable context for workers that do trace.
func (m *Manager) span(parent obs.SpanContext, name string, attrs map[string]string) obs.SpanContext {
	return m.spans.Instant(parent, name, m.now(), attrs)
}

// broadcast wakes every watcher blocked on a change.
func (m *Manager) broadcast() {
	close(m.change)
	m.change = make(chan struct{})
}

// emit appends a transition event to every job containing hash.
func (m *Manager) emit(p *pointState, errMsg string) {
	for _, j := range m.jobs {
		for _, mem := range j.points {
			if mem.hash == p.hash {
				j.events = append(j.events, Event{
					Seq:    len(j.events),
					JobID:  j.id,
					ID:     mem.id,
					Hash:   p.hash,
					Status: p.status,
					Worker: p.worker,
					Cached: p.cached,
					Error:  errMsg,
				})
				break
			}
		}
	}
	m.broadcast()
}

// Submit registers a grid as a job. Points whose hash already has a
// terminal done record (from this server's lifetime or ledger replay —
// the content-addressed cache) complete instantly; failed hashes get a
// fresh chance (reset to pending); pending/leased hashes are joined, not
// duplicated.
func (m *Manager) Submit(req *SubmitRequest) (*JobStatus, error) {
	if len(req.Points) == 0 {
		return nil, errors.New("sweepsvc: submit: no points")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := req.JobID
	if id == "" {
		id = fmt.Sprintf("job-%d", m.jobSeq+1)
	}
	if j, exists := m.jobs[id]; exists {
		// Submit is idempotent: the client retries on transport faults, so a
		// duplicated submit of the identical grid must return the job's
		// current status, not an error. A *different* grid under the same
		// name is a real conflict.
		if !sameMembers(j.points, req.Points) {
			return nil, fmt.Errorf("sweepsvc: submit: job %q already exists with a different point set", id)
		}
		return m.jobStatusLocked(j, false), nil
	}
	j := &jobState{id: id}
	// Root the job's span tree: under the client's trace context when it
	// sent one, else a fresh trace so server-side spans still correlate.
	parent := obs.SpanContext{}
	if req.Trace != nil {
		parent = *req.Trace
	}
	j.trace = m.span(parent, "submit", map[string]string{obs.KeyJob: id})
	m.jobs[id] = j
	m.jobSeq++
	m.metrics.Jobs++
	if m.log != nil {
		m.log.Info("job submitted", obs.KeyJob, id, "points", len(req.Points), obs.KeyTrace, j.trace.Trace)
	}
	for i := range req.Points {
		jp := &req.Points[i]
		hash := jp.Hash()
		j.points = append(j.points, jobMember{id: jp.ID, hash: hash})
		p := m.points[hash]
		if p == nil {
			p = &pointState{id: jp.ID, hash: hash, spec: jp.Spec, maxCycles: jp.MaxCycles, faulty: jp.Faulty, status: PointPending, trace: j.trace}
			m.points[hash] = p
			m.metrics.PointsRegistered++
			if rec := m.cache.Get(hash); rec != nil {
				// Replay populated the cache but dropped this point's
				// registration (e.g. torn record): still a hit.
				p.status = PointDone
				p.record = rec
				p.cached = true
				m.metrics.CacheHits++
				m.span(j.trace, "cache-hit", map[string]string{obs.KeyPoint: jp.ID, obs.KeySpecHash: hash})
			} else {
				m.metrics.CacheMisses++
				m.pending = append(m.pending, hash)
			}
		} else {
			switch {
			case p.status == PointDone:
				// Content-addressed cache hit: same spec, same result.
				m.cache.Get(hash) // refresh recency
				p.cached = true
				m.metrics.CacheHits++
				m.span(j.trace, "cache-hit", map[string]string{obs.KeyPoint: jp.ID, obs.KeySpecHash: hash})
			case p.status == PointFailed:
				// A new submission re-tries a previously failed spec.
				m.metrics.CacheMisses++
				p.status = PointPending
				p.worker = ""
				p.record = nil
				p.cached = false
				m.pending = append(m.pending, hash)
			default:
				// pending/leased: join the in-flight execution (neither a
				// cache hit nor a miss — the work is shared, not repeated).
			}
		}
		m.append(&LedgerRecord{Type: "point", Job: id, ID: jp.ID, Hash: hash, Spec: jp.Spec, MaxCycles: jp.MaxCycles, Faulty: jp.Faulty, Trace: &p.trace, Provenance: req.Provenance})
		m.emit(p, "")
	}
	return m.jobStatusLocked(j, false), nil
}

// Lease hands the worker one pending point, or nil when none is pending.
// Idempotent per worker: if the worker already holds a live lease (its
// previous request landed but the response was lost), the same lease is
// returned instead of a second point.
func (m *Manager) Lease(worker string) *LeaseResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.expireLocked(now)
	for _, p := range m.points {
		if p.status == PointLeased && p.worker == worker {
			return m.leaseResponse(p)
		}
	}
	if len(m.pending) == 0 {
		return &LeaseResponse{RetryAfterMS: 500}
	}
	hash := m.pending[0]
	m.pending = m.pending[1:]
	p := m.points[hash]
	p.status = PointLeased
	p.worker = worker
	p.deadline = now.Add(m.ttl)
	p.leases++
	m.metrics.LeasesIssued++
	leaseSC := m.span(p.trace, "lease", map[string]string{
		obs.KeyPoint: p.id, obs.KeySpecHash: hash, obs.KeyWorker: worker,
	})
	p.leaseSpan = leaseSC.Span
	if m.log != nil {
		m.log.Info("lease issued", obs.KeyPoint, p.id, obs.KeySpecHash, hash,
			obs.KeyWorker, worker, obs.KeyLease, p.leaseSpan, "leases", p.leases)
	}
	m.append(&LedgerRecord{Type: "lease", Hash: hash, Worker: worker, DeadlineUnix: p.deadline.UnixMilli()})
	if len(p.ckpts) > 0 {
		// The previous holder shipped mid-run checkpoints before its lease
		// lapsed: this grant is a takeover that resumes, not restarts.
		m.metrics.Takeovers++
		m.append(&LedgerRecord{Type: "resume", ID: p.id, Hash: hash, Worker: worker, FromCycle: p.ckptCycle()})
		m.span(leaseSC, "takeover", map[string]string{
			obs.KeyPoint: p.id, obs.KeyWorker: worker,
			obs.KeyCycle: fmt.Sprintf("%d", p.ckptCycle()),
		})
		m.warn("lease on %s (%s) taken over by %s; resuming from cycle %d", p.id, hash, worker, p.ckptCycle())
	}
	m.emit(p, "")
	return m.leaseResponse(p)
}

func (m *Manager) leaseResponse(p *pointState) *LeaseResponse {
	resp := &LeaseResponse{
		Point: &JobPoint{
			ID:        p.id,
			Spec:      append([]byte(nil), p.spec...),
			MaxCycles: p.maxCycles,
			Faulty:    p.faulty,
		},
		DeadlineUnix: p.deadline.UnixMilli(),
	}
	if len(p.ckpts) > 0 {
		resp.Checkpoints = make(map[string][]byte, len(p.ckpts))
		for name, img := range p.ckpts {
			resp.Checkpoints[name] = append([]byte(nil), img...)
		}
		resp.CheckpointCycle = p.ckptCycle()
	}
	if p.trace.Valid() && p.leaseSpan != "" {
		// The worker parents its run span here, connecting its span log
		// to the job's tree.
		resp.Trace = &obs.SpanContext{Trace: p.trace.Trace, Span: p.leaseSpan}
	}
	return resp
}

// Renew extends the worker's lease on hash and retains any mid-run
// checkpoint files the heartbeat shipped. Renewals are in-memory only
// (heartbeats would grow the ledger without bound); after a sweepd restart
// the replayed deadline is the one from lease issuance, which at worst
// re-issues a still-running point — deduped at completion.
//
// Shipped checkpoints are verified (integrity hash, monotone capture
// cycle) before replacing the stored set; corrupt or stale files are
// counted and dropped, never stored — a takeover must only ever see
// checkpoints that will load.
func (m *Manager) Renew(worker, hash string, ckpts map[string][]byte) (*RenewResponse, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(m.now())
	p := m.points[hash]
	if p == nil || p.status != PointLeased || p.worker != worker {
		if len(ckpts) > 0 {
			m.metrics.CheckpointRejects += uint64(len(ckpts))
		}
		return nil, ErrLeaseLost
	}
	for name, img := range ckpts {
		meta, _, err := checkpoint.Decode(img)
		if err != nil {
			m.metrics.CheckpointRejects++
			m.warn("checkpoint %s for %s from %s rejected: %v", name, p.id, worker, err)
			continue
		}
		if p.ckptCycles[name] >= meta.Cycle && p.ckptCycles[name] != 0 {
			// A zombie heartbeat replaying an older capture must not roll
			// the stored state back.
			m.metrics.CheckpointRejects++
			continue
		}
		if p.ckpts == nil {
			p.ckpts = make(map[string][]byte)
			p.ckptCycles = make(map[string]uint64)
		}
		p.ckpts[name] = append([]byte(nil), img...)
		p.ckptCycles[name] = meta.Cycle
		m.metrics.CheckpointsStored++
		m.metrics.CheckpointBytes += uint64(len(img))
	}
	p.deadline = m.now().Add(m.ttl)
	m.metrics.LeasesRenewed++
	return &RenewResponse{DeadlineUnix: p.deadline.UnixMilli()}, nil
}

// Report records a point's terminal record, idempotently: the first
// terminal report for a hash wins and is journaled; duplicates (a second
// worker that raced an expired lease, a retried RPC) are acknowledged and
// dropped. The report is accepted even from a worker whose lease expired —
// the result of a deterministic simulation is the result.
func (m *Manager) Report(worker, hash string, rec *runner.Record) (*ReportResponse, error) {
	return m.ReportTraced(worker, hash, rec, nil)
}

// ReportTraced is Report carrying the worker's run-span context, so the
// server-side report span lands under the run that produced the record
// (the HTTP handler passes ReportRequest.Trace through here).
func (m *Manager) ReportTraced(worker, hash string, rec *runner.Record, tr *obs.SpanContext) (*ReportResponse, error) {
	if rec == nil {
		return nil, errors.New("sweepsvc: report: no record")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.points[hash]
	if p == nil {
		return nil, fmt.Errorf("sweepsvc: report: unknown point %s", hash)
	}
	if p.status.Terminal() {
		m.metrics.ReportsDuplicate++
		return &ReportResponse{Accepted: true, Duplicate: true}, nil
	}
	if p.status == PointPending {
		m.unqueue(hash)
	}
	typ := "failed"
	p.status = PointFailed
	if rec.Status == runner.StatusOK || rec.Status == runner.StatusRecovered {
		typ = "done"
		p.status = PointDone
		m.cache.Put(hash, rec)
	}
	p.worker = worker
	p.record = rec
	// Terminal state: retained checkpoints are dead weight (and a future
	// resubmit of a failed spec must restart clean, not replay a capture
	// from the failed run).
	p.ckpts, p.ckptCycles = nil, nil
	m.metrics.ReportsAccepted++
	m.append(&LedgerRecord{Type: typ, Hash: hash, Worker: worker, Record: rec})
	parent := obs.SpanContext{Trace: p.trace.Trace, Span: p.leaseSpan}
	if tr != nil && tr.Valid() {
		parent = *tr
	}
	m.span(parent, "report", map[string]string{
		obs.KeyPoint: p.id, obs.KeySpecHash: hash, obs.KeyWorker: worker,
		"status": string(p.status),
	})
	if m.log != nil {
		lvl := slog.LevelInfo
		if p.status == PointFailed {
			lvl = slog.LevelError
		}
		m.log.Log(context.Background(), lvl, "report accepted",
			obs.KeyPoint, p.id, obs.KeySpecHash, hash, obs.KeyWorker, worker,
			"status", string(p.status), "error", rec.Error)
	}
	m.emit(p, rec.Error)
	return &ReportResponse{Accepted: true}, nil
}

// ExpireLeases re-queues every lease whose deadline has passed and returns
// how many were re-issued to pending. Called on sweepd's expiry ticker and
// before every lease grant.
func (m *Manager) ExpireLeases() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.expireLocked(m.now())
}

func (m *Manager) expireLocked(now time.Time) int {
	n := 0
	for _, p := range m.points {
		if p.status == PointLeased && now.After(p.deadline) {
			p.status = PointPending
			m.warn("lease on %s (%s) held by %s expired; re-queueing", p.id, p.hash, p.worker)
			if m.log != nil {
				m.log.Warn("lease expired", obs.KeyPoint, p.id, obs.KeySpecHash, p.hash,
					obs.KeyWorker, p.worker, obs.KeyLease, p.leaseSpan)
			}
			m.span(obs.SpanContext{Trace: p.trace.Trace, Span: p.leaseSpan}, "expiry",
				map[string]string{obs.KeyPoint: p.id, obs.KeyWorker: p.worker})
			p.worker = ""
			m.pending = append(m.pending, p.hash)
			m.metrics.LeasesExpired++
			n++
			m.emit(p, "")
		}
	}
	return n
}

// JobStatus returns the job's summary (withPoints includes per-point
// states).
func (m *Manager) JobStatus(id string, withPoints bool) (*JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("sweepsvc: unknown job %q", id)
	}
	return m.jobStatusLocked(j, withPoints), nil
}

func (m *Manager) jobStatusLocked(j *jobState, withPoints bool) *JobStatus {
	st := &JobStatus{JobID: j.id, Total: len(j.points)}
	for _, mem := range j.points {
		p := m.points[mem.hash]
		if p == nil {
			st.Pending++
			continue
		}
		switch p.status {
		case PointPending:
			st.Pending++
		case PointLeased:
			st.Leased++
		case PointDone:
			st.Done++
			if p.cached {
				st.Cached++
			}
		case PointFailed:
			st.Failed++
		}
		if withPoints {
			ps := p.state()
			ps.ID = mem.id
			st.Points = append(st.Points, ps)
		}
	}
	st.Complete = st.Done+st.Failed == st.Total
	return st
}

// Events returns the job's event log from seq on (a copy).
func (m *Manager) Events(id string, from int) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("sweepsvc: unknown job %q", id)
	}
	if from < 0 {
		from = 0
	}
	if from >= len(j.events) {
		return nil, nil
	}
	return append([]Event(nil), j.events[from:]...), nil
}

// WaitChange blocks until the next state transition or ctx ends.
func (m *Manager) WaitChange(ctx context.Context) {
	m.mu.Lock()
	ch := m.change
	m.mu.Unlock()
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

// Merged returns the job's canonical merged results: points sorted by ID,
// result bytes verbatim from the terminal records. This is the byte
// surface the chaos harness compares against a serial local run.
func (m *Manager) Merged(id string) (*MergedResults, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("sweepsvc: unknown job %q", id)
	}
	out := &MergedResults{JobID: j.id}
	for _, mem := range j.points {
		p := m.points[mem.hash]
		mp := MergedPoint{ID: mem.id, Hash: mem.hash, Status: PointPending}
		if p != nil {
			mp.Status = p.status
			if p.record != nil {
				mp.Result = append(json.RawMessage(nil), p.record.Result...)
				// Surface who produced the point on the API response;
				// WriteMerged strips this from the canonical bytes.
				mp.Provenance = p.record.Provenance
			}
		}
		out.Points = append(out.Points, mp)
	}
	sort.Slice(out.Points, func(a, b int) bool { return out.Points[a].ID < out.Points[b].ID })
	m.span(j.trace, "merge", map[string]string{obs.KeyJob: j.id})
	return out, nil
}

// MetricsSnapshot returns the cumulative counters, merging in the cache's.
func (m *Manager) MetricsSnapshot() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := m.metrics
	_, _, ev := m.cache.Stats()
	mt.CacheEvictions = ev
	return mt
}
