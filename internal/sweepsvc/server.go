package sweepsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Server is sweepd's HTTP surface over a Manager. Handler routes:
//
//	POST /api/v1/jobs              submit a point grid
//	GET  /api/v1/jobs/{id}         job status (?points=1 for per-point states)
//	GET  /api/v1/jobs/{id}/events  JSONL event stream (?from=N resumes)
//	GET  /api/v1/jobs/{id}/results merged results (canonical, sorted)
//	POST /api/v1/lease             worker: pull one point
//	POST /api/v1/renew             worker: heartbeat (410 = lease lost)
//	POST /api/v1/report            worker: terminal record (idempotent)
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus page (service + per-worker self metrics)
type Server struct {
	m *Manager

	selfMu sync.Mutex
	selves map[string]*telemetry.SelfSample // latest self-sample per worker
}

// NewServer wraps the manager.
func NewServer(m *Manager) *Server {
	return &Server{m: m, selves: make(map[string]*telemetry.SelfSample)}
}

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("POST /api/v1/lease", s.handleLease)
	mux.HandleFunc("POST /api/v1/renew", s.handleRenew)
	mux.HandleFunc("POST /api/v1/report", s.handleReport)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Live profiling of a long-running sweepd: `go tool pprof
	// http://host:8044/debug/pprof/profile` against the production daemon.
	telemetry.MountPprof(mux)
	return mux
}

// ExpireLoop re-queues expired leases every interval until ctx ends
// (sweepd runs this alongside the HTTP server so dead workers' points are
// re-issued even when no live worker is polling).
func (s *Server) ExpireLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.m.ExpireLeases()
		}
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decode(w, r, &req) {
		return
	}
	st, err := s.m.Submit(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.m.JobStatus(r.PathValue("id"), r.URL.Query().Get("points") != "")
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, st)
}

// handleEvents streams the job's per-point transitions as JSONL, one
// event per line, flushed as they happen; the stream ends once the job is
// complete and fully delivered. ?from=N resumes after a dropped
// connection (seq numbers restart after a sweepd restart — watchers
// reconcile on (hash, status)).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from, _ := strconv.Atoi(r.URL.Query().Get("from"))
	if _, err := s.m.JobStatus(id, false); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, err := s.m.Events(id, from)
		if err != nil {
			return
		}
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		from += len(evs)
		if fl != nil {
			fl.Flush()
		}
		st, err := s.m.JobStatus(id, false)
		if err != nil || st.Complete {
			return
		}
		if len(evs) == 0 {
			s.m.WaitChange(r.Context())
			if r.Context().Err() != nil {
				return
			}
		}
	}
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	res, err := s.m.Merged(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "lease: worker name required")
		return
	}
	writeJSON(w, s.m.Lease(req.Worker))
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Self != nil {
		s.selfMu.Lock()
		s.selves[req.Worker] = req.Self
		s.selfMu.Unlock()
	}
	resp, err := s.m.Renew(req.Worker, req.Hash, req.Checkpoints)
	if err != nil {
		httpError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.m.ReportTraced(req.Worker, req.Hash, req.Record, req.Trace)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, resp)
}

// handleMetrics renders the service counters and, cc-metric-collector
// `self`-collector style, the latest self-monitoring sample from every
// worker that has heartbeat — one fleet, one exposition page.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mt := s.m.MetricsSnapshot()
	var sb strings.Builder
	telemetry.PromBuildInfo(&sb, "sweepd_build_info")
	c := func(name string, v uint64) {
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	c("sweepd_jobs_total", mt.Jobs)
	c("sweepd_points_registered_total", mt.PointsRegistered)
	c("sweepd_leases_issued_total", mt.LeasesIssued)
	c("sweepd_leases_renewed_total", mt.LeasesRenewed)
	c("sweepd_leases_expired_total", mt.LeasesExpired)
	c("sweepd_reports_accepted_total", mt.ReportsAccepted)
	c("sweepd_reports_duplicate_total", mt.ReportsDuplicate)
	c("sweepd_cache_hits_total", mt.CacheHits)
	c("sweepd_cache_misses_total", mt.CacheMisses)
	c("sweepd_cache_evictions_total", mt.CacheEvictions)
	c("sweepd_replay_warnings_total", mt.ReplayWarnings)
	c("sweepd_ledger_errors_total", mt.LedgerErrors)
	c("sweepd_takeovers_total", mt.Takeovers)
	c("sweepd_checkpoints_stored_total", mt.CheckpointsStored)
	c("sweepd_checkpoint_bytes_total", mt.CheckpointBytes)
	c("sweepd_checkpoint_rejects_total", mt.CheckpointRejects)

	s.selfMu.Lock()
	workers := make([]string, 0, len(s.selves))
	for wname := range s.selves {
		workers = append(workers, wname)
	}
	sort.Strings(workers)
	for _, wname := range workers {
		telemetry.PromSelf(&sb, "sweepd_worker_", s.selves[wname], map[string]string{"worker": wname})
	}
	s.selfMu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, sb.String())
}
