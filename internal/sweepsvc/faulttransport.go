package sweepsvc

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/fault"
)

// ErrInjectedDrop is the error a dropped RPC surfaces to the client (which
// then retries it, exactly like a lost connection).
var ErrInjectedDrop = errors.New("sweepsvc: injected RPC drop")

// FaultTransport is a fault-injecting http.RoundTripper for the chaos
// harness: it delays, drops, and duplicates requests, drawing every
// decision from the same seeded splitmix64 stream the machine-level
// injector uses (internal/fault), so a chaos run's RPC fault sequence
// reproduces from its seed.
//
// Drop loses the request before it reaches the server (client sees a
// transport error). DupProb sends the request twice and returns the second
// response — the duplicate-delivery case that flushes out non-idempotent
// handlers. Delay sleeps before forwarding. Requests with bodies are
// buffered so replays are byte-identical.
type FaultTransport struct {
	// Base performs real round trips (nil = http.DefaultTransport).
	Base http.RoundTripper

	// DelayProb delays a request by up to DelayMax (default 50ms).
	DelayProb float64
	DelayMax  time.Duration
	// DropProb loses the request entirely.
	DropProb float64
	// DupProb delivers the request twice.
	DupProb float64

	// Seed seeds the decision stream (0 is mapped to 1).
	Seed uint64

	mu  sync.Mutex
	rng *fault.Stream

	// Injection counters.
	Delays uint64
	Drops  uint64
	Dups   uint64
}

func (t *FaultTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// decide draws the fault decisions for one request under the lock (round
// trips run concurrently; the stream is not).
func (t *FaultTransport) decide() (delay time.Duration, drop, dup bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = fault.NewStream(t.Seed)
	}
	if t.rng.Chance(t.DelayProb) {
		max := t.DelayMax
		if max <= 0 {
			max = 50 * time.Millisecond
		}
		delay = time.Duration(t.rng.Intn(int(max)))
		t.Delays++
	}
	if t.rng.Chance(t.DropProb) {
		drop = true
		t.Drops++
	}
	if t.rng.Chance(t.DupProb) {
		dup = true
		t.Dups++
	}
	return delay, drop, dup
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	delay, drop, dup := t.decide()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if drop {
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, ErrInjectedDrop
	}
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		_ = req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	send := func() (*http.Response, error) {
		r2 := req.Clone(req.Context())
		if body != nil {
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
		}
		return t.base().RoundTrip(r2)
	}
	if dup {
		// First delivery lands; its response is discarded, as if the
		// network ate the reply and the client re-sent.
		if resp, err := send(); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}
	return send()
}
