package sweepsvc

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/runner"
)

// ckptImage builds a valid encoded checkpoint image at capture cycle c,
// the way a heartbeat would ship one.
func ckptImage(t *testing.T, c uint64) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "img.ckpt")
	if err := checkpoint.Write(path, checkpoint.Meta{SpecHash: "spec", Cycle: c}, []byte("state")); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// spansByName indexes the stitched spans, asserting each wanted name
// appears exactly once.
func spansByName(t *testing.T, tree *obs.Tree, names ...string) map[string]obs.Span {
	t.Helper()
	count := map[string]int{}
	out := map[string]obs.Span{}
	for _, sp := range tree.AllSpans() {
		count[sp.Name]++
		out[sp.Name] = sp
	}
	for _, n := range names {
		if count[n] != 1 {
			t.Fatalf("span %q appears %d times, want exactly 1", n, count[n])
		}
	}
	return out
}

// TestTakeoverSpanChain drives the chaos path — lease to w1, shipped
// checkpoint, w1 dies (lease expires), w2 takes over and reports — and
// asserts the span log records the expiry → re-lease → takeover → report
// chain as one connected tree on the original job trace.
func TestTakeoverSpanChain(t *testing.T) {
	dir := t.TempDir()
	spanPath := filepath.Join(dir, "sweepd.spans.jsonl")
	spans, err := obs.OpenSpanLog(spanPath, "sweepd")
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	m, err := NewManager(ManagerOptions{
		LedgerPath: filepath.Join(dir, "ledger.jsonl"),
		LeaseTTL:   10 * time.Second,
		Now:        clock.Now,
		Warn:       t.Logf,
		Spans:      spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Client-side root span, as cmd/sweep -remote mints it.
	rootSC := spans.Emit(obs.SpanContext{}, "job", clock.Now(), clock.Now(), nil)
	req := &SubmitRequest{
		JobID:  "j",
		Trace:  &rootSC,
		Points: []JobPoint{{ID: "p0", Spec: specOf("p0", 0)}},
	}
	if _, err := m.Submit(req); err != nil {
		t.Fatal(err)
	}
	hash := req.Points[0].Hash()

	lease1 := m.Lease("w1")
	if lease1.Point == nil {
		t.Fatal("w1 got no point")
	}
	if lease1.Trace == nil || lease1.Trace.Trace != rootSC.Trace {
		t.Fatalf("lease1.Trace = %+v, want trace %s propagated", lease1.Trace, rootSC.Trace)
	}
	if _, err := m.Renew("w1", hash, map[string][]byte{"p0.state.ckpt": ckptImage(t, 7)}); err != nil {
		t.Fatal(err)
	}

	// w1 is SIGKILLed: no more heartbeats, the lease lapses.
	clock.Advance(11 * time.Second)
	if n := m.ExpireLeases(); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	lease2 := m.Lease("w2")
	if lease2.Point == nil || len(lease2.Checkpoints) == 0 {
		t.Fatal("w2 takeover lease did not carry the shipped checkpoint")
	}
	if lease2.Trace == nil || lease2.Trace.Trace != rootSC.Trace {
		t.Fatalf("takeover lease lost the job trace: %+v", lease2.Trace)
	}
	// w2's run span (normally in the worker's own span log) parents the
	// report back on the server side.
	runSC := spans.Emit(*lease2.Trace, "run", clock.Now(), clock.Now(),
		map[string]string{obs.KeyWorker: "w2"}) // stand-in for the worker log
	if _, err := m.ReportTraced("w2", hash, okRecord("p0", hash, map[string]int{"v": 1}), &runSC); err != nil {
		t.Fatal(err)
	}
	if err := spans.Close(); err != nil {
		t.Fatal(err)
	}

	read, err := obs.ReadSpans(spanPath, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	tree := obs.Stitch(read)
	if len(tree.Traces) != 1 || tree.Traces[0] != rootSC.Trace {
		t.Fatalf("traces = %v, want exactly [%s]", tree.Traces, rootSC.Trace)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "job" {
		t.Fatalf("roots = %d (first %q), want the single job root", len(tree.Roots), tree.Roots[0].Name)
	}

	named := spansByName(t, tree, "job", "submit", "expiry", "takeover", "report")
	// Two lease spans exist (issue + re-issue); the chain below pins which
	// is which through parent links.
	var leaseSpans []obs.Span
	for _, sp := range tree.AllSpans() {
		if sp.Name == "lease" {
			leaseSpans = append(leaseSpans, sp)
		}
		if sp.Trace != rootSC.Trace {
			t.Fatalf("span %s/%s escaped the job trace", sp.Name, sp.ID)
		}
	}
	if len(leaseSpans) != 2 {
		t.Fatalf("got %d lease spans, want 2 (issue + takeover re-issue)", len(leaseSpans))
	}
	if named["expiry"].Parent != leaseSpans[0].ID {
		t.Fatalf("expiry parent = %s, want first lease span %s", named["expiry"].Parent, leaseSpans[0].ID)
	}
	if named["takeover"].Parent != leaseSpans[1].ID {
		t.Fatalf("takeover parent = %s, want takeover lease span %s", named["takeover"].Parent, leaseSpans[1].ID)
	}
	if got := named["takeover"].Attrs[obs.KeyWorker]; got != "w2" {
		t.Fatalf("takeover worker attr = %q, want w2", got)
	}
	if got := named["takeover"].Attrs[obs.KeyCycle]; got != "7" {
		t.Fatalf("takeover cycle attr = %q, want 7 (shipped capture)", got)
	}
	if named["report"].Parent != runSC.Span {
		t.Fatalf("report parent = %s, want the worker run span %s", named["report"].Parent, runSC.Span)
	}
	if named["submit"].Parent != rootSC.Span {
		t.Fatalf("submit parent = %s, want the client job span %s", named["submit"].Parent, rootSC.Span)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("%d orphaned spans; chain must stay connected through the takeover", len(tree.Orphans))
	}
}

// TestProvenanceRoundTrip pushes one provenance record through every
// durable hop — reported record → ledger (sweepd restart replay) → merged
// results API — and asserts the fields survive byte-stable, while the
// canonical merged FILE strips provenance so local/remote byte identity
// holds.
func TestProvenanceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")
	clock := newFakeClock()
	m := newTestManager(t, clock, ledger)

	req := &SubmitRequest{
		JobID:      "j",
		Provenance: obs.Collect("sweep", []string{"-all"}),
		Points:     []JobPoint{{ID: "p0", Spec: specOf("p0", 0)}},
	}
	if _, err := m.Submit(req); err != nil {
		t.Fatal(err)
	}
	hash := req.Points[0].Hash()
	if lr := m.Lease("w1"); lr.Point == nil {
		t.Fatal("no lease")
	}

	prov := obs.Collect("sweepworker", []string{"-name", "w1"})
	prov.SpecHash = hash
	prov.Worker = "w1"
	prov.Trace = "0123456789abcdef"
	want, err := json.Marshal(prov)
	if err != nil {
		t.Fatal(err)
	}

	rec := okRecord("p0", hash, map[string]int{"v": 42})
	rec.Provenance = prov
	if _, err := m.Report("w1", hash, rec); err != nil {
		t.Fatal(err)
	}

	// Hop 1: live merged results carry it.
	res, err := m.Merged("j")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(res.Points[0].Provenance)
	if !bytes.Equal(got, want) {
		t.Fatalf("live merged provenance drifted:\n got %s\nwant %s", got, want)
	}

	// Hop 2: restart sweepd on the same ledger; the replayed record must
	// carry identical bytes.
	m.Close()
	m2 := newTestManager(t, clock, ledger)
	res2, err := m2.Merged("j")
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := json.Marshal(res2.Points[0].Provenance)
	if !bytes.Equal(got2, want) {
		t.Fatalf("replayed provenance drifted:\n got %s\nwant %s", got2, want)
	}
	if res2.Points[0].Provenance.SpecHash != hash || res2.Points[0].Provenance.Worker != "w1" {
		t.Fatalf("replayed provenance lost identity: %+v", res2.Points[0].Provenance)
	}

	// Hop 3: the journal Record form itself (what a local sweep writes) is
	// byte-stable through a marshal/unmarshal cycle.
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back runner.Record
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	got3, _ := json.Marshal(back.Provenance)
	if !bytes.Equal(got3, want) {
		t.Fatalf("journal-form provenance drifted:\n got %s\nwant %s", got3, want)
	}

	// The canonical merged FILE is the byte-identity surface shared by
	// local and remote sweeps: provenance (inherently run-specific) must
	// be stripped from it.
	var buf bytes.Buffer
	if err := WriteMerged(&buf, res2.Points); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "provenance") {
		t.Fatalf("canonical merged output leaked provenance:\n%s", buf.String())
	}
}
