package sweepsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// Worker pulls leased points from sweepd and runs them through
// internal/runner's supervision: per-point deadlines, panic isolation,
// classified failures, capped-backoff retries with jitter. While a point
// runs, a heartbeat goroutine renews the lease (piggybacking the worker's
// self-monitoring sample); a lost lease cancels the in-flight point — its
// spec was re-issued elsewhere — and the terminal record is reported
// idempotently either way.
type Worker struct {
	Client *Client
	Name   string
	// Build turns a leased point's spec into a runnable runner.Point
	// (cmd/sweepworker wires experiments.PointFromSpec).
	Build func(p *JobPoint) (runner.Point, error)
	// HeartbeatEvery is the lease renewal period (0 = DefaultLeaseTTL/4).
	HeartbeatEvery time.Duration
	// PointTimeout / MaxAttempts / RetryBudget configure the supervision
	// pool per point (zero values = runner defaults; RetryBudget 0 means
	// no worker-side retries, matching runner.Options).
	PointTimeout time.Duration
	MaxAttempts  int
	RetryBudget  int
	// IdleSleep is the poll interval when no work is pending (0 = server's
	// RetryAfter hint, then 500ms).
	IdleSleep time.Duration
	// CheckpointDir, when non-empty, makes points preemptible and
	// migratable: runs checkpoint under it (runner.Options.CheckpointDir),
	// heartbeats ship each new capture to sweepd, and a lease that arrives
	// carrying another worker's checkpoints installs them here so the run
	// resumes mid-flight instead of restarting at cycle zero.
	CheckpointDir string
	// Log observes worker progress (nil = silent).
	Log func(format string, args ...any)
	// Logger, when non-nil, emits structured lifecycle lines with the
	// stable obs keys (point, spec_hash, worker, trace).
	Logger *slog.Logger
	// Spans, when non-nil, records the worker-side half of each point's
	// span tree (run + heartbeat/checkpoint-ship children), parented
	// under the lease span the server advertised — the cross-process
	// stitch point. Run spans are written twice under one ID (start
	// marker, then completion) so a SIGKILLed worker still leaves a
	// connected tree.
	Spans *obs.SpanLog
	// Provenance, when non-nil, is specialized per point (spec hash,
	// worker name, trace ID) and stamped on every reported record.
	Provenance *obs.Provenance

	// Self samples the worker's own health; each heartbeat carries the
	// latest sample to sweepd's /metrics page. Points feeds its rate
	// metric automatically.
	Self *telemetry.SelfCollector

	pointsDone atomic.Uint64

	simMu     sync.Mutex
	simTotals map[string]uint64
}

// PointsDone returns the cumulative completed-point counter (the self
// collector's Points function).
func (w *Worker) PointsDone() uint64 { return w.pointsDone.Load() }

// SimCounters returns a copy of the cumulative simulation counters
// (lock-table contention, HTM elision lifecycle) accumulated from this
// worker's completed points — the self collector's SimCounters function,
// so each heartbeat carries them to sweepd's /metrics page. (Checkpoint
// activity rides every SelfSample directly; see telemetry.CollectSelf.)
func (w *Worker) SimCounters() map[string]uint64 {
	w.simMu.Lock()
	defer w.simMu.Unlock()
	out := make(map[string]uint64, len(w.simTotals))
	for k, v := range w.simTotals {
		out[k] = v
	}
	return out
}

// accumulateSim folds a completed point's report counters into the
// worker's cumulative simulation totals. Records whose result payload is
// missing or unparsable are skipped silently — these metrics are
// best-effort observability, never a reason to fail a point.
func (w *Worker) accumulateSim(rec *runner.Record) {
	if len(rec.Result) == 0 {
		return
	}
	var res struct {
		Reports []struct {
			LatchAcquires, LatchContended, LatchHandoffs uint64
			HTMBegins, HTMCommits, HTMFallbacks          uint64
			HTMConflictAborts, HTMCapacityAborts         uint64
			HTMExplicitAborts                            uint64
		}
	}
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return
	}
	w.simMu.Lock()
	defer w.simMu.Unlock()
	if w.simTotals == nil {
		w.simTotals = make(map[string]uint64)
	}
	for _, r := range res.Reports {
		w.simTotals["locktable_acquires_total"] += r.LatchAcquires
		w.simTotals["locktable_contended_acquires_total"] += r.LatchContended
		w.simTotals["locktable_handoffs_total"] += r.LatchHandoffs
		w.simTotals["htm_begins_total"] += r.HTMBegins
		w.simTotals["htm_commits_total"] += r.HTMCommits
		w.simTotals["htm_fallbacks_total"] += r.HTMFallbacks
		w.simTotals["htm_aborts_conflict_total"] += r.HTMConflictAborts
		w.simTotals["htm_aborts_capacity_total"] += r.HTMCapacityAborts
		w.simTotals["htm_aborts_explicit_total"] += r.HTMExplicitAborts
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

// Run leases, executes and reports points until ctx ends. Transport
// failures never kill the worker — every call path retries or re-leases.
func (w *Worker) Run(ctx context.Context) error {
	if w.Build == nil {
		return errors.New("sweepsvc: worker: Build is required")
	}
	if w.Name == "" {
		return errors.New("sweepsvc: worker: Name is required")
	}
	for ctx.Err() == nil {
		lease, err := w.Client.Lease(ctx, w.Name)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			w.logf("lease failed (%v); backing off", err)
			sleepCtx(ctx, time.Second)
			continue
		}
		if lease.Point == nil {
			d := w.IdleSleep
			if d <= 0 {
				d = 500 * time.Millisecond
				if lease.RetryAfterMS > 0 {
					d = time.Duration(lease.RetryAfterMS) * time.Millisecond
				}
			}
			sleepCtx(ctx, d)
			continue
		}
		w.runPoint(ctx, lease)
	}
	return ctx.Err()
}

// runPoint executes one leased point under supervision and reports its
// terminal record.
func (w *Worker) runPoint(ctx context.Context, lease *LeaseResponse) {
	jp := lease.Point
	hash := jp.Hash()
	// Attach this run under the lease span sweepd advertised; with no
	// propagated context the run roots its own trace (still stitchable
	// among this worker's spans, orphaned from the job's — truthful for
	// a partially instrumented fleet).
	leaseSC := obs.SpanContext{}
	if lease.Trace != nil {
		leaseSC = *lease.Trace
	}
	if !leaseSC.Valid() {
		leaseSC = obs.SpanContext{Trace: obs.NewID()}
	}
	runSC := obs.SpanContext{Trace: leaseSC.Trace, Span: obs.NewID()}
	runSpan := func(at time.Time, status string) obs.Span {
		return obs.Span{
			Trace: runSC.Trace, ID: runSC.Span, Parent: leaseSC.Span, Name: "run",
			Start: at.UnixNano(), End: at.UnixNano(),
			Attrs: map[string]string{
				obs.KeyPoint: jp.ID, obs.KeySpecHash: hash,
				obs.KeyWorker: w.Name, "status": status,
			},
		}
	}
	prov := func() *obs.Provenance {
		if w.Provenance == nil {
			return nil
		}
		pv := *w.Provenance
		pv.SpecHash = hash
		pv.Worker = w.Name
		pv.Trace = runSC.Trace
		return &pv
	}
	pt, err := w.Build(jp)
	if err != nil {
		// A spec this worker cannot build (version skew, corrupt spec) is
		// a terminal failure — report it so the point doesn't ping-pong
		// between workers forever.
		w.logf("%s: unbuildable spec: %v", jp.ID, err)
		sp := runSpan(time.Now(), "unbuildable")
		w.Spans.Record(sp)
		w.report(ctx, hash, &runner.Record{
			ID: jp.ID, SpecHash: hash, Status: runner.StatusFailed,
			Attempts: 1, Class: runner.ClassError, Error: err.Error(),
			Provenance: prov(),
		}, runSC)
		return
	}
	if len(lease.Checkpoints) > 0 {
		// Taking over a preempted point: install the previous holder's
		// shipped checkpoints so the run resumes from its last capture.
		w.installCheckpoints(jp, lease.Checkpoints, lease.CheckpointCycle)
	}

	// Heartbeat while the point runs; a lost lease hard-cancels the run.
	runCtx, cancel := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(runCtx, jp, hash, runSC, cancel)
	}()

	w.logf("%s: running (hash %s)", jp.ID, hash)
	if w.Logger != nil {
		w.Logger.Info("run start", obs.KeyPoint, jp.ID, obs.KeySpecHash, hash,
			obs.KeyWorker, w.Name, obs.KeyTrace, runSC.Trace, obs.KeySpan, runSC.Span)
	}
	start := time.Now()
	// Start marker: if this process is SIGKILLed mid-run, the marker
	// keeps the (never-completed) run attached to the job's span tree.
	w.Spans.Record(runSpan(start, "running"))
	sum, err := runner.Run(runCtx, []runner.Point{pt}, runner.Options{
		Workers:       1,
		PointTimeout:  w.PointTimeout,
		MaxAttempts:   w.MaxAttempts,
		RetryBudget:   w.RetryBudget,
		CheckpointDir: w.CheckpointDir,
		Logger:        w.Logger,
	})
	cancel()
	<-hbDone
	if err != nil || len(sum.Records) == 0 {
		w.logf("%s: pool setup failed: %v", jp.ID, err)
		return
	}
	rec := sum.Records[0]
	rec.Provenance = prov()
	done := runSpan(start, string(rec.Status))
	done.End = time.Now().UnixNano()
	w.Spans.Record(done)
	if rec.Status == runner.StatusCanceled || rec.Status == runner.StatusSkipped {
		// The worker is shutting down or lost its lease mid-run: the point
		// is incomplete, not failed. Someone else (or this worker, later)
		// will re-run it; report nothing.
		w.logf("%s: canceled mid-run; not reporting", jp.ID)
		return
	}
	w.pointsDone.Add(1)
	w.accumulateSim(rec)
	w.logf("%s: %s (%d attempts, %.1fs)", jp.ID, rec.Status, rec.Attempts, rec.Seconds)
	if w.Logger != nil {
		w.Logger.Info("run done", obs.KeyPoint, jp.ID, obs.KeySpecHash, hash,
			obs.KeyWorker, w.Name, "status", string(rec.Status),
			"attempts", rec.Attempts, "seconds", rec.Seconds)
	}
	w.report(ctx, hash, rec, runSC)
}

// heartbeat renews the lease until ctx ends, canceling the run when the
// lease is lost. Each renewal ships the point's checkpoint files whose
// capture cycle advanced since the last successful renewal, so sweepd
// always holds a near-current resume image should this worker die.
func (w *Worker) heartbeat(ctx context.Context, jp *JobPoint, hash string, runSC obs.SpanContext, lost context.CancelFunc) {
	every := w.HeartbeatEvery
	if every <= 0 {
		every = DefaultLeaseTTL / 4
	}
	prefix := runner.CheckpointPrefix(w.CheckpointDir, jp.ID)
	shipped := make(map[string]uint64) // basename → last capture cycle delivered
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		req := &RenewRequest{Worker: w.Name, Hash: hash}
		if w.Self != nil {
			req.Self = w.Self.Sample()
		}
		var cycles map[string]uint64
		req.Checkpoints, cycles = collectCheckpoints(prefix, shipped)
		if _, err := w.Client.Renew(ctx, req); err != nil {
			if errors.Is(err, ErrLeaseLost) {
				w.logf("lease on %s lost; canceling in-flight run", hash)
				if w.Logger != nil {
					w.Logger.Warn("lease lost; canceling in-flight run",
						obs.KeyPoint, jp.ID, obs.KeySpecHash, hash, obs.KeyWorker, w.Name)
				}
				lost()
				return
			}
			// Transport trouble: keep trying — the lease TTL is the real
			// deadline, and the client already retried below it. The
			// un-acknowledged checkpoints re-ship on the next beat.
			w.logf("heartbeat for %s failed: %v", hash, err)
			continue
		}
		attrs := map[string]string{obs.KeyPoint: jp.ID, obs.KeyWorker: w.Name}
		w.Spans.Instant(runSC, "heartbeat", time.Now(), attrs)
		if len(cycles) > 0 {
			maxCycle := uint64(0)
			for name, cyc := range cycles {
				shipped[name] = cyc
				if cyc > maxCycle {
					maxCycle = cyc
				}
			}
			w.Spans.Instant(runSC, "checkpoint-ship", time.Now(), map[string]string{
				obs.KeyPoint: jp.ID, obs.KeyWorker: w.Name,
				obs.KeyCycle: fmt.Sprintf("%d", maxCycle),
				"files":      fmt.Sprintf("%d", len(cycles)),
			})
		}
	}
}

// collectCheckpoints gathers the point's checkpoint files under prefix
// whose capture cycle advanced past the last shipped one. Returns nil
// when checkpointing is off or nothing is new. Files are read whole and
// validated — checkpoint.Write's atomic rename means a reader never sees
// a half-written file, but a validation pass here keeps a surprise from
// poisoning the server's stored set.
func collectCheckpoints(prefix string, shipped map[string]uint64) (map[string][]byte, map[string]uint64) {
	if prefix == "" {
		return nil, nil
	}
	matches, err := filepath.Glob(prefix + ".*.ckpt")
	if err != nil {
		return nil, nil
	}
	var files map[string][]byte
	var cycles map[string]uint64
	for _, path := range matches {
		img, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		meta, _, err := checkpoint.Decode(img)
		if err != nil {
			continue
		}
		name := filepath.Base(path)
		if meta.Cycle <= shipped[name] && shipped[name] != 0 {
			continue
		}
		if files == nil {
			files = make(map[string][]byte)
			cycles = make(map[string]uint64)
		}
		files[name] = img
		cycles[name] = meta.Cycle
	}
	return files, cycles
}

// installCheckpoints writes lease-shipped checkpoint files into the
// worker's checkpoint directory so the supervised run resumes from them.
// Names are confined to plain basenames under the point's own prefix; a
// newer valid local file (this worker crashed and re-leased its own
// point) is never overwritten by an older shipped capture.
func (w *Worker) installCheckpoints(jp *JobPoint, ckpts map[string][]byte, fromCycle uint64) {
	if w.CheckpointDir == "" {
		w.logf("%s: lease shipped %d checkpoints but no -checkpoint-dir; restarting from scratch", jp.ID, len(ckpts))
		return
	}
	if err := os.MkdirAll(w.CheckpointDir, 0o777); err != nil {
		w.logf("%s: checkpoint dir: %v", jp.ID, err)
		return
	}
	base := filepath.Base(runner.CheckpointPrefix(w.CheckpointDir, jp.ID))
	installed := 0
	for name, img := range ckpts {
		if name != filepath.Base(name) || !strings.HasPrefix(name, base+".") || !strings.HasSuffix(name, ".ckpt") {
			w.logf("%s: ignoring shipped checkpoint with unexpected name %q", jp.ID, name)
			continue
		}
		meta, payload, err := checkpoint.Decode(img)
		if err != nil {
			w.logf("%s: shipped checkpoint %s corrupt: %v", jp.ID, name, err)
			continue
		}
		path := filepath.Join(w.CheckpointDir, name)
		if local, _, err := checkpoint.Read(path); err == nil && local.Cycle >= meta.Cycle {
			continue
		}
		if err := checkpoint.Write(path, meta, payload); err != nil {
			w.logf("%s: installing checkpoint %s: %v", jp.ID, name, err)
			continue
		}
		installed++
	}
	if installed > 0 {
		w.logf("%s: taking over from cycle %d (%d checkpoint files installed)", jp.ID, fromCycle, installed)
	}
}

// report delivers the record, retrying beyond the client's built-in policy
// until it lands or the worker stops: losing a computed result to a
// transient network blip would waste a whole simulation.
func (w *Worker) report(ctx context.Context, hash string, rec *runner.Record, runSC obs.SpanContext) {
	req := &ReportRequest{Worker: w.Name, Hash: hash, Record: rec}
	if runSC.Valid() {
		req.Trace = &runSC
	}
	for ctx.Err() == nil {
		resp, err := w.Client.Report(ctx, req)
		if err == nil {
			if resp.Duplicate {
				w.logf("%s: duplicate completion (another worker got there first)", rec.ID)
			}
			return
		}
		w.logf("%s: report failed (%v); retrying", rec.ID, err)
		sleepCtx(ctx, time.Second)
	}
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// WorkerID builds a default worker name from host identity.
func WorkerID(host string, pid int) string {
	return fmt.Sprintf("%s-%d", host, pid)
}
