package sweepsvc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Client talks to sweepd. Every call retries transparently on transport
// errors and 5xx with capped backoff — the protocol is designed so each
// request is idempotent (leases are sticky per worker, reports dedupe by
// hash), which is what makes blind retry safe across dropped RPCs and
// sweepd restarts.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8044".
	Base string
	// HTTP is the transport (nil = http.DefaultClient). The chaos harness
	// installs a fault-injecting RoundTripper here.
	HTTP *http.Client
	// MaxElapsed bounds how long one call keeps retrying before giving up
	// (0 = 2 minutes; covers a sweepd restart).
	MaxElapsed time.Duration
	// OnRetry observes call retries (nil = silent).
	OnRetry func(op string, err error, delay time.Duration)
}

// ErrGone maps HTTP 410 (lease lost); callers distinguish it from
// transport failure because it must NOT be retried.
var ErrGone = ErrLeaseLost

type httpStatusError struct {
	code int
	msg  string
}

func (e *httpStatusError) Error() string { return fmt.Sprintf("http %d: %s", e.code, e.msg) }

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call POSTs (or GETs when in == nil and method says so) JSON and decodes
// the JSON response into out, retrying transient failures.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	maxElapsed := c.MaxElapsed
	if maxElapsed <= 0 {
		maxElapsed = 2 * time.Minute
	}
	deadline := time.Now().Add(maxElapsed)
	delay := 100 * time.Millisecond
	var lastErr error
	for {
		err := c.once(ctx, method, path, in, out)
		if err == nil {
			return nil
		}
		var he *httpStatusError
		if errors.As(err, &he) {
			switch {
			case he.code == http.StatusGone:
				return ErrGone
			case he.code >= 400 && he.code < 500:
				return err // the request itself is wrong; retry can't fix it
			}
		}
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sweepsvc: %s %s: retries exhausted: %w", method, path, lastErr)
		}
		if c.OnRetry != nil {
			c.OnRetry(method+" "+path, err, delay)
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		if delay *= 2; delay > 2*time.Second {
			delay = 2 * time.Second
		}
	}
}

func (c *Client) once(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var em struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(b))
		if json.Unmarshal(b, &em) == nil && em.Error != "" {
			msg = em.Error
		}
		return &httpStatusError{code: resp.StatusCode, msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit submits a grid and returns the job's initial status.
func (c *Client) Submit(ctx context.Context, req *SubmitRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.call(ctx, http.MethodPost, "/api/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// JobStatus fetches a job's summary.
func (c *Client) JobStatus(ctx context.Context, id string, withPoints bool) (*JobStatus, error) {
	path := "/api/v1/jobs/" + id
	if withPoints {
		path += "?points=1"
	}
	var st JobStatus
	if err := c.call(ctx, http.MethodGet, path, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Results fetches a job's merged results.
func (c *Client) Results(ctx context.Context, id string) (*MergedResults, error) {
	var res MergedResults
	if err := c.call(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/results", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Lease pulls one point for worker.
func (c *Client) Lease(ctx context.Context, worker string) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := c.call(ctx, http.MethodPost, "/api/v1/lease", &LeaseRequest{Worker: worker}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Renew heartbeats worker's lease on hash. Returns ErrLeaseLost when the
// lease is gone (never retried: the server has spoken).
func (c *Client) Renew(ctx context.Context, req *RenewRequest) (*RenewResponse, error) {
	var resp RenewResponse
	if err := c.call(ctx, http.MethodPost, "/api/v1/renew", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Report submits a terminal record (idempotent by hash). The request may
// carry the worker's run-span context so the server parents its "report"
// span under the worker's run.
func (c *Client) Report(ctx context.Context, req *ReportRequest) (*ReportResponse, error) {
	var resp ReportResponse
	if err := c.call(ctx, http.MethodPost, "/api/v1/report", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WaitJob blocks until the job completes, invoking onEvent for every
// per-point transition. It prefers the streaming events endpoint and falls
// back to reconnecting/polling when the connection drops (a sweepd restart
// mid-sweep resets event seq numbers; duplicated progress callbacks are
// possible and harmless — completion is decided by job status, never by
// the stream).
func (c *Client) WaitJob(ctx context.Context, id string, onEvent func(Event)) (*JobStatus, error) {
	from := 0
	for {
		n, streamErr := c.streamEvents(ctx, id, from, onEvent)
		from += n
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		st, err := c.JobStatus(ctx, id, false)
		if err != nil {
			return nil, err
		}
		if st.Complete {
			return st, nil
		}
		if streamErr != nil {
			// Stream broken mid-job (server restarting, transport fault):
			// back off, then reconnect from the start of the rebuilt log.
			from = 0
			t := time.NewTimer(500 * time.Millisecond)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
	}
}

// streamEvents consumes the events stream from seq `from`, returning how
// many events were delivered and the terminating error (nil = server
// closed the stream cleanly, i.e. the job completed).
func (c *Client) streamEvents(ctx context.Context, id string, from int, onEvent func(Event)) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/v1/jobs/%s/events?from=%d", strings.TrimRight(c.Base, "/"), id, from), nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("sweepsvc: events: http %d", resp.StatusCode)
	}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<22)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		n++
		if onEvent != nil {
			onEvent(ev)
		}
	}
	return n, sc.Err()
}

// WriteMerged writes merged results in the canonical byte form both the
// local and remote sweep paths share: JobID and per-point Provenance
// stripped, points sorted by ID, indented JSON. Two sweeps over the same
// grid — serial local, chaotic distributed — must produce byte-identical
// files; provenance (which worker ran what, on which host) is inherently
// run-specific, so it rides the /results API but never the merged bytes.
func WriteMerged(w io.Writer, points []MergedPoint) error {
	pts := append([]MergedPoint(nil), points...)
	for i := range pts {
		pts[i].Provenance = nil
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].ID < pts[b].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&MergedResults{Points: pts})
}
