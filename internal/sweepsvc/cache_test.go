package sweepsvc

import (
	"fmt"
	"testing"

	"repro/internal/runner"
)

func rec(id string) *runner.Record {
	return &runner.Record{ID: id, SpecHash: id, Status: runner.StatusOK}
}

// TestCache drives the LRU through table-driven op sequences and checks
// the hit/miss/eviction counters and residency after each script.
func TestCache(t *testing.T) {
	type op struct {
		verb string // "put", "get"
		key  string
		want bool // for get: expect a hit
	}
	cases := []struct {
		name                 string
		cap                  int
		ops                  []op
		hits, misses, evicts uint64
		len                  int
	}{
		{
			name: "hit-and-miss",
			cap:  4,
			ops: []op{
				{"put", "a", false},
				{"get", "a", true},
				{"get", "b", false},
			},
			hits: 1, misses: 1, len: 1,
		},
		{
			name: "evicts-lru",
			cap:  2,
			ops: []op{
				{"put", "a", false},
				{"put", "b", false},
				{"put", "c", false}, // evicts a
				{"get", "a", false},
				{"get", "b", true},
				{"get", "c", true},
			},
			hits: 2, misses: 1, evicts: 1, len: 2,
		},
		{
			name: "get-refreshes-recency",
			cap:  2,
			ops: []op{
				{"put", "a", false},
				{"put", "b", false},
				{"get", "a", true},  // a is now MRU
				{"put", "c", false}, // evicts b, not a
				{"get", "a", true},
				{"get", "b", false},
			},
			hits: 2, misses: 1, evicts: 1, len: 2,
		},
		{
			name: "put-same-key-no-evict",
			cap:  2,
			ops: []op{
				{"put", "a", false},
				{"put", "a", false},
				{"put", "b", false},
				{"get", "a", true},
				{"get", "b", true},
			},
			hits: 2, len: 2,
		},
		{
			name: "unbounded",
			cap:  0,
			ops: []op{
				{"put", "a", false}, {"put", "b", false}, {"put", "c", false},
				{"get", "a", true}, {"get", "b", true}, {"get", "c", true},
			},
			hits: 3, len: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCache(tc.cap)
			for i, o := range tc.ops {
				switch o.verb {
				case "put":
					c.Put(o.key, rec(o.key))
				case "get":
					got := c.Get(o.key)
					if (got != nil) != o.want {
						t.Fatalf("op %d: Get(%q) hit=%v, want %v", i, o.key, got != nil, o.want)
					}
					if got != nil && got.ID != o.key {
						t.Fatalf("op %d: Get(%q) returned record %q", i, o.key, got.ID)
					}
				default:
					t.Fatalf("bad op %q", o.verb)
				}
			}
			hits, misses, evicts := c.Stats()
			if hits != tc.hits || misses != tc.misses || evicts != tc.evicts {
				t.Fatalf("stats = %d/%d/%d, want %d/%d/%d",
					hits, misses, evicts, tc.hits, tc.misses, tc.evicts)
			}
			if c.Len() != tc.len {
				t.Fatalf("len = %d, want %d", c.Len(), tc.len)
			}
		})
	}
}

// TestCacheEvictionOrder fills far past capacity and checks only the most
// recent capacity entries survive.
func TestCacheEvictionOrder(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), rec(fmt.Sprintf("k%d", i)))
	}
	for i := 0; i < 7; i++ {
		if c.Get(fmt.Sprintf("k%d", i)) != nil {
			t.Fatalf("k%d survived; should have been evicted", i)
		}
	}
	for i := 7; i < 10; i++ {
		if c.Get(fmt.Sprintf("k%d", i)) == nil {
			t.Fatalf("k%d evicted; should have survived", i)
		}
	}
	_, _, evicts := c.Stats()
	if evicts != 7 {
		t.Fatalf("evictions = %d, want 7", evicts)
	}
}
