package sweepsvc

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runner"
)

// Crash-consistency audit for both durable append paths: the runner's
// sweep journal and the sweep service's ledger. Both promise the same
// contract — every Append is fsynced before returning, so a crash (power
// loss included) loses at most the record being written, and replay
// recovers every earlier record while warning about the damage instead of
// failing. The table simulates the crash artifacts a torn write leaves:
// a half-written trailing record, corruption in the middle of the file,
// and a truncation landing exactly on a record boundary.

// crashSurface abstracts one durable append path.
type crashSurface struct {
	name string
	// write appends n records to path through the real (fsyncing) Append
	// and returns their keys in append order.
	write func(t *testing.T, path string, n int) []string
	// replay recovers the file, returning the recovered keys and the
	// number of warnings raised.
	replay func(t *testing.T, path string) (map[string]bool, int)
}

func journalSurface() crashSurface {
	return crashSurface{
		name: "runner-journal",
		write: func(t *testing.T, path string, n int) []string {
			j, err := runner.OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			keys := make([]string, 0, n)
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("hash-%02d", i)
				if err := j.Append(&runner.Record{ID: key, SpecHash: key, Status: runner.StatusOK, Attempts: 1}); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, key)
			}
			return keys
		},
		replay: func(t *testing.T, path string) (map[string]bool, int) {
			warns := 0
			recs, err := runner.ReadJournalWarn(path, func(string, ...any) { warns++ })
			if err != nil {
				t.Fatalf("journal replay must survive crash artifacts: %v", err)
			}
			got := make(map[string]bool, len(recs))
			for h := range recs {
				got[h] = true
			}
			return got, warns
		},
	}
}

func ledgerSurface() crashSurface {
	return crashSurface{
		name: "sweepsvc-ledger",
		write: func(t *testing.T, path string, n int) []string {
			l, err := OpenLedger(path)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			keys := make([]string, 0, n)
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("hash-%02d", i)
				if err := l.Append(&LedgerRecord{Type: "point", ID: key, Hash: key}); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, key)
			}
			return keys
		},
		replay: func(t *testing.T, path string) (map[string]bool, int) {
			warns := 0
			got := make(map[string]bool)
			err := ReplayLedger(path, func(string, ...any) { warns++ }, func(r *LedgerRecord) {
				got[r.Hash] = true
			})
			if err != nil {
				t.Fatalf("ledger replay must survive crash artifacts: %v", err)
			}
			return got, warns
		},
	}
}

// TestCrashConsistency damages each surface's file the way a crash would
// and asserts the fsync-per-record recovery contract.
func TestCrashConsistency(t *testing.T) {
	const n = 5
	damages := []struct {
		name string
		// damage mutates the intact file bytes into the crash artifact.
		damage func(data []byte) []byte
		// lost returns the indices of records expected missing afterwards.
		lost      []int
		wantWarns int
	}{
		{
			name:   "intact",
			damage: func(data []byte) []byte { return data },
		},
		{
			name: "torn-trailing-record",
			damage: func(data []byte) []byte {
				// Crash mid-write of the final record: cut it in half.
				trimmed := bytes.TrimSuffix(data, []byte("\n"))
				start := bytes.LastIndexByte(trimmed, '\n') + 1
				return data[:start+(len(trimmed)-start)/2]
			},
			lost:      []int{n - 1},
			wantWarns: 1,
		},
		{
			name: "truncated-on-record-boundary",
			damage: func(data []byte) []byte {
				// Crash after a completed fsync: the tail records simply
				// don't exist yet. No damage to see, so no warning.
				lines := bytes.SplitAfter(data, []byte("\n"))
				return bytes.Join(lines[:n-2], nil)
			},
			lost: []int{n - 2, n - 1},
		},
		{
			name: "mid-file-corruption",
			damage: func(data []byte) []byte {
				// Bit rot inside record 2's line (never touching the
				// newline framing).
				lines := bytes.SplitAfter(data, []byte("\n"))
				line := lines[2]
				for i := 1; i < len(line)-2; i++ {
					line[i] = 'x'
				}
				return bytes.Join(lines, nil)
			},
			lost:      []int{2},
			wantWarns: 1,
		},
		{
			name: "garbage-tail",
			damage: func(data []byte) []byte {
				// Crash mid-write before any payload bytes made it out:
				// a torn fragment of the next record.
				return append(data, []byte(`{"type":"poi`)...)
			},
			wantWarns: 1,
		},
	}

	for _, sf := range []crashSurface{journalSurface(), ledgerSurface()} {
		for _, dm := range damages {
			t.Run(sf.name+"/"+dm.name, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "file.jsonl")
				keys := sf.write(t, path, n)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, dm.damage(data), 0o644); err != nil {
					t.Fatal(err)
				}

				got, warns := sf.replay(t, path)
				lost := make(map[int]bool, len(dm.lost))
				for _, i := range dm.lost {
					lost[i] = true
				}
				for i, key := range keys {
					if lost[i] {
						if got[key] {
							t.Errorf("record %d should have been lost to the crash but replayed", i)
						}
					} else if !got[key] {
						t.Errorf("record %d was fsynced before the crash but did not replay", i)
					}
				}
				if warns != dm.wantWarns {
					t.Errorf("replay raised %d warnings, want %d", warns, dm.wantWarns)
				}
			})
		}
	}
}
