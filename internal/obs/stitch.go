package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// maxSpanLine mirrors runner.ScanJSONL's cap; span records are tiny but
// a corrupt log must not OOM the stitcher. (obs keeps its own scanner —
// importing runner here would close the runner->obs import cycle.)
const maxSpanLine = 1 << 20

// ReadSpans loads one span log, tolerating a torn final line (a process
// killed mid-write, exactly the chaos scenario the stitcher exists
// for). Mid-file garbage is skipped with a warning through warn, which
// may be nil.
func ReadSpans(path string, warn func(format string, args ...any)) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open span log: %w", err)
	}
	defer f.Close()
	var spans []Span
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxSpanLine)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(strings.TrimSpace(string(b))) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(b, &sp); err != nil {
			if warn != nil {
				warn("obs: %s:%d: skipping bad span record: %v", path, line, err)
			}
			continue
		}
		if sp.Trace == "" || sp.ID == "" {
			if warn != nil {
				warn("obs: %s:%d: skipping span without trace/span id", path, line)
			}
			continue
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return spans, fmt.Errorf("obs: scan %s: %w", path, err)
	}
	return spans, nil
}

// ReadSpanFiles concatenates several processes' span logs.
func ReadSpanFiles(warn func(format string, args ...any), paths ...string) ([]Span, error) {
	var all []Span
	for _, p := range paths {
		spans, err := ReadSpans(p, warn)
		if err != nil {
			return nil, err
		}
		all = append(all, spans...)
	}
	return all, nil
}

// Node is a span with its resolved children, ordered by start time.
type Node struct {
	Span
	Children []*Node
}

// Tree is the stitched forest for one or more traces. Orphans are
// spans whose parent ID was never recorded by any process — expected
// when a log is missing from the stitch set, a bug otherwise.
type Tree struct {
	Roots   []*Node
	Orphans []*Node
	Traces  []string // distinct trace IDs, sorted
	Spans   int      // spans after last-record-wins dedup
}

// Stitch merges spans from any number of process logs into one forest.
// Duplicate (trace, span) pairs collapse last-record-wins — the rule
// that lets long-running spans be logged at start and again at
// completion — where "last" means the later end timestamp (falling back
// to input order), so stitching files in any order is deterministic.
func Stitch(spans []Span) *Tree {
	type key struct{ trace, id string }
	byID := make(map[key]*Node, len(spans))
	order := make([]key, 0, len(spans))
	for _, sp := range spans {
		k := key{sp.Trace, sp.ID}
		if prev, ok := byID[k]; ok {
			if sp.End >= prev.End {
				prev.Span = sp
			}
			continue
		}
		byID[k] = &Node{Span: sp}
		order = append(order, k)
	}
	t := &Tree{Spans: len(byID)}
	traces := map[string]bool{}
	for _, k := range order {
		n := byID[k]
		traces[n.Trace] = true
		if n.Parent == "" {
			t.Roots = append(t.Roots, n)
			continue
		}
		if p, ok := byID[key{n.Trace, n.Parent}]; ok {
			p.Children = append(p.Children, n)
		} else {
			t.Orphans = append(t.Orphans, n)
		}
	}
	for _, n := range byID {
		sort.SliceStable(n.Children, func(i, j int) bool {
			if n.Children[i].Start != n.Children[j].Start {
				return n.Children[i].Start < n.Children[j].Start
			}
			return n.Children[i].ID < n.Children[j].ID
		})
	}
	byStart := func(ns []*Node) {
		sort.SliceStable(ns, func(i, j int) bool {
			if ns[i].Start != ns[j].Start {
				return ns[i].Start < ns[j].Start
			}
			return ns[i].ID < ns[j].ID
		})
	}
	byStart(t.Roots)
	byStart(t.Orphans)
	for tr := range traces {
		t.Traces = append(t.Traces, tr)
	}
	sort.Strings(t.Traces)
	return t
}

// AllSpans returns every deduped span in the tree (roots, descendants,
// and orphans with their subtrees), in deterministic pre-order.
func (t *Tree) AllSpans() []Span {
	var out []Span
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n.Span)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	for _, o := range t.Orphans {
		walk(o)
	}
	return out
}

// Format renders the forest as an indented text timeline, one line per
// span: name, process, duration, and the stable attrs.
func (t *Tree) Format(w io.Writer) {
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		d := time.Duration(n.End - n.Start)
		attrs := ""
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var sb strings.Builder
			for _, k := range keys {
				fmt.Fprintf(&sb, " %s=%s", k, n.Attrs[k])
			}
			attrs = sb.String()
		}
		fmt.Fprintf(w, "%s%-16s %-12s %12s%s\n", strings.Repeat("  ", depth), n.Name, n.Process, d, attrs)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	for _, o := range t.Orphans {
		fmt.Fprintf(w, "ORPHAN (parent %s not recorded):\n", o.Parent)
		walk(o, 1)
	}
}
