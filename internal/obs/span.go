package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the trace-context propagated across process boundaries
// (sweep client -> sweepd -> sweepworker -> sweepd). It names a trace
// and the span a remote child should attach under. The zero value means
// "no trace"; every carrier field is omitempty so old wire payloads and
// ledgers are unchanged when tracing is off.
type SpanContext struct {
	Trace string `json:"trace"`
	Span  string `json:"span"`
}

// Valid reports whether the context names a trace to attach to.
func (c SpanContext) Valid() bool { return c.Trace != "" }

// Span is one record in a process's append-only span log. Spans are
// written completed (start and end known) except for long-running work,
// which may be written twice under the same ID — once at start, once at
// completion. Stitch dedupes by (trace, span) last-record-wins, the
// same replay rule the journal and ledger use, so a SIGKILLed worker
// leaves its "running" span in the tree instead of an orphan hole.
type Span struct {
	Trace   string            `json:"trace"`
	ID      string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Process string            `json:"process,omitempty"`
	Start   int64             `json:"start_unix_ns"`
	End     int64             `json:"end_unix_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Context returns the span's own context, for parenting children.
func (s Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

var idCounter atomic.Uint64

// NewID returns a 16-hex-char random identifier for traces and spans.
// Collision odds at sweep scale (thousands of spans) are negligible; if
// the system entropy source fails we fall back to a process-local
// counter, which still never collides within one process.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// SpanLog is an append-only JSONL span sink. All methods are nil-safe:
// a process with tracing disabled passes a nil *SpanLog and every Emit
// still returns a usable child context, so trace propagation code needs
// no conditionals. Writes are best-effort — a full disk must never fail
// a sweep — but each record is written with a single Write call so
// concurrent emitters cannot interleave lines.
type SpanLog struct {
	mu      sync.Mutex
	f       *os.File
	process string
	err     error // first write error, for Close
}

// OpenSpanLog opens (appending) the span log at path. The process name
// stamps every span so the stitcher can assign per-process tracks.
func OpenSpanLog(path, process string) (*SpanLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open span log: %w", err)
	}
	return &SpanLog{f: f, process: process}, nil
}

// Process returns the configured process name ("" on a nil log).
func (l *SpanLog) Process() string {
	if l == nil {
		return ""
	}
	return l.process
}

// Record appends one span, stamping the process name if unset.
func (l *SpanLog) Record(sp Span) {
	if l == nil {
		return
	}
	if sp.Process == "" {
		sp.Process = l.process
	}
	b, err := json.Marshal(sp)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(b); err != nil && l.err == nil {
		l.err = err
	}
}

// Emit records a completed span [start,end) under parent and returns
// the new span's context for parenting children. On a nil log it still
// mints an ID so downstream propagation stays consistent (children
// recorded by *other* processes will reference a span that was never
// written here; Stitch reports those as orphans, which is the truthful
// picture of a partially-instrumented fleet).
func (l *SpanLog) Emit(parent SpanContext, name string, start, end time.Time, attrs map[string]string) SpanContext {
	sp := Span{
		Trace:  parent.Trace,
		ID:     NewID(),
		Parent: parent.Span,
		Name:   name,
		Start:  start.UnixNano(),
		End:    end.UnixNano(),
		Attrs:  attrs,
	}
	if sp.Trace == "" {
		sp.Trace = NewID() // orphaned emit starts its own trace
		sp.Parent = ""
	}
	l.Record(sp)
	return sp.Context()
}

// Instant records a zero-duration marker span at t.
func (l *SpanLog) Instant(parent SpanContext, name string, t time.Time, attrs map[string]string) SpanContext {
	return l.Emit(parent, name, t, t, attrs)
}

// Close flushes and closes the log, surfacing the first write error.
func (l *SpanLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.f.Close()
	if l.err != nil {
		return l.err
	}
	return err
}
