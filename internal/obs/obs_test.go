package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// Every line a component logger emits must parse as JSON and carry the
// stable keys consumers grep for (component, msg, level) — the contract
// scripts/logcheck enforces on real process output in CI.
func TestLoggerEmitsJSONWithStableKeys(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "dbsim", slog.LevelDebug)
	l.Info("point done", KeyPoint, "fig6-oltp", KeySpecHash, "deadbeef01020304", KeyWorker, "w1")
	l.Warn("lease expired", KeyJob, "job-1", KeyLease, "abc")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v\n%s", err, lines[0])
	}
	for _, k := range []string{"time", "level", "msg", KeyComponent, "pid", KeyPoint, KeySpecHash, KeyWorker} {
		if _, ok := first[k]; !ok {
			t.Errorf("line 0 missing key %q: %s", k, lines[0])
		}
	}
	if first[KeyComponent] != "dbsim" {
		t.Errorf("component = %v, want dbsim", first[KeyComponent])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if second["level"] != "WARN" || second[KeyJob] != "job-1" {
		t.Errorf("line 1 = %v, want WARN with job-1", second)
	}
}

// The Printf bridge adapts legacy printf-style Warn/Log seams onto the
// structured logger without losing the JSON framing.
func TestPrintfBridge(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "sweepd", slog.LevelInfo)
	warn := Printf(l, slog.LevelWarn)
	warn("ledger %s: torn tail at line %d", "sweep.ledger", 42)

	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "ledger sweep.ledger: torn tail at line 42" {
		t.Errorf("msg = %q", rec["msg"])
	}
	if rec["level"] != "WARN" {
		t.Errorf("level = %v, want WARN", rec["level"])
	}
	// Nil logger bridge must be a safe no-op (tracing/logging disabled).
	Printf(nil, slog.LevelWarn)("dropped %d", 1)
}

func TestLevelFromEnv(t *testing.T) {
	for env, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"INFO":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
		"":      slog.LevelInfo,
		"junk":  slog.LevelInfo,
	} {
		t.Setenv("DBSIM_LOG_LEVEL", env)
		if got := LevelFromEnv(); got != want {
			t.Errorf("DBSIM_LOG_LEVEL=%q: got %v, want %v", env, got, want)
		}
	}
}

func TestNewIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}
