// Package obs is the observability plane: structured leveled logging,
// cross-process sweep tracing (span logs + trace-context propagation),
// and run provenance. It is a deliberate leaf package — stdlib imports
// only — because internal/runner and internal/sweepsvc embed its types
// in their durable records; obs importing either would be a cycle.
//
// Nothing in this package runs on core.Run's per-cycle path. Loggers,
// span logs, and provenance are stamped at orchestration boundaries
// (point start/end, lease grant, report, merge), so the golden
// equivalence and bit-identity tests see identical simulator output
// with observability on or off.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Stable structured-log keys shared by every component. Log consumers
// (scripts/logcheck, the CI obs-smoke job, grep-driven debugging) key on
// these names; add new ones here rather than inventing per-call strings.
const (
	KeyComponent = "component" // binary or subsystem emitting the line
	KeyJob       = "job"       // sweepsvc job ID
	KeyPoint     = "point"     // experiment/point ID
	KeySpecHash  = "spec_hash" // runner.SpecHash content address
	KeyWorker    = "worker"    // sweepworker identity
	KeyLease     = "lease"     // lease span ID (one grant of a point)
	KeyCycle     = "cycle"     // simulator cycle (checkpoint/progress)
	KeyTrace     = "trace"     // trace ID linking cross-process spans
	KeySpan      = "span"      // span ID within a trace
	KeyExitCode  = "exit_code" // process exit code on summary lines
)

// LevelFromEnv reads DBSIM_LOG_LEVEL (debug|info|warn|error,
// case-insensitive) and falls back to info. One env var covers all five
// binaries so a sweep harness can crank verbosity fleet-wide.
func LevelFromEnv() slog.Level {
	switch strings.ToLower(os.Getenv("DBSIM_LOG_LEVEL")) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds a JSON-handler logger tagged with the component name
// and pid. Every binary logs to stderr (stdout stays reserved for
// machine-readable results: reports, merged JSON, trace files).
func NewLogger(w io.Writer, component string, level slog.Leveler) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With(KeyComponent, component, "pid", os.Getpid())
}

// Init installs the component's JSON logger on stderr as the slog
// default and returns it. Called once at the top of each main; level
// comes from DBSIM_LOG_LEVEL.
func Init(component string) *slog.Logger {
	l := NewLogger(os.Stderr, component, LevelFromEnv())
	slog.SetDefault(l)
	return l
}

// Printf bridges the structured logger to the printf-style Warn/Log
// seams that predate it (runner journal warnings, sweepsvc Manager
// warnings, worker progress lines). The formatted text becomes the msg;
// the component and pid attrs ride along from the logger.
func Printf(l *slog.Logger, level slog.Level) func(format string, args ...any) {
	return func(format string, args ...any) {
		if l == nil {
			return
		}
		l.Log(context.Background(), level, fmt.Sprintf(format, args...))
	}
}
