package obs

import (
	"os"
	"runtime"
	"runtime/debug"
	"sync"
)

// Provenance identifies exactly which binary, host, configuration, and
// worker produced a result, so any figure datapoint can be traced back
// to its origin. It is embedded (always omitempty, always a pointer) in
// dbsim JSON reports, runner journal records, sweepsvc ledger point
// records, and the merged-results API — but stripped from the canonical
// merged *bytes* (sweepsvc.WriteMerged), which must stay byte-identical
// between a serial local run and a chaotic distributed one.
//
// Field order is the JSON byte order; append new fields at the end so
// recorded provenance stays byte-stable across versions.
type Provenance struct {
	Cmd         string   `json:"cmd"`                    // binary name (dbsim, sweep, ...)
	Module      string   `json:"module,omitempty"`       // main module path
	Version     string   `json:"version,omitempty"`      // module version ("(devel)" for local builds)
	VCSRevision string   `json:"vcs_revision,omitempty"` // commit hash when built from VCS
	VCSTime     string   `json:"vcs_time,omitempty"`     // commit timestamp
	VCSModified bool     `json:"vcs_modified,omitempty"` // dirty working tree at build time
	GoVersion   string   `json:"go_version,omitempty"`
	OS          string   `json:"goos,omitempty"`
	Arch        string   `json:"goarch,omitempty"`
	Host        string   `json:"host,omitempty"`
	PID         int      `json:"pid,omitempty"`
	GOMAXPROCS  int      `json:"gomaxprocs,omitempty"`
	Args        []string `json:"args,omitempty"`      // full flag set as invoked
	Seed        uint64   `json:"seed,omitempty"`      // fault/jitter seed when one applies
	SpecHash    string   `json:"spec_hash,omitempty"` // content address of the point produced
	Worker      string   `json:"worker,omitempty"`    // sweepworker identity, when remote
	Trace       string   `json:"trace,omitempty"`     // parent trace ID of the producing job
}

type buildFacts struct {
	module, version, revision, vcsTime, goVersion string
	modified                                      bool
}

var buildOnce = sync.OnceValue(func() buildFacts {
	f := buildFacts{version: "unknown", revision: "unknown", goVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return f
	}
	f.module = bi.Main.Path
	if bi.Main.Version != "" {
		f.version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		f.goVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			f.revision = s.Value
		case "vcs.time":
			f.vcsTime = s.Value
		case "vcs.modified":
			f.modified = s.Value == "true"
		}
	}
	return f
})

// BuildInfo returns (version, vcs revision, go version) with "unknown"
// placeholders when the binary carries no VCS stamps — the label values
// for the *_build_info Prometheus gauges.
func BuildInfo() (version, revision, goVersion string) {
	f := buildOnce()
	return f.version, f.revision, f.goVersion
}

// Collect assembles the provenance of the current process. Args is
// os.Args[1:] — the full flag set as invoked. Per-point fields
// (SpecHash, Worker, Trace, Seed) are stamped later by whoever owns
// them; callers copy the record before specializing it.
func Collect(cmd string, args []string) *Provenance {
	f := buildOnce()
	host, _ := os.Hostname()
	return &Provenance{
		Cmd:         cmd,
		Module:      f.module,
		Version:     f.version,
		VCSRevision: f.revision,
		VCSTime:     f.vcsTime,
		VCSModified: f.modified,
		GoVersion:   f.goVersion,
		OS:          runtime.GOOS,
		Arch:        runtime.GOARCH,
		Host:        host,
		PID:         os.Getpid(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Args:        args,
	}
}

// WithSpec returns a copy specialized to one point's content address.
func (p *Provenance) WithSpec(hash string) *Provenance {
	if p == nil {
		return nil
	}
	cp := *p
	cp.SpecHash = hash
	return &cp
}
