package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func at(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

// The satellite stitching contract: spans recorded independently by
// sweepd and a worker, each to its own log, must stitch into ONE
// connected tree — every cross-process parent reference resolves, no
// orphans — because the lease response carried the trace context over.
func TestStitchTwoProcessLogsOneConnectedTree(t *testing.T) {
	dir := t.TempDir()
	dPath := filepath.Join(dir, "sweepd.spans")
	wPath := filepath.Join(dir, "worker.spans")

	dLog, err := OpenSpanLog(dPath, "sweepd")
	if err != nil {
		t.Fatal(err)
	}
	wLog, err := OpenSpanLog(wPath, "sweepworker")
	if err != nil {
		t.Fatal(err)
	}

	// sweepd side: submit -> lease (what the HTTP handlers record).
	root := SpanContext{Trace: NewID()}
	submit := dLog.Emit(root, "submit", at(1), at(1), map[string]string{"job": "job-1"})
	lease := dLog.Emit(submit, "lease", at(2), at(2), map[string]string{"worker": "w1", "point": "fig6"})

	// worker side: run under the propagated lease context, with a
	// heartbeat child — recorded to a DIFFERENT file.
	run := wLog.Emit(lease, "run", at(2), at(9), map[string]string{"point": "fig6"})
	wLog.Instant(run, "heartbeat", at(5), nil)

	// sweepd side again: the report references the worker's run span.
	dLog.Emit(run, "report", at(9), at(9), map[string]string{"status": "ok"})

	if err := dLog.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wLog.Close(); err != nil {
		t.Fatal(err)
	}

	spans, err := ReadSpanFiles(t.Logf, dPath, wPath)
	if err != nil {
		t.Fatal(err)
	}
	tree := Stitch(spans)
	if len(tree.Orphans) != 0 {
		var b bytes.Buffer
		tree.Format(&b)
		t.Fatalf("got %d orphans, want 0:\n%s", len(tree.Orphans), b.String())
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("got %d roots, want 1 (single connected tree)", len(tree.Roots))
	}
	if len(tree.Traces) != 1 || tree.Traces[0] != root.Trace {
		t.Fatalf("traces = %v, want [%s]", tree.Traces, root.Trace)
	}
	if tree.Spans != 5 {
		t.Fatalf("spans = %d, want 5", tree.Spans)
	}
	// submit -> lease -> run -> {heartbeat} and submit -> ... report
	// parented under run: walk the depth chain.
	n := tree.Roots[0]
	if n.Name != "submit" || len(n.Children) != 1 {
		t.Fatalf("root = %s with %d children, want submit/1", n.Name, len(n.Children))
	}
	leaseN := n.Children[0]
	if leaseN.Name != "lease" || len(leaseN.Children) != 1 {
		t.Fatalf("child = %s/%d, want lease/1", leaseN.Name, len(leaseN.Children))
	}
	runN := leaseN.Children[0]
	if runN.Name != "run" || runN.Process != "sweepworker" || len(runN.Children) != 2 {
		t.Fatalf("grandchild = %s(%s)/%d, want run(sweepworker)/2", runN.Name, runN.Process, len(runN.Children))
	}
}

// Long-running spans are logged twice under one ID (start marker, then
// completion); Stitch must collapse them last-record-wins so a live
// rewrite doesn't double-count, while a SIGKILLed worker's lone start
// marker still connects to the tree.
func TestStitchDedupesLastRecordWins(t *testing.T) {
	trace := NewID()
	runID := NewID()
	spans := []Span{
		{Trace: trace, ID: "lease1", Name: "lease", Start: 1, End: 1},
		{Trace: trace, ID: runID, Parent: "lease1", Name: "run", Start: 2, End: 2,
			Attrs: map[string]string{"status": "running"}},
		{Trace: trace, ID: runID, Parent: "lease1", Name: "run", Start: 2, End: 9,
			Attrs: map[string]string{"status": "ok"}},
	}
	tree := Stitch(spans)
	if tree.Spans != 2 {
		t.Fatalf("spans = %d, want 2 after dedup", tree.Spans)
	}
	run := tree.Roots[0].Children[0]
	if run.Attrs["status"] != "ok" || run.End != 9 {
		t.Fatalf("dedup kept %v end=%d, want completed record", run.Attrs, run.End)
	}

	// Reversed file order must not change the outcome (later End wins).
	rev := []Span{spans[2], spans[1], spans[0]}
	tree2 := Stitch(rev)
	if got := tree2.Roots[0].Children[0]; got.Attrs["status"] != "ok" {
		t.Fatalf("order-dependent dedup: kept %v", got.Attrs)
	}
}

// A torn final line (process killed mid-write) must not lose the intact
// records before it.
func TestReadSpansToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.spans")
	l, err := OpenSpanLog(path, "w1")
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(SpanContext{Trace: "t1"}, "run", at(1), at(2), nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trace":"t1","span":"xx","na`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var warned int
	spans, err := ReadSpans(path, func(string, ...any) { warned++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "run" {
		t.Fatalf("spans = %+v, want the one intact record", spans)
	}
	if warned == 0 {
		t.Error("torn tail was not warned about")
	}
}

func TestStitchReportsOrphans(t *testing.T) {
	spans := []Span{
		{Trace: "t", ID: "a", Name: "root", Start: 1, End: 2},
		{Trace: "t", ID: "b", Parent: "missing", Name: "stray", Start: 1, End: 2},
	}
	tree := Stitch(spans)
	if len(tree.Orphans) != 1 || tree.Orphans[0].ID != "b" {
		t.Fatalf("orphans = %+v, want [b]", tree.Orphans)
	}
}

// Nil span logs must be inert but still mint propagatable contexts.
func TestNilSpanLogSafe(t *testing.T) {
	var l *SpanLog
	ctx := l.Emit(SpanContext{}, "run", at(1), at(2), nil)
	if !ctx.Valid() || ctx.Span == "" {
		t.Fatalf("nil Emit returned invalid context %+v", ctx)
	}
	l.Record(Span{})
	l.Instant(ctx, "x", at(1), nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Process() != "" {
		t.Fatal("nil Process should be empty")
	}
}
