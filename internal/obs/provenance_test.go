package obs

import (
	"encoding/json"
	"os"
	"testing"
)

// Provenance must survive marshal/unmarshal cycles byte-stable: the
// record stamped into a journal entry is re-marshaled into the ledger
// and again into the merged-results API, and any drift would make
// "which binary produced this point" untrustworthy.
func TestProvenanceRoundTripByteStable(t *testing.T) {
	p := Collect("dbsim", []string{"-workload", "oltp", "-scale", "0.1"})
	p.Seed = 42
	sp := p.WithSpec("deadbeef01020304")
	sp.Worker = "w1"
	sp.Trace = "abcd1234abcd1234"

	first, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	// journal -> ledger -> merged: three decode/encode hops.
	b := first
	for hop := 0; hop < 3; hop++ {
		var back Provenance
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		b, err = json.Marshal(&back)
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if string(b) != string(first) {
			t.Fatalf("hop %d drifted:\n got %s\nwant %s", hop, b, first)
		}
	}
}

func TestCollectFillsProcessFacts(t *testing.T) {
	p := Collect("sweep", nil)
	if p.Cmd != "sweep" {
		t.Errorf("cmd = %q", p.Cmd)
	}
	if p.PID != os.Getpid() {
		t.Errorf("pid = %d, want %d", p.PID, os.Getpid())
	}
	if p.GoVersion == "" || p.GOMAXPROCS < 1 {
		t.Errorf("missing runtime facts: %+v", p)
	}
	v, rev, gover := BuildInfo()
	if v == "" || rev == "" || gover == "" {
		t.Errorf("BuildInfo returned empty labels: %q %q %q", v, rev, gover)
	}
	if p.Version != v || p.GoVersion != gover {
		t.Errorf("Collect and BuildInfo disagree: %q/%q vs %q/%q", p.Version, p.GoVersion, v, gover)
	}
}

func TestWithSpecCopies(t *testing.T) {
	base := Collect("sweep", nil)
	a := base.WithSpec("aaaa")
	b := base.WithSpec("bbbb")
	if base.SpecHash != "" || a.SpecHash != "aaaa" || b.SpecHash != "bbbb" {
		t.Fatalf("WithSpec mutated shared state: base=%q a=%q b=%q", base.SpecHash, a.SpecHash, b.SpecHash)
	}
	var nilP *Provenance
	if nilP.WithSpec("x") != nil {
		t.Fatal("nil WithSpec should stay nil")
	}
}
