package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload/oltp"
)

// latchRun is one arm of the latch-policy golden-equivalence test: run a
// workload with the given machine configuration, capturing the report and
// the telemetry JSONL byte stream (the same observables the fast-forward
// equivalence suite compares).
func latchRun(t *testing.T, oltpWorkload bool, cfg config.Config) ffResult {
	t.Helper()
	sc := ffScale()
	var jsonl bytes.Buffer
	sc.Telemetry = func(label string) *telemetry.Pipeline {
		pipe := telemetry.New(50_000)
		pipe.Attach(telemetry.NewJSONLSink(nopWriteCloser{&jsonl}), nil)
		return pipe
	}
	var rep *stats.Report
	var err error
	if oltpWorkload {
		rep, err = RunOLTP(cfg, sc, "latch-equivalence", oltp.HintNone)
	} else {
		rep, err = RunDSS(cfg, sc, "latch-equivalence")
	}
	if err != nil {
		t.Fatal(err)
	}
	return ffResult{rep: rep, jsonl: jsonl.Bytes()}
}

// TestLatchPolicyPlainGolden is the elision-off golden guarantee: a config
// that selects LatchPolicy=plain explicitly must be byte-identical to the
// default config on both workloads — the LatchPolicy seam is a verbatim
// refactor of the pre-elision lock path, so turning the knob to its zero
// value must be a no-op down to every breakdown float and telemetry byte.
func TestLatchPolicyPlainGolden(t *testing.T) {
	for _, w := range []struct {
		name string
		oltp bool
	}{{"OLTP", true}, {"DSS", false}} {
		t.Run(w.name, func(t *testing.T) {
			def := latchRun(t, w.oltp, config.Default())
			cfg := config.Default()
			cfg.LatchPolicy = config.LatchPlain
			explicit := latchRun(t, w.oltp, cfg)
			assertIdentical(t, def, explicit)
			if def.rep.HTMBegins != 0 || def.rep.HTMCommits != 0 || def.rep.HTMAborts() != 0 {
				t.Errorf("plain policy leaked HTM activity: %+v", def.rep)
			}
			if w.oltp && def.rep.LatchAcquires == 0 {
				t.Error("OLTP run recorded no latch acquires")
			}
		})
	}
}

// TestLatchPolicySpecHash: the new latch_policy spec field must react to
// the sweep axis without disturbing the identity of pre-elision specs
// (LatchPlain is omitted from the JSON, so journaled hashes stay valid).
func TestLatchPolicySpecHash(t *testing.T) {
	base := DefaultScale
	h := runner.SpecHash(base.Spec("fig2a"))
	elided := base
	elided.LatchPolicy = config.LatchHTM
	if runner.SpecHash(elided.Spec("fig2a")) == h {
		t.Error("latch policy change did not change the spec hash")
	}
	b, err := base.SpecJSON("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("latch_policy")) {
		t.Errorf("plain-policy spec mentions latch_policy (breaks journaled hashes): %s", b)
	}
}

// TestLatchElisionExperiment runs the ext-htm figure at test scale and
// checks the arms behave like their policies: elision arms speculate,
// plain arms do not, and the stall-attribution table reconciles.
func TestLatchElisionExperiment(t *testing.T) {
	res, err := LatchElision(ffScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 6 {
		t.Fatalf("want 6 arms, got %d", len(res.Reports))
	}
	oltpHTM := res.Reports[2]
	if oltpHTM.HTMBegins == 0 {
		t.Error("OLTP elision arm never started a transaction")
	}
	if oltpHTM.HTMCommits+oltpHTM.HTMFallbacks == 0 {
		t.Error("OLTP elision arm neither committed nor fell back")
	}
	for _, i := range []int{0, 1, 3, 4} { // plain and hints arms
		r := res.Reports[i]
		if r.HTMBegins != 0 || r.HTMAborts() != 0 {
			t.Errorf("non-elision arm %s shows HTM activity", r.Label)
		}
	}
	joined := strings.Join(res.Tables, "\n")
	if !strings.Contains(joined, "htm latch elision:") {
		t.Error("attribution table missing the HTM lifecycle report")
	}
	if !strings.Contains(joined, "reconcile error") {
		t.Error("attribution table missing the reconciliation line")
	}
}

// TestLatchCapacityExperiment checks the acceptance criterion that the
// capacity-abort rate responds to the configured write-set bound: a
// 1-line bound must see at least as many capacity aborts as a 32-line
// bound, and widening the bound must not lose commits.
func TestLatchCapacityExperiment(t *testing.T) {
	res, err := LatchCapacity(ffScale())
	if err != nil {
		t.Fatal(err)
	}
	tight, roomy := res.Reports[0], res.Reports[len(res.Reports)-1]
	if tight.HTMBegins == 0 || roomy.HTMBegins == 0 {
		t.Fatal("capacity sweep arms never speculated")
	}
	if tight.HTMCapacityAborts < roomy.HTMCapacityAborts {
		t.Errorf("capacity aborts did not respond to the bound: wset-1 %d < wset-32 %d",
			tight.HTMCapacityAborts, roomy.HTMCapacityAborts)
	}
	if tight.HTMCapacityAborts == 0 {
		t.Error("1-line write-set bound produced no capacity aborts")
	}
	if roomy.HTMCommits < tight.HTMCommits {
		t.Errorf("widening the bound lost commits: wset-32 %d < wset-1 %d",
			roomy.HTMCommits, tight.HTMCommits)
	}
}
