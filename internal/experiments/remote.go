package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/runner"
)

// SpecJSON returns the marshaled identity of experiment id under sc — the
// bytes a remote submission sends on the wire. Hashing these bytes
// (runner.SpecHash) gives the same content address the local sweep journal
// uses, because json.Marshal of a struct is canonical (fixed field order,
// compact) and re-marshaling the resulting RawMessage is byte-preserving.
func (sc Scale) SpecJSON(id string) (json.RawMessage, error) {
	b, err := json.Marshal(sc.Spec(id))
	if err != nil {
		return nil, fmt.Errorf("experiments: spec %s: %w", id, err)
	}
	return b, nil
}

// PointFromSpec reconstructs a runnable orchestration point from a
// marshaled PointSpec — the remote worker's inverse of Points: sweepd
// ships the spec bytes, the worker rebuilds the experiment and scale they
// denote and runs them under its own supervision pool. The rebuilt point
// hashes to the same content address as the spec bytes, so the record the
// worker reports lands on the ledger entry the server expects.
func PointFromSpec(raw json.RawMessage) (runner.Point, error) {
	var ps PointSpec
	if err := json.Unmarshal(raw, &ps); err != nil {
		return runner.Point{}, fmt.Errorf("experiments: bad point spec: %w", err)
	}
	var exp *Experiment
	for i := range All {
		if All[i].ID == ps.Experiment {
			exp = &All[i]
			break
		}
	}
	if exp == nil {
		return runner.Point{}, fmt.Errorf("experiments: unknown experiment %q in spec", ps.Experiment)
	}
	sc := Scale{
		OLTPTransactions: ps.OLTPTransactions,
		OLTPWarmupTx:     ps.OLTPWarmupTx,
		DSSRows:          ps.DSSRows,
		MaxCycles:        ps.MaxCycles,
		WatchdogWindow:   ps.WatchdogWindow,
		DisableWatchdog:  ps.DisableWatchdog,
		Faults:           ps.Faults,
		LatchPolicy:      ps.LatchPolicy,
	}
	e := *exp
	return runner.Point{
		ID:        e.ID,
		Spec:      ps,
		MaxCycles: sc.MaxCycles * maxRunsPerExperiment,
		Faulty:    sc.Faults.Enabled,
		Run: func(ctx context.Context, att runner.Attempt) (any, error) {
			esc := sc
			esc.Context = ctx
			if att.DisableFaults {
				esc.Faults = config.FaultConfig{}
			}
			armCheckpoints(&esc, e.ID, att.CheckpointPath)
			return e.Run(esc)
		},
	}, nil
}
