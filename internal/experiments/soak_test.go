package experiments

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload/dss"
	"repro/internal/workload/oltp"
)

// soakFaults is an aggressive-but-bounded fault mix for the soak runs.
func soakFaults(seed uint64) config.FaultConfig {
	return config.FaultConfig{
		Enabled:        true,
		Seed:           seed,
		MeshDelayProb:  0.05,
		MeshDelayMax:   25,
		NACKProb:       0.02,
		NACKMaxRetries: 3,
		NACKBackoff:    40,
		MemStallProb:   0.03,
		MemStallCycles: 120,
	}
}

// materialize drains every stream into a fixed slice. The soak replays the
// same materialized traces fault-free and faulted: workload generation is
// lazy and the server processes share database state (buffer pool, redo),
// so the *content* generated live depends on the pull interleaving, which
// faults legitimately perturb. Fixing the trace isolates the property under
// test — faults are timing-only, so identical inputs must retire
// identically.
func materialize(t *testing.T, streams []trace.Stream) [][]trace.Instr {
	t.Helper()
	out := make([][]trace.Instr, len(streams))
	var in trace.Instr
	for p, s := range streams {
		for s.Next(&in) {
			out[p] = append(out[p], in)
		}
	}
	return out
}

// runTraces simulates the materialized traces on machine cfg.
func runTraces(t *testing.T, cfg config.Config, traces [][]trace.Instr) *stats.Report {
	t.Helper()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p, instrs := range traces {
		sys.AddProcess(p%cfg.Nodes, trace.NewSliceStream(instrs))
	}
	rep, err := sys.Run(core.RunOptions{Label: "soak", MaxCycles: 400_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFaultSoak runs both workloads with the coherence and ordering
// checkers enabled, fault-free and under fault injection, over identical
// traces. Faults are timing-only, so the faulted run must retire exactly
// the instructions of the fault-free run (in more cycles), with every
// invariant still holding.
func TestFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped with -short")
	}
	base := config.Default()
	base.Nodes = 2
	base.DebugChecks = true

	workloads := map[string][]trace.Stream{}

	ocfg := oltp.DefaultConfig(base.Nodes)
	ocfg.TransactionsPerProcess = 1
	ow := oltp.New(ocfg)
	var ostreams []trace.Stream
	for p := 0; p < ocfg.Processes; p++ {
		ostreams = append(ostreams, ow.Stream(p))
	}
	workloads["oltp"] = ostreams

	dcfg := dss.DefaultConfig(base.Nodes)
	dcfg.RowsPerProcess = 4000
	dw := dss.New(dcfg)
	var dstreams []trace.Stream
	for p := 0; p < dcfg.Processes; p++ {
		dstreams = append(dstreams, dw.Stream(p))
	}
	workloads["dss"] = dstreams

	for wl, streams := range workloads {
		traces := materialize(t, streams)
		if wl == "oltp" {
			if err := ow.Err(); err != nil {
				t.Fatalf("oltp generation failed: %v", err)
			}
			if err := ow.TPCB().CheckConsistency(); err != nil {
				t.Fatalf("oltp database inconsistent: %v", err)
			}
		}

		clean := runTraces(t, base, traces)

		faulted := base
		faulted.Faults = soakFaults(42)
		dirty := runTraces(t, faulted, traces)

		if clean.Instructions != dirty.Instructions {
			t.Errorf("%s: faulted run retired %d instructions, fault-free retired %d — faults must be timing-only",
				wl, dirty.Instructions, clean.Instructions)
		}
		if dirty.Cycles < clean.Cycles {
			t.Errorf("%s: faulted run was faster (%d cycles) than fault-free (%d) — injector not wired?",
				wl, dirty.Cycles, clean.Cycles)
		}
		t.Logf("%s: %d instructions; cycles %d fault-free -> %d faulted (+%.1f%%)",
			wl, clean.Instructions, clean.Cycles, dirty.Cycles,
			float64(dirty.Cycles-clean.Cycles)/float64(clean.Cycles)*100)
	}
}

// TestFaultDeterminism: two faulted runs with the same seed are identical.
func TestFaultDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: skipped with -short")
	}
	cfg := config.Default()
	cfg.Faults = soakFaults(7)
	r1, err := RunDSS(cfg, QuickScale, "det1")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunDSS(cfg, QuickScale, "det2")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Instructions != r2.Instructions {
		t.Errorf("same seed, different runs: (%d, %d) vs (%d, %d) cycles/instructions",
			r1.Cycles, r1.Instructions, r2.Cycles, r2.Instructions)
	}
}
