package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// The checkpoint golden tests are the tentpole guarantee of mid-run
// checkpoint/restore: a run interrupted partway and resumed from its
// checkpoint must finish byte-identical to the same run left alone —
// the full Report, the telemetry JSONL series, and the exported trace.
// The matrix covers both workloads under all three latch policies
// (plain locking, paper-style hints, HTM elision), since each policy
// exercises a different slice of the serialized machine state.

const ckTestInterval = 50_000 // cycles between captures; several per run at ffScale

// ckArm runs one arm of a checkpoint equivalence test.
//   - capture != "": checkpoint to that file every ckTestInterval cycles,
//     canceling the run after interruptAfter captures (0 = run to the end).
//   - restore != "": resume from that checkpoint file.
func ckArm(t *testing.T, oltpWorkload bool, cfg config.Config, capture, restore string, interruptAfter int) (ffResult, error) {
	t.Helper()
	sc := ffScale()
	var jsonl bytes.Buffer
	sc.Telemetry = func(label string) *telemetry.Pipeline {
		pipe := telemetry.New(ckTestInterval)
		pipe.Attach(telemetry.NewJSONLSink(nopWriteCloser{&jsonl}), nil)
		return pipe
	}
	trc := tracing.New(tracing.Options{})
	sc.Tracer = trc

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc.Context = ctx
	if capture != "" {
		captures := 0
		sc.Checkpoint = func(label string) *core.CheckpointOptions {
			return &core.CheckpointOptions{
				Path:     capture,
				Interval: ckTestInterval,
				SpecHash: "ck-golden-test",
				OnCapture: func(cycle uint64, path string) {
					captures++
					if interruptAfter > 0 && captures == interruptAfter {
						cancel()
					}
				},
			}
		}
	}
	if restore != "" {
		sc.Restore = restore
		sc.RestoreFallback = func(label string, err error) {
			t.Errorf("restore of %s fell back to from-scratch: %v", restore, err)
		}
	}

	var rep *stats.Report
	var err error
	if oltpWorkload {
		rep, err = RunOLTP(cfg, sc, "ck-equivalence", 0)
	} else {
		rep, err = RunDSS(cfg, sc, "ck-equivalence")
	}
	if err != nil {
		return ffResult{}, err
	}
	res := ffResult{rep: rep, jsonl: jsonl.Bytes()}
	var buf bytes.Buffer
	if err := trc.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	res.trace = buf.Bytes()
	res.analysis = trc.Analysis()
	return res, nil
}

// ckGolden runs the three arms — uninterrupted baseline, interrupted
// capture, resumed — and asserts the resumed outputs are byte-identical
// to the baseline.
func ckGolden(t *testing.T, oltpWorkload bool, cfg config.Config) {
	t.Helper()
	ckPath := filepath.Join(t.TempDir(), "run.ckpt")

	baseline, err := ckArm(t, oltpWorkload, cfg, "", "", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt after the second capture; the run dies mid-flight with a
	// cancellation error and leaves its latest checkpoint behind.
	if _, err := ckArm(t, oltpWorkload, cfg, ckPath, "", 2); err == nil {
		t.Fatal("interrupted arm ran to completion; shrink ckTestInterval")
	}
	st, err := core.LoadCheckpoint(ckPath, "ck-golden-test")
	if err != nil {
		t.Fatalf("loading interrupted checkpoint: %v", err)
	}
	if st.Cycle == 0 {
		t.Fatal("interrupted checkpoint captured at cycle 0")
	}

	resumed, err := ckArm(t, oltpWorkload, cfg, ckPath, ckPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, baseline, resumed)
	if bt, rt := baseline.analysis.Totals(), resumed.analysis.Totals(); bt != rt {
		t.Errorf("trace aggregate totals differ:\nbaseline %v\nresumed  %v", bt, rt)
	}
	if baseline.rep.Instructions == 0 {
		t.Fatal("degenerate run: no instructions retired")
	}
}

func TestCheckpointByteIdentity(t *testing.T) {
	for _, w := range []struct {
		name string
		oltp bool
	}{{"OLTP", true}, {"DSS", false}} {
		for _, pol := range []struct {
			name   string
			policy config.LatchPolicy
		}{
			{"plain", config.LatchPlain},
			{"hints", config.LatchHints},
			{"htm", config.LatchHTM},
		} {
			t.Run(w.name+"/"+pol.name, func(t *testing.T) {
				cfg := config.Default()
				cfg.LatchPolicy = pol.policy
				ckGolden(t, w.oltp, cfg)
			})
		}
	}
}

// ckFallbackBaseline runs the DSS workload plain (no checkpointing, no
// tracer) under the fallback arms' run label.
func ckFallbackBaseline(t *testing.T, cfg config.Config) ffResult {
	t.Helper()
	sc := ffScale()
	var jsonl bytes.Buffer
	sc.Telemetry = func(label string) *telemetry.Pipeline {
		pipe := telemetry.New(ckTestInterval)
		pipe.Attach(telemetry.NewJSONLSink(nopWriteCloser{&jsonl}), nil)
		return pipe
	}
	rep, err := RunDSS(cfg, sc, "ck-fallback")
	if err != nil {
		t.Fatal(err)
	}
	return ffResult{rep: rep, jsonl: jsonl.Bytes()}
}

// TestCheckpointRestoreFallback: a missing, truncated, corrupted, or
// spec-mismatched checkpoint must not poison the run — it is rejected
// with a classified error and the run completes from scratch, matching
// the baseline byte for byte.
func TestCheckpointRestoreFallback(t *testing.T) {
	cfg := config.Default()
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "run.ckpt")

	// Untraced baseline under the same run label as the fallback arms
	// (the label is stamped on every telemetry sample).
	baseline := ckFallbackBaseline(t, cfg)
	if _, err := ckArm(t, false, cfg, ckPath, "", 2); err == nil {
		t.Fatal("interrupted arm ran to completion")
	}
	valid, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		prep    func(t *testing.T, path string)
		check   func(err error) bool
		errName string
	}{
		{
			name:    "missing",
			prep:    func(t *testing.T, path string) {},
			check:   func(err error) bool { return errors.Is(err, os.ErrNotExist) },
			errName: "fs.ErrNotExist",
		},
		{
			name: "truncated",
			prep: func(t *testing.T, path string) {
				if err := os.WriteFile(path, valid[:len(valid)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check:   checkpoint.IsCorrupt,
			errName: "checkpoint.ErrCorrupt",
		},
		{
			name: "corrupted",
			prep: func(t *testing.T, path string) {
				img := append([]byte(nil), valid...)
				img[len(img)-20] ^= 0xff // flip a payload byte under the hash
				if err := os.WriteFile(path, img, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check:   checkpoint.IsCorrupt,
			errName: "checkpoint.ErrCorrupt",
		},
		{
			name: "spec-mismatch",
			prep: func(t *testing.T, path string) {
				if err := os.WriteFile(path, valid, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check:   func(err error) bool { return errors.Is(err, core.ErrSpecMismatch) },
			errName: "core.ErrSpecMismatch",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.ckpt")
			tc.prep(t, path)

			sc := ffScale()
			var jsonl bytes.Buffer
			sc.Telemetry = func(label string) *telemetry.Pipeline {
				pipe := telemetry.New(ckTestInterval)
				pipe.Attach(telemetry.NewJSONLSink(nopWriteCloser{&jsonl}), nil)
				return pipe
			}
			spec := "ck-golden-test"
			if tc.name == "spec-mismatch" {
				spec = "some-other-spec"
			}
			sc.Checkpoint = func(label string) *core.CheckpointOptions {
				return &core.CheckpointOptions{
					Path:     filepath.Join(t.TempDir(), "new.ckpt"),
					Interval: ckTestInterval,
					SpecHash: spec,
				}
			}
			sc.Restore = path
			var fallbackErr error
			sc.RestoreFallback = func(label string, err error) { fallbackErr = err }

			rep, err := RunDSS(cfg, sc, "ck-fallback")
			if err != nil {
				t.Fatal(err)
			}
			if fallbackErr == nil {
				t.Fatal("restore did not fall back")
			}
			if !tc.check(fallbackErr) {
				t.Errorf("fallback error is not %s: %v", tc.errName, fallbackErr)
			}
			got := ffResult{rep: rep, jsonl: jsonl.Bytes()}
			assertIdentical(t, baseline, got)
		})
	}
}

// TestCheckpointRequiresFactory: Restore without a Checkpoint factory is
// a caller error, not a silent from-scratch run.
func TestCheckpointRequiresFactory(t *testing.T) {
	sc := ffScale()
	sc.Restore = filepath.Join(t.TempDir(), "nope.ckpt")
	if _, err := RunDSS(config.Default(), sc, "ck-misuse"); err == nil {
		t.Fatal("Restore without Checkpoint factory did not error")
	}
}
