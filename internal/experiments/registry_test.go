package experiments

import "testing"

func TestRegistryUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All {
		if e.ID == "" || e.Run == nil || e.Notes == "" {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// The paper's evaluation: figures 2a-2dg, 3a-3dg, 4, 5, 6, 7a, 7b and
	// the two characterization tables must all be present.
	for _, id := range []string{
		"fig2a", "fig2b", "fig2c", "fig2d-g",
		"fig3a", "fig3b", "fig3c", "fig3d-g",
		"fig4", "fig5", "fig6", "fig7a", "fig7b",
		"tbl-miss", "tbl-mig",
	} {
		if !seen[id] {
			t.Errorf("paper experiment %q missing from registry", id)
		}
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Tables: []string{"table-body\n"}}
	out := r.Render()
	if out == "" || len(out) < 10 {
		t.Error("empty render")
	}
}
