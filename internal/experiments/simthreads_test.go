package experiments

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// The epoch-parallel engine's contract is the same as fast-forward's: a
// run with SimThreads > 1 must be bit-identical to the serial engine —
// the full report, the telemetry byte stream, the exported trace, and
// (when checkpointing) the simulated outcome after mid-run captures.
// These tests run both arms across workloads, latch policies, fault
// injection, tracing, and checkpointing. The CI race-parallel job runs
// this file under -race, which additionally proves the span fan-out is
// free of data races.

// stRun is one arm: run the workload with the given latch policy, fault
// profile, observers, and SimThreads setting.
func stRun(t *testing.T, oltpWorkload bool, lp config.LatchPolicy, faults config.FaultConfig,
	traced, checkpointed bool, simThreads int) ffResult {
	t.Helper()
	sc := ffScale()
	sc.Faults = faults
	sc.LatchPolicy = lp
	sc.SimThreads = simThreads

	var jsonl bytes.Buffer
	sc.Telemetry = func(label string) *telemetry.Pipeline {
		pipe := telemetry.New(50_000)
		pipe.Attach(telemetry.NewJSONLSink(nopWriteCloser{&jsonl}), nil)
		return pipe
	}
	var trc *tracing.Tracer
	if traced {
		trc = tracing.New(tracing.Options{})
		sc.Tracer = trc
	}
	if checkpointed {
		dir := t.TempDir()
		sc.Checkpoint = func(label string) *core.CheckpointOptions {
			return &core.CheckpointOptions{
				Path: filepath.Join(dir, "st.ckpt"),
				// Several captures per run so the capture boundaries (which
				// cap quiet spans) interleave with the parallel fan-out.
				Interval: 200_000,
			}
		}
	}

	cfg := config.Default()
	var rep ffResult
	var err error
	if oltpWorkload {
		rep.rep, err = RunOLTP(cfg, sc, "simthreads-identity", 0)
	} else {
		rep.rep, err = RunDSS(cfg, sc, "simthreads-identity")
	}
	if err != nil {
		t.Fatal(err)
	}
	rep.jsonl = jsonl.Bytes()
	if traced {
		var buf bytes.Buffer
		if err := trc.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		rep.trace = buf.Bytes()
		rep.analysis = trc.Analysis()
	}
	return rep
}

func testSimThreadsIdentity(t *testing.T, oltpWorkload bool, lp config.LatchPolicy,
	faults config.FaultConfig, traced, checkpointed bool, simThreads int) {
	t.Helper()
	serial := stRun(t, oltpWorkload, lp, faults, traced, checkpointed, 1)
	par := stRun(t, oltpWorkload, lp, faults, traced, checkpointed, simThreads)
	assertIdentical(t, par, serial)
	if serial.rep.Instructions == 0 {
		t.Fatal("degenerate run: no instructions retired")
	}
}

func TestSimThreadsIdentityOLTPPlain(t *testing.T) {
	testSimThreadsIdentity(t, true, config.LatchPlain, config.FaultConfig{}, false, false, 2)
}

func TestSimThreadsIdentityOLTPHints(t *testing.T) {
	testSimThreadsIdentity(t, true, config.LatchHints, config.FaultConfig{}, false, false, 4)
}

func TestSimThreadsIdentityOLTPHTM(t *testing.T) {
	testSimThreadsIdentity(t, true, config.LatchHTM, config.FaultConfig{}, false, false, 2)
}

func TestSimThreadsIdentityDSSPlain(t *testing.T) {
	testSimThreadsIdentity(t, false, config.LatchPlain, config.FaultConfig{}, false, false, 4)
}

func TestSimThreadsIdentityDSSHints(t *testing.T) {
	testSimThreadsIdentity(t, false, config.LatchHints, config.FaultConfig{}, false, false, 2)
}

func TestSimThreadsIdentityDSSHTM(t *testing.T) {
	testSimThreadsIdentity(t, false, config.LatchHTM, config.FaultConfig{}, false, false, 4)
}

// Fault injection reshapes exactly the quiet spans the pool fans out
// (NACK storms, stretched latencies).
func TestSimThreadsIdentityFaults(t *testing.T) {
	f := config.FaultConfig{
		Enabled:        true,
		Seed:           42,
		MeshDelayProb:  0.05,
		MeshDelayMax:   40,
		NACKProb:       0.02,
		NACKMaxRetries: 4,
		NACKBackoff:    20,
		MemStallProb:   0.05,
		MemStallCycles: 60,
	}
	testSimThreadsIdentity(t, true, config.LatchPlain, f, false, false, 4)
}

// With a tracer attached the engine must disable the fan-out (the event
// ring is shared) and still match the serial run byte for byte.
func TestSimThreadsIdentityTraced(t *testing.T) {
	serial := stRun(t, true, config.LatchPlain, config.FaultConfig{}, true, false, 1)
	par := stRun(t, true, config.LatchPlain, config.FaultConfig{}, true, false, 4)
	assertIdentical(t, par, serial)
	if pt, st := par.analysis.Totals(), serial.analysis.Totals(); pt != st {
		t.Errorf("trace aggregate totals differ:\nthreads=4 %v\nserial    %v", pt, st)
	}
}

// Mid-run checkpoint captures tick their boundary cycles serially in both
// arms; the checkpointed parallel run must still match the serial one.
func TestSimThreadsIdentityCheckpointed(t *testing.T) {
	testSimThreadsIdentity(t, false, config.LatchPlain, config.FaultConfig{}, false, true, 4)
}
