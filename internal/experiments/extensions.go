package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload/oltp"
)

// MigratoryProtocol reproduces the paper's footnote 2: an adaptive
// migratory coherence protocol (Cox & Fowler / Stenstrom et al.) that hands
// ownership to readers of migratory lines "will not provide any gains since
// the write latency is already hidden" under the relaxed base model. Under
// straightforward SC, where stores block at the head of the window, the
// same protocol does help — which is exactly why the paper's remedy is the
// flush hint, not the protocol change.
func MigratoryProtocol(sc Scale) (*Result, error) {
	type variant struct {
		label string
		model config.ConsistencyModel
		mig   bool
	}
	variants := []variant{
		{"RC-base", config.RC, false},
		{"RC+migratory-protocol", config.RC, true},
		{"SC-base", config.SC, false},
		{"SC+migratory-protocol", config.SC, true},
	}
	var pts []figPoint
	for _, v := range variants {
		cfg := config.Default()
		cfg.Consistency = v.model
		cfg.MigratoryProtocol = v.mig
		pts = append(pts, figPoint{v.label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, v.label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	rcBase, rcMig := reports[0].ExecTime(), reports[1].ExecTime()
	scBase, scMig := reports[2].ExecTime(), reports[3].ExecTime()
	fmt.Fprintf(&sb, "RC: migratory protocol changes execution time by %+.1f%% (paper: no gain expected)\n",
		(rcMig-rcBase)/rcBase*100)
	fmt.Fprintf(&sb, "SC: migratory protocol changes execution time by %+.1f%%\n",
		(scMig-scBase)/scBase*100)
	return &Result{
		ID: "ext-migproto", Title: "Adaptive migratory protocol under RC vs SC (footnote 2)",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports), sb.String()},
	}, nil
}

// UniStreamBuffer reproduces the paper's uniprocessor stream-buffer numbers
// (Section 4.1): "stream buffers of size 2 and 4 achieve reductions in
// execution time of 22% and 27% respectively" — larger than the
// multiprocessor gains because instruction stall is a bigger share of
// uniprocessor time (Figure 5).
func UniStreamBuffer(sc Scale) (*Result, error) {
	var pts []figPoint
	for _, n := range []int{0, 2, 4, 8} {
		cfg := config.Default()
		cfg.Nodes = 1
		cfg.StreamBufEntries = n
		label := "uni-base"
		if n > 0 {
			label = fmt.Sprintf("uni-streambuf-%d", n)
		}
		pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "ext-unisb", Title: "Uniprocessor stream buffers (Sec 4.1: -22%/-27%)",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports)},
	}, nil
}

// Validation reproduces the Section 2.3 sanity checks: OLTP throughput
// scaling from 1 to 4 processors and the locking characteristics ("most of
// the lock accesses in OLTP were contentionless").
func Validation(sc Scale) (*Result, error) {
	nodeCounts := []int{1, 2, 4}
	var pts []figPoint
	for _, nodes := range nodeCounts {
		cfg := config.Default()
		cfg.Nodes = nodes
		label := fmt.Sprintf("%dP", nodes)
		pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	var times []float64
	for i, nodes := range nodeCounts {
		rep := reports[i]
		// Throughput scaling: the same per-process work runs on more CPUs;
		// compare transactions per cycle via instructions per cycle. A run
		// that retired nothing (Cycles == 0) reports zero, not NaN.
		ipc, idle := 0.0, 0.0
		if rep.Cycles > 0 {
			ipc = float64(rep.Instructions) / float64(rep.Cycles)
			idle = rep.IdleCycles / float64(rep.Cycles*uint64(nodes))
		}
		times = append(times, ipc)
		fmt.Fprintf(&sb, "%dP: machine throughput %.2f instr/cycle, lock contention %.1f%%, idle %.0f%%\n",
			nodes, ipc, rep.SyncContention*100, idle*100)
	}
	speedup := 0.0
	if times[0] > 0 {
		speedup = times[2] / times[0]
	}
	fmt.Fprintf(&sb, "1P -> 4P throughput scaling: %.2fx\n", speedup)
	fmt.Fprintf(&sb, "(Section 2.3: speedup and locking behaviour verified against the real platform;\n")
	fmt.Fprintf(&sb, " most OLTP lock accesses are contentionless.)\n")
	return &Result{
		ID: "ext-validate", Title: "Validation: multiprocessor scaling and locking (Sec 2.3)",
		Reports: reports,
		Tables:  []string{sb.String()},
	}, nil
}

func init() {
	All = append(All,
		Experiment{"ext-migproto", MigratoryProtocol, "extension: adaptive migratory protocol (footnote 2)"},
		Experiment{"ext-unisb", UniStreamBuffer, "extension: uniprocessor stream buffers (Sec 4.1)"},
		Experiment{"ext-validate", Validation, "validation: scaling + locking characteristics (Sec 2.3)"},
		Experiment{"ext-btbpf", BTBPrefetch, "extension: BTB-directed instruction prefetch (Sec 4.1)"},
	)
}

// BTBPrefetch reproduces the other Section 4.1 preliminary study: a
// predictor that interfaces with the branch target buffer to prefetch the
// instruction lines of predicted branch targets. The paper concluded its
// benefits "are likely to be limited ... and may not justify the associated
// hardware costs, especially when a stream buffer is already used".
func BTBPrefetch(sc Scale) (*Result, error) {
	type variant struct {
		label string
		mod   func(*config.Config)
	}
	variants := []variant{
		{"base", func(c *config.Config) {}},
		{"btb-prefetch", func(c *config.Config) { c.BTBPrefetch = true }},
		{"streambuf-4", func(c *config.Config) { c.StreamBufEntries = 4 }},
		{"streambuf-4+btb", func(c *config.Config) {
			c.StreamBufEntries = 4
			c.BTBPrefetch = true
		}},
	}
	var pts []figPoint
	for _, v := range variants {
		cfg := config.Default()
		v.mod(&cfg)
		pts = append(pts, figPoint{v.label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, v.label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "ext-btbpf", Title: "BTB-directed instruction prefetch vs stream buffer (Sec 4.1)",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports)},
	}, nil
}
