package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/tracing"
	"repro/internal/workload/oltp"
)

// MigratoryProtocol reproduces the paper's footnote 2: an adaptive
// migratory coherence protocol (Cox & Fowler / Stenstrom et al.) that hands
// ownership to readers of migratory lines "will not provide any gains since
// the write latency is already hidden" under the relaxed base model. Under
// straightforward SC, where stores block at the head of the window, the
// same protocol does help — which is exactly why the paper's remedy is the
// flush hint, not the protocol change.
func MigratoryProtocol(sc Scale) (*Result, error) {
	type variant struct {
		label string
		model config.ConsistencyModel
		mig   bool
	}
	variants := []variant{
		{"RC-base", config.RC, false},
		{"RC+migratory-protocol", config.RC, true},
		{"SC-base", config.SC, false},
		{"SC+migratory-protocol", config.SC, true},
	}
	var pts []figPoint
	for _, v := range variants {
		cfg := config.Default()
		cfg.Consistency = v.model
		cfg.MigratoryProtocol = v.mig
		pts = append(pts, figPoint{v.label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, v.label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	rcBase, rcMig := reports[0].ExecTime(), reports[1].ExecTime()
	scBase, scMig := reports[2].ExecTime(), reports[3].ExecTime()
	fmt.Fprintf(&sb, "RC: migratory protocol changes execution time by %+.1f%% (paper: no gain expected)\n",
		(rcMig-rcBase)/rcBase*100)
	fmt.Fprintf(&sb, "SC: migratory protocol changes execution time by %+.1f%%\n",
		(scMig-scBase)/scBase*100)
	return &Result{
		ID: "ext-migproto", Title: "Adaptive migratory protocol under RC vs SC (footnote 2)",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports), sb.String()},
	}, nil
}

// UniStreamBuffer reproduces the paper's uniprocessor stream-buffer numbers
// (Section 4.1): "stream buffers of size 2 and 4 achieve reductions in
// execution time of 22% and 27% respectively" — larger than the
// multiprocessor gains because instruction stall is a bigger share of
// uniprocessor time (Figure 5).
func UniStreamBuffer(sc Scale) (*Result, error) {
	var pts []figPoint
	for _, n := range []int{0, 2, 4, 8} {
		cfg := config.Default()
		cfg.Nodes = 1
		cfg.StreamBufEntries = n
		label := "uni-base"
		if n > 0 {
			label = fmt.Sprintf("uni-streambuf-%d", n)
		}
		pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "ext-unisb", Title: "Uniprocessor stream buffers (Sec 4.1: -22%/-27%)",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports)},
	}, nil
}

// Validation reproduces the Section 2.3 sanity checks: OLTP throughput
// scaling from 1 to 4 processors and the locking characteristics ("most of
// the lock accesses in OLTP were contentionless").
func Validation(sc Scale) (*Result, error) {
	nodeCounts := []int{1, 2, 4}
	var pts []figPoint
	for _, nodes := range nodeCounts {
		cfg := config.Default()
		cfg.Nodes = nodes
		label := fmt.Sprintf("%dP", nodes)
		pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	var times []float64
	for i, nodes := range nodeCounts {
		rep := reports[i]
		// Throughput scaling: the same per-process work runs on more CPUs;
		// compare transactions per cycle via instructions per cycle. A run
		// that retired nothing (Cycles == 0) reports zero, not NaN.
		ipc, idle := 0.0, 0.0
		if rep.Cycles > 0 {
			ipc = float64(rep.Instructions) / float64(rep.Cycles)
			idle = rep.IdleCycles / float64(rep.Cycles*uint64(nodes))
		}
		times = append(times, ipc)
		fmt.Fprintf(&sb, "%dP: machine throughput %.2f instr/cycle, lock contention %.1f%%, idle %.0f%%\n",
			nodes, ipc, rep.SyncContention*100, idle*100)
	}
	speedup := 0.0
	if times[0] > 0 {
		speedup = times[2] / times[0]
	}
	fmt.Fprintf(&sb, "1P -> 4P throughput scaling: %.2fx\n", speedup)
	fmt.Fprintf(&sb, "(Section 2.3: speedup and locking behaviour verified against the real platform;\n")
	fmt.Fprintf(&sb, " most OLTP lock accesses are contentionless.)\n")
	return &Result{
		ID: "ext-validate", Title: "Validation: multiprocessor scaling and locking (Sec 2.3)",
		Reports: reports,
		Tables:  []string{sb.String()},
	}, nil
}

func init() {
	All = append(All,
		Experiment{"ext-migproto", MigratoryProtocol, "extension: adaptive migratory protocol (footnote 2)"},
		Experiment{"ext-unisb", UniStreamBuffer, "extension: uniprocessor stream buffers (Sec 4.1)"},
		Experiment{"ext-validate", Validation, "validation: scaling + locking characteristics (Sec 2.3)"},
		Experiment{"ext-btbpf", BTBPrefetch, "extension: BTB-directed instruction prefetch (Sec 4.1)"},
		Experiment{"ext-htm", LatchElision, "extension: HTM latch elision vs prefetch+flush hints"},
		Experiment{"ext-htmcap", LatchCapacity, "extension: HTM write-set capacity cliff"},
	)
}

// LatchElision is the elision-vs-hints study: the same OLTP and DSS runs
// under the three strategies the LatchPolicy seam offers — the plain
// latch baseline, the paper-style prefetch+flush latch hints (Sec 4.2's
// remedy applied in hardware at the latch), and best-effort HTM latch
// elision with latch-acquire fallback. The paper identified latch
// ping-pong as the dominant migratory-sharing cost in OLTP; elision is
// the modern answer the paper predates, so this figure is its natural
// extension. The OLTP baseline and elision arms additionally run under
// the event tracer so the figure attributes exactly which stall cycles
// elision recovered (sync + dirty-read migratory time), reconciled
// against the simulator's own breakdown.
func LatchElision(sc Scale) (*Result, error) {
	type arm struct {
		label  string
		policy config.LatchPolicy
		isOLTP bool
		traced bool
	}
	arms := []arm{
		{"oltp-plain", config.LatchPlain, true, true},
		{"oltp-hints", config.LatchHints, true, false},
		{"oltp-htm", config.LatchHTM, true, true},
		{"dss-plain", config.LatchPlain, false, false},
		{"dss-hints", config.LatchHints, false, false},
		{"dss-htm", config.LatchHTM, false, false},
	}
	tracers := make([]*tracing.Tracer, len(arms))
	var pts []figPoint
	for i, a := range arms {
		i, a := i, a
		cfg := config.Default()
		cfg.LatchPolicy = a.policy
		pts = append(pts, figPoint{a.label, func(psc Scale) (*stats.Report, error) {
			if a.traced {
				// Per-arm tracer (never the caller's shared one): each
				// point owns its analysis, so parallel execution stays
				// bit-identical.
				tracers[i] = tracing.New(tracing.Options{})
				psc.Tracer = tracers[i]
			}
			if a.isOLTP {
				return RunOLTP(cfg, psc, a.label, oltp.HintNone)
			}
			return RunDSS(cfg, psc, a.label)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s | %9s %9s %9s %9s %9s %9s | %9s %9s\n",
		"arm", "exec", "begins", "commits", "conflict", "capacity", "fallback", "elided%", "acquires", "contended")
	for i, a := range arms {
		r := reports[i]
		base := reports[0]
		if !a.isOLTP {
			base = reports[3]
		}
		elided := 0.0
		if r.HTMBegins > 0 {
			elided = float64(r.HTMCommits) / float64(r.HTMBegins) * 100
		}
		fmt.Fprintf(&sb, "%-12s %10.3f | %9d %9d %9d %9d %9d %8.1f%% | %9d %9d\n",
			a.label, r.ExecTime()/base.ExecTime(), r.HTMBegins, r.HTMCommits,
			r.HTMConflictAborts, r.HTMCapacityAborts, r.HTMFallbacks, elided,
			r.LatchAcquires, r.LatchContended)
	}

	var att strings.Builder
	if tracers[0] != nil && tracers[2] != nil {
		baseA, elA := tracers[0].Analysis(), tracers[2].Analysis()
		bt, et := baseA.Totals(), elA.Totals()
		att.WriteString(tracing.FormatHTM(elA.HTM, et))
		recovered := (bt[stats.Sync] + bt[stats.ReadDirty]) -
			(et[stats.Sync] + et[stats.ReadDirty] + et.HTM())
		fmt.Fprintf(&att, "recovered latch stall (sync + dirty-read, baseline - elision): %.0f slot-cycles\n", recovered)
		fmt.Fprintf(&att, "trace/simulator reconcile error: baseline %.3f%%, elision %.3f%%\n",
			tracing.ReconcileError(bt, reports[0].Breakdown)*100,
			tracing.ReconcileError(et, reports[2].Breakdown)*100)
		mig, non, rows := elA.MigratorySummary(5)
		att.WriteString("\nmigratory attribution under elision:\n")
		att.WriteString(tracing.FormatMigratory(mig, non, rows))
	}

	return &Result{
		ID: "ext-htm", Title: "HTM latch elision vs prefetch+flush hints (OLTP and DSS)",
		Reports: reports,
		Tables: []string{
			stats.FormatBreakdownTable(reports[:3]),
			stats.FormatBreakdownTable(reports[3:]),
			sb.String(),
			att.String(),
		},
	}, nil
}

// LatchCapacity sweeps the transactional write-set bound under HTM latch
// elision on OLTP: a POWER8-style capacity cliff. Once the bound covers
// the critical section's store footprint, capacity aborts vanish and the
// commit rate saturates; below it every elision attempt dies on capacity
// and the policy degenerates to latch acquisition via fallback.
func LatchCapacity(sc Scale) (*Result, error) {
	bounds := []int{1, 2, 4, 8, 16, 32}
	var pts []figPoint
	for _, b := range bounds {
		b := b
		cfg := config.Default()
		cfg.LatchPolicy = config.LatchHTM
		cfg.HTM.WriteSetLines = b
		label := fmt.Sprintf("wset-%d", b)
		pts = append(pts, figPoint{label, func(psc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, psc, label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s | %9s %9s %9s %9s %9s %9s\n",
		"wset", "exec", "begins", "commits", "commit%", "capacity", "conflict", "fallback")
	for i, b := range bounds {
		r := reports[i]
		rate := 0.0
		if r.HTMBegins > 0 {
			rate = float64(r.HTMCommits) / float64(r.HTMBegins) * 100
		}
		fmt.Fprintf(&sb, "%-8d %10.3f | %9d %9d %8.1f%% %9d %9d %9d\n",
			b, r.ExecTime()/reports[len(bounds)-1].ExecTime(), r.HTMBegins, r.HTMCommits,
			rate, r.HTMCapacityAborts, r.HTMConflictAborts, r.HTMFallbacks)
	}
	return &Result{
		ID: "ext-htmcap", Title: "HTM write-set capacity cliff (OLTP, elision)",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports), sb.String()},
	}, nil
}

// BTBPrefetch reproduces the other Section 4.1 preliminary study: a
// predictor that interfaces with the branch target buffer to prefetch the
// instruction lines of predicted branch targets. The paper concluded its
// benefits "are likely to be limited ... and may not justify the associated
// hardware costs, especially when a stream buffer is already used".
func BTBPrefetch(sc Scale) (*Result, error) {
	type variant struct {
		label string
		mod   func(*config.Config)
	}
	variants := []variant{
		{"base", func(c *config.Config) {}},
		{"btb-prefetch", func(c *config.Config) { c.BTBPrefetch = true }},
		{"streambuf-4", func(c *config.Config) { c.StreamBufEntries = 4 }},
		{"streambuf-4+btb", func(c *config.Config) {
			c.StreamBufEntries = 4
			c.BTBPrefetch = true
		}},
	}
	var pts []figPoint
	for _, v := range variants {
		cfg := config.Default()
		v.mod(&cfg)
		pts = append(pts, figPoint{v.label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, v.label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "ext-btbpf", Title: "BTB-directed instruction prefetch vs stream buffer (Sec 4.1)",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports)},
	}, nil
}
