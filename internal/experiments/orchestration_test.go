package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/stats"
)

// stormFaults is a NACK storm: every directory request is bounced with a
// huge retry bound and a long backoff, so cumulative backoff silences
// retirement for far longer than the watchdog window — a fault-induced
// livelock.
func stormFaults() config.FaultConfig {
	return config.FaultConfig{
		Enabled:        true,
		Seed:           7,
		NACKProb:       1.0,
		NACKMaxRetries: 1 << 20,
		NACKBackoff:    2_000,
	}
}

// tinyDSS returns one orchestration point running a small real DSS
// simulation under sc.
func tinyDSS(id string, sc Scale, mod func(*config.Config)) runner.Point {
	exp := Experiment{ID: id, Run: func(esc Scale) (*Result, error) {
		cfg := config.Default()
		cfg.Nodes = 2
		if mod != nil {
			mod(&cfg)
		}
		rep, err := RunDSS(cfg, esc, id)
		if err != nil {
			return nil, err
		}
		return &Result{ID: id, Title: id, Reports: []*stats.Report{rep}}, nil
	}}
	return Points([]Experiment{exp}, sc, nil)[0]
}

// TestFaultStormRecovered: a fault-injected NACK storm must trip the
// forward-progress watchdog; the orchestration layer must retry the point
// with the fault profile disabled and journal it as recovered_after_fault,
// preserving the faulted attempt's diag snapshot.
func TestFaultStormRecovered(t *testing.T) {
	sc := Scale{
		DSSRows:        500,
		MaxCycles:      200_000_000,
		WatchdogWindow: 50_000,
		Faults:         stormFaults(),
	}
	pt := tinyDSS("nack-storm", sc, nil)
	if !pt.Faulty {
		t.Fatal("point built from a faulted scale is not marked Faulty")
	}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := runner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	sum, err := runner.Run(context.Background(), []runner.Point{pt}, runner.Options{
		PointTimeout: 2 * time.Minute,
		BackoffBase:  time.Millisecond,
		RetryBudget:  2,
		Journal:      j,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := sum.Records[0]
	if rec.Status != runner.StatusRecovered {
		t.Fatalf("status = %q (class %q, err %s), want recovered_after_fault",
			rec.Status, rec.Class, rec.Error)
	}
	if rec.Class != runner.ClassProgress {
		t.Errorf("class = %q, want progress (the storm must trip the watchdog)", rec.Class)
	}
	if rec.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", rec.Attempts)
	}
	if rec.Diag == nil || rec.Diag.Reason != "watchdog" {
		t.Fatalf("original watchdog snapshot not preserved: %+v", rec.Diag)
	}

	// The journal must carry the same record durably, snapshot included.
	recs, err := runner.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jr := recs[rec.SpecHash]
	if jr == nil || jr.Status != runner.StatusRecovered || jr.Diag == nil || jr.Diag.Reason != "watchdog" {
		t.Fatalf("journaled record = %+v, want recovered with watchdog snapshot", jr)
	}
}

// TestParallelMatchesSerial: worker parallelism must not change any
// point's simulated outcome — for a fixed seed the per-point counters of a
// parallel sweep are bit-identical to serial execution.
func TestParallelMatchesSerial(t *testing.T) {
	sc := Scale{DSSRows: 400, MaxCycles: 100_000_000}
	build := func() []runner.Point {
		var pts []runner.Point
		for i, w := range []int{1, 2, 4, 8} {
			w := w
			pts = append(pts, tinyDSS(fmt.Sprintf("issue-%d", i), sc, func(c *config.Config) {
				c.IssueWidth = w
			}))
		}
		return pts
	}
	marshal := func(sum *runner.Summary) []string {
		var out []string
		for _, r := range sum.Records {
			if r.Status != runner.StatusOK {
				t.Fatalf("point %s: %s (%s)", r.ID, r.Status, r.Error)
			}
			out = append(out, string(r.Result))
		}
		return out
	}
	serial, err := runner.Run(context.Background(), build(), runner.Options{
		Workers: 1, PointTimeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.Run(context.Background(), build(), runner.Options{
		Workers: 4, PointTimeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, p := marshal(serial), marshal(parallel)
	for i := range s {
		if s[i] != p[i] {
			t.Errorf("point %d: parallel result differs from serial\nserial:   %.200s\nparallel: %.200s",
				i, s[i], p[i])
		}
	}
}

// TestPointSpecHashing: resume identity must react to scale and fault
// changes but not to cancellation/telemetry plumbing.
func TestPointSpecHashing(t *testing.T) {
	base := Scale{DSSRows: 100, MaxCycles: 1000}
	h := runner.SpecHash(base.Spec("fig2a"))
	if runner.SpecHash(base.Spec("fig2b")) == h {
		t.Error("different experiments share a spec hash")
	}
	changed := base
	changed.DSSRows = 200
	if runner.SpecHash(changed.Spec("fig2a")) == h {
		t.Error("scale change did not change the spec hash")
	}
	faulted := base
	faulted.Faults = stormFaults()
	if runner.SpecHash(faulted.Spec("fig2a")) == h {
		t.Error("fault profile change did not change the spec hash")
	}
	withCtx := base
	withCtx.Context = context.Background()
	if runner.SpecHash(withCtx.Spec("fig2a")) != h {
		t.Error("context plumbing changed the spec hash")
	}
}
