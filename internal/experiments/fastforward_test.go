package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// The fast-forward equivalence tests are the tentpole guarantee of the
// idle-cycle skip: a run with fast-forward enabled must be bit-identical
// to the same run ticking every cycle — the full Report (every float64 of
// the breakdown, every histogram bucket), the telemetry JSONL byte
// stream, and the exported trace. Each test runs both arms and compares.

// ffScale is small enough to keep the suite fast but long enough to cross
// several telemetry intervals, context switches, lock contention, and the
// warm-up reset in both workloads.
func ffScale() Scale {
	return Scale{
		OLTPTransactions: 1,
		OLTPWarmupTx:     1,
		DSSRows:          2_000,
		MaxCycles:        200_000_000,
	}
}

type nopWriteCloser struct{ *bytes.Buffer }

func (nopWriteCloser) Close() error { return nil }

// ffRun is one arm of an equivalence test: run the workload with the
// given fast-forward setting, capturing the report, the telemetry JSONL
// bytes, and (when traced) the exported Chrome trace bytes.
type ffResult struct {
	rep      *stats.Report
	jsonl    []byte
	trace    []byte
	analysis *tracing.Analysis
}

func ffRun(t *testing.T, oltpWorkload, traced bool, faults config.FaultConfig, disableFF bool) ffResult {
	t.Helper()
	sc := ffScale()
	sc.DisableFastForward = disableFF
	sc.Faults = faults

	var jsonl bytes.Buffer
	sc.Telemetry = func(label string) *telemetry.Pipeline {
		pipe := telemetry.New(50_000)
		pipe.Attach(telemetry.NewJSONLSink(nopWriteCloser{&jsonl}), nil)
		return pipe
	}
	var trc *tracing.Tracer
	if traced {
		trc = tracing.New(tracing.Options{})
		sc.Tracer = trc
	}

	cfg := config.Default()
	var rep *stats.Report
	var err error
	if oltpWorkload {
		rep, err = RunOLTP(cfg, sc, "ff-equivalence", 0)
	} else {
		rep, err = RunDSS(cfg, sc, "ff-equivalence")
	}
	if err != nil {
		t.Fatal(err)
	}
	res := ffResult{rep: rep, jsonl: jsonl.Bytes()}
	if traced {
		var buf bytes.Buffer
		if err := trc.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		res.trace = buf.Bytes()
		res.analysis = trc.Analysis()
	}
	return res
}

func assertIdentical(t *testing.T, on, off ffResult) {
	t.Helper()
	if on.rep.Cycles != off.rep.Cycles {
		t.Errorf("cycles differ: ff-on %d, ff-off %d", on.rep.Cycles, off.rep.Cycles)
	}
	if on.rep.Instructions != off.rep.Instructions {
		t.Errorf("instructions differ: ff-on %d, ff-off %d", on.rep.Instructions, off.rep.Instructions)
	}
	if on.rep.Breakdown != off.rep.Breakdown {
		t.Errorf("breakdown differs (must be bitwise equal):\nff-on  %v\nff-off %v", on.rep.Breakdown, off.rep.Breakdown)
	}
	if !reflect.DeepEqual(on.rep, off.rep) {
		t.Errorf("reports differ:\nff-on  %+v\nff-off %+v", on.rep, off.rep)
	}
	if !bytes.Equal(on.jsonl, off.jsonl) {
		t.Errorf("telemetry JSONL series differ (%d vs %d bytes)", len(on.jsonl), len(off.jsonl))
	}
	if !bytes.Equal(on.trace, off.trace) {
		t.Errorf("exported traces differ (%d vs %d bytes)", len(on.trace), len(off.trace))
	}
}

func TestFastForwardEquivalenceOLTP(t *testing.T) {
	on := ffRun(t, true, false, config.FaultConfig{}, false)
	off := ffRun(t, true, false, config.FaultConfig{}, true)
	assertIdentical(t, on, off)
	if on.rep.Instructions == 0 {
		t.Fatal("degenerate run: no instructions retired")
	}
}

func TestFastForwardEquivalenceDSS(t *testing.T) {
	on := ffRun(t, false, false, config.FaultConfig{}, false)
	off := ffRun(t, false, false, config.FaultConfig{}, true)
	assertIdentical(t, on, off)
}

// TestFastForwardEquivalenceFaults injects the deterministic timing-fault
// profile: NACK/retry storms and stretched latencies reshape exactly the
// idle spans fast-forward skips.
func TestFastForwardEquivalenceFaults(t *testing.T) {
	f := config.FaultConfig{
		Enabled:        true,
		Seed:           42,
		MeshDelayProb:  0.05,
		MeshDelayMax:   40,
		NACKProb:       0.02,
		NACKMaxRetries: 4,
		NACKBackoff:    20,
		MemStallProb:   0.05,
		MemStallCycles: 60,
	}
	on := ffRun(t, true, false, f, false)
	off := ffRun(t, true, false, f, true)
	assertIdentical(t, on, off)
}

// TestFastForwardEquivalenceTraced runs with the event tracer attached:
// the bulk-applied stall spans and lock-contention windows must yield a
// byte-identical export and identical aggregates.
func TestFastForwardEquivalenceTraced(t *testing.T) {
	on := ffRun(t, true, true, config.FaultConfig{}, false)
	off := ffRun(t, true, true, config.FaultConfig{}, true)
	assertIdentical(t, on, off)
	if onT, offT := on.analysis.Totals(), off.analysis.Totals(); onT != offT {
		t.Errorf("trace aggregate totals differ:\nff-on  %v\nff-off %v", onT, offT)
	}
}
