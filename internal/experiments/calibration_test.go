package experiments

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload/oltp"
)

// TestCalibrationOLTP checks the base-system OLTP characterization against
// the paper's Section 3.1/3.2 numbers (loose bands; the substrate is
// synthetic). Paper: L1I 7.6%, L1D 14.1%, L2 7.4%, IPC 0.5, branch
// mispredict ~11%, dirty misses ~50% of L2 misses.
func TestCalibrationOLTP(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	sc := Scale{OLTPTransactions: 2, OLTPWarmupTx: 1, MaxCycles: 400_000_000}
	rep, err := RunOLTP(config.Default(), sc, "oltp-base", oltp.HintNone)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("instr=%d cycles=%d IPC=%.2f idle=%.0f", rep.Instructions, rep.Cycles, rep.IPC(4), rep.IdleCycles)
	t.Logf("missrates: L1I=%.3f L1D=%.3f L2=%.3f dirtyFrac=%.2f", rep.L1IMissRate, rep.L1DMissRate, rep.L2MissRate, rep.DirtyFraction)
	t.Logf("bpred=%.3f iTLB=%.4f dTLB=%.4f syncContention=%.3f", rep.BranchMispred, rep.ITLBMissRate, rep.DTLBMissRate, rep.SyncContention)
	n := rep.Normalized(rep)
	t.Logf("breakdown: CPU=%.2f instr=%.2f read=%.2f write=%.2f sync=%.2f",
		n.CPU(), n[stats.Instr], n.Read(), n[stats.Write], n[stats.Sync])
	t.Logf("read split: L1=%.3f L2=%.3f local=%.3f remote=%.3f dirty=%.3f dTLB=%.3f",
		n[stats.ReadL1], n[stats.ReadL2], n[stats.ReadLocal], n[stats.ReadRemote], n[stats.ReadDirty], n[stats.ReadDTLB])
	t.Logf("migratory: sharedW=%.2f readDirty=%.2f lines=%d pcs=%d lineConc=%.2f pcConc=%.2f wCS=%.2f rCS=%.2f",
		rep.SharedWriteMigratory, rep.ReadDirtyMigratory, rep.MigratoryLines, rep.MigratoryPCs,
		rep.LineConcentration, rep.PCConcentration, rep.WriteCSFraction, rep.ReadCSFraction)

	if ipc := rep.IPC(4); ipc < 0.25 || ipc > 1.2 {
		t.Errorf("OLTP IPC %.2f far from paper's 0.5", ipc)
	}
	if rep.L1IMissRate < 0.02 || rep.L1IMissRate > 0.15 {
		t.Errorf("L1I miss rate %.3f far from paper's 0.076", rep.L1IMissRate)
	}
	if rep.L1DMissRate < 0.05 || rep.L1DMissRate > 0.25 {
		t.Errorf("L1D miss rate %.3f far from paper's 0.141", rep.L1DMissRate)
	}
	if rep.L2MissRate < 0.02 || rep.L2MissRate > 0.20 {
		t.Errorf("L2 miss rate %.3f far from paper's 0.074", rep.L2MissRate)
	}
	if rep.SharedWriteMigratory < 0.5 {
		t.Errorf("migratory shared-write fraction %.2f, paper reports 0.88", rep.SharedWriteMigratory)
	}
	if rep.ReadDirtyMigratory < 0.4 {
		t.Errorf("migratory dirty-read fraction %.2f, paper reports 0.79", rep.ReadDirtyMigratory)
	}
}

// TestCalibrationDSS checks the DSS characterization. Paper: L1I ~0.0%,
// L1D 0.9%, L2 23.1%, IPC 2.2, negligible locking.
func TestCalibrationDSS(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	sc := Scale{DSSRows: 20_000, MaxCycles: 400_000_000}
	rep, err := RunDSS(config.Default(), sc, "dss-base")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("instr=%d cycles=%d IPC=%.2f idle=%.0f", rep.Instructions, rep.Cycles, rep.IPC(4), rep.IdleCycles)
	t.Logf("missrates: L1I=%.4f L1D=%.4f L2=%.3f", rep.L1IMissRate, rep.L1DMissRate, rep.L2MissRate)
	n := rep.Normalized(rep)
	t.Logf("breakdown: CPU=%.2f instr=%.2f read=%.2f write=%.2f sync=%.2f",
		n.CPU(), n[stats.Instr], n.Read(), n[stats.Write], n[stats.Sync])
	t.Logf("bpred=%.3f", rep.BranchMispred)

	if ipc := rep.IPC(4); ipc < 1.2 || ipc > 3.5 {
		t.Errorf("DSS IPC %.2f far from paper's 2.2", ipc)
	}
	if rep.L1IMissRate > 0.01 {
		t.Errorf("DSS L1I miss rate %.4f should be ~0", rep.L1IMissRate)
	}
	// The paper reports 0.9%; our scan keeps Oracle's miss *structure* but
	// at ~80 instructions/row instead of ~350 (see EXPERIMENTS.md), which
	// scales the per-instruction miss rate up by ~4x.
	if rep.L1DMissRate > 0.08 {
		t.Errorf("DSS L1D miss rate %.4f too far from paper's 0.009", rep.L1DMissRate)
	}
	if rep.L2MissRate < 0.08 || rep.L2MissRate > 0.6 {
		t.Errorf("DSS L2 miss rate %.3f far from paper's 0.231", rep.L2MissRate)
	}
}
