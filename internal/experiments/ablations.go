package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload/oltp"
)

// AblationLineSize reproduces the Section 4.1 discussion: an alternative to
// the instruction stream buffer is a larger L1<->L2 transfer unit. The
// paper's experiments with 128-byte lines achieved miss-rate reductions
// comparable to stream buffers, but stream buffers adapt to longer streams
// without displacing useful data. Rows: base 64B, 128B lines, 64B + 4-entry
// stream buffer.
func AblationLineSize(sc Scale) (*Result, error) {
	type variant struct {
		label string
		mod   func(*config.Config)
	}
	variants := []variant{
		{"64B-lines", func(c *config.Config) {}},
		{"128B-lines", func(c *config.Config) {
			c.L1I.LineBytes = 128
			c.L1D.LineBytes = 128
			c.L2.LineBytes = 128
			c.DataFlits = 16 // twice the data per transfer
		}},
		{"64B+streambuf-4", func(c *config.Config) { c.StreamBufEntries = 4 }},
	}
	var pts []figPoint
	for _, v := range variants {
		cfg := config.Default()
		v.mod(&cfg)
		pts = append(pts, figPoint{v.label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, v.label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	var sb []string
	for i, v := range variants {
		sb = append(sb, fmt.Sprintf("%-20s L1I miss/instr %.3f", v.label, reports[i].L1IMissRate))
	}
	tables := []string{stats.FormatBreakdownTable(reports)}
	for _, s := range sb {
		tables = append(tables, s+"\n")
	}
	return &Result{
		ID: "ext-linesize", Title: "Ablation: larger transfer unit vs stream buffer (Sec 4.1)",
		Reports: reports, Tables: tables,
	}, nil
}

// AblationFlushInvalidate reproduces the Section 4.2 finding that the flush
// primitive must keep a clean copy in the cache: an invalidating flush
// loses to the base system because the flusher's own subsequent reads miss.
func AblationFlushInvalidate(sc Scale) (*Result, error) {
	type variant struct {
		label string
		keep  bool
		hints oltp.HintLevel
	}
	variants := []variant{
		{"base+sb4", true, oltp.HintNone},
		{"flush-keep-clean", true, oltp.HintFlush},
		{"flush-invalidate", false, oltp.HintFlush},
	}
	var pts []figPoint
	for _, v := range variants {
		cfg := config.Default()
		cfg.StreamBufEntries = 4
		cfg.FlushKeepsClean = v.keep
		pts = append(pts, figPoint{v.label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, v.label, v.hints)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "ext-flushinv", Title: "Ablation: flush keeping vs invalidating the local copy (Sec 4.2)",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports)},
	}, nil
}

// AblationBranchPenalty sweeps the pipeline-restart penalty to show how
// sensitive OLTP is to front-end redirect cost (the paper's mispredict
// handling stalls fetch until resolution; the restart adds on top).
func AblationBranchPenalty(sc Scale) (*Result, error) {
	var pts []figPoint
	for _, pen := range []int{2, 4, 8, 16} {
		cfg := config.Default()
		cfg.BranchRestart = pen
		label := fmt.Sprintf("restart-%d", pen)
		pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "ext-restart", Title: "Ablation: pipeline restart penalty",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports)},
	}, nil
}

func init() {
	All = append(All,
		Experiment{"ext-linesize", AblationLineSize, "ablation: 128B lines vs stream buffer (Sec 4.1 discussion)"},
		Experiment{"ext-flushinv", AblationFlushInvalidate, "ablation: flush keep-clean vs invalidate (Sec 4.2 finding)"},
		Experiment{"ext-restart", AblationBranchPenalty, "ablation: branch restart penalty"},
	)
}
