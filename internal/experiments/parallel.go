package experiments

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/runner"
	"repro/internal/stats"
)

// figPoint is one simulation of a multi-point figure: a label plus the
// closure that runs it under a (possibly per-point) Scale.
type figPoint struct {
	label string
	run   func(sc Scale) (*stats.Report, error)
}

// runPoints executes a figure's points and returns their reports in input
// order. Points run through the internal/runner worker pool with
// sc.Parallel workers (0 = min(GOMAXPROCS, number of points); 1 = serial).
// A figure with a Tracer attached always runs serially: the tracer is
// shared mutable state whose event order must stay deterministic. Each
// point builds its own core.System, so parallel execution is bit-identical
// to serial — the orchestration tests assert it.
//
// Errors keep serial semantics: the first failing point in input order is
// returned, regardless of completion order.
func runPoints(sc Scale, pts []figPoint) ([]*stats.Report, error) {
	workers := sc.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	if sc.Tracer != nil {
		workers = 1
	}
	// Oversubscription guard: each point may itself run SimThreads worker
	// goroutines (core.RunOptions.SimThreads), so the pool's effective
	// demand is workers × SimThreads. Beyond GOMAXPROCS the extra threads
	// only add scheduling churn; clamp the per-point threads and say so.
	if st := sc.SimThreads; st > 1 {
		if gmp := runtime.GOMAXPROCS(0); workers*st > gmp {
			clamped := gmp / workers
			if clamped < 1 {
				clamped = 1
			}
			if sc.Logger != nil {
				sc.Logger.Warn("sim-threads oversubscribed; clamping per-point threads",
					"parallel", workers,
					"sim_threads", st,
					"gomaxprocs", gmp,
					"sim_threads_clamped", clamped)
			}
			sc.SimThreads = clamped
		}
	}
	if workers <= 1 {
		reports := make([]*stats.Report, 0, len(pts))
		for _, p := range pts {
			rep, err := p.run(sc)
			if err != nil {
				return nil, err
			}
			reports = append(reports, rep)
		}
		return reports, nil
	}

	reports := make([]*stats.Report, len(pts))
	errs := make([]error, len(pts))
	rpts := make([]runner.Point, len(pts))
	for i := range pts {
		i := i
		p := pts[i]
		rpts[i] = runner.Point{
			ID:        p.label,
			MaxCycles: sc.MaxCycles,
			Run: func(ctx context.Context, _ runner.Attempt) (any, error) {
				psc := sc
				psc.Context = ctx // pool deadline + sweep cancel (parent is sc.Context)
				rep, err := p.run(psc)
				reports[i], errs[i] = rep, err
				return rep, err
			},
		}
	}
	parent := sc.Context
	if parent == nil {
		parent = context.Background()
	}
	// Deterministic points gain nothing from retries; a failure is a real
	// result. No journal: figure points are cheap relative to sweep points
	// and the caller owns durability (cmd/sweep journals whole experiments).
	_, poolErr := runner.Run(parent, rpts, runner.Options{
		Workers:     workers,
		MaxAttempts: 1,
		Logger:      sc.Logger,
	})
	for i := range pts {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	if poolErr != nil {
		return nil, poolErr
	}
	for i := range pts {
		if reports[i] == nil {
			return nil, fmt.Errorf("experiments: point %q did not run", pts[i].label)
		}
	}
	return reports, nil
}
