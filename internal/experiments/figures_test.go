package experiments

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// The shape tests verify that each figure reproduces the paper's
// qualitative result — who wins, by roughly what factor — at QuickScale.
// They are skipped under -short (each runs several full simulations).

func TestFig1Params(t *testing.T) {
	res := Fig1Params()
	if len(res.Tables) != 1 || len(res.Tables[0]) == 0 {
		t.Fatal("empty parameter table")
	}
}

func TestFig2aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := Fig2a(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	if len(res.Reports) != 8 {
		t.Fatalf("want 8 configurations, got %d", len(res.Reports))
	}
	base := res.Reports[0].ExecTime() // inorder-1way
	ooo4 := res.Reports[6].ExecTime() // ooo-4way
	speedup := base / ooo4
	t.Logf("OLTP inorder-1way/ooo-4way speedup = %.2f (paper ~1.5)", speedup)
	if speedup < 1.2 || speedup > 2.2 {
		t.Errorf("OLTP ILP speedup %.2f outside the paper's regime", speedup)
	}
	// Out-of-order must beat in-order at equal width.
	for i := 0; i < 4; i++ {
		if res.Reports[4+i].ExecTime() >= res.Reports[i].ExecTime() {
			t.Errorf("OOO not faster than in-order at width index %d", i)
		}
	}
}

func TestFig3aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := Fig3a(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	base := res.Reports[0].ExecTime()
	ooo4 := res.Reports[6].ExecTime()
	speedup := base / ooo4
	t.Logf("DSS inorder-1way/ooo-4way speedup = %.2f (paper ~2.6)", speedup)
	if speedup < 1.7 || speedup > 3.5 {
		t.Errorf("DSS ILP speedup %.2f outside the paper's regime", speedup)
	}
	// The paper's contrast: DSS gains exceed OLTP gains. (Checked against
	// the OLTP run only when both tests run; here assert the DSS factor
	// alone is in the high regime.)
}

func TestFig2bWindowLevelsOff(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := Fig2b(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	// Performance improves with window size but levels off beyond 64:
	// the 64->128 step must be much smaller than the 16->64 step.
	e16 := res.Reports[0].ExecTime()
	e64 := res.Reports[2].ExecTime()
	e128 := res.Reports[3].ExecTime()
	if e64 >= e16 {
		t.Errorf("window 64 (%.0f) not faster than window 16 (%.0f)", e64, e16)
	}
	bigStep := e16 - e64
	smallStep := e64 - e128
	if smallStep > bigStep*0.8 {
		t.Errorf("no leveling off: 16->64 gain %.0f vs 64->128 gain %.0f", bigStep, smallStep)
	}
}

func TestFig2cMSHRs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := Fig2c(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	// For OLTP, two outstanding misses achieve most of the benefit.
	e1 := res.Reports[0].ExecTime()
	e2 := res.Reports[1].ExecTime()
	e8 := res.Reports[3].ExecTime()
	if e2 >= e1 {
		t.Errorf("2 MSHRs (%.0f) not faster than 1 (%.0f)", e2, e1)
	}
	if total, got := e1-e8, e1-e2; total > 0 && got/total < 0.4 {
		t.Errorf("2 MSHRs capture only %.0f%% of the 1->8 benefit; paper says most", got/total*100)
	}
}

func TestFig4LimitStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := Fig4(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	base := res.Reports[0].ExecTime()
	fus := res.Reports[1].ExecTime()
	bpred := res.Reports[2].ExecTime()
	icache := res.Reports[3].ExecTime()
	all := res.Reports[4].ExecTime()
	// Functional units are not a bottleneck for OLTP.
	if (base-fus)/base > 0.05 {
		t.Errorf("infinite FUs gained %.1f%%; paper says FUs are no bottleneck", (base-fus)/base*100)
	}
	// Perfect branch prediction gains only a few percent.
	if (base-bpred)/base > 0.20 {
		t.Errorf("perfect bpred gained %.1f%%; paper reports ~6%%", (base-bpred)/base*100)
	}
	// Perfect I-cache is the largest single gain.
	if icache >= fus || icache >= bpred {
		t.Error("perfect icache is not the largest single-factor gain")
	}
	// The combined configuration is the fastest and leaves dirty misses
	// dominant.
	if all >= icache {
		t.Error("combined ideal configuration not fastest")
	}
	n := res.Reports[4].Normalized(res.Reports[4])
	if n[stats.ReadDirty] < n[stats.ReadL2] {
		t.Logf("note: dirty (%.3f) vs L2 (%.3f) in ideal config", n[stats.ReadDirty], n[stats.ReadL2])
	}
}

func TestFig5UniVsMulti(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := Fig5(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	// The robust invariant (the paper's core point): the uniprocessor has
	// no data communication misses, the multiprocessor does — and with
	// them, synchronization time. (The instruction/read *share* ordering
	// the paper plots also holds at DefaultScale — see EXPERIMENTS.md —
	// but is noisy at QuickScale, so it is logged rather than asserted.)
	oltpUni := res.Reports[0].Normalized(res.Reports[0])
	oltpMP := res.Reports[1].Normalized(res.Reports[1])
	t.Logf("OLTP instr share: uni %.3f vs MP %.3f; read share: uni %.3f vs MP %.3f",
		oltpUni[stats.Instr], oltpMP[stats.Instr], oltpUni.Read(), oltpMP.Read())
	if oltpUni[stats.ReadDirty] != 0 {
		t.Errorf("uniprocessor has dirty-miss time %.3f", oltpUni[stats.ReadDirty])
	}
	if oltpMP[stats.ReadDirty] == 0 {
		t.Error("multiprocessor shows no dirty-miss time")
	}
	if oltpMP[stats.Sync] <= oltpUni[stats.Sync] {
		t.Errorf("MP sync share %.3f not larger than uni %.3f",
			oltpMP[stats.Sync], oltpUni[stats.Sync])
	}
}

func TestFig6Consistency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := Fig6(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	// Reports: [OLTP plain-{SC,PC,RC}, pf-{...}, spec-{...}, then DSS x9].
	for wl := 0; wl < 2; wl++ {
		g := res.Reports[wl*9 : wl*9+9]
		scPlain, rcPlain := g[0].ExecTime(), g[2].ExecTime()
		scSpec, rcSpec := g[6].ExecTime(), g[8].ExecTime()
		name := []string{"OLTP", "DSS"}[wl]
		if rcPlain >= scPlain {
			t.Errorf("%s: plain RC (%.0f) not faster than plain SC (%.0f)", name, rcPlain, scPlain)
		}
		reduction := (scPlain - scSpec) / scPlain
		gap := (scSpec - rcSpec) / rcSpec
		t.Logf("%s: SC plain->spec reduction %.0f%% (paper 26-37%%); SC+spec vs RC gap %.0f%% (paper 10-15%%)",
			name, reduction*100, gap*100)
		if reduction < 0.05 {
			t.Errorf("%s: speculative techniques gain only %.1f%% on SC", name, reduction*100)
		}
		// OLTP lands on the paper's 10-15% band; DSS's residual gap is
		// larger here because its work-area *write* misses (which
		// speculation cannot hide under SC — only loads speculate) are a
		// bigger per-instruction share than in Oracle's ~350-instr/row
		// scan, and at QuickScale much of the work area is cold.
		limit := 0.45
		if name == "DSS" {
			limit = 0.80
		}
		if gap > limit {
			t.Errorf("%s: SC+spec still %.0f%% behind RC; optimizations ineffective", name, gap*100)
		}
	}
}

func TestFig7aStreamBuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := Fig7a(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	base := res.Reports[0].ExecTime()
	sb4 := res.Reports[2].ExecTime()
	perfect := res.Reports[4].ExecTime()
	red := (base - sb4) / base
	t.Logf("4-entry stream buffer reduction %.0f%% (paper ~16-17%%)", red*100)
	if sb4 >= base {
		t.Error("stream buffer did not help")
	}
	if perfect > sb4 {
		t.Error("perfect icache slower than stream buffer (impossible)")
	}
	// Within reach of perfect icache (paper: within 15%).
	if (sb4-perfect)/perfect > 0.5 {
		t.Errorf("stream buffer %.0f%% from perfect icache; paper says ~15%%", (sb4-perfect)/perfect*100)
	}
}

func TestFig7bMigratoryHints(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := Fig7b(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	base := res.Reports[0].ExecTime()
	flush := res.Reports[1].ExecTime()
	both := res.Reports[2].ExecTime()
	bound := res.Reports[3].ExecTime()
	t.Logf("flush %.1f%%, flush+prefetch %.1f%%, bound %.1f%% reductions (paper 7.5/12/9)",
		(base-flush)/base*100, (base-both)/base*100, (base-bound)/base*100)
	if flush >= base {
		t.Error("flush hints did not help")
	}
	if both >= flush {
		t.Error("adding prefetch hints did not further help")
	}
	if bound >= base {
		t.Error("migratory-latency bound did not help")
	}
	// Flush benefit must show up as a dirty->memory conversion: the dirty
	// read component shrinks.
	nb := res.Reports[0].Normalized(res.Reports[0])
	nf := res.Reports[1].Normalized(res.Reports[0])
	if nf[stats.ReadDirty] >= nb[stats.ReadDirty] {
		t.Errorf("flush did not reduce dirty-read stall (%.3f -> %.3f)",
			nb[stats.ReadDirty], nf[stats.ReadDirty])
	}
}

func TestMissRatesTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := MissRates(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	o, d := res.Reports[0], res.Reports[1]
	// The OLTP/DSS contrast must hold: OLTP has far higher L1 miss rates,
	// DSS has the higher L2 (capacity) miss rate and much higher IPC.
	if o.L1IMissRate <= d.L1IMissRate {
		t.Error("OLTP L1I miss rate should exceed DSS's")
	}
	if o.L1DMissRate <= d.L1DMissRate {
		t.Error("OLTP L1D miss rate should exceed DSS's")
	}
	if d.L2MissRate <= o.L2MissRate {
		t.Error("DSS L2 miss rate should exceed OLTP's")
	}
	cfg := config.Default()
	if d.IPC(cfg.Nodes) <= o.IPC(cfg.Nodes)*2 {
		t.Errorf("DSS IPC %.2f should be well above OLTP's %.2f (paper: 2.2 vs 0.5)",
			d.IPC(cfg.Nodes), o.IPC(cfg.Nodes))
	}
}

func TestMigratoryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := MigratoryCharacterization(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Render())
	r := res.Reports[0]
	if r.SharedWriteMigratory < 0.4 {
		t.Errorf("migratory shared-write fraction %.2f too low (paper 0.88)", r.SharedWriteMigratory)
	}
	if r.ReadDirtyMigratory < 0.5 {
		t.Errorf("migratory dirty-read fraction %.2f too low (paper 0.79)", r.ReadDirtyMigratory)
	}
	if r.WriteCSFraction < 0.4 {
		t.Errorf("migratory writes in CS %.2f too low (paper 0.74)", r.WriteCSFraction)
	}
}
