// Package experiments reproduces every table and figure of the paper's
// evaluation. Each FigNN function runs the simulated machine (internal/core)
// over the OLTP and/or DSS workloads under the figure's configurations and
// returns the same rows/series the paper plots, normalized to the figure's
// leftmost bar. The cmd/sweep tool and the repository benchmarks call these.
package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tracing"
	"repro/internal/workload/dss"
	"repro/internal/workload/oltp"
)

// Scale controls how much work each run simulates. The paper simulated
// ~200M instructions; these defaults simulate a few million, which is
// enough for the shapes (who wins, by what factor) while staying fast.
type Scale struct {
	OLTPTransactions int // per server process
	OLTPWarmupTx     int // excluded from statistics
	DSSRows          int // per query server
	MaxCycles        uint64

	// Context, when non-nil, is threaded into every run so callers
	// (cmd/sweep) can time-bound or cancel a whole sweep. A nil Context
	// leaves cancellation disabled.
	Context context.Context

	// WatchdogWindow overrides the forward-progress watchdog window in
	// cycles; 0 keeps core.DefaultWatchdogWindow.
	WatchdogWindow uint64
	// DisableWatchdog turns the forward-progress watchdog off entirely.
	DisableWatchdog bool

	// Faults, when Enabled, overlays the deterministic fault injector
	// profile onto every machine configuration the experiments build
	// (chaos sweeps). Points built from a faulted scale are marked
	// retryable: the orchestration layer re-runs fault-induced failures
	// with this profile cleared.
	Faults config.FaultConfig

	// LatchPolicy, when not LatchPlain, overlays the lock-path strategy
	// (paper-style prefetch+flush latch hints, or HTM latch elision) onto
	// every machine configuration the experiments build — the sweep axis
	// for comparing synchronization treatments across the whole evaluation.
	// The zero value leaves each experiment's own configuration untouched,
	// so default sweeps are byte-identical to the pre-elision simulator.
	LatchPolicy config.LatchPolicy

	// Telemetry, when non-nil, is called once per run with the run's
	// label and returns the interval-telemetry pipeline to attach (nil =
	// no telemetry for that run). The runner registers workload probes
	// (OLTP txns_committed, DSS rows_scanned), drives sampling through
	// core.Run, and closes the pipeline when the run finishes — so a
	// sweep gets one series file per run point.
	Telemetry func(label string) *telemetry.Pipeline

	// Checkpoint, when non-nil, is called once per run with the run's
	// label and returns the mid-run checkpoint options to attach (nil =
	// no checkpointing for that run). The runner arms the workload's
	// record/replay layer, fills in the options' Workload hook, and
	// threads them into core.Run. Checkpointing is a pure observer — the
	// simulated outcome is bit-identical with or without it — so, like
	// Telemetry, it does not participate in the spec hash.
	Checkpoint func(label string) *core.CheckpointOptions

	// Restore, when non-empty, is a checkpoint file to resume each run
	// from: the run loads it, verifies integrity and spec identity,
	// rewinds the freshly built machine and workload to the saved cycle,
	// and continues to completion. A missing, truncated, corrupt, or
	// spec-mismatched checkpoint falls back to running from scratch (the
	// reason is reported through RestoreFallback when set). Requires a
	// Checkpoint factory: resume needs the record/replay layer armed.
	Restore string

	// RestoreFallback, when non-nil, is told why a Restore checkpoint
	// was not used and the run started from scratch instead.
	RestoreFallback func(label string, err error)

	// ResumeFromCheckpoints, when set (and Restore is empty), resumes
	// each run from its own Checkpoint path when a valid checkpoint
	// already exists there — the retry/takeover discipline: a previous
	// attempt's partial progress is picked up instead of re-simulated.
	// A missing or invalid file runs from scratch.
	ResumeFromCheckpoints bool

	// Logger, when non-nil, emits structured per-point lifecycle lines
	// through the internal/runner pool (start/done with point, spec_hash,
	// status). Like Telemetry and Tracer it is a pure observer on the
	// orchestration path — never core.Run's per-cycle path — and does not
	// participate in the spec hash.
	Logger *slog.Logger

	// Tracer, when non-nil, records the run's cycle-resolved event stream
	// (internal/tracing). Like Telemetry it is a pure observer and does not
	// participate in the spec hash. The runner installs the workload's
	// PC-to-routine resolver; the caller owns export. Intended for single
	// runs (cmd/dbsim) — a sweep would overwrite the tracer per point.
	Tracer *tracing.Tracer

	// Parallel is the number of worker goroutines each multi-point figure
	// uses to run its points (through the internal/runner pool). 0 means
	// min(GOMAXPROCS, number of points); 1 forces serial execution.
	// Parallelism is bit-identical to serial execution (each point is an
	// independent deterministic simulation), so it does not participate in
	// the spec hash. Figures with a Tracer attached always run serially:
	// the tracer is shared mutable state.
	Parallel int

	// DisableFastForward turns off the event-driven idle-cycle skip in
	// every run (core.RunOptions.DisableFastForward). Fast-forward is
	// bit-identical by construction, so this does not participate in the
	// spec hash; the equivalence tests use it as the reference arm.
	DisableFastForward bool

	// SimThreads is threaded into every run as
	// core.RunOptions.SimThreads: the number of worker goroutines one
	// simulation may use to apply machine-wide quiet fast-forward spans
	// across simulated cores. 0 or 1 is the serial engine, and any value
	// is bit-identical to it, so SimThreads does not participate in the
	// spec hash. It multiplies with Parallel (points × threads per
	// point); the runner pool clamps the product to GOMAXPROCS.
	SimThreads int
}

// pipelineFor resolves the per-run telemetry pipeline (nil when disabled).
func (sc *Scale) pipelineFor(label string) *telemetry.Pipeline {
	if sc.Telemetry == nil {
		return nil
	}
	return sc.Telemetry(label)
}

// checkpointFor resolves the per-run checkpoint options (nil when disabled).
func (sc *Scale) checkpointFor(label string) *core.CheckpointOptions {
	if sc.Checkpoint == nil {
		return nil
	}
	return sc.Checkpoint(label)
}

// resumeState arms workload checkpointing and, when Scale.Restore names a
// checkpoint file, loads and validates it. Load failures (missing,
// truncated, corrupt, wrong spec) are reported through RestoreFallback and
// return a nil state so the caller runs from scratch — a half-written
// checkpoint must never poison a sweep point, only cost re-simulation.
func (sc *Scale) resumeState(label string, ck *core.CheckpointOptions, w core.WorkloadCheckpointer) (*core.MachineState, error) {
	if ck != nil {
		ck.Workload = w
	}
	path := sc.Restore
	if path == "" && sc.ResumeFromCheckpoints && ck != nil {
		path = ck.Path
	}
	if path == "" {
		return nil, nil
	}
	if ck == nil {
		return nil, fmt.Errorf("experiments: %q: Scale.Restore requires a Checkpoint factory", label)
	}
	st, err := core.LoadCheckpoint(path, ck.SpecHash)
	if err != nil {
		if sc.RestoreFallback != nil {
			sc.RestoreFallback(label, err)
		}
		return nil, nil
	}
	return st, nil
}

// DefaultScale is used by cmd/sweep and EXPERIMENTS.md.
var DefaultScale = Scale{
	OLTPTransactions: 3,
	OLTPWarmupTx:     1,
	DSSRows:          40_000,
	MaxCycles:        600_000_000,
}

// QuickScale keeps benchmark iterations short.
var QuickScale = Scale{
	OLTPTransactions: 1,
	OLTPWarmupTx:     0,
	DSSRows:          8_000,
	MaxCycles:        200_000_000,
}

// RunOLTP simulates the OLTP workload on machine cfg and returns the report.
func RunOLTP(cfg config.Config, sc Scale, label string, hints oltp.HintLevel) (*stats.Report, error) {
	if sc.Faults.Enabled {
		cfg.Faults = sc.Faults
	}
	if sc.LatchPolicy != config.LatchPlain {
		cfg.LatchPolicy = sc.LatchPolicy
	}
	wcfg := oltp.DefaultConfig(cfg.Nodes)
	wcfg.TransactionsPerProcess = sc.OLTPTransactions + sc.OLTPWarmupTx
	wcfg.Hints = hints
	w := oltp.New(wcfg)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	for p := 0; p < wcfg.Processes; p++ {
		sys.AddProcess(p%cfg.Nodes, w.Stream(p))
	}
	pipe := sc.pipelineFor(label)
	if pipe != nil {
		pipe.SetTag("workload", "oltp")
		pipe.SetTag("label", label)
		pipe.RegisterProbe("txns_committed", func() uint64 { return w.Transactions })
		defer func() { _ = pipe.Close() }()
	}
	if sc.Tracer != nil {
		sc.Tracer.SetResolver(w.Resolve)
	}
	ck := sc.checkpointFor(label)
	if ck != nil {
		w.EnableCheckpointing()
	}
	resume, err := sc.resumeState(label, ck, w)
	if err != nil {
		return nil, fmt.Errorf("experiments: OLTP %q: %w", label, err)
	}
	warmup := uint64(sc.OLTPWarmupTx) * uint64(wcfg.Processes) * w.ApproxInstrPerTx()
	opt := core.RunOptions{
		Label:              label,
		WarmupInstructions: warmup,
		MaxCycles:          sc.MaxCycles,
		Context:            sc.Context,
		WatchdogWindow:     sc.WatchdogWindow,
		DisableWatchdog:    sc.DisableWatchdog,
		Telemetry:          pipe,
		Tracer:             sc.Tracer,
		DisableFastForward: sc.DisableFastForward,
		Checkpoint:         ck,
		SimThreads:         sc.SimThreads,
	}
	var rep *stats.Report
	if resume != nil {
		rep, err = sys.RestoreAndRun(opt, resume)
	} else {
		rep, err = sys.Run(opt)
	}
	if err != nil {
		return rep, fmt.Errorf("experiments: OLTP %q: %w", label, err)
	}
	if err := w.Err(); err != nil {
		return rep, fmt.Errorf("experiments: OLTP %q: workload failed: %w", label, err)
	}
	if err := w.TPCB().CheckConsistency(); err != nil {
		return rep, fmt.Errorf("experiments: OLTP %q: %w", label, err)
	}
	return rep, nil
}

// RunDSS simulates the DSS workload on machine cfg and returns the report.
func RunDSS(cfg config.Config, sc Scale, label string) (*stats.Report, error) {
	if sc.Faults.Enabled {
		cfg.Faults = sc.Faults
	}
	if sc.LatchPolicy != config.LatchPlain {
		cfg.LatchPolicy = sc.LatchPolicy
	}
	wcfg := dss.DefaultConfig(cfg.Nodes)
	wcfg.RowsPerProcess = sc.DSSRows
	w := dss.New(wcfg)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	for p := 0; p < wcfg.Processes; p++ {
		sys.AddProcess(p%cfg.Nodes, w.Stream(p))
	}
	pipe := sc.pipelineFor(label)
	if pipe != nil {
		pipe.SetTag("workload", "dss")
		pipe.SetTag("label", label)
		pipe.RegisterProbe("rows_scanned", func() uint64 { return w.RowsScanned })
		defer func() { _ = pipe.Close() }()
	}
	if sc.Tracer != nil {
		sc.Tracer.SetResolver(w.Resolve)
	}
	ck := sc.checkpointFor(label)
	if ck != nil {
		w.EnableCheckpointing()
	}
	resume, err := sc.resumeState(label, ck, w)
	if err != nil {
		return nil, fmt.Errorf("experiments: DSS %q: %w", label, err)
	}
	// Warm up over the first ~30% of the scan (one pass of the per-process
	// work area through the L2).
	warmup := uint64(wcfg.Processes) * w.ApproxInstrPerProcess() * 3 / 10
	opt := core.RunOptions{
		Label:              label,
		WarmupInstructions: warmup,
		MaxCycles:          sc.MaxCycles,
		Context:            sc.Context,
		WatchdogWindow:     sc.WatchdogWindow,
		DisableWatchdog:    sc.DisableWatchdog,
		Telemetry:          pipe,
		Tracer:             sc.Tracer,
		DisableFastForward: sc.DisableFastForward,
		Checkpoint:         ck,
		SimThreads:         sc.SimThreads,
	}
	var rep *stats.Report
	if resume != nil {
		rep, err = sys.RestoreAndRun(opt, resume)
	} else {
		rep, err = sys.Run(opt)
	}
	if err != nil {
		return rep, fmt.Errorf("experiments: DSS %q: %w", label, err)
	}
	return rep, nil
}

// Result is one experiment's output: its rows plus rendered tables.
type Result struct {
	ID      string
	Title   string
	Reports []*stats.Report
	Tables  []string // rendered tables, ready to print
}

// Render returns the result as printable text.
func (r *Result) Render() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t + "\n"
	}
	return out
}

// PointSpec is the JSON identity of one experiment run point. Its runner
// spec hash keys the durable sweep journal: any change to the experiment
// id, the scale, or the fault profile re-runs the point on -resume instead
// of reusing a stale result.
type PointSpec struct {
	Experiment string `json:"experiment"`

	OLTPTransactions int    `json:"oltp_tx"`
	OLTPWarmupTx     int    `json:"oltp_warmup_tx"`
	DSSRows          int    `json:"dss_rows"`
	MaxCycles        uint64 `json:"max_cycles"`
	WatchdogWindow   uint64 `json:"watchdog_window,omitempty"`
	DisableWatchdog  bool   `json:"disable_watchdog,omitempty"`

	Faults config.FaultConfig `json:"faults"`

	// LatchPolicy is omitted when LatchPlain (0), so every pre-elision
	// spec keeps its original hash and journaled results stay valid.
	LatchPolicy config.LatchPolicy `json:"latch_policy,omitempty"`
}

// Spec returns the hashed identity of experiment id under sc. Context,
// Telemetry, and Tracer deliberately do not participate: cancellation
// plumbing and observer sinks change no simulated outcome.
func (sc Scale) Spec(id string) PointSpec {
	return PointSpec{
		Experiment:       id,
		OLTPTransactions: sc.OLTPTransactions,
		OLTPWarmupTx:     sc.OLTPWarmupTx,
		DSSRows:          sc.DSSRows,
		MaxCycles:        sc.MaxCycles,
		WatchdogWindow:   sc.WatchdogWindow,
		DisableWatchdog:  sc.DisableWatchdog,
		Faults:           sc.Faults,
		LatchPolicy:      sc.LatchPolicy,
	}
}

// sanitizeLabel maps a run label onto a safe filename fragment.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, label)
}

// maxRunsPerExperiment is the largest number of simulations a single
// experiment performs (fig6: 2 workloads x 9 configurations). The derived
// per-point wall-clock deadline budgets for the worst case.
const maxRunsPerExperiment = 18

// Points adapts experiments to orchestration run points (internal/runner):
// each point threads the pool's per-point context into the runs, clears
// the fault profile when the pool retries a fault-induced failure, and is
// journaled under sc's spec hash. perPoint, when non-nil, derives each
// point's scale from the base (cmd/sweep uses it to attach per-experiment
// telemetry factories); it must only change observers — the spec hash is
// computed from the base scale.
func Points(exps []Experiment, sc Scale, perPoint func(id string, sc Scale) Scale) []runner.Point {
	pts := make([]runner.Point, 0, len(exps))
	for _, e := range exps {
		e := e
		pts = append(pts, runner.Point{
			ID:        e.ID,
			Spec:      sc.Spec(e.ID),
			MaxCycles: sc.MaxCycles * maxRunsPerExperiment,
			Faulty:    sc.Faults.Enabled,
			Run: func(ctx context.Context, att runner.Attempt) (any, error) {
				esc := sc
				if perPoint != nil {
					esc = perPoint(e.ID, sc)
				}
				esc.Context = ctx
				if att.DisableFaults {
					esc.Faults = config.FaultConfig{}
				}
				armCheckpoints(&esc, e.ID, att.CheckpointPath)
				return e.Run(esc)
			},
		})
	}
	return pts
}

// armCheckpoints wires the pool-supplied checkpoint path prefix into a
// point's effective scale (shared by the local grid builder Points and
// the remote worker's PointFromSpec). Every run of the experiment
// checkpoints under the prefix (one file per run label) and later
// attempts resume from those files. The spec hash is taken from the
// *effective* scale, so a fault-disabled retry — a different simulation
// — rejects the faulted attempt's checkpoints and restarts clean.
func armCheckpoints(esc *Scale, id, prefix string) {
	if prefix == "" || esc.Checkpoint != nil {
		return
	}
	spec := runner.SpecHash(esc.Spec(id))
	esc.Checkpoint = func(label string) *core.CheckpointOptions {
		return &core.CheckpointOptions{
			Path:     prefix + "." + sanitizeLabel(label) + ".ckpt",
			SpecHash: spec + "/" + label,
		}
	}
	esc.ResumeFromCheckpoints = true
}
