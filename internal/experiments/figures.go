package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload/oltp"
)

// Fig1Params renders the Figure 1 parameter table from the default config.
func Fig1Params() *Result {
	cfg := config.Default()
	var sb strings.Builder
	row := func(k string, v interface{}) { fmt.Fprintf(&sb, "%-36s %v\n", k, v) }
	row("Processors", cfg.Nodes)
	row("Issue width", cfg.IssueWidth)
	row("Instruction window size", cfg.WindowSize)
	row("Integer ALUs / FPUs / addr-gen", fmt.Sprintf("%d / %d / %d", cfg.IntALUs, cfg.FPUs, cfg.AddrGenUnits))
	row("Branch predictor", fmt.Sprintf("PA(%d,%d)/g(%d,%d) hybrid", cfg.BPredPAEntries, cfg.BPredHistoryBits, cfg.BPredHistoryBits, cfg.BPredHistoryBits))
	row("BTB", fmt.Sprintf("%d-entry %d-way", cfg.BTBEntries, cfg.BTBAssoc))
	row("Return address stack", cfg.RASEntries)
	row("Simultaneous speculated branches", cfg.MaxSpeculatedBr)
	row("Memory queue size", cfg.MemQueueSize)
	row("Cache line size", cfg.LineBytes())
	row("L1 I-cache", fmt.Sprintf("%dKB %d-way, %d cycle", cfg.L1I.SizeBytes>>10, cfg.L1I.Assoc, cfg.L1I.HitCycles))
	row("L1 D-cache", fmt.Sprintf("%dKB %d-way, %d cycle, %d ports", cfg.L1D.SizeBytes>>10, cfg.L1D.Assoc, cfg.L1D.HitCycles, cfg.L1D.Ports))
	row("L2 cache", fmt.Sprintf("%dMB %d-way, %d cycle pipelined", cfg.L2.SizeBytes>>20, cfg.L2.Assoc, cfg.L2.HitCycles))
	row("MSHRs (L1/L2)", fmt.Sprintf("%d / %d", cfg.L1D.MSHRs, cfg.L2.MSHRs))
	row("TLBs", fmt.Sprintf("%d-entry fully associative, %dKB pages, bin-hopping", cfg.DTLBEntries, cfg.PageBytes>>10))
	row("Local read latency (contentionless)", "~100 cycles")
	row("Remote read latency", "~160-180 cycles")
	row("Cache-to-cache read latency", "~280-310 cycles")
	return &Result{ID: "fig1", Title: "Default system parameters", Tables: []string{sb.String()}}
}

// Fig2a reproduces Figure 2(a): OLTP under in-order and out-of-order
// processors with issue widths 1, 2, 4, 8.
func Fig2a(sc Scale) (*Result, error) {
	return issueWidthSweep(sc, "fig2a", true)
}

// Fig3a reproduces Figure 3(a): the DSS issue-width sweep.
func Fig3a(sc Scale) (*Result, error) {
	return issueWidthSweep(sc, "fig3a", false)
}

func issueWidthSweep(sc Scale, id string, isOLTP bool) (*Result, error) {
	var pts []figPoint
	for _, inorder := range []bool{true, false} {
		for _, w := range []int{1, 2, 4, 8} {
			cfg := config.Default()
			cfg.InOrder = inorder
			cfg.IssueWidth = w
			kind := "ooo"
			if inorder {
				kind = "inorder"
			}
			label := fmt.Sprintf("%s-%dway", kind, w)
			pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
				return runWorkload(cfg, sc, label, isOLTP)
			}})
		}
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	title := "Impact of multiple issue and out-of-order execution"
	return &Result{
		ID: id, Title: title, Reports: reports,
		Tables: []string{stats.FormatBreakdownTable(reports)},
	}, nil
}

func runWorkload(cfg config.Config, sc Scale, label string, isOLTP bool) (*stats.Report, error) {
	if isOLTP {
		return RunOLTP(cfg, sc, label, oltp.HintNone)
	}
	return RunDSS(cfg, sc, label)
}

// Fig2b reproduces Figure 2(b): OLTP instruction-window sweep with the
// read-stall magnification.
func Fig2b(sc Scale) (*Result, error) { return windowSweep(sc, "fig2b", true) }

// Fig3b reproduces Figure 3(b): the DSS window sweep.
func Fig3b(sc Scale) (*Result, error) { return windowSweep(sc, "fig3b", false) }

func windowSweep(sc Scale, id string, isOLTP bool) (*Result, error) {
	var pts []figPoint
	for _, ws := range []int{16, 32, 64, 128} {
		cfg := config.Default()
		cfg.WindowSize = ws
		label := fmt.Sprintf("window-%d", ws)
		pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
			return runWorkload(cfg, sc, label, isOLTP)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: id, Title: "Impact of instruction window size", Reports: reports,
		Tables: []string{
			stats.FormatBreakdownTable(reports),
			stats.FormatReadStallTable(reports),
		},
	}, nil
}

// Fig2c reproduces Figure 2(c): OLTP outstanding-miss (MSHR) sweep.
func Fig2c(sc Scale) (*Result, error) { return mshrSweep(sc, "fig2c", true) }

// Fig3c reproduces Figure 3(c): the DSS MSHR sweep.
func Fig3c(sc Scale) (*Result, error) { return mshrSweep(sc, "fig3c", false) }

func mshrSweep(sc Scale, id string, isOLTP bool) (*Result, error) {
	var pts []figPoint
	for _, n := range []int{1, 2, 4, 8} {
		cfg := config.Default()
		cfg.L1D.MSHRs = n
		cfg.L2.MSHRs = n
		label := fmt.Sprintf("mshr-%d", n)
		pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
			return runWorkload(cfg, sc, label, isOLTP)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: id, Title: "Impact of multiple outstanding misses", Reports: reports,
		Tables: []string{
			stats.FormatBreakdownTable(reports),
			stats.FormatReadStallTable(reports),
		},
	}, nil
}

// Fig2dg reproduces Figures 2(d)-(g): OLTP MSHR occupancy distributions at
// the L1 data cache and L2 (all misses and read misses only).
func Fig2dg(sc Scale) (*Result, error) { return occupancy(sc, "fig2d-g", true) }

// Fig3dg reproduces Figures 3(d)-(g) for DSS.
func Fig3dg(sc Scale) (*Result, error) { return occupancy(sc, "fig3d-g", false) }

func occupancy(sc Scale, id string, isOLTP bool) (*Result, error) {
	cfg := config.Default()
	rep, err := runWorkload(cfg, sc, "base", isOLTP)
	if err != nil {
		return nil, err
	}
	labels := []string{"L1 all misses (d)", "L2 all misses (e)", "L1 read misses (f)", "L2 read misses (g)"}
	dists := [][]float64{rep.L1MSHRAll, rep.L2MSHRAll, rep.L1MSHRRead, rep.L2MSHRRead}
	return &Result{
		ID: id, Title: "MSHR occupancy distributions", Reports: []*stats.Report{rep},
		Tables: []string{stats.FormatOccupancyTable(labels, dists)},
	}, nil
}

// Fig4 reproduces Figure 4: factors limiting OLTP performance.
func Fig4(sc Scale) (*Result, error) {
	type variant struct {
		label string
		mod   func(*config.Config)
	}
	variants := []variant{
		{"base", func(c *config.Config) {}},
		{"infinite-FUs", func(c *config.Config) { c.InfiniteFUs = true }},
		{"perfect-bpred", func(c *config.Config) { c.PerfectBPred = true }},
		{"perfect-icache", func(c *config.Config) { c.PerfectICache = true }},
		{"all+2x-window", func(c *config.Config) {
			c.InfiniteFUs = true
			c.PerfectBPred = true
			c.PerfectICache = true
			c.PerfectITLB = true
			c.PerfectDTLB = true
			c.WindowSize = 128
		}},
	}
	var pts []figPoint
	for _, v := range variants {
		cfg := config.Default()
		v.mod(&cfg)
		pts = append(pts, figPoint{v.label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, v.label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "fig4", Title: "Factors limiting OLTP performance", Reports: reports,
		Tables: []string{
			stats.FormatBreakdownTable(reports),
			stats.FormatReadStallTable(reports),
		},
	}, nil
}

// Fig5 reproduces Figure 5: the relative importance of execution-time
// components in uniprocessor vs multiprocessor systems, for both workloads.
func Fig5(sc Scale) (*Result, error) {
	var pts []figPoint
	for _, wl := range []struct {
		name   string
		isOLTP bool
	}{{"OLTP", true}, {"DSS", false}} {
		for _, nodes := range []int{1, 4} {
			cfg := config.Default()
			cfg.Nodes = nodes
			label := fmt.Sprintf("%s-%dP", wl.name, nodes)
			isOLTP := wl.isOLTP
			pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
				return runWorkload(cfg, sc, label, isOLTP)
			}})
		}
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	var tables []string
	for _, pair := range [][]*stats.Report{reports[:2], reports[2:]} {
		// The paper compares the composition of execution time, so each
		// bar is normalized to its own total.
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-12s | %6s %6s %6s %6s %6s  (fraction of own time)\n",
			"system", "CPU", "instr", "read", "write", "sync")
		for _, r := range pair {
			n := r.Normalized(r)
			fmt.Fprintf(&sb, "%-12s | %6.3f %6.3f %6.3f %6.3f %6.3f\n",
				r.Label, n.CPU(), n[stats.Instr], n.Read(), n[stats.Write], n[stats.Sync])
		}
		tables = append(tables, sb.String())
	}
	return &Result{
		ID: "fig5", Title: "Uniprocessor vs multiprocessor components",
		Reports: reports, Tables: tables,
	}, nil
}

// Fig6 reproduces Figure 6: consistency-model implementations. For each
// workload, nine configurations: {SC, PC, RC} x {straightforward,
// +prefetch, +prefetch+speculative-load}, normalized to straightforward SC.
func Fig6(sc Scale) (*Result, error) {
	impls := []config.ConsistencyImpl{config.ImplPlain, config.ImplPrefetch, config.ImplSpeculative}
	models := []config.ConsistencyModel{config.SC, config.PC, config.RC}
	var pts []figPoint
	for _, wl := range []struct {
		name   string
		isOLTP bool
	}{{"OLTP", true}, {"DSS", false}} {
		for _, impl := range impls {
			for _, m := range models {
				cfg := config.Default()
				cfg.Consistency = m
				cfg.ConsistencyOpts = impl
				label := fmt.Sprintf("%s-%v-%v", wl.name, m, impl)
				isOLTP := wl.isOLTP
				pts = append(pts, figPoint{label, func(sc Scale) (*stats.Report, error) {
					return runWorkload(cfg, sc, label, isOLTP)
				}})
			}
		}
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	perWL := len(impls) * len(models)
	var tables []string
	for _, group := range [][]*stats.Report{reports[:perWL], reports[perWL:]} {
		tables = append(tables, stats.FormatBreakdownTable(group))
	}
	return &Result{
		ID: "fig6", Title: "ILP-enabled consistency optimizations",
		Reports: reports, Tables: tables,
	}, nil
}

// Fig7a reproduces Figure 7(a): the instruction stream buffer study on
// OLTP: base, 2/4/8-entry stream buffers, perfect I-cache, and perfect
// I-cache + perfect I-TLB.
func Fig7a(sc Scale) (*Result, error) {
	type variant struct {
		label string
		mod   func(*config.Config)
	}
	variants := []variant{
		{"base", func(c *config.Config) {}},
		{"streambuf-2", func(c *config.Config) { c.StreamBufEntries = 2 }},
		{"streambuf-4", func(c *config.Config) { c.StreamBufEntries = 4 }},
		{"streambuf-8", func(c *config.Config) { c.StreamBufEntries = 8 }},
		{"perfect-icache", func(c *config.Config) { c.PerfectICache = true }},
		{"perfect-icache+itlb", func(c *config.Config) {
			c.PerfectICache = true
			c.PerfectITLB = true
		}},
	}
	var pts []figPoint
	streamBuf := make([]bool, len(variants))
	for i, v := range variants {
		cfg := config.Default()
		v.mod(&cfg)
		streamBuf[i] = cfg.StreamBufEntries > 0
		pts = append(pts, figPoint{v.label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, v.label, oltp.HintNone)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for i, v := range variants {
		if streamBuf[i] {
			fmt.Fprintf(&sb, "%-22s stream-buffer hit rate %.2f (I-miss reduction)\n",
				v.label, reports[i].StreamBufHitRate)
		}
	}
	return &Result{
		ID: "fig7a", Title: "Addressing the instruction bottleneck (stream buffers)",
		Reports: reports,
		Tables:  []string{stats.FormatBreakdownTable(reports), sb.String()},
	}, nil
}

// Fig7b reproduces Figure 7(b): software flush and prefetch hints for
// migratory data. All configurations include a 4-entry stream buffer; the
// final row is the paper's approximate bound (migratory reads serviced 40%
// faster, reflecting service by memory).
func Fig7b(sc Scale) (*Result, error) {
	type variant struct {
		label string
		hints oltp.HintLevel
		bound bool
	}
	variants := []variant{
		{"base+sb4", oltp.HintNone, false},
		{"+flush", oltp.HintFlush, false},
		{"+flush+prefetch", oltp.HintFlushPrefetch, false},
		{"bound(-40%-migratory)", oltp.HintNone, true},
	}
	var pts []figPoint
	for _, v := range variants {
		cfg := config.Default()
		cfg.StreamBufEntries = 4
		cfg.MigratoryBound = v.bound
		pts = append(pts, figPoint{v.label, func(sc Scale) (*stats.Report, error) {
			return RunOLTP(cfg, sc, v.label, v.hints)
		}})
	}
	reports, err := runPoints(sc, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "fig7b", Title: "Addressing the migratory data bottleneck (flush/prefetch hints)",
		Reports: reports,
		Tables: []string{
			stats.FormatBreakdownTable(reports),
			stats.FormatReadStallTable(reports),
		},
	}, nil
}

// MissRates reproduces the Section 3.1/3.2 characterization table: local
// miss rates per level and IPC for both workloads on the base system.
func MissRates(sc Scale) (*Result, error) {
	cfg := config.Default()
	reports, err := runPoints(sc, []figPoint{
		{"OLTP", func(sc Scale) (*stats.Report, error) { return RunOLTP(cfg, sc, "OLTP", oltp.HintNone) }},
		{"DSS", func(sc Scale) (*stats.Report, error) { return RunDSS(cfg, sc, "DSS") }},
	})
	if err != nil {
		return nil, err
	}
	o, d := reports[0], reports[1]
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s | %7s %7s %7s | %5s | %7s %7s | %9s\n",
		"workload", "L1I", "L1D", "L2", "IPC", "bpred", "dirty%", "of L2 miss")
	for _, r := range []*stats.Report{o, d} {
		fmt.Fprintf(&sb, "%-8s | %6.1f%% %6.1f%% %6.1f%% | %5.2f | %6.1f%% %6.1f%% |\n",
			r.Label, r.L1IMissRate*100, r.L1DMissRate*100, r.L2MissRate*100,
			r.IPC(cfg.Nodes), r.BranchMispred*100, r.DirtyFraction*100)
	}
	fmt.Fprintf(&sb, "(paper:   OLTP 7.6%% 14.1%% 7.4%% IPC 0.5, ~11%% bpred; DSS 0.0%% 0.9%% 23.1%% IPC 2.2)\n")
	return &Result{
		ID: "tbl-miss", Title: "Base-system characterization",
		Reports: []*stats.Report{o, d}, Tables: []string{sb.String()},
	}, nil
}

// MigratoryCharacterization reproduces the Section 4.2 analysis of sharing
// patterns in the OLTP workload.
func MigratoryCharacterization(sc Scale) (*Result, error) {
	cfg := config.Default()
	rep, err := RunOLTP(cfg, sc, "OLTP", oltp.HintNone)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	line := func(k string, got, paper string) { fmt.Fprintf(&sb, "%-52s %10s   (paper: %s)\n", k, got, paper) }
	line("shared writes to migratory data", fmt.Sprintf("%.0f%%", rep.SharedWriteMigratory*100), "88%")
	line("dirty reads to migratory data", fmt.Sprintf("%.0f%%", rep.ReadDirtyMigratory*100), "79%")
	line("migratory lines with write misses", fmt.Sprintf("%d", rep.MigratoryLines), "~520 hot lines")
	line("static instructions generating migratory refs", fmt.Sprintf("%d", rep.MigratoryPCs), "~100 hot instructions")
	line("write misses covered by top 3% of lines", fmt.Sprintf("%.0f%%", rep.LineConcentration*100), "70%")
	line("migratory refs from top 10% of instructions", fmt.Sprintf("%.0f%%", rep.PCConcentration*100), "75%")
	line("migratory writes inside critical sections", fmt.Sprintf("%.0f%%", rep.WriteCSFraction*100), "74%")
	line("migratory reads inside critical sections", fmt.Sprintf("%.0f%%", rep.ReadCSFraction*100), "54%")
	return &Result{
		ID: "tbl-mig", Title: "Migratory sharing characterization (OLTP)",
		Reports: []*stats.Report{rep}, Tables: []string{sb.String()},
	}, nil
}

// Experiment binds an id to its runner.
type Experiment struct {
	ID    string
	Run   func(Scale) (*Result, error)
	Notes string
}

// All enumerates every experiment.
var All = []Experiment{
	{"fig2a", Fig2a, "OLTP: issue width x in-order/OOO"},
	{"fig2b", Fig2b, "OLTP: instruction window size"},
	{"fig2c", Fig2c, "OLTP: outstanding misses (MSHRs)"},
	{"fig2d-g", Fig2dg, "OLTP: MSHR occupancy distributions"},
	{"fig3a", Fig3a, "DSS: issue width x in-order/OOO"},
	{"fig3b", Fig3b, "DSS: instruction window size"},
	{"fig3c", Fig3c, "DSS: outstanding misses (MSHRs)"},
	{"fig3d-g", Fig3dg, "DSS: MSHR occupancy distributions"},
	{"fig4", Fig4, "OLTP: limit study (FUs, bpred, icache, window)"},
	{"fig5", Fig5, "uniprocessor vs multiprocessor components"},
	{"fig6", Fig6, "consistency models x implementations"},
	{"fig7a", Fig7a, "OLTP: instruction stream buffers"},
	{"fig7b", Fig7b, "OLTP: migratory flush/prefetch hints"},
	{"tbl-miss", MissRates, "base characterization (miss rates, IPC)"},
	{"tbl-mig", MigratoryCharacterization, "migratory sharing characterization"},
}
