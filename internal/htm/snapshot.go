package htm

// TxState is the dynamic state of one transaction context. The bounds
// (Config) are rebuilt from configuration when the core recreates its
// contexts.
type TxState struct {
	Phase        int
	Latch        uint64
	Depth        int
	Begin        uint64
	ReadSet      []uint64
	WriteSet     []uint64
	Aborted      bool
	Cause        int
	ConflictLine uint64
	Attempts     int
	Deadline     uint64
	CSLen        uint64
}

// Snapshot captures the transaction context.
func (t *Tx) Snapshot() TxState {
	s := TxState{
		Phase:        int(t.phase),
		Latch:        t.latch,
		Depth:        t.depth,
		Begin:        t.begin,
		Aborted:      t.aborted,
		Cause:        int(t.cause),
		ConflictLine: t.conflictLine,
		Attempts:     t.attempts,
		Deadline:     t.deadline,
		CSLen:        t.csLen,
	}
	for l := range t.readSet {
		s.ReadSet = append(s.ReadSet, l)
	}
	for l := range t.writeSet {
		s.WriteSet = append(s.WriteSet, l)
	}
	return s
}

// Restore refills the transaction context from a snapshot.
func (t *Tx) Restore(s TxState) {
	t.clearSets()
	t.phase = Phase(s.Phase)
	t.latch = s.Latch
	t.depth = s.Depth
	t.begin = s.Begin
	for _, l := range s.ReadSet {
		t.readSet[l] = struct{}{}
	}
	for _, l := range s.WriteSet {
		t.writeSet[l] = struct{}{}
	}
	t.aborted = s.Aborted
	t.cause = AbortCause(s.Cause)
	t.conflictLine = s.ConflictLine
	t.attempts = s.Attempts
	t.deadline = s.Deadline
	t.csLen = s.CSLen
}
