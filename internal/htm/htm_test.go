package htm

import "testing"

func cfg() Config {
	return Config{ReadSetLines: 4, WriteSetLines: 2, MaxRetries: 2, BackoffCycles: 10}
}

// TestAbortClassification drives the edge cases of the abort taxonomy
// through the state machine table-style.
func TestAbortClassification(t *testing.T) {
	cases := []struct {
		name     string
		run      func(tx *Tx) bool // returns "newly aborted"
		aborted  bool
		cause    AbortCause
		wantLine uint64
		skipLine bool
	}{
		{
			name: "capacity at exact read-set limit does not abort",
			run: func(tx *Tx) bool {
				aborted := false
				for i := 0; i < 4; i++ { // bound is 4; latch line is NOT pre-tracked here
					aborted = aborted || tx.TrackRead(uint64(0x100+i))
				}
				return aborted
			},
			aborted:  false,
			skipLine: true,
		},
		{
			name: "one line past the read-set limit aborts capacity",
			run: func(tx *Tx) bool {
				for i := 0; i < 4; i++ {
					tx.TrackRead(uint64(0x100 + i))
				}
				return tx.TrackRead(0x200)
			},
			aborted:  true,
			cause:    AbortCapacity,
			wantLine: 0x200,
		},
		{
			name: "re-reading a tracked line never overflows",
			run: func(tx *Tx) bool {
				aborted := false
				for i := 0; i < 100; i++ {
					aborted = aborted || tx.TrackRead(0x100)
				}
				return aborted
			},
			aborted:  false,
			skipLine: true,
		},
		{
			name: "write-set overflow aborts capacity even with read-set room",
			run: func(tx *Tx) bool {
				tx.TrackWrite(0x100)
				tx.TrackWrite(0x140)
				return tx.TrackWrite(0x180) // write bound is 2
			},
			aborted:  true,
			cause:    AbortCapacity,
			wantLine: 0x180,
		},
		{
			name: "coherence invalidation of a tracked line aborts conflict",
			run: func(tx *Tx) bool {
				tx.TrackRead(0x100)
				return tx.OnInvalidation(0x100, false)
			},
			aborted:  true,
			cause:    AbortConflict,
			wantLine: 0x100,
		},
		{
			name: "eviction of a tracked line aborts capacity",
			run: func(tx *Tx) bool {
				tx.TrackWrite(0x100)
				return tx.OnInvalidation(0x100, true)
			},
			aborted:  true,
			cause:    AbortCapacity,
			wantLine: 0x100,
		},
		{
			name: "invalidation of an untracked line is ignored",
			run: func(tx *Tx) bool {
				tx.TrackRead(0x100)
				return tx.OnInvalidation(0x900, false)
			},
			aborted:  false,
			skipLine: true,
		},
		{
			name: "nested acquire of the already-elided (free) latch flattens",
			run: func(tx *Tx) bool {
				return tx.Enter(true)
			},
			aborted:  false,
			skipLine: true,
		},
		{
			name: "nested acquire of a latch a fallback owner holds aborts explicit",
			run: func(tx *Tx) bool {
				return tx.Enter(false)
			},
			aborted:  true,
			cause:    AbortExplicit,
			skipLine: true,
		},
		{
			name: "context switch aborts explicit",
			run: func(tx *Tx) bool {
				tx.TrackRead(0x100)
				return tx.AbortExplicit()
			},
			aborted:  true,
			cause:    AbortExplicit,
			skipLine: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tx := New(cfg())
			tx.Begin(0x40, 100)
			newly := tc.run(tx)
			if newly != tc.aborted {
				t.Fatalf("newly-aborted = %v, want %v", newly, tc.aborted)
			}
			if tx.Aborted() != tc.aborted {
				t.Fatalf("Aborted() = %v, want %v", tx.Aborted(), tc.aborted)
			}
			if tc.aborted && tx.Cause() != tc.cause {
				t.Fatalf("cause = %v, want %v", tx.Cause(), tc.cause)
			}
			if tc.aborted && !tc.skipLine && tx.ConflictLine() != tc.wantLine {
				t.Fatalf("conflict line = %#x, want %#x", tx.ConflictLine(), tc.wantLine)
			}
		})
	}
}

// TestNestedDepthPairing: nested acquires/releases of the elided latch
// flatten; only the outermost release resolves the transaction.
func TestNestedDepthPairing(t *testing.T) {
	tx := New(cfg())
	tx.Begin(0x40, 100)
	if tx.Depth() != 1 {
		t.Fatalf("depth after begin = %d", tx.Depth())
	}
	tx.Enter(true)
	tx.Enter(true)
	if tx.Depth() != 3 {
		t.Fatalf("depth after two nested acquires = %d", tx.Depth())
	}
	tx.Exit()
	tx.Exit()
	if tx.Depth() != 1 {
		t.Fatalf("depth after two nested releases = %d", tx.Depth())
	}
	if d := tx.Resolve(500); d != DecideCommit {
		t.Fatalf("clean outermost release: decision = %v, want commit", d)
	}
	tx.Commit()
	if tx.Phase() != PhaseIdle || tx.ReadSetSize() != 0 {
		t.Fatalf("commit left phase %v, read set %d", tx.Phase(), tx.ReadSetSize())
	}
}

// TestConflictDuringRetryBackoff: a conflict that lands inside the retry
// backoff window (the sets stay subscribed) consumes another attempt,
// and exhausting attempts falls back to the latch.
func TestConflictDuringRetryBackoff(t *testing.T) {
	tx := New(cfg()) // MaxRetries = 2, Backoff = 10
	tx.Begin(0x40, 100)
	tx.TrackRead(0x100)
	if !tx.OnInvalidation(0x100, false) {
		t.Fatal("seed conflict did not abort")
	}

	// Outermost release reached at cycle 200: conflict → retry attempt 1.
	if d := tx.Resolve(200); d != DecideWait {
		t.Fatalf("resolution start: decision = %v, want wait", d)
	}
	if tx.Phase() != PhaseRetry || tx.Attempts() != 1 {
		t.Fatalf("phase %v attempts %d, want retry/1", tx.Phase(), tx.Attempts())
	}
	// csLen = 200-100 = 100, backoff = 1*10 → deadline 310.
	if tx.Deadline() != 310 {
		t.Fatalf("retry deadline = %d, want 310", tx.Deadline())
	}

	// A conflict during the backoff window (set retained): attempt 2.
	if !tx.OnInvalidation(0x100, false) {
		t.Fatal("conflict during backoff did not abort")
	}
	if d := tx.Resolve(205); d != DecideWait {
		t.Fatalf("retry re-arm: decision = %v, want wait", d)
	}
	if tx.Attempts() != 2 {
		t.Fatalf("attempts = %d, want 2", tx.Attempts())
	}
	// backoff = 2*10, csLen still 100 → deadline 325.
	if tx.Deadline() != 325 {
		t.Fatalf("second retry deadline = %d, want 325", tx.Deadline())
	}

	// Third conflict exhausts MaxRetries=2: fall back to the latch.
	tx.OnInvalidation(0x100, false)
	if d := tx.Resolve(210); d != DecideWait {
		t.Fatalf("exhaustion: decision = %v, want wait", d)
	}
	if tx.Phase() != PhaseSpin {
		t.Fatalf("phase = %v, want spin", tx.Phase())
	}
	if d := tx.Resolve(211); d != DecideSpin {
		t.Fatalf("spin: decision = %v, want spin", d)
	}
	// Sets were discarded: invalidations can no longer abort.
	if tx.OnInvalidation(0x100, false) {
		t.Fatal("invalidation aborted a non-speculative fallback")
	}

	tx.FallbackAcquired(400)
	if tx.Phase() != PhaseRedo || tx.Deadline() != 500 { // 400 + csLen 100
		t.Fatalf("redo: phase %v deadline %d, want redo/500", tx.Phase(), tx.Deadline())
	}
	if d := tx.Resolve(499); d != DecideWait {
		t.Fatalf("mid-redo: decision = %v, want wait", d)
	}
	if d := tx.Resolve(500); d != DecideRMW {
		t.Fatalf("redo done: decision = %v, want rmw", d)
	}
	tx.Reset()
	if tx.Phase() != PhaseIdle {
		t.Fatalf("reset left phase %v", tx.Phase())
	}
}

// TestRetryWindowCommits: a retry window that passes without another
// conflict commits without ever taking the latch.
func TestRetryWindowCommits(t *testing.T) {
	tx := New(cfg())
	tx.Begin(0x40, 100)
	tx.TrackRead(0x100)
	tx.OnInvalidation(0x100, false)
	tx.Resolve(150) // retry armed: csLen 50, backoff 10 → deadline 210
	if d := tx.Resolve(209); d != DecideWait {
		t.Fatalf("decision = %v, want wait", d)
	}
	if d := tx.Resolve(210); d != DecideCommit {
		t.Fatalf("decision = %v, want commit", d)
	}
}

// TestCapacitySkipsRetry: capacity aborts recur deterministically on
// re-execution, so resolution goes straight to the latch.
func TestCapacitySkipsRetry(t *testing.T) {
	tx := New(cfg())
	tx.Begin(0x40, 100)
	for i := 0; i < 5; i++ {
		tx.TrackRead(uint64(0x100 + i))
	}
	if tx.Cause() != AbortCapacity {
		t.Fatalf("cause = %v, want capacity", tx.Cause())
	}
	tx.Resolve(200)
	if tx.Phase() != PhaseSpin {
		t.Fatalf("phase = %v, want spin (no retry for capacity)", tx.Phase())
	}
}

// TestFallbackWhileAnotherSpeculates: core A falls back and takes the
// real latch while core B is still speculating on the same latch. A's
// latch write invalidates the latch line B subscribed at begin, so B
// aborts with a conflict — the lock-subscription mechanism that makes
// fallback and elision compose safely.
func TestFallbackWhileAnotherSpeculates(t *testing.T) {
	const latchLine = 0x40
	owner := -1 // toy latch: -1 free, else core id

	a, b := New(cfg()), New(cfg())

	// Both cores elide: each subscribes the latch line.
	a.Begin(latchLine, 100)
	a.TrackRead(latchLine)
	b.Begin(latchLine, 110)
	b.TrackRead(latchLine)

	// A overflows (capacity) and resolves to the fallback path.
	for i := 0; i < 5; i++ {
		a.TrackRead(uint64(0x1000 + i))
	}
	a.Resolve(300)
	if got := a.Resolve(301); got != DecideSpin {
		t.Fatalf("A decision = %v, want spin", got)
	}
	if owner != -1 {
		t.Fatal("latch unexpectedly held")
	}
	owner = 0 // A wins the TryAcquire
	a.FallbackAcquired(301)

	// The fallback acquire writes the latch line: every sharer — B's
	// still-speculating transaction included — sees the invalidation.
	if !b.OnInvalidation(latchLine, false) {
		t.Fatal("B did not abort on the fallback owner's latch write")
	}
	if b.Cause() != AbortConflict || b.ConflictLine() != latchLine {
		t.Fatalf("B abort = %v on %#x, want conflict on %#x", b.Cause(), b.ConflictLine(), latchLine)
	}
	if a.Phase() != PhaseRedo {
		t.Fatalf("A phase = %v, want redo", a.Phase())
	}
}
