// Package htm models best-effort hardware transactional memory for latch
// elision, in the style of the bounded POWER/x86 implementations: a
// transaction tracks a bounded read/write set of cache lines; a coherence
// invalidation hitting the set is a conflict abort, losing a tracked line
// to eviction (or overflowing the configured bound) is a capacity abort,
// and non-speculable events (context switch, nested acquire of a latch a
// fallback owner holds) are explicit aborts. A bounded retry policy
// re-speculates conflict aborts with linear backoff and otherwise falls
// back to acquiring the real latch, so forward progress is never
// speculative.
//
// The package is pure bookkeeping: the processor model drives it with the
// latch instructions, memory accesses and invalidation events it already
// observes, and obeys the Decision it returns at the release point. It
// has no dependency on the simulator, which keeps the abort taxonomy
// independently testable.
package htm

import "fmt"

// AbortCause classifies why a transaction aborted.
type AbortCause int

const (
	// AbortConflict: a coherence invalidation from another node hit the
	// read or write set (true data conflict, including the latch line
	// written by a fallback acquirer).
	AbortConflict AbortCause = iota
	// AbortCapacity: the bounded read/write set overflowed, or a tracked
	// line was evicted from this node's caches (associativity/capacity
	// displacement — the hardware can no longer watch the line).
	AbortCapacity
	// AbortExplicit: a non-speculable event — a context switch while
	// speculating, or a nested acquire of a latch currently held by a
	// real (fallback) owner, which cannot be waited on transactionally.
	AbortExplicit

	NumAbortCauses = iota
)

func (c AbortCause) String() string {
	switch c {
	case AbortConflict:
		return "conflict"
	case AbortCapacity:
		return "capacity"
	case AbortExplicit:
		return "explicit"
	}
	return fmt.Sprintf("AbortCause(%d)", int(c))
}

// ParseAbortCause inverts String.
func ParseAbortCause(s string) (AbortCause, bool) {
	for c := AbortCause(0); c < NumAbortCauses; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// Config bounds one core's transactional resources and retry policy.
type Config struct {
	ReadSetLines  int // distinct lines the read set can track
	WriteSetLines int // distinct lines the write set can version
	MaxRetries    int // speculative re-execution attempts after a conflict
	BackoffCycles int // linear backoff unit: attempt k waits k*BackoffCycles
}

// Phase is the transaction lifecycle state.
type Phase int

const (
	// PhaseIdle: no transaction.
	PhaseIdle Phase = iota
	// PhaseActive: speculating inside the elided critical section.
	PhaseActive
	// PhaseRetry: aborted; re-speculating the critical section at the
	// release point (backoff + re-execution window, conflicts monitored).
	PhaseRetry
	// PhaseSpin: retries exhausted (or the abort was not retryable);
	// spinning for the real latch. Non-speculative from here on.
	PhaseSpin
	// PhaseRedo: real latch held; re-executing the critical section
	// under it.
	PhaseRedo
	// PhaseRMW: redo done; the latch read-modify-write is in flight.
	PhaseRMW
)

func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseActive:
		return "active"
	case PhaseRetry:
		return "retry"
	case PhaseSpin:
		return "spin"
	case PhaseRedo:
		return "redo"
	case PhaseRMW:
		return "rmw"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Decision tells the lock path what to do with the stalled release
// instruction this cycle.
type Decision int

const (
	// DecideCommit: the transaction committed; retire the release
	// without ever touching the real latch.
	DecideCommit Decision = iota
	// DecideWait: stall (backoff or re-execution window in progress).
	DecideWait
	// DecideSpin: try to acquire the real latch this cycle.
	DecideSpin
	// DecideRMW: redo finished under the latch; issue the latch
	// read-modify-write and release when it completes.
	DecideRMW
)

// Tx is one hardware-transaction context. It belongs to a process
// context (a context switch aborts the running transaction, and the
// switched-in process speculates with its own Tx).
type Tx struct {
	cfg Config

	phase Phase
	latch uint64 // address of the elided top-level latch
	depth int    // flattened nesting depth
	begin uint64 // cycle the speculation began

	readSet  map[uint64]struct{}
	writeSet map[uint64]struct{}

	aborted      bool
	cause        AbortCause
	conflictLine uint64

	attempts int
	deadline uint64
	csLen    uint64 // measured critical-section length, for redo costing
}

// New returns an idle transaction context with the given bounds.
func New(cfg Config) *Tx {
	return &Tx{
		cfg:      cfg,
		readSet:  make(map[uint64]struct{}),
		writeSet: make(map[uint64]struct{}),
	}
}

func (t *Tx) Phase() Phase { return t.phase }

// Active reports whether the transaction is speculating (tracking
// accesses and vulnerable to aborts).
func (t *Tx) Active() bool { return t.phase == PhaseActive }

// Watching reports whether invalidations can still abort the
// transaction: while speculating, and during retry windows (the retained
// sets stay subscribed to coherence).
func (t *Tx) Watching() bool { return t.phase == PhaseActive || t.phase == PhaseRetry }

func (t *Tx) Depth() int           { return t.depth }
func (t *Tx) Latch() uint64        { return t.latch }
func (t *Tx) BeginCycle() uint64   { return t.begin }
func (t *Tx) Aborted() bool        { return t.aborted }
func (t *Tx) Cause() AbortCause    { return t.cause }
func (t *Tx) ConflictLine() uint64 { return t.conflictLine }
func (t *Tx) Attempts() int        { return t.attempts }
func (t *Tx) Deadline() uint64     { return t.deadline }
func (t *Tx) ReadSetSize() int     { return len(t.readSet) }
func (t *Tx) WriteSetSize() int    { return len(t.writeSet) }

// Begin starts a top-level transaction eliding latch at cycle now.
func (t *Tx) Begin(latch, now uint64) {
	t.reset()
	t.phase = PhaseActive
	t.latch = latch
	t.depth = 1
	t.begin = now
}

// Enter flattens a nested acquire into the running transaction. A nested
// latch a fallback owner currently holds cannot be waited on inside the
// speculation, so available=false aborts with AbortExplicit; the depth
// grows either way so releases pair up. Returns true when this call
// newly aborted the transaction.
func (t *Tx) Enter(available bool) bool {
	t.depth++
	if !available {
		return t.abort(AbortExplicit, 0)
	}
	return false
}

// Exit unwinds one nested release (depth > 1). The outermost release
// resolves through Resolve instead.
func (t *Tx) Exit() { t.depth-- }

// TrackRead adds a line to the read set; overflowing the bound aborts
// with AbortCapacity. Returns true when this call newly aborted.
func (t *Tx) TrackRead(line uint64) bool {
	if t.phase != PhaseActive || t.aborted {
		return false
	}
	if _, ok := t.readSet[line]; ok {
		return false
	}
	if len(t.readSet) >= t.cfg.ReadSetLines {
		return t.abort(AbortCapacity, line)
	}
	t.readSet[line] = struct{}{}
	return false
}

// TrackWrite adds a line to the write set (and the read set: stores read
// for ownership); overflow aborts with AbortCapacity.
func (t *Tx) TrackWrite(line uint64) bool {
	if t.phase != PhaseActive || t.aborted {
		return false
	}
	if aborted := t.TrackRead(line); aborted {
		return true
	}
	if _, ok := t.writeSet[line]; ok {
		return false
	}
	if len(t.writeSet) >= t.cfg.WriteSetLines {
		return t.abort(AbortCapacity, line)
	}
	t.writeSet[line] = struct{}{}
	return false
}

// OnInvalidation tells the transaction a line left this core's caches.
// A coherence invalidation hitting the set is a conflict; an eviction of
// a tracked line is a capacity abort (the hardware lost its watch).
// Returns true when this event newly aborted the transaction.
func (t *Tx) OnInvalidation(line uint64, eviction bool) bool {
	if !t.Watching() || t.aborted {
		return false
	}
	_, inRead := t.readSet[line]
	_, inWrite := t.writeSet[line]
	if !inRead && !inWrite {
		return false
	}
	if eviction {
		return t.abort(AbortCapacity, line)
	}
	return t.abort(AbortConflict, line)
}

// AbortExplicit aborts for a non-speculable event (context switch,
// syscall). Returns true when this call newly aborted.
func (t *Tx) AbortExplicit() bool {
	if !t.Watching() || t.aborted {
		return false
	}
	return t.abort(AbortExplicit, 0)
}

func (t *Tx) abort(cause AbortCause, line uint64) bool {
	t.aborted = true
	t.cause = cause
	t.conflictLine = line
	return true
}

// Resolve advances the release-point state machine one cycle. It is
// called while the outermost release instruction stalls; the caller
// obeys the decision (and calls FallbackAcquired after winning the real
// latch, Commit on DecideCommit, and Reset when the fallback RMW
// completes).
func (t *Tx) Resolve(now uint64) Decision {
	switch t.phase {
	case PhaseActive:
		if !t.aborted {
			return DecideCommit
		}
		// The speculation failed. Conflicts may succeed on re-execution;
		// capacity and explicit aborts recur deterministically, so they
		// go straight to the latch.
		t.csLen = t.span(now)
		if t.cause == AbortConflict && t.cfg.MaxRetries > 0 {
			t.startRetry(now, 1)
		} else {
			t.toSpin()
		}
		return DecideWait
	case PhaseRetry:
		if t.aborted {
			if t.cause == AbortConflict && t.attempts < t.cfg.MaxRetries {
				t.startRetry(now, t.attempts+1)
			} else {
				t.toSpin()
			}
			return DecideWait
		}
		if now >= t.deadline {
			return DecideCommit
		}
		return DecideWait
	case PhaseSpin:
		return DecideSpin
	case PhaseRedo:
		if now >= t.deadline {
			t.phase = PhaseRMW
			return DecideRMW
		}
		return DecideWait
	case PhaseRMW:
		return DecideRMW
	}
	return DecideCommit
}

// startRetry arms re-execution attempt n: linear backoff, then the
// re-run of the measured critical section, with the retained sets still
// watching for conflicts.
func (t *Tx) startRetry(now uint64, n int) {
	t.attempts = n
	t.aborted = false
	t.phase = PhaseRetry
	t.deadline = now + uint64(n*t.cfg.BackoffCycles) + t.csLen
}

// toSpin abandons speculation: the sets are discarded (conflict
// detection off) and the real latch will serialize the redo.
func (t *Tx) toSpin() {
	t.clearSets()
	t.aborted = false
	t.phase = PhaseSpin
}

// FallbackAcquired records that the caller won the real latch; the
// critical section re-executes under it for the measured length.
func (t *Tx) FallbackAcquired(now uint64) {
	t.phase = PhaseRedo
	t.deadline = now + t.csLen
}

// span returns the elapsed speculation length, at least one cycle so a
// redo always costs something.
func (t *Tx) span(now uint64) uint64 {
	if now > t.begin {
		return now - t.begin
	}
	return 1
}

// Commit ends a clean transaction (from PhaseActive directly, or after a
// retry window passed without a conflict).
func (t *Tx) Commit() { t.reset() }

// Reset returns to idle (fallback completion, or discarding state).
func (t *Tx) Reset() { t.reset() }

func (t *Tx) reset() {
	t.clearSets()
	t.phase = PhaseIdle
	t.latch = 0
	t.depth = 0
	t.begin = 0
	t.aborted = false
	t.conflictLine = 0
	t.attempts = 0
	t.deadline = 0
	t.csLen = 0
}

func (t *Tx) clearSets() {
	clear(t.readSet)
	clear(t.writeSet)
}
