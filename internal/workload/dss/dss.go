// Package dss generates the DSS workload: TPC-D Query 6 executed by
// parallel query server processes (Section 2.1.2 of the paper). Each
// process scans its partition of the lineitem table sequentially,
// evaluating the shipdate/discount/quantity predicate per row and
// accumulating revenue for qualifying rows. The behaviour the paper
// measures — a tiny instruction footprint that fits the L1 I-cache,
// compute-intensive execution with high ILP (IPC ~2.2), a ~1% L1 data miss
// rate with most L1 misses hitting in the L2 (per-process work areas) and
// the scan lines missing to memory, and negligible locking — follows from
// that structure.
package dss

import (
	"repro/internal/db"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config scales the workload.
type Config struct {
	Processes      int // total query servers (paper: 4 per CPU)
	RowsPerProcess int
	RowStride      int    // bytes of projected row piece (default 32)
	WorkAreaBytes  int    // per-process expression/sort work area
	BatchRows      int    // rows between coordinator messages (syscalls)
	BatchLatency   uint32 // cycles blocked per coordinator message
	Seed           uint64
}

// DefaultConfig returns the paper-matched scaling for nodes processors.
func DefaultConfig(nodes int) Config {
	return Config{
		Processes:      4 * nodes,
		RowsPerProcess: 24_000,
		RowStride:      16, // projected row piece: the four scanned columns
		WorkAreaBytes:  256 << 10,
		BatchRows:      8_192,
		BatchLatency:   20_000,
		Seed:           1,
	}
}

// Workload is the shared table and code layout.
type Workload struct {
	cfg Config
	li  *db.LineItem

	cs    *workload.CodeSpace
	rScan *workload.Routine
	rHdr  *workload.Routine
	rAgg  *workload.Routine

	// RowsScanned counts rows enqueued into the query servers' streams,
	// summed over processes (telemetry probe; generation is lazy, so this
	// tracks simulation progress to within one batch per process).
	RowsScanned uint64

	// procs tracks per-process generation state for checkpointing (see
	// snapshot.go), indexed by process number.
	procs []*procState
}

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.Processes <= 0 {
		panic("dss: need at least one process")
	}
	if cfg.RowStride == 0 {
		cfg.RowStride = 16
	}
	if cfg.WorkAreaBytes == 0 {
		cfg.WorkAreaBytes = 512 << 10
	}
	w := &Workload{
		cfg: cfg,
		li:  db.NewLineItem(cfg.RowsPerProcess, cfg.RowStride),
		cs:  workload.NewCodeSpace(db.CodeBase + 0x0400_0000),
	}
	// The whole query plan is a few KB of code: it fits the L1I.
	w.rScan = w.cs.NewRoutine("scanloop", 3072)
	w.rHdr = w.cs.NewRoutine("blockhdr", 1024)
	w.rAgg = w.cs.NewRoutine("aggregate", 1024)
	return w
}

// LineItem exposes the table for verification.
func (w *Workload) LineItem() *db.LineItem { return w.li }

// Resolve maps a PC to the query-plan routine containing it (for profilers).
func (w *Workload) Resolve(pc uint64) (string, bool) { return w.cs.Resolve(pc) }

// ExpectedRevenue returns the Query 6 aggregate for process proc's scan.
func (w *Workload) ExpectedRevenue(proc int) int64 {
	return w.li.PartitionRevenue(proc, w.cfg.RowsPerProcess)
}

// ApproxInstrPerProcess estimates the dynamic instruction count.
func (w *Workload) ApproxInstrPerProcess() uint64 {
	return uint64(w.cfg.RowsPerProcess) * 70
}

type procState struct {
	w        *Workload
	proc     int
	row      int
	accAddr  uint64 // private accumulator (hot)
	exprBase uint64 // interpreted expression tree (hot private state)
	waCur    uint64 // work-area cursor
	revenue  int64
	gen      *workload.Gen
}

// Stream returns the instruction stream of query server proc.
func (w *Workload) Stream(proc int) trace.Stream {
	p := &procState{
		w:        w,
		proc:     proc,
		accAddr:  db.PrivateBase(proc) + 512,
		exprBase: db.PrivateBase(proc) + 4096,
	}
	e := workload.NewEmitter(w.cfg.Seed*7_368_787 + uint64(proc))
	// DSS branch behaviour is dominated by explicit predicate branches and
	// loop-closing branches; background seasoning is sparse and, being
	// loop code, predictable.
	e.BranchEvery = 14
	e.PredictableSeasoning = true
	e.Call(w.rScan)
	p.gen = workload.NewGen(e, p.refillBatch)
	w.register(p)
	return p.gen
}

// Revenue returns the revenue accumulated by the generated stream so far
// (for verification against ExpectedRevenue).
func (p *procState) Revenue() int64 { return p.revenue }

// refillBatch enqueues the next batch of rows.
func (p *procState) refillBatch(g *workload.Gen) bool {
	w := p.w
	if p.row >= w.cfg.RowsPerProcess {
		return false
	}
	end := p.row + w.cfg.BatchRows
	if end > w.cfg.RowsPerProcess {
		end = w.cfg.RowsPerProcess
	}
	start := p.row
	p.row = end
	w.RowsScanned += uint64(end - start)
	// Enqueue the scan in small chunks so the instruction buffer stays
	// cache-resident at generation time.
	const chunk = 64
	for s := start; s < end; s += chunk {
		s, c := s, s+chunk
		if c > end {
			c = end
		}
		g.Enqueue(func(e *workload.Emitter) { p.scanRows(e, s, c) })
	}
	// Report the batch to the query coordinator: a brief blocking message
	// that lets the other servers on the CPU run.
	g.Enqueue(func(e *workload.Emitter) {
		e.ALU(8, false)
		e.Syscall(w.cfg.BatchLatency)
	})
	return true
}

// scanRows emits the scan loop over [start, end).
func (p *procState) scanRows(e *workload.Emitter, start, end int) {
	w := p.w
	li := w.li
	rowsPerBlock := db.BlockBytes / w.cfg.RowStride
	for i := start; i < end; i++ {
		// Every iteration restarts at the routine head, so the row loop
		// executes at fixed PCs and branch-predictor/BTB sites are stable
		// across rows (and chunks), as in real loop code.
		e.LoopBack()
		if i%rowsPerBlock == 0 {
			p.blockHeader(e, i)
		}
		rowAddr := li.RowAddr(p.proc, i)

		// Row locate plus interpreted predicate evaluation: the
		// expression-tree walk over hot private state that dominates
		// Oracle's row-at-a-time pathlength and keeps the data-reference
		// stream hit-heavy (the paper: DSS's main footprint fits the L1).
		e.ALU(4, false)
		for k := 0; k < 12; k++ {
			e.Load(p.exprBase+uint64(k*96), false)
			e.ALU(4, false)
		}

		// Work-area stores per row: evaluator scratch written through a
		// region that exceeds the L1 but fits the L2. Under the relaxed
		// model these write misses overlap behind the store buffer — the
		// write-driven MSHR occupancy of Figures 3(d)-(g).
		waBase := db.PrivateBase(p.proc) + 2<<20
		for k := 0; k < 2; k++ {
			p.waCur += 20
			if p.waCur >= uint64(w.cfg.WorkAreaBytes) {
				p.waCur = 0
			}
			e.Store(waBase + p.waCur)
			e.ALU(2, false)
		}

		// Column fetches: independent loads from the projected row piece.
		e.Load(rowAddr, false) // l_shipdate
		e.ALU(2, true)         // date comparison
		okDate := li.ShipYearOK(p.proc, i)
		e.CondBranch(!okDate) // fail -> skip the rest (mostly taken)
		if !okDate {
			e.ALU(3, false)
			e.Load(p.exprBase+640, false) // reset evaluator state
			continue
		}
		e.Load(rowAddr+4, false) // l_discount
		e.ALU(2, true)
		e.Load(p.exprBase+224, false)
		d := li.DiscountBP(p.proc, i)
		okDisc := d >= 500 && d <= 700
		e.CondBranch(!okDisc)
		if !okDisc {
			e.ALU(3, false)
			continue
		}
		e.Load(rowAddr+8, false) // l_quantity
		e.ALU(2, true)
		okQty := li.Quantity(p.proc, i) < 24
		e.CondBranch(!okQty)
		if !okQty {
			e.ALU(3, false)
			continue
		}
		// Qualifying row: price load, multiply, accumulate.
		e.Load(rowAddr+12, false) // l_extendedprice
		p.aggregate(e)
		p.revenue += li.Revenue(p.proc, i)
	}
}

// blockHeader reads the block header and touches the per-process work area
// (expression state), whose footprint exceeds the L1 but fits the L2.
func (p *procState) blockHeader(e *workload.Emitter, row int) {
	w := p.w
	e.Call(w.rHdr)
	hdr := w.li.BlockOf(p.proc, row)
	e.Load(hdr, false)
	e.Load(hdr+8, true) // row directory (dependent)
	e.ALU(8, false)
	e.Store(db.PrivateBase(p.proc) + 1024) // scan cursor bookkeeping
	e.ALU(4, false)
	e.Ret()
}

// aggregate multiplies price by discount and adds into the accumulator.
func (p *procState) aggregate(e *workload.Emitter) {
	w := p.w
	e.Call(w.rAgg)
	e.ALU(5, true) // NUMBER arithmetic (integer units; FP unused, as in Q6)
	e.Load(p.accAddr, false)
	e.ALU(2, true)
	e.Store(p.accAddr)
	e.ALU(2, false)
	e.Ret()
}
