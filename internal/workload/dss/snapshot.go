package dss

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/trace"
)

// Mid-run checkpoint support. DSS streams touch no order-dependent
// shared state — every engine call (table addresses, predicates,
// revenue) is a pure function of the process number and row, and the
// one shared counter (RowsScanned) is a commutative sum — so restore is
// a pure re-draw: rebuild each stream and draw the recorded number of
// instructions, which replays the per-stream RNG and row cursors
// bit-exactly.

// workloadState is the serialized form of SnapshotWorkload.
type workloadState struct {
	Drawn       []uint64 // instructions drawn, per process
	RowsScanned uint64
}

// register tracks a process's generation state for checkpointing.
func (w *Workload) register(p *procState) {
	for len(w.procs) <= p.proc {
		w.procs = append(w.procs, nil)
	}
	w.procs[p.proc] = p
}

// EnableCheckpointing is a no-op: DSS generation needs no recording.
// It exists so both workloads are armed the same way.
func (w *Workload) EnableCheckpointing() {}

// SnapshotWorkload serializes the generation-time state. It implements
// core.WorkloadCheckpointer.
func (w *Workload) SnapshotWorkload() ([]byte, error) {
	st := workloadState{RowsScanned: w.RowsScanned}
	if len(w.procs) != w.cfg.Processes {
		return nil, fmt.Errorf("dss: %d of %d process streams created, cannot checkpoint", len(w.procs), w.cfg.Processes)
	}
	for proc, p := range w.procs {
		if p == nil {
			return nil, fmt.Errorf("dss: process %d has no stream, cannot checkpoint", proc)
		}
		st.Drawn = append(st.Drawn, p.gen.Drawn)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("dss: encoding workload state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreWorkload rewinds a freshly built workload (same Config, all
// streams created, none drawn from) to a checkpoint by re-drawing each
// stream's recorded instruction count. It implements
// core.WorkloadCheckpointer.
func (w *Workload) RestoreWorkload(data []byte) error {
	var st workloadState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("dss: decoding workload state: %w", err)
	}
	if len(st.Drawn) != w.cfg.Processes {
		return fmt.Errorf("dss: checkpoint has %d processes, configured %d", len(st.Drawn), w.cfg.Processes)
	}
	if len(w.procs) != w.cfg.Processes {
		return fmt.Errorf("dss: %d of %d process streams created, cannot restore", len(w.procs), w.cfg.Processes)
	}
	var in trace.Instr
	for proc, p := range w.procs {
		if p == nil {
			return fmt.Errorf("dss: process %d has no stream, cannot restore", proc)
		}
		if p.gen.Drawn != 0 {
			return fmt.Errorf("dss: process %d stream already drawn from, cannot restore", proc)
		}
		for p.gen.Drawn < st.Drawn[proc] {
			if !p.gen.Next(&in) {
				return fmt.Errorf("dss: process %d stream ended at %d of %d instructions during replay",
					proc, p.gen.Drawn, st.Drawn[proc])
			}
		}
	}
	w.RowsScanned = st.RowsScanned
	return nil
}
