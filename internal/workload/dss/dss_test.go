package dss

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// workloadEmitterForTest returns an emitter positioned inside a large
// scratch routine, so scanRows can be driven directly.
func workloadEmitterForTest() *workload.Emitter {
	cs := workload.NewCodeSpace(0x7000_0000)
	r := cs.NewRoutine("test", 1<<20)
	e := workload.NewEmitter(42)
	e.Call(r)
	return e
}

func TestStreamScansAndAggregates(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Processes = 2
	cfg.RowsPerProcess = 5_000
	w := New(cfg)
	for proc := 0; proc < cfg.Processes; proc++ {
		s := w.Stream(proc).(interface {
			Next(*trace.Instr) bool
		})
		var in trace.Instr
		var n, loads, fp uint64
		for s.Next(&in) {
			n++
			switch in.Op {
			case trace.OpLoad:
				loads++
			case trace.OpFPALU:
				fp++
			case trace.OpLockAcquire:
				t.Fatal("DSS must not lock (negligible locking activity)")
			}
		}
		if n == 0 {
			t.Fatal("empty stream")
		}
		if fp != 0 {
			t.Errorf("Q6 uses integer NUMBER arithmetic; %d FP ops emitted", fp)
		}
		perRow := float64(n) / float64(cfg.RowsPerProcess)
		if perRow < 8 || perRow > 120 {
			t.Errorf("proc %d: %.1f instructions/row outside plausible range", proc, perRow)
		}
	}
}

func TestRevenueMatchesEngine(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Processes = 1
	cfg.RowsPerProcess = 20_000
	w := New(cfg)
	p := &procState{w: w, proc: 0, accAddr: 1, exprBase: 4096}
	e := workloadEmitterForTest()
	p.scanRows(e, 0, cfg.RowsPerProcess)
	if got, want := p.Revenue(), w.ExpectedRevenue(0); got != want {
		t.Errorf("generated revenue %d != engine revenue %d", got, want)
	}
	if w.ExpectedRevenue(0) == 0 {
		t.Error("no qualifying rows; predicate selectivity broken")
	}
	// Selectivity should be a few percent (1/7 year x ~20% discount band x
	// ~46% quantity).
	var qual int
	for i := 0; i < cfg.RowsPerProcess; i++ {
		if w.li.Qualifies(0, i) {
			qual++
		}
	}
	sel := float64(qual) / float64(cfg.RowsPerProcess)
	if sel < 0.005 || sel > 0.05 {
		t.Errorf("selectivity %.3f outside Q6-like range", sel)
	}
}
