package oltp

import (
	"testing"

	"repro/internal/trace"
)

func TestStreamGeneratesTransactions(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Processes = 2
	cfg.TransactionsPerProcess = 2
	w := New(cfg)
	if fp := w.Footprint(); fp < 400<<10 || fp > 700<<10 {
		t.Errorf("instruction footprint = %dKB, want ~560KB", fp>>10)
	}
	var total uint64
	for proc := 0; proc < cfg.Processes; proc++ {
		s := w.Stream(proc)
		var in trace.Instr
		var n, loads, stores, branches, locks, syscalls uint64
		for s.Next(&in) {
			n++
			switch in.Op {
			case trace.OpLoad:
				loads++
			case trace.OpStore:
				stores++
			case trace.OpBranch:
				branches++
			case trace.OpLockAcquire:
				locks++
			case trace.OpSyscall:
				syscalls++
			}
		}
		total += n
		if syscalls != uint64(cfg.TransactionsPerProcess) {
			t.Errorf("proc %d: %d commit syscalls, want %d", proc, syscalls, cfg.TransactionsPerProcess)
		}
		// Per transaction: 1 segment latch + 4 bucket latches + 3 redo
		// latches + 4 block locks + 1 commit redo latch = 13 engine locks,
		// plus the latched statistics updates sprinkled along the SQL path.
		if locks < uint64(13*cfg.TransactionsPerProcess) {
			t.Errorf("proc %d: %d lock acquires, want >= %d", proc, locks, 13*cfg.TransactionsPerProcess)
		}
		if n == 0 {
			t.Fatalf("proc %d: empty stream", proc)
		}
		lf := float64(loads) / float64(n)
		if lf < 0.10 || lf > 0.40 {
			t.Errorf("proc %d: load fraction %.2f outside DB-code range", proc, lf)
		}
		bf := float64(branches) / float64(n)
		if bf < 0.08 || bf > 0.30 {
			t.Errorf("proc %d: branch fraction %.2f outside range", proc, bf)
		}
	}
	est := w.ApproxInstrPerTx() * uint64(cfg.Processes*cfg.TransactionsPerProcess)
	if total < est/2 || total > est*2 {
		t.Errorf("total instructions %d far from estimate %d", total, est)
	}
	if err := w.TPCB().CheckConsistency(); err != nil {
		t.Error(err)
	}
	if w.Transactions != uint64(cfg.Processes*cfg.TransactionsPerProcess) {
		t.Errorf("transactions = %d", w.Transactions)
	}
}

func TestHintInsertion(t *testing.T) {
	for _, h := range []HintLevel{HintNone, HintFlush, HintFlushPrefetch} {
		cfg := DefaultConfig(1)
		cfg.Processes = 1
		cfg.TransactionsPerProcess = 1
		cfg.Hints = h
		w := New(cfg)
		s := w.Stream(0)
		var in trace.Instr
		var flushes, prefetches uint64
		for s.Next(&in) {
			switch in.Op {
			case trace.OpFlush:
				flushes++
			case trace.OpPrefetchX:
				prefetches++
			}
		}
		switch h {
		case HintNone:
			if flushes != 0 || prefetches != 0 {
				t.Errorf("HintNone: flushes=%d prefetches=%d", flushes, prefetches)
			}
		case HintFlush:
			if flushes == 0 || prefetches != 0 {
				t.Errorf("HintFlush: flushes=%d prefetches=%d", flushes, prefetches)
			}
		case HintFlushPrefetch:
			if flushes == 0 || prefetches == 0 {
				t.Errorf("HintFlushPrefetch: flushes=%d prefetches=%d", flushes, prefetches)
			}
		}
	}
}
