package oltp

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/db"
	"repro/internal/trace"
)

// Mid-run checkpoint support. The generators are closures over live
// engine state and cannot be serialized directly; instead, restore
// re-generates each stream from scratch by drawing the same number of
// instructions from a freshly built workload. That replays every
// per-stream RNG draw bit-exactly, and every engine interaction except
// the ones whose results depend on the global interleaving of the
// streams: db.TPCB.HistoryAppend and db.RedoLog.Alloc hand out slots
// from shared cursors, and their return values feed emitted addresses.
// Those two calls are therefore routed through a per-stream log — the
// recording run appends (block, addr) and address-slice results; replay
// consumes the log instead of touching the shared engine. TPCB.Apply is
// commutative (per-account/teller/branch sums) and simply re-runs; the
// authoritative engine state is restored from its snapshot afterwards.

// histEvent is one logged HistoryAppend result.
type histEvent struct {
	Block int
	Addr  uint64
}

// workloadState is the serialized form of SnapshotWorkload.
type workloadState struct {
	Drawn        []uint64      // instructions drawn, per process
	Hist         [][]histEvent // HistoryAppend results, per process
	Allocs       [][][]uint64  // RedoLog.Alloc results, per process
	TPCB         db.TPCBState
	Redo         db.RedoLogState
	Transactions uint64
}

// register tracks a process's generation state for checkpointing.
func (w *Workload) register(p *procState) {
	for len(w.procs) <= p.proc {
		w.procs = append(w.procs, nil)
	}
	w.procs[p.proc] = p
}

// EnableCheckpointing arms the shared-interaction logs. It must be
// called before any instructions are drawn; without it SnapshotWorkload
// fails (the logs would be incomplete).
func (w *Workload) EnableCheckpointing() { w.recording = true }

// historyAppend returns the next history slot: the logged result during
// replay, the live engine's (recorded when checkpointing is armed)
// otherwise.
func (p *procState) historyAppend() (int, uint64) {
	if p.histPos < len(p.hist) {
		ev := p.hist[p.histPos]
		p.histPos++
		return ev.Block, ev.Addr
	}
	block, addr := p.w.tpcb.HistoryAppend()
	if p.w.recording {
		p.hist = append(p.hist, histEvent{Block: block, Addr: addr})
		p.histPos = len(p.hist)
	}
	return block, addr
}

// redoAlloc returns the next redo allocation: logged during replay,
// live (and recorded) otherwise.
func (p *procState) redoAlloc(n int) []uint64 {
	if p.allocPos < len(p.allocs) {
		addrs := p.allocs[p.allocPos]
		p.allocPos++
		return addrs
	}
	addrs := p.w.redo.Alloc(n)
	if p.w.recording {
		p.allocs = append(p.allocs, addrs)
		p.allocPos = len(p.allocs)
	}
	return addrs
}

// SnapshotWorkload serializes the generation-time state: per-stream
// draw counts and shared-interaction logs plus the logical engine
// state. It implements core.WorkloadCheckpointer.
func (w *Workload) SnapshotWorkload() ([]byte, error) {
	if !w.recording {
		return nil, fmt.Errorf("oltp: checkpointing was not enabled before generation started")
	}
	if err := w.err; err != nil {
		return nil, fmt.Errorf("oltp: workload failed, refusing to checkpoint: %w", err)
	}
	st := workloadState{
		TPCB:         w.tpcb.Snapshot(),
		Redo:         w.redo.Snapshot(),
		Transactions: w.Transactions,
	}
	if len(w.procs) != w.cfg.Processes {
		return nil, fmt.Errorf("oltp: %d of %d process streams created, cannot checkpoint", len(w.procs), w.cfg.Processes)
	}
	for proc, p := range w.procs {
		if p == nil {
			return nil, fmt.Errorf("oltp: process %d has no stream, cannot checkpoint", proc)
		}
		st.Drawn = append(st.Drawn, p.gen.Drawn)
		st.Hist = append(st.Hist, p.hist)
		st.Allocs = append(st.Allocs, p.allocs)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("oltp: encoding workload state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreWorkload rewinds a freshly built workload (same Config, all
// streams created, none drawn from) to a checkpoint: each stream
// replays its recorded draw count against the logged shared
// interactions, then the logical engine state is restored. It
// implements core.WorkloadCheckpointer.
func (w *Workload) RestoreWorkload(data []byte) error {
	var st workloadState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("oltp: decoding workload state: %w", err)
	}
	if len(st.Drawn) != w.cfg.Processes || len(st.Hist) != w.cfg.Processes || len(st.Allocs) != w.cfg.Processes {
		return fmt.Errorf("oltp: checkpoint has %d processes, configured %d", len(st.Drawn), w.cfg.Processes)
	}
	if len(w.procs) != w.cfg.Processes {
		return fmt.Errorf("oltp: %d of %d process streams created, cannot restore", len(w.procs), w.cfg.Processes)
	}
	w.recording = true
	var in trace.Instr
	for proc, p := range w.procs {
		if p == nil {
			return fmt.Errorf("oltp: process %d has no stream, cannot restore", proc)
		}
		if p.gen.Drawn != 0 {
			return fmt.Errorf("oltp: process %d stream already drawn from, cannot restore", proc)
		}
		p.hist = st.Hist[proc]
		p.histPos = 0
		p.allocs = st.Allocs[proc]
		p.allocPos = 0
		for p.gen.Drawn < st.Drawn[proc] {
			if !p.gen.Next(&in) {
				if w.err != nil {
					return fmt.Errorf("oltp: replaying process %d: %w", proc, w.err)
				}
				return fmt.Errorf("oltp: process %d stream ended at %d of %d instructions during replay",
					proc, p.gen.Drawn, st.Drawn[proc])
			}
		}
		if p.histPos != len(p.hist) || p.allocPos != len(p.allocs) {
			return fmt.Errorf("oltp: process %d replay consumed %d/%d history and %d/%d redo events",
				proc, p.histPos, len(p.hist), p.allocPos, len(p.allocs))
		}
	}
	if w.err != nil {
		return fmt.Errorf("oltp: replay failed: %w", w.err)
	}
	// The replayed Apply calls re-derived the commutative balances; the
	// snapshot is authoritative for the shared cursors it never touched.
	w.tpcb.Restore(st.TPCB)
	w.redo.Restore(st.Redo)
	w.Transactions = st.Transactions
	return nil
}
