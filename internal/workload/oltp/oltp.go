// Package oltp generates the OLTP workload: TPC-B style banking
// transactions against the miniature engine in internal/db, reproducing the
// memory behaviour the paper measured on Oracle (Section 2.1.1): a large
// streaming instruction footprint (~560KB), dependent-load hash-chain
// lookups in the buffer directory, latch-protected fine-grain updates of
// shared metadata (redo allocation, transaction slots, branch/history rows)
// that migrate between processors, a random account access pattern over a
// large block-buffer area, and a blocking commit (log write) per
// transaction that drives context switching among the eight server
// processes per CPU.
package oltp

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/trace"
	"repro/internal/workload"
)

// HintLevel selects the Section 4.2 software hints inserted into the code.
type HintLevel int

const (
	// HintNone is the unmodified workload.
	HintNone HintLevel = iota
	// HintFlush adds flush/write-through hints at the ends of the critical
	// sections updating migratory data.
	HintFlush
	// HintFlushPrefetch additionally prefetches migratory data exclusively
	// at the beginnings of those critical sections.
	HintFlushPrefetch
)

// Config scales the workload.
type Config struct {
	Processes              int // total server processes (paper: 8 per CPU)
	TransactionsPerProcess int
	Branches               int     // TPC-B scale (paper: 40)
	CommitLatency          uint32  // cycles blocked at commit (log write + next request)
	PathRoutines           int     // SQL-path routines (instruction footprint)
	RoutineBytes           int     // bytes of text per routine
	PathFraction           float64 // fraction of the path walked per transaction
	RoutineRepeat          int     // consecutive executions of each path routine
	Hints                  HintLevel
	Seed                   uint64
}

// DefaultConfig returns the paper-matched scaling for nodes processors.
func DefaultConfig(nodes int) Config {
	return Config{
		Processes:              8 * nodes,
		TransactionsPerProcess: 3,
		Branches:               40,
		CommitLatency:          100_000, // ~100us log write + request wait
		PathRoutines:           112,     // x 4KB + helpers ~= 560KB footprint
		RoutineBytes:           4096,
		PathFraction:           0.5,
		// Each routine runs twice consecutively (inner control-flow
		// revisits), matching the paper's effective I-miss intensity:
		// the footprint streams through the L1I, but not every fetched
		// line is a miss.
		RoutineRepeat: 2,
		Seed:          1,
	}
}

// Workload is the shared engine + code layout; all processes share text and
// SGA, as Oracle server processes do.
type Workload struct {
	cfg  Config
	tpcb *db.TPCB
	buf  *db.BufferCache
	redo *db.RedoLog

	cs      *workload.CodeSpace
	path    []*workload.Routine
	rBegin  *workload.Routine
	rBufGet *workload.Routine
	rApply  *workload.Routine
	rRedo   *workload.Routine
	rHist   *workload.Routine
	rCommit *workload.Routine

	Transactions uint64
	err          error // first database-model failure (see Err)

	// Checkpoint support (see snapshot.go). procs holds the per-process
	// generation state, indexed by process number; recording arms the
	// shared-interaction logs that make mid-run restore possible.
	procs     []*procState
	recording bool
}

// fail records the first workload-model failure; generation stops cleanly
// at the current transaction instead of panicking mid-run.
func (w *Workload) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Err returns the first database-model failure encountered while
// generating the trace (nil if none). Runners must check it after a run:
// a failed workload ends its streams early, which would otherwise read as
// a suspiciously fast success.
func (w *Workload) Err() error { return w.err }

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.Processes <= 0 {
		panic("oltp: need at least one process")
	}
	if cfg.PathFraction <= 0 || cfg.PathFraction > 1 {
		cfg.PathFraction = 0.5
	}
	w := &Workload{
		cfg:  cfg,
		tpcb: db.NewTPCB(db.TPCBConfig{Branches: cfg.Branches}),
		redo: db.NewRedoLog(1 << 20),
		cs:   workload.NewCodeSpace(db.CodeBase),
	}
	w.buf = db.NewBufferCache(w.tpcb.TotalBlocks()+1024, 4096)
	for i := 0; i < cfg.PathRoutines; i++ {
		w.path = append(w.path, w.cs.NewRoutine("sqlpath", cfg.RoutineBytes))
	}
	w.rBegin = w.cs.NewRoutine("txbegin", 2048)
	w.rBufGet = w.cs.NewRoutine("bufget", 2048)
	w.rApply = w.cs.NewRoutine("apply", 2048)
	w.rRedo = w.cs.NewRoutine("redogen", 2048)
	w.rHist = w.cs.NewRoutine("history", 2048)
	w.rCommit = w.cs.NewRoutine("commit", 2048)
	return w
}

// Footprint returns the instruction footprint in bytes (~560KB by default).
func (w *Workload) Footprint() uint64 { return w.cs.Footprint() }

// Resolve maps a PC to the engine routine containing it (for profilers).
func (w *Workload) Resolve(pc uint64) (string, bool) { return w.cs.Resolve(pc) }

// TPCB exposes the engine for verification.
func (w *Workload) TPCB() *db.TPCB { return w.tpcb }

// ApproxInstrPerTx estimates dynamic instructions per transaction (used to
// size warm-up budgets).
func (w *Workload) ApproxInstrPerTx() uint64 {
	repeat := w.cfg.RoutineRepeat
	if repeat < 1 {
		repeat = 1
	}
	pathInstr := float64(w.cfg.PathRoutines) * w.cfg.PathFraction *
		float64(w.cfg.RoutineBytes) / 4 * float64(repeat)
	return uint64(pathInstr*1.05) + 3000
}

// procState is the per-process generation state.
type procState struct {
	w        *Workload
	proc     int
	tx       int
	pathPos  int // rotating window into the SQL path
	privHot  uint64
	privCold uint64
	hotTop   uint64

	gen *workload.Gen

	// Shared-interaction log (see snapshot.go): the results of this
	// process's order-dependent calls into the shared engine, in stream
	// order. While histPos/allocPos trail the log lengths the stream is
	// replaying a restored checkpoint; once they catch up, live calls
	// resume and (when recording) extend the logs.
	hist     []histEvent
	histPos  int
	allocs   [][]uint64
	allocPos int
}

// Stream returns the instruction stream of server process proc.
func (w *Workload) Stream(proc int) trace.Stream {
	p := &procState{
		w:       w,
		proc:    proc,
		pathPos: proc % len(w.path),
		privHot: db.PrivateBase(proc),
	}
	e := workload.NewEmitter(w.cfg.Seed*1_000_003 + uint64(proc))
	// The emitter starts in a per-process copy of the dispatch loop that
	// reads client requests and drives transactions.
	stub := w.cs.NewRoutine("dispatch", 4096)
	e.Call(stub)
	p.gen = workload.NewGen(e, p.refillTx)
	w.register(p)
	return p.gen
}

// hotAddr: ~32KB hot private working set (stack frames, cursors) -> hits.
func (p *procState) hotAddr(e *workload.Emitter) uint64 {
	return p.privHot + uint64(e.Rand().IntN(32*1024))&^7
}

// coldAddr: sequential walk of a ~64KB private area (PGA arrays, cursor
// state). Eight processes' areas exceed the L1 but sit comfortably in the
// L2, so these references are the steady L1-miss/L2-hit traffic that gives
// OLTP its large L2 component.
func (p *procState) coldAddr(e *workload.Emitter) uint64 {
	p.privCold += 24
	if p.privCold >= 64<<10 {
		p.privCold = 0
	}
	return db.PrivateBase(p.proc) + 64*1024 + p.privCold
}

// planAddr: reference into the shared plan/dictionary cache. Accesses are
// heavily skewed to a hot subset (the cached plans of the one running
// statement), with an occasional cold probe over the full 16MB region;
// read-shared across processes, so the hot subset settles into every L2.
func (p *procState) planAddr(e *workload.Emitter) uint64 {
	if e.Rand().IntN(16) != 0 {
		return db.SharedPlanBase + uint64(e.Rand().IntN(384<<10))&^7
	}
	return db.SharedPlanBase + uint64(e.Rand().IntN(16<<20))&^7
}

// statsIdx picks a global statistics/session counter, skewed onto a few
// very hot ones — the Section 4.2 concentration (most migratory write
// misses land on a small fraction of the lines).
func (p *procState) statsIdx(e *workload.Emitter) int {
	if e.Rand().IntN(2) == 0 {
		return e.Rand().IntN(3) // the hot handful
	}
	return e.Rand().IntN(64)
}

// statsCtrAddr returns counter idx's line. Counters sit on separate pages
// (as SGA statistics structures do), so first-touch homing spreads them
// across the nodes.
func statsCtrAddr(idx int) uint64 {
	return db.MetaBase + 0x0200_0000 + uint64(idx)*8192
}

// statsLatchAddr returns the latch protecting counter idx.
func statsLatchAddr(idx int) uint64 {
	return db.MetaBase + 0x000C_0000 + uint64(idx)*db.LineBytes
}

// refillTx enqueues the phases of the next transaction.
func (p *procState) refillTx(g *workload.Gen) bool {
	if p.tx >= p.w.cfg.TransactionsPerProcess {
		return false
	}
	p.tx++
	p.w.Transactions++
	w := p.w
	rng := g.E.Rand()

	// Keep the dispatch loop's PC within its routine across transactions.
	g.Enqueue(func(e *workload.Emitter) {
		if e.Remaining() < 1024 {
			e.LoopBack()
		}
	})

	// TPC-B parameter generation: random teller, its branch, and an
	// account in that branch 85% of the time.
	tid := rng.IntN(w.tpcb.Tellers)
	bid := tid / 10
	var aid int
	if rng.IntN(100) < 85 {
		aid = bid*100_000 + rng.IntN(100_000)
	} else {
		aid = rng.IntN(w.tpcb.Accounts)
	}
	delta := int64(rng.IntN(1_999_999) - 999_999)
	if err := w.tpcb.Apply(aid, tid, bid, delta); err != nil {
		w.fail(fmt.Errorf("oltp: tx %d: applying update (aid=%d tid=%d bid=%d): %w", p.tx, aid, tid, bid, err))
		return false
	}

	// Phase 1: SQL path (parse/bind/execute plumbing): a rotating window
	// of the path routines — the streaming instruction footprint.
	n := int(float64(len(w.path)) * w.cfg.PathFraction)
	repeat := w.cfg.RoutineRepeat
	if repeat < 1 {
		repeat = 1
	}
	for i := 0; i < n; i++ {
		r := w.path[(p.pathPos+i)%len(w.path)]
		for k := 0; k < repeat; k++ {
			g.Enqueue(func(e *workload.Emitter) { p.sqlRoutine(e, r) })
		}
	}
	p.pathPos = (p.pathPos + n) % len(w.path)

	// Phase 2: begin transaction (rollback-segment slot).
	g.Enqueue(func(e *workload.Emitter) { p.txBegin(e) })

	// Phase 3: the three row updates.
	for _, upd := range []struct {
		block int
		row   uint64
	}{
		{w.tpcb.AccountBlock(aid), w.tpcb.AccountRowAddr(aid)},
		{w.tpcb.TellerBlock(tid), w.tpcb.TellerRowAddr(tid)},
		{w.tpcb.BranchBlock(bid), w.tpcb.BranchRowAddr(bid)},
	} {
		upd := upd
		g.Enqueue(func(e *workload.Emitter) { p.bufferGet(e, upd.block) })
		g.Enqueue(func(e *workload.Emitter) { p.applyUpdate(e, upd.block, upd.row) })
	}

	// Phase 4: history insert (globally shared insertion point).
	hblock, hrow := p.historyAppend()
	g.Enqueue(func(e *workload.Emitter) { p.bufferGet(e, hblock) })
	g.Enqueue(func(e *workload.Emitter) { p.historyInsert(e, hblock, hrow) })

	// Phase 5: commit (redo write + blocking log write).
	g.Enqueue(func(e *workload.Emitter) { p.commit(e) })
	return true
}

// sqlRoutine walks one SQL-path routine straight through: ALU work over
// private hot state, colder private areas, the shared plan cache, and the
// global statistics counters. The operation mix at each code site is
// derived from the PC, so the routine's instruction sequence (and hence
// its branch sites) is identical on every execution; only the data
// addresses vary.
func (p *procState) sqlRoutine(e *workload.Emitter, r *workload.Routine) {
	e.Call(r)
	for e.Remaining() > 96 {
		e.ALU(2, false)
		// A sparse sprinkling of global statistics/session counter
		// updates: migratory data generated by a small set of static
		// instructions (Section 4.2). Most counters are latched (their
		// updates fall inside identifiable critical sections); the rest
		// are lock-free.
		if workload.SiteChoice(e.PC()^0x5bd1, 192) == 0 {
			idx := p.statsIdx(e)
			ctr := statsCtrAddr(idx)
			// These are the "key instructions" the paper's characterization
			// identifies (the small static set generating most migratory
			// references); the Section 4.2 hints target exactly them.
			if p.w.cfg.Hints >= HintFlushPrefetch {
				e.Prefetch(ctr, true)
			}
			latched := workload.SiteChoice(e.PC()^0x77f3, 3) != 0
			if latched {
				latch := statsLatchAddr(idx)
				e.LockAcquire(latch)
				e.Load(ctr, false)
				e.ALU(1, true)
				e.Store(ctr)
				e.LockRelease(latch)
			} else {
				e.Load(ctr, false)
				e.ALU(1, true)
				e.Store(ctr)
			}
			if p.w.cfg.Hints >= HintFlush {
				e.Flush(ctr)
			}
		}
		// Dictionary chain walk at a sparse set of sites: short dependent
		// loads in the hot plan-cache subset.
		if workload.SiteChoice(e.PC()^0x2b8f, 40) == 0 {
			a := db.SharedPlanBase + uint64(e.Rand().IntN(256<<10))&^7
			e.LoadChain([]uint64{a, a + 64, a + 128})
		}
		switch workload.SiteChoice(e.PC(), 16) {
		case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9:
			e.Load(p.hotAddr(e), false)
		case 10:
			e.Load(p.coldAddr(e), false)
		case 11:
			e.Load(p.planAddr(e), false)
		case 12:
			e.Store(p.hotAddr(e))
		case 13:
			// Stores into the colder private area (cursor state, sort
			// runs): write misses that overlap behind the write buffer —
			// the write-driven MSHR occupancy of Figures 2(d)-(g).
			e.Store(p.coldAddr(e))
		case 14:
			e.ALU(3, true)
		case 15:
			// Session/SGA state read (shared, read-mostly).
			e.Load(db.MetaBase+0x000B_0000+uint64(e.Rand().IntN(128))*db.LineBytes, false)
		}
	}
	e.Ret()
}

// txBegin updates the process's transaction slot under its rollback
// segment's latch (migratory among the processes hashing to the segment).
func (p *procState) txBegin(e *workload.Emitter) {
	w := p.w
	e.Call(w.rBegin)
	e.ALU(6, false)
	e.LockAcquire(w.tpcb.SegmentLatchAddr(p.proc))
	e.Load(w.tpcb.SlotAddr(p.proc), false)
	e.ALU(2, true)
	e.Store(w.tpcb.SlotAddr(p.proc))
	e.LockRelease(w.tpcb.SegmentLatchAddr(p.proc))
	e.ALU(4, false)
	e.Ret()
}

// bufferGet performs the buffer-cache lookup of block: hash, latch the
// bucket, walk the header chain (dependent loads), pin (header store).
func (p *procState) bufferGet(e *workload.Emitter, block int) {
	w := p.w
	e.Call(w.rBufGet)
	e.ALU(5, true) // hash computation
	latch := w.buf.BucketLatchAddr(block)
	e.LockAcquire(latch)
	e.LoadChain(w.buf.ChainWalk(block))
	e.ALU(2, true)
	e.Store(w.buf.HeaderAddr(block)) // pin count
	e.LockRelease(latch)
	e.ALU(3, false)
	e.Ret()
}

// applyUpdate modifies a row: generate redo under the redo-allocation
// latch, then apply the change to the block under the block lock. These
// are the critical sections whose data the Section 4.2 hints target.
func (p *procState) applyUpdate(e *workload.Emitter, block int, rowAddr uint64) {
	w := p.w
	hints := w.cfg.Hints

	// Redo generation.
	e.Call(w.rRedo)
	e.ALU(4, false)
	logAddrs := p.redoAlloc(120)
	if hints >= HintFlushPrefetch {
		e.Prefetch(logAddrs[0], true)
	}
	e.LockAcquire(w.redo.AllocLatchAddr())
	for _, a := range logAddrs {
		e.Store(a)
		e.ALU(1, true)
	}
	e.LockRelease(w.redo.AllocLatchAddr())
	if hints >= HintFlush {
		for _, a := range logAddrs {
			e.Flush(a)
		}
	}
	e.Ret()

	// Block change under the block lock (buffer exclusive pin).
	e.Call(w.rApply)
	blockLock := w.buf.HeaderAddr(block) + 64
	if hints >= HintFlushPrefetch {
		e.Prefetch(rowAddr, true)
	}
	e.LockAcquire(blockLock)
	e.Load(rowAddr, false)                // row piece
	e.Load(rowAddr+32, true)              // column data (dependent)
	e.ALU(4, true)                        // balance arithmetic
	e.Store(rowAddr)                      // new balance
	e.Store(rowAddr + 32)                 // row header update
	e.Load(db.BlockAddr(block)+16, false) // block SCN
	e.ALU(2, true)
	e.Store(db.BlockAddr(block) + 16)
	e.LockRelease(blockLock)
	if hints >= HintFlush {
		e.Flush(rowAddr)
		e.Flush(db.BlockAddr(block) + 16)
	}
	e.ALU(4, false)
	e.Ret()
}

// historyInsert appends the history row (insertion point shared by all).
func (p *procState) historyInsert(e *workload.Emitter, block int, rowAddr uint64) {
	w := p.w
	e.Call(w.rHist)
	e.ALU(4, false)
	blockLock := w.buf.HeaderAddr(block) + 64
	if w.cfg.Hints >= HintFlushPrefetch {
		e.Prefetch(rowAddr, true)
	}
	e.LockAcquire(blockLock)
	e.Store(rowAddr)
	e.Store(rowAddr + 24)
	e.Load(db.BlockAddr(block)+16, false)
	e.ALU(1, true)
	e.Store(db.BlockAddr(block) + 16)
	e.LockRelease(blockLock)
	if w.cfg.Hints >= HintFlush {
		e.Flush(rowAddr)
	}
	e.Ret()
}

// commit writes the commit record and blocks on the log writer (the
// context-switch point, as in the traced system).
func (p *procState) commit(e *workload.Emitter) {
	w := p.w
	e.Call(w.rCommit)
	e.ALU(6, false)
	logAddrs := p.redoAlloc(32)
	e.LockAcquire(w.redo.AllocLatchAddr())
	e.Store(logAddrs[0])
	e.Load(w.redo.WriterStateAddr(), false)
	e.ALU(2, true)
	e.LockRelease(w.redo.AllocLatchAddr())
	if w.cfg.Hints >= HintFlush {
		e.Flush(logAddrs[0])
	}
	e.MemBar()
	e.Syscall(w.cfg.CommitLatency)
	e.ALU(4, false)
	e.Ret()
}
