// Package workload turns database-engine operations (internal/db) into the
// synthetic Alpha-like instruction streams that stand in for the paper's
// ATOM-derived Oracle traces.
//
// The central abstraction is a code-layout model: engine functions are
// Routines laid out at fixed PCs in a text segment whose total size is the
// instruction footprint (about 560KB for OLTP, which overwhelms the 128KB
// L1 I-cache but fits the 8MB L2 — the regime Section 4.1 studies). A
// routine executes mostly straight-line, so instruction misses form short
// sequential streams (the property the instruction stream buffer exploits),
// with data-dependent conditional branches mixed in at realistic density.
// Loads and stores take their addresses from the engine's own structures,
// and the register dependences between them model pointer-chasing lookups.
package workload

import (
	"math/rand/v2"

	"repro/internal/trace"
)

// SiteChoice derives a stable pseudo-random choice in [0, n) from a code
// site. Using the PC rather than an RNG keeps every routine's instruction
// sequence identical across executions (only addresses vary), so branch
// predictor and BTB sites are stationary, as for real compiled code.
func SiteChoice(pc uint64, n int) int {
	h := pc * 0x9E3779B97F4A7C15
	return int((h >> 33) % uint64(n))
}

// CodeSpace allocates routine PCs within a text segment.
type CodeSpace struct {
	base     uint64
	next     uint64
	routines []*Routine
}

// NewCodeSpace starts a text segment at base.
func NewCodeSpace(base uint64) *CodeSpace {
	return &CodeSpace{base: base, next: base}
}

// Footprint returns the bytes of code allocated so far.
func (cs *CodeSpace) Footprint() uint64 { return cs.next - cs.base }

// Routine is one engine function: a PC range executed mostly straight-line.
type Routine struct {
	Name string
	Base uint64
	End  uint64
}

// NewRoutine allocates size bytes of text for a routine.
func (cs *CodeSpace) NewRoutine(name string, size int) *Routine {
	r := &Routine{Name: name, Base: cs.next, End: cs.next + uint64(size)}
	cs.next += uint64(size)
	cs.routines = append(cs.routines, r)
	return r
}

// Routines returns the allocated routines in layout (address) order.
func (cs *CodeSpace) Routines() []*Routine { return cs.routines }

// Resolve maps a PC back to the routine containing it. Routines are
// allocated at monotonically increasing addresses, so a binary search over
// Base suffices.
func (cs *CodeSpace) Resolve(pc uint64) (string, bool) {
	lo, hi := 0, len(cs.routines)
	for lo < hi {
		mid := (lo + hi) / 2
		if cs.routines[mid].Base <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return "", false
	}
	r := cs.routines[lo-1]
	if pc >= r.End {
		return "", false
	}
	return r.Name, true
}

// Emitter produces instructions with consistent PCs, register rotation,
// call/return bookkeeping, and automatic branch seasoning.
type Emitter struct {
	rng *rand.Rand

	out []trace.Instr
	pos int

	pc          uint64
	retStack    []uint64
	routine     *Routine
	routStack   []*Routine
	lastDest    uint8
	nextReg     uint8
	sinceBranch int

	// BranchEvery inserts a data-dependent conditional branch roughly every
	// N instructions (default 6, matching integer-code branch density).
	BranchEvery int

	// PredictableSeasoning makes all automatically inserted branches
	// strongly biased (loop-style code, e.g. the DSS scan); by default a
	// minority of sites are near-random, as in pointer-heavy OLTP code.
	PredictableSeasoning bool

	Emitted uint64
}

// NewEmitter returns an emitter seeded deterministically per process.
func NewEmitter(seed uint64) *Emitter {
	return &Emitter{
		rng:         rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15)),
		nextReg:     1,
		BranchEvery: 6,
	}
}

// Rand exposes the emitter's deterministic RNG for workload decisions.
func (e *Emitter) Rand() *rand.Rand { return e.rng }

// PC returns the current emission program counter (for site-stable
// decisions via SiteChoice).
func (e *Emitter) PC() uint64 { return e.pc }

// pop moves the next buffered instruction into in, reporting availability.
func (e *Emitter) pop(in *trace.Instr) bool {
	if e.pos >= len(e.out) {
		e.out = e.out[:0]
		e.pos = 0
		return false
	}
	*in = e.out[e.pos]
	e.pos++
	return true
}

// reg returns the next rotating scratch register.
func (e *Emitter) reg() uint8 {
	r := e.nextReg
	e.nextReg++
	if e.nextReg > 56 { // leave a few registers out of rotation
		e.nextReg = 1
	}
	return r
}

func (e *Emitter) push(in trace.Instr) {
	in.PC = e.pc
	e.out = append(e.out, in)
	e.Emitted++
}

// Call enters routine r: an OpCall instruction plus the PC switch.
func (e *Emitter) Call(r *Routine) {
	e.push(trace.Instr{Op: trace.OpCall, Target: r.Base})
	e.retStack = append(e.retStack, e.pc+4)
	e.routStack = append(e.routStack, e.routine)
	e.routine = r
	e.pc = r.Base
	e.sinceBranch = 0
}

// Ret leaves the current routine.
func (e *Emitter) Ret() {
	if len(e.retStack) == 0 {
		panic("workload: Ret without Call")
	}
	target := e.retStack[len(e.retStack)-1]
	e.retStack = e.retStack[:len(e.retStack)-1]
	e.push(trace.Instr{Op: trace.OpReturn, Target: target})
	e.pc = target
	e.routine = e.routStack[len(e.routStack)-1]
	e.routStack = e.routStack[:len(e.routStack)-1]
}

// InRoutine reports how many bytes remain before the routine's end.
func (e *Emitter) Remaining() uint64 {
	if e.routine == nil || e.pc >= e.routine.End {
		return 0
	}
	return e.routine.End - e.pc
}

// biasFor derives a stable per-site taken probability: most branch sites
// are highly predictable, a minority are data-dependent coin flips. The
// blend reproduces OLTP's ~11% conditional misprediction rate on the
// hybrid predictor.
func biasFor(pc uint64) float64 {
	h := pc * 0x2545F4914F6CDD1D >> 56
	switch {
	case h < 168: // ~66%: error checks etc., almost never taken
		return 0.02
	case h < 207: // ~15%: loop-like, almost always taken
		return 0.97
	case h < 237: // ~12%: biased data-dependent
		return 0.10
	default: // ~7%: poorly predictable data-dependent
		return 0.30
	}
}

// branch emits a conditional branch whose outcome follows the site's bias.
// Taken branches skip a short forward distance (the emitter continues at
// the target, so trace PCs stay consistent); the instruction stream stays
// mostly sequential, as the paper observes for OLTP code.
func (e *Emitter) branch() {
	bias := biasFor(e.pc)
	if e.PredictableSeasoning {
		bias = 0.03
	}
	taken := e.rng.Float64() < bias
	skip := uint64(8 + e.rng.IntN(4)*8)
	target := e.pc + 4 + skip
	e.push(trace.Instr{Op: trace.OpBranch, Src1: e.lastDest, Taken: taken, Target: target})
	if taken {
		e.pc = target
	} else {
		e.pc += 4
	}
	e.sinceBranch = 0
}

// step advances the PC after a non-branch instruction and seasons the
// stream with branches at the configured density.
func (e *Emitter) step() {
	e.pc += 4
	e.sinceBranch++
	if e.sinceBranch >= e.BranchEvery {
		e.branch()
	}
}

// ALU emits n integer operations. chain makes them serially dependent
// (pointer arithmetic, comparisons); otherwise they pair up independently,
// giving the ILP that multiple issue exploits.
func (e *Emitter) ALU(n int, chain bool) {
	for i := 0; i < n; i++ {
		d := e.reg()
		src := uint8(trace.NoReg)
		if chain || i%3 != 0 {
			src = e.lastDest
		}
		e.push(trace.Instr{Op: trace.OpIntALU, Src1: src, Dest: d})
		e.lastDest = d
		e.step()
	}
}

// FPALU emits n floating-point operations (DSS aggregation arithmetic).
func (e *Emitter) FPALU(n int, chain bool) {
	for i := 0; i < n; i++ {
		d := e.reg()
		src := uint8(trace.NoReg)
		if chain {
			src = e.lastDest
		}
		e.push(trace.Instr{Op: trace.OpFPALU, Src1: src, Dest: d})
		e.lastDest = d
		e.step()
	}
}

// Load emits a load of addr. If dep, its address depends on the previous
// result (pointer chase); the loaded value becomes the new dependence.
func (e *Emitter) Load(addr uint64, dep bool) uint8 {
	d := e.reg()
	src := uint8(trace.NoReg)
	if dep {
		src = e.lastDest
	}
	e.push(trace.Instr{Op: trace.OpLoad, Addr: addr, Src1: src, Dest: d})
	e.lastDest = d
	e.step()
	return d
}

// LoadChain emits serially dependent loads (hash-chain / B-tree walks).
func (e *Emitter) LoadChain(addrs []uint64) {
	for _, a := range addrs {
		e.Load(a, true)
	}
}

// Store emits a store of the last result to addr.
func (e *Emitter) Store(addr uint64) {
	e.push(trace.Instr{Op: trace.OpStore, Addr: addr, Src1: e.lastDest})
	e.step()
}

// LockAcquire emits a lock acquire on addr; acquire ordering is provided by
// the operation itself in the processor model.
func (e *Emitter) LockAcquire(addr uint64) {
	e.push(trace.Instr{Op: trace.OpLockAcquire, Addr: addr, Dest: e.reg()})
	e.pc += 4
	e.sinceBranch = 0
}

// LockRelease emits WMB + lock release, the Alpha idiom the paper models.
func (e *Emitter) LockRelease(addr uint64) {
	e.push(trace.Instr{Op: trace.OpWriteBar})
	e.pc += 4
	e.push(trace.Instr{Op: trace.OpLockRelease, Addr: addr, Src1: e.lastDest})
	e.pc += 4
	e.sinceBranch = 0
}

// LoopBack emits a taken backward branch to near the start of the current
// routine (a loop-closing branch: highly predictable, keeps tight loops
// like the DSS scan within a small instruction footprint).
func (e *Emitter) LoopBack() {
	target := e.routine.Base + 8
	e.push(trace.Instr{Op: trace.OpBranch, Src1: e.lastDest, Taken: true, Target: target})
	e.pc = target
	e.sinceBranch = 0
}

// CondBranch emits a conditional branch with an explicit outcome (used for
// predicate evaluation where the workload knows the data-derived result).
func (e *Emitter) CondBranch(taken bool) {
	skip := uint64(16)
	target := e.pc + 4 + skip
	e.push(trace.Instr{Op: trace.OpBranch, Src1: e.lastDest, Taken: taken, Target: target})
	if taken {
		e.pc = target
	} else {
		e.pc += 4
	}
	e.sinceBranch = 0
}

// MemBar emits a full barrier.
func (e *Emitter) MemBar() {
	e.push(trace.Instr{Op: trace.OpMemBar})
	e.pc += 4
}

// Syscall emits a blocking system call (context-switch hint) of lat cycles.
func (e *Emitter) Syscall(lat uint32) {
	e.push(trace.Instr{Op: trace.OpSyscall, Latency: lat})
	e.pc += 4
}

// Prefetch emits a software prefetch hint (Section 4.2). Exclusive
// requests ownership for an upcoming store.
func (e *Emitter) Prefetch(addr uint64, exclusive bool) {
	op := trace.OpPrefetch
	if exclusive {
		op = trace.OpPrefetchX
	}
	e.push(trace.Instr{Op: op, Addr: addr})
	e.step()
}

// Flush emits a software flush/write-through hint (Section 4.2).
func (e *Emitter) Flush(addr uint64) {
	e.push(trace.Instr{Op: trace.OpFlush, Addr: addr})
	e.step()
}

// Gen is a lazily generated instruction stream: a queue of steps (engine
// operations) refilled by the workload driver. It implements trace.Stream.
type Gen struct {
	E      *Emitter
	queue  []func(*Emitter)
	refill func(*Gen) bool
	done   bool

	// Drawn counts successful Next calls. Checkpoint restore re-generates
	// a stream by drawing Drawn instructions from a freshly built
	// generator, which replays every RNG draw and engine interaction in
	// the identical order (see the workloads' RestoreWorkload).
	Drawn uint64
}

// NewGen wires an emitter to a refill function that enqueues the next batch
// of steps (e.g. one transaction) and returns false when the workload ends.
func NewGen(e *Emitter, refill func(*Gen) bool) *Gen {
	return &Gen{E: e, refill: refill}
}

// Enqueue appends a step to be expanded later.
func (g *Gen) Enqueue(step func(*Emitter)) { g.queue = append(g.queue, step) }

// Next implements trace.Stream.
func (g *Gen) Next(in *trace.Instr) bool {
	for !g.E.pop(in) {
		if len(g.queue) == 0 {
			if g.done || !g.refill(g) {
				g.done = true
				return false
			}
			if len(g.queue) == 0 {
				g.done = true
				return false
			}
		}
		step := g.queue[0]
		g.queue = g.queue[1:]
		step(g.E)
	}
	g.Drawn++
	return true
}
