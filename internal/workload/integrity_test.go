package workload_test

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workload/dss"
	"repro/internal/workload/oltp"
)

// checkPCFlow verifies the control-flow integrity of a generated stream:
// each instruction's PC must follow from the previous one (sequential +4,
// or the declared branch/call/return target when taken). The simulator's
// fetch engine relies on this invariant to model I-cache line crossings.
func checkPCFlow(t *testing.T, s trace.Stream, limit int) {
	t.Helper()
	var in trace.Instr
	expect := uint64(0)
	haveExpect := false
	n := 0
	for n < limit && s.Next(&in) {
		n++
		if haveExpect && in.PC != expect {
			t.Fatalf("instruction %d: PC %#x, control flow expected %#x (prev op)", n, in.PC, expect)
		}
		switch {
		case in.Op == trace.OpBranch:
			if in.Taken {
				expect = in.Target
			} else {
				expect = in.PC + 4
			}
		case in.Op == trace.OpJump || in.Op == trace.OpCall || in.Op == trace.OpReturn:
			expect = in.Target
		default:
			expect = in.PC + 4
		}
		haveExpect = true
	}
	if n == 0 {
		t.Fatal("empty stream")
	}
}

func TestOLTPControlFlowIntegrity(t *testing.T) {
	cfg := oltp.DefaultConfig(1)
	cfg.Processes = 2
	cfg.TransactionsPerProcess = 1
	w := oltp.New(cfg)
	for p := 0; p < cfg.Processes; p++ {
		checkPCFlow(t, w.Stream(p), 200_000)
	}
}

func TestDSSControlFlowIntegrity(t *testing.T) {
	cfg := dss.DefaultConfig(1)
	cfg.Processes = 2
	cfg.RowsPerProcess = 3_000
	w := dss.New(cfg)
	for p := 0; p < cfg.Processes; p++ {
		checkPCFlow(t, w.Stream(p), 300_000)
	}
}

func TestSiteChoiceStable(t *testing.T) {
	for pc := uint64(0); pc < 4096; pc += 4 {
		a := workload.SiteChoice(pc, 16)
		b := workload.SiteChoice(pc, 16)
		if a != b {
			t.Fatal("SiteChoice not deterministic")
		}
		if a < 0 || a >= 16 {
			t.Fatalf("SiteChoice out of range: %d", a)
		}
	}
	// The distribution should cover all buckets.
	seen := map[int]bool{}
	for pc := uint64(0); pc < 1<<14; pc += 4 {
		seen[workload.SiteChoice(pc, 16)] = true
	}
	if len(seen) != 16 {
		t.Errorf("SiteChoice covers %d/16 buckets", len(seen))
	}
}

func TestRoutinesDoNotOverlap(t *testing.T) {
	cs := workload.NewCodeSpace(0x1000)
	r1 := cs.NewRoutine("a", 256)
	r2 := cs.NewRoutine("b", 512)
	if r1.End > r2.Base {
		t.Error("routines overlap")
	}
	if cs.Footprint() != 768 {
		t.Errorf("footprint = %d", cs.Footprint())
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	mk := func() []trace.Instr {
		cfg := oltp.DefaultConfig(1)
		cfg.Processes = 1
		cfg.TransactionsPerProcess = 1
		w := oltp.New(cfg)
		return trace.Collect(w.Stream(0), 50_000)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
