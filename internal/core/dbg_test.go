package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

func TestDebugBreakdown(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	sys, _ := NewSystem(cfg)
	sys.AddProcess(0, synthStream(2000, 1<<20))
	rep, err := sys.Run(RunOptions{Label: "dbg", MaxCycles: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		t.Logf("%-12s %10.0f", c, rep.Breakdown[c])
	}
	t.Logf("cycles=%d instr=%d mispred=%.3f l1i=%.3f l1d=%.3f l2=%.3f",
		rep.Cycles, rep.Instructions, rep.BranchMispred, rep.L1IMissRate, rep.L1DMissRate, rep.L2MissRate)
	t.Logf("l1 mshr dist=%v", rep.L1MSHRAll)
	t.Logf("l1 mshr read dist=%v", rep.L1MSHRRead)
	h := sys.Mem().Node(0)
	t.Logf("l1d mshr allocs=%d coalesced=%d fullstalls=%d", h.L1DMSHRs().Allocations, h.L1DMSHRs().Coalesced, h.L1DMSHRs().FullStalls)
	t.Logf("l2 mshr allocs=%d fullstalls=%d", h.L2MSHRs().Allocations, h.L2MSHRs().FullStalls)
}
