package core

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
)

// Epoch-parallel span application.
//
// The cycle loop in run() is serial by necessity: a core's Tick eagerly
// mutates shared machine state (directory and cache lines on other nodes
// via invalidations, the lock table, the shared page table), so active
// cycles must execute in fixed core order to stay deterministic. The
// parallelism the machine model does admit is the machine-wide quiet span
// found by fastForward(): a span [from, to] is only entered after every
// core's NextEvent bound (and the scheduler's, and every external cap —
// telemetry samples, watchdog, MaxCycles, context polls, checkpoint
// boundaries) proves that no core ticks inside it, and after the two
// asynchronous cross-core channels (speculative-load pokes, lock-release
// generations) have been re-checked at the span head. Inside such a span
// each core's bulk accounting (cpu.FastForward, sched.FastForward for its
// own queue) touches only that core's state, so the per-core applications
// are independent and can run on worker goroutines. The barrier at the end
// of the span restores the serial loop before any cycle that could couple
// cores — epochs synchronize exactly at the cycles the serial simulator
// would tick.
//
// Determinism: the jobs are disjoint (no two touch the same core or queue)
// and the pool joins all of them before the loop continues, so the machine
// state after the barrier is independent of worker scheduling and identical
// to applying the spans in core order — reports, telemetry, traces, and
// checkpoints are bit-identical to the serial engine. The fan-out is
// disabled when a Tracer is attached: trace spans share one ring buffer and
// their append order is part of the observable output.
//
// Worker goroutines are labeled with pprof labels ("core" = index) so CPU
// profiles of a parallel run attribute span work to the simulated core it
// belongs to rather than to an anonymous worker.

// minParallelSpan is the minimum quiet-span length (in cycles) worth
// handing to the worker pool; shorter spans are applied inline. Purely a
// cost gate: either path produces identical state.
const minParallelSpan = 256

// ffPool is a pool of persistent worker goroutines that apply per-core
// fast-forward spans. Created once per run when RunOptions.SimThreads > 1,
// closed when the run returns.
type ffPool struct {
	sys      *System
	jobs     chan int // core indices for the current span
	wg       sync.WaitGroup
	from, to uint64 // current span; written before dispatch, read by workers
}

// newFFPool starts threads workers (clamped to the core count and to
// GOMAXPROCS; at least one). The pool holds no locks between spans — the
// channel send/receive pairs order the span bounds with the jobs.
func newFFPool(s *System, threads int) *ffPool {
	if n := len(s.cores); threads > n {
		threads = n
	}
	if p := runtime.GOMAXPROCS(0); threads > p {
		threads = p
	}
	if threads < 1 {
		threads = 1
	}
	p := &ffPool{sys: s, jobs: make(chan int, len(s.cores))}
	for w := 0; w < threads; w++ {
		go p.worker()
	}
	return p
}

func (p *ffPool) worker() {
	for i := range p.jobs {
		pprof.Do(context.Background(), pprof.Labels("core", strconv.Itoa(i)), func(context.Context) {
			c := p.sys.cores[i]
			p.sys.sch.FastForward(i, c, p.from, p.to)
			c.FastForward(p.from, p.to)
		})
		p.wg.Done()
	}
}

// span applies the quiet span [from, to] to every core on the pool's
// workers and blocks until all applications have completed (the epoch
// barrier).
func (p *ffPool) span(from, to uint64) {
	p.from, p.to = from, to
	p.wg.Add(len(p.sys.cores))
	for i := range p.sys.cores {
		p.jobs <- i
	}
	p.wg.Wait()
}

// close stops the workers. Must not be called while a span is in flight.
func (p *ffPool) close() { close(p.jobs) }
