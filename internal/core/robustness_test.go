package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/diag"
	"repro/internal/trace"
)

// lockStream emits an acquire of lockAddr, a little work, and (optionally)
// the release. A holder that ends its stream without releasing models a
// process dying inside a critical section: every other process then spins
// on the lock forever.
func lockStream(lockAddr uint64, release bool) *trace.SliceStream {
	var ins []trace.Instr
	pc := uint64(0x30000)
	emit := func(in trace.Instr) {
		in.PC = pc
		pc += 4
		ins = append(ins, in)
	}
	emit(trace.Instr{Op: trace.OpLockAcquire, Addr: lockAddr})
	emit(trace.Instr{Op: trace.OpLoad, Addr: lockAddr + 64, Dest: 1})
	emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
	emit(trace.Instr{Op: trace.OpStore, Addr: lockAddr + 64, Src1: 2})
	if release {
		emit(trace.Instr{Op: trace.OpWriteBar})
		emit(trace.Instr{Op: trace.OpLockRelease, Addr: lockAddr})
	}
	return trace.NewSliceStream(ins)
}

// TestWatchdogTripsOnLivelock: one process acquires a lock and ends its
// stream without releasing; a second spins on the acquire forever. The
// watchdog must convert the livelock into a *ProgressError (with snapshot)
// well before the cycle bound, rather than burning MaxCycles.
func TestWatchdogTripsOnLivelock(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lockAddr = 0xA00000
	sys.AddProcess(0, lockStream(lockAddr, false)) // holder, never releases
	sys.AddProcess(1, lockStream(lockAddr, true))  // spins forever
	const window = 50_000
	_, err = sys.Run(RunOptions{
		Label:          "livelock",
		MaxCycles:      500_000_000, // far beyond the watchdog window
		WatchdogWindow: window,
	})
	var pe *ProgressError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProgressError", err)
	}
	if errors.Is(err, ErrMaxCycles) {
		t.Error("watchdog trip must not read as a cycle-limit error")
	}
	if pe.Window != window {
		t.Errorf("window = %d, want %d", pe.Window, window)
	}
	if pe.Cycle-pe.LastProgress < window {
		t.Errorf("tripped after only %d silent cycles", pe.Cycle-pe.LastProgress)
	}
	if pe.Snapshot == nil {
		t.Fatal("no machine snapshot attached")
	}
	// The snapshot must name the lock the machine is stuck on.
	text := pe.Snapshot.String()
	if !strings.Contains(text, "lock") {
		t.Errorf("snapshot does not mention the held lock:\n%s", text)
	}
}

// TestWatchdogDisabled: the same livelock with the watchdog off must run
// all the way to the cycle bound.
func TestWatchdogDisabled(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lockAddr = 0xA00000
	sys.AddProcess(0, lockStream(lockAddr, false))
	sys.AddProcess(1, lockStream(lockAddr, true))
	_, err = sys.Run(RunOptions{
		Label:           "livelock-nowd",
		MaxCycles:       200_000,
		WatchdogWindow:  50_000,
		DisableWatchdog: true,
	})
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	var ce *CycleLimitError
	if !errors.As(err, &ce) || ce.Snapshot == nil {
		t.Fatalf("cycle-limit error carries no snapshot: %v", err)
	}
}

// panicStream panics when the simulator asks for its nth instruction,
// standing in for an internal invariant violation inside the machine model.
type panicStream struct {
	n     int
	count int
}

func (p *panicStream) Next(in *trace.Instr) bool {
	if p.count >= p.n {
		panic("synthetic model failure")
	}
	p.count++
	*in = trace.Instr{Op: trace.OpIntALU, PC: 0x40000 + uint64(p.count)*4, Dest: 1}
	return true
}

// TestRunRecoversPanic: a panic inside the machine model must surface as a
// *diag.PanicError with the panic value, a stack, and a best-effort
// snapshot — not take the process down.
func TestRunRecoversPanic(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.AddProcess(0, &panicStream{n: 200})
	rep, err := sys.Run(RunOptions{Label: "panic", MaxCycles: 1_000_000})
	if rep != nil {
		t.Error("a recovered panic must not also return a report")
	}
	var pe *diag.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *diag.PanicError", err)
	}
	if pe.Value != "synthetic model failure" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if pe.Snapshot == nil {
		t.Error("no snapshot captured")
	}
	if !strings.Contains(pe.Error(), "synthetic model failure") {
		t.Errorf("Error() does not include the panic value: %s", pe.Error())
	}
}

// TestRunHonorsContext: a canceled context must stop the run promptly with
// a *CanceledError that unwraps to the context's cause.
func TestRunHonorsContext(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.AddProcess(0, synthStream(100_000, 1<<20))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first poll must notice
	_, err = sys.Run(RunOptions{Label: "canceled", MaxCycles: 500_000_000, Context: ctx})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("CanceledError does not unwrap to context.Canceled")
	}
	if ce.Cycle > 2*ctxCheckEvery {
		t.Errorf("cancellation noticed only at cycle %d", ce.Cycle)
	}
	if ce.Snapshot == nil {
		t.Error("CanceledError carries no machine snapshot")
	}
}

// TestSnapshotRenders: the diagnostic snapshot of a healthy running machine
// renders its major sections.
func TestSnapshotRenders(t *testing.T) {
	cfg := config.Default()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < cfg.Nodes; n++ {
		sys.AddProcess(n, synthStream(500, 1<<20))
	}
	if _, err := sys.Run(RunOptions{Label: "snap", MaxCycles: 50_000_000}); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot("test")
	text := snap.String()
	for _, want := range []string{"machine snapshot", "cycle", "cpu", "directory", "mesh"} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %q section:\n%s", want, text)
		}
	}
	if len(snap.Cores) != cfg.Nodes {
		t.Errorf("snapshot has %d cores, want %d", len(snap.Cores), cfg.Nodes)
	}
	if len(snap.Nodes) != cfg.Nodes {
		t.Errorf("snapshot has %d nodes, want %d", len(snap.Nodes), cfg.Nodes)
	}
}
