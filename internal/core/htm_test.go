package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// csStream builds iters critical sections on lockAddr, each loading and
// storing nLines distinct cache lines starting at dataBase.
func csStream(iters int, lockAddr, dataBase uint64, nLines int) *trace.SliceStream {
	var ins []trace.Instr
	pc := uint64(0x30000)
	emit := func(in trace.Instr) {
		in.PC = pc
		pc += 4
		ins = append(ins, in)
	}
	for i := 0; i < iters; i++ {
		pc = 0x30000
		emit(trace.Instr{Op: trace.OpLockAcquire, Addr: lockAddr})
		for l := 0; l < nLines; l++ {
			addr := dataBase + uint64(l)*64
			emit(trace.Instr{Op: trace.OpLoad, Addr: addr, Dest: 1})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
			emit(trace.Instr{Op: trace.OpStore, Addr: addr, Src1: 2})
		}
		emit(trace.Instr{Op: trace.OpWriteBar})
		emit(trace.Instr{Op: trace.OpLockRelease, Addr: lockAddr})
	}
	return trace.NewSliceStream(ins)
}

// TestHTMElisionCommits: four processors share one latch but touch
// disjoint data, the textbook elision win — every critical section runs
// concurrently and commits; the real lock table is never touched.
func TestHTMElisionCommits(t *testing.T) {
	cfg := config.Default()
	cfg.LatchPolicy = config.LatchHTM
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lockAddr = 0xA00000
	const iters = 200
	for n := 0; n < cfg.Nodes; n++ {
		sys.AddProcess(n, csStream(iters, lockAddr, lockAddr+0x10000*uint64(n+1), 2))
	}
	rep, err := sys.Run(RunOptions{Label: "htm-commit", MaxCycles: 80_000_000})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(cfg.Nodes * iters * (3 + 3*2))
	if rep.Instructions != want {
		t.Fatalf("retired %d instructions, want %d", rep.Instructions, want)
	}
	if rep.HTMBegins == 0 {
		t.Fatal("no transactions began under LatchPolicy=htm")
	}
	if rep.HTMCommits == 0 {
		t.Fatal("no transactions committed on disjoint data")
	}
	if rep.HTMCommits < rep.HTMBegins*9/10 {
		t.Errorf("commit rate too low: %d commits / %d begins", rep.HTMCommits, rep.HTMBegins)
	}
	if sys.Locks().Held(lockAddr) {
		t.Error("latch held at end of run")
	}
	t.Logf("begins=%d commits=%d conflict=%d capacity=%d fallbacks=%d latchAcquires=%d",
		rep.HTMBegins, rep.HTMCommits, rep.HTMConflictAborts, rep.HTMCapacityAborts,
		rep.HTMFallbacks, rep.LatchAcquires)
}

// TestHTMConflictAborts: every processor writes the same data line inside
// the elided section, so speculation must detect conflicts; forward
// progress still completes every critical section via retry or fallback.
func TestHTMConflictAborts(t *testing.T) {
	cfg := config.Default()
	cfg.LatchPolicy = config.LatchHTM
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lockAddr = 0xB00000
	const iters = 200
	for n := 0; n < cfg.Nodes; n++ {
		sys.AddProcess(n, csStream(iters, lockAddr, lockAddr+0x4000, 1))
	}
	rep, err := sys.Run(RunOptions{Label: "htm-conflict", MaxCycles: 120_000_000})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(cfg.Nodes * iters * (3 + 3*1))
	if rep.Instructions != want {
		t.Fatalf("retired %d instructions, want %d", rep.Instructions, want)
	}
	if rep.HTMConflictAborts == 0 {
		t.Error("no conflict aborts despite a fully shared write line")
	}
	if rep.Breakdown.HTM() == 0 {
		t.Error("no cycles charged to HTM abort-resolution categories")
	}
	if sys.Locks().Held(lockAddr) {
		t.Error("latch held at end of run")
	}
	t.Logf("begins=%d commits=%d conflict=%d fallbacks=%d htmStall=%.0f",
		rep.HTMBegins, rep.HTMCommits, rep.HTMConflictAborts, rep.HTMFallbacks,
		rep.Breakdown.HTM())
}

// TestHTMCapacityBoundResponse: the capacity-abort rate must respond to
// the configured write-set bound — a section touching more lines than the
// bound aborts for capacity, and a roomy bound eliminates those aborts.
func TestHTMCapacityBoundResponse(t *testing.T) {
	run := func(writeSet int) *struct {
		capacity, commits, begins uint64
	} {
		cfg := config.Default()
		cfg.Nodes = 1
		cfg.LatchPolicy = config.LatchHTM
		cfg.HTM.ReadSetLines = 1024
		cfg.HTM.WriteSetLines = writeSet
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const lockAddr = 0xC00000
		const iters = 50
		sys.AddProcess(0, csStream(iters, lockAddr, lockAddr+0x4000, 8))
		rep, err := sys.Run(RunOptions{Label: "htm-capacity", MaxCycles: 80_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return &struct{ capacity, commits, begins uint64 }{
			rep.HTMCapacityAborts, rep.HTMCommits, rep.HTMBegins,
		}
	}
	tight := run(4)  // 8-line sections overflow a 4-line write set
	roomy := run(64) // and fit a 64-line one
	if tight.capacity == 0 {
		t.Errorf("no capacity aborts with write-set bound 4 (begins=%d commits=%d)",
			tight.begins, tight.commits)
	}
	if roomy.capacity != 0 {
		t.Errorf("capacity aborts (%d) with a roomy write-set bound", roomy.capacity)
	}
	if roomy.commits == 0 {
		t.Error("no commits with a roomy write-set bound")
	}
	t.Logf("tight: capacity=%d commits=%d; roomy: capacity=%d commits=%d",
		tight.capacity, tight.commits, roomy.capacity, roomy.commits)
}

// TestHTMDisabledCountersZero: under the default plain policy the HTM
// counters stay zero and the real lock table sees the traffic.
func TestHTMDisabledCountersZero(t *testing.T) {
	cfg := config.Default()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lockAddr = 0xD00000
	for n := 0; n < cfg.Nodes; n++ {
		sys.AddProcess(n, csStream(100, lockAddr, lockAddr+0x4000, 1))
	}
	rep, err := sys.Run(RunOptions{Label: "plain", MaxCycles: 80_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.HTMBegins + rep.HTMCommits + rep.HTMAborts() + rep.HTMFallbacks; got != 0 {
		t.Errorf("HTM counters non-zero (%d) under LatchPolicy=plain", got)
	}
	if rep.Breakdown.HTM() != 0 {
		t.Error("HTM stall categories charged under LatchPolicy=plain")
	}
	if rep.LatchAcquires == 0 {
		t.Error("lock-table acquire counter stayed zero")
	}
	if rep.LatchContended == 0 {
		t.Error("lock-table contended counter stayed zero under 4-way contention")
	}
	if rep.LatchHandoffs == 0 {
		t.Error("lock-table handoff counter stayed zero under 4-way contention")
	}
	t.Logf("acquires=%d contended=%d handoffs=%d", rep.LatchAcquires, rep.LatchContended, rep.LatchHandoffs)
}

// TestHTMFastForwardEquivalence: the event-driven fast-forward must be
// bit-identical under the htm policy too (lock ops conservatively disable
// spans, so the skipped cycles are provably steady).
func TestHTMFastForwardEquivalence(t *testing.T) {
	run := func(disable bool) *struct {
		cycles, begins, commits, aborts, fallbacks uint64
	} {
		cfg := config.Default()
		cfg.LatchPolicy = config.LatchHTM
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const lockAddr = 0xE00000
		for n := 0; n < cfg.Nodes; n++ {
			sys.AddProcess(n, csStream(80, lockAddr, lockAddr+0x4000, 1))
		}
		rep, err := sys.Run(RunOptions{Label: "ff", MaxCycles: 80_000_000, DisableFastForward: disable})
		if err != nil {
			t.Fatal(err)
		}
		return &struct{ cycles, begins, commits, aborts, fallbacks uint64 }{
			rep.Cycles, rep.HTMBegins, rep.HTMCommits, rep.HTMAborts(), rep.HTMFallbacks,
		}
	}
	ff := run(false)
	slow := run(true)
	if *ff != *slow {
		t.Errorf("fast-forward diverged under htm policy: ff=%+v slow=%+v", ff, slow)
	}
}
