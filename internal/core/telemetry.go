package core

import (
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// telemetryState drives interval sampling for one run. The collector is a
// pure observer: it reads counters the machine already maintains (and the
// pipeline's registered probes) and publishes deltas; it never calls
// anything that advances or mutates simulated state, so runs with and
// without telemetry are cycle-identical (TestTelemetryDeterminism).
type telemetryState struct {
	pipe     *telemetry.Pipeline
	interval uint64
	nextAt   uint64 // next sample cycle
	seq      int

	prev    telemetrySnap
	scratch telemetrySnap // recycled buffers for the next snapshot

	// recording retains every published sample (checkpointing armed):
	// a restored run re-publishes them into its fresh sinks so the
	// final series is byte-identical to an uninterrupted run's.
	recording bool
	record    []telemetry.Sample
}

// telemetrySnap is the cumulative-counter snapshot taken at the previous
// sample; deltas against it form the next Sample. Counters can move
// backwards across a warm-up statistics reset, so every delta is clamped
// at zero.
type telemetrySnap struct {
	cycle   uint64
	retired []uint64
	bk      []stats.Breakdown
	robOcc  [][5]uint64

	idle uint64

	lockTries, lockWaits, lockSpins       uint64
	lockAcquires, lockContended, lockHand uint64

	htmBegins, htmCommits, htmFallbacks   uint64
	htmConflict, htmCapacity, htmExplicit uint64

	instr                      uint64
	l1iM, l1dM, l2M            uint64
	sbHits, sbMisses           uint64
	l1dOcc, l2Occ              []uint64
	dirReads, dirReadsDirty    uint64
	dirWrites, dirWritesShared uint64
	dirUpgrades, dirWritebacks uint64
	dirFlushes, dirMigratory   uint64
	meshMsgs, meshFlits        uint64
	meshLatency, meshQueue     uint64
	probes                     []uint64
}

// newTelemetry attaches a collector for opt.Telemetry, or returns nil
// when the run has no pipeline. The sampling period resolves pipeline
// interval → cfg.TelemetryInterval → telemetry.DefaultInterval.
func (s *System) newTelemetry(opt RunOptions) *telemetryState {
	if opt.Telemetry == nil {
		return nil
	}
	interval := opt.Telemetry.Interval
	if interval == 0 {
		interval = s.cfg.TelemetryInterval
	}
	if interval == 0 {
		interval = telemetry.DefaultInterval
	}
	ts := &telemetryState{
		pipe:      opt.Telemetry,
		interval:  interval,
		nextAt:    s.cycle + interval,
		recording: opt.Checkpoint != nil,
	}
	ts.prev = s.telemetrySnapshot(&ts.prev)
	for _, p := range opt.Telemetry.Probes() {
		ts.prev.probes = append(ts.prev.probes, p.Read())
	}
	return ts
}

// maybeSample publishes a sample when the machine has crossed the next
// interval boundary.
func (ts *telemetryState) maybeSample(s *System) {
	if s.cycle >= ts.nextAt {
		ts.sample(s)
		ts.nextAt = s.cycle + ts.interval
	}
}

// flush publishes the final partial interval (no-op when the last sample
// already covers the current cycle).
func (ts *telemetryState) flush(s *System) {
	if s.cycle > ts.prev.cycle {
		ts.sample(s)
	}
}

// telemetrySnapshot reads every cumulative counter the samples are
// derived from. buf is recycled between samples to keep the steady-state
// allocation rate near zero.
func (s *System) telemetrySnapshot(buf *telemetrySnap) telemetrySnap {
	var snap telemetrySnap
	if buf != nil {
		snap = *buf
	}
	snap.cycle = s.cycle
	snap.retired = snap.retired[:0]
	snap.bk = snap.bk[:0]
	snap.robOcc = snap.robOcc[:0]
	snap.lockTries, snap.lockWaits, snap.lockSpins = 0, 0, 0
	snap.htmBegins, snap.htmCommits, snap.htmFallbacks = 0, 0, 0
	snap.htmConflict, snap.htmCapacity, snap.htmExplicit = 0, 0, 0
	for _, c := range s.cores {
		snap.retired = append(snap.retired, c.Retired)
		snap.bk = append(snap.bk, c.Bk)
		snap.robOcc = append(snap.robOcc, c.ROBOcc)
		snap.lockTries += c.LockTries
		snap.lockWaits += c.LockWaits
		snap.lockSpins += c.LockSpins
		snap.htmBegins += c.HTMBegins
		snap.htmCommits += c.HTMCommits
		snap.htmFallbacks += c.HTMFallbacks
		snap.htmConflict += c.HTMConflictAborts
		snap.htmCapacity += c.HTMCapacityAborts
		snap.htmExplicit += c.HTMExplicitAborts
	}
	snap.lockAcquires, snap.lockContended, snap.lockHand = s.locks.Counters()

	snap.idle = 0
	for i := 0; i < s.cfg.Nodes; i++ {
		snap.idle += s.sch.IdleCycles[i] + s.sch.SwitchCycles[i]
	}

	snap.instr, snap.l1iM, snap.l1dM, snap.l2M = 0, 0, 0, 0
	snap.sbHits, snap.sbMisses = 0, 0
	snap.l1dOcc = snap.l1dOcc[:0]
	snap.l2Occ = snap.l2Occ[:0]
	if cap(snap.l1dOcc) < s.cfg.L1D.MSHRs+1 {
		snap.l1dOcc = make([]uint64, 0, s.cfg.L1D.MSHRs+1)
	}
	if cap(snap.l2Occ) < s.cfg.L2.MSHRs+1 {
		snap.l2Occ = make([]uint64, 0, s.cfg.L2.MSHRs+1)
	}
	snap.l1dOcc = snap.l1dOcc[:s.cfg.L1D.MSHRs+1]
	snap.l2Occ = snap.l2Occ[:s.cfg.L2.MSHRs+1]
	for i := range snap.l1dOcc {
		snap.l1dOcc[i] = 0
	}
	for i := range snap.l2Occ {
		snap.l2Occ[i] = 0
	}
	for _, r := range snap.retired {
		snap.instr += r
	}
	for n := 0; n < s.cfg.Nodes; n++ {
		h := s.mem.Node(n)
		snap.l1iM += h.L1I().ReadMisses + h.L1I().WriteMisses - h.IFetchSBHits
		snap.l1dM += h.L1D().ReadMisses + h.L1D().WriteMisses
		snap.l2M += h.L2().ReadMisses + h.L2().WriteMisses
		if sb := h.StreamBuffer(); sb != nil {
			snap.sbHits += sb.Hits
			snap.sbMisses += sb.Misses
		}
		// Raw per-occupancy cycle counters, read as-is: forcing a settle
		// here would retire in-flight MSHR entries early and is the kind
		// of side effect a pure observer must not have. The histograms
		// lag at most one memory-system event.
		occ, _ := h.L1DMSHRs().RawOccupancy()
		for i := 0; i < len(occ) && i < len(snap.l1dOcc); i++ {
			snap.l1dOcc[i] += occ[i]
		}
		occ, _ = h.L2MSHRs().RawOccupancy()
		for i := 0; i < len(occ) && i < len(snap.l2Occ); i++ {
			snap.l2Occ[i] += occ[i]
		}
	}

	dir := s.mem.Directory()
	snap.dirReads, snap.dirReadsDirty = dir.Reads, dir.ReadsDirty
	snap.dirWrites, snap.dirWritesShared = dir.Writes, dir.WritesShared
	snap.dirUpgrades, snap.dirWritebacks = dir.Upgrades, dir.Writebacks
	snap.dirFlushes, snap.dirMigratory = dir.Flushes, dir.MigratoryTransfers

	net := s.mem.Net()
	snap.meshMsgs, snap.meshFlits = net.Messages, net.FlitsCarried
	snap.meshLatency, snap.meshQueue = net.TotalLatency, net.QueueCycles

	return snap
}

// dsub is the clamped counter delta (statistics resets move counters
// backwards; time does not run backwards in a sample).
func dsub(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// sample publishes the interval since the previous snapshot.
func (ts *telemetryState) sample(s *System) {
	cur := s.telemetrySnapshot(&ts.scratch)
	prev := &ts.prev
	cycles := dsub(cur.cycle, prev.cycle)
	if cycles == 0 {
		return
	}

	sm := &telemetry.Sample{
		Seq:    ts.seq,
		Cycle:  cur.cycle,
		Cycles: cycles,
		Tags:   ts.pipe.Tags,

		Instructions: dsub(cur.instr, prev.instr),
		Idle:         dsub(cur.idle, prev.idle),

		StreamBufHits:   dsub(cur.sbHits, prev.sbHits),
		StreamBufMisses: dsub(cur.sbMisses, prev.sbMisses),

		Dir: telemetry.DirSample{
			Reads:              dsub(cur.dirReads, prev.dirReads),
			ReadsDirty:         dsub(cur.dirReadsDirty, prev.dirReadsDirty),
			Writes:             dsub(cur.dirWrites, prev.dirWrites),
			WritesShared:       dsub(cur.dirWritesShared, prev.dirWritesShared),
			Upgrades:           dsub(cur.dirUpgrades, prev.dirUpgrades),
			Writebacks:         dsub(cur.dirWritebacks, prev.dirWritebacks),
			Flushes:            dsub(cur.dirFlushes, prev.dirFlushes),
			MigratoryTransfers: dsub(cur.dirMigratory, prev.dirMigratory),
		},
		Mesh: telemetry.MeshSample{
			Messages:    dsub(cur.meshMsgs, prev.meshMsgs),
			Flits:       dsub(cur.meshFlits, prev.meshFlits),
			QueueCycles: dsub(cur.meshQueue, prev.meshQueue),
		},
		Locks: telemetry.LockSample{
			Tries:      dsub(cur.lockTries, prev.lockTries),
			Waits:      dsub(cur.lockWaits, prev.lockWaits),
			SpinCycles: dsub(cur.lockSpins, prev.lockSpins),
			Acquires:   dsub(cur.lockAcquires, prev.lockAcquires),
			Contended:  dsub(cur.lockContended, prev.lockContended),
			Handoffs:   dsub(cur.lockHand, prev.lockHand),
		},
		HTM: telemetry.HTMSample{
			Begins:         dsub(cur.htmBegins, prev.htmBegins),
			Commits:        dsub(cur.htmCommits, prev.htmCommits),
			ConflictAborts: dsub(cur.htmConflict, prev.htmConflict),
			CapacityAborts: dsub(cur.htmCapacity, prev.htmCapacity),
			ExplicitAborts: dsub(cur.htmExplicit, prev.htmExplicit),
			Fallbacks:      dsub(cur.htmFallbacks, prev.htmFallbacks),
		},
	}
	if lat := dsub(cur.meshLatency, prev.meshLatency); sm.Mesh.Messages > 0 {
		sm.Mesh.AvgLatency = float64(lat) / float64(sm.Mesh.Messages)
	}

	busy := float64(cycles)*float64(s.cfg.Nodes) - float64(sm.Idle)
	if busy > 0 {
		sm.IPC = float64(sm.Instructions) / busy
	}
	if sm.Instructions > 0 {
		k := float64(sm.Instructions) / 1000
		sm.L1IMisses = float64(dsub(cur.l1iM, prev.l1iM)) / k
		sm.L1DMisses = float64(dsub(cur.l1dM, prev.l1dM)) / k
		sm.L2Misses = float64(dsub(cur.l2M, prev.l2M)) / k
	}

	sm.L1DMSHROcc = histDelta(cur.l1dOcc, prev.l1dOcc)
	sm.L2MSHROcc = histDelta(cur.l2Occ, prev.l2Occ)
	rob := telemetry.Histogram{Buckets: make([]uint64, 5)}
	for i, occ := range cur.robOcc {
		var po [5]uint64
		if i < len(prev.robOcc) {
			po = prev.robOcc[i]
		}
		for b := 0; b < 5; b++ {
			rob.Buckets[b] += dsub(occ[b], po[b])
		}
	}
	sm.ROBOcc = rob

	for i, c := range s.cores {
		var pr uint64
		if i < len(prev.retired) {
			pr = prev.retired[i]
		}
		cs := telemetry.CoreSample{
			ID:        i,
			ContextID: -1,
			Retired:   dsub(c.Retired, pr),
			ROBLen:    c.ROBLen(),
		}
		cs.IPC = float64(cs.Retired) / float64(cycles)
		if ctx := c.Context(); ctx != nil {
			cs.ContextID = ctx.ID
		}
		var pb stats.Breakdown
		if i < len(prev.bk) {
			pb = prev.bk[i]
		}
		delta := cur.bk[i].Sub(&pb)
		sm.Breakdown.Add(&delta)
		sm.Cores = append(sm.Cores, cs)
	}

	cur.probes = cur.probes[:0]
	if probes := ts.pipe.Probes(); len(probes) > 0 {
		sm.Probes = make(map[string]uint64, len(probes))
		for i, p := range probes {
			v := p.Read()
			var pv uint64
			if i < len(prev.probes) {
				pv = prev.probes[i]
			}
			sm.Probes[p.Name] = dsub(v, pv)
			cur.probes = append(cur.probes, v)
		}
	}

	ts.pipe.Publish(sm)
	if ts.recording {
		ts.record = append(ts.record, *sm)
	}
	ts.seq++
	ts.scratch = ts.prev // recycle the old snapshot's buffers
	ts.prev = cur
}

// checkpoint captures the collector's cursor and the published samples.
func (ts *telemetryState) checkpoint() *TelemetryRunState {
	rs := &TelemetryRunState{
		Seq:     ts.seq,
		NextAt:  ts.nextAt,
		Prev:    snapState(&ts.prev),
		Samples: append([]telemetry.Sample(nil), ts.record...),
	}
	return rs
}

// restore rewinds a fresh collector to a checkpoint: the recorded
// samples are re-published into the (fresh) sinks, then the cursor
// picks up where the interrupted run left off.
func (ts *telemetryState) restore(rs *TelemetryRunState) {
	for i := range rs.Samples {
		sm := rs.Samples[i]
		ts.pipe.Publish(&sm)
	}
	ts.record = append(ts.record[:0], rs.Samples...)
	ts.recording = true
	ts.seq = rs.Seq
	ts.nextAt = rs.NextAt
	ts.prev = snapFromState(&rs.Prev)
}

// snapState converts the internal snapshot to its checkpoint DTO.
func snapState(sn *telemetrySnap) TelemetrySnapState {
	return TelemetrySnapState{
		Cycle:         sn.cycle,
		Retired:       append([]uint64(nil), sn.retired...),
		Bk:            append([]stats.Breakdown(nil), sn.bk...),
		RobOcc:        append([][5]uint64(nil), sn.robOcc...),
		Idle:          sn.idle,
		LockTries:     sn.lockTries,
		LockWaits:     sn.lockWaits,
		LockSpins:     sn.lockSpins,
		LockAcquires:  sn.lockAcquires,
		LockContended: sn.lockContended,
		LockHand:      sn.lockHand,
		HTMBegins:     sn.htmBegins,
		HTMCommits:    sn.htmCommits,
		HTMFallbacks:  sn.htmFallbacks,
		HTMConflict:   sn.htmConflict,
		HTMCapacity:   sn.htmCapacity,
		HTMExplicit:   sn.htmExplicit,
		Instr:         sn.instr,
		L1IM:          sn.l1iM,
		L1DM:          sn.l1dM,
		L2M:           sn.l2M,
		SBHits:        sn.sbHits,
		SBMiss:        sn.sbMisses,
		L1DOcc:        append([]uint64(nil), sn.l1dOcc...),
		L2Occ:         append([]uint64(nil), sn.l2Occ...),
		DirReads:      sn.dirReads, DirReadsDirty: sn.dirReadsDirty,
		DirWrites: sn.dirWrites, DirWritesShared: sn.dirWritesShared,
		DirUpgrades: sn.dirUpgrades, DirWritebacks: sn.dirWritebacks,
		DirFlushes: sn.dirFlushes, DirMigratory: sn.dirMigratory,
		MeshMsgs: sn.meshMsgs, MeshFlits: sn.meshFlits,
		MeshLatency: sn.meshLatency, MeshQueue: sn.meshQueue,
		Probes: append([]uint64(nil), sn.probes...),
	}
}

// snapFromState inverts snapState.
func snapFromState(st *TelemetrySnapState) telemetrySnap {
	return telemetrySnap{
		cycle:         st.Cycle,
		retired:       append([]uint64(nil), st.Retired...),
		bk:            append([]stats.Breakdown(nil), st.Bk...),
		robOcc:        append([][5]uint64(nil), st.RobOcc...),
		idle:          st.Idle,
		lockTries:     st.LockTries,
		lockWaits:     st.LockWaits,
		lockSpins:     st.LockSpins,
		lockAcquires:  st.LockAcquires,
		lockContended: st.LockContended,
		lockHand:      st.LockHand,
		htmBegins:     st.HTMBegins,
		htmCommits:    st.HTMCommits,
		htmFallbacks:  st.HTMFallbacks,
		htmConflict:   st.HTMConflict,
		htmCapacity:   st.HTMCapacity,
		htmExplicit:   st.HTMExplicit,
		instr:         st.Instr,
		l1iM:          st.L1IM,
		l1dM:          st.L1DM,
		l2M:           st.L2M,
		sbHits:        st.SBHits,
		sbMisses:      st.SBMiss,
		l1dOcc:        append([]uint64(nil), st.L1DOcc...),
		l2Occ:         append([]uint64(nil), st.L2Occ...),
		dirReads:      st.DirReads, dirReadsDirty: st.DirReadsDirty,
		dirWrites: st.DirWrites, dirWritesShared: st.DirWritesShared,
		dirUpgrades: st.DirUpgrades, dirWritebacks: st.DirWritebacks,
		dirFlushes: st.DirFlushes, dirMigratory: st.DirMigratory,
		meshMsgs: st.MeshMsgs, meshFlits: st.MeshFlits,
		meshLatency: st.MeshLatency, meshQueue: st.MeshQueue,
		probes: append([]uint64(nil), st.Probes...),
	}
}

// histDelta returns the clamped elementwise delta of two raw occupancy
// histograms as a telemetry.Histogram.
func histDelta(cur, prev []uint64) telemetry.Histogram {
	out := telemetry.Histogram{Buckets: make([]uint64, len(cur))}
	for i := range cur {
		var p uint64
		if i < len(prev) {
			p = prev[i]
		}
		out.Buckets[i] = dsub(cur[i], p)
	}
	return out
}
