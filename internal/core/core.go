// Package core assembles the whole simulated machine — processors
// (internal/cpu), memory system (internal/memsys), and OS scheduler
// (internal/sched) — and runs the global cycle loop. This is the paper's
// simulated AlphaServer-class CC-NUMA multiprocessor; every experiment in
// internal/experiments is a set of Runs of this system under different
// configurations and workloads.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/diag"
	"repro/internal/memsys"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracing"
)

// LockTable holds the values of the simulated lock memory locations, shared
// machine-wide. The paper maintains lock values in the simulated
// environment so that inter-process synchronization (and therefore lock
// passing and migratory transfers) happens in simulated time.
type LockTable struct {
	owner  map[uint64]int
	freeAt map[uint64]uint64
	gen    uint64 // bumped on every release (cached-wake invalidation)

	// Contention counters (telemetry): acquires counts ownership
	// transitions (idempotent re-acquires by the holder excluded);
	// contended counts acquires that had at least one failing attempt
	// first; handoffs counts acquires whose previous owner was a
	// different process (the lock-passing / migratory transfers).
	acquires  uint64
	contended uint64
	handoffs  uint64
	failed    map[uint64]bool // locks with a failed attempt since last acquire
	lastOwner map[uint64]int
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{
		owner:     make(map[uint64]int),
		freeAt:    make(map[uint64]uint64),
		failed:    make(map[uint64]bool),
		lastOwner: make(map[uint64]int),
	}
}

// TryAcquire implements cpu.LockManager. Acquires are idempotent for the
// holder (a squashed-and-replayed acquire must not deadlock against
// itself).
func (t *LockTable) TryAcquire(addr uint64, proc int, now uint64) bool {
	if o, held := t.owner[addr]; held {
		if o == proc {
			return true
		}
		t.failed[addr] = true
		return false
	}
	if now < t.freeAt[addr] {
		t.failed[addr] = true
		return false
	}
	t.owner[addr] = proc
	t.acquires++
	if t.failed[addr] {
		t.contended++
		delete(t.failed, addr)
	}
	if prev, ok := t.lastOwner[addr]; ok && prev != proc {
		t.handoffs++
	}
	t.lastOwner[addr] = proc
	return true
}

// LockFree implements cpu.LockViewer: whether a TryAcquire by proc at now
// would succeed, without mutating the table. The HTM elision path uses it
// to gate speculation on latch availability.
func (t *LockTable) LockFree(addr uint64, proc int, now uint64) bool {
	if o, held := t.owner[addr]; held {
		return o == proc
	}
	return now >= t.freeAt[addr]
}

// Counters returns the cumulative acquire / contended-acquire / handoff
// counts (see the field comments).
func (t *LockTable) Counters() (acquires, contended, handoffs uint64) {
	return t.acquires, t.contended, t.handoffs
}

// resetCounters zeroes the contention counters (warm-up reset); ownership
// state is untouched.
func (t *LockTable) resetCounters() {
	t.acquires, t.contended, t.handoffs = 0, 0, 0
}

// Release implements cpu.LockManager: the lock becomes acquirable once the
// releasing store has performed.
func (t *LockTable) Release(addr uint64, proc int, availableAt uint64) {
	if o, held := t.owner[addr]; held && o == proc {
		delete(t.owner, addr)
		t.freeAt[addr] = availableAt
		// A release is the one lock transition that can make a spinner's
		// next interesting cycle earlier than any bound it was given
		// (NextTry returns EventNever while the lock is held), so the run
		// loop drops cached per-core wake times when gen changes.
		t.gen++
	}
}

// NextTry implements cpu.LockProber: the next cycle at which a failing
// TryAcquire by proc could change outcome. Held by proc itself means the
// idempotent re-acquire succeeds immediately (now+1); held by another
// process means only the holder's release changes anything, and the
// holder's own pipeline events already bound that (EventNever); released
// but cooling down means the freeAt cycle.
func (t *LockTable) NextTry(addr uint64, proc int, now uint64) uint64 {
	if o, held := t.owner[addr]; held {
		if o == proc {
			return now + 1
		}
		return cpu.EventNever
	}
	if f := t.freeAt[addr]; now < f {
		return f
	}
	return now + 1
}

// Held reports whether the lock is currently owned (tests).
func (t *LockTable) Held(addr uint64) bool {
	_, ok := t.owner[addr]
	return ok
}

// Owners returns a snapshot of the currently held locks (address ->
// holding process id), for diagnostics.
func (t *LockTable) Owners() map[uint64]int {
	m := make(map[uint64]int, len(t.owner))
	for a, p := range t.owner {
		m[a] = p
	}
	return m
}

// System is the whole simulated machine.
type System struct {
	cfg   config.Config
	mem   *memsys.System
	cores []*cpu.Core
	sch   *sched.Scheduler
	locks *LockTable
	procs []*cpu.Context

	cycle      uint64
	statsStart uint64
	nextProc   int
}

// NewSystem builds a machine for cfg.
func NewSystem(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mem, err := memsys.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		mem:   mem,
		sch:   sched.New(cfg.Nodes, cfg.CtxSwitchCycles),
		locks: NewLockTable(),
	}
	for n := 0; n < cfg.Nodes; n++ {
		s.cores = append(s.cores, cpu.New(cfg, n, s.mem.Node(n), s.locks))
	}
	return s, nil
}

// Mem returns the memory system.
func (s *System) Mem() *memsys.System { return s.mem }

// Core returns processor n.
func (s *System) Core(n int) *cpu.Core { return s.cores[n] }

// Scheduler returns the OS scheduler model.
func (s *System) Scheduler() *sched.Scheduler { return s.sch }

// Locks returns the machine-wide lock table.
func (s *System) Locks() *LockTable { return s.locks }

// Config returns the machine configuration.
func (s *System) Config() config.Config { return s.cfg }

// Cycle returns the current simulated cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// AddProcess pins a server process running stream to cpuID's run queue and
// returns its context.
func (s *System) AddProcess(cpuID int, stream trace.Stream) *cpu.Context {
	if cpuID < 0 || cpuID >= s.cfg.Nodes {
		panic(fmt.Sprintf("core: cpu %d out of range", cpuID))
	}
	ctx := &cpu.Context{ID: s.nextProc, Stream: stream}
	s.nextProc++
	s.procs = append(s.procs, ctx)
	s.sch.Add(cpuID, ctx)
	return ctx
}

// RunOptions controls a simulation run.
type RunOptions struct {
	Label string
	// WarmupInstructions: statistics are reset once this many instructions
	// have retired machine-wide (warm-up transients ignored, Section 2.2).
	WarmupInstructions uint64
	// MaxCycles bounds the run (0 = no bound). Exceeding it is an error so
	// that runaway runs are caught rather than silently truncated.
	MaxCycles uint64
	// WatchdogWindow is the forward-progress watchdog: if no instruction
	// retires machine-wide for this many consecutive cycles the run fails
	// with a *ProgressError carrying a machine snapshot. 0 means
	// DefaultWatchdogWindow; set DisableWatchdog to turn the check off.
	WatchdogWindow  uint64
	DisableWatchdog bool
	// Context, when non-nil, cancels or deadlines the run; it is polled
	// every few thousand cycles and its error is returned wrapped in a
	// *CanceledError.
	Context context.Context
	// Telemetry, when non-nil, receives interval samples every
	// TelemetryInterval simulated cycles (pipeline interval, then
	// cfg.TelemetryInterval, then telemetry.DefaultInterval). Sampling
	// is a pure observer: it never changes retirement or cycle counts.
	// The caller owns the pipeline and closes it after the run.
	Telemetry *telemetry.Pipeline
	// Tracer, when non-nil, is attached to every core and memory hierarchy
	// for the run: a pure observer recording cycle-resolved stall, miss,
	// and lock events. It is reset at the warm-up statistics reset so its
	// aggregates reconcile with the report's post-warm-up breakdown, and
	// finished (open spans closed) when the run returns. The caller owns
	// the tracer and exports it after the run.
	Tracer *tracing.Tracer
	// DisableFastForward turns off the event-driven idle-cycle skip and
	// ticks every cycle instead. Fast-forward is bit-identical by
	// construction (reports, telemetry, and traces match exactly); the
	// escape hatch exists for the equivalence tests and for debugging.
	DisableFastForward bool
	// Checkpoint, when non-nil, arms periodic mid-run checkpointing (and
	// a final capture when Context cancels the run): every Interval
	// cycles the full dynamic machine state is written atomically to
	// Path. See CheckpointOptions and RestoreAndRun.
	Checkpoint *CheckpointOptions
	// SimThreads sets how many worker goroutines the run loop may use to
	// apply machine-wide quiet fast-forward spans across cores
	// concurrently (see parallel.go). 0 or 1 is the serial engine,
	// verbatim. Results are bit-identical for every value: parallel work
	// is restricted to per-core state over spans proven free of
	// cross-core coupling, joined at a deterministic barrier before the
	// serial cycle loop resumes. The fan-out is disabled while a Tracer
	// is attached (its event ring is shared across cores and append order
	// is part of the output).
	SimThreads int
}

// DefaultWatchdogWindow is the default forward-progress window in cycles.
// The longest legitimate machine-wide retirement gap is a full complement
// of processes blocked in system calls (the OLTP workload's commit I/O is
// 100k cycles), so 2M cycles of global silence indicates a livelock, not
// patience.
const DefaultWatchdogWindow = 2_000_000

// ctxCheckEvery is how often (in cycles) Run polls opt.Context; a power of
// two keeps the modulo cheap in the hot loop.
const ctxCheckEvery = 4096

// ErrMaxCycles reports that the run hit its cycle bound before all
// processes finished. Returned errors wrap it: test with errors.Is.
var ErrMaxCycles = errors.New("core: simulation exceeded MaxCycles")

// CycleLimitError is the error returned when MaxCycles is exceeded; it
// wraps ErrMaxCycles and carries the machine snapshot at the limit.
type CycleLimitError struct {
	Cycles   uint64 // cycles simulated in the measurement interval
	Retired  uint64 // instructions retired machine-wide
	Snapshot *diag.Snapshot
}

func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("core: simulation exceeded MaxCycles (%d cycles, %d instructions retired)", e.Cycles, e.Retired)
}

// Unwrap makes errors.Is(err, ErrMaxCycles) work.
func (e *CycleLimitError) Unwrap() error { return ErrMaxCycles }

// ProgressError reports that the forward-progress watchdog tripped: no
// instruction retired machine-wide for a full watchdog window.
type ProgressError struct {
	Cycle        uint64 // cycle at which the watchdog tripped
	LastProgress uint64 // last cycle at which any instruction retired
	Window       uint64 // the watchdog window that was exceeded
	Retired      uint64 // instructions retired machine-wide before the stall
	Snapshot     *diag.Snapshot
}

func (e *ProgressError) Error() string {
	return fmt.Sprintf("core: no forward progress: no instruction retired between cycle %d and %d (window %d, %d retired total)",
		e.LastProgress, e.Cycle, e.Window, e.Retired)
}

// CanceledError reports that opt.Context ended the run early; it wraps the
// context's error so errors.Is(err, context.Canceled/DeadlineExceeded)
// works. The snapshot shows where the machine was when it was interrupted,
// so a Ctrl-C'd run still yields diagnostics.
type CanceledError struct {
	Cycle    uint64
	Cause    error
	Snapshot *diag.Snapshot
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: run canceled at cycle %d: %v", e.Cycle, e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// Run simulates until every process finishes its trace, returning the
// statistics report. Panics from the machine model (internal invariants,
// the coherence checker, the memory-ordering checks) are recovered into a
// *diag.PanicError carrying a machine snapshot, so a crashing run fails
// with diagnostics instead of taking the process down.
func (s *System) Run(opt RunOptions) (*stats.Report, error) {
	return s.run(opt, nil)
}

// run is the shared body of Run and RestoreAndRun. resume, when
// non-nil, is the checkpoint the machine was just restored from; it
// seeds the run-loop bookkeeping (warm-up flag, watchdog cursor) and
// the observer state so the resumed run continues bit-identically.
func (s *System) run(opt RunOptions, resume *MachineState) (rep *stats.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, s.recoverPanic(r)
		}
	}()
	window := opt.WatchdogWindow
	if window == 0 {
		window = DefaultWatchdogWindow
	}
	lastRetired := s.totalRetired()
	lastProgress := s.cycle
	warmed := opt.WarmupInstructions == 0
	if resume != nil {
		lastRetired = resume.LastRetired
		lastProgress = resume.LastProgress
		warmed = resume.Warmed
	}
	ck := opt.Checkpoint
	ckInterval := ck.interval()
	tel := s.newTelemetry(opt)
	if tel != nil && resume != nil && resume.Telemetry != nil {
		tel.restore(resume.Telemetry)
	}
	if opt.Tracer != nil {
		for i, c := range s.cores {
			c.SetTracer(opt.Tracer)
			s.mem.Node(i).SetTracer(opt.Tracer)
		}
		if resume != nil && resume.Tracer != nil {
			if terr := opt.Tracer.Restore(*resume.Tracer); terr != nil {
				return nil, terr
			}
		} else {
			opt.Tracer.Start(s.cycle)
		}
		// Close open spans on every exit path (including recovered panics
		// and cycle-limit/watchdog/cancel errors) so partial traces are
		// still well-formed.
		defer func() { opt.Tracer.Finish(s.cycle) }()
	}
	var pool *ffPool
	if opt.SimThreads > 1 && opt.Tracer == nil {
		pool = newFFPool(s, opt.SimThreads)
		defer pool.close()
	}
	prevRet := lastRetired
	// Per-core steady-cycle skip: wake[i] is a cached bound below which core
	// i provably repeats the same retire-free cycle, so its Tick can be
	// replaced by the O(1) single-cycle FastForward. The bound is computed
	// only on retire-free ticks (on busy cores the bookkeeping would be pure
	// overhead) and is invalidated by the two cross-core channels that can
	// make a core's next interesting cycle earlier than predicted: a line
	// invalidation marking one of its speculative loads violated (TakePoked)
	// and any lock release (LockTable.gen). Everything else that times a
	// core — its own pipeline, its own scheduler queue, fixed memory
	// latencies — is already folded into NextEvent.
	wake := make([]uint64, len(s.cores))
	coreRet := make([]uint64, len(s.cores))
	for i, c := range s.cores {
		coreRet[i] = c.Retired
	}
	lockGen := s.locks.gen
	for {
		s.cycle++
		allDone := true
		for i, c := range s.cores {
			if s.locks.gen != lockGen {
				// A lock was released mid-cycle (by an earlier core's tick) or
				// since last cycle: drop every cached bound — a spinner's next
				// successful try may now be due immediately.
				lockGen = s.locks.gen
				for k := range wake {
					wake[k] = 0
				}
			}
			if !opt.DisableFastForward && wake[i] > s.cycle && !c.TakePoked() {
				s.sch.FastForward(i, c, s.cycle, s.cycle)
				c.FastForward(s.cycle, s.cycle)
			} else {
				s.sch.Tick(i, c, s.cycle)
				c.Tick(s.cycle)
				if rr := c.Retired; rr != coreRet[i] {
					coreRet[i] = rr
					wake[i] = 0
				} else if !opt.DisableFastForward {
					w := s.sch.NextEvent(i, c, s.cycle)
					if cw := c.NextEvent(s.cycle); cw < w {
						w = cw
					}
					wake[i] = w
				}
			}
			if c.Context() != nil || s.sch.Pending(i) {
				allDone = false
			}
		}
		ret := s.totalRetired()
		if !warmed && ret >= opt.WarmupInstructions {
			s.ResetStats()
			if opt.Tracer != nil {
				opt.Tracer.Reset(s.cycle)
			}
			warmed = true
			ret = s.totalRetired() // counters were just zeroed
		}
		if tel != nil {
			tel.maybeSample(s)
		}
		if allDone {
			break
		}
		if opt.MaxCycles > 0 && s.cycle-s.statsStart >= opt.MaxCycles {
			return s.buildReport(opt.Label), &CycleLimitError{
				Cycles:   s.cycle - s.statsStart,
				Retired:  ret,
				Snapshot: s.Snapshot("cycle-limit"),
			}
		}
		if !opt.DisableWatchdog {
			if ret != lastRetired {
				lastRetired, lastProgress = ret, s.cycle
			} else if s.cycle-lastProgress >= window {
				return s.buildReport(opt.Label), &ProgressError{
					Cycle:        s.cycle,
					LastProgress: lastProgress,
					Window:       window,
					Retired:      lastRetired,
					Snapshot:     s.Snapshot("watchdog"),
				}
			}
		}
		if opt.Context != nil && s.cycle%ctxCheckEvery == 0 {
			if cerr := opt.Context.Err(); cerr != nil {
				// Final capture so the preempted run can resume from here
				// instead of its last periodic boundary. Best-effort: the
				// cancellation is reported either way, and a failed write
				// leaves the previous (still valid) checkpoint in place.
				if ck != nil {
					_ = s.captureCheckpoint(ck, warmed, lastRetired, lastProgress, tel, opt.Tracer)
				}
				return s.buildReport(opt.Label), &CanceledError{
					Cycle:    s.cycle,
					Cause:    cerr,
					Snapshot: s.Snapshot("canceled"),
				}
			}
		}
		if ck != nil && s.cycle%ckInterval == 0 {
			if cerr := s.captureCheckpoint(ck, warmed, lastRetired, lastProgress, tel, opt.Tracer); cerr != nil {
				return s.buildReport(opt.Label), fmt.Errorf("core: checkpoint at cycle %d: %w", s.cycle, cerr)
			}
		}
		// A retire-free cycle is the fast-forward trigger: only then is it
		// worth asking every component for its next event. (The skip itself
		// is correct regardless; this is purely a cost gate.)
		if !opt.DisableFastForward && ret == prevRet {
			if s.locks.gen != lockGen {
				// A core later in this cycle's order released a lock after the
				// earlier cores' bounds were refreshed: a spinner's next
				// successful try may precede its cached wake. No jump; the
				// zeroed bounds force full re-ticking next cycle.
				lockGen = s.locks.gen
				for k := range wake {
					wake[k] = 0
				}
			} else {
				s.fastForward(&opt, window, lastProgress, tel, wake, ckInterval, pool)
			}
		}
		prevRet = ret
	}
	s.mem.Finalize(s.cycle)
	if tel != nil {
		tel.flush(s)
	}
	return s.buildReport(opt.Label), nil
}

// fastForward jumps s.cycle to just before the machine-wide next event
// when every component proves the intervening cycles are steady (constant
// per-cycle bookkeeping, zero state mutation), bulk-applying that
// bookkeeping so the run is bit-identical to ticking every cycle. The jump
// is also capped so that every externally timed check in Run — telemetry
// sample boundaries, the watchdog trip, the MaxCycles trip, the context
// poll cadence — still happens on exactly the cycle it would have.
func (s *System) fastForward(opt *RunOptions, window, lastProgress uint64, tel *telemetryState, wake []uint64, ckInterval uint64, pool *ffPool) {
	now := s.cycle
	limit := uint64(cpu.EventNever)
	// On a machine-wide retire-free cycle every core either skipped (its
	// cached wake bound still holds) or ticked retire-free and refreshed its
	// bound, so the machine-wide next event is simply the minimum of the
	// per-core bounds — no component needs to be asked again, provided the
	// two cross-core invalidation channels are re-checked here: the caller
	// rules out lock releases that post-date the refreshes, and pokes are
	// consumed below. A zero bound (core mid-refresh, e.g. right after the
	// warm-up counter reset) just means "unknown": no jump this cycle.
	for i, c := range s.cores {
		w := wake[i]
		if c.TakePoked() {
			// An invalidation landed after this core's bound was cached (a
			// later core's store this very cycle): the rollback is due at the
			// violated load's retirement, earlier than the stale bound. Zeroing
			// the bound forces a re-ticking refresh next cycle.
			w = 0
			wake[i] = 0
		}
		if w < limit {
			limit = w
		}
		if limit <= now+1 {
			return
		}
	}
	// limit may still be EventNever here — a wedged machine (spinners whose
	// lock holder never releases). The caps below bound the jump to the
	// watchdog trip, cycle limit, context poll, or telemetry sample; with
	// none of them set the final check falls back to per-cycle ticking,
	// which is the original loop's (non-terminating) behavior.
	if tel != nil && tel.nextAt < limit {
		limit = tel.nextAt
	}
	if !opt.DisableWatchdog {
		if t := lastProgress + window; t < limit {
			limit = t
		}
	}
	if opt.MaxCycles > 0 {
		if t := s.statsStart + opt.MaxCycles; t < limit {
			limit = t
		}
	}
	if opt.Context != nil {
		if t := (now/ctxCheckEvery + 1) * ctxCheckEvery; t < limit {
			limit = t
		}
	}
	if opt.Checkpoint != nil && ckInterval > 0 {
		// Capture boundaries must be ticked normally so the checkpoint
		// cadence is a deterministic function of the cycle count alone.
		if t := (now/ckInterval + 1) * ckInterval; t < limit {
			limit = t
		}
	}
	if limit <= now+1 || limit == cpu.EventNever {
		return
	}
	// Cycles now+1 .. limit-1 are steady; cycle limit is ticked normally by
	// the next loop iteration (it may retire, sample, trip a check, ...).
	from, to := now+1, limit-1
	if pool != nil && to-from >= minParallelSpan {
		// Epoch-parallel application: the span is proven quiet for every
		// core, so the per-core bulk accounting fans out to the worker
		// pool and joins at the barrier (bit-identical by construction).
		pool.span(from, to)
	} else {
		for i, c := range s.cores {
			s.sch.FastForward(i, c, from, to)
			c.FastForward(from, to)
		}
	}
	s.cycle = to
}

// recoverPanic converts a recovered panic into a *diag.PanicError. The
// snapshot is taken best-effort: if the machine is too corrupted to
// inspect, the panic error still carries the value and stack.
func (s *System) recoverPanic(r any) error {
	pe := &diag.PanicError{Value: r, Stack: debug.Stack()}
	func() {
		defer func() { _ = recover() }()
		pe.Snapshot = s.Snapshot("panic")
	}()
	return pe
}

// Snapshot captures the machine state for diagnostics: per-core pipeline
// occupancy and head instruction, in-flight misses, directory summary,
// held locks with their spinners, and mesh traffic.
func (s *System) Snapshot(reason string) *diag.Snapshot {
	snap := &diag.Snapshot{Cycle: s.cycle, Reason: reason}

	spinners := make(map[uint64][]int) // lock addr -> core ids spinning
	for i, c := range s.cores {
		cs := diag.CoreState{
			ID:        i,
			ContextID: -1,
			Retired:   c.Retired,
			ROB:       c.ROBLen(),
			FetchQ:    c.FetchQueueLen(),
			WriteBuf:  c.WriteBufferLen(),
		}
		if ctx := c.Context(); ctx != nil {
			cs.ContextID = ctx.ID
		}
		if op, pc, addr, ok := c.HeadInstr(); ok {
			cs.HeadOp, cs.HeadPC, cs.HeadAddr = op, pc, addr
		}
		if addr, ok := c.SpinningOn(); ok {
			cs.Spinning, cs.SpinAddr = true, addr
			spinners[addr] = append(spinners[addr], i)
		}
		snap.Cores = append(snap.Cores, cs)
	}

	for n := 0; n < s.cfg.Nodes; n++ {
		h := s.mem.Node(n)
		ns := diag.NodeState{Node: n}
		for _, mf := range []struct {
			level string
			f     *cache.MSHRFile
		}{
			{"L1I", h.L1IMSHRs()}, {"L1D", h.L1DMSHRs()}, {"L2", h.L2MSHRs()},
		} {
			ms := diag.MSHRState{Level: mf.level, InUse: mf.f.InUse(), Max: mf.f.Max()}
			for _, e := range mf.f.Entries() {
				ms.Lines = append(ms.Lines, diag.MSHRLine{LineAddr: e.LineAddr, Done: e.Done, AllocAt: e.AllocAt, Write: e.Write})
			}
			ns.MSHRs = append(ns.MSHRs, ms)
		}
		snap.Nodes = append(snap.Nodes, ns)
	}

	dir := s.mem.Directory()
	snap.Dir.Lines, snap.Dir.Owned, snap.Dir.Shared, snap.Dir.Migratory = dir.StateCounts()

	for addr, owner := range s.locks.Owners() {
		snap.Locks = append(snap.Locks, diag.LockState{Addr: addr, Owner: owner, Waiters: spinners[addr]})
	}
	sort.Slice(snap.Locks, func(i, j int) bool { return snap.Locks[i].Addr < snap.Locks[j].Addr })

	net := s.mem.Net()
	snap.Mesh = diag.MeshState{
		Messages:    net.Messages,
		AvgLatency:  net.AvgLatency(),
		QueueCycles: net.QueueCycles,
		BusyLinks:   net.BusyLinks(s.cycle),
	}
	return snap
}

func (s *System) totalRetired() uint64 {
	var n uint64
	for _, c := range s.cores {
		n += c.Retired
	}
	return n
}

// ResetStats discards statistics accumulated so far (used for warm-up).
func (s *System) ResetStats() {
	for _, c := range s.cores {
		c.ResetStats()
	}
	s.mem.ResetStats(s.cycle)
	s.sch.ResetStats()
	s.locks.resetCounters()
	s.statsStart = s.cycle
}

// buildReport aggregates machine-wide statistics.
func (s *System) buildReport(label string) *stats.Report {
	r := &stats.Report{Label: label, Cycles: s.cycle - s.statsStart}

	var condBr, condMis uint64
	var lockTries, lockWaits uint64
	for i, c := range s.cores {
		r.Breakdown.Add(&c.Bk)
		r.Instructions += c.Retired
		r.IdleCycles += float64(s.sch.IdleCycles[i] + s.sch.SwitchCycles[i])
		condBr += c.Predictor().CondBranches
		condMis += c.Predictor().CondMispred
		lockTries += c.LockTries
		lockWaits += c.LockWaits
		r.HTMBegins += c.HTMBegins
		r.HTMCommits += c.HTMCommits
		r.HTMConflictAborts += c.HTMConflictAborts
		r.HTMCapacityAborts += c.HTMCapacityAborts
		r.HTMExplicitAborts += c.HTMExplicitAborts
		r.HTMFallbacks += c.HTMFallbacks
	}
	r.LatchAcquires, r.LatchContended, r.LatchHandoffs = s.locks.Counters()
	if condBr > 0 {
		r.BranchMispred = float64(condMis) / float64(condBr)
	}
	if lockTries > 0 {
		r.SyncContention = float64(lockWaits) / float64(lockTries)
	}

	var l1iA, l1iM, l1dA, l1dM, l2A, l2M uint64
	var itlbA, itlbM, dtlbA, dtlbM uint64
	var sbHit, sbMiss uint64
	var l1AllRaw, l2AllRaw, l1ReadRaw, l2ReadRaw [][]uint64
	for n := 0; n < s.cfg.Nodes; n++ {
		h := s.mem.Node(n)
		l1iA += h.L1I().Reads + h.L1I().Writes
		l1iM += h.L1I().ReadMisses + h.L1I().WriteMisses - h.IFetchSBHits
		l1dA += h.L1D().Reads + h.L1D().Writes
		l1dM += h.L1D().ReadMisses + h.L1D().WriteMisses
		l2A += h.L2().Reads + h.L2().Writes
		l2M += h.L2().ReadMisses + h.L2().WriteMisses
		itlbA += h.ITLB().Accesses
		itlbM += h.ITLB().Misses
		dtlbA += h.DTLB().Accesses
		dtlbM += h.DTLB().Misses
		if sb := h.StreamBuffer(); sb != nil {
			sbHit += sb.Hits
			sbMiss += sb.Misses
		}
		a, rd := h.L1DMSHRs().RawOccupancy()
		l1AllRaw = append(l1AllRaw, a)
		l1ReadRaw = append(l1ReadRaw, rd)
		a, rd = h.L2MSHRs().RawOccupancy()
		l2AllRaw = append(l2AllRaw, a)
		l2ReadRaw = append(l2ReadRaw, rd)
	}
	div := func(m, a uint64) float64 {
		if a == 0 {
			return 0
		}
		return float64(m) / float64(a)
	}
	// The L1I rate is per instruction fetched (the fetch engine accesses
	// the cache once per sequential run within a line, so per-line-fetch
	// rates are not comparable to the paper's).
	_ = l1iA
	r.L1IMissRate, r.L1IMisses = div(l1iM, r.Instructions), l1iM
	r.L1DMissRate, r.L1DMisses = div(l1dM, l1dA), l1dM
	r.L2MissRate, r.L2Misses = div(l2M, l2A), l2M
	r.ITLBMissRate = div(itlbM, itlbA)
	r.DTLBMissRate = div(dtlbM, dtlbA)
	if sbHit+sbMiss > 0 {
		r.StreamBufHitRate = float64(sbHit) / float64(sbHit+sbMiss)
	}
	r.L1MSHRAll = cache.CombineOccupancy(l1AllRaw)
	r.L1MSHRRead = cache.CombineOccupancy(l1ReadRaw)
	r.L2MSHRAll = cache.CombineOccupancy(l2AllRaw)
	r.L2MSHRRead = cache.CombineOccupancy(l2ReadRaw)

	dir := s.mem.Directory()
	r.DirtyFraction = dir.DirtyReadFraction()
	if dir.WritesShared > 0 {
		r.SharedWriteMigratory = float64(dir.MigratoryWrites) / float64(dir.WritesShared)
	}
	if dir.ReadsDirty > 0 {
		r.ReadDirtyMigratory = float64(dir.MigratoryReadsCC) / float64(dir.ReadsDirty)
	}
	cl := s.mem.Classifier()
	r.MigratoryLines = cl.MigratoryLineCount()
	r.MigratoryPCs = cl.MigratoryPCCount()
	r.LineConcentration = cl.WriteMissConcentration(0.03)
	r.PCConcentration = cl.PCConcentration(0.10)
	r.WriteCSFraction = cl.WriteCSFraction()
	r.ReadCSFraction = cl.ReadCSFraction()
	r.AvgNetLatency = s.mem.Net().AvgLatency()
	return r
}
