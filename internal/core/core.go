// Package core assembles the whole simulated machine — processors
// (internal/cpu), memory system (internal/memsys), and OS scheduler
// (internal/sched) — and runs the global cycle loop. This is the paper's
// simulated AlphaServer-class CC-NUMA multiprocessor; every experiment in
// internal/experiments is a set of Runs of this system under different
// configurations and workloads.
package core

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LockTable holds the values of the simulated lock memory locations, shared
// machine-wide. The paper maintains lock values in the simulated
// environment so that inter-process synchronization (and therefore lock
// passing and migratory transfers) happens in simulated time.
type LockTable struct {
	owner  map[uint64]int
	freeAt map[uint64]uint64
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{owner: make(map[uint64]int), freeAt: make(map[uint64]uint64)}
}

// TryAcquire implements cpu.LockManager. Acquires are idempotent for the
// holder (a squashed-and-replayed acquire must not deadlock against
// itself).
func (t *LockTable) TryAcquire(addr uint64, proc int, now uint64) bool {
	if o, held := t.owner[addr]; held {
		return o == proc
	}
	if now < t.freeAt[addr] {
		return false
	}
	t.owner[addr] = proc
	return true
}

// Release implements cpu.LockManager: the lock becomes acquirable once the
// releasing store has performed.
func (t *LockTable) Release(addr uint64, proc int, availableAt uint64) {
	if o, held := t.owner[addr]; held && o == proc {
		delete(t.owner, addr)
		t.freeAt[addr] = availableAt
	}
}

// Held reports whether the lock is currently owned (tests).
func (t *LockTable) Held(addr uint64) bool {
	_, ok := t.owner[addr]
	return ok
}

// System is the whole simulated machine.
type System struct {
	cfg   config.Config
	mem   *memsys.System
	cores []*cpu.Core
	sch   *sched.Scheduler
	locks *LockTable
	procs []*cpu.Context

	cycle      uint64
	statsStart uint64
	nextProc   int
}

// NewSystem builds a machine for cfg.
func NewSystem(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		mem:   memsys.New(cfg),
		sch:   sched.New(cfg.Nodes, cfg.CtxSwitchCycles),
		locks: NewLockTable(),
	}
	for n := 0; n < cfg.Nodes; n++ {
		s.cores = append(s.cores, cpu.New(cfg, n, s.mem.Node(n), s.locks))
	}
	return s, nil
}

// Mem returns the memory system.
func (s *System) Mem() *memsys.System { return s.mem }

// Core returns processor n.
func (s *System) Core(n int) *cpu.Core { return s.cores[n] }

// Scheduler returns the OS scheduler model.
func (s *System) Scheduler() *sched.Scheduler { return s.sch }

// Locks returns the machine-wide lock table.
func (s *System) Locks() *LockTable { return s.locks }

// Config returns the machine configuration.
func (s *System) Config() config.Config { return s.cfg }

// Cycle returns the current simulated cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// AddProcess pins a server process running stream to cpuID's run queue and
// returns its context.
func (s *System) AddProcess(cpuID int, stream trace.Stream) *cpu.Context {
	if cpuID < 0 || cpuID >= s.cfg.Nodes {
		panic(fmt.Sprintf("core: cpu %d out of range", cpuID))
	}
	ctx := &cpu.Context{ID: s.nextProc, Stream: stream}
	s.nextProc++
	s.procs = append(s.procs, ctx)
	s.sch.Add(cpuID, ctx)
	return ctx
}

// RunOptions controls a simulation run.
type RunOptions struct {
	Label string
	// WarmupInstructions: statistics are reset once this many instructions
	// have retired machine-wide (warm-up transients ignored, Section 2.2).
	WarmupInstructions uint64
	// MaxCycles bounds the run (0 = no bound). Exceeding it is an error so
	// that livelocks are caught rather than silently truncated.
	MaxCycles uint64
}

// ErrMaxCycles reports that the run hit its cycle bound before all
// processes finished.
var ErrMaxCycles = errors.New("core: simulation exceeded MaxCycles")

// Run simulates until every process finishes its trace, returning the
// statistics report.
func (s *System) Run(opt RunOptions) (*stats.Report, error) {
	warmed := opt.WarmupInstructions == 0
	for {
		s.cycle++
		allDone := true
		for i, c := range s.cores {
			s.sch.Tick(i, c, s.cycle)
			c.Tick(s.cycle)
			if c.Context() != nil || s.sch.Pending(i) {
				allDone = false
			}
		}
		if !warmed && s.totalRetired() >= opt.WarmupInstructions {
			s.ResetStats()
			warmed = true
		}
		if allDone {
			break
		}
		if opt.MaxCycles > 0 && s.cycle-s.statsStart >= opt.MaxCycles {
			return s.buildReport(opt.Label), ErrMaxCycles
		}
	}
	s.mem.Finalize(s.cycle)
	return s.buildReport(opt.Label), nil
}

func (s *System) totalRetired() uint64 {
	var n uint64
	for _, c := range s.cores {
		n += c.Retired
	}
	return n
}

// ResetStats discards statistics accumulated so far (used for warm-up).
func (s *System) ResetStats() {
	for _, c := range s.cores {
		c.ResetStats()
	}
	s.mem.ResetStats(s.cycle)
	s.sch.ResetStats()
	s.statsStart = s.cycle
}

// buildReport aggregates machine-wide statistics.
func (s *System) buildReport(label string) *stats.Report {
	r := &stats.Report{Label: label, Cycles: s.cycle - s.statsStart}

	var condBr, condMis uint64
	var lockTries, lockWaits uint64
	for i, c := range s.cores {
		r.Breakdown.Add(&c.Bk)
		r.Instructions += c.Retired
		r.IdleCycles += float64(s.sch.IdleCycles[i] + s.sch.SwitchCycles[i])
		condBr += c.Predictor().CondBranches
		condMis += c.Predictor().CondMispred
		lockTries += c.LockTries
		lockWaits += c.LockWaits
	}
	if condBr > 0 {
		r.BranchMispred = float64(condMis) / float64(condBr)
	}
	if lockTries > 0 {
		r.SyncContention = float64(lockWaits) / float64(lockTries)
	}

	var l1iA, l1iM, l1dA, l1dM, l2A, l2M uint64
	var itlbA, itlbM, dtlbA, dtlbM uint64
	var sbHit, sbMiss uint64
	var l1AllRaw, l2AllRaw, l1ReadRaw, l2ReadRaw [][]uint64
	for n := 0; n < s.cfg.Nodes; n++ {
		h := s.mem.Node(n)
		l1iA += h.L1I().Reads + h.L1I().Writes
		l1iM += h.L1I().ReadMisses + h.L1I().WriteMisses - h.IFetchSBHits
		l1dA += h.L1D().Reads + h.L1D().Writes
		l1dM += h.L1D().ReadMisses + h.L1D().WriteMisses
		l2A += h.L2().Reads + h.L2().Writes
		l2M += h.L2().ReadMisses + h.L2().WriteMisses
		itlbA += h.ITLB().Accesses
		itlbM += h.ITLB().Misses
		dtlbA += h.DTLB().Accesses
		dtlbM += h.DTLB().Misses
		if sb := h.StreamBuffer(); sb != nil {
			sbHit += sb.Hits
			sbMiss += sb.Misses
		}
		a, rd := h.L1DMSHRs().RawOccupancy()
		l1AllRaw = append(l1AllRaw, a)
		l1ReadRaw = append(l1ReadRaw, rd)
		a, rd = h.L2MSHRs().RawOccupancy()
		l2AllRaw = append(l2AllRaw, a)
		l2ReadRaw = append(l2ReadRaw, rd)
	}
	div := func(m, a uint64) float64 {
		if a == 0 {
			return 0
		}
		return float64(m) / float64(a)
	}
	// The L1I rate is per instruction fetched (the fetch engine accesses
	// the cache once per sequential run within a line, so per-line-fetch
	// rates are not comparable to the paper's).
	_ = l1iA
	r.L1IMissRate, r.L1IMisses = div(l1iM, r.Instructions), l1iM
	r.L1DMissRate, r.L1DMisses = div(l1dM, l1dA), l1dM
	r.L2MissRate, r.L2Misses = div(l2M, l2A), l2M
	r.ITLBMissRate = div(itlbM, itlbA)
	r.DTLBMissRate = div(dtlbM, dtlbA)
	if sbHit+sbMiss > 0 {
		r.StreamBufHitRate = float64(sbHit) / float64(sbHit+sbMiss)
	}
	r.L1MSHRAll = cache.CombineOccupancy(l1AllRaw)
	r.L1MSHRRead = cache.CombineOccupancy(l1ReadRaw)
	r.L2MSHRAll = cache.CombineOccupancy(l2AllRaw)
	r.L2MSHRRead = cache.CombineOccupancy(l2ReadRaw)

	dir := s.mem.Directory()
	r.DirtyFraction = dir.DirtyReadFraction()
	if dir.WritesShared > 0 {
		r.SharedWriteMigratory = float64(dir.MigratoryWrites) / float64(dir.WritesShared)
	}
	if dir.ReadsDirty > 0 {
		r.ReadDirtyMigratory = float64(dir.MigratoryReadsCC) / float64(dir.ReadsDirty)
	}
	cl := s.mem.Classifier()
	r.MigratoryLines = cl.MigratoryLineCount()
	r.MigratoryPCs = cl.MigratoryPCCount()
	r.LineConcentration = cl.WriteMissConcentration(0.03)
	r.PCConcentration = cl.PCConcentration(0.10)
	r.WriteCSFraction = cl.WriteCSFraction()
	r.ReadCSFraction = cl.ReadCSFraction()
	r.AvgNetLatency = s.mem.Net().AvgLatency()
	return r
}
