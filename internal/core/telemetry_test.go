package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// telemetryWorkload builds a 4-node machine with sharing between
// neighbouring processes (processes p and p+1 overlap half their array),
// so coherence, mesh, and directory activity all show up in the series.
func telemetryWorkload(t testing.TB, cfg config.Config) *System {
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < cfg.Nodes; p++ {
		base := uint64(1<<20) + uint64(p)*32*1024
		sys.AddProcess(p, synthStream(3000, base))
	}
	return sys
}

func runTelemetryWorkload(t testing.TB, pipe *telemetry.Pipeline) *stats.Report {
	cfg := config.Default()
	rep, err := telemetryWorkload(t, cfg).Run(RunOptions{
		Label:              "telemetry",
		WarmupInstructions: 4_000,
		MaxCycles:          20_000_000,
		Telemetry:          pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTelemetryDeterminism is the tentpole guarantee: attaching telemetry
// must not change what the machine does — identical retired-instruction
// and cycle counts, and an identical execution-time breakdown, with
// sampling on or off.
func TestTelemetryDeterminism(t *testing.T) {
	off := runTelemetryWorkload(t, nil)

	pipe := telemetry.New(10_000) // aggressive interval to maximize observer activity
	var samples []telemetry.Sample
	pipe.Attach(telemetry.FuncSink(func(s *telemetry.Sample) error {
		samples = append(samples, *s)
		return nil
	}), nil)
	probeReads := 0
	pipe.RegisterProbe("probe", func() uint64 { probeReads++; return uint64(probeReads) })
	on := runTelemetryWorkload(t, pipe)
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	if off.Cycles != on.Cycles {
		t.Errorf("cycle count changed with telemetry on: %d vs %d", off.Cycles, on.Cycles)
	}
	if off.Instructions != on.Instructions {
		t.Errorf("retired instructions changed with telemetry on: %d vs %d", off.Instructions, on.Instructions)
	}
	if off.Breakdown != on.Breakdown {
		t.Errorf("execution-time breakdown changed with telemetry on:\noff %v\non  %v", off.Breakdown, on.Breakdown)
	}
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want several", len(samples))
	}
	if probeReads == 0 {
		t.Error("registered probe was never read")
	}
}

// TestTelemetrySeriesConsistency checks the samples tile the run: interval
// cycle counts sum to the total, sequence numbers are dense, the final
// flush reaches the last cycle, and post-warm-up instruction deltas sum to
// the report's retired count.
func TestTelemetrySeriesConsistency(t *testing.T) {
	pipe := telemetry.New(10_000)
	var samples []telemetry.Sample
	pipe.Attach(telemetry.FuncSink(func(s *telemetry.Sample) error {
		samples = append(samples, *s)
		return nil
	}), nil)
	rep := runTelemetryWorkload(t, pipe)

	var cycles, instr uint64
	sawROB, sawMSHR := false, false
	for i := range samples {
		s := &samples[i]
		if s.Seq != i {
			t.Fatalf("sample %d has seq %d", i, s.Seq)
		}
		cycles += s.Cycles
		instr += s.Instructions
		if s.ROBOcc.Total() > 0 {
			sawROB = true
		}
		if s.L1DMSHROcc.Total() > 0 || s.L2MSHROcc.Total() > 0 {
			sawMSHR = true
		}
		if len(s.Cores) != 4 {
			t.Fatalf("sample %d has %d core rows, want 4", i, len(s.Cores))
		}
	}
	last := samples[len(samples)-1]
	if cycles != last.Cycle {
		t.Errorf("interval cycles sum to %d but the last sample is at cycle %d", cycles, last.Cycle)
	}
	// Warm-up resets the retirement counters mid-run, so the clamped
	// series can undercount the pre-reset interval but never the
	// measured-phase total.
	if instr < rep.Instructions {
		t.Errorf("series instructions %d < report instructions %d", instr, rep.Instructions)
	}
	if !sawROB {
		t.Error("no sample recorded ROB occupancy")
	}
	if !sawMSHR {
		t.Error("no sample recorded MSHR occupancy")
	}
}

// TestTelemetryIntervalResolution checks the pipeline interval overrides
// the machine configuration, and the configuration is used when the
// pipeline leaves it unset.
func TestTelemetryIntervalResolution(t *testing.T) {
	cfg := config.Default()
	cfg.TelemetryInterval = 77
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := sys.newTelemetry(RunOptions{Telemetry: telemetry.New(0)})
	if ts.interval != 77 {
		t.Errorf("interval = %d, want cfg fallback 77", ts.interval)
	}
	ts = sys.newTelemetry(RunOptions{Telemetry: telemetry.New(123)})
	if ts.interval != 123 {
		t.Errorf("interval = %d, want pipeline override 123", ts.interval)
	}
	cfg.TelemetryInterval = 0
	sys2, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts = sys2.newTelemetry(RunOptions{Telemetry: telemetry.New(0)})
	if ts.interval != telemetry.DefaultInterval {
		t.Errorf("interval = %d, want DefaultInterval", ts.interval)
	}
	if sys.newTelemetry(RunOptions{}) != nil {
		t.Error("nil pipeline must disable telemetry")
	}
}

// benchRun drives one fixed workload with or without a pipeline attached;
// the Telemetry benchmarks quantify the observer's overhead (the issue
// budget: <2% disabled, <10% at the default 100k interval).
func benchRun(b *testing.B, pipe func() *telemetry.Pipeline) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var p *telemetry.Pipeline
		if pipe != nil {
			p = pipe()
		}
		cfg := config.Default()
		sys := telemetryWorkload(b, cfg)
		if _, err := sys.Run(RunOptions{Label: "bench", MaxCycles: 20_000_000, Telemetry: p}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTelemetryOff(b *testing.B) { benchRun(b, nil) }

func BenchmarkTelemetryOn(b *testing.B) {
	benchRun(b, func() *telemetry.Pipeline {
		p := telemetry.New(0) // default 100k-cycle interval
		p.Attach(telemetry.FuncSink(func(s *telemetry.Sample) error { return nil }), nil)
		return p
	})
}

// BenchmarkTelemetryOnFast samples 10x more often than the default to
// bound the worst-case observer cost.
func BenchmarkTelemetryOnFast(b *testing.B) {
	benchRun(b, func() *telemetry.Pipeline {
		p := telemetry.New(10_000)
		p.Attach(telemetry.FuncSink(func(s *telemetry.Sample) error { return nil }), nil)
		return p
	})
}
