package core

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// TestNextEventConservatismStress is the white-box guarantee behind both
// the idle-cycle skip and the epoch-parallel engine: a per-core bound
// computed on a retire-free tick must never be late. The test runs
// randomized machines over lock-heavy shared-memory streams, ticking
// EVERY cycle, but carries cached bounds exactly as the production loop
// would — consuming the same invalidation channels (TakePoked, the lock
// table's release generation) — and fails if a core retires an
// instruction or switches context at a cycle an active bound claimed was
// quiet. A failure here means FastForward would have skipped real work
// and the skip/parallel engines would diverge from serial.
//
// Early (conservative) bounds are always legal; only late ones are bugs.
func TestNextEventConservatismStress(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		cfg := config.Default()
		cfg.Nodes = []int{1, 2, 4, 4}[rng.Intn(4)]
		cfg.InOrder = rng.Intn(4) == 0
		cfg.IssueWidth = []int{2, 4}[rng.Intn(2)]
		cfg.WindowSize = []int{16, 32, 64}[rng.Intn(3)]
		cfg.Consistency = []config.ConsistencyModel{config.RC, config.PC, config.SC}[rng.Intn(3)]
		cfg.ConsistencyOpts = []config.ConsistencyImpl{
			config.ImplPlain, config.ImplPrefetch, config.ImplSpeculative,
		}[rng.Intn(3)]
		cfg.LatchPolicy = []config.LatchPolicy{
			config.LatchPlain, config.LatchHints, config.LatchHTM,
		}[rng.Intn(3)]
		cfg.StreamBufEntries = []int{0, 2}[rng.Intn(2)]
		cfg.L1D.MSHRs = []int{2, 8}[rng.Intn(2)]
		if rng.Intn(3) == 0 {
			cfg.Faults = config.FaultConfig{
				Enabled:        true,
				Seed:           rng.Uint64(),
				MeshDelayProb:  0.05,
				MeshDelayMax:   30,
				NACKProb:       0.02,
				NACKMaxRetries: 3,
				NACKBackoff:    15,
				MemStallProb:   0.05,
				MemStallCycles: 40,
			}
		}
		t.Logf("trial %d: nodes=%d inorder=%v width=%d window=%d %v/%v latch=%v sbuf=%d mshrs=%d faults=%v",
			trial, cfg.Nodes, cfg.InOrder, cfg.IssueWidth, cfg.WindowSize,
			cfg.Consistency, cfg.ConsistencyOpts, cfg.LatchPolicy,
			cfg.StreamBufEntries, cfg.L1D.MSHRs, cfg.Faults.Enabled)

		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Two processes per core so the scheduler's switch/unblock timing is
		// exercised (syscalls in the streams force blocking and wakeups).
		for n := 0; n < cfg.Nodes; n++ {
			sys.AddProcess(n, stressStream(rng, 120, uint64(n)))
			sys.AddProcess(n, stressStream(rng, 120, uint64(n+cfg.Nodes)))
		}
		runConservatismLoop(t, sys, trial)
	}
}

// stressStream mixes every cross-core coupling the bounds must account
// for: loads/stores on a shared region (invalidations, and under
// ImplSpeculative, pokes), a contended lock critical section (release
// generation), private pointer walks (cache misses with long fixed
// latencies), FP work, and blocking syscalls (scheduler switches).
func stressStream(rng *rand.Rand, iters int, id uint64) *trace.SliceStream {
	var ins []trace.Instr
	const loopPC = uint64(0x30000)
	const shared = uint64(0xA00000) // region all processes hit
	const lockAddr = uint64(0xB00000)
	private := uint64(0xC00000) + id<<20
	for i := 0; i < iters; i++ {
		pc := loopPC
		emit := func(in trace.Instr) {
			in.PC = pc
			pc += 4
			ins = append(ins, in)
		}
		switch rng.Intn(5) {
		case 0: // shared-region read-modify-write (coherence traffic)
			off := uint64(rng.Intn(8)) * 64
			emit(trace.Instr{Op: trace.OpLoad, Addr: shared + off, Dest: 1})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
			emit(trace.Instr{Op: trace.OpStore, Addr: shared + off, Src1: 2})
		case 1: // lock-protected counter (release-generation channel)
			emit(trace.Instr{Op: trace.OpLockAcquire, Addr: lockAddr})
			emit(trace.Instr{Op: trace.OpLoad, Addr: lockAddr + 64, Dest: 1})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
			emit(trace.Instr{Op: trace.OpStore, Addr: lockAddr + 64, Src1: 2})
			emit(trace.Instr{Op: trace.OpWriteBar})
			emit(trace.Instr{Op: trace.OpLockRelease, Addr: lockAddr})
		case 2: // private walk (long fixed-latency misses)
			emit(trace.Instr{Op: trace.OpLoad, Addr: private, Dest: 3})
			emit(trace.Instr{Op: trace.OpFPALU, Src1: 3, Dest: 4})
			emit(trace.Instr{Op: trace.OpStore, Addr: private + 8, Src1: 4})
			private += 64
		case 3: // blocking syscall (scheduler switch + timed wakeup)
			emit(trace.Instr{Op: trace.OpIntALU, Dest: 5})
			emit(trace.Instr{Op: trace.OpSyscall, Latency: uint32(500 + rng.Intn(2000))})
		case 4: // dependent ALU chain ending in a store barrier
			emit(trace.Instr{Op: trace.OpIntALU, Dest: 1})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 2, Dest: 3})
			emit(trace.Instr{Op: trace.OpMemBar})
		}
		ins = append(ins, trace.Instr{
			Op: trace.OpBranch, PC: pc, Src1: 1, Taken: i < iters-1, Target: loopPC,
		})
	}
	return trace.NewSliceStream(ins)
}

// runConservatismLoop drives the machine one cycle at a time, carrying
// cached per-core bounds with the production loop's exact invalidation
// rules, and asserts no bound is ever late.
func runConservatismLoop(t *testing.T, s *System, trial int) {
	t.Helper()
	const maxCycles = 3_000_000
	wake := make([]uint64, len(s.cores))
	coreRet := make([]uint64, len(s.cores))
	for i, c := range s.cores {
		coreRet[i] = c.Retired
	}
	lockGen := s.locks.gen
	for {
		s.cycle++
		allDone := true
		for i, c := range s.cores {
			if s.locks.gen != lockGen {
				// A lock release (this cycle from an earlier core, or last
				// cycle) voids every cached bound, exactly as in Run.
				lockGen = s.locks.gen
				for k := range wake {
					wake[k] = 0
				}
			}
			active := wake[i] > s.cycle
			if active && c.TakePoked() {
				// The skip path consumes the poke and re-ticks; so do we.
				wake[i] = 0
				active = false
			}
			ctxBefore := c.Context()
			s.sch.Tick(i, c, s.cycle)
			c.Tick(s.cycle)
			if rr := c.Retired; rr != coreRet[i] {
				if active {
					t.Fatalf("trial %d: core %d retired at cycle %d under active bound %d (computed bound is late: FastForward would have skipped a retire)",
						trial, i, s.cycle, wake[i])
				}
				coreRet[i] = rr
				wake[i] = 0
			} else if active && c.Context() != ctxBefore {
				t.Fatalf("trial %d: core %d switched context at cycle %d under active bound %d",
					trial, i, s.cycle, wake[i])
			} else if !active {
				w := s.sch.NextEvent(i, c, s.cycle)
				if cw := c.NextEvent(s.cycle); cw < w {
					w = cw
				}
				wake[i] = w
			}
			if c.Context() != nil || s.sch.Pending(i) {
				allDone = false
			}
		}
		if allDone {
			return
		}
		if s.cycle >= maxCycles {
			t.Fatalf("trial %d: machine did not finish within %d cycles", trial, maxCycles)
		}
	}
}
