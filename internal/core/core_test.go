package core

import (
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

func TestLockTable(t *testing.T) {
	lt := NewLockTable()
	if !lt.TryAcquire(100, 1, 10) {
		t.Fatal("free lock not acquirable")
	}
	if lt.TryAcquire(100, 2, 11) {
		t.Fatal("held lock acquired by another process")
	}
	if !lt.TryAcquire(100, 1, 12) {
		t.Fatal("holder must be able to re-acquire (squash replay)")
	}
	lt.Release(100, 1, 50)
	if lt.Held(100) {
		t.Error("lock still held after release")
	}
	if lt.TryAcquire(100, 2, 40) {
		t.Error("lock acquired before its release store performed")
	}
	if !lt.TryAcquire(100, 2, 50) {
		t.Error("lock not acquirable once the release performed")
	}
	// Release by a non-holder is ignored.
	lt.Release(100, 9, 60)
	if !lt.Held(100) {
		t.Error("foreign release dropped the lock")
	}
}

func TestRunHonorsMaxCycles(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A process blocked for a very long time cannot finish in 1000 cycles.
	sys.AddProcess(0, trace.NewSliceStream([]trace.Instr{
		{Op: trace.OpSyscall, PC: 4, Latency: 1 << 30},
		{Op: trace.OpIntALU, PC: 8},
	}))
	_, err = sys.Run(RunOptions{Label: "bounded", MaxCycles: 1000})
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestWarmupResetsStatistics(t *testing.T) {
	mk := func(warmup uint64) uint64 {
		cfg := config.Default()
		cfg.Nodes = 1
		sys, _ := NewSystem(cfg)
		sys.AddProcess(0, synthStream(2000, 1<<21))
		rep, err := sys.Run(RunOptions{Label: "w", WarmupInstructions: warmup, MaxCycles: 50_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Instructions
	}
	full := mk(0)
	warmed := mk(3000)
	if warmed >= full {
		t.Errorf("warm-up did not exclude instructions: %d vs %d", warmed, full)
	}
	if full-warmed < 2000 {
		t.Errorf("warm-up excluded too little: %d vs %d", warmed, full)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestAddProcessOutOfRangePanics(t *testing.T) {
	cfg := config.Default()
	sys, _ := NewSystem(cfg)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sys.AddProcess(99, trace.NewSliceStream(nil))
}

// TestDeterminism: two identical runs must produce identical cycle counts
// and breakdowns (the simulator is fully deterministic).
func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		cfg := config.Default()
		sys, _ := NewSystem(cfg)
		for n := 0; n < cfg.Nodes; n++ {
			sys.AddProcess(n, synthStream(1000, 1<<20))
		}
		rep, err := sys.Run(RunOptions{Label: "det", MaxCycles: 50_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles, rep.Breakdown.Total()
	}
	c1, b1 := run()
	c2, b2 := run()
	if c1 != c2 || b1 != b2 {
		t.Errorf("nondeterministic: (%d, %f) vs (%d, %f)", c1, b1, c2, b2)
	}
}
