package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// Mid-run checkpoint/restore. A checkpoint serializes only the dynamic
// state of the machine (pipelines, caches, directories, locks, clocks,
// statistics, open telemetry/trace state, and the workloads' generation
// cursors); the static structure is rebuilt from the same configuration
// by the caller, which then applies RestoreCheckpoint to a fresh
// System. The simulator is fully deterministic given (config, seed), so
// a restored run retires the same instructions in the same cycles and
// its Report, telemetry series, and trace are byte-identical to an
// uninterrupted run (TestCheckpointByteIdentity).

// DefaultCheckpointInterval is the capture period in simulated cycles
// when CheckpointOptions.Interval is zero.
const DefaultCheckpointInterval = 1_000_000

// WorkloadCheckpointer serializes and rewinds a workload's generation
// state. Implemented by oltp.Workload and dss.Workload: restore rebuilds
// each stream by replaying its draws against logged shared interactions.
type WorkloadCheckpointer interface {
	SnapshotWorkload() ([]byte, error)
	RestoreWorkload([]byte) error
}

// CheckpointOptions arms periodic (and on-cancel) checkpointing for a
// run. The capture cycle boundaries are deterministic — fast-forward
// jumps are capped at the next boundary — so checkpointing does not
// perturb the simulation.
type CheckpointOptions struct {
	// Path is the checkpoint file; each capture atomically replaces it.
	Path string
	// Interval is the capture period in cycles (0 = DefaultCheckpointInterval).
	Interval uint64
	// Workload serializes the workload's generation state; required.
	Workload WorkloadCheckpointer
	// SpecHash identifies the (config, workload, seed) of the run; it is
	// stored in the file and verified by LoadCheckpoint.
	SpecHash string
	// OnCapture, when non-nil, observes each successful capture.
	OnCapture func(cycle uint64, path string)
}

func (o *CheckpointOptions) interval() uint64 {
	if o == nil {
		return 0
	}
	if o.Interval == 0 {
		return DefaultCheckpointInterval
	}
	return o.Interval
}

// ErrSpecMismatch reports a checkpoint taken under a different spec.
var ErrSpecMismatch = errors.New("core: checkpoint spec hash does not match")

// LockTableState is the dynamic state of the machine-wide lock table.
type LockTableState struct {
	Owner     map[uint64]int
	FreeAt    map[uint64]uint64
	Gen       uint64
	Acquires  uint64
	Contended uint64
	Handoffs  uint64
	Failed    map[uint64]bool
	LastOwner map[uint64]int
}

func (t *LockTable) snapshot() LockTableState {
	s := LockTableState{
		Owner:     make(map[uint64]int, len(t.owner)),
		FreeAt:    make(map[uint64]uint64, len(t.freeAt)),
		Gen:       t.gen,
		Acquires:  t.acquires,
		Contended: t.contended,
		Handoffs:  t.handoffs,
		Failed:    make(map[uint64]bool, len(t.failed)),
		LastOwner: make(map[uint64]int, len(t.lastOwner)),
	}
	for k, v := range t.owner {
		s.Owner[k] = v
	}
	for k, v := range t.freeAt {
		s.FreeAt[k] = v
	}
	for k, v := range t.failed {
		s.Failed[k] = v
	}
	for k, v := range t.lastOwner {
		s.LastOwner[k] = v
	}
	return s
}

func (t *LockTable) restore(s LockTableState) {
	t.owner = make(map[uint64]int, len(s.Owner))
	for k, v := range s.Owner {
		t.owner[k] = v
	}
	t.freeAt = make(map[uint64]uint64, len(s.FreeAt))
	for k, v := range s.FreeAt {
		t.freeAt[k] = v
	}
	t.failed = make(map[uint64]bool, len(s.Failed))
	for k, v := range s.Failed {
		t.failed[k] = v
	}
	t.lastOwner = make(map[uint64]int, len(s.LastOwner))
	for k, v := range s.LastOwner {
		t.lastOwner[k] = v
	}
	t.gen = s.Gen
	t.acquires = s.Acquires
	t.contended = s.Contended
	t.handoffs = s.Handoffs
}

// TelemetrySnapState mirrors telemetrySnap (the cumulative counters at
// the previous sample, which the next sample's deltas are taken against).
type TelemetrySnapState struct {
	Cycle   uint64
	Retired []uint64
	Bk      []stats.Breakdown
	RobOcc  [][5]uint64

	Idle uint64

	LockTries, LockWaits, LockSpins       uint64
	LockAcquires, LockContended, LockHand uint64

	HTMBegins, HTMCommits, HTMFallbacks   uint64
	HTMConflict, HTMCapacity, HTMExplicit uint64

	Instr           uint64
	L1IM, L1DM, L2M uint64
	SBHits, SBMiss  uint64
	L1DOcc, L2Occ   []uint64

	DirReads, DirReadsDirty    uint64
	DirWrites, DirWritesShared uint64
	DirUpgrades, DirWritebacks uint64
	DirFlushes, DirMigratory   uint64
	MeshMsgs, MeshFlits        uint64
	MeshLatency, MeshQueue     uint64
	Probes                     []uint64
}

// TelemetryRunState carries the sampling collector across a restore:
// cursor state plus every sample published so far, which the resumed
// run re-publishes into its (fresh) sinks so the final series is
// byte-identical to an uninterrupted run's.
type TelemetryRunState struct {
	Seq     int
	NextAt  uint64
	Prev    TelemetrySnapState
	Samples []telemetry.Sample
}

// MachineState is the full dynamic state of a run: the machine, the
// run-loop bookkeeping, the observers, and the workload blob.
type MachineState struct {
	Cycle      uint64
	StatsStart uint64

	Warmed       bool
	LastRetired  uint64
	LastProgress uint64

	Cores    []cpu.CoreState
	Contexts []cpu.ContextState
	Sched    sched.SchedulerState
	Mem      memsys.SystemState
	Locks    LockTableState

	Telemetry *TelemetryRunState
	Tracer    *tracing.TracerState

	Workload []byte
}

// machineState assembles the checkpoint image of the running system.
func (s *System) machineState(warmed bool, lastRetired, lastProgress uint64,
	tel *telemetryState, tracer *tracing.Tracer, wl WorkloadCheckpointer) (*MachineState, error) {
	wb, err := wl.SnapshotWorkload()
	if err != nil {
		return nil, err
	}
	st := &MachineState{
		Cycle:        s.cycle,
		StatsStart:   s.statsStart,
		Warmed:       warmed,
		LastRetired:  lastRetired,
		LastProgress: lastProgress,
		Sched:        s.sch.Snapshot(),
		Mem:          s.mem.Snapshot(),
		Locks:        s.locks.snapshot(),
		Workload:     wb,
	}
	for _, c := range s.cores {
		st.Cores = append(st.Cores, c.Snapshot())
	}
	for _, ctx := range s.procs {
		st.Contexts = append(st.Contexts, ctx.Snapshot())
	}
	if tel != nil {
		st.Telemetry = tel.checkpoint()
	}
	if tracer != nil {
		ts := tracer.Snapshot()
		st.Tracer = &ts
	}
	return st, nil
}

// captureCheckpoint writes the current state to ck.Path atomically.
func (s *System) captureCheckpoint(ck *CheckpointOptions, warmed bool, lastRetired, lastProgress uint64,
	tel *telemetryState, tracer *tracing.Tracer) error {
	if ck.Workload == nil {
		return errors.New("core: CheckpointOptions.Workload is required")
	}
	st, err := s.machineState(warmed, lastRetired, lastProgress, tel, tracer, ck.Workload)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return fmt.Errorf("encoding machine state: %w", err)
	}
	if err := checkpoint.Write(ck.Path, checkpoint.Meta{SpecHash: ck.SpecHash, Cycle: s.cycle}, buf.Bytes()); err != nil {
		return err
	}
	if ck.OnCapture != nil {
		ck.OnCapture(s.cycle, ck.Path)
	}
	return nil
}

// DecodeMachineState decodes a checkpoint payload. Decode failures are
// reported as corruption (checkpoint.IsCorrupt) so callers fall back to
// from-scratch execution.
func DecodeMachineState(payload []byte) (*MachineState, error) {
	st := &MachineState{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("core: decoding machine state: %v: %w", err, checkpoint.ErrCorrupt)
	}
	return st, nil
}

// LoadCheckpoint reads and verifies a checkpoint file. A torn or
// corrupt file fails with checkpoint.ErrCorrupt; a valid file written
// under a different spec fails with ErrSpecMismatch (when specHash is
// non-empty). An absent file returns the fs.ErrNotExist error unwrapped.
func LoadCheckpoint(path, specHash string) (*MachineState, error) {
	meta, payload, err := checkpoint.Read(path)
	if err != nil {
		return nil, err
	}
	if specHash != "" && meta.SpecHash != specHash {
		return nil, fmt.Errorf("%w: checkpoint %s holds spec %q, want %q", ErrSpecMismatch, path, meta.SpecHash, specHash)
	}
	st, err := DecodeMachineState(payload)
	if err != nil {
		return nil, err
	}
	if st.Cycle != meta.Cycle {
		return nil, fmt.Errorf("core: checkpoint %s header cycle %d does not match payload cycle %d: %w",
			path, meta.Cycle, st.Cycle, checkpoint.ErrCorrupt)
	}
	return st, nil
}

// RestoreCheckpoint rewinds a freshly built System (same configuration,
// same processes added in the same order, no cycles run) to a
// checkpoint. wl must be the freshly built workload whose streams are
// attached to the system's contexts.
func (s *System) RestoreCheckpoint(st *MachineState, wl WorkloadCheckpointer) error {
	if wl == nil {
		return errors.New("core: RestoreCheckpoint requires the workload")
	}
	if s.cycle != 0 {
		return fmt.Errorf("core: RestoreCheckpoint on a system already at cycle %d", s.cycle)
	}
	if len(st.Cores) != len(s.cores) {
		return fmt.Errorf("core: checkpoint has %d cores, configured %d", len(st.Cores), len(s.cores))
	}
	if len(st.Contexts) != len(s.procs) {
		return fmt.Errorf("core: checkpoint has %d contexts, machine has %d", len(st.Contexts), len(s.procs))
	}
	if err := wl.RestoreWorkload(st.Workload); err != nil {
		return err
	}
	htmCfg := s.cores[0].HTMCfg()
	byID := make(map[int]*cpu.Context, len(s.procs))
	for i, ctx := range s.procs {
		if st.Contexts[i].ID != ctx.ID {
			return fmt.Errorf("core: checkpoint context %d has id %d, machine has %d", i, st.Contexts[i].ID, ctx.ID)
		}
		ctx.Restore(st.Contexts[i], htmCfg)
		byID[ctx.ID] = ctx
	}
	for i, c := range s.cores {
		if err := c.Restore(st.Cores[i], byID); err != nil {
			return err
		}
	}
	if err := s.sch.Restore(st.Sched, byID); err != nil {
		return err
	}
	if err := s.mem.Restore(st.Mem); err != nil {
		return err
	}
	s.locks.restore(st.Locks)
	s.cycle = st.Cycle
	s.statsStart = st.StatsStart
	return nil
}

// RestoreAndRun applies a loaded checkpoint to this freshly built
// system and resumes the run. opt.Checkpoint must be set (its Workload
// is the restore target and subsequent captures continue onto its
// Path); opt.Telemetry and opt.Tracer, when set, are restored to the
// checkpoint's observer state first, so the finished run's outputs are
// byte-identical to an uninterrupted run's.
func (s *System) RestoreAndRun(opt RunOptions, st *MachineState) (*stats.Report, error) {
	if opt.Checkpoint == nil || opt.Checkpoint.Workload == nil {
		return nil, errors.New("core: RestoreAndRun requires CheckpointOptions with a Workload")
	}
	if err := s.RestoreCheckpoint(st, opt.Checkpoint.Workload); err != nil {
		return nil, err
	}
	return s.run(opt, st)
}
