package core

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/tracing"
)

func runTracingWorkload(t testing.TB, trc *tracing.Tracer) *stats.Report {
	cfg := config.Default()
	rep, err := telemetryWorkload(t, cfg).Run(RunOptions{
		Label:              "tracing",
		WarmupInstructions: 4_000,
		MaxCycles:          20_000_000,
		Tracer:             trc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTracingPureObserver is the tentpole guarantee: attaching the event
// tracer must not change what the machine does, and the tracer's own
// aggregate attribution must reconcile with the simulator's post-warm-up
// execution-time breakdown.
func TestTracingPureObserver(t *testing.T) {
	off := runTracingWorkload(t, nil)
	trc := tracing.New(tracing.Options{})
	on := runTracingWorkload(t, trc)

	if off.Cycles != on.Cycles {
		t.Errorf("cycle count changed with tracing on: %d vs %d", off.Cycles, on.Cycles)
	}
	if off.Instructions != on.Instructions {
		t.Errorf("retired instructions changed with tracing on: %d vs %d", off.Instructions, on.Instructions)
	}
	if off.Breakdown != on.Breakdown {
		t.Errorf("execution-time breakdown changed with tracing on:\noff %v\non  %v", off.Breakdown, on.Breakdown)
	}

	// Acceptance bound is 1%; the attribution mirrors the retire stage's
	// charging rule exactly, so the error should be essentially zero.
	an := trc.Analysis()
	if err := tracing.ReconcileError(an.Totals(), on.Breakdown); err > 0.01 {
		t.Errorf("trace attribution does not reconcile with the breakdown: max error %.4f%%\ntrace %v\nreport %v",
			err*100, an.Totals(), on.Breakdown)
	}
	if an.Recorded[tracing.KindStall] == 0 {
		t.Error("no stall spans recorded")
	}
	if an.Recorded[tracing.KindMiss] == 0 {
		t.Error("no miss lifecycles recorded")
	}
	if len(trc.Events()) == 0 {
		t.Error("no raw events retained")
	}
	// The warm-up reset happened: the measured window starts after cycle 0.
	if an.StartCycle == 0 {
		t.Error("trace window was not reset at the warm-up boundary")
	}
	if an.EndCycle <= an.StartCycle {
		t.Errorf("trace window %d..%d is empty", an.StartCycle, an.EndCycle)
	}
}

// TestTracingDeterminism: same seed, same configuration, two runs — the
// exported event streams must be byte-identical.
func TestTracingDeterminism(t *testing.T) {
	export := func() []byte {
		trc := tracing.New(tracing.Options{})
		runTracingWorkload(t, trc)
		var buf bytes.Buffer
		if err := trc.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("event streams differ between identical runs (%d vs %d bytes)", len(a), len(b))
	}
}

// benchTracedRun mirrors benchRun for the tracer overhead benchmarks.
func benchTracedRun(b *testing.B, mk func() *tracing.Tracer) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var trc *tracing.Tracer
		if mk != nil {
			trc = mk()
		}
		cfg := config.Default()
		sys := telemetryWorkload(b, cfg)
		if _, err := sys.Run(RunOptions{Label: "bench", MaxCycles: 20_000_000, Tracer: trc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTracingDisabled is the nil-check path: it must be
// indistinguishable from a run with no tracing code at all (the issue
// budget: no measurable overhead disabled).
func BenchmarkRunTracingDisabled(b *testing.B) { benchTracedRun(b, nil) }

func BenchmarkRunTracingEnabled(b *testing.B) {
	benchTracedRun(b, func() *tracing.Tracer { return tracing.New(tracing.Options{}) })
}

// BenchmarkRunTracingSampled bounds the enabled cost at a 1/16 raw-event
// sampling rate (aggregators still see everything).
func BenchmarkRunTracingSampled(b *testing.B) {
	benchTracedRun(b, func() *tracing.Tracer {
		return tracing.New(tracing.Options{SampleEvery: 16, BufferCap: 1 << 12})
	})
}

// TestTracingDisabledOverhead asserts the disabled-path delta in CI
// (bench-smoke sets TRACE_OVERHEAD_CHECK=1): a run with a nil tracer may
// not be measurably slower than the identical run before the hooks
// existed. Both sides run the same code here, so the bound only needs to
// absorb scheduler noise; it is deliberately generous because CI runners
// are shared.
func TestTracingDisabledOverhead(t *testing.T) {
	if os.Getenv("TRACE_OVERHEAD_CHECK") == "" {
		t.Skip("set TRACE_OVERHEAD_CHECK=1 to measure the nil-tracer overhead")
	}
	base := testing.Benchmark(func(b *testing.B) { benchRun(b, nil) })
	off := testing.Benchmark(func(b *testing.B) { benchTracedRun(b, nil) })
	bn, on := base.NsPerOp(), off.NsPerOp()
	if bn <= 0 {
		t.Fatalf("degenerate baseline: %v", base)
	}
	delta := float64(on-bn) / float64(bn)
	t.Logf("baseline %dns/op, nil-tracer %dns/op, delta %.2f%%", bn, on, delta*100)
	if delta > 0.15 {
		t.Errorf("nil-tracer run is %.1f%% slower than baseline (budget 15%%, nominal 0)", delta*100)
	}
}
