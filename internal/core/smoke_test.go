package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// synthStream builds a loop (fixed code block, so the I-cache and branch
// predictor behave as for real code) of dependent ALU ops, loads walking an
// array, stores, and a backwards conditional branch per iteration.
func synthStream(iters int, base uint64) *trace.SliceStream {
	var ins []trace.Instr
	const loopPC = uint64(0x10000)
	addr := base
	for i := 0; i < iters; i++ {
		pc := loopPC
		emit := func(in trace.Instr) {
			in.PC = pc
			pc += 4
			ins = append(ins, in)
		}
		emit(trace.Instr{Op: trace.OpLoad, Addr: addr, Dest: 1})
		emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
		emit(trace.Instr{Op: trace.OpIntALU, Src1: 2, Dest: 3})
		emit(trace.Instr{Op: trace.OpStore, Addr: addr + 8, Src1: 3})
		emit(trace.Instr{Op: trace.OpBranch, Src1: 3, Taken: i < iters-1, Target: loopPC})
		addr += 64
	}
	return trace.NewSliceStream(ins)
}

func TestSmokeSingleProcessor(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 2000
	sys.AddProcess(0, synthStream(iters, 1<<20))
	rep, err := sys.Run(RunOptions{Label: "smoke", MaxCycles: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(iters * 5)
	if rep.Instructions != want {
		t.Fatalf("retired %d instructions, want %d", rep.Instructions, want)
	}
	if rep.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	ipc := rep.IPC(1)
	if ipc <= 0 || ipc > float64(cfg.IssueWidth) {
		t.Fatalf("implausible IPC %.3f", ipc)
	}
	if rep.Breakdown.Total() == 0 {
		t.Fatal("empty execution-time breakdown")
	}
	t.Logf("cycles=%d ipc=%.2f breakdown total=%.0f busy=%.0f",
		rep.Cycles, ipc, rep.Breakdown.Total(), rep.Breakdown[0])
}

func TestSmokeMultiprocessorSharing(t *testing.T) {
	cfg := config.Default()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All four processors hammer the same array: coherence traffic must
	// appear (directory reads and some dirty transfers).
	for n := 0; n < cfg.Nodes; n++ {
		sys.AddProcess(n, synthStream(1500, 1<<20))
	}
	rep, err := sys.Run(RunOptions{Label: "smoke-mp", MaxCycles: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instructions != 4*1500*5 {
		t.Fatalf("retired %d", rep.Instructions)
	}
	dir := sys.Mem().Directory()
	if dir.Writes == 0 {
		t.Fatal("no directory write transactions despite shared stores")
	}
	if dir.WritesShared == 0 {
		t.Error("expected shared-write coherence actions on the common array")
	}
	t.Logf("dirtyFraction=%.2f sharedWrites=%d netAvg=%.0f",
		rep.DirtyFraction, dir.WritesShared, rep.AvgNetLatency)
}

func TestLockPassing(t *testing.T) {
	cfg := config.Default()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lockAddr = 0x900000
	const iters = 300
	mk := func() *trace.SliceStream {
		var ins []trace.Instr
		pc := uint64(0x20000)
		emit := func(in trace.Instr) {
			in.PC = pc
			pc += 4
			ins = append(ins, in)
		}
		for i := 0; i < iters; i++ {
			emit(trace.Instr{Op: trace.OpLockAcquire, Addr: lockAddr})
			emit(trace.Instr{Op: trace.OpLoad, Addr: lockAddr + 64, Dest: 1})
			emit(trace.Instr{Op: trace.OpIntALU, Src1: 1, Dest: 2})
			emit(trace.Instr{Op: trace.OpStore, Addr: lockAddr + 64, Src1: 2})
			emit(trace.Instr{Op: trace.OpWriteBar})
			emit(trace.Instr{Op: trace.OpLockRelease, Addr: lockAddr})
		}
		return trace.NewSliceStream(ins)
	}
	for n := 0; n < cfg.Nodes; n++ {
		sys.AddProcess(n, mk())
	}
	rep, err := sys.Run(RunOptions{Label: "locks", MaxCycles: 80_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instructions != uint64(cfg.Nodes*iters*6) {
		t.Fatalf("retired %d", rep.Instructions)
	}
	if sys.Locks().Held(lockAddr) {
		t.Error("lock still held at end of run")
	}
	if rep.SyncContention == 0 {
		t.Error("expected lock contention across four processors")
	}
	// The counter line protected by the lock must migrate: shared writes
	// and dirty reads classified migratory.
	if rep.SharedWriteMigratory == 0 {
		t.Error("no migratory shared writes detected")
	}
	if rep.Breakdown[8]+rep.Breakdown[7] == 0 { // ReadDirty or ReadRemote
		t.Log("note: no dirty read stall time (may be hidden)")
	}
	t.Logf("contention=%.2f migW=%.2f migR=%.2f sync=%.0f",
		rep.SyncContention, rep.SharedWriteMigratory, rep.ReadDirtyMigratory,
		rep.Breakdown[10])
}
