package tlb

import (
	"testing"
	"testing/quick"
)

func TestPageTableTranslateStable(t *testing.T) {
	pt, _ := NewPageTable(8 << 10)
	p1, h1 := pt.Translate(0x1234_5678, 2)
	p2, h2 := pt.Translate(0x1234_5678, 3) // second toucher does not re-home
	if p1 != p2 || h1 != h2 {
		t.Fatalf("translation not stable: (%x,%d) vs (%x,%d)", p1, h1, p2, h2)
	}
	if h1 != 2 {
		t.Errorf("first-touch home = %d, want 2", h1)
	}
	if p1&0x1FFF != 0x1234_5678&0x1FFF {
		t.Error("page offset not preserved")
	}
}

func TestPageTableBinHopping(t *testing.T) {
	pt, _ := NewPageTable(8 << 10)
	// Consecutively touched pages get consecutive physical pages.
	var prev uint64
	for i := 0; i < 16; i++ {
		p, _ := pt.Translate(uint64(i)*0x10000, 0) // scattered virtual pages
		ppn := p >> 13
		if i > 0 && ppn != prev+1 {
			t.Fatalf("bin-hopping broken: ppn %d after %d", ppn, prev)
		}
		prev = ppn
	}
	if pt.Pages() != 16 {
		t.Errorf("pages = %d, want 16", pt.Pages())
	}
}

func TestHomeOfPhys(t *testing.T) {
	pt, _ := NewPageTable(8 << 10)
	p, _ := pt.Translate(0xABC000, 3)
	home, ok := pt.HomeOfPhys(p)
	if !ok || home != 3 {
		t.Errorf("HomeOfPhys = %d,%v, want 3,true", home, ok)
	}
	if _, ok := pt.HomeOfPhys(0xFFFF_FFFF_F000); ok {
		t.Error("unmapped physical address reported a home")
	}
}

func TestTranslateDeterministicProperty(t *testing.T) {
	pt, _ := NewPageTable(8 << 10)
	f := func(vaddr uint64, node uint8) bool {
		n := int(node % 4)
		p1, h1 := pt.Translate(vaddr, n)
		p2, h2 := pt.Translate(vaddr, (n+1)%4)
		return p1 == p2 && h1 == h2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLBHitAfterInsert(t *testing.T) {
	tlb, _ := New(4)
	if tlb.Lookup(100) {
		t.Error("cold lookup must miss")
	}
	if !tlb.Lookup(100) {
		t.Error("second lookup must hit")
	}
	if tlb.Accesses != 2 || tlb.Misses != 1 {
		t.Errorf("counters = %d/%d", tlb.Accesses, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb, _ := New(4)
	for vpn := uint64(0); vpn < 4; vpn++ {
		tlb.Lookup(vpn)
	}
	tlb.Lookup(0) // refresh 0; LRU is now 1
	tlb.Lookup(9) // evicts 1
	if !tlb.Lookup(0) {
		t.Error("recently used entry evicted")
	}
	if tlb.Lookup(1) {
		t.Error("LRU entry not evicted")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb, _ := New(8)
	for vpn := uint64(0); vpn < 8; vpn++ {
		tlb.Lookup(vpn)
	}
	tlb.Flush()
	for vpn := uint64(0); vpn < 8; vpn++ {
		if tlb.Lookup(vpn) {
			t.Fatalf("vpn %d survived flush", vpn)
		}
	}
}

func TestTLBMissRateAndReset(t *testing.T) {
	tlb, _ := New(2)
	tlb.Lookup(1)
	tlb.Lookup(1)
	if got := tlb.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %f, want 0.5", got)
	}
	tlb.ResetStats()
	if tlb.Accesses != 0 || tlb.MissRate() != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if !tlb.Lookup(1) {
		t.Error("ResetStats must not drop entries")
	}
}

func TestTLBCapacityProperty(t *testing.T) {
	// With W distinct pages cycling through a W-entry TLB, everything
	// hits after warm-up; with W+1 pages in LRU order, everything misses.
	tlb, _ := New(8)
	for round := 0; round < 3; round++ {
		for vpn := uint64(0); vpn < 8; vpn++ {
			tlb.Lookup(vpn)
		}
	}
	if tlb.Misses != 8 {
		t.Errorf("resident set misses = %d, want 8 (cold only)", tlb.Misses)
	}
	thrash, _ := New(4)
	for round := 0; round < 3; round++ {
		for vpn := uint64(0); vpn < 5; vpn++ {
			thrash.Lookup(vpn)
		}
	}
	if thrash.Misses != thrash.Accesses {
		t.Errorf("LRU thrash pattern should always miss: %d/%d", thrash.Misses, thrash.Accesses)
	}
}

func TestBadConstruction(t *testing.T) {
	if _, err := NewPageTable(3000); err == nil {
		t.Error("expected error for non-power-of-two page size")
	}
	if _, err := NewPageTable(0); err == nil {
		t.Error("expected error for zero page size")
	}
	if _, err := New(0); err == nil {
		t.Error("expected error for zero TLB entries")
	}
}
