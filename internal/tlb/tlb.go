// Package tlb models the virtual-memory structures of the simulated
// machine: fully associative 128-entry instruction and data TLBs with LRU
// replacement, 8KB pages, a bin-hopping virtual-to-physical page mapping
// policy, and first-touch page homing across the CC-NUMA nodes (Figure 1 of
// the paper).
package tlb

import "fmt"

// PTE is one page-table entry.
type PTE struct {
	PPN  uint64 // physical page number
	Home int    // home node owning the page's memory and directory state
}

// PageTable is the machine-wide virtual-to-physical mapping, shared by all
// simulated processes (the Oracle server processes share the SGA mapping).
// Physical pages are handed out sequentially, which implements bin-hopping:
// consecutively touched virtual pages land in consecutive cache bins rather
// than colliding. Pages are homed at the node of the first toucher.
//
// PageTable is not safe for concurrent use; the simulator is single-
// threaded per machine.
type PageTable struct {
	pageShift uint
	entries   map[uint64]PTE
	homeByPPN map[uint64]int
	nextPPN   uint64

	// One-entry MRU translation cache. Every data and instruction access
	// translates, page locality makes back-to-back same-page lookups the
	// common case, and a mapping never changes once allocated — so the map
	// probe shows up hot in profiles while the cached PTE can never go
	// stale. (Derived state: deliberately absent from checkpoints.)
	mruVPN   uint64
	mruPTE   PTE
	mruValid bool
}

// NewPageTable returns an empty page table for the given page size, which
// must be a power of two.
func NewPageTable(pageBytes int) (*PageTable, error) {
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		return nil, fmt.Errorf("tlb: page size %d not a power of two", pageBytes)
	}
	shift := uint(0)
	for 1<<shift != pageBytes {
		shift++
	}
	return &PageTable{
		pageShift: shift,
		entries:   make(map[uint64]PTE),
		homeByPPN: make(map[uint64]int),
	}, nil
}

// PageShift returns log2(page size).
func (pt *PageTable) PageShift() uint { return pt.pageShift }

// VPN returns the virtual page number of vaddr.
func (pt *PageTable) VPN(vaddr uint64) uint64 { return vaddr >> pt.pageShift }

// Translate maps vaddr to a physical address and the page's home node,
// allocating (and first-touch homing at node) on the first reference.
func (pt *PageTable) Translate(vaddr uint64, node int) (paddr uint64, home int) {
	vpn := vaddr >> pt.pageShift
	off := vaddr & ((1 << pt.pageShift) - 1)
	if pt.mruValid && vpn == pt.mruVPN {
		e := pt.mruPTE
		return e.PPN<<pt.pageShift | off, e.Home
	}
	e, ok := pt.entries[vpn]
	if !ok {
		pt.nextPPN++
		e = PTE{PPN: pt.nextPPN, Home: node}
		pt.entries[vpn] = e
		pt.homeByPPN[e.PPN] = node
	}
	pt.mruVPN, pt.mruPTE, pt.mruValid = vpn, e, true
	return e.PPN<<pt.pageShift | off, e.Home
}

// HomeOfPhys returns the home node of a mapped physical address.
func (pt *PageTable) HomeOfPhys(paddr uint64) (home int, ok bool) {
	home, ok = pt.homeByPPN[paddr>>pt.pageShift]
	return home, ok
}

// Pages returns the number of mapped pages.
func (pt *PageTable) Pages() int { return len(pt.entries) }

// TLB is a fully associative translation buffer with true-LRU replacement.
// Each simulated processor owns separate instruction and data TLBs.
type TLB struct {
	entries []tlbEntry
	stamp   uint64
	mru     int // index of the last hit: sequential scans hit the same page

	Accesses uint64
	Misses   uint64
}

type tlbEntry struct {
	vpn   uint64
	stamp uint64
	valid bool
}

// New returns a TLB with the given number of entries.
func New(entries int) (*TLB, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("tlb: invalid entry count %d", entries)
	}
	return &TLB{entries: make([]tlbEntry, entries)}, nil
}

// Lookup probes the TLB for vpn, inserting it on a miss (evicting the LRU
// entry), and reports whether it hit.
func (t *TLB) Lookup(vpn uint64) bool {
	t.Accesses++
	t.stamp++
	// MRU short-circuit: page locality makes back-to-back lookups of the
	// same page the common case, and a full associative probe per access
	// shows up hot in profiles.
	if e := &t.entries[t.mru]; e.valid && e.vpn == vpn {
		e.stamp = t.stamp
		return true
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			e.stamp = t.stamp
			t.mru = i
			return true
		}
	}
	t.Misses++
	// Victim selection only runs on the (rare) miss path: any invalid way,
	// else true LRU. Which invalid way is filled is unobservable — the set
	// of cached pages ends up the same.
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			break
		}
		if e.stamp < t.entries[victim].stamp {
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{vpn: vpn, stamp: t.stamp, valid: true}
	t.mru = victim
	return false
}

// Flush invalidates all entries (used on context switches).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// MissRate returns misses/accesses.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// ResetStats zeroes the TLB counters (entries are kept).
func (t *TLB) ResetStats() { t.Accesses, t.Misses = 0, 0 }
