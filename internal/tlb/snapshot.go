package tlb

import "fmt"

// Checkpoint DTOs. The page table is machine-wide mutable state (first-
// touch homing decides physical addresses, which decide cache indexing
// and directory homes), so it must round-trip exactly; the TLBs carry
// their LRU stamps so replacement decisions after restore match the
// uninterrupted run.

// PageTableState is the dynamic state of a PageTable.
type PageTableState struct {
	PageShift uint
	Entries   map[uint64]PTE
	NextPPN   uint64
}

// Snapshot captures the page table.
func (pt *PageTable) Snapshot() PageTableState {
	s := PageTableState{
		PageShift: pt.pageShift,
		Entries:   make(map[uint64]PTE, len(pt.entries)),
		NextPPN:   pt.nextPPN,
	}
	for vpn, e := range pt.entries {
		s.Entries[vpn] = e
	}
	return s
}

// Restore refills the page table from a snapshot taken with the same
// page size. homeByPPN is derived from the entries.
func (pt *PageTable) Restore(s PageTableState) error {
	if s.PageShift != pt.pageShift {
		return fmt.Errorf("tlb: snapshot page shift %d != configured %d", s.PageShift, pt.pageShift)
	}
	clear(pt.entries)
	clear(pt.homeByPPN)
	for vpn, e := range s.Entries {
		pt.entries[vpn] = e
		pt.homeByPPN[e.PPN] = e.Home
	}
	pt.nextPPN = s.NextPPN
	return nil
}

// TLBEntryState is one TLB way.
type TLBEntryState struct {
	VPN   uint64
	Stamp uint64
	Valid bool
}

// TLBState is the dynamic state of a TLB.
type TLBState struct {
	Entries  []TLBEntryState
	Stamp    uint64
	MRU      int
	Accesses uint64
	Misses   uint64
}

// Snapshot captures the TLB.
func (t *TLB) Snapshot() TLBState {
	s := TLBState{
		Entries:  make([]TLBEntryState, len(t.entries)),
		Stamp:    t.stamp,
		MRU:      t.mru,
		Accesses: t.Accesses,
		Misses:   t.Misses,
	}
	for i, e := range t.entries {
		s.Entries[i] = TLBEntryState{VPN: e.vpn, Stamp: e.stamp, Valid: e.valid}
	}
	return s
}

// Restore refills the TLB from a snapshot taken on a TLB of the same
// size.
func (t *TLB) Restore(s TLBState) error {
	if len(s.Entries) != len(t.entries) {
		return fmt.Errorf("tlb: snapshot has %d entries, configured %d", len(s.Entries), len(t.entries))
	}
	if s.MRU < 0 || s.MRU >= len(t.entries) {
		return fmt.Errorf("tlb: snapshot MRU index %d out of range", s.MRU)
	}
	for i, e := range s.Entries {
		t.entries[i] = tlbEntry{vpn: e.VPN, stamp: e.Stamp, valid: e.Valid}
	}
	t.stamp = s.Stamp
	t.mru = s.MRU
	t.Accesses = s.Accesses
	t.Misses = s.Misses
	return nil
}
