// Package trace defines the instruction-trace representation consumed by the
// timing simulator.
//
// The paper drives a detailed multiprocessor simulator with per-process
// instruction traces of the Oracle server processes captured with ATOM,
// annotated with synchronization and blocking-system-call markers. This
// package plays the role of that trace format: an Instr is one dynamic
// instruction (with its PC, effective address, register dependences and
// branch outcome), and a Stream produces them lazily, either from a workload
// generator (internal/workload) or from a trace file (Reader/Writer).
package trace

import "fmt"

// Op is the dynamic instruction kind.
type Op uint8

const (
	// OpIntALU is an integer arithmetic/logical operation.
	OpIntALU Op = iota
	// OpFPALU is a floating-point operation.
	OpFPALU
	// OpLoad reads Addr into Dest.
	OpLoad
	// OpStore writes Addr.
	OpStore
	// OpBranch is a conditional branch with outcome Taken and target Target.
	OpBranch
	// OpJump is an unconditional indirect/direct jump (uses the BTB).
	OpJump
	// OpCall is a subroutine call (pushes the return-address stack).
	OpCall
	// OpReturn is a subroutine return (pops the return-address stack).
	OpReturn
	// OpLockAcquire acquires the simulated lock at Addr. The simulator
	// evaluates lock values in simulated time, so contention and lock
	// passing behave as in the traced system.
	OpLockAcquire
	// OpLockRelease releases the simulated lock at Addr.
	OpLockRelease
	// OpMemBar is the Alpha MB full memory barrier.
	OpMemBar
	// OpWriteBar is the Alpha WMB write memory barrier.
	OpWriteBar
	// OpSyscall is a blocking system call with latency Latency cycles; the
	// simulator uses it as a context-switch hint (Section 2.2 of the paper).
	OpSyscall
	// OpPrefetch is a non-binding software prefetch of Addr (Section 4.2).
	OpPrefetch
	// OpPrefetchX is a software prefetch-exclusive of Addr (Section 4.2).
	OpPrefetchX
	// OpFlush is the software flush / "WriteThrough" hint: push the dirty
	// line at Addr back to memory, keeping a clean copy (Section 4.2).
	OpFlush

	opCount
)

var opNames = [...]string{
	"int", "fp", "load", "store", "branch", "jump", "call", "return",
	"lockacq", "lockrel", "mb", "wmb", "syscall", "prefetch", "prefetchx", "flush",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMem reports whether the op accesses the data memory hierarchy.
func (o Op) IsMem() bool {
	switch o {
	case OpLoad, OpStore, OpLockAcquire, OpLockRelease, OpPrefetch, OpPrefetchX, OpFlush:
		return true
	}
	return false
}

// IsBranch reports whether the op redirects control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpBranch, OpJump, OpCall, OpReturn:
		return true
	}
	return false
}

// NoReg marks an unused register operand. Register numbers 1..MaxReg are
// general registers; 0 is reserved as "always ready" (like Alpha r31).
const NoReg = 0

// MaxReg is the largest usable architectural register number.
const MaxReg = 63

// Instr is one dynamic instruction.
type Instr struct {
	Op      Op
	PC      uint64 // virtual instruction address
	Addr    uint64 // effective virtual address (memory ops)
	Target  uint64 // actual target (branch ops)
	Latency uint32 // blocking latency in cycles (OpSyscall)
	Src1    uint8  // source register or NoReg
	Src2    uint8  // source register or NoReg
	Dest    uint8  // destination register or NoReg
	Taken   bool   // actual outcome (OpBranch)
}

func (in Instr) String() string {
	switch {
	case in.Op.IsMem():
		return fmt.Sprintf("%#x: %s %#x r%d,r%d -> r%d", in.PC, in.Op, in.Addr, in.Src1, in.Src2, in.Dest)
	case in.Op.IsBranch():
		return fmt.Sprintf("%#x: %s taken=%v -> %#x", in.PC, in.Op, in.Taken, in.Target)
	case in.Op == OpSyscall:
		return fmt.Sprintf("%#x: syscall %d cycles", in.PC, in.Latency)
	default:
		return fmt.Sprintf("%#x: %s r%d,r%d -> r%d", in.PC, in.Op, in.Src1, in.Src2, in.Dest)
	}
}

// Stream produces a sequence of instructions. Next fills *in and reports
// whether an instruction was produced; it returns false at end of trace.
// Implementations need not be safe for concurrent use.
type Stream interface {
	Next(in *Instr) bool
}

// Resetter is implemented by streams that can be rewound to the beginning.
type Resetter interface {
	Reset()
}

// SliceStream replays a fixed slice of instructions. It implements Stream
// and Resetter.
type SliceStream struct {
	Instrs []Instr
	pos    int
}

// NewSliceStream returns a stream over instrs (not copied).
func NewSliceStream(instrs []Instr) *SliceStream {
	return &SliceStream{Instrs: instrs}
}

// Next implements Stream.
func (s *SliceStream) Next(in *Instr) bool {
	if s.pos >= len(s.Instrs) {
		return false
	}
	*in = s.Instrs[s.pos]
	s.pos++
	return true
}

// Reset implements Resetter.
func (s *SliceStream) Reset() { s.pos = 0 }

// LimitStream passes through at most N instructions from the underlying
// stream.
type LimitStream struct {
	S Stream
	N uint64
}

// Next implements Stream.
func (l *LimitStream) Next(in *Instr) bool {
	if l.N == 0 {
		return false
	}
	if !l.S.Next(in) {
		return false
	}
	l.N--
	return true
}

// Collect drains up to max instructions from s into a slice. A max of 0
// means "no limit" and requires s to be finite.
func Collect(s Stream, max int) []Instr {
	var out []Instr
	var in Instr
	for s.Next(&in) {
		out = append(out, in)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}
