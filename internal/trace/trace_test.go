package trace

import (
	"strings"
	"testing"
)

func TestOpClassification(t *testing.T) {
	mem := []Op{OpLoad, OpStore, OpLockAcquire, OpLockRelease, OpPrefetch, OpPrefetchX, OpFlush}
	for _, op := range mem {
		if !op.IsMem() {
			t.Errorf("%v should be a memory op", op)
		}
		if op.IsBranch() {
			t.Errorf("%v should not be a branch", op)
		}
	}
	br := []Op{OpBranch, OpJump, OpCall, OpReturn}
	for _, op := range br {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
		if op.IsMem() {
			t.Errorf("%v should not be a memory op", op)
		}
	}
	for _, op := range []Op{OpIntALU, OpFPALU, OpMemBar, OpWriteBar, OpSyscall} {
		if op.IsMem() || op.IsBranch() {
			t.Errorf("%v misclassified", op)
		}
	}
}

func TestOpStrings(t *testing.T) {
	if OpLoad.String() != "load" || OpFlush.String() != "flush" {
		t.Error("op names wrong")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("unknown op should include value")
	}
}

func TestInstrString(t *testing.T) {
	cases := []Instr{
		{Op: OpLoad, PC: 0x1000, Addr: 0x2000, Dest: 3},
		{Op: OpBranch, PC: 0x1004, Taken: true, Target: 0x1100},
		{Op: OpSyscall, PC: 0x1008, Latency: 500},
		{Op: OpIntALU, PC: 0x100c, Src1: 1, Dest: 2},
	}
	for _, in := range cases {
		if in.String() == "" {
			t.Errorf("empty String for %v", in.Op)
		}
	}
}

func TestSliceStream(t *testing.T) {
	ins := []Instr{
		{Op: OpIntALU, PC: 4},
		{Op: OpLoad, PC: 8, Addr: 100},
		{Op: OpStore, PC: 12, Addr: 200},
	}
	s := NewSliceStream(ins)
	var got []Instr
	var in Instr
	for s.Next(&in) {
		got = append(got, in)
	}
	if len(got) != 3 || got[1].Addr != 100 {
		t.Fatalf("unexpected replay: %v", got)
	}
	if s.Next(&in) {
		t.Error("Next after end should return false")
	}
	s.Reset()
	if !s.Next(&in) || in.PC != 4 {
		t.Error("Reset did not rewind")
	}
}

func TestLimitStream(t *testing.T) {
	base := NewSliceStream(make([]Instr, 10))
	l := &LimitStream{S: base, N: 4}
	var in Instr
	n := 0
	for l.Next(&in) {
		n++
	}
	if n != 4 {
		t.Errorf("limit stream yielded %d, want 4", n)
	}
}

func TestCollect(t *testing.T) {
	base := NewSliceStream(make([]Instr, 7))
	if got := Collect(base, 5); len(got) != 5 {
		t.Errorf("Collect(max=5) returned %d", len(got))
	}
	base.Reset()
	if got := Collect(base, 0); len(got) != 7 {
		t.Errorf("Collect(no max) returned %d", len(got))
	}
}
