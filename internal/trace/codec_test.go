package trace

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// canonical clamps an instruction to the fields the codec preserves for its
// op kind (e.g. ALU ops carry no address).
func canonical(in Instr) Instr {
	out := Instr{Op: in.Op, PC: in.PC}
	switch {
	case in.Op.IsMem():
		out.Addr = in.Addr
		out.Src1, out.Src2, out.Dest = in.Src1, in.Src2, in.Dest
	case in.Op.IsBranch():
		out.Target = in.Target
		out.Taken = in.Taken
		out.Src1 = in.Src1
	case in.Op == OpSyscall:
		out.Latency = in.Latency
	default:
		out.Src1, out.Src2, out.Dest = in.Src1, in.Src2, in.Dest
	}
	return out
}

func roundtrip(t *testing.T, ins []Instr) []Instr {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(ins)) {
		t.Fatalf("writer count %d, want %d", w.Count(), len(ins))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Instr
	var in Instr
	for r.Next(&in) {
		got = append(got, in)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCodecRoundtripBasic(t *testing.T) {
	ins := []Instr{
		{Op: OpIntALU, PC: 0x1000, Src1: 1, Src2: 2, Dest: 3},
		{Op: OpLoad, PC: 0x1004, Addr: 0xdeadbeef, Src1: 3, Dest: 4},
		{Op: OpStore, PC: 0x1008, Addr: 0xdeadbef0, Src1: 4},
		{Op: OpBranch, PC: 0x100c, Taken: true, Target: 0x1000, Src1: 4},
		{Op: OpCall, PC: 0x1010, Target: 0x9000},
		{Op: OpReturn, PC: 0x9004, Target: 0x1014},
		{Op: OpLockAcquire, PC: 0x1014, Addr: 0x2000_0000, Dest: 5},
		{Op: OpWriteBar, PC: 0x1018},
		{Op: OpLockRelease, PC: 0x101c, Addr: 0x2000_0000, Src1: 5},
		{Op: OpSyscall, PC: 0x1020, Latency: 123456},
		{Op: OpPrefetch, PC: 0x1024, Addr: 0x4000_0000},
		{Op: OpPrefetchX, PC: 0x1028, Addr: 0x4000_0040},
		{Op: OpFlush, PC: 0x102c, Addr: 0x4000_0040},
		{Op: OpMemBar, PC: 0x1030},
		{Op: OpFPALU, PC: 0x1034, Src1: 6, Dest: 7},
		{Op: OpJump, PC: 0x1038, Target: 0x4000},
	}
	got := roundtrip(t, ins)
	if len(got) != len(ins) {
		t.Fatalf("decoded %d, want %d", len(got), len(ins))
	}
	for i := range ins {
		if want := canonical(ins[i]); !reflect.DeepEqual(got[i], want) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestCodecRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	gen := func(n int) []Instr {
		ins := make([]Instr, n)
		pc := uint64(0x10000)
		for i := range ins {
			op := Op(rng.IntN(int(opCount)))
			ins[i] = Instr{
				Op: op, PC: pc,
				Addr:    rng.Uint64() % (1 << 40),
				Target:  pc + uint64(rng.IntN(4096)) - 2048,
				Latency: rng.Uint32() % 1_000_000,
				Src1:    uint8(rng.IntN(64)),
				Src2:    uint8(rng.IntN(64)),
				Dest:    uint8(rng.IntN(64)),
				Taken:   rng.IntN(2) == 0,
			}
			pc += 4
		}
		return ins
	}
	f := func(seed uint16) bool {
		n := int(seed)%500 + 1
		ins := gen(n)
		got := roundtrip(t, ins)
		if len(got) != len(ins) {
			return false
		}
		for i := range ins {
			if !reflect.DeepEqual(got[i], canonical(ins[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(strings.NewReader("NOTATRACE-------"))
	if err != ErrBadMagic {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Instr{Op: OpLoad, PC: 4, Addr: 0x1234, Dest: 1})
	_ = w.Flush()
	full := buf.Bytes()
	// Cut the record in half (but keep the header).
	cut := full[:len(fileMagic)+2]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	if r.Next(&in) {
		t.Error("Next succeeded on truncated record")
	}
	if r.Err() == nil {
		t.Error("truncated record should surface an error")
	}
}

func TestReaderInvalidOpcode(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fileMagic)
	buf.WriteByte(0xFF)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	if r.Next(&in) {
		t.Error("Next succeeded on invalid opcode")
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "opcode") {
		t.Errorf("want opcode error, got %v", r.Err())
	}
}

func TestWriteAll(t *testing.T) {
	ins := make([]Instr, 100)
	for i := range ins {
		ins[i] = Instr{Op: OpIntALU, PC: uint64(4 * i)}
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	n, err := WriteAll(w, NewSliceStream(ins))
	if err != nil || n != 100 {
		t.Fatalf("WriteAll = %d, %v", n, err)
	}
	r, _ := NewReader(&buf)
	if got := Collect(r, 0); len(got) != 100 {
		t.Errorf("decoded %d records", len(got))
	}
}
