package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File format: a magic header followed by one varint-encoded record per
// instruction. PC and Addr are delta-encoded against the previous record to
// keep files small (instruction streams are mostly sequential).

var fileMagic = []byte("DBTRACE1")

// Writer encodes instructions to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	buf    [8 * binary.MaxVarintLen64]byte
	lastPC uint64
	lastEA uint64
	n      uint64
	err    error
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction. Errors are sticky.
func (w *Writer) Write(in Instr) error {
	if w.err != nil {
		return w.err
	}
	b := w.buf[:0]
	b = append(b, byte(in.Op))
	b = binary.AppendVarint(b, int64(in.PC)-int64(w.lastPC))
	w.lastPC = in.PC
	if in.Op.IsMem() {
		b = binary.AppendVarint(b, int64(in.Addr)-int64(w.lastEA))
		w.lastEA = in.Addr
		b = append(b, in.Src1, in.Src2, in.Dest)
	} else if in.Op.IsBranch() {
		b = binary.AppendVarint(b, int64(in.Target)-int64(in.PC))
		flag := byte(0)
		if in.Taken {
			flag = 1
		}
		b = append(b, flag, in.Src1)
	} else if in.Op == OpSyscall {
		b = binary.AppendUvarint(b, uint64(in.Latency))
	} else {
		b = append(b, in.Src1, in.Src2, in.Dest)
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = fmt.Errorf("trace: writing record %d: %w", w.n, err)
		return w.err
	}
	w.n++
	return nil
}

// Count returns the number of instructions written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// WriteAll drains the stream into w.
func WriteAll(w *Writer, s Stream) (uint64, error) {
	var in Instr
	var n uint64
	for s.Next(&in) {
		if err := w.Write(in); err != nil {
			return n, err
		}
		n++
	}
	return n, w.Flush()
}

// Reader decodes a trace file. It implements Stream.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
	lastEA uint64
	err    error
}

// ErrBadMagic is returned when the input is not a trace file.
var ErrBadMagic = errors.New("trace: bad file magic")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	got := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(got) != string(fileMagic) {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Err returns the first decode error encountered, if any. A clean
// end-of-file is not an error.
func (r *Reader) Err() error { return r.err }

// Next implements Stream. It returns false at end of file or on a decode
// error (check Err to distinguish).
func (r *Reader) Next(in *Instr) bool {
	if r.err != nil {
		return false
	}
	opb, err := r.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			r.err = err
		}
		return false
	}
	if opb >= byte(opCount) {
		r.err = fmt.Errorf("trace: invalid opcode %d", opb)
		return false
	}
	*in = Instr{Op: Op(opb)}
	dpc, err := binary.ReadVarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	r.lastPC = uint64(int64(r.lastPC) + dpc)
	in.PC = r.lastPC
	switch {
	case in.Op.IsMem():
		dea, err := binary.ReadVarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated record: %w", err)
			return false
		}
		r.lastEA = uint64(int64(r.lastEA) + dea)
		in.Addr = r.lastEA
		if r.err = r.readRegs(&in.Src1, &in.Src2, &in.Dest); r.err != nil {
			return false
		}
	case in.Op.IsBranch():
		dt, err := binary.ReadVarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated record: %w", err)
			return false
		}
		in.Target = uint64(int64(in.PC) + dt)
		flag, err := r.r.ReadByte()
		if err != nil {
			r.err = fmt.Errorf("trace: truncated record: %w", err)
			return false
		}
		in.Taken = flag != 0
		src, err := r.r.ReadByte()
		if err != nil {
			r.err = fmt.Errorf("trace: truncated record: %w", err)
			return false
		}
		in.Src1 = src
	case in.Op == OpSyscall:
		lat, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated record: %w", err)
			return false
		}
		in.Latency = uint32(lat)
	default:
		if r.err = r.readRegs(&in.Src1, &in.Src2, &in.Dest); r.err != nil {
			return false
		}
	}
	return true
}

func (r *Reader) readRegs(s1, s2, d *uint8) error {
	var b [3]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		return fmt.Errorf("trace: truncated record: %w", err)
	}
	*s1, *s2, *d = b[0], b[1], b[2]
	return nil
}
