package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestLookupAfterInsert(t *testing.T) {
	c, _ := New("t", 8192, 2, 64) // 64 sets
	if c.Lookup(0x1000) != Invalid {
		t.Error("cold lookup must miss")
	}
	c.Insert(0x1000, Shared)
	if c.Lookup(0x1000) != Shared {
		t.Error("inserted line not found")
	}
	// Any address on the same line hits.
	if c.Lookup(0x103F) != Shared {
		t.Error("same-line address missed")
	}
	if c.Lookup(0x1040) != Invalid {
		t.Error("next line should miss")
	}
}

func TestInsertUpdatesState(t *testing.T) {
	c, _ := New("t", 8192, 2, 64)
	c.Insert(0x2000, Shared)
	ev := c.Insert(0x2000, Modified) // re-insert upgrades in place
	if ev.Valid {
		t.Error("re-insert must not evict")
	}
	if c.Probe(0x2000) != Modified {
		t.Error("state not upgraded")
	}
	if c.ResidentLines() != 1 {
		t.Errorf("resident = %d, want 1", c.ResidentLines())
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	c, _ := New("t", 8192, 2, 64) // 64 sets: addresses 64*64 apart collide
	setStride := uint64(64 * 64)
	a, b, d := uint64(0x0), setStride, 2*setStride
	c.Insert(a, Shared)
	c.Insert(b, Modified)
	c.Lookup(a) // refresh a: LRU is b
	ev := c.Insert(d, Shared)
	if !ev.Valid || ev.LineAddr != c.LineAddr(b) || ev.State != Modified {
		t.Fatalf("evicted %+v, want line %x Modified", ev, c.LineAddr(b))
	}
	if c.Probe(a) == Invalid || c.Probe(d) == Invalid {
		t.Error("survivors missing")
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c, _ := New("t", 8192, 2, 64)
	c.Insert(0x5000, Modified)
	c.SetState(0x5000, Shared)
	if c.Probe(0x5000) != Shared {
		t.Error("downgrade failed")
	}
	if st := c.Invalidate(0x5000); st != Shared {
		t.Errorf("Invalidate returned %v, want Shared", st)
	}
	if c.Probe(0x5000) != Invalid {
		t.Error("line survived invalidation")
	}
	if st := c.Invalidate(0x5000); st != Invalid {
		t.Error("double invalidate should report Invalid")
	}
	c.SetState(0x7777, Modified) // absent line: no-op, no panic
}

func TestVisitResident(t *testing.T) {
	c, _ := New("t", 8192, 2, 64)
	c.Insert(0x0, Shared)
	c.Insert(0x40, Modified)
	seen := map[uint64]State{}
	c.VisitResident(func(la uint64, st State) { seen[la] = st })
	if len(seen) != 2 || seen[0] != Shared || seen[1] != Modified {
		t.Errorf("VisitResident saw %v", seen)
	}
}

func TestMissRateAccounting(t *testing.T) {
	c, _ := New("t", 8192, 2, 64)
	c.RecordAccess(false, true)
	c.RecordAccess(false, false)
	c.RecordAccess(true, true)
	c.RecordAccess(true, false)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %f, want 0.5", got)
	}
	c.ResetStats()
	if c.MissRate() != 0 {
		t.Error("ResetStats did not clear")
	}
}

// Property: resident lines never exceed capacity, and a just-inserted line
// is always found, under random operation sequences.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		c, _ := New("t", 4096, 2, 64) // 64 lines capacity
		for i := 0; i < 500; i++ {
			addr := uint64(rng.IntN(256)) * 64
			switch rng.IntN(4) {
			case 0, 1:
				c.Insert(addr, State(rng.IntN(3)+1))
				if c.Probe(addr) == Invalid {
					return false
				}
			case 2:
				c.Lookup(addr)
			case 3:
				c.Invalidate(addr)
			}
			if c.ResidentLines() > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" ||
		Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("state names wrong")
	}
}

func TestBadGeometryErrors(t *testing.T) {
	if _, err := New("bad", 3*64, 1, 64); err == nil {
		t.Error("expected error for non-power-of-two sets")
	}
	if _, err := New("bad", 8192, 2, 48); err == nil {
		t.Error("expected error for non-power-of-two line size")
	}
	if _, err := New("bad", 8192, 0, 64); err == nil {
		t.Error("expected error for zero associativity")
	}
}
