// Package cache implements the cache structures of the simulated memory
// hierarchy: set-associative write-allocate write-back caches with MESI line
// states (L1 instruction, dual-ported L1 data, and a pipelined unified L2),
// miss status holding registers (MSHRs) that coalesce requests to the same
// line and bound the number of outstanding misses, and the instruction
// stream buffer evaluated in Section 4.1 of the paper.
package cache

import "fmt"

// State is a MESI line state.
type State uint8

const (
	// Invalid means the line is not present.
	Invalid State = iota
	// Shared means a read-only copy, possibly also cached elsewhere.
	Shared
	// Exclusive means the only cached copy, clean.
	Exclusive
	// Modified means the only cached copy, dirty.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

type line struct {
	tag   uint64 // full line address (paddr >> lineShift)
	stamp uint64
	state State
}

// Cache is one level of a cache hierarchy. It stores tags and MESI states
// only (the simulator is timing-only; data values live in the workload
// model). Not safe for concurrent use.
type Cache struct {
	name      string
	sets      int
	assoc     int
	lineShift uint
	lines     []line
	stamp     uint64

	// Statistics.
	Reads       uint64
	ReadMisses  uint64
	Writes      uint64
	WriteMisses uint64
}

// New builds a cache. sizeBytes/assoc/lineBytes must describe a power-of-two
// set count; name is used in error messages and dumps.
func New(name string, sizeBytes, assoc, lineBytes int) (*Cache, error) {
	if assoc <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache %s: invalid geometry (assoc %d, line %d)", name, assoc, lineBytes)
	}
	sets := sizeBytes / (assoc * lineBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", name, sets)
	}
	shift := uint(0)
	for 1<<shift != lineBytes {
		shift++
		if shift > 30 {
			return nil, fmt.Errorf("cache %s: line size %d not a power of two", name, lineBytes)
		}
	}
	return &Cache{
		name:      name,
		sets:      sets,
		assoc:     assoc,
		lineShift: shift,
		lines:     make([]line, sets*assoc),
	}, nil
}

// LineAddr returns the line address (tag) for a physical address.
func (c *Cache) LineAddr(paddr uint64) uint64 { return paddr >> c.lineShift }

// LineShift returns log2(line size).
func (c *Cache) LineShift() uint { return c.lineShift }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

func (c *Cache) setOf(lineAddr uint64) int { return int(lineAddr % uint64(c.sets)) }

// Lookup probes for the line containing paddr, updating LRU on a hit, and
// returns the line state (Invalid on miss).
func (c *Cache) Lookup(paddr uint64) State {
	la := c.LineAddr(paddr)
	base := c.setOf(la) * c.assoc
	for w := 0; w < c.assoc; w++ {
		l := &c.lines[base+w]
		if l.state != Invalid && l.tag == la {
			c.stamp++
			l.stamp = c.stamp
			return l.state
		}
	}
	return Invalid
}

// Probe is like Lookup but does not disturb LRU state.
func (c *Cache) Probe(paddr uint64) State {
	la := c.LineAddr(paddr)
	base := c.setOf(la) * c.assoc
	for w := 0; w < c.assoc; w++ {
		l := &c.lines[base+w]
		if l.state != Invalid && l.tag == la {
			return l.state
		}
	}
	return Invalid
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	LineAddr uint64
	State    State
	Valid    bool
}

// Insert places the line containing paddr in state st, returning any
// displaced victim (choosing an invalid way first, else true LRU). Inserting
// a line that is already present just updates its state and LRU position.
func (c *Cache) Insert(paddr uint64, st State) Eviction {
	la := c.LineAddr(paddr)
	base := c.setOf(la) * c.assoc
	c.stamp++
	victim := base
	for w := 0; w < c.assoc; w++ {
		l := &c.lines[base+w]
		if l.state != Invalid && l.tag == la {
			l.state = st
			l.stamp = c.stamp
			return Eviction{}
		}
		if l.state == Invalid {
			victim = base + w
		} else if c.lines[victim].state != Invalid && l.stamp < c.lines[victim].stamp {
			victim = base + w
		}
	}
	ev := Eviction{}
	v := &c.lines[victim]
	if v.state != Invalid {
		ev = Eviction{LineAddr: v.tag, State: v.state, Valid: true}
	}
	*v = line{tag: la, stamp: c.stamp, state: st}
	return ev
}

// SetState changes the state of a resident line (no-op if absent). Used for
// downgrades (M->S on sharing write-back) and upgrades (S->M).
func (c *Cache) SetState(paddr uint64, st State) {
	la := c.LineAddr(paddr)
	base := c.setOf(la) * c.assoc
	for w := 0; w < c.assoc; w++ {
		l := &c.lines[base+w]
		if l.state != Invalid && l.tag == la {
			if st == Invalid {
				l.state = Invalid
			} else {
				l.state = st
			}
			return
		}
	}
}

// Invalidate removes the line containing paddr, returning its prior state.
func (c *Cache) Invalidate(paddr uint64) State {
	la := c.LineAddr(paddr)
	base := c.setOf(la) * c.assoc
	for w := 0; w < c.assoc; w++ {
		l := &c.lines[base+w]
		if l.state != Invalid && l.tag == la {
			st := l.state
			l.state = Invalid
			return st
		}
	}
	return Invalid
}

// ResidentLines returns the number of valid lines (for tests/invariants).
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			n++
		}
	}
	return n
}

// VisitResident calls f for each valid line address and state.
func (c *Cache) VisitResident(f func(lineAddr uint64, st State)) {
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			f(c.lines[i].tag, c.lines[i].state)
		}
	}
}

// MissRate returns (read+write misses) / (read+write accesses).
func (c *Cache) MissRate() float64 {
	acc := c.Reads + c.Writes
	if acc == 0 {
		return 0
	}
	return float64(c.ReadMisses+c.WriteMisses) / float64(acc)
}

// RecordAccess updates hit/miss statistics for an access of the given kind.
func (c *Cache) RecordAccess(write, miss bool) {
	if write {
		c.Writes++
		if miss {
			c.WriteMisses++
		}
	} else {
		c.Reads++
		if miss {
			c.ReadMisses++
		}
	}
}
