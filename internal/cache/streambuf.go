package cache

import "fmt"

// StreamBuffer is the instruction stream buffer of Section 4.1: a small
// FIFO of prefetched cache lines sitting between the L1 instruction cache
// and the L2 (Jouppi 1990). On an L1I miss the buffer is probed; a hit pops
// the line (delivering it when its prefetch completes) and the buffer tops
// itself off by prefetching the next sequential line. A miss flushes the
// whole buffer and starts a new stream at the missing line + 1. Prefetched
// lines are not installed into the cache until used, avoiding pollution.

// FetchFunc issues a line fetch to the next level at cycle now and returns
// the completion cycle. It is provided by the memory system.
type FetchFunc func(lineAddr uint64, now uint64) (done uint64)

type sbEntry struct {
	lineAddr uint64
	avail    uint64 // prefetch completion cycle
	valid    bool
}

// StreamBuffer holds up to N sequential prefetched lines. Not safe for
// concurrent use.
type StreamBuffer struct {
	entries []sbEntry
	fetch   FetchFunc

	Hits     uint64
	Misses   uint64
	Issued   uint64 // prefetches sent to L2
	Useless  uint64 // prefetched lines flushed unused
	nextLine uint64
	active   bool
}

// NewStreamBuffer returns an n-entry stream buffer fetching through fetch.
// Returns (nil, nil) when n == 0 so callers can treat "no stream buffer"
// uniformly (all methods are nil-safe).
func NewStreamBuffer(n int, fetch FetchFunc) (*StreamBuffer, error) {
	if n == 0 {
		return nil, nil
	}
	if n < 0 {
		return nil, fmt.Errorf("cache: negative stream buffer size %d", n)
	}
	return &StreamBuffer{entries: make([]sbEntry, n), fetch: fetch}, nil
}

// Size returns the entry count (0 for a nil buffer).
func (b *StreamBuffer) Size() int {
	if b == nil {
		return 0
	}
	return len(b.entries)
}

// Lookup services an L1I miss on lineAddr at cycle now. If the line is in
// the buffer, it returns (avail, true) where avail is when the line can be
// delivered, pops entries up to and including the hit, and refills the
// stream. Otherwise it returns (0, false) after flushing and restarting the
// stream at lineAddr+1; the caller fetches the missing line itself.
func (b *StreamBuffer) Lookup(lineAddr uint64, now uint64) (avail uint64, ok bool) {
	if b == nil {
		return 0, false
	}
	hit := -1
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].lineAddr == lineAddr {
			hit = i
			break
		}
	}
	if hit < 0 {
		b.Misses++
		// Flush and re-stream: prefetch lineAddr+1 .. lineAddr+N.
		for i := range b.entries {
			if b.entries[i].valid {
				b.Useless++
			}
			b.entries[i].valid = false
		}
		b.nextLine = lineAddr + 1
		b.active = true
		b.topOff(now)
		return 0, false
	}
	b.Hits++
	avail = b.entries[hit].avail
	// Pop the hit and everything ahead of it (sequential stream discipline).
	for i := 0; i <= hit; i++ {
		if i < hit && b.entries[i].valid {
			b.Useless++
		}
		b.entries[i].valid = false
	}
	// Compact: shift remaining valid entries to the front.
	w := 0
	for i := hit + 1; i < len(b.entries); i++ {
		if b.entries[i].valid {
			b.entries[w] = b.entries[i]
			w++
		}
	}
	for i := w; i < len(b.entries); i++ {
		b.entries[i].valid = false
	}
	b.topOff(now)
	return avail, true
}

// topOff issues prefetches for free slots, continuing the current stream.
func (b *StreamBuffer) topOff(now uint64) {
	if !b.active {
		return
	}
	for i := range b.entries {
		if !b.entries[i].valid {
			done := b.fetch(b.nextLine, now)
			b.entries[i] = sbEntry{lineAddr: b.nextLine, avail: done, valid: true}
			b.nextLine++
			b.Issued++
		}
	}
}

// HitRate returns hits/(hits+misses) over L1I misses probed.
func (b *StreamBuffer) HitRate() float64 {
	if b == nil || b.Hits+b.Misses == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Hits+b.Misses)
}
