package cache

import "fmt"

// Checkpoint DTOs: the dynamic state of a cache, MSHR file, and stream
// buffer as exported structs the checkpoint payload can gob-encode.
// Geometry (set count, associativity, register count) is rebuilt from
// configuration by the constructors; Restore only refills the dynamic
// state and cross-checks the geometry it was captured under.

// LineState is one valid cache line in a CacheState.
type LineState struct {
	Way   int // index into the flat lines array (set*assoc+way)
	Tag   uint64
	Stamp uint64
	St    uint8
}

// CacheState is the dynamic state of a Cache. (The DTO is not named
// State because cache.State is the MESI line state.)
type CacheState struct {
	Sets, Assoc int // captured geometry, verified on restore
	Lines       []LineState
	Stamp       uint64
	Reads       uint64
	ReadMisses  uint64
	Writes      uint64
	WriteMisses uint64
}

// Snapshot captures the cache's dynamic state.
func (c *Cache) Snapshot() CacheState {
	s := CacheState{
		Sets:        c.sets,
		Assoc:       c.assoc,
		Stamp:       c.stamp,
		Reads:       c.Reads,
		ReadMisses:  c.ReadMisses,
		Writes:      c.Writes,
		WriteMisses: c.WriteMisses,
	}
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			s.Lines = append(s.Lines, LineState{
				Way:   i,
				Tag:   c.lines[i].tag,
				Stamp: c.lines[i].stamp,
				St:    uint8(c.lines[i].state),
			})
		}
	}
	return s
}

// Restore refills the cache from a snapshot taken on an identically
// configured cache.
func (c *Cache) Restore(s CacheState) error {
	if s.Sets != c.sets || s.Assoc != c.assoc {
		return fmt.Errorf("cache %s: snapshot geometry %dx%d != configured %dx%d",
			c.name, s.Sets, s.Assoc, c.sets, c.assoc)
	}
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for _, l := range s.Lines {
		if l.Way < 0 || l.Way >= len(c.lines) {
			return fmt.Errorf("cache %s: snapshot line way %d out of range", c.name, l.Way)
		}
		c.lines[l.Way] = line{tag: l.Tag, stamp: l.Stamp, state: State(l.St)}
	}
	c.stamp = s.Stamp
	c.Reads = s.Reads
	c.ReadMisses = s.ReadMisses
	c.Writes = s.Writes
	c.WriteMisses = s.WriteMisses
	return nil
}

// MSHRState is the dynamic state of an MSHRFile. Entries are raw (not
// settled/advanced at capture) so the restored file replays the exact
// event order the uninterrupted run would.
type MSHRState struct {
	Max         int
	Entries     []MSHR
	LastEvent   uint64
	OccTime     []uint64
	ReadOccTime []uint64
	Allocations uint64
	Coalesced   uint64
	FullStalls  uint64
}

// Snapshot captures the MSHR file's dynamic state.
func (f *MSHRFile) Snapshot() MSHRState {
	return MSHRState{
		Max:         f.max,
		Entries:     append([]MSHR(nil), f.entries...),
		LastEvent:   f.lastEvent,
		OccTime:     append([]uint64(nil), f.occTime...),
		ReadOccTime: append([]uint64(nil), f.readOccTime...),
		Allocations: f.Allocations,
		Coalesced:   f.Coalesced,
		FullStalls:  f.FullStalls,
	}
}

// Restore refills the MSHR file from a snapshot taken on a file with the
// same register count.
func (f *MSHRFile) Restore(s MSHRState) error {
	if s.Max != f.max {
		return fmt.Errorf("cache: MSHR snapshot has %d registers, configured %d", s.Max, f.max)
	}
	if len(s.Entries) > f.max || len(s.OccTime) != f.max+1 || len(s.ReadOccTime) != f.max+1 {
		return fmt.Errorf("cache: MSHR snapshot shape invalid (%d entries, %d/%d histogram bins)",
			len(s.Entries), len(s.OccTime), len(s.ReadOccTime))
	}
	f.entries = append(f.entries[:0], s.Entries...)
	f.lastEvent = s.LastEvent
	copy(f.occTime, s.OccTime)
	copy(f.readOccTime, s.ReadOccTime)
	f.Allocations = s.Allocations
	f.Coalesced = s.Coalesced
	f.FullStalls = s.FullStalls
	return nil
}

// SBEntryState is one stream-buffer slot.
type SBEntryState struct {
	LineAddr uint64
	Avail    uint64
	Valid    bool
}

// StreamBufState is the dynamic state of a StreamBuffer.
type StreamBufState struct {
	Entries  []SBEntryState
	Hits     uint64
	Misses   uint64
	Issued   uint64
	Useless  uint64
	NextLine uint64
	Active   bool
}

// Snapshot captures the stream buffer's dynamic state (zero value for a
// nil/disabled buffer).
func (b *StreamBuffer) Snapshot() StreamBufState {
	if b == nil {
		return StreamBufState{}
	}
	s := StreamBufState{
		Entries:  make([]SBEntryState, len(b.entries)),
		Hits:     b.Hits,
		Misses:   b.Misses,
		Issued:   b.Issued,
		Useless:  b.Useless,
		NextLine: b.nextLine,
		Active:   b.active,
	}
	for i, e := range b.entries {
		s.Entries[i] = SBEntryState{LineAddr: e.lineAddr, Avail: e.avail, Valid: e.valid}
	}
	return s
}

// Restore refills the stream buffer; the fetch closure stays as wired by
// the constructor. A nil buffer accepts only an empty snapshot.
func (b *StreamBuffer) Restore(s StreamBufState) error {
	if b == nil {
		if len(s.Entries) != 0 {
			return fmt.Errorf("cache: stream-buffer snapshot for a disabled buffer")
		}
		return nil
	}
	if len(s.Entries) != len(b.entries) {
		return fmt.Errorf("cache: stream-buffer snapshot has %d entries, configured %d",
			len(s.Entries), len(b.entries))
	}
	for i, e := range s.Entries {
		b.entries[i] = sbEntry{lineAddr: e.LineAddr, avail: e.Avail, valid: e.Valid}
	}
	b.Hits = s.Hits
	b.Misses = s.Misses
	b.Issued = s.Issued
	b.Useless = s.Useless
	b.nextLine = s.NextLine
	b.active = s.Active
	return nil
}
