package cache

import "testing"

// recordingFetch returns a FetchFunc that notes requested lines and
// completes them after a fixed latency.
func recordingFetch(latency uint64) (FetchFunc, *[]uint64) {
	var lines []uint64
	return func(lineAddr uint64, now uint64) uint64 {
		lines = append(lines, lineAddr)
		return now + latency
	}, &lines
}

func TestNilStreamBuffer(t *testing.T) {
	var b *StreamBuffer
	if b.Size() != 0 {
		t.Error("nil buffer size should be 0")
	}
	if _, ok := b.Lookup(5, 10); ok {
		t.Error("nil buffer must always miss")
	}
	b.ResetStats() // must not panic
	if sb, err := NewStreamBuffer(0, nil); sb != nil || err != nil {
		t.Error("zero entries should yield a nil buffer and no error")
	}
	if _, err := NewStreamBuffer(-1, nil); err == nil {
		t.Error("negative entries should be rejected")
	}
}

func TestStreamBufferStreamsSequentially(t *testing.T) {
	fetch, lines := recordingFetch(20)
	b, _ := NewStreamBuffer(4, fetch)
	// First miss on line 100 starts a stream at 101..104.
	if _, ok := b.Lookup(100, 0); ok {
		t.Fatal("cold lookup must miss")
	}
	if got := *lines; len(got) != 4 || got[0] != 101 || got[3] != 104 {
		t.Fatalf("stream prefetches = %v, want [101 102 103 104]", got)
	}
	// The subsequent sequential miss hits the buffer and tops it off.
	avail, ok := b.Lookup(101, 5)
	if !ok {
		t.Fatal("sequential line should hit the stream buffer")
	}
	if avail != 20 { // prefetch issued at cycle 0 with latency 20
		t.Errorf("avail = %d, want 20", avail)
	}
	if got := *lines; got[len(got)-1] != 105 {
		t.Errorf("top-off did not extend the stream: %v", got)
	}
	if b.Hits != 1 || b.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", b.Hits, b.Misses)
	}
}

func TestStreamBufferSkipAhead(t *testing.T) {
	fetch, _ := recordingFetch(10)
	b, _ := NewStreamBuffer(4, fetch)
	b.Lookup(200, 0) // stream 201..204
	// Skipping to 203 pops 201, 202 as useless.
	if _, ok := b.Lookup(203, 1); !ok {
		t.Fatal("line within stream should hit")
	}
	if b.Useless != 2 {
		t.Errorf("useless prefetches = %d, want 2", b.Useless)
	}
}

func TestStreamBufferFlushOnNonStreamMiss(t *testing.T) {
	fetch, lines := recordingFetch(10)
	b, _ := NewStreamBuffer(4, fetch)
	b.Lookup(300, 0) // stream 301..304
	*lines = nil
	// A miss outside the stream flushes and restarts.
	if _, ok := b.Lookup(900, 5); ok {
		t.Fatal("non-stream line must miss")
	}
	if got := *lines; len(got) != 4 || got[0] != 901 {
		t.Fatalf("restart prefetches = %v, want [901..904]", got)
	}
	if b.Useless != 4 {
		t.Errorf("flushed entries not counted useless: %d", b.Useless)
	}
	// The old stream is gone.
	if _, ok := b.Lookup(301, 6); ok {
		t.Error("old stream entry survived the flush")
	}
}

func TestStreamBufferHitRate(t *testing.T) {
	fetch, _ := recordingFetch(1)
	b, _ := NewStreamBuffer(2, fetch)
	b.Lookup(10, 0)
	b.Lookup(11, 1)
	b.Lookup(12, 2)
	if got := b.HitRate(); got < 0.6 || got > 0.7 {
		t.Errorf("hit rate = %f, want 2/3", got)
	}
	b.ResetStats()
	if b.HitRate() != 0 {
		t.Error("ResetStats did not clear")
	}
}
