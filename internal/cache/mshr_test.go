package cache

import (
	"testing"
)

func TestMSHRAllocateAndRetire(t *testing.T) {
	f, _ := NewMSHRFile(4)
	f.Allocate(MSHR{LineAddr: 1, Done: 100, Read: true}, 10)
	f.Allocate(MSHR{LineAddr: 2, Done: 50, Read: true}, 20)
	if f.InUse() != 2 {
		t.Fatalf("in use = %d", f.InUse())
	}
	if _, ok := f.Lookup(1); !ok {
		t.Error("outstanding miss not found")
	}
	f.Advance(60) // retires line 2
	if f.InUse() != 1 {
		t.Errorf("in use after advance = %d", f.InUse())
	}
	if _, ok := f.Lookup(2); ok {
		t.Error("retired entry still present")
	}
	f.Advance(200)
	if f.InUse() != 0 {
		t.Error("all entries should have retired")
	}
}

func TestMSHRFullAndNextFree(t *testing.T) {
	f, _ := NewMSHRFile(2)
	f.Allocate(MSHR{LineAddr: 1, Done: 100, Read: true}, 10)
	f.Allocate(MSHR{LineAddr: 2, Done: 130, Read: true}, 10)
	if !f.Full(20) {
		t.Fatal("file should be full")
	}
	if f.FullStalls != 1 {
		t.Errorf("full stalls = %d", f.FullStalls)
	}
	if got := f.NextFree(); got != 100 {
		t.Errorf("NextFree = %d, want 100", got)
	}
	if f.Full(100) {
		t.Error("file should have a free register at cycle 100")
	}
}

func TestMSHROccupancyHistogramExact(t *testing.T) {
	// Known timeline: entry A [10,110), entry B [30,60).
	// Occupancy: [10,30)=1, [30,60)=2, [60,110)=1.
	// Time at >=1: 100 cycles; at >=2: 30 cycles -> P(>=2) = 0.3.
	f, _ := NewMSHRFile(4)
	f.Allocate(MSHR{LineAddr: 1, Done: 110, Read: true}, 10)
	f.Allocate(MSHR{LineAddr: 2, Done: 60, Read: false}, 30)
	f.Advance(200)
	dist := f.OccupancyDist(false)
	if dist[1] != 1.0 {
		t.Errorf("P(>=1) = %f, want 1", dist[1])
	}
	if dist[2] != 0.3 {
		t.Errorf("P(>=2) = %f, want 0.3", dist[2])
	}
	// Read-only histogram: only A is a read; read occupancy is 1 for the
	// whole 100 cycles.
	rdist := f.OccupancyDist(true)
	if rdist[1] != 1.0 || rdist[2] != 0 {
		t.Errorf("read dist = %v", rdist)
	}
}

func TestMSHRCoalesceCounting(t *testing.T) {
	f, _ := NewMSHRFile(2)
	f.Allocate(MSHR{LineAddr: 7, Done: 100, Read: true}, 0)
	f.Coalesce(7)
	f.Coalesce(7)
	if f.Coalesced != 2 {
		t.Errorf("coalesced = %d", f.Coalesced)
	}
}

func TestMSHRResetKeepsEntries(t *testing.T) {
	f, _ := NewMSHRFile(2)
	f.Allocate(MSHR{LineAddr: 1, Done: 1000, Read: true}, 0)
	f.ResetStats(500)
	if f.Allocations != 0 {
		t.Error("allocations not reset")
	}
	if f.InUse() != 1 {
		t.Error("outstanding entry dropped by reset")
	}
	// Post-reset occupancy only counts [500, ...).
	f.Advance(1000)
	dist := f.OccupancyDist(false)
	if dist[1] != 1.0 {
		t.Errorf("post-reset dist = %v", dist)
	}
}

func TestMSHROverflowPanics(t *testing.T) {
	f, _ := NewMSHRFile(1)
	f.Allocate(MSHR{LineAddr: 1, Done: 10}, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on over-allocation")
		}
	}()
	f.Allocate(MSHR{LineAddr: 2, Done: 10}, 0)
}

func TestCombineOccupancy(t *testing.T) {
	// Two nodes: node 0 spent 10 cycles at occ 1; node 1 spent 10 at occ 2.
	a := []uint64{0, 10, 0}
	b := []uint64{0, 0, 10}
	dist := CombineOccupancy([][]uint64{a, b})
	if dist[1] != 1.0 {
		t.Errorf("P(>=1) = %f", dist[1])
	}
	if dist[2] != 0.5 {
		t.Errorf("P(>=2) = %f", dist[2])
	}
	if empty := CombineOccupancy([][]uint64{{0, 0}}); empty[1] != 0 {
		t.Error("empty histograms should give zero distribution")
	}
}
