package cache

import "fmt"

// Miss status holding registers (MSHRs, Kroft 1981). Each cache has a fixed
// number of MSHRs; a miss to a new line needs a free register, and further
// requests to the same line coalesce onto the existing entry. The file also
// accumulates the occupancy-time histograms plotted in Figures 2(d)-(g) and
// 3(d)-(g) of the paper: the fraction of "at least one miss outstanding"
// time during which at least n MSHRs are in use, for all misses and for read
// misses only.

// MSHR is one outstanding miss.
type MSHR struct {
	LineAddr uint64
	Done     uint64 // cycle at which the fill completes
	AllocAt  uint64 // cycle the register was allocated (diagnostics/tracing)
	Class    uint8  // service class recorded by the memory system
	Read     bool   // read miss (loads/ifetch) vs write/upgrade miss
	Write    bool   // an exclusive (GETX/upgrade) request is outstanding
}

// MSHRFile tracks outstanding misses for one cache. Not safe for concurrent
// use.
type MSHRFile struct {
	max     int
	entries []MSHR

	lastEvent uint64 // time up to which occupancy histograms are settled

	// occTime[n] = cycles spent with exactly n entries in use (n >= 1).
	// readOccTime counts only read entries (base: >= 1 read outstanding).
	occTime     []uint64
	readOccTime []uint64

	Allocations uint64
	Coalesced   uint64
	FullStalls  uint64 // requests that found the file full
}

// NewMSHRFile returns a file with max registers.
func NewMSHRFile(max int) (*MSHRFile, error) {
	if max <= 0 {
		return nil, fmt.Errorf("cache: MSHR file needs at least one register, got %d", max)
	}
	return &MSHRFile{
		max:         max,
		entries:     make([]MSHR, 0, max),
		occTime:     make([]uint64, max+1),
		readOccTime: make([]uint64, max+1),
	}, nil
}

// Max returns the register count.
func (f *MSHRFile) Max() int { return f.max }

// settle accrues occupancy time from lastEvent to t at the current counts.
func (f *MSHRFile) settle(t uint64) {
	if t <= f.lastEvent {
		return
	}
	dt := t - f.lastEvent
	n := len(f.entries)
	if n > 0 {
		f.occTime[n] += dt
	}
	r := 0
	for i := range f.entries {
		if f.entries[i].Read {
			r++
		}
	}
	if r > 0 {
		f.readOccTime[r] += dt
	}
	f.lastEvent = t
}

// Advance retires entries whose fills completed at or before now,
// accounting occupancy histograms in event order.
func (f *MSHRFile) Advance(now uint64) {
	for {
		min := -1
		for i := range f.entries {
			if f.entries[i].Done <= now && (min < 0 || f.entries[i].Done < f.entries[min].Done) {
				min = i
			}
		}
		if min < 0 {
			break
		}
		f.settle(f.entries[min].Done)
		f.entries[min] = f.entries[len(f.entries)-1]
		f.entries = f.entries[:len(f.entries)-1]
	}
	if len(f.entries) > 0 {
		f.settle(now)
	} else {
		f.lastEvent = now
	}
}

// Lookup returns the outstanding miss on lineAddr, if any.
func (f *MSHRFile) Lookup(lineAddr uint64) (m MSHR, ok bool) {
	for i := range f.entries {
		if f.entries[i].LineAddr == lineAddr {
			return f.entries[i], true
		}
	}
	return MSHR{}, false
}

// Coalesce records that a request merged with the outstanding miss on
// lineAddr.
func (f *MSHRFile) Coalesce(lineAddr uint64) { f.Coalesced++ }

// ClearWrite downgrades an outstanding entry on lineAddr: a coherence
// downgrade took the line's exclusivity away, so later writes must issue
// their own ownership request rather than coalesce.
func (f *MSHRFile) ClearWrite(lineAddr uint64) {
	for i := range f.entries {
		if f.entries[i].LineAddr == lineAddr {
			f.entries[i].Write = false
		}
	}
}

// Remove drops an outstanding entry whose line was invalidated by
// coherence: subsequent requests must re-fetch. (The occupancy histogram
// loses at most the interval since the last event — invalidation of an
// in-flight fill is rare.)
func (f *MSHRFile) Remove(lineAddr uint64) {
	for i := range f.entries {
		if f.entries[i].LineAddr == lineAddr {
			f.entries[i] = f.entries[len(f.entries)-1]
			f.entries = f.entries[:len(f.entries)-1]
			return
		}
	}
}

// Full reports whether no register is free at now (after retiring done
// entries).
func (f *MSHRFile) Full(now uint64) bool {
	f.Advance(now)
	if len(f.entries) < f.max {
		return false
	}
	f.FullStalls++
	return true
}

// NextFree returns the earliest cycle at which a register frees up. Only
// meaningful when the file is full.
func (f *MSHRFile) NextFree() uint64 {
	var min uint64
	for i := range f.entries {
		if i == 0 || f.entries[i].Done < min {
			min = f.entries[i].Done
		}
	}
	return min
}

// Allocate reserves a register for a miss on lineAddr completing at done.
// The caller must ensure the file is not full.
func (f *MSHRFile) Allocate(m MSHR, now uint64) {
	f.settle(now)
	if len(f.entries) >= f.max {
		panic("cache: MSHR allocate on full file")
	}
	m.AllocAt = now
	f.entries = append(f.entries, m)
	f.Allocations++
}

// InUse returns the current number of allocated registers.
func (f *MSHRFile) InUse() int { return len(f.entries) }

// Entries returns a copy of the outstanding misses (diagnostics).
func (f *MSHRFile) Entries() []MSHR { return append([]MSHR(nil), f.entries...) }

// OccupancyDist returns, for n in [1..max], the fraction of miss-outstanding
// time with at least n MSHRs in use. reads selects the read-only histogram.
func (f *MSHRFile) OccupancyDist(reads bool) []float64 {
	src := f.occTime
	if reads {
		src = f.readOccTime
	}
	var total uint64
	for n := 1; n <= f.max; n++ {
		total += src[n]
	}
	out := make([]float64, f.max+1)
	if total == 0 {
		return out
	}
	var cum uint64
	for n := f.max; n >= 1; n-- {
		cum += src[n]
		out[n] = float64(cum) / float64(total)
	}
	return out
}
