package cache

// ResetStats zeroes the access counters (cache contents are kept); used to
// discard warm-up transients, as the paper does.
func (c *Cache) ResetStats() {
	c.Reads, c.ReadMisses, c.Writes, c.WriteMisses = 0, 0, 0, 0
}

// ResetStats settles and zeroes the occupancy histograms and counters,
// keeping outstanding entries.
func (f *MSHRFile) ResetStats(now uint64) {
	f.settle(now)
	for i := range f.occTime {
		f.occTime[i] = 0
		f.readOccTime[i] = 0
	}
	f.lastEvent = now
	f.Allocations, f.Coalesced, f.FullStalls = 0, 0, 0
}

// RawOccupancy returns the raw cycles-at-exact-occupancy histograms (all
// misses, read misses), for aggregation across nodes.
func (f *MSHRFile) RawOccupancy() (all, reads []uint64) {
	return f.occTime, f.readOccTime
}

// CombineOccupancy merges raw histograms (as from RawOccupancy across
// nodes) into a ">= n" distribution like OccupancyDist.
func CombineOccupancy(raws [][]uint64) []float64 {
	max := 0
	for _, r := range raws {
		if len(r)-1 > max {
			max = len(r) - 1
		}
	}
	sum := make([]uint64, max+1)
	var total uint64
	for _, r := range raws {
		for n := 1; n < len(r); n++ {
			sum[n] += r[n]
			total += r[n]
		}
	}
	out := make([]float64, max+1)
	if total == 0 {
		return out
	}
	var cum uint64
	for n := max; n >= 1; n-- {
		cum += sum[n]
		out[n] = float64(cum) / float64(total)
	}
	return out
}

// ResetStats zeroes the stream buffer counters.
func (b *StreamBuffer) ResetStats() {
	if b == nil {
		return
	}
	b.Hits, b.Misses, b.Issued, b.Useless = 0, 0, 0, 0
}
