package memsys

import "repro/internal/cache"

// Prefetch issues a non-binding prefetch of vaddr (exclusive requests
// ownership, for stores). Prefetches never stall: if the line is already
// present or being fetched, or no MSHR is free, the prefetch is dropped.
// Both the hardware prefetch-from-the-instruction-window mechanism
// (Section 3.4) and the software prefetch hints (Section 4.2) use this.
func (h *Hierarchy) Prefetch(vaddr, pc uint64, now uint64, exclusive, inCS bool) {
	paddr, home := h.sys.pt.Translate(vaddr, h.node)
	st := h.l1d.Probe(paddr)
	if st != cache.Invalid {
		if !exclusive || st == cache.Modified {
			return
		}
		if l2st := h.l2.Probe(paddr); l2st == cache.Modified || l2st == cache.Exclusive {
			return // silently upgradeable locally; nothing to prefetch
		}
	}
	la := h.l1d.LineAddr(paddr)
	if _, ok := h.l1dMSHR.Lookup(la); ok {
		return
	}
	if h.l1dMSHR.Full(now) {
		h.PrefetchesDropped++
		return
	}
	done, class, _ := h.l2Access(paddr, home, now, exclusive, pc, inCS)
	h.l1dMSHR.Allocate(cache.MSHR{
		LineAddr: la, Done: done, Class: uint8(class),
		Read: !exclusive, Write: exclusive,
	}, now)
	grant := cache.Shared
	if exclusive {
		grant = cache.Modified
	}
	h.handleL1DEviction(h.l1d.Insert(paddr, grant))
	h.PrefetchesIssued++
}

// Flush services the software flush / "WriteThrough" hint of Section 4.2:
// if this node holds the line dirty, its data is pushed back to the home
// memory so that subsequent read misses are serviced by memory instead of a
// (slower) cache-to-cache transfer. Per the paper's finding, the flushing
// cache keeps a clean copy when cfg.FlushKeepsClean is set. The operation
// is off the critical path (fire and forget).
func (h *Hierarchy) Flush(vaddr uint64, now uint64) {
	s := h.sys
	paddr, home := s.pt.Translate(vaddr, h.node)
	la := h.l2.LineAddr(paddr)
	if h.l1d.Probe(paddr) == cache.Modified {
		h.l1d.SetState(paddr, cache.Shared)
		h.l2.SetState(paddr, cache.Modified)
	}
	if h.l2.Probe(paddr) != cache.Modified {
		return
	}
	keep := s.cfg.FlushKeepsClean
	if !s.dir.Flush(h.node, la, keep) {
		return
	}
	// Sharing write-back: data travels to the home memory.
	t := acquireAt(&s.busReqBusy[h.node], now, busOccupancy) + uint64(s.cfg.BusCycles)
	t = s.send(h.node, home, s.cfg.DataFlits, t)
	t += s.faults.MemStall()
	bank := la % uint64(s.cfg.MemBanks)
	acquireAt(&s.bankBusy[home][bank], t, uint64(s.cfg.MemoryCycles))
	if keep {
		h.l2.SetState(paddr, cache.Shared)
		if h.l1d.Probe(paddr) != cache.Invalid {
			h.l1d.SetState(paddr, cache.Shared)
		}
	} else {
		h.l2.Invalidate(paddr)
		h.l1d.Invalidate(paddr)
	}
	h.FlushesIssued++
	s.checkCoherence(la)
}
