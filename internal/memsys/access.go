package memsys

import (
	"repro/internal/cache"
	"repro/internal/coherence"
)

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// acquireAt reserves a single unit (bus, directory, memory bank) from t for
// occ cycles and returns the start time.
func acquireAt(busy *uint64, t, occ uint64) uint64 {
	if *busy > t {
		t = *busy
	}
	*busy = t + occ
	return t
}

// busOccupancy is the cycles a request holds the split-transaction bus.
const busOccupancy = 4

// translate maps vaddr through the page table and the appropriate TLB,
// reporting a TLB miss (perfect TLBs never miss).
func (h *Hierarchy) translate(vaddr uint64, instr bool) (paddr uint64, home int, miss bool) {
	paddr, home = h.sys.pt.Translate(vaddr, h.node)
	t, perfect := h.dtlb, h.sys.cfg.PerfectDTLB
	if instr {
		t, perfect = h.itlb, h.sys.cfg.PerfectITLB
	}
	if perfect {
		return paddr, home, false
	}
	vpn := h.sys.pt.VPN(vaddr)
	return paddr, home, !t.Lookup(vpn)
}

// DataRead services a load issued at cycle now by the instruction at pc.
func (h *Hierarchy) DataRead(vaddr, pc uint64, now uint64, inCS bool) Result {
	paddr, home, tlbMiss := h.translate(vaddr, false)
	t := now
	if tlbMiss {
		t += uint64(h.sys.cfg.TLBMissCost)
	}
	t = acquire(h.l1dPorts, t, 1)
	hitT := t + uint64(h.sys.cfg.L1D.HitCycles)
	la := h.l1d.LineAddr(paddr)
	// An outstanding fill takes precedence over the (eagerly updated) tag
	// array: the data arrives when the miss completes.
	h.l1dMSHR.Advance(now)
	if m, ok := h.l1dMSHR.Lookup(la); ok {
		h.l1dMSHR.Coalesce(la)
		h.l1d.RecordAccess(false, false)
		return Result{Done: maxU(m.Done, hitT), LineAddr: la, Class: Class(m.Class), TLBMiss: tlbMiss}
	}
	if h.l1d.Lookup(paddr) != cache.Invalid {
		h.l1d.RecordAccess(false, false)
		return Result{Done: hitT, LineAddr: la, Class: ClassL1, TLBMiss: tlbMiss}
	}
	h.l1d.RecordAccess(false, true)
	for h.l1dMSHR.Full(hitT) {
		hitT = h.l1dMSHR.NextFree()
	}
	if h.trc != nil {
		h.trc.BeginMiss(h.node, pc, now, false, inCS)
		h.trc.MissMSHR(hitT)
	}
	done, class, mig := h.l2Access(paddr, home, hitT, false, pc, inCS)
	if h.trc != nil {
		// Events carry the virtual line-aligned address (physical pages are
		// first-touch allocated, so only virtual addresses name db regions).
		h.trc.EndMiss(h.traceLine(vaddr), done, uint8(class), mig, tlbMiss)
	}
	h.l1dMSHR.Allocate(cache.MSHR{LineAddr: la, Done: done, Class: uint8(class), Read: true}, hitT)
	h.handleL1DEviction(h.l1d.Insert(paddr, cache.Shared))
	return Result{Done: done, LineAddr: la, Class: class, TLBMiss: tlbMiss, Migratory: mig}
}

// DataWrite services a store issued at cycle now by the instruction at pc.
// Under relaxed models the processor does not wait for Done; the MSHR and
// write buffer occupancy provide the back-pressure.
func (h *Hierarchy) DataWrite(vaddr, pc uint64, now uint64, inCS bool) Result {
	paddr, home, tlbMiss := h.translate(vaddr, false)
	t := now
	if tlbMiss {
		t += uint64(h.sys.cfg.TLBMissCost)
	}
	t = acquire(h.l1dPorts, t, 1)
	hitT := t + uint64(h.sys.cfg.L1D.HitCycles)
	la := h.l1d.LineAddr(paddr)
	h.l1dMSHR.Advance(now)
	if m, ok := h.l1dMSHR.Lookup(la); ok {
		h.l1dMSHR.Coalesce(la)
		h.l1d.RecordAccess(true, false)
		if m.Write {
			h.l1d.Insert(paddr, cache.Modified)
			return Result{Done: maxU(m.Done, hitT), LineAddr: la, Class: Class(m.Class), TLBMiss: tlbMiss}
		}
		// A read fill is outstanding; the exclusive request chains after
		// it through the L2 (likely an upgrade by then).
		if h.trc != nil {
			h.trc.BeginMiss(h.node, pc, now, true, inCS)
			h.trc.MissMSHR(maxU(hitT, m.Done))
		}
		done, class, mig := h.l2Access(paddr, home, maxU(hitT, m.Done), true, pc, inCS)
		if h.trc != nil {
			h.trc.EndMiss(h.traceLine(vaddr), done, uint8(class), mig, tlbMiss)
		}
		h.l1d.Insert(paddr, cache.Modified)
		return Result{Done: done, LineAddr: la, Class: class, TLBMiss: tlbMiss, Migratory: mig}
	}
	l1st := h.l1d.Lookup(paddr)
	if l1st == cache.Modified {
		h.l1d.RecordAccess(true, false)
		return Result{Done: hitT, LineAddr: la, Class: ClassL1, TLBMiss: tlbMiss}
	}
	if l1st != cache.Invalid {
		// Line present read-only in L1; writable if this node owns it.
		if l2st := h.l2.Probe(paddr); l2st == cache.Modified || l2st == cache.Exclusive {
			h.l1d.SetState(paddr, cache.Modified)
			h.l2.SetState(paddr, cache.Modified)
			h.l1d.RecordAccess(true, false)
			return Result{Done: hitT, LineAddr: la, Class: ClassL1, TLBMiss: tlbMiss}
		}
	}
	h.l1d.RecordAccess(true, true)
	for h.l1dMSHR.Full(hitT) {
		hitT = h.l1dMSHR.NextFree()
	}
	if h.trc != nil {
		h.trc.BeginMiss(h.node, pc, now, true, inCS)
		h.trc.MissMSHR(hitT)
	}
	done, class, mig := h.l2Access(paddr, home, hitT, true, pc, inCS)
	if h.trc != nil {
		h.trc.EndMiss(h.traceLine(vaddr), done, uint8(class), mig, tlbMiss)
	}
	h.l1dMSHR.Allocate(cache.MSHR{LineAddr: la, Done: done, Class: uint8(class), Write: true}, hitT)
	h.handleL1DEviction(h.l1d.Insert(paddr, cache.Modified))
	return Result{Done: done, LineAddr: la, Class: class, TLBMiss: tlbMiss, Migratory: mig}
}

// traceLine aligns a virtual address to the coherence (L2 line)
// granularity for event tagging.
func (h *Hierarchy) traceLine(vaddr uint64) uint64 {
	return vaddr >> h.l2.LineShift() << h.l2.LineShift()
}

// handleL1DEviction folds a dirty L1D victim back into the (inclusive) L2
// and notifies the processor that the line left the L1 (replacements of
// speculatively loaded lines must trigger rollback, like invalidations).
func (h *Hierarchy) handleL1DEviction(ev cache.Eviction) {
	if !ev.Valid {
		return
	}
	if ev.State == cache.Modified {
		h.l2.SetState(ev.LineAddr<<h.l2.LineShift(), cache.Modified)
	}
	if h.invalHook != nil {
		h.invalHook(ev.LineAddr, true)
	}
}

// l2Access runs an access that missed (or needs ownership) in the L1s
// through the L2 and, if necessary, the directory protocol.
func (h *Hierarchy) l2Access(paddr uint64, home int, now uint64, write bool, pc uint64, inCS bool) (done uint64, class Class, mig bool) {
	cfg := &h.sys.cfg
	t := acquire(h.l2Ports, now, 1)
	hitT := t + uint64(cfg.L2.HitCycles)
	la := h.l2.LineAddr(paddr)

	// An outstanding L2 fill takes precedence over the eagerly updated
	// tags: a second miss to the line merges with the fill in flight.
	h.l2MSHR.Advance(now)
	if m, ok := h.l2MSHR.Lookup(la); ok {
		h.l2MSHR.Coalesce(la)
		if !write || m.Write {
			h.l2.RecordAccess(write, false)
			return maxU(m.Done, hitT), Class(m.Class), false
		}
		// A write merging with an outstanding read fill: upgrade after it.
		h.l2.RecordAccess(write, true)
		for h.l2MSHR.Full(maxU(hitT, m.Done)) {
			hitT = h.l2MSHR.NextFree()
		}
		done, class, _, mig := h.dirTransaction(la, home, maxU(hitT, m.Done), true, pc, inCS)
		h.l2MSHR.Allocate(cache.MSHR{LineAddr: la, Done: done, Class: uint8(class), Write: true}, maxU(hitT, m.Done))
		h.l2.SetState(paddr, cache.Modified)
		h.sys.checkCoherence(la)
		return done, class, mig
	}

	st := h.l2.Lookup(paddr)
	if st != cache.Invalid {
		if !write || st == cache.Modified || st == cache.Exclusive {
			if write {
				h.l2.SetState(paddr, cache.Modified)
			}
			h.l2.RecordAccess(write, false)
			return hitT, ClassL2, false
		}
		// Write to a Shared line: ownership upgrade through the directory.
		h.l2.RecordAccess(write, true)
		for h.l2MSHR.Full(hitT) {
			hitT = h.l2MSHR.NextFree()
		}
		done, class, _, mig = h.dirTransaction(la, home, hitT, true, pc, inCS)
		h.l2MSHR.Allocate(cache.MSHR{LineAddr: la, Done: done, Class: uint8(class), Write: true}, hitT)
		h.l2.SetState(paddr, cache.Modified)
		h.sys.checkCoherence(la)
		return done, class, mig
	}

	h.l2.RecordAccess(write, true)
	for h.l2MSHR.Full(hitT) {
		hitT = h.l2MSHR.NextFree()
	}
	var grant cache.State
	done, class, grant, mig = h.dirTransaction(la, home, hitT, write, pc, inCS)
	h.l2MSHR.Allocate(cache.MSHR{LineAddr: la, Done: done, Class: uint8(class), Read: !write, Write: write}, hitT)
	h.handleL2Eviction(h.l2.Insert(paddr, grant), done)
	h.sys.checkCoherence(la)
	return done, class, mig
}

// handleL2Eviction enforces inclusion (dropping the line from the L1s) and
// writes dirty victims back to their home memory.
func (h *Hierarchy) handleL2Eviction(ev cache.Eviction, now uint64) {
	if !ev.Valid {
		return
	}
	s := h.sys
	paddr := ev.LineAddr << h.l2.LineShift()
	h.l1d.Invalidate(paddr)
	h.l1i.Invalidate(paddr)
	if h.invalHook != nil {
		h.invalHook(ev.LineAddr, true)
	}
	home, ok := s.pt.HomeOfPhys(paddr)
	if !ok {
		home = h.node
	}
	if ev.State == cache.Modified {
		s.dir.Writeback(h.node, ev.LineAddr)
		if h.trc != nil {
			h.trc.Writeback(h.node, ev.LineAddr<<h.l2.LineShift(), now)
		}
		// Fire-and-forget write-back: occupy bus, network, and bank.
		t := acquireAt(&s.busReqBusy[h.node], now, busOccupancy) + uint64(s.cfg.BusCycles)
		t = s.send(h.node, home, s.cfg.DataFlits, t)
		t += s.faults.MemStall()
		bank := ev.LineAddr % uint64(s.cfg.MemBanks)
		acquireAt(&s.bankBusy[home][bank], t, uint64(s.cfg.MemoryCycles))
	} else {
		s.dir.EvictClean(h.node, ev.LineAddr)
	}
	s.checkCoherence(ev.LineAddr)
}

// dirTransaction performs the coherence transaction for lineAddr at its
// home directory and returns the completion time, service class, granted
// MESI state, and whether the line is migratory.
func (h *Hierarchy) dirTransaction(lineAddr uint64, home int, now uint64, write bool, pc uint64, inCS bool) (done uint64, class Class, grant cache.State, mig bool) {
	s := h.sys
	cfg := &s.cfg
	reqStart := now

	// Out over the node bus, across the network, into the home directory.
	t := acquireAt(&s.busReqBusy[h.node], now, busOccupancy) + uint64(cfg.BusCycles)
	t = s.send(h.node, home, cfg.CtrlFlits, t)
	reqQueue := s.net.LastQueued()
	t = acquireAt(&s.dirBusy[home], t, uint64(cfg.DirCycles)) + uint64(cfg.DirCycles)

	// Injected directory NACKs: the home bounces the request, the requester
	// backs off and retries, bounded so the transaction always completes.
	// Timing-only — protocol state is untouched until the request is
	// accepted, so retired-instruction counts match a fault-free run.
	retries := 0
	for attempt := 0; s.faults.NACK(attempt); attempt++ {
		t = s.send(home, h.node, cfg.CtrlFlits, t)
		t += s.faults.Backoff(attempt)
		t = s.send(h.node, home, cfg.CtrlFlits, t)
		t = acquireAt(&s.dirBusy[home], t, uint64(cfg.DirCycles)) + uint64(cfg.DirCycles)
		retries++
	}
	dirAt := t

	if !write {
		res := s.dir.Read(h.node, lineAddr)
		if h.trc != nil {
			h.trc.MissDir(home, dirAt, s.net.Hops(h.node, home), retries, res.Sharers, reqQueue)
		}
		mig = res.Migratory
		if res.Downgrade >= 0 {
			// A clean-Exclusive holder folds to Shared so any later write
			// there goes back through the directory.
			s.nodes[res.Downgrade].downgrade(lineAddr)
		}
		switch res.Source {
		case coherence.SrcOwnerCache:
			owner := s.nodes[res.Owner]
			t = s.send(home, res.Owner, cfg.CtrlFlits, t)
			ot := acquire(owner.l2Ports, t, 1)
			t = ot + uint64(cfg.L2.HitCycles) + uint64(cfg.InterventionCycles)
			if h.trc != nil {
				h.trc.MissSource(t, res.Owner)
			}
			grant = cache.Shared
			if res.MigratoryTransfer {
				// Adaptive migratory protocol: ownership moves with the
				// data; the old owner's copy is invalidated.
				owner.applyInvalidation(lineAddr)
				grant = cache.Modified
			} else {
				owner.downgrade(lineAddr)
			}
			t = s.send(res.Owner, h.node, cfg.DataFlits, t)
			t = acquireAt(&s.busRespBusy[h.node], t, busOccupancy) + uint64(cfg.BusCycles)
			class = ClassRemoteDirty
			if mig {
				s.classifier.RecordRead(lineAddr, pc, inCS)
				if cfg.MigratoryBound {
					// Figure 7(b) bound: migratory reads serviced ~40%
					// faster, reflecting service by memory.
					t = reqStart + (t-reqStart)*3/5
				}
			}
		default: // SrcMemory (SrcNone cannot occur on an L2 read miss)
			t += s.faults.MemStall()
			bank := lineAddr % uint64(cfg.MemBanks)
			mt := acquireAt(&s.bankBusy[home][bank], t, uint64(cfg.MemoryCycles))
			t = mt + uint64(cfg.MemoryCycles)
			if h.trc != nil {
				h.trc.MissSource(t, -1)
			}
			t = s.send(home, h.node, cfg.DataFlits, t)
			t = acquireAt(&s.busRespBusy[h.node], t, busOccupancy) + uint64(cfg.BusCycles)
			if home == h.node {
				class = ClassLocal
			} else {
				class = ClassRemote
			}
			grant = cache.Shared
			if res.Exclusive {
				grant = cache.Exclusive
			}
		}
		return t, class, grant, mig
	}

	res := s.dir.Write(h.node, lineAddr)
	if h.trc != nil {
		h.trc.MissDir(home, dirAt, s.net.Hops(h.node, home), retries, res.Sharers, reqQueue)
	}
	mig = res.Migratory
	grant = cache.Modified
	if res.WasShared && res.Migratory {
		s.classifier.RecordWrite(lineAddr, pc, inCS)
	}

	// Invalidations fan out from the home in parallel; the reply waits for
	// the last acknowledgement.
	ackT := t
	for _, k := range res.Invalidates {
		if k == res.Owner && res.Source == coherence.SrcOwnerCache {
			continue // ownership transfer handles the owner below
		}
		it := s.send(home, k, cfg.CtrlFlits, t)
		s.nodes[k].applyInvalidation(lineAddr)
		at := s.send(k, home, cfg.CtrlFlits, it+2)
		if at > ackT {
			ackT = at
		}
	}

	switch res.Source {
	case coherence.SrcNone:
		// Upgrade: no data transfer; acknowledge after invalidations.
		t = s.send(home, h.node, cfg.CtrlFlits, ackT)
		t = acquireAt(&s.busRespBusy[h.node], t, busOccupancy) + uint64(cfg.BusCycles)
		if home == h.node {
			class = ClassLocal
		} else {
			class = ClassRemote
		}
	case coherence.SrcOwnerCache:
		owner := s.nodes[res.Owner]
		ft := s.send(home, res.Owner, cfg.CtrlFlits, t)
		ot := acquire(owner.l2Ports, ft, 1)
		dt := ot + uint64(cfg.L2.HitCycles) + uint64(cfg.InterventionCycles)
		if h.trc != nil {
			h.trc.MissSource(dt, res.Owner)
		}
		owner.applyInvalidation(lineAddr)
		t = s.send(res.Owner, h.node, cfg.DataFlits, maxU(dt, ackT))
		t = acquireAt(&s.busRespBusy[h.node], t, busOccupancy) + uint64(cfg.BusCycles)
		class = ClassRemoteDirty
	default: // SrcMemory
		t += s.faults.MemStall()
		bank := lineAddr % uint64(cfg.MemBanks)
		mt := acquireAt(&s.bankBusy[home][bank], t, uint64(cfg.MemoryCycles))
		dataReady := mt + uint64(cfg.MemoryCycles)
		if h.trc != nil {
			h.trc.MissSource(dataReady, -1)
		}
		t = s.send(home, h.node, cfg.DataFlits, maxU(dataReady, ackT))
		t = acquireAt(&s.busRespBusy[h.node], t, busOccupancy) + uint64(cfg.BusCycles)
		if home == h.node {
			class = ClassLocal
		} else {
			class = ClassRemote
		}
	}
	return t, class, grant, mig
}
