// Package memsys assembles the simulated memory system: per-node cache
// hierarchies (L1I with optional stream buffer, dual-ported L1D, pipelined
// unified L2, MSHRs at both levels, I/D TLBs), the split-transaction node
// bus, the full-map MESI directory distributed across home nodes, the
// wormhole mesh, and interleaved memory banks.
//
// Timing model: the simulator is cycle-stepped at the processors and
// latency/contention based in the memory system. When a request reaches a
// component it acquires that component (ports, bus, directory, banks, links
// all keep busy-until times), so queueing emerges under load, and the
// contentionless latencies compose to the Figure 1 targets (~100 local,
// ~160-180 remote, ~280-310 cache-to-cache). Coherence state is updated
// eagerly at request time; processors are stepped in lockstep so cross-node
// skew is bounded by one cycle.
package memsys

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/tlb"
	"repro/internal/tracing"
)

// Class says where an access was serviced; it maps onto the read-stall
// subcategories of the paper's figures.
type Class uint8

const (
	// ClassL1 is a first-level cache hit.
	ClassL1 Class = iota
	// ClassL2 is an L2 hit (or a merge with an outstanding L2 fill).
	ClassL2
	// ClassLocal was serviced by local memory.
	ClassLocal
	// ClassRemote was serviced by remote memory.
	ClassRemote
	// ClassRemoteDirty was serviced by a cache-to-cache transfer.
	ClassRemoteDirty
)

func (c Class) String() string {
	switch c {
	case ClassL1:
		return "L1"
	case ClassL2:
		return "L2"
	case ClassLocal:
		return "local"
	case ClassRemote:
		return "remote"
	case ClassRemoteDirty:
		return "dirty"
	}
	return "?"
}

// Result describes one serviced access.
type Result struct {
	Done      uint64 // cycle the data is available to the processor
	LineAddr  uint64 // physical line address (for violation tracking)
	Class     Class
	TLBMiss   bool
	Migratory bool // the touched line is classified migratory
	SBHit     bool // instruction fetch satisfied by the stream buffer
}

// InvalidationHook is called when a line is invalidated from or replaced in
// a node's hierarchy; the processor uses it to detect speculative-load
// ordering violations (Section 3.4) and to abort hardware transactions
// whose read/write set loses a line. eviction distinguishes a local
// capacity/associativity replacement (the node displaced its own line)
// from a coherence invalidation caused by another node's access.
type InvalidationHook func(lineAddr uint64, eviction bool)

// System is the machine-wide memory system.
type System struct {
	cfg        config.Config
	pt         *tlb.PageTable
	dir        *coherence.Directory
	classifier *coherence.Classifier
	net        *mesh.Mesh
	nodes      []*Hierarchy
	faults     *fault.Injector // nil unless cfg.Faults.Enabled

	// The split-transaction bus carries requests and replies on separate
	// tracks; modelling both directions with one busy-until scalar would
	// let a reply booked in the future block the next request.
	busReqBusy  []uint64   // per node, outgoing requests
	busRespBusy []uint64   // per node, incoming data/acks
	dirBusy     []uint64   // per node
	bankBusy    [][]uint64 // per node, per bank
}

// New builds the memory system for cfg, validating the configuration and
// every component geometry derived from it.
func New(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("memsys: %w", err)
	}
	pt, err := tlb.NewPageTable(cfg.PageBytes)
	if err != nil {
		return nil, fmt.Errorf("memsys: %w", err)
	}
	net, err := mesh.New(cfg.Nodes, cfg.HopCycles, cfg.FlitCycles)
	if err != nil {
		return nil, fmt.Errorf("memsys: %w", err)
	}
	s := &System{
		cfg:         cfg,
		pt:          pt,
		dir:         coherence.NewDirectory(),
		classifier:  coherence.NewClassifier(),
		net:         net,
		faults:      fault.New(cfg.Faults),
		busReqBusy:  make([]uint64, cfg.Nodes),
		busRespBusy: make([]uint64, cfg.Nodes),
		dirBusy:     make([]uint64, cfg.Nodes),
		bankBusy:    make([][]uint64, cfg.Nodes),
	}
	s.dir.MigratoryOpt = cfg.MigratoryProtocol
	// The directory learns about silent E->M upgrades by probing the
	// grantee's L2 on the next conflicting request.
	s.dir.SetProbe(func(node int, lineAddr uint64) bool {
		h := s.nodes[node]
		return h.l2.Probe(lineAddr<<h.l2.LineShift()) == cache.Modified
	})
	for n := 0; n < cfg.Nodes; n++ {
		s.bankBusy[n] = make([]uint64, cfg.MemBanks)
		h, err := newHierarchy(s, n)
		if err != nil {
			return nil, fmt.Errorf("memsys: node %d: %w", n, err)
		}
		s.nodes = append(s.nodes, h)
	}
	return s, nil
}

// MustNew is New for contexts (tests, examples) where the configuration is
// known good; it panics on error.
func MustNew(cfg config.Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Node returns node n's hierarchy.
func (s *System) Node(n int) *Hierarchy { return s.nodes[n] }

// Faults returns the fault injector (nil when injection is disabled; a nil
// injector is safe to call and injects nothing).
func (s *System) Faults() *fault.Injector { return s.faults }

// send carries a message across the mesh, adding any injected delay. All
// protocol traffic goes through here so the fault injector perturbs every
// message class uniformly.
func (s *System) send(src, dst, flits int, t uint64) uint64 {
	return s.net.Send(src, dst, flits, t) + s.faults.MeshDelay()
}

// checkCoherence verifies protocol invariants for one line after a
// transaction's state updates have fully applied (cfg.DebugChecks): the
// directory's own bookkeeping (CheckLine), no stale dirty copy — a Modified
// L2 line is either the recorded owner or an unresolved Exclusive grantee —
// every cached copy is on the sharer list, and L1D/L2 inclusion. Violations
// panic; core.Machine.Run recovers them into a diagnostic error.
func (s *System) checkCoherence(lineAddr uint64) {
	if !s.cfg.DebugChecks {
		return
	}
	if err := s.dir.CheckLine(lineAddr, s.cfg.Nodes); err != nil {
		panic(err)
	}
	owner := s.dir.OwnerOf(lineAddr)
	excl := s.dir.ExclusiveOf(lineAddr)
	for n, h := range s.nodes {
		paddr := lineAddr << h.l2.LineShift()
		st := h.l2.Probe(paddr)
		if st == cache.Modified && n != owner && n != excl {
			panic(fmt.Sprintf("coherence: line %#x is Modified in node %d's L2 but the directory records owner %d (stale dirty copy)",
				lineAddr, n, owner))
		}
		if st != cache.Invalid && !s.dir.IsSharer(n, lineAddr) {
			panic(fmt.Sprintf("coherence: line %#x cached %v by node %d but absent from the directory's sharer list",
				lineAddr, st, n))
		}
		// L1D/L2 inclusion (the L1I is exempt: stream-buffer fills install
		// into the L1I without re-checking the L2).
		if l1 := h.l1d.Probe(paddr); l1 != cache.Invalid && st == cache.Invalid {
			panic(fmt.Sprintf("coherence: line %#x in node %d's L1D (%v) violates inclusion (L2 invalid)",
				lineAddr, n, l1))
		}
	}
}

// Directory returns the machine's directory.
func (s *System) Directory() *coherence.Directory { return s.dir }

// Classifier returns the migratory-access classifier.
func (s *System) Classifier() *coherence.Classifier { return s.classifier }

// Net returns the interconnect.
func (s *System) Net() *mesh.Mesh { return s.net }

// PageTable returns the machine-wide page table.
func (s *System) PageTable() *tlb.PageTable { return s.pt }

// Config returns the machine configuration.
func (s *System) Config() config.Config { return s.cfg }

// Finalize settles lazily accumulated statistics (MSHR occupancy) at end.
func (s *System) Finalize(now uint64) {
	for _, h := range s.nodes {
		h.l1dMSHR.Advance(now)
		h.l1iMSHR.Advance(now)
		h.l2MSHR.Advance(now)
	}
}

// acquire picks the earliest-free unit in busy, waits if needed, occupies
// it for occ cycles, and returns the start time.
func acquire(busy []uint64, t, occ uint64) uint64 {
	best := 0
	for i := 1; i < len(busy); i++ {
		if busy[i] < busy[best] {
			best = i
		}
	}
	if busy[best] > t {
		t = busy[best]
	}
	busy[best] = t + occ
	return t
}

// Hierarchy is one node's private memory hierarchy.
type Hierarchy struct {
	sys  *System
	node int

	l1i *cache.Cache
	l1d *cache.Cache
	l2  *cache.Cache

	l1iMSHR *cache.MSHRFile
	l1dMSHR *cache.MSHRFile
	l2MSHR  *cache.MSHRFile

	itlb *tlb.TLB
	dtlb *tlb.TLB

	sbuf *cache.StreamBuffer

	l1dPorts []uint64
	l1iPorts []uint64
	l2Ports  []uint64

	invalHook InvalidationHook
	trc       *tracing.Tracer // nil = tracing disabled (pure-observer hooks)

	// Statistics beyond the per-cache counters.
	IFetchSBHits      uint64 // L1I misses satisfied by the stream buffer
	PrefetchesIssued  uint64
	PrefetchesDropped uint64
	FlushesIssued     uint64
}

func newHierarchy(s *System, node int) (*Hierarchy, error) {
	cfg := s.cfg
	h := &Hierarchy{
		sys:      s,
		node:     node,
		l1dPorts: make([]uint64, cfg.L1D.Ports),
		l1iPorts: make([]uint64, cfg.L1I.Ports),
		l2Ports:  make([]uint64, cfg.L2.Ports),
	}
	var err error
	if h.l1i, err = cache.New("L1I", cfg.L1I.SizeBytes, cfg.L1I.Assoc, cfg.L1I.LineBytes); err != nil {
		return nil, err
	}
	if h.l1d, err = cache.New("L1D", cfg.L1D.SizeBytes, cfg.L1D.Assoc, cfg.L1D.LineBytes); err != nil {
		return nil, err
	}
	if h.l2, err = cache.New("L2", cfg.L2.SizeBytes, cfg.L2.Assoc, cfg.L2.LineBytes); err != nil {
		return nil, err
	}
	if h.l1iMSHR, err = cache.NewMSHRFile(cfg.L1I.MSHRs); err != nil {
		return nil, err
	}
	if h.l1dMSHR, err = cache.NewMSHRFile(cfg.L1D.MSHRs); err != nil {
		return nil, err
	}
	if h.l2MSHR, err = cache.NewMSHRFile(cfg.L2.MSHRs); err != nil {
		return nil, err
	}
	if h.itlb, err = tlb.New(cfg.ITLBEntries); err != nil {
		return nil, err
	}
	if h.dtlb, err = tlb.New(cfg.DTLBEntries); err != nil {
		return nil, err
	}
	h.sbuf, err = cache.NewStreamBuffer(cfg.StreamBufEntries, func(lineAddr uint64, now uint64) uint64 {
		// Stream-buffer prefetches go to the L2 (and beyond on L2 misses)
		// but do not install into the L1; the buffer holds the line.
		paddr := lineAddr << h.l2.LineShift()
		home, ok := s.pt.HomeOfPhys(paddr)
		if !ok {
			home = node // unmapped speculative stream; service locally
		}
		done, _, _ := h.l2Access(paddr, home, now, false, 0, false)
		return done
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Node returns this hierarchy's node id.
func (h *Hierarchy) Node() int { return h.node }

// L1I returns the instruction cache (for tests and reports).
func (h *Hierarchy) L1I() *cache.Cache { return h.l1i }

// L1D returns the data cache.
func (h *Hierarchy) L1D() *cache.Cache { return h.l1d }

// L2 returns the unified second-level cache.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// L1DMSHRs returns the L1D miss file.
func (h *Hierarchy) L1DMSHRs() *cache.MSHRFile { return h.l1dMSHR }

// L1IMSHRs returns the L1I miss file.
func (h *Hierarchy) L1IMSHRs() *cache.MSHRFile { return h.l1iMSHR }

// L2MSHRs returns the L2 miss file.
func (h *Hierarchy) L2MSHRs() *cache.MSHRFile { return h.l2MSHR }

// ITLB returns the instruction TLB.
func (h *Hierarchy) ITLB() *tlb.TLB { return h.itlb }

// DTLB returns the data TLB.
func (h *Hierarchy) DTLB() *tlb.TLB { return h.dtlb }

// StreamBuffer returns the instruction stream buffer (nil when disabled).
func (h *Hierarchy) StreamBuffer() *cache.StreamBuffer { return h.sbuf }

// SetTracer attaches (or with nil detaches) the event tracer. The tracer
// is a pure observer of the access paths: it never changes timing.
func (h *Hierarchy) SetTracer(t *tracing.Tracer) { h.trc = t }

// SetInvalidationHook registers the processor's violation detector.
func (h *Hierarchy) SetInvalidationHook(f InvalidationHook) { h.invalHook = f }

// FlushTLBs invalidates both TLBs (context switch).
func (h *Hierarchy) FlushTLBs() {
	h.itlb.Flush()
	h.dtlb.Flush()
}

// applyInvalidation removes the line from every level of this node —
// including any in-flight fill recorded in the MSHRs — and notifies the
// processor (coherence-initiated).
func (h *Hierarchy) applyInvalidation(lineAddr uint64) {
	paddr := lineAddr << h.l2.LineShift()
	h.l2.Invalidate(paddr)
	h.l1d.Invalidate(paddr)
	h.l1i.Invalidate(paddr)
	h.l1dMSHR.Remove(lineAddr)
	h.l1iMSHR.Remove(lineAddr)
	h.l2MSHR.Remove(lineAddr)
	if h.invalHook != nil {
		h.invalHook(lineAddr, false)
	}
}

// downgrade moves the line to Shared in every level (dirty read forward);
// any in-flight exclusive fill loses its ownership claim.
func (h *Hierarchy) downgrade(lineAddr uint64) {
	paddr := lineAddr << h.l2.LineShift()
	if h.l2.Probe(paddr) != cache.Invalid {
		h.l2.SetState(paddr, cache.Shared)
	}
	if h.l1d.Probe(paddr) != cache.Invalid {
		h.l1d.SetState(paddr, cache.Shared)
	}
	h.l1dMSHR.ClearWrite(lineAddr)
	h.l2MSHR.ClearWrite(lineAddr)
}
