package memsys

import "repro/internal/cache"

// IFetch services an instruction-cache line fetch for the instruction at
// vaddr. The fetch engine calls this once per line it crosses, not per
// instruction.
func (h *Hierarchy) IFetch(vaddr uint64, now uint64) Result {
	paddr, home, tlbMiss := h.translate(vaddr, true)
	t := now
	if tlbMiss {
		t += uint64(h.sys.cfg.TLBMissCost)
	}
	if h.sys.cfg.PerfectICache {
		return Result{Done: t + uint64(h.sys.cfg.L1I.HitCycles), Class: ClassL1, TLBMiss: tlbMiss}
	}
	t = acquire(h.l1iPorts, t, 1)
	hitT := t + uint64(h.sys.cfg.L1I.HitCycles)
	la := h.l1i.LineAddr(paddr)
	h.l1iMSHR.Advance(now)
	if m, ok := h.l1iMSHR.Lookup(la); ok {
		h.l1iMSHR.Coalesce(la)
		h.l1i.RecordAccess(false, false)
		return Result{Done: maxU(m.Done, hitT), LineAddr: la, Class: Class(m.Class), TLBMiss: tlbMiss}
	}
	if h.l1i.Lookup(paddr) != cache.Invalid {
		h.l1i.RecordAccess(false, false)
		return Result{Done: hitT, LineAddr: la, Class: ClassL1, TLBMiss: tlbMiss}
	}
	h.l1i.RecordAccess(false, true)
	if avail, ok := h.sbuf.Lookup(la, hitT); ok {
		// Stream buffer hit: the line transfers from the buffer into the
		// L1I when its prefetch completes.
		h.IFetchSBHits++
		done := maxU(avail, hitT) + 1
		if !h.l1iMSHR.Full(hitT) {
			h.l1iMSHR.Allocate(cache.MSHR{LineAddr: la, Done: done, Class: uint8(ClassL2), Read: true}, hitT)
		}
		h.l1i.Insert(paddr, cache.Shared)
		return Result{Done: done, Class: ClassL2, TLBMiss: tlbMiss, SBHit: true}
	}
	for h.l1iMSHR.Full(hitT) {
		hitT = h.l1iMSHR.NextFree()
	}
	done, class, _ := h.l2Access(paddr, home, hitT, false, vaddr, false)
	h.l1iMSHR.Allocate(cache.MSHR{LineAddr: la, Done: done, Class: uint8(class), Read: true}, hitT)
	h.l1i.Insert(paddr, cache.Shared)
	return Result{Done: done, Class: class, TLBMiss: tlbMiss}
}

// EffectiveIMisses returns L1I misses not satisfied by the stream buffer
// (the paper reports the stream buffer's miss-rate reduction this way).
func (h *Hierarchy) EffectiveIMisses() uint64 {
	return h.l1i.ReadMisses - h.IFetchSBHits
}

// PrefetchInstr issues a non-binding instruction-line prefetch (used by the
// BTB-directed prefetcher of Section 4.1's discussion). Dropped when the
// line is already present, being fetched, or no MSHR is free.
func (h *Hierarchy) PrefetchInstr(vaddr uint64, now uint64) {
	paddr, home := h.sys.pt.Translate(vaddr, h.node)
	if h.l1i.Probe(paddr) != cache.Invalid {
		return
	}
	la := h.l1i.LineAddr(paddr)
	h.l1iMSHR.Advance(now)
	if _, ok := h.l1iMSHR.Lookup(la); ok {
		return
	}
	if h.l1iMSHR.Full(now) {
		h.PrefetchesDropped++
		return
	}
	done, class, _ := h.l2Access(paddr, home, now, false, vaddr, false)
	h.l1iMSHR.Allocate(cache.MSHR{LineAddr: la, Done: done, Class: uint8(class), Read: true}, now)
	h.l1i.Insert(paddr, cache.Shared)
	h.PrefetchesIssued++
}
