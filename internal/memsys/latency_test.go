package memsys

import (
	"testing"

	"repro/internal/config"
)

// TestContentionlessLatencies verifies the Figure 1 latency targets:
// local read ~100, remote read ~160-180, cache-to-cache ~280-310 cycles.
func TestContentionlessLatencies(t *testing.T) {
	cfg := config.Default()
	cfg.PerfectDTLB = true // measure the pure memory path
	s := MustNew(cfg)

	// Local read: node 0 touches a fresh page (homed at node 0).
	res := s.Node(0).DataRead(0x100000, 1, 1000, false)
	local := res.Done - 1000
	if res.Class != ClassLocal {
		t.Fatalf("class = %v, want local", res.Class)
	}
	if local < 85 || local > 115 {
		t.Errorf("local read latency = %d, want ~100", local)
	}

	// Remote read: node 1 reads a page homed at node 0.
	res = s.Node(1).DataRead(0x200000, 1, 2000, false)
	if res.Class != ClassLocal {
		t.Fatalf("setup: expected local fill, got %v", res.Class)
	}
	res = s.Node(1).DataRead(0x100000, 1, 3000, false)
	remote := res.Done - 3000
	if res.Class != ClassRemote {
		t.Fatalf("class = %v, want remote", res.Class)
	}
	if remote < 140 || remote > 200 {
		t.Errorf("remote read latency = %d, want 160-180", remote)
	}

	// Cache-to-cache: node 2 writes a line (dirty), node 3 reads it.
	s.Node(2).DataWrite(0x300000, 1, 4000, false)
	res = s.Node(3).DataRead(0x300000, 1, 5000, false)
	dirty := res.Done - 5000
	if res.Class != ClassRemoteDirty {
		t.Fatalf("class = %v, want dirty", res.Class)
	}
	if dirty < 250 || dirty > 340 {
		t.Errorf("cache-to-cache latency = %d, want 280-310", dirty)
	}
	t.Logf("local=%d remote=%d dirty=%d", local, remote, dirty)
}

// TestOverlappedReads checks that independent misses to distinct lines
// overlap up to the MSHR limit rather than serializing.
func TestOverlappedReads(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	s := MustNew(cfg)
	h := s.Node(0)
	// Warm the page table so homing is settled.
	h.DataRead(0x500000, 1, 1, false)

	start := uint64(10000)
	var last uint64
	n := 8
	for i := 0; i < n; i++ {
		res := h.DataRead(0x600000+uint64(i)*64, 1, start+uint64(i), false)
		if res.Done > last {
			last = res.Done
		}
	}
	span := last - start
	// 8 misses at ~100 cycles each would serialize to ~800; overlapped
	// behind 4 banks they should finish in well under half that.
	if span > 450 {
		t.Errorf("8 independent misses span %d cycles; expected overlap", span)
	}
	t.Logf("8 overlapped misses span %d cycles", span)
}
