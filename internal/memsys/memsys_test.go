package memsys

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
)

func TestCoalescingSameLine(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.PerfectDTLB = true
	s := MustNew(cfg)
	h := s.Node(0)
	r1 := h.DataRead(0x100000, 1, 1000, false)
	r2 := h.DataRead(0x100008, 2, 1001, false) // same line: coalesces
	if r2.Done > r1.Done {
		t.Errorf("coalesced request (%d) finished after the miss (%d)", r2.Done, r1.Done)
	}
	if h.L1DMSHRs().Allocations != 1 {
		t.Errorf("allocations = %d, want 1", h.L1DMSHRs().Allocations)
	}
	if h.L1DMSHRs().Coalesced != 1 {
		t.Errorf("coalesced = %d, want 1", h.L1DMSHRs().Coalesced)
	}
}

func TestHitAfterFill(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.PerfectDTLB = true
	s := MustNew(cfg)
	h := s.Node(0)
	r := h.DataRead(0x200000, 1, 100, false)
	r2 := h.DataRead(0x200000, 1, r.Done+10, false)
	if r2.Class != ClassL1 {
		t.Errorf("second access class = %v, want L1 hit", r2.Class)
	}
	if r2.Done-(r.Done+10) > 2 {
		t.Errorf("L1 hit took %d cycles", r2.Done-(r.Done+10))
	}
}

func TestTLBMissPenalty(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	s := MustNew(cfg)
	h := s.Node(0)
	r1 := h.DataRead(0x300000, 1, 1000, false)
	if !r1.TLBMiss {
		t.Error("first touch should miss the dTLB")
	}
	// Same page, different line: TLB hits now.
	r2 := h.DataRead(0x300100, 1, 5000, false)
	if r2.TLBMiss {
		t.Error("same-page access should hit the dTLB")
	}
}

func TestWriteGrantsModified(t *testing.T) {
	cfg := config.Default()
	cfg.PerfectDTLB = true
	s := MustNew(cfg)
	h := s.Node(0)
	h.DataWrite(0x400000, 1, 100, false)
	if pa, _ := s.PageTable().Translate(0x400000, 0); h.L1D().Probe(pa) != cache.Modified {
		t.Errorf("L1D state = %v, want M", h.L1D().Probe(pa))
	}
	paddr, _ := s.PageTable().Translate(0x400000, 0)
	if st := h.L2().Probe(paddr); st != cache.Modified {
		t.Errorf("L2 state = %v, want M", st)
	}
	if s.Directory().OwnerOf(h.L2().LineAddr(paddr)) != 0 {
		t.Error("directory does not record node 0 as owner")
	}
}

func TestReadAfterRemoteWriteIsDirtyAndDowngrades(t *testing.T) {
	cfg := config.Default()
	cfg.PerfectDTLB = true
	s := MustNew(cfg)
	s.Node(1).DataWrite(0x500000, 1, 100, false)
	r := s.Node(2).DataRead(0x500000, 1, 1000, false)
	if r.Class != ClassRemoteDirty {
		t.Fatalf("class = %v, want dirty", r.Class)
	}
	if pa, _ := s.PageTable().Translate(0x500000, 0); s.Node(1).L2().Probe(pa) != cache.Shared {
		t.Errorf("owner L2 state after forward = %v, want S", s.Node(1).L2().Probe(pa))
	}
	// A third reader is now serviced by memory (the line was written back).
	r2 := s.Node(3).DataRead(0x500000, 1, 5000, false)
	if r2.Class == ClassRemoteDirty {
		t.Error("line should have been clean at memory after the sharing write-back")
	}
}

func TestInvalidationHookFiresOnRemoteWrite(t *testing.T) {
	cfg := config.Default()
	cfg.PerfectDTLB = true
	s := MustNew(cfg)
	var invalidated []uint64
	s.Node(0).SetInvalidationHook(func(la uint64, _ bool) { invalidated = append(invalidated, la) })
	r0 := s.Node(0).DataRead(0x600000, 1, 100, false)
	s.Node(1).DataWrite(0x600000, 1, 1000, false)
	want := r0.LineAddr // physical line address
	found := false
	for _, la := range invalidated {
		if la == want {
			found = true
		}
	}
	if !found {
		t.Errorf("invalidation hook did not fire for line %x (got %v)", want, invalidated)
	}
	if st := s.Node(0).L1D().Probe(want << s.Node(0).L1D().LineShift()); st != cache.Invalid {
		t.Error("remote write did not invalidate the sharer's L1D")
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.PerfectDTLB = true
	s := MustNew(cfg)
	h := s.Node(0)
	h.Prefetch(0x700000, 1, 100, false, false)
	if h.PrefetchesIssued != 1 {
		t.Fatalf("prefetches issued = %d", h.PrefetchesIssued)
	}
	paddr, _ := s.PageTable().Translate(0x700000, 0)
	m, ok := h.L1DMSHRs().Lookup(h.L1D().LineAddr(paddr))
	if !ok {
		t.Fatal("prefetch did not allocate an MSHR")
	}
	r := h.DataRead(0x700000, 1, m.Done+5, false)
	if r.Class != ClassL1 {
		t.Errorf("post-prefetch read class = %v, want L1", r.Class)
	}
	// A prefetch to a present line is a no-op.
	h.Prefetch(0x700000, 1, m.Done+10, false, false)
	if h.PrefetchesIssued != 1 {
		t.Error("redundant prefetch was issued")
	}
}

func TestPrefetchDroppedWhenMSHRsFull(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.PerfectDTLB = true
	cfg.L1D.MSHRs = 1
	s := MustNew(cfg)
	h := s.Node(0)
	h.DataRead(0x800000, 1, 100, false) // occupies the only MSHR
	h.Prefetch(0x800100, 1, 101, false, false)
	if h.PrefetchesDropped != 1 {
		t.Errorf("dropped = %d, want 1", h.PrefetchesDropped)
	}
}

func TestFlushConvertsDirtyToMemoryService(t *testing.T) {
	cfg := config.Default()
	cfg.PerfectDTLB = true
	s := MustNew(cfg)
	s.Node(0).DataWrite(0x900000, 1, 100, false)
	s.Node(0).Flush(0x900000, 500)
	if s.Node(0).FlushesIssued != 1 {
		t.Fatal("flush not issued")
	}
	// The flusher keeps a clean copy (FlushKeepsClean default).
	if pa, _ := s.PageTable().Translate(0x900000, 0); s.Node(0).L2().Probe(pa) != cache.Shared {
		t.Errorf("flusher L2 state = %v, want S", s.Node(0).L2().Probe(pa))
	}
	r := s.Node(1).DataRead(0x900000, 1, 5000, false)
	if r.Class == ClassRemoteDirty {
		t.Error("read after flush still serviced cache-to-cache")
	}
	// Flushing a clean line is a no-op.
	s.Node(1).Flush(0x900000, 6000)
	if s.Node(1).FlushesIssued != 0 {
		t.Error("flush of clean line counted")
	}
}

func TestL2InclusionOnEviction(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.PerfectDTLB = true
	// Tiny L2 to force evictions quickly; L1 smaller to stay legal.
	cfg.L1D = config.CacheConfig{SizeBytes: 8 << 10, Assoc: 2, LineBytes: 64, HitCycles: 1, Ports: 2, MSHRs: 8}
	cfg.L1I = cfg.L1D
	cfg.L2 = config.CacheConfig{SizeBytes: 16 << 10, Assoc: 1, LineBytes: 64, HitCycles: 20, Ports: 1, MSHRs: 8}
	s := MustNew(cfg)
	h := s.Node(0)
	now := uint64(100)
	// Two addresses mapping to the same (direct-mapped) L2 set.
	a, b := uint64(0x10000), uint64(0x10000+16<<10)
	r := h.DataRead(a, 1, now, false)
	now = r.Done + 10
	r = h.DataRead(b, 1, now, false) // evicts a from L2
	if h.L2().Probe(a) != cache.Invalid {
		t.Skip("different physical mapping; inclusion not exercised")
	}
	if h.L1D().Probe(a) != cache.Invalid {
		t.Error("L1D retains a line the L2 evicted (inclusion violated)")
	}
}

func TestIFetchStreamBuffer(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.StreamBufEntries = 4
	s := MustNew(cfg)
	h := s.Node(0)
	now := uint64(1000)
	// Sequential line fetches: the first misses and starts the stream;
	// subsequent ones hit the buffer.
	r := h.IFetch(0x10000, now)
	if r.SBHit {
		t.Error("cold fetch cannot hit the stream buffer")
	}
	r2 := h.IFetch(0x10040, r.Done+5)
	if !r2.SBHit {
		t.Error("sequential fetch should hit the stream buffer")
	}
	if h.IFetchSBHits != 1 {
		t.Errorf("SB hits = %d", h.IFetchSBHits)
	}
	if h.EffectiveIMisses() != h.L1I().ReadMisses-1 {
		t.Error("effective miss accounting wrong")
	}
}

func TestPerfectICache(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.PerfectICache = true
	cfg.PerfectITLB = true
	s := MustNew(cfg)
	r := s.Node(0).IFetch(0x77777000, 50)
	if r.Done != 51 || r.TLBMiss {
		t.Errorf("perfect icache fetch: done=%d tlbMiss=%v", r.Done, r.TLBMiss)
	}
}

func TestResetStatsKeepsState(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	s := MustNew(cfg)
	h := s.Node(0)
	r := h.DataRead(0xA00000, 1, 100, false)
	s.ResetStats(r.Done + 1)
	if h.L1D().Reads != 0 {
		t.Error("counters not reset")
	}
	r2 := h.DataRead(0xA00000, 1, r.Done+10, false)
	if r2.Class != ClassL1 {
		t.Error("ResetStats dropped cache contents")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassL1: "L1", ClassL2: "L2", ClassLocal: "local",
		ClassRemote: "remote", ClassRemoteDirty: "dirty",
	} {
		if c.String() != want {
			t.Errorf("Class(%d) = %q, want %q", c, c.String(), want)
		}
	}
}

func TestPrefetchInstrWarmsL1I(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.PerfectITLB = true
	s := MustNew(cfg)
	h := s.Node(0)
	h.PrefetchInstr(0x1_0000, 100)
	if h.PrefetchesIssued != 1 {
		t.Fatalf("issued = %d", h.PrefetchesIssued)
	}
	paddr, _ := s.PageTable().Translate(0x1_0000, 0)
	m, ok := h.l1iMSHR.Lookup(h.L1I().LineAddr(paddr))
	if !ok {
		t.Fatal("no MSHR allocated for instruction prefetch")
	}
	r := h.IFetch(0x1_0000, m.Done+5)
	if r.Class != ClassL1 {
		t.Errorf("post-prefetch fetch class = %v", r.Class)
	}
	// Redundant prefetch is dropped.
	h.PrefetchInstr(0x1_0000, m.Done+10)
	if h.PrefetchesIssued != 1 {
		t.Error("redundant instruction prefetch issued")
	}
}
