package memsys

// ResetStats discards all accumulated statistics (cache/directory state is
// kept) so that warm-up transients can be excluded, as in the paper.
func (s *System) ResetStats(now uint64) {
	s.dir.ResetStats()
	s.classifier.Reset()
	s.net.ResetStats()
	for _, h := range s.nodes {
		h.l1i.ResetStats()
		h.l1d.ResetStats()
		h.l2.ResetStats()
		h.l1iMSHR.ResetStats(now)
		h.l1dMSHR.ResetStats(now)
		h.l2MSHR.ResetStats(now)
		h.itlb.ResetStats()
		h.dtlb.ResetStats()
		h.sbuf.ResetStats()
		h.IFetchSBHits = 0
		h.PrefetchesIssued = 0
		h.PrefetchesDropped = 0
		h.FlushesIssued = 0
	}
}
