package memsys

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/tlb"
)

// Checkpoint DTOs for the memory system. Wiring (the directory probe,
// the stream-buffer fetch closure, invalidation hooks, tracers) is
// re-created by New/SetInvalidationHook on rebuild; only busy-until
// times, cache/TLB/MSHR/directory contents and counters are dynamic.

// HierarchyState is one node's dynamic hierarchy state.
type HierarchyState struct {
	L1I     cache.CacheState
	L1D     cache.CacheState
	L2      cache.CacheState
	L1IMSHR cache.MSHRState
	L1DMSHR cache.MSHRState
	L2MSHR  cache.MSHRState
	ITLB    tlb.TLBState
	DTLB    tlb.TLBState
	SBuf    cache.StreamBufState

	L1DPorts []uint64
	L1IPorts []uint64
	L2Ports  []uint64

	IFetchSBHits      uint64
	PrefetchesIssued  uint64
	PrefetchesDropped uint64
	FlushesIssued     uint64
}

// SystemState is the machine-wide memory-system state.
type SystemState struct {
	PageTable  tlb.PageTableState
	Directory  coherence.DirectoryState
	Classifier coherence.ClassifierState
	Net        mesh.MeshState
	Faults     fault.InjectorState
	Nodes      []HierarchyState

	BusReqBusy  []uint64
	BusRespBusy []uint64
	DirBusy     []uint64
	BankBusy    [][]uint64
}

// Snapshot captures the memory system's dynamic state.
func (s *System) Snapshot() SystemState {
	st := SystemState{
		PageTable:   s.pt.Snapshot(),
		Directory:   s.dir.Snapshot(),
		Classifier:  s.classifier.Snapshot(),
		Net:         s.net.Snapshot(),
		Faults:      s.faults.Snapshot(),
		BusReqBusy:  append([]uint64(nil), s.busReqBusy...),
		BusRespBusy: append([]uint64(nil), s.busRespBusy...),
		DirBusy:     append([]uint64(nil), s.dirBusy...),
		BankBusy:    make([][]uint64, len(s.bankBusy)),
	}
	for n, banks := range s.bankBusy {
		st.BankBusy[n] = append([]uint64(nil), banks...)
	}
	for _, h := range s.nodes {
		st.Nodes = append(st.Nodes, HierarchyState{
			L1I:               h.l1i.Snapshot(),
			L1D:               h.l1d.Snapshot(),
			L2:                h.l2.Snapshot(),
			L1IMSHR:           h.l1iMSHR.Snapshot(),
			L1DMSHR:           h.l1dMSHR.Snapshot(),
			L2MSHR:            h.l2MSHR.Snapshot(),
			ITLB:              h.itlb.Snapshot(),
			DTLB:              h.dtlb.Snapshot(),
			SBuf:              h.sbuf.Snapshot(),
			L1DPorts:          append([]uint64(nil), h.l1dPorts...),
			L1IPorts:          append([]uint64(nil), h.l1iPorts...),
			L2Ports:           append([]uint64(nil), h.l2Ports...),
			IFetchSBHits:      h.IFetchSBHits,
			PrefetchesIssued:  h.PrefetchesIssued,
			PrefetchesDropped: h.PrefetchesDropped,
			FlushesIssued:     h.FlushesIssued,
		})
	}
	return st
}

// Restore refills the memory system from a snapshot taken under the same
// configuration.
func (s *System) Restore(st SystemState) error {
	if len(st.Nodes) != len(s.nodes) {
		return fmt.Errorf("memsys: snapshot has %d nodes, configured %d", len(st.Nodes), len(s.nodes))
	}
	if len(st.BusReqBusy) != len(s.busReqBusy) || len(st.BusRespBusy) != len(s.busRespBusy) ||
		len(st.DirBusy) != len(s.dirBusy) || len(st.BankBusy) != len(s.bankBusy) {
		return fmt.Errorf("memsys: snapshot bus/bank shape does not match configuration")
	}
	if err := s.pt.Restore(st.PageTable); err != nil {
		return err
	}
	s.dir.Restore(st.Directory)
	s.classifier.Restore(st.Classifier)
	if err := s.net.Restore(st.Net); err != nil {
		return err
	}
	if (s.faults == nil) != !st.Faults.Enabled {
		return fmt.Errorf("memsys: snapshot fault-injection enablement does not match configuration")
	}
	s.faults.Restore(st.Faults)
	copy(s.busReqBusy, st.BusReqBusy)
	copy(s.busRespBusy, st.BusRespBusy)
	copy(s.dirBusy, st.DirBusy)
	for n := range s.bankBusy {
		if len(st.BankBusy[n]) != len(s.bankBusy[n]) {
			return fmt.Errorf("memsys: snapshot node %d has %d banks, configured %d",
				n, len(st.BankBusy[n]), len(s.bankBusy[n]))
		}
		copy(s.bankBusy[n], st.BankBusy[n])
	}
	for n, h := range s.nodes {
		hs := &st.Nodes[n]
		if err := h.l1i.Restore(hs.L1I); err != nil {
			return err
		}
		if err := h.l1d.Restore(hs.L1D); err != nil {
			return err
		}
		if err := h.l2.Restore(hs.L2); err != nil {
			return err
		}
		if err := h.l1iMSHR.Restore(hs.L1IMSHR); err != nil {
			return err
		}
		if err := h.l1dMSHR.Restore(hs.L1DMSHR); err != nil {
			return err
		}
		if err := h.l2MSHR.Restore(hs.L2MSHR); err != nil {
			return err
		}
		if err := h.itlb.Restore(hs.ITLB); err != nil {
			return err
		}
		if err := h.dtlb.Restore(hs.DTLB); err != nil {
			return err
		}
		if err := h.sbuf.Restore(hs.SBuf); err != nil {
			return err
		}
		if len(hs.L1DPorts) != len(h.l1dPorts) || len(hs.L1IPorts) != len(h.l1iPorts) ||
			len(hs.L2Ports) != len(h.l2Ports) {
			return fmt.Errorf("memsys: snapshot node %d port counts do not match configuration", n)
		}
		copy(h.l1dPorts, hs.L1DPorts)
		copy(h.l1iPorts, hs.L1IPorts)
		copy(h.l2Ports, hs.L2Ports)
		h.IFetchSBHits = hs.IFetchSBHits
		h.PrefetchesIssued = hs.PrefetchesIssued
		h.PrefetchesDropped = hs.PrefetchesDropped
		h.FlushesIssued = hs.FlushesIssued
	}
	return nil
}
