// Package stats defines the execution-time accounting used throughout the
// simulator and the report structure returned by a simulation run.
//
// Attribution follows the paper's convention (Section 3): at every cycle the
// ratio of instructions retired to the maximum retire rate counts as busy
// time; the remaining fraction is charged as stall time to the first
// instruction that could not be retired that cycle. Read stalls are further
// split by where the access was serviced (L1 + miscellaneous, L2, local
// memory, remote memory, dirty/cache-to-cache, data TLB). Idle time is
// factored out of all breakdowns (paper footnote 1).
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Category is an execution-time component.
type Category int

const (
	// Busy is useful work: retire-slot utilization.
	Busy Category = iota
	// CPUStall covers functional-unit, dependence and branch stalls (the
	// paper folds these into its "CPU" component together with Busy).
	CPUStall
	// Instr is instruction stall time (I-cache and I-TLB).
	Instr
	// ReadL1 is read stall on L1 hits plus miscellaneous pipeline stalls
	// charged to loads (address generation, restart; see paper Section 3).
	ReadL1
	// ReadL2 is read stall serviced by the L2 cache.
	ReadL2
	// ReadLocal is read stall serviced by local memory.
	ReadLocal
	// ReadRemote is read stall serviced by remote memory.
	ReadRemote
	// ReadDirty is read stall serviced cache-to-cache (dirty misses).
	ReadDirty
	// ReadDTLB is read stall due to data TLB misses.
	ReadDTLB
	// Write is store-related stall (write-buffer/consistency back-pressure).
	Write
	// Sync is synchronization stall (lock acquire/release, fences).
	Sync
	// HTMConflict, HTMCapacity and HTMExplicit are stall charged while an
	// elided latch release resolves an aborted hardware transaction
	// (retry backoff, re-execution, fallback spin), split by the abort
	// cause that triggered the resolution. Zero unless LatchPolicy=htm.
	HTMConflict
	HTMCapacity
	HTMExplicit

	// NumCategories is the number of accounting buckets.
	NumCategories
)

var categoryNames = [...]string{
	"busy", "cpu_stall", "instr", "read_L1", "read_L2", "read_local",
	"read_remote", "read_dirty", "read_dTLB", "write", "sync",
	"htm_conflict", "htm_capacity", "htm_explicit",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// ParseCategory returns the category named s (the inverse of String).
func ParseCategory(s string) (Category, bool) {
	for i, name := range categoryNames {
		if name == s {
			return Category(i), true
		}
	}
	return 0, false
}

// IsRead reports whether the category is a read-stall subcategory.
func (c Category) IsRead() bool { return c >= ReadL1 && c <= ReadDTLB }

// Breakdown is execution time split into categories, in (fractional) cycles.
type Breakdown [NumCategories]float64

// Total returns the sum over all categories.
func (b *Breakdown) Total() float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// Add accumulates other into b.
func (b *Breakdown) Add(other *Breakdown) {
	for i := range b {
		b[i] += other[i]
	}
}

// Sub returns the per-category delta b - prev with each component clamped
// at zero. Cumulative breakdowns are monotone except across a statistics
// reset (warm-up); clamping keeps interval telemetry from reporting
// negative time.
func (b *Breakdown) Sub(prev *Breakdown) Breakdown {
	var out Breakdown
	for i := range b {
		if d := b[i] - prev[i]; d > 0 {
			out[i] = d
		}
	}
	return out
}

// AddRepeat adds v to *f n times, bit-identically to the loop
//
//	for i := uint64(0); i < n; i++ { *f += v }
//
// so that bulk-applied per-cycle charges (the fast-forwarded cycle spans in
// core.Run) produce the exact float64 the per-cycle loop would. When v is
// 1.0, *f is a non-negative multiple of 1/64 and every intermediate sum
// stays at or below 2^46, all n intermediate values are exactly
// representable, so the loop collapses to a single addition; otherwise the
// loop runs as written.
func AddRepeat(f *float64, v float64, n uint64) {
	if n == 0 {
		return
	}
	if v == 1.0 {
		// x*64 integral and x*64 + n*64 <= 2^52 means every x+i is k/64
		// with k <= 2^52 < 2^53: exact, so n exact += 1.0 equal x + n.
		if x := *f * 64; x >= 0 && x+float64(n)*64 <= 1<<52 && x == float64(uint64(x)) {
			*f += float64(n)
			return
		}
	}
	for i := uint64(0); i < n; i++ {
		*f += v
	}
}

// CPU returns the paper's "CPU" component (busy + FU/branch stalls).
func (b *Breakdown) CPU() float64 { return b[Busy] + b[CPUStall] }

// Read returns total read stall time.
func (b *Breakdown) Read() float64 {
	return b[ReadL1] + b[ReadL2] + b[ReadLocal] + b[ReadRemote] + b[ReadDirty] + b[ReadDTLB]
}

// Data returns read + write stall time.
func (b *Breakdown) Data() float64 { return b.Read() + b[Write] }

// HTM returns total transactional-abort resolution stall time.
func (b *Breakdown) HTM() float64 { return b[HTMConflict] + b[HTMCapacity] + b[HTMExplicit] }

// Report is the result of one simulation run.
type Report struct {
	Label string

	Cycles       uint64  // wall-clock cycles simulated (max over CPUs)
	IdleCycles   float64 // cycles with no runnable process, summed over CPUs
	Instructions uint64  // total instructions retired (all CPUs)
	Breakdown    Breakdown

	// Memory-system characterization.
	L1IMissRate    float64
	L1DMissRate    float64
	L2MissRate     float64
	L1IMisses      uint64
	L1DMisses      uint64
	L2Misses       uint64
	DirtyFraction  float64 // fraction of L2 misses serviced cache-to-cache
	BranchMispred  float64
	ITLBMissRate   float64
	DTLBMissRate   float64
	SyncContention float64 // fraction of lock acquires that found the lock held

	// MSHR occupancy distributions: [n] = fraction of miss-outstanding time
	// with >= n MSHRs in use (index 0 unused), per Figures 2/3 (d)-(g).
	L1MSHRAll  []float64
	L2MSHRAll  []float64
	L1MSHRRead []float64
	L2MSHRRead []float64

	// Migratory characterization (Section 4.2).
	SharedWriteMigratory float64 // fraction of shared writes to migratory data
	ReadDirtyMigratory   float64 // fraction of dirty reads to migratory data
	MigratoryLines       int
	MigratoryPCs         int
	LineConcentration    float64 // write misses covered by top 3% of lines
	PCConcentration      float64 // refs covered by top 10% of instructions
	WriteCSFraction      float64
	ReadCSFraction       float64

	// Stream buffer effectiveness (Section 4.1).
	StreamBufHitRate float64

	// Network.
	AvgNetLatency float64

	// Lock-table contention (all latch policies).
	LatchAcquires  uint64 // successful ownership transitions
	LatchContended uint64 // acquires some processor had to retry for
	LatchHandoffs  uint64 // acquires whose previous owner was a different processor

	// HTM latch elision (zero unless LatchPolicy=htm).
	HTMBegins         uint64
	HTMCommits        uint64
	HTMConflictAborts uint64
	HTMCapacityAborts uint64
	HTMExplicitAborts uint64
	HTMFallbacks      uint64
}

// HTMAborts returns the total aborts across causes.
func (r *Report) HTMAborts() uint64 {
	return r.HTMConflictAborts + r.HTMCapacityAborts + r.HTMExplicitAborts
}

// IPC returns retired instructions per non-idle cycle per processor.
func (r *Report) IPC(nodes int) float64 {
	busy := float64(r.Cycles)*float64(nodes) - r.IdleCycles
	if busy <= 0 {
		return 0
	}
	return float64(r.Instructions) / busy
}

// ExecTime returns the non-idle execution time used for normalization: the
// breakdown total (idle already factored out).
func (r *Report) ExecTime() float64 { return r.Breakdown.Total() }

// Normalized returns the per-category breakdown scaled so that base's
// execution time is 1.0 (the paper normalizes each figure to its leftmost
// bar).
func (r *Report) Normalized(base *Report) Breakdown {
	t := base.ExecTime()
	var out Breakdown
	if t == 0 {
		return out
	}
	for i := range out {
		out[i] = r.Breakdown[i] / t
	}
	return out
}

// Percentages returns each category as a percentage of the breakdown's
// total. An empty breakdown (total 0, e.g. an interval sampled before any
// cycle was charged, or a run that never left warm-up) yields all zeros
// rather than NaN.
func (b *Breakdown) Percentages() Breakdown {
	var out Breakdown
	t := b.Total()
	if t == 0 {
		return out
	}
	for i := range b {
		out[i] = b[i] / t * 100
	}
	return out
}

// FormatBreakdownTable renders reports as the paper's stacked-bar data:
// normalized execution time split into CPU / instr / read / write / sync,
// with the leftmost report as the normalization base.
func FormatBreakdownTable(reports []*Report) string {
	if len(reports) == 0 {
		return ""
	}
	var sb strings.Builder
	base := reports[0]
	fmt.Fprintf(&sb, "%-28s %7s | %6s %6s %6s %6s %6s %6s\n",
		"configuration", "total", "CPU", "instr", "read", "write", "sync", "htm")
	for _, r := range reports {
		n := r.Normalized(base)
		fmt.Fprintf(&sb, "%-28s %7.3f | %6.3f %6.3f %6.3f %6.3f %6.3f %6.3f\n",
			r.Label, n.Total(), n.CPU(), n[Instr], n.Read(), n[Write], n[Sync], n.HTM())
	}
	return sb.String()
}

// FormatReadStallTable renders the read-stall magnification shown on the
// right-hand side of Figures 2(b)/(c): read stall split by service point,
// normalized to the base report's total execution time.
func FormatReadStallTable(reports []*Report) string {
	if len(reports) == 0 {
		return ""
	}
	var sb strings.Builder
	base := reports[0]
	fmt.Fprintf(&sb, "%-28s | %8s %8s %8s %8s %8s %8s\n",
		"configuration", "L1+misc", "L2", "local", "remote", "dirty", "dTLB")
	for _, r := range reports {
		n := r.Normalized(base)
		fmt.Fprintf(&sb, "%-28s | %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n",
			r.Label, n[ReadL1], n[ReadL2], n[ReadLocal], n[ReadRemote], n[ReadDirty], n[ReadDTLB])
	}
	return sb.String()
}

// FormatOccupancyTable renders an MSHR occupancy distribution (Figures
// 2/3(d)-(g)): rows are configurations, columns "fraction of time >= n
// MSHRs in use".
func FormatOccupancyTable(labels []string, dists [][]float64) string {
	var sb strings.Builder
	max := 0
	for _, d := range dists {
		if len(d)-1 > max {
			max = len(d) - 1
		}
	}
	fmt.Fprintf(&sb, "%-28s |", "configuration")
	for n := 1; n <= max; n++ {
		fmt.Fprintf(&sb, " >=%-4d", n)
	}
	sb.WriteByte('\n')
	for i, d := range dists {
		fmt.Fprintf(&sb, "%-28s |", labels[i])
		for n := 1; n <= max; n++ {
			v := 0.0
			if n < len(d) {
				v = d[n]
			}
			fmt.Fprintf(&sb, " %5.3f ", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SpeedupTable renders relative speedups (base exec time / each exec time).
func SpeedupTable(reports []*Report) string {
	if len(reports) == 0 {
		return ""
	}
	var sb strings.Builder
	base := reports[0].ExecTime()
	keys := make([]string, 0, len(reports))
	speed := make(map[string]float64, len(reports))
	for _, r := range reports {
		keys = append(keys, r.Label)
		if r.ExecTime() > 0 {
			speed[r.Label] = base / r.ExecTime()
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%-28s speedup %.3f\n", k, speed[k])
	}
	return sb.String()
}
