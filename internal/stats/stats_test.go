package stats

import (
	"strings"
	"testing"
)

func TestBreakdownArithmetic(t *testing.T) {
	var b Breakdown
	b[Busy] = 10
	b[CPUStall] = 5
	b[Instr] = 20
	b[ReadL2] = 30
	b[ReadDirty] = 15
	b[Write] = 3
	b[Sync] = 2
	if got := b.Total(); got != 85 {
		t.Errorf("Total = %f", got)
	}
	if got := b.CPU(); got != 15 {
		t.Errorf("CPU = %f", got)
	}
	if got := b.Read(); got != 45 {
		t.Errorf("Read = %f", got)
	}
	if got := b.Data(); got != 48 {
		t.Errorf("Data = %f", got)
	}
	var c Breakdown
	c.Add(&b)
	c.Add(&b)
	if c.Total() != 170 {
		t.Errorf("Add: total = %f", c.Total())
	}
}

func TestCategoryNames(t *testing.T) {
	if Busy.String() != "busy" || ReadDirty.String() != "read_dirty" || Sync.String() != "sync" {
		t.Error("category names wrong")
	}
	if !ReadL1.IsRead() || !ReadDTLB.IsRead() || Busy.IsRead() || Write.IsRead() {
		t.Error("IsRead misclassifies")
	}
	if !strings.Contains(Category(99).String(), "99") {
		t.Error("unknown category should show value")
	}
}

func TestNormalization(t *testing.T) {
	base := &Report{Label: "base"}
	base.Breakdown[Busy] = 50
	base.Breakdown[ReadL2] = 50
	half := &Report{Label: "half"}
	half.Breakdown[Busy] = 25
	half.Breakdown[ReadL2] = 25
	n := half.Normalized(base)
	if n.Total() != 0.5 {
		t.Errorf("normalized total = %f, want 0.5", n.Total())
	}
	if n[Busy] != 0.25 {
		t.Errorf("normalized busy = %f", n[Busy])
	}
	var empty Report
	if z := half.Normalized(&empty); z.Total() != 0 {
		t.Error("normalizing against zero base should give zeros")
	}
}

func TestIPC(t *testing.T) {
	r := &Report{Cycles: 1000, Instructions: 2000, IdleCycles: 0}
	if got := r.IPC(4); got != 0.5 {
		t.Errorf("IPC = %f, want 0.5", got)
	}
	r.IdleCycles = 2000 // 4000 cpu-cycles - 2000 idle = 2000 busy
	if got := r.IPC(4); got != 1.0 {
		t.Errorf("IPC with idle = %f, want 1.0", got)
	}
	r.IdleCycles = 5000
	if got := r.IPC(4); got != 0 {
		t.Errorf("over-idle IPC = %f, want 0", got)
	}
}

func mkReport(label string, busy, read float64) *Report {
	r := &Report{Label: label}
	r.Breakdown[Busy] = busy
	r.Breakdown[ReadDirty] = read
	return r
}

func TestFormatBreakdownTable(t *testing.T) {
	if FormatBreakdownTable(nil) != "" {
		t.Error("empty input should render nothing")
	}
	out := FormatBreakdownTable([]*Report{mkReport("a", 60, 40), mkReport("b", 30, 20)})
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("labels missing")
	}
	if !strings.Contains(out, "1.000") || !strings.Contains(out, "0.500") {
		t.Errorf("normalization wrong:\n%s", out)
	}
}

func TestFormatReadStallTable(t *testing.T) {
	out := FormatReadStallTable([]*Report{mkReport("x", 50, 50)})
	if !strings.Contains(out, "dirty") || !strings.Contains(out, "0.5000") {
		t.Errorf("read stall table wrong:\n%s", out)
	}
	if FormatReadStallTable(nil) != "" {
		t.Error("empty input should render nothing")
	}
}

func TestFormatOccupancyTable(t *testing.T) {
	out := FormatOccupancyTable([]string{"L1"}, [][]float64{{0, 1.0, 0.25}})
	if !strings.Contains(out, "L1") || !strings.Contains(out, "0.250") {
		t.Errorf("occupancy table wrong:\n%s", out)
	}
}

// TestZeroTotalRendering pins down percent/normalized rendering against a
// zero-total base: no NaN or Inf may leak into the tables, and Normalized
// must return all zeros rather than divide by zero.
func TestZeroTotalRendering(t *testing.T) {
	zero := &Report{Label: "zero"}
	nonzero := mkReport("nonzero", 60, 40)
	if n := nonzero.Normalized(zero); n != (Breakdown{}) {
		t.Errorf("Normalized against zero base = %v, want all zeros", n)
	}
	for name, out := range map[string]string{
		"breakdown": FormatBreakdownTable([]*Report{zero, nonzero}),
		"readstall": FormatReadStallTable([]*Report{zero, nonzero}),
		"speedup":   SpeedupTable([]*Report{zero, nonzero}),
	} {
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("%s table with zero-total base renders NaN/Inf:\n%s", name, out)
		}
	}
}

// TestBreakdownSub covers the interval-delta path used by telemetry: plain
// deltas, and the clamp that guards against counters moving backwards when
// warm-up resets statistics mid-interval.
func TestBreakdownSub(t *testing.T) {
	var prev, cur Breakdown
	prev[Busy], cur[Busy] = 10, 35
	prev[ReadL2], cur[ReadL2] = 5, 5
	d := cur.Sub(&prev)
	if d[Busy] != 25 || d[ReadL2] != 0 {
		t.Errorf("Sub = %v, want busy 25, read_L2 0", d)
	}
	// Counter went backwards (stats reset): clamp to zero, never negative.
	prev[Sync], cur[Sync] = 100, 3
	d = cur.Sub(&prev)
	if d[Sync] != 0 {
		t.Errorf("negative delta not clamped: got %f", d[Sync])
	}
	for i := range d {
		if d[i] < 0 {
			t.Errorf("category %v delta is negative: %f", Category(i), d[i])
		}
	}
}

// TestCategoryRoundTrip checks String and ParseCategory are inverses over
// every category, and that ParseCategory rejects junk.
func TestCategoryRoundTrip(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		got, ok := ParseCategory(c.String())
		if !ok || got != c {
			t.Errorf("ParseCategory(%q) = %v, %v; want %v, true", c.String(), got, ok, c)
		}
	}
	for _, bad := range []string{"", "bogus", "Busy", "category(99)"} {
		if _, ok := ParseCategory(bad); ok {
			t.Errorf("ParseCategory(%q) accepted junk", bad)
		}
	}
}

// TestHTMCategories pins down the HTM abort/stall categories: traceview
// and benchdiff parse category names from trace aggregates, so each new
// name must round-trip through ParseCategory rather than fall into
// "other", and the aggregate helpers must include them.
func TestHTMCategories(t *testing.T) {
	for name, want := range map[string]Category{
		"htm_conflict": HTMConflict,
		"htm_capacity": HTMCapacity,
		"htm_explicit": HTMExplicit,
	} {
		got, ok := ParseCategory(name)
		if !ok || got != want {
			t.Errorf("ParseCategory(%q) = %v, %v; want %v, true", name, got, ok, want)
		}
	}
	var b Breakdown
	b[HTMConflict] = 3
	b[HTMCapacity] = 2
	b[HTMExplicit] = 1
	if got := b.HTM(); got != 6 {
		t.Errorf("HTM() = %f, want 6", got)
	}
	if b.Total() != 6 {
		t.Errorf("Total() = %f, want 6 (HTM categories must count)", b.Total())
	}
	r := &Report{HTMConflictAborts: 5, HTMCapacityAborts: 4, HTMExplicitAborts: 3}
	if r.HTMAborts() != 12 {
		t.Errorf("HTMAborts() = %d, want 12", r.HTMAborts())
	}
	out := FormatBreakdownTable([]*Report{mkReport("a", 60, 40)})
	if !strings.Contains(out, "htm") {
		t.Errorf("breakdown table lacks htm column:\n%s", out)
	}
}

func TestSpeedupTable(t *testing.T) {
	out := SpeedupTable([]*Report{mkReport("base", 100, 0), mkReport("fast", 50, 0)})
	if !strings.Contains(out, "2.000") {
		t.Errorf("speedup table wrong:\n%s", out)
	}
	if SpeedupTable(nil) != "" {
		t.Error("empty input should render nothing")
	}
}

// TestPercentagesZeroTotal checks the NaN guard: an empty breakdown must
// report all-zero percentages, not 0/0.
func TestPercentagesZeroTotal(t *testing.T) {
	var b Breakdown
	p := b.Percentages()
	for i := range p {
		if p[i] != 0 {
			t.Errorf("category %v = %f, want 0 for empty breakdown", Category(i), p[i])
		}
	}

	b[Busy] = 3
	b[Sync] = 1
	p = b.Percentages()
	if p[Busy] != 75 || p[Sync] != 25 {
		t.Errorf("percentages = busy %f sync %f, want 75/25", p[Busy], p[Sync])
	}
}
