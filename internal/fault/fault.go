// Package fault provides a seeded, deterministic fault injector for the
// simulated machine. The injector perturbs timing only — mesh message
// delay/jitter, directory NACKs with bounded retry-and-backoff at the
// requester, and transient memory-bank stalls — and never protocol or
// workload state, so a faulted run retires exactly the instructions of a
// fault-free run (the soak tests in internal/experiments assert this).
//
// Decisions are drawn from a splitmix64 stream seeded by the
// configuration, and the simulator is single-threaded per machine, so a
// given (seed, config, workload) triple always injects the identical fault
// sequence: failures found under injection reproduce exactly.
package fault

import (
	"fmt"

	"repro/internal/config"
)

// Stream is a seeded splitmix64 decision stream: the deterministic PRNG
// behind the injector, exported so other fault-injection layers (the sweep
// service's chaos transport, the runner's retry jitter) reproduce their
// decisions from a seed exactly like the machine-level injector does. Not
// safe for concurrent use.
type Stream struct {
	state uint64
}

// NewStream returns a stream seeded by seed (0 is mapped to 1 so a zero
// value still advances).
func NewStream(seed uint64) *Stream {
	if seed == 0 {
		seed = 1
	}
	return &Stream{state: seed}
}

// Next advances the splitmix64 stream and returns the next draw.
func (s *Stream) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float returns a uniform draw in [0, 1) using 53 bits of the stream.
func (s *Stream) Float() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Chance draws a Bernoulli decision with probability p.
func (s *Stream) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return s.Float() < p
}

// Intn returns a draw in [0, n) (0 when n <= 0).
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.Next() % uint64(n))
}

// Injector draws deterministic fault decisions for one machine. All
// methods are nil-safe: a nil *Injector injects nothing, so callers need
// no "faults enabled?" branches. Not safe for concurrent use.
type Injector struct {
	cfg config.FaultConfig
	rng Stream

	// Statistics (what was actually injected).
	MeshDelays      uint64 // messages delayed
	MeshDelayCycles uint64 // total extra cycles injected into the mesh
	NACKs           uint64 // directory requests bounced
	Retries         uint64 // retry round-trips (== NACKs; kept for clarity)
	MemStalls       uint64 // bank accesses stalled
	MemStallCycles  uint64 // total extra bank cycles
}

// New returns an injector for cfg, or nil when injection is disabled.
// cfg must have passed config validation.
func New(cfg config.FaultConfig) *Injector {
	if !cfg.Enabled {
		return nil
	}
	return &Injector{cfg: cfg, rng: *NewStream(cfg.Seed)}
}

// next advances the splitmix64 stream.
func (i *Injector) next() uint64 { return i.rng.Next() }

// chance draws a Bernoulli decision with probability p.
func (i *Injector) chance(p float64) bool { return i.rng.Chance(p) }

// MeshDelay returns the extra cycles to add to a mesh message's arrival
// (0 for most messages).
func (i *Injector) MeshDelay() uint64 {
	if i == nil || !i.chance(i.cfg.MeshDelayProb) {
		return 0
	}
	d := 1 + i.next()%uint64(i.cfg.MeshDelayMax)
	i.MeshDelays++
	i.MeshDelayCycles += d
	return d
}

// NACK reports whether the home directory bounces a request on its
// attempt-th delivery (attempt 0 is the first). Returns false once attempt
// reaches the retry bound, so transactions always complete.
func (i *Injector) NACK(attempt int) bool {
	if i == nil || attempt >= i.cfg.NACKMaxRetries || !i.chance(i.cfg.NACKProb) {
		return false
	}
	i.NACKs++
	i.Retries++
	return true
}

// Backoff returns the requester's wait before retrying after its
// attempt-th NACK (linear backoff).
func (i *Injector) Backoff(attempt int) uint64 {
	if i == nil {
		return 0
	}
	return uint64(i.cfg.NACKBackoff) * uint64(attempt+1)
}

// MemStall returns the extra cycles a memory-bank access is stalled
// (0 for most accesses).
func (i *Injector) MemStall() uint64 {
	if i == nil || !i.chance(i.cfg.MemStallProb) {
		return 0
	}
	d := uint64(i.cfg.MemStallCycles)
	i.MemStalls++
	i.MemStallCycles += d
	return d
}

// Injected reports whether any fault has been injected so far.
func (i *Injector) Injected() bool {
	return i != nil && i.MeshDelays+i.NACKs+i.MemStalls > 0
}

// Summary renders the injection counters for reports and logs.
func (i *Injector) Summary() string {
	if i == nil {
		return "faults: disabled"
	}
	return fmt.Sprintf("faults: %d mesh delays (+%d cycles), %d NACKs, %d bank stalls (+%d cycles)",
		i.MeshDelays, i.MeshDelayCycles, i.NACKs, i.MemStalls, i.MemStallCycles)
}
