package fault

import (
	"testing"

	"repro/internal/config"
)

func testCfg(seed uint64) config.FaultConfig {
	return config.FaultConfig{
		Enabled:        true,
		Seed:           seed,
		MeshDelayProb:  0.1,
		MeshDelayMax:   40,
		NACKProb:       0.05,
		NACKMaxRetries: 4,
		NACKBackoff:    20,
		MemStallProb:   0.02,
		MemStallCycles: 60,
	}
}

func TestDisabledReturnsNil(t *testing.T) {
	if New(config.FaultConfig{}) != nil {
		t.Fatal("disabled config must yield a nil injector")
	}
	// All methods must be nil-safe and inject nothing.
	var i *Injector
	if i.MeshDelay() != 0 || i.NACK(0) || i.Backoff(3) != 0 || i.MemStall() != 0 {
		t.Error("nil injector injected a fault")
	}
	if i.Injected() {
		t.Error("nil injector reports injections")
	}
	if i.Summary() == "" {
		t.Error("nil injector must still render a summary")
	}
}

// TestDeterminism: the same seed must produce the identical fault sequence.
func TestDeterminism(t *testing.T) {
	draw := func(seed uint64) (delays, nacks, stalls, cycles uint64) {
		i := New(testCfg(seed))
		for k := 0; k < 10_000; k++ {
			cycles += i.MeshDelay()
			if i.NACK(k % 5) {
				cycles += i.Backoff(k % 5)
			}
			cycles += i.MemStall()
		}
		return i.MeshDelays, i.NACKs, i.MemStalls, cycles
	}
	d1, n1, s1, c1 := draw(42)
	d2, n2, s2, c2 := draw(42)
	if d1 != d2 || n1 != n2 || s1 != s2 || c1 != c2 {
		t.Fatalf("same seed diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", d1, n1, s1, c1, d2, n2, s2, c2)
	}
	d3, _, _, _ := draw(43)
	if d1 == 0 || d3 == d1 {
		t.Errorf("different seeds produced suspiciously identical sequences (%d vs %d)", d1, d3)
	}
}

// TestRatesRoughlyMatchProbabilities: over many draws, injection rates land
// near their configured probabilities.
func TestRatesRoughlyMatchProbabilities(t *testing.T) {
	const n = 200_000
	i := New(testCfg(7))
	for k := 0; k < n; k++ {
		i.MeshDelay()
	}
	rate := float64(i.MeshDelays) / n
	if rate < 0.08 || rate > 0.12 {
		t.Errorf("mesh delay rate %.4f far from configured 0.1", rate)
	}
}

// TestNACKBounded: the retry bound must guarantee eventual service.
func TestNACKBounded(t *testing.T) {
	cfg := testCfg(1)
	cfg.NACKProb = 1.0 // always NACK when allowed
	i := New(cfg)
	attempts := 0
	for i.NACK(attempts) {
		attempts++
		if attempts > 100 {
			t.Fatal("NACK storm not bounded")
		}
	}
	if attempts != cfg.NACKMaxRetries {
		t.Errorf("got %d NACKs before forced service, want %d", attempts, cfg.NACKMaxRetries)
	}
	if i.Backoff(1) != uint64(2*cfg.NACKBackoff) {
		t.Errorf("backoff not linear in attempt")
	}
}

func TestFaultConfigValidate(t *testing.T) {
	bad := testCfg(1)
	bad.NACKProb = 1.5
	if bad.Validate() == nil {
		t.Error("probability > 1 accepted")
	}
	bad = testCfg(1)
	bad.MeshDelayMax = 0
	if bad.Validate() == nil {
		t.Error("zero MeshDelayMax with positive probability accepted")
	}
	if (config.FaultConfig{}).Validate() != nil {
		t.Error("disabled zero config rejected")
	}
	if err := testCfg(1).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestStreamDeterminism: the exported Stream draws the same sequence from
// the same seed (chaos-harness reproducibility) and respects its ranges.
func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(99), NewStream(99)
	for i := 0; i < 256; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("draw %d diverged for identical seeds", i)
		}
	}
	c := NewStream(100)
	diverged := false
	for i := 0; i < 16; i++ {
		if a.Next() != c.Next() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds drew identical sequences")
	}

	s := NewStream(0) // seed 0 must still produce a usable stream
	for i := 0; i < 1000; i++ {
		if f := s.Float(); f < 0 || f >= 1 {
			t.Fatalf("Float() = %v, want [0,1)", f)
		}
		if n := s.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn(10) = %d", n)
		}
	}
	if s.Chance(0) {
		t.Fatal("Chance(0) fired")
	}
	if !s.Chance(1) {
		t.Fatal("Chance(1) did not fire")
	}
}
