package fault

// StreamState is the splitmix64 stream position.
type StreamState struct {
	State uint64
}

// Snapshot captures the stream position.
func (s *Stream) Snapshot() StreamState { return StreamState{State: s.state} }

// Restore rewinds the stream to a captured position.
func (s *Stream) Restore(st StreamState) { s.state = st.State }

// InjectorState is the dynamic state of an Injector: the decision-stream
// position plus the injection counters. The configuration is rebuilt by
// New. A nil injector snapshots to the zero value and restores only from
// one.
type InjectorState struct {
	Enabled         bool
	RNG             StreamState
	MeshDelays      uint64
	MeshDelayCycles uint64
	NACKs           uint64
	Retries         uint64
	MemStalls       uint64
	MemStallCycles  uint64
}

// Snapshot captures the injector (zero value when disabled/nil).
func (i *Injector) Snapshot() InjectorState {
	if i == nil {
		return InjectorState{}
	}
	return InjectorState{
		Enabled:         true,
		RNG:             i.rng.Snapshot(),
		MeshDelays:      i.MeshDelays,
		MeshDelayCycles: i.MeshDelayCycles,
		NACKs:           i.NACKs,
		Retries:         i.Retries,
		MemStalls:       i.MemStalls,
		MemStallCycles:  i.MemStallCycles,
	}
}

// Restore refills the injector. Enabled-ness must match the configured
// injector (nil accepts only a disabled snapshot); mismatches are the
// caller's config-hash check failing, so this just no-ops safely for nil.
func (i *Injector) Restore(s InjectorState) {
	if i == nil {
		return
	}
	i.rng.Restore(s.RNG)
	i.MeshDelays = s.MeshDelays
	i.MeshDelayCycles = s.MeshDelayCycles
	i.NACKs = s.NACKs
	i.Retries = s.Retries
	i.MemStalls = s.MemStalls
	i.MemStallCycles = s.MemStallCycles
}
