package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
)

// okPoint returns a point that succeeds immediately with value v.
func okPoint(id string, v any) Point {
	return Point{
		ID:   id,
		Spec: map[string]string{"id": id},
		Run:  func(context.Context, Attempt) (any, error) { return v, nil },
	}
}

func fastOpts() Options {
	return Options{
		Workers:      2,
		PointTimeout: 5 * time.Second,
		BackoffBase:  time.Millisecond,
		BackoffCap:   4 * time.Millisecond,
		RetryBudget:  8,
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{&core.ProgressError{}, ClassProgress},
		{&core.CycleLimitError{}, ClassCycleLimit},
		{&diag.PanicError{Value: "x"}, ClassPanic},
		{fmt.Errorf("wrapped: %w", &core.ProgressError{}), ClassProgress},
		{&core.CanceledError{Cause: context.DeadlineExceeded}, ClassTimeout},
		{&core.CanceledError{Cause: context.Canceled}, ClassCanceled},
		{context.DeadlineExceeded, ClassTimeout},
		{errors.New("boom"), ClassError},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestPanicIsolation: one panicking point must not take down its siblings,
// and must be journaled as a classified panic with a stack.
func TestPanicIsolation(t *testing.T) {
	pts := []Point{
		okPoint("a", "ra"),
		{
			ID:   "boom",
			Spec: "boom",
			Run: func(context.Context, Attempt) (any, error) {
				panic("injected crash")
			},
		},
		okPoint("b", "rb"),
	}
	sum, err := Run(context.Background(), pts, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK != 2 || sum.Failed != 1 {
		t.Fatalf("ok=%d failed=%d, want 2/1", sum.OK, sum.Failed)
	}
	rec := sum.Records[1]
	if rec.Status != StatusFailed || rec.Class != ClassPanic {
		t.Fatalf("record = %+v, want failed/panic", rec)
	}
	if rec.Error == "" {
		t.Error("panic record has no error text")
	}
	if sum.ExitCode() != 3 {
		t.Errorf("exit code = %d, want 3 (partial success)", sum.ExitCode())
	}
}

// TestTimeoutRetry: a point that exceeds its wall-clock deadline on the
// first attempt is retried (timeouts are host conditions) and succeeds.
func TestTimeoutRetry(t *testing.T) {
	var tries atomic.Int32
	pt := Point{
		ID:   "slow",
		Spec: "slow",
		Run: func(ctx context.Context, att Attempt) (any, error) {
			if tries.Add(1) == 1 {
				<-ctx.Done() // simulate a run noticing its deadline
				return nil, &core.CanceledError{Cause: ctx.Err()}
			}
			return "done", nil
		},
	}
	opt := fastOpts()
	opt.PointTimeout = 20 * time.Millisecond
	sum, err := Run(context.Background(), []Point{pt}, opt)
	if err != nil {
		t.Fatal(err)
	}
	rec := sum.Records[0]
	if rec.Status != StatusOK || rec.Attempts != 2 || rec.Class != ClassTimeout {
		t.Fatalf("record = %+v, want ok after timeout retry", rec)
	}
	if sum.RetriesUsed != 1 {
		t.Errorf("retries used = %d, want 1", sum.RetriesUsed)
	}
}

// TestDeterministicFailureNotRetried: a watchdog trip without fault
// injection is deterministic — it must fail on the first attempt.
func TestDeterministicFailureNotRetried(t *testing.T) {
	var tries atomic.Int32
	pt := Point{
		ID:   "livelock",
		Spec: "livelock",
		Run: func(context.Context, Attempt) (any, error) {
			tries.Add(1)
			return nil, &core.ProgressError{Cycle: 100, Window: 50, Snapshot: &diag.Snapshot{Reason: "watchdog"}}
		},
	}
	sum, err := Run(context.Background(), []Point{pt}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tries.Load() != 1 {
		t.Fatalf("deterministic failure ran %d times, want 1", tries.Load())
	}
	rec := sum.Records[0]
	if rec.Status != StatusFailed || rec.Class != ClassProgress || rec.Diag == nil {
		t.Fatalf("record = %+v, want failed/progress with diag", rec)
	}
	if sum.ExitCode() != 1 {
		t.Errorf("exit code = %d, want 1 (nothing succeeded)", sum.ExitCode())
	}
}

// TestFaultyRetriedWithFaultsDisabled: a fault-injected point whose first
// attempt trips the watchdog must be retried with DisableFaults set and
// recorded as recovered_after_fault, keeping the original snapshot.
func TestFaultyRetriedWithFaultsDisabled(t *testing.T) {
	snap := &diag.Snapshot{Cycle: 42, Reason: "watchdog"}
	pt := Point{
		ID:     "storm",
		Spec:   "storm",
		Faulty: true,
		Run: func(_ context.Context, att Attempt) (any, error) {
			if !att.DisableFaults {
				return nil, &core.ProgressError{Cycle: 42, Snapshot: snap}
			}
			return "clean", nil
		},
	}
	sum, err := Run(context.Background(), []Point{pt}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rec := sum.Records[0]
	if rec.Status != StatusRecovered {
		t.Fatalf("status = %q, want %q", rec.Status, StatusRecovered)
	}
	if rec.Diag == nil || rec.Diag.Cycle != 42 || rec.Diag.Reason != "watchdog" {
		t.Fatalf("original diag snapshot not preserved: %+v", rec.Diag)
	}
	if rec.Class != ClassProgress || rec.Error == "" {
		t.Errorf("root cause not recorded: class=%q error=%q", rec.Class, rec.Error)
	}
	if sum.ExitCode() != 0 {
		t.Errorf("exit code = %d, want 0 (recovered counts as success)", sum.ExitCode())
	}
}

// TestRetryBudget: the sweep-wide budget bounds retries across points.
func TestRetryBudget(t *testing.T) {
	mk := func(id string) Point {
		return Point{
			ID: id, Spec: id, Faulty: true,
			Run: func(_ context.Context, att Attempt) (any, error) {
				if !att.DisableFaults {
					return nil, &core.ProgressError{}
				}
				return id, nil
			},
		}
	}
	opt := fastOpts()
	opt.Workers = 1
	opt.RetryBudget = 1
	sum, err := Run(context.Background(), []Point{mk("p1"), mk("p2")}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sum.RetriesUsed != 1 {
		t.Fatalf("retries used = %d, want 1", sum.RetriesUsed)
	}
	if sum.Recovered != 1 || sum.Failed != 1 {
		t.Fatalf("recovered=%d failed=%d, want 1/1 (budget exhausted)", sum.Recovered, sum.Failed)
	}
}

// TestBackoffCap: the exponential delay never exceeds the cap.
func TestBackoffCap(t *testing.T) {
	p, err := newPool(nil, Options{BackoffBase: time.Second, BackoffCap: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 5 * time.Second, 5 * time.Second}
	for i, w := range want {
		if got := p.backoff(i); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestGracefulDrain: canceling the Drain context stops dispatch but lets
// in-flight points finish; undispatched points are skipped, not journaled.
func TestGracefulDrain(t *testing.T) {
	drain, stop := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	pts := []Point{
		{
			ID: "inflight", Spec: "inflight",
			Run: func(context.Context, Attempt) (any, error) {
				once.Do(func() { close(started) })
				<-release
				return "finished", nil
			},
		},
		okPoint("later1", 1),
		okPoint("later2", 2),
	}
	opt := fastOpts()
	opt.Workers = 1
	opt.Drain = drain

	go func() {
		<-started
		stop() // drain while the first point is in flight
		close(release)
	}()
	sum, err := Run(context.Background(), pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records[0].Status != StatusOK {
		t.Errorf("in-flight point = %q, want ok (drain must not abort it)", sum.Records[0].Status)
	}
	if sum.Skipped != 2 {
		t.Errorf("skipped = %d, want 2", sum.Skipped)
	}
	if sum.ExitCode() != 3 {
		t.Errorf("exit code = %d, want 3", sum.ExitCode())
	}
}

// TestHardCancelAbortsInFlight: canceling the run context aborts in-flight
// points; they journal as canceled (not terminal) so resume re-runs them.
func TestHardCancelAbortsInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pts := []Point{{
		ID: "victim", Spec: "victim",
		Run: func(rctx context.Context, _ Attempt) (any, error) {
			cancel()
			<-rctx.Done()
			return nil, &core.CanceledError{Cause: rctx.Err()}
		},
	}}
	sum, err := Run(ctx, pts, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rec := sum.Records[0]
	if rec.Status != StatusCanceled {
		t.Fatalf("status = %q, want canceled", rec.Status)
	}
	if rec.Status.Terminal() {
		t.Error("canceled must not be terminal (resume re-runs it)")
	}
}

// TestDuplicateIDsRejected: duplicate point IDs are a setup error.
func TestDuplicateIDsRejected(t *testing.T) {
	_, err := Run(context.Background(), []Point{okPoint("x", 1), okPoint("x", 2)}, fastOpts())
	if err == nil {
		t.Fatal("duplicate point ids accepted")
	}
}

// TestBackoffJitter: jittered delays stay inside [d*(1-j), d), the same
// seed draws the same sequence, and a negative jitter disables it.
func TestBackoffJitter(t *testing.T) {
	mk := func(jit float64, seed uint64) *pool {
		p, err := newPool(nil, Options{
			BackoffBase: time.Second, BackoffCap: 8 * time.Second,
			BackoffJitter: jit, JitterSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		jit  float64
		lo   float64 // fraction of d
	}{
		{"default-half", 0, 0.5}, // 0 means DefaultBackoffJitter
		{"quarter", 0.25, 0.75},
		{"full", 1.0, 0.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mk(tc.jit, 42)
			for attempt := 0; attempt < 4; attempt++ {
				d := p.backoff(attempt)
				for i := 0; i < 50; i++ {
					got := p.jitter(d)
					if got < time.Duration(tc.lo*float64(d)) || got > d {
						t.Fatalf("jitter(%v) = %v, want within [%v, %v]",
							d, got, time.Duration(tc.lo*float64(d)), d)
					}
				}
			}
		})
	}

	t.Run("seed-deterministic", func(t *testing.T) {
		a, b := mk(0.5, 7), mk(0.5, 7)
		for i := 0; i < 32; i++ {
			if da, db := a.jitter(time.Second), b.jitter(time.Second); da != db {
				t.Fatalf("draw %d: %v vs %v — same seed must draw same jitter", i, da, db)
			}
		}
	})

	t.Run("negative-disables", func(t *testing.T) {
		p := mk(-1, 42)
		for i := 0; i < 8; i++ {
			if got := p.jitter(time.Second); got != time.Second {
				t.Fatalf("jitter disabled but got %v, want exactly 1s", got)
			}
		}
	})
}

// TestCheckpointPathLifecycle: with Options.CheckpointDir set, every
// attempt of a point sees the same stable CheckpointPath prefix (so a
// retry resumes the previous attempt's captures), the directory is
// created, checkpoint files are deleted once the point succeeds, and
// kept when it fails (post-mortem) or is canceled (resume later).
func TestCheckpointPathLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "ckpts")

	var mu sync.Mutex
	paths := make(map[string][]string) // id -> CheckpointPath per attempt
	record := func(id, path string) {
		mu.Lock()
		paths[id] = append(paths[id], path)
		mu.Unlock()
	}
	writeCkpt := func(prefix string) {
		if err := os.WriteFile(prefix+".main.ckpt", []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	attempts := 0
	pts := []Point{
		{
			ID:   "ok after retry",
			Spec: map[string]string{"id": "ok"},
			Run: func(ctx context.Context, att Attempt) (any, error) {
				record("ok", att.CheckpointPath)
				writeCkpt(att.CheckpointPath)
				attempts++
				if attempts == 1 {
					return nil, context.DeadlineExceeded // transient: retried
				}
				return "done", nil
			},
		},
		{
			ID:   "fails",
			Spec: map[string]string{"id": "fails"},
			Run: func(ctx context.Context, att Attempt) (any, error) {
				record("fails", att.CheckpointPath)
				writeCkpt(att.CheckpointPath)
				return nil, errors.New("deterministic failure")
			},
		},
	}
	sum, err := Run(context.Background(), pts, Options{
		Workers: 1, PointTimeout: 5 * time.Second, RetryBudget: 2,
		BackoffBase: time.Millisecond, BackoffCap: time.Millisecond,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records[0].Status != StatusOK || sum.Records[1].Status != StatusFailed {
		t.Fatalf("statuses: %s, %s", sum.Records[0].Status, sum.Records[1].Status)
	}

	okPaths := paths["ok"]
	if len(okPaths) != 2 {
		t.Fatalf("ok point ran %d attempts, want 2", len(okPaths))
	}
	want := CheckpointPrefix(dir, "ok after retry")
	for i, p := range okPaths {
		if p != want {
			t.Errorf("attempt %d CheckpointPath = %q, want stable %q", i, p, want)
		}
	}
	// Success: the point's checkpoints are gone.
	if m, _ := filepath.Glob(want + ".*.ckpt"); len(m) != 0 {
		t.Errorf("completed point left checkpoints behind: %v", m)
	}
	// Failure: kept for post-mortem restore.
	failPrefix := CheckpointPrefix(dir, "fails")
	if m, _ := filepath.Glob(failPrefix + ".*.ckpt"); len(m) != 1 {
		t.Errorf("failed point's checkpoints missing (glob %s.*.ckpt)", failPrefix)
	}
}

// TestCheckpointKeptOnCancel: a canceled point keeps its checkpoints so a
// resumed sweep continues mid-run instead of restarting.
func TestCheckpointKeptOnCancel(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	pts := []Point{{
		ID:   "pt",
		Spec: map[string]string{"id": "pt"},
		Run: func(rctx context.Context, att Attempt) (any, error) {
			if err := os.WriteFile(att.CheckpointPath+".main.ckpt", []byte("x"), 0o644); err != nil {
				t.Error(err)
			}
			cancel()
			<-rctx.Done()
			return nil, rctx.Err()
		},
	}}
	sum, err := Run(ctx, pts, Options{Workers: 1, PointTimeout: 5 * time.Second, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records[0].Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", sum.Records[0].Status)
	}
	if m, _ := filepath.Glob(CheckpointPrefix(dir, "pt") + ".*.ckpt"); len(m) != 1 {
		t.Errorf("canceled point's checkpoints were deleted (found %v)", m)
	}
}

// TestCheckpointPrefixSanitizes: point IDs with hostile characters map to
// safe, distinct-enough filenames under the checkpoint dir.
func TestCheckpointPrefixSanitizes(t *testing.T) {
	p := CheckpointPrefix("/tmp/ck", "oltp/8cpu: warm=2 (a,b)")
	if filepath.Dir(p) != "/tmp/ck" {
		t.Fatalf("prefix %q escaped the checkpoint dir", p)
	}
	base := filepath.Base(p)
	for _, r := range base {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '.' || r == '_' || r == '-'
		if !ok {
			t.Errorf("unsafe rune %q survived sanitization in %q", r, base)
		}
	}
	if CheckpointPrefix("", "x") != "" {
		t.Error("empty dir must disable checkpointing")
	}
}
