package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
)

// TestJournalRoundTrip: appended records come back keyed by spec hash,
// with snapshots intact.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{ID: "a", SpecHash: "h-a", Status: StatusOK, Attempts: 1},
		{ID: "b", SpecHash: "h-b", Status: StatusFailed, Attempts: 3, Class: ClassProgress,
			Error: "no forward progress", Diag: &diag.Snapshot{Cycle: 7, Reason: "watchdog"}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	b := got["h-b"]
	if b == nil || b.Status != StatusFailed || b.Diag == nil || b.Diag.Reason != "watchdog" {
		t.Fatalf("record b = %+v, want failed with watchdog snapshot", b)
	}
}

// TestJournalLastRecordWins: a re-run point's newer record supersedes the
// older one.
func TestJournalLastRecordWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Append(&Record{ID: "a", SpecHash: "h", Status: StatusCanceled})
	_ = j.Append(&Record{ID: "a", SpecHash: "h", Status: StatusOK})
	_ = j.Close()
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["h"].Status != StatusOK {
		t.Fatalf("status = %q, want ok (last record wins)", got["h"].Status)
	}
}

// TestJournalToleratesPartialLine: a crash mid-write leaves a trailing
// partial line; reading must skip it and keep the intact records.
func TestJournalToleratesPartialLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Append(&Record{ID: "a", SpecHash: "h-a", Status: StatusOK})
	_ = j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"b","spec_ha`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["h-a"] == nil {
		t.Fatalf("read %d records, want the 1 intact one", len(got))
	}
}

// TestReadJournalMissingFile: a missing journal is empty, not an error.
func TestReadJournalMissingFile(t *testing.T) {
	got, err := ReadJournal(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

// TestSpecHash: stable for equal specs, different for different specs,
// and well-defined for unmarshalable ones.
func TestSpecHash(t *testing.T) {
	type spec struct{ A, B int }
	if SpecHash(spec{1, 2}) != SpecHash(spec{1, 2}) {
		t.Error("equal specs hash differently")
	}
	if SpecHash(spec{1, 2}) == SpecHash(spec{1, 3}) {
		t.Error("different specs collide")
	}
	if h := SpecHash(func() {}); h != "unhashable" {
		t.Errorf("unmarshalable spec hash = %q", h)
	}
}

// TestResumeSkipsCompleted: a second pool run over the same journal re-runs
// only the points without a terminal record, and the merged journal covers
// every point exactly once.
func TestResumeSkipsCompleted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	var ran []string
	mk := func(id string) Point {
		return Point{
			ID: id, Spec: id,
			Run: func(context.Context, Attempt) (any, error) {
				ran = append(ran, id)
				return id + "-result", nil
			},
		}
	}
	pts := []Point{mk("p1"), mk("p2"), mk("p3")}

	// First run: drain after the first point so p2/p3 never start.
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	drain, stop := context.WithCancel(context.Background())
	opt := fastOpts()
	opt.Workers = 1
	opt.Journal = j
	opt.Drain = drain
	opt.OnEvent = func(ev Event) {
		if ev.Kind == EventDone {
			stop()
		}
	}
	sum, err := Run(context.Background(), pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Close()
	if sum.OK != 1 || sum.Skipped != 2 {
		t.Fatalf("first run: ok=%d skipped=%d, want 1/2", sum.OK, sum.Skipped)
	}

	// Resume: replay the journal, run the rest.
	completed, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := fastOpts()
	opt2.Workers = 1
	opt2.Journal = j2
	opt2.Completed = completed
	ran = nil
	sum2, err := Run(context.Background(), pts, opt2)
	if err != nil {
		t.Fatal(err)
	}
	_ = j2.Close()
	if len(ran) != 2 || ran[0] != "p2" || ran[1] != "p3" {
		t.Fatalf("resume ran %v, want [p2 p3]", ran)
	}
	if sum2.Reused != 1 || sum2.OK != 3 || sum2.ExitCode() != 0 {
		t.Fatalf("resume summary = %+v, want 3 ok (1 reused), exit 0", sum2)
	}
	// The reused record still carries its journaled result payload.
	if !strings.Contains(string(sum2.Records[0].Result), "p1-result") {
		t.Errorf("reused record lost its result: %s", sum2.Records[0].Result)
	}

	// Merged journal: every point exactly once.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"p1", "p2", "p3"} {
		if n := strings.Count(string(data), `"id":"`+id+`"`); n != 1 {
			t.Errorf("journal has %d records for %s, want exactly 1", n, id)
		}
	}
}

// TestReadJournalWarnDistinguishesTornFromCorrupt: an unparsable final
// line warns as a torn tail (expected crash artifact); an unparsable line
// with intact records after it warns as mid-file corruption.
func TestReadJournalWarnDistinguishesTornFromCorrupt(t *testing.T) {
	write := func(t *testing.T, lines ...string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "j.jsonl")
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}
	rec := `{"id":"a","spec_hash":"h-a","status":"ok","attempts":1}`
	cases := []struct {
		name     string
		lines    []string
		want     string // substring of the expected warning
		survived int
	}{
		{"torn-tail", []string{rec, `{"id":"b","spec_ha`}, "torn trailing record at line 2", 1},
		{"mid-file", []string{`{"broken`, rec}, "corrupt record at line 1", 1},
		{"clean", []string{rec, ""}, "", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var warns []string
			got, err := ReadJournalWarn(write(t, tc.lines...), func(f string, a ...any) {
				warns = append(warns, fmt.Sprintf(f, a...))
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.survived {
				t.Fatalf("%d records survived, want %d", len(got), tc.survived)
			}
			if tc.want == "" {
				if len(warns) != 0 {
					t.Fatalf("unexpected warnings: %q", warns)
				}
				return
			}
			found := false
			for _, w := range warns {
				if strings.Contains(w, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("warnings %q missing %q", warns, tc.want)
			}
		})
	}
}
