package runner

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/diag"
	"repro/internal/obs"
)

// Status is the terminal state of one run point.
type Status string

const (
	// StatusOK: the point completed on its first (or only) attempt.
	StatusOK Status = "ok"
	// StatusRecovered: a fault-injected point failed, was retried with the
	// fault profile disabled, and then completed.
	StatusRecovered Status = "recovered_after_fault"
	// StatusFailed: the point failed permanently (non-retryable failure,
	// attempts exhausted, or retry budget empty).
	StatusFailed Status = "failed"
	// StatusCanceled: the point was aborted mid-run by a hard cancel. Not
	// terminal — a resumed sweep re-runs it.
	StatusCanceled Status = "canceled"
	// StatusSkipped: the point was never dispatched (graceful drain stopped
	// the sweep first). Skipped points are never journaled.
	StatusSkipped Status = "skipped"
)

// Terminal reports whether a journaled status means "do not re-run on
// resume". Canceled and skipped points are incomplete by definition.
func (s Status) Terminal() bool {
	switch s {
	case StatusOK, StatusRecovered, StatusFailed:
		return true
	}
	return false
}

// Record is one journal line: the durable outcome of one run point. The
// Error/Class/Diag triple always describes the *first* failing attempt
// (the root cause — for a recovered_after_fault point that is the faulted
// run whose snapshot the journal must preserve), while Status and Attempts
// describe where the point ended up.
type Record struct {
	ID       string `json:"id"`
	SpecHash string `json:"spec_hash"`
	Status   Status `json:"status"`
	Attempts int    `json:"attempts"`

	Class Class  `json:"class,omitempty"` // first failure's classification
	Error string `json:"error,omitempty"` // first failure's message

	Seconds float64 `json:"seconds"`          // wall-clock across all attempts
	Series  string  `json:"series,omitempty"` // telemetry series path/glob, if any

	Diag *diag.Snapshot `json:"diag,omitempty"` // first failure's machine snapshot

	// Result is the point's marshaled outcome (what Point.Run returned),
	// kept so a resumed sweep can still emit complete merged output.
	Result json.RawMessage `json:"result,omitempty"`

	// Provenance identifies the binary/host/worker that produced this
	// record (stamped from Options.Provenance, or by the sweep worker).
	// Pure metadata: merged-output byte identity reads only Result, and
	// resume keys only on SpecHash.
	Provenance *obs.Provenance `json:"provenance,omitempty"`

	// Reused marks a record replayed from a prior journal during -resume
	// (in-memory only; never re-journaled).
	Reused bool `json:"-"`
}

// SpecHash fingerprints a point's spec: a truncated SHA-256 over its
// canonical JSON encoding. Resume keys on this hash, so changing any field
// of the spec (scale, fault profile, machine knobs) re-runs the point
// instead of wrongly reusing a stale result. The spec must be
// JSON-marshalable; a spec that is not hashes to a sentinel that never
// matches a journaled record.
func SpecHash(spec any) string {
	b, err := json.Marshal(spec)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Journal is an append-only JSONL file of Records, flushed record-by-record
// so that a crash or kill loses at most the line being written. Safe for
// concurrent Append from pool workers.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal at path for
// appending. Opening the same path across runs is the resume mechanism:
// earlier records stay in place and new ones append after them.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append writes one record and flushes it to the OS before returning.
func (j *Journal) Append(r *Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	// Sync bounds the loss window to the record being written when the
	// whole machine (not just the process) dies mid-sweep.
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal loads a journal written by earlier runs and returns the last
// record per spec hash. A missing file is an empty journal, not an error.
// Torn or corrupt lines are skipped silently; use ReadJournalWarn to
// observe them.
func ReadJournal(path string) (map[string]*Record, error) {
	return ReadJournalWarn(path, nil)
}

// ReadJournalWarn is ReadJournal with a warning hook: warn (when non-nil)
// is called for every line that cannot be parsed, distinguishing the torn
// trailing record a crash mid-write leaves (expected; bounded to one line
// by the fsync-per-record discipline) from corruption earlier in the file
// (unexpected; the record is lost and its point will re-run on resume).
// Either way replay continues — a crashed sweep's journal is always
// readable.
func ReadJournalWarn(path string, warn func(format string, args ...any)) (map[string]*Record, error) {
	recs := make(map[string]*Record)
	err := ScanJSONL(path, warn, func(line []byte) bool {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.SpecHash == "" {
			return false
		}
		recs[r.SpecHash] = &r
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	return recs, nil
}

// ScanJSONL streams the lines of an append-only JSONL file at path into
// apply, which reports whether the line parsed. A missing file is an empty
// file. Lines that fail to parse are skipped and reported to warn (when
// non-nil): a final unparsable line is a torn tail from a crash mid-write,
// anything earlier is corruption. The sweep journal and the sweep-service
// ledger both replay through this, so both survive a crash mid-append.
func ScanJSONL(path string, warn func(format string, args ...any), apply func(line []byte) bool) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	if warn == nil {
		warn = func(string, ...any) {}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26) // snapshots + results can be large
	lineNo := 0
	badLine := 0 // most recent unparsable line (0 = none pending)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if badLine != 0 {
			// The unparsable line had lines after it: real corruption, not
			// a torn tail.
			warn("corrupt record at line %d skipped (mid-file corruption; its point will re-run)", badLine)
			badLine = 0
		}
		if !apply(line) {
			badLine = lineNo
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if badLine != 0 {
		warn("torn trailing record at line %d skipped (crash mid-write; its point will re-run)", badLine)
	}
	return nil
}
