// Package runner is the simulator's run-orchestration layer: it executes a
// sweep's run points through a supervised, bounded worker pool so that
// multi-hour experiment grids survive individual failures and operator
// interruption.
//
// Each point runs under a per-point context deadline (derived from its
// simulated-cycle budget, capped by a wall-clock bound) with panic
// isolation — a crash in one point becomes a *diag.PanicError result
// instead of killing sibling workers. Failures are classified
// (ProgressError / CycleLimitError / panic / timeout / canceled) and only
// retryable ones are retried, with capped exponential backoff and a
// sweep-wide retry budget; a fault-injected point that livelocks is
// retried with its fault profile disabled and recorded as
// recovered_after_fault, preserving the original diagnostic snapshot.
// Outcomes stream to a durable JSONL journal as each point completes, so
// an interrupted sweep resumes by replaying the journal and skipping
// points with a terminal record.
//
// Every point builds its own core.System, so worker parallelism cannot
// change any point's simulated outcome: for a fixed seed the parallel
// sweep's per-point counters are bit-identical to serial execution
// (asserted by the orchestration tests in internal/experiments).
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Class is a failure classification; it decides retryability.
type Class string

const (
	// ClassProgress: the forward-progress watchdog tripped (livelock).
	// Deterministic for a fixed seed, so only retryable when the point ran
	// with fault injection (retry disables the fault profile).
	ClassProgress Class = "progress"
	// ClassCycleLimit: the run exceeded MaxCycles. Retryable only for
	// fault-injected points (faults stretch runs past the bound).
	ClassCycleLimit Class = "cycle-limit"
	// ClassPanic: the machine model panicked; recovered into a
	// *diag.PanicError. Deterministic, so retryable only under faults.
	ClassPanic Class = "panic"
	// ClassTimeout: the per-point wall-clock deadline expired — a host
	// condition (loaded machine), not a simulation outcome. Always
	// retryable.
	ClassTimeout Class = "timeout"
	// ClassCanceled: the sweep itself was canceled. Never retried.
	ClassCanceled Class = "canceled"
	// ClassError: any other error (workload failure, bad config, I/O).
	// Retryable only under faults.
	ClassError Class = "error"
)

// Classify maps a run error onto its failure class.
func Classify(err error) Class {
	var pan *diag.PanicError
	var pe *core.ProgressError
	var cle *core.CycleLimitError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &pan):
		return ClassPanic
	case errors.As(err, &pe):
		return ClassProgress
	case errors.As(err, &cle):
		return ClassCycleLimit
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTimeout
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	}
	return ClassError
}

// SnapshotOf extracts the machine snapshot attached to a classified run
// error, if any.
func SnapshotOf(err error) *diag.Snapshot {
	var pan *diag.PanicError
	if errors.As(err, &pan) {
		return pan.Snapshot
	}
	var pe *core.ProgressError
	if errors.As(err, &pe) {
		return pe.Snapshot
	}
	var cle *core.CycleLimitError
	if errors.As(err, &cle) {
		return cle.Snapshot
	}
	var ce *core.CanceledError
	if errors.As(err, &ce) {
		return ce.Snapshot
	}
	return nil
}

// retryable reports whether a failure of class c should be retried, given
// whether the failing attempt ran with fault injection enabled.
func retryable(c Class, faulted bool) bool {
	switch c {
	case ClassTimeout:
		return true
	case ClassProgress, ClassCycleLimit, ClassPanic, ClassError:
		return faulted // deterministic without faults: retrying reproduces the failure
	}
	return false
}

// Attempt tells Point.Run which try this is and whether to disable the
// point's fault profile (set on retries after fault-induced failures).
// CheckpointPath, when non-empty (Options.CheckpointDir is set), is the
// point's stable checkpoint path prefix: the run should checkpoint its
// progress under it and resume from any valid checkpoint already there,
// so a retried or re-dispatched point re-simulates only the cycles
// since the last capture instead of restarting from cycle zero.
type Attempt struct {
	Number         int // 0 = first try
	DisableFaults  bool
	CheckpointPath string
}

// Point is one schedulable unit of a sweep.
type Point struct {
	// ID names the point in journals, logs and events; unique per sweep.
	ID string
	// Spec is the point's JSON-marshalable identity; its hash keys the
	// journal, so resume re-runs the point whenever the spec changes.
	Spec any
	// MaxCycles is the point's simulated-cycle budget, used to derive the
	// per-point wall-clock deadline (0 = no derivation; the cap applies).
	MaxCycles uint64
	// Faulty marks a point running with fault injection: its failures are
	// retried with Attempt.DisableFaults set.
	Faulty bool
	// Series names the point's telemetry series path (journaled verbatim).
	Series string
	// Run executes the point. It must honor ctx (the per-point deadline
	// and the sweep's hard cancel) and be safe to call again for retries.
	Run func(ctx context.Context, att Attempt) (any, error)
}

// EventKind labels pool progress events.
type EventKind string

const (
	EventStart EventKind = "start"
	EventDone  EventKind = "done" // terminal or canceled; Record is set
	EventRetry EventKind = "retry"
	EventSkip  EventKind = "skip" // drained before dispatch, or resumed from journal
)

// Event is one pool progress notification. Events are delivered serially
// (never concurrently) but in completion order, not point order.
type Event struct {
	Kind    EventKind
	Point   string
	Attempt int           // attempts so far
	Err     error         // failing attempt's error (retry/done)
	Delay   time.Duration // backoff before the next attempt (retry)
	Record  *Record       // the point's record (done/skip)
	Result  any           // the point's outcome (done, successful points)
}

// Options configures a pool run.
type Options struct {
	// Workers bounds parallel points (<=0 means 1, i.e. serial).
	Workers int
	// PointTimeout fixes the per-point wall-clock deadline; 0 derives it
	// from Point.MaxCycles at MinCyclesPerSecond, clamped to
	// [MinPointTimeout, WallClockCap].
	PointTimeout time.Duration
	// WallClockCap bounds the derived deadline (0 = DefaultWallClockCap).
	WallClockCap time.Duration
	// MaxAttempts bounds tries per point (0 = DefaultMaxAttempts).
	MaxAttempts int
	// RetryBudget bounds retries across the whole sweep (<0 = unlimited,
	// 0 = no retries).
	RetryBudget int
	// BackoffBase is the delay before the first retry (0 =
	// DefaultBackoffBase); it doubles per attempt up to BackoffCap (0 =
	// DefaultBackoffCap).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BackoffJitter randomizes each retry delay so concurrent workers
	// retrying the same transient fault (a loaded host, a flaky sweepd)
	// don't synchronize into retry storms: a delay d becomes
	// d*(1-j) + U[0, d*j). 0 means DefaultBackoffJitter; negative disables
	// jitter (exact exponential delays, used by deterministic tests).
	BackoffJitter float64
	// JitterSeed seeds the jitter stream (0 = derived from wall clock, so
	// distinct worker processes draw distinct schedules).
	JitterSeed uint64
	// CheckpointDir, when non-empty, gives every point a stable
	// checkpoint path prefix under this directory (created if missing),
	// passed to Point.Run via Attempt.CheckpointPath. Retries — and
	// resumed sweeps re-running a canceled point — pick up from the last
	// capture; a point's checkpoints are deleted once it completes.
	CheckpointDir string
	// Journal, when non-nil, receives every started point's record as it
	// completes. Journal write failures are counted, not fatal.
	Journal *Journal
	// Completed maps spec hashes to prior records (from ReadJournal);
	// points whose hash has a terminal record are skipped and their
	// records replayed into the summary with Reused set.
	Completed map[string]*Record
	// Drain, when non-nil and done, stops dispatching new points while
	// letting in-flight points finish (graceful SIGINT semantics). The
	// ctx passed to Run is the hard stop that also aborts in-flight work.
	Drain context.Context
	// OnEvent, when non-nil, observes pool progress. Called serially.
	OnEvent func(Event)
	// Logger, when non-nil, emits structured per-point lifecycle lines
	// (start/retry/done with the stable obs keys). Orchestration-path
	// only — never consulted inside a running simulation.
	Logger *slog.Logger
	// Provenance, when non-nil, is stamped (with the point's own spec
	// hash) onto every record this pool produces, so journal entries and
	// merged results identify the binary and host that ran them.
	Provenance *obs.Provenance
}

// Timeout-derivation constants. MinCyclesPerSecond is a deliberately
// conservative floor on simulation speed (the simulator sustains tens of
// millions of cycles per second): a point given fewer wall-clock seconds
// than MaxCycles/MinCyclesPerSecond could time out on a healthy run.
const (
	MinCyclesPerSecond   = 500_000
	MinPointTimeout      = time.Minute
	DefaultWallClockCap  = 30 * time.Minute
	DefaultMaxAttempts   = 3
	DefaultBackoffBase   = 250 * time.Millisecond
	DefaultBackoffCap    = 10 * time.Second
	DefaultBackoffJitter = 0.5
)

// Summary aggregates a pool run. Records holds one record per input point
// in input order; skipped points get a synthetic StatusSkipped record.
type Summary struct {
	Records     []*Record
	OK          int // StatusOK (including reused)
	Recovered   int // StatusRecovered (including reused)
	Failed      int // StatusFailed (including reused)
	Canceled    int // StatusCanceled
	Skipped     int // never dispatched
	Reused      int // replayed from a prior journal
	RetriesUsed int
	JournalErrs int
}

func (s *Summary) add(r *Record) {
	switch r.Status {
	case StatusOK:
		s.OK++
	case StatusRecovered:
		s.Recovered++
	case StatusFailed:
		s.Failed++
	case StatusCanceled:
		s.Canceled++
	case StatusSkipped:
		s.Skipped++
	}
	if r.Reused {
		s.Reused++
	}
}

// Complete reports whether every point succeeded (ok or recovered).
func (s *Summary) Complete() bool {
	return s.Failed+s.Canceled+s.Skipped == 0
}

// ExitCode maps the summary onto the CLI exit-code convention: 0 = every
// point succeeded, 3 = partial success (some points succeeded, some failed
// or never ran), 1 = nothing succeeded.
func (s *Summary) ExitCode() int {
	switch {
	case s.Complete():
		return 0
	case s.OK+s.Recovered > 0:
		return 3
	}
	return 1
}

// Run executes the points under opt. ctx is the hard stop: canceling it
// aborts in-flight points (their Run contexts are children of ctx). Use
// opt.Drain for the graceful "finish in-flight, skip the rest" stop. Run
// itself returns an error only for setup problems (duplicate point IDs);
// per-point failures are reported through the summary and journal.
func Run(ctx context.Context, points []Point, opt Options) (*Summary, error) {
	p, err := newPool(points, opt)
	if err != nil {
		return nil, err
	}
	return p.run(ctx, points), nil
}

type pool struct {
	opt     Options
	timeout func(Point) time.Duration
	budget  atomic.Int64 // remaining sweep-wide retries (<0 handled at init)
	retries atomic.Int64 // retries actually used
	jerrs   atomic.Int64 // journal append failures
	eventMu sync.Mutex

	jitterMu  sync.Mutex // workers draw retry jitter concurrently
	jitterRng *fault.Stream
}

func newPool(points []Point, opt Options) (*pool, error) {
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.WallClockCap <= 0 {
		opt.WallClockCap = DefaultWallClockCap
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = DefaultMaxAttempts
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = DefaultBackoffBase
	}
	if opt.BackoffCap <= 0 {
		opt.BackoffCap = DefaultBackoffCap
	}
	seen := make(map[string]bool, len(points))
	for _, pt := range points {
		if seen[pt.ID] {
			return nil, errors.New("runner: duplicate point id " + pt.ID)
		}
		seen[pt.ID] = true
	}
	if opt.CheckpointDir != "" {
		if err := os.MkdirAll(opt.CheckpointDir, 0o777); err != nil {
			return nil, fmt.Errorf("runner: checkpoint dir: %w", err)
		}
	}
	p := &pool{opt: opt}
	p.timeout = func(pt Point) time.Duration {
		if opt.PointTimeout > 0 {
			return opt.PointTimeout
		}
		if pt.MaxCycles == 0 {
			return opt.WallClockCap
		}
		d := time.Duration(pt.MaxCycles/MinCyclesPerSecond) * time.Second
		if d < MinPointTimeout {
			d = MinPointTimeout
		}
		if d > opt.WallClockCap {
			d = opt.WallClockCap
		}
		return d
	}
	if opt.RetryBudget < 0 {
		p.budget.Store(1 << 40)
	} else {
		p.budget.Store(int64(opt.RetryBudget))
	}
	if opt.BackoffJitter == 0 {
		p.opt.BackoffJitter = DefaultBackoffJitter
	}
	if p.opt.BackoffJitter > 0 {
		seed := opt.JitterSeed
		if seed == 0 {
			seed = uint64(time.Now().UnixNano())
		}
		p.jitterRng = fault.NewStream(seed)
	}
	return p, nil
}

func (p *pool) emit(ev Event) {
	if p.opt.OnEvent == nil {
		return
	}
	p.eventMu.Lock()
	defer p.eventMu.Unlock()
	p.opt.OnEvent(ev)
}

func (p *pool) drained(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	if p.opt.Drain != nil && p.opt.Drain.Err() != nil {
		return true
	}
	return false
}

func (p *pool) run(ctx context.Context, points []Point) *Summary {
	records := make([]*Record, len(points))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p.opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A send already pending when the drain fired still
				// delivers; re-check here so the job is skipped instead
				// of started.
				if p.drained(ctx) {
					continue // leave nil => skipped
				}
				records[i] = p.runPoint(ctx, points[i])
			}
		}()
	}
	for i := range points {
		hash := SpecHash(points[i].Spec)
		if prior, ok := p.opt.Completed[hash]; ok && prior.Status.Terminal() {
			r := *prior
			r.Reused = true
			records[i] = &r
			p.emit(Event{Kind: EventSkip, Point: points[i].ID, Record: records[i]})
			continue
		}
		if p.drained(ctx) {
			break // stop dispatching; remaining points stay nil => skipped
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	sum := &Summary{
		Records:     records,
		RetriesUsed: int(p.retries.Load()),
		JournalErrs: int(p.jerrs.Load()),
	}
	for i, r := range records {
		if r == nil {
			r = &Record{ID: points[i].ID, SpecHash: SpecHash(points[i].Spec), Status: StatusSkipped}
			records[i] = r
			p.emit(Event{Kind: EventSkip, Point: r.ID, Record: r})
		}
		sum.add(r)
	}
	return sum
}

// runPoint drives one point through attempts, classification, backoff and
// journaling, and returns its terminal record.
func (p *pool) runPoint(ctx context.Context, pt Point) *Record {
	rec := &Record{ID: pt.ID, SpecHash: SpecHash(pt.Spec), Series: pt.Series}
	rec.Provenance = p.opt.Provenance.WithSpec(rec.SpecHash)
	if p.opt.Logger != nil {
		p.opt.Logger.Debug("point start", obs.KeyPoint, pt.ID, obs.KeySpecHash, rec.SpecHash)
	}
	start := time.Now()
	disableFaults := false
	ckPrefix := p.checkpointPrefix(pt)
	var result any
	for attempt := 0; ; attempt++ {
		rec.Attempts = attempt + 1
		p.emit(Event{Kind: EventStart, Point: pt.ID, Attempt: attempt + 1})
		res, err := p.attempt(ctx, pt, Attempt{Number: attempt, DisableFaults: disableFaults, CheckpointPath: ckPrefix})
		if err == nil {
			rec.Status = StatusOK
			if disableFaults {
				rec.Status = StatusRecovered
			}
			result = res
			if res != nil {
				if b, merr := json.Marshal(res); merr == nil {
					rec.Result = b
				}
			}
			break
		}
		class := Classify(err)
		if ctx.Err() != nil {
			// The sweep was hard-canceled: whatever the run reported
			// (deadline, watchdog racing the abort), the point is
			// incomplete, not failed.
			class = ClassCanceled
		}
		if rec.Error == "" {
			// Keep the *first* failure as the root cause; for a point that
			// later recovers this preserves the original diag snapshot.
			rec.Class = class
			rec.Error = err.Error()
			rec.Diag = SnapshotOf(err)
		}
		faulted := pt.Faulty && !disableFaults
		if class == ClassCanceled {
			rec.Status = StatusCanceled
			break
		}
		if !retryable(class, faulted) || attempt+1 >= p.opt.MaxAttempts || !p.takeRetry() {
			rec.Status = StatusFailed
			break
		}
		if faulted && class != ClassTimeout {
			disableFaults = true
		}
		delay := p.jitter(p.backoff(attempt))
		p.emit(Event{Kind: EventRetry, Point: pt.ID, Attempt: attempt + 1, Err: err, Delay: delay})
		if !sleepCtx(ctx, delay) {
			rec.Status = StatusCanceled
			break
		}
	}
	rec.Seconds = time.Since(start).Seconds()
	if ckPrefix != "" && rec.Status.Terminal() && rec.Status != StatusFailed {
		// The point is done; its checkpoints are dead weight. (Failed
		// points keep theirs for post-mortem restore; canceled points
		// keep theirs so a resumed sweep continues mid-run.)
		removeCheckpoints(ckPrefix)
	}
	if p.opt.Journal != nil {
		if jerr := p.opt.Journal.Append(rec); jerr != nil {
			p.jerrs.Add(1)
		}
	}
	if p.opt.Logger != nil {
		lvl := slog.LevelInfo
		if rec.Status == StatusFailed {
			lvl = slog.LevelError
		}
		p.opt.Logger.Log(ctx, lvl, "point done",
			obs.KeyPoint, pt.ID, obs.KeySpecHash, rec.SpecHash,
			"status", string(rec.Status), "attempts", rec.Attempts,
			"seconds", rec.Seconds, "error", rec.Error)
	}
	ev := Event{Kind: EventDone, Point: pt.ID, Attempt: rec.Attempts, Record: rec, Result: result}
	if rec.Status == StatusFailed || rec.Status == StatusCanceled {
		ev.Err = errors.New(rec.Error)
	}
	p.emit(ev)
	return rec
}

// attempt runs one try under the per-point deadline with panic isolation.
func (p *pool) attempt(ctx context.Context, pt Point, att Attempt) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			// A panic that escaped Point.Run (core.Run recovers its own):
			// isolate it so sibling workers keep running.
			res, err = nil, &diag.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	actx, cancel := context.WithTimeout(ctx, p.timeout(pt))
	defer cancel()
	return pt.Run(actx, att)
}

// checkpointPrefix returns the point's stable checkpoint path prefix
// under Options.CheckpointDir ("" when checkpointing is off). The prefix
// is derived from the point ID alone so a re-run of the same sweep finds
// the previous process's checkpoints.
func (p *pool) checkpointPrefix(pt Point) string {
	return CheckpointPrefix(p.opt.CheckpointDir, pt.ID)
}

// CheckpointPrefix returns the stable checkpoint path prefix a pool with
// Options.CheckpointDir set hands the point via Attempt.CheckpointPath
// ("" when dir is empty). Exported so the sweep service can locate a
// running point's checkpoint files (prefix + ".<label>.ckpt") and ship
// them with lease renewals.
func CheckpointPrefix(dir, id string) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, sanitizeID(id))
}

// sanitizeID maps a point ID onto a safe filename fragment.
func sanitizeID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, id)
}

// removeCheckpoints deletes every checkpoint file under the prefix.
func removeCheckpoints(prefix string) {
	matches, err := filepath.Glob(prefix + ".*.ckpt")
	if err != nil {
		return
	}
	for _, m := range matches {
		_ = os.Remove(m)
	}
}

// takeRetry consumes one unit of the sweep-wide retry budget.
func (p *pool) takeRetry() bool {
	for {
		b := p.budget.Load()
		if b <= 0 {
			return false
		}
		if p.budget.CompareAndSwap(b, b-1) {
			p.retries.Add(1)
			return true
		}
	}
}

// jitter randomizes a backoff delay: d*(1-j) + U[0, d*j). With jitter
// disabled (or a zero delay) it returns d unchanged. Randomizing each
// worker's schedule keeps concurrent retries of the same transient fault
// from synchronizing into a retry storm.
func (p *pool) jitter(d time.Duration) time.Duration {
	if p.jitterRng == nil || d <= 0 {
		return d
	}
	j := p.opt.BackoffJitter
	if j > 1 {
		j = 1
	}
	span := float64(d) * j
	p.jitterMu.Lock()
	u := p.jitterRng.Float()
	p.jitterMu.Unlock()
	return time.Duration(float64(d) - span + u*span)
}

// backoff returns the capped exponential delay before retrying after the
// attempt-th try (0-based).
func (p *pool) backoff(attempt int) time.Duration {
	d := p.opt.BackoffBase
	for i := 0; i < attempt && d < p.opt.BackoffCap; i++ {
		d *= 2
	}
	if d > p.opt.BackoffCap {
		d = p.opt.BackoffCap
	}
	return d
}

// sleepCtx sleeps for d unless ctx ends first; reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
