package runner

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScanJSONL hammers the crash-recovery scanner shared by the sweep
// journal and the sweep-service ledger with arbitrary file contents: torn
// tails, mid-file corruption, empty and garbage lines, binary noise. The
// invariants:
//
//   - ScanJSONL never errors on readable input (a crashed sweep's journal
//     is always replayable) and never panics;
//   - every applied line is one of the input's newline-delimited lines,
//     verbatim (no splicing across line boundaries);
//   - applied + warned covers every non-empty line: nothing is silently
//     dropped.
func FuzzScanJSONL(f *testing.F) {
	rec, _ := json.Marshal(&Record{ID: "a", SpecHash: "h1", Status: StatusOK})
	f.Add([]byte(""))
	f.Add(append(rec, '\n'))
	f.Add(append(append([]byte(nil), rec...), []byte("\n{\"torn")...))                        // torn tail
	f.Add(append([]byte("{\"bad\"\n"), append(append([]byte(nil), rec...), '\n')...))         // mid-file corruption
	f.Add([]byte("\n\n\n"))                                                                   // only blank lines
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', 'x'})                                                // binary noise
	f.Add(append(append(append([]byte(nil), rec...), '\n'), append(rec, '\n', '\n', ' ')...)) // dup + trailing junk

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "scan.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		warned := 0
		var applied [][]byte
		err := ScanJSONL(path,
			func(format string, args ...any) { warned++ },
			func(line []byte) bool {
				var v map[string]any
				if json.Unmarshal(line, &v) != nil {
					return false
				}
				applied = append(applied, append([]byte(nil), line...))
				return true
			})
		if err != nil {
			t.Fatalf("ScanJSONL errored on readable input: %v", err)
		}

		lines := bytes.Split(data, []byte("\n"))
		nonEmpty := 0
		isLine := make(map[string]bool, len(lines))
		for _, l := range lines {
			l = bytes.TrimSuffix(l, []byte("\r")) // bufio.ScanLines strips \r
			if len(l) > 0 {
				nonEmpty++
				isLine[string(l)] = true
			}
		}
		for _, l := range applied {
			if !isLine[string(l)] {
				t.Errorf("applied line %q is not a line of the input", l)
			}
		}
		// The scanner drops a line only with a warning. (bufio treats a
		// final \r\n-free fragment as a line too, so >= not ==.)
		if len(applied)+warned < nonEmpty {
			t.Errorf("%d non-empty lines, but only %d applied + %d warned",
				nonEmpty, len(applied), warned)
		}
	})
}
