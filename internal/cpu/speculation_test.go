package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/memsys"
	"repro/internal/trace"
)

// TestSpeculativeLoadViolationRollsBack constructs the classic SC ordering
// hazard: a speculative load consumes a value early, another processor
// writes the line before the load is allowed to retire, and the core must
// detect the invalidation and re-execute from the load (Section 3.4).
func TestSpeculativeLoadViolationRollsBack(t *testing.T) {
	cfg := config.Default()
	cfg.Consistency = config.SC
	cfg.ConsistencyOpts = config.ImplSpeculative
	ms := memsys.MustNew(cfg)
	locks := newTestLocks()

	c0 := New(cfg, 0, ms.Node(0), locks)
	c1 := New(cfg, 1, ms.Node(1), locks)

	const yAddr = 0x100000 // long-latency blocker at the window head
	const xAddr = 0x200000 // speculatively loaded, then remotely written

	// Pre-home X at node 1 so its write later is fast, and warm node 0's
	// TLBs off the critical path by touching different pages first.
	ms.Node(1).DataWrite(xAddr, 1, 1, false)

	ins0 := []trace.Instr{
		{Op: trace.OpLoad, PC: 4, Addr: yAddr, Dest: 1}, // cold miss: ~100+ cycles at head
		{Op: trace.OpLoad, PC: 8, Addr: xAddr, Dest: 2}, // speculative under SC
		{Op: trace.OpIntALU, PC: 12, Src1: 2, Dest: 3},  // consumes the speculative value
		{Op: trace.OpIntALU, PC: 16, Src1: 1, Dest: 4},
	}
	// Node 1 writes X after a delay long enough for node 0 to have issued
	// the speculative load, but before node 0's head load completes.
	var ins1 []trace.Instr
	pc := uint64(4)
	for i := 0; i < 15; i++ { // ~15 cycles of filler
		ins1 = append(ins1, trace.Instr{Op: trace.OpIntALU, PC: pc, Dest: 1})
		pc += 4
	}
	ins1 = append(ins1, trace.Instr{Op: trace.OpStore, PC: pc, Addr: xAddr, Src1: 1})

	c0.SwitchTo(&Context{ID: 0, Stream: trace.NewSliceStream(ins0)})
	c1.SwitchTo(&Context{ID: 1, Stream: trace.NewSliceStream(ins1)})

	for cycle := uint64(1); cycle < 1_000_000; cycle++ {
		c0.Tick(cycle)
		c1.Tick(cycle)
		if c0.NeedsSwitch() && c1.NeedsSwitch() {
			break
		}
	}
	if c0.Retired != uint64(len(ins0)) {
		t.Fatalf("core 0 retired %d of %d", c0.Retired, len(ins0))
	}
	if c0.SpecLoads == 0 {
		t.Fatal("no speculative loads issued under SC+speculation")
	}
	if c0.Violations == 0 {
		t.Fatal("remote write during speculation did not trigger a violation")
	}
	if c0.Rollbacks == 0 {
		t.Fatal("violation did not cause a rollback")
	}
}

// TestNoViolationWithoutConflict: the same program with no remote writer
// must complete without rollbacks.
func TestNoViolationWithoutConflict(t *testing.T) {
	cfg := config.Default()
	cfg.Nodes = 1
	cfg.Consistency = config.SC
	cfg.ConsistencyOpts = config.ImplSpeculative
	ms := memsys.MustNew(cfg)
	c := New(cfg, 0, ms.Node(0), newTestLocks())
	ins := []trace.Instr{
		{Op: trace.OpLoad, PC: 4, Addr: 0x100000, Dest: 1},
		{Op: trace.OpLoad, PC: 8, Addr: 0x200000, Dest: 2},
		{Op: trace.OpIntALU, PC: 12, Src1: 2, Dest: 3},
	}
	c.SwitchTo(&Context{ID: 0, Stream: trace.NewSliceStream(ins)})
	for cycle := uint64(1); cycle < 100_000 && !c.NeedsSwitch(); cycle++ {
		c.Tick(cycle)
	}
	if c.Retired != 3 {
		t.Fatalf("retired %d", c.Retired)
	}
	if c.Violations != 0 || c.Rollbacks != 0 {
		t.Errorf("spurious violations=%d rollbacks=%d", c.Violations, c.Rollbacks)
	}
}
