package cpu

import (
	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/stats"
)

// latchPolicy is the pluggable lock-acquisition path: how a lock acquire
// and its matching release execute at retirement. The policy is selected
// per-run from config.LatchPolicy; the plain policy is the pre-existing
// spin + read-modify-write path, the hints policy layers the paper's
// software prefetch+flush hints (Section 4.2) on it, and the htm policy
// elides the latch with a best-effort hardware transaction
// (internal/htm). Both hooks run with the entry at the window head and
// its fetchDone <= now already established by tryRetire.
type latchPolicy interface {
	acquire(c *Core, i uint64, now uint64) (bool, stats.Category)
	release(c *Core, i uint64, now uint64) (bool, stats.Category)
}

// LockViewer is optionally implemented by a LockManager to expose a
// non-mutating availability check: whether a TryAcquire by proc at now
// would succeed, without taking the lock. The HTM elision path uses it
// to decide whether speculation may start (a latch held by a real owner
// cannot be elided) without perturbing the lock table.
type LockViewer interface {
	LockFree(addr uint64, proc int, now uint64) bool
}

// newLatchPolicy selects the policy for cfg.
func newLatchPolicy(cfg config.Config) latchPolicy {
	switch cfg.LatchPolicy {
	case config.LatchHints:
		return hintLatch{}
	case config.LatchHTM:
		return htmLatch{}
	}
	return plainLatch{}
}

// ------------------------------------------------------------------ plain --

// plainLatch is the baseline path: spin on TryAcquire, then perform the
// winning read-modify-write (the migratory lock-passing transfer); the
// release is a store (direct under SC, via the write buffer under PC/RC).
type plainLatch struct{}

func (plainLatch) acquire(c *Core, i uint64, now uint64) (bool, stats.Category) {
	if c.rFlags[i]&fIssuedMem == 0 {
		c.LockTries++
		if !c.locks.TryAcquire(c.rIn[i].Addr, c.ctx.ID, now) {
			if c.rFlags[i]&fWaited == 0 {
				c.LockWaits++
				c.rFlags[i] |= fWaited
			}
			c.LockSpins++
			if c.trc != nil {
				c.trc.LockSpin(c.id, c.ctx.ID, c.rIn[i].PC, c.rIn[i].Addr, now)
			}
			return false, stats.Sync
		}
		// The winning read-modify-write brings the lock line in
		// exclusive; this is the lock-passing (migratory) transfer.
		res := c.mem.DataWrite(c.rIn[i].Addr, c.rIn[i].PC, now, true)
		c.rFlags[i] |= fIssuedMem
		c.rComplete[i] = res.Done
		if c.trc != nil {
			c.trc.LockAcquired(c.id, c.ctx.ID, c.rIn[i].PC, c.rIn[i].Addr, now, c.rComplete[i])
		}
	}
	if c.rComplete[i] > now {
		return false, stats.Sync
	}
	c.ctx.csDepth++
	return true, 0
}

func (plainLatch) release(c *Core, i uint64, now uint64) (bool, stats.Category) {
	if c.cfg.Consistency == config.SC {
		if c.rFlags[i]&fIssuedMem == 0 {
			res := c.mem.DataWrite(c.rIn[i].Addr, c.rIn[i].PC, now, true)
			c.rFlags[i] |= fIssuedMem
			c.rComplete[i] = res.Done
		}
		if c.rComplete[i] > now {
			return false, stats.Sync
		}
		c.locks.Release(c.rIn[i].Addr, c.ctx.ID, c.rComplete[i])
		if c.trc != nil {
			c.trc.LockReleased(c.id, c.ctx.ID, c.rIn[i].Addr, c.rComplete[i])
		}
		c.ctx.csDepth--
		return true, 0
	}
	if c.wbufLen() >= c.cfg.WriteBufEntries {
		return false, stats.Write
	}
	c.wbuf = append(c.wbuf, wbufEntry{addr: c.rIn[i].Addr, pc: c.rIn[i].PC, inCS: true, release: true})
	c.ctx.csDepth--
	return true, 0
}

// ------------------------------------------------------------------ hints --

// hintLatch is the paper's software-hint treatment applied to the latch
// line itself: while spinning, a one-shot exclusive prefetch pulls the
// lock line toward the waiter so the winning read-modify-write performs
// locally; the release is followed by a flush that pushes the dirty
// latch line back to memory, converting the next waiter's dirty
// (3-hop cache-to-cache) miss into a memory service.
type hintLatch struct{}

func (hintLatch) acquire(c *Core, i uint64, now uint64) (bool, stats.Category) {
	if c.rFlags[i]&fIssuedMem == 0 {
		c.LockTries++
		if !c.locks.TryAcquire(c.rIn[i].Addr, c.ctx.ID, now) {
			if c.rFlags[i]&fWaited == 0 {
				c.LockWaits++
				c.rFlags[i] |= fWaited
			}
			if c.rFlags[i]&fPrefetch == 0 {
				// One prefetch per contended acquire: issued alongside the
				// first failing attempt, like the hand-inserted hint.
				c.mem.Prefetch(c.rIn[i].Addr, c.rIn[i].PC, now, true, true)
				c.rFlags[i] |= fPrefetch
			}
			c.LockSpins++
			if c.trc != nil {
				c.trc.LockSpin(c.id, c.ctx.ID, c.rIn[i].PC, c.rIn[i].Addr, now)
			}
			return false, stats.Sync
		}
		res := c.mem.DataWrite(c.rIn[i].Addr, c.rIn[i].PC, now, true)
		c.rFlags[i] |= fIssuedMem
		c.rComplete[i] = res.Done
		if c.trc != nil {
			c.trc.LockAcquired(c.id, c.ctx.ID, c.rIn[i].PC, c.rIn[i].Addr, now, c.rComplete[i])
		}
	}
	if c.rComplete[i] > now {
		return false, stats.Sync
	}
	c.ctx.csDepth++
	return true, 0
}

func (hintLatch) release(c *Core, i uint64, now uint64) (bool, stats.Category) {
	if c.cfg.Consistency == config.SC {
		if c.rFlags[i]&fIssuedMem == 0 {
			res := c.mem.DataWrite(c.rIn[i].Addr, c.rIn[i].PC, now, true)
			c.rFlags[i] |= fIssuedMem
			c.rComplete[i] = res.Done
		}
		if c.rComplete[i] > now {
			return false, stats.Sync
		}
		c.locks.Release(c.rIn[i].Addr, c.ctx.ID, c.rComplete[i])
		if c.trc != nil {
			c.trc.LockReleased(c.id, c.ctx.ID, c.rIn[i].Addr, c.rComplete[i])
		}
		// Release-side flush hint: push the dirty latch line home so the
		// next acquirer reads it from memory, not cache-to-cache.
		c.mem.Flush(c.rIn[i].Addr, now)
		c.ctx.csDepth--
		return true, 0
	}
	if c.wbufLen() >= c.cfg.WriteBufEntries {
		return false, stats.Write
	}
	c.wbuf = append(c.wbuf, wbufEntry{addr: c.rIn[i].Addr, pc: c.rIn[i].PC, inCS: true, release: true, flushAfter: true})
	c.ctx.csDepth--
	return true, 0
}

// -------------------------------------------------------------------- htm --

// htmLatch elides the latch with a best-effort hardware transaction: the
// acquire subscribes the free lock line with a plain read (no
// read-modify-write, no ownership transfer — the migratory ping-pong the
// elision removes) and the critical section runs speculatively, its
// read/write set tracked at the memory-issue points. All abort handling
// is resolved while the outermost release stalls at the window head,
// driven by the transaction's per-cycle Resolve decision: retry windows
// for conflicts, then a fallback spin on the real latch, a redo of the
// measured critical section under it, and the latch read-modify-write —
// so forward progress is never speculative.
type htmLatch struct{}

// htmStallCat maps the abort cause under resolution to the stall
// category its cycles are charged to.
func htmStallCat(cause htm.AbortCause) stats.Category {
	switch cause {
	case htm.AbortCapacity:
		return stats.HTMCapacity
	case htm.AbortExplicit:
		return stats.HTMExplicit
	}
	return stats.HTMConflict
}

// htmAborted bumps the per-cause abort counter and records the trace
// event for a transaction that just aborted.
func (c *Core) htmAborted(tx *htm.Tx, line uint64) {
	switch tx.Cause() {
	case htm.AbortConflict:
		c.HTMConflictAborts++
	case htm.AbortCapacity:
		c.HTMCapacityAborts++
	default:
		c.HTMExplicitAborts++
	}
	if c.trc != nil {
		proc := -1
		if c.ctx != nil {
			proc = c.ctx.ID
		}
		c.trc.HTMAbort(c.id, proc, tx.Latch(), tx.Cause(), line, c.nowCycle)
	}
}

// lockFree reports whether a TryAcquire would succeed, without mutating
// the lock table (true when the manager exposes no view).
func (c *Core) lockFree(addr uint64, now uint64) bool {
	if c.viewer == nil {
		return true
	}
	return c.viewer.LockFree(addr, c.ctx.ID, now)
}

// tx returns the running context's transaction, creating it on first use
// (each process speculates with its own transaction context).
func (c *Core) tx() *htm.Tx {
	if c.ctx.tx == nil {
		c.ctx.tx = htm.New(c.htmCfg)
	}
	return c.ctx.tx
}

func (htmLatch) acquire(c *Core, i uint64, now uint64) (bool, stats.Category) {
	tx := c.tx()
	if c.rFlags[i]&fIssuedMem == 0 {
		if tx.Phase() == htm.PhaseIdle {
			// Top-level acquire: speculation can only start on a free
			// latch (a real owner's critical section cannot be elided
			// around); wait like a plain spinner until it frees.
			if !c.lockFree(c.rIn[i].Addr, now) {
				c.LockTries++
				if c.rFlags[i]&fWaited == 0 {
					c.LockWaits++
					c.rFlags[i] |= fWaited
				}
				c.LockSpins++
				if c.trc != nil {
					c.trc.LockSpin(c.id, c.ctx.ID, c.rIn[i].PC, c.rIn[i].Addr, now)
				}
				return false, stats.Sync
			}
			// Elide: subscribe the latch line with a plain shared read —
			// no read-modify-write, no exclusive transfer. Every
			// concurrent speculator holds the line shared; only a
			// fallback acquirer's real write invalidates them.
			res := c.mem.DataRead(c.rIn[i].Addr, c.rIn[i].PC, now, true)
			c.rFlags[i] |= fIssuedMem
			c.rComplete[i] = res.Done
			c.rLineAddr[i] = res.LineAddr
			c.HTMBegins++
			tx.Begin(c.rIn[i].Addr, now)
			if c.trc != nil {
				c.trc.HTMBegin(c.id, c.ctx.ID, c.rIn[i].PC, c.rIn[i].Addr, now)
			}
			if tx.TrackRead(res.LineAddr) {
				c.htmAborted(tx, res.LineAddr)
			}
		} else {
			// Nested acquire flattens into the running transaction. A
			// nested latch held by a real (fallback) owner cannot be
			// waited on inside the speculation: explicit abort.
			avail := c.lockFree(c.rIn[i].Addr, now)
			res := c.mem.DataRead(c.rIn[i].Addr, c.rIn[i].PC, now, true)
			c.rFlags[i] |= fIssuedMem
			c.rComplete[i] = res.Done
			c.rLineAddr[i] = res.LineAddr
			if tx.Enter(avail) {
				c.htmAborted(tx, res.LineAddr)
			} else if tx.TrackRead(res.LineAddr) {
				c.htmAborted(tx, res.LineAddr)
			}
		}
	}
	if c.rComplete[i] > now {
		return false, stats.Sync
	}
	c.ctx.csDepth++
	return true, 0
}

func (htmLatch) release(c *Core, i uint64, now uint64) (bool, stats.Category) {
	tx := c.ctx.tx
	if tx == nil || tx.Phase() == htm.PhaseIdle {
		// No transaction pairs with this release (an acquire retired
		// before the policy engaged); take the plain path.
		return plainLatch{}.release(c, i, now)
	}
	if tx.Depth() > 1 {
		tx.Exit()
		c.ctx.csDepth--
		return true, 0
	}
	// The transaction's buffered stores must perform before it resolves:
	// commit requires its writes globally performed (eager version
	// management), and abort detection must see them in the write set.
	if c.wbufLen() != 0 {
		return false, stats.Sync
	}
	// Outermost release: drive the resolution state machine one cycle.
	switch tx.Resolve(now) {
	case htm.DecideCommit:
		c.HTMCommits++
		if c.trc != nil {
			c.trc.HTMCommit(c.id, c.ctx.ID, c.rIn[i].PC, tx.Latch(), tx.BeginCycle(), now)
		}
		tx.Commit()
		c.ctx.csDepth--
		return true, 0

	case htm.DecideWait:
		// Retry backoff / re-execution, or the redo under the fallback
		// latch: stall, charged to the abort cause being resolved.
		return false, htmStallCat(tx.Cause())

	case htm.DecideSpin:
		c.LockTries++
		if !c.locks.TryAcquire(c.rIn[i].Addr, c.ctx.ID, now) {
			if c.rFlags[i]&fWaited == 0 {
				c.LockWaits++
				c.rFlags[i] |= fWaited
			}
			c.LockSpins++
			if c.trc != nil {
				c.trc.LockSpin(c.id, c.ctx.ID, c.rIn[i].PC, c.rIn[i].Addr, now)
			}
			return false, htmStallCat(tx.Cause())
		}
		// Fallback: the real latch is ours. The acquire read-modify-write
		// performs now — invalidating the latch line every still-
		// speculating core subscribed, which is what keeps fallback and
		// elision coherent.
		c.HTMFallbacks++
		res := c.mem.DataWrite(c.rIn[i].Addr, c.rIn[i].PC, now, true)
		c.rFlags[i] |= fIssuedMem
		c.rComplete[i] = res.Done
		if c.trc != nil {
			c.trc.HTMFallback(c.id, c.ctx.ID, c.rIn[i].PC, c.rIn[i].Addr, tx.Cause(), now)
			c.trc.LockAcquired(c.id, c.ctx.ID, c.rIn[i].PC, c.rIn[i].Addr, now, res.Done)
		}
		tx.FallbackAcquired(res.Done)
		return false, htmStallCat(tx.Cause())

	case htm.DecideRMW:
		// Redo finished under the latch; the releasing store performs
		// and frees it.
		if c.rFlags[i]&fPrefetch == 0 {
			res := c.mem.DataWrite(c.rIn[i].Addr, c.rIn[i].PC, now, true)
			c.rFlags[i] |= fPrefetch
			c.rComplete[i] = res.Done
		}
		if c.rComplete[i] > now {
			return false, htmStallCat(tx.Cause())
		}
		c.locks.Release(c.rIn[i].Addr, c.ctx.ID, c.rComplete[i])
		if c.trc != nil {
			c.trc.LockReleased(c.id, c.ctx.ID, c.rIn[i].Addr, c.rComplete[i])
		}
		tx.Reset()
		c.ctx.csDepth--
		return true, 0
	}
	return true, 0
}

// trackRead feeds a performed load into the running transaction's read
// set (no-op outside an active speculation).
func (c *Core) trackRead(lineAddr uint64) {
	if tx := c.ctx.tx; tx != nil && tx.TrackRead(lineAddr) {
		c.htmAborted(tx, lineAddr)
	}
}

// trackWrite feeds a performed store into the running transaction's
// write set (no-op outside an active speculation).
func (c *Core) trackWrite(lineAddr uint64) {
	if tx := c.ctx.tx; tx != nil && tx.TrackWrite(lineAddr) {
		c.htmAborted(tx, lineAddr)
	}
}
