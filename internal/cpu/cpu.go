// Package cpu implements the processor model of the simulated machine: an
// aggressive out-of-order core with multiple issue, a reorder-buffer
// instruction window, non-blocking loads, speculative execution behind a
// hybrid branch predictor, a load/store queue and write buffer, and
// implementations of three memory consistency models (SC, PC, RC) in
// straightforward, hardware-prefetching, and speculative-load variants
// (Sections 2.4 and 3.4 of the paper). An in-order mode issues instructions
// strictly in program order, stalling at the first unavailable dependence.
//
// The core is trace-driven: mispredicted branches stall fetch until the
// branch resolves (wrong-path instructions are not simulated), exactly as
// in the paper's methodology. Stall time is attributed with the paper's
// retire-based convention: each cycle, retired/max-retire counts as busy
// and the remainder is charged to the first instruction that could not
// retire.
package cpu

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracing"
)

// LockManager mediates the simulated lock values shared by all processors
// (the paper maintains lock memory locations in the simulated environment
// to model inter-process synchronization faithfully).
type LockManager interface {
	// TryAcquire attempts to take the lock at addr for process proc at
	// cycle now, returning false if it is held elsewhere.
	TryAcquire(addr uint64, proc int, now uint64) bool
	// Release frees the lock; it becomes acquirable at availableAt.
	Release(addr uint64, proc int, availableAt uint64)
}

// Context is one simulated server process. Pipeline state lives in the
// core; the pipeline drains before a context switch.
type Context struct {
	ID     int
	Stream trace.Stream

	Retired      uint64
	BlockedUntil uint64  // cycle the blocking system call completes
	Finished     bool    // trace exhausted and pipeline drained
	csDepth      int     // lock-acquire nesting (critical-section tracking)
	tx           *htm.Tx // per-process elision transaction (LatchPolicy=htm)
}

// InCriticalSection reports whether the process currently holds a lock.
func (c *Context) InCriticalSection() bool { return c.csDepth > 0 }

const (
	stWaiting uint8 = iota // in window, not yet executing
	stExec                 // executing or memory outstanding; complete valid
)

// noProd marks "no producer" in the rename table (sequence numbers start
// at 1).
const noProd uint64 = 0

const farFuture = ^uint64(0) >> 2

// Reorder-buffer entry flags, packed one byte per entry so the coherence
// hook and the issue scan test them with a single load.
const (
	fIssuedMem uint8 = 1 << iota
	fPerformed
	fSpecLoad
	fViolated
	fPrefetch // consistency prefetch already issued
	fMispred
	fWaited // lock acquire already counted as contended
	fTLBMiss
)

type fqEntry struct {
	in        trace.Instr
	fetchDone uint64
	mispred   bool
}

type wbufEntry struct {
	addr       uint64
	pc         uint64
	done       uint64
	isWMB      bool
	isFlush    bool // software flush hint: executes once prior stores perform
	issued     bool
	inCS       bool
	release    bool // lock-release store: frees the lock when performed
	flushAfter bool // hints policy: flush the latch line after the release
}

// Core is one simulated processor.
type Core struct {
	cfg    config.Config
	id     int
	mem    *memsys.Hierarchy
	pred   *bpred.Predictor
	locks  LockManager
	prober LockProber // optional view of locks for NextEvent (nil = none)

	latch         latchPolicy
	latchMirrored bool       // lock ops have exact NextEvent mirrors (plain/hints)
	viewer        LockViewer // optional non-mutating availability view (nil = none)
	htmCfg        htm.Config
	nowCycle      uint64 // current cycle, for async-hook event timestamps

	ctx *Context
	trc *tracing.Tracer // nil = tracing disabled (pure-observer event hooks)

	// The reorder buffer is a struct-of-arrays ring: the issue scan, the
	// NextEvent mirror, and the coherence hook walk the window every cycle
	// touching only a few fields per entry, so each field lives in its own
	// dense array (the whole state array is one cache line at window 64)
	// instead of strided across ~100-byte records. All arrays share the
	// ring geometry: index = seq & robMask. An entry's sequence number is
	// not stored — it is the loop variable everywhere one is needed.
	rIn        []trace.Instr // decoded instruction (written once at dispatch)
	rOp        []trace.Op    // rIn[i].Op, mirrored for scan locality
	rState     []uint8
	rFlags     []uint8
	rFetchDone []uint64
	rProd1     []uint64 // producer sequence numbers (noProd = ready)
	rProd2     []uint64
	rComplete  []uint64
	rAddrDone  []uint64 // address-generation completion (0 = not yet)
	rLineAddr  []uint64
	rClass     []memsys.Class
	// rNotBefore caches, per waiting entry, a proven lower bound on the
	// cycle it could next make issue progress (0 = none; recheck). Bounds
	// derive only from immutable inputs — the entry's fetchDone, and the
	// completion times of producers that have already started executing —
	// so they stay valid until the entry issues or is reused; rollback,
	// which can legitimately re-time producers, clears the whole cache.
	// Purely an issue-scan skip: hits and misses make identical decisions.
	rNotBefore []uint64
	robMask    uint64 // ring capacity - 1; capacity rounded to a power of two
	headSeq    uint64 // oldest in-flight sequence number
	tailSeq    uint64 // next sequence number to allocate
	rename     [trace.MaxReg + 1]uint64
	memInROB   int
	waiting    int    // in-window entries not yet executing (issue-scan skip)
	fenceCount int    // unretired MB/lock-acquire entries in the window
	scanFrom   uint64 // issue-scan fast-path start (RC, no fences)
	// issueQuiet is the whole-scan skip horizon: a cycle before which no
	// in-window entry can issue, proven when an entire RC scan fails with
	// every waiting entry carrying a sound not-before bound. While
	// now < issueQuiet the issue stage is a no-op and is skipped entirely.
	// Dispatch (new candidates), rollback, and restore clear it. Derived
	// state: skipped scans would have made no decision, so timing and
	// checkpoints are unchanged.
	issueQuiet uint64

	fetchQ       []fqEntry
	fqHead       int
	curLine      uint64
	lineValid    bool
	fetchReady   uint64 // icache stall: no fetch before this cycle
	blockBranch  uint64 // seq of unresolved mispredicted branch (0 = none)
	resumeAt     uint64 // fetch resumes at this cycle after a redirect
	unresolved   int    // speculated (in-flight, predicted) branches
	pendingSys   bool
	pendingSysNs uint32
	streamEnded  bool
	stallInstr   bool        // last fetch stall was the icache/iTLB
	poked        bool        // async wake: a line invalidation marked a violation
	inScratch    trace.Instr // fetch-loop decode buffer (kept off the heap's per-call path)

	wbuf   []wbufEntry
	wbHead int // index of the oldest buffered store (pop without realloc)

	// Debug-mode (cfg.DebugChecks) memory-ordering watermarks: perform-time
	// stamps that must be monotone under the consistency model's rules.
	dbgLastPerform   uint64 // SC: last perform time of any memory op
	dbgLastLoadBind  uint64 // PC: last cycle a load bound its value
	dbgLastStoreDone uint64 // PC: perform time of the last buffered store

	// Statistics.
	Bk         stats.Breakdown
	Retired    uint64
	Rollbacks  uint64
	LockSpins  uint64 // cycles spent spinning
	LockTries  uint64
	LockWaits  uint64 // acquires that found the lock held
	SpecLoads  uint64
	Violations uint64
	// HTM elision lifecycle counters (LatchPolicy=htm; zero otherwise).
	HTMBegins         uint64
	HTMCommits        uint64
	HTMConflictAborts uint64
	HTMCapacityAborts uint64
	HTMExplicitAborts uint64
	HTMFallbacks      uint64
	// ROBOcc is the instruction-window occupancy histogram, in cycles
	// with a context scheduled: bucket 0 is an empty window, buckets 1-4
	// the occupied quartiles. Telemetry samples interval deltas of it.
	ROBOcc [5]uint64
}

// New builds a core for node id using hierarchy mem and lock manager locks.
func New(cfg config.Config, id int, mem *memsys.Hierarchy, locks LockManager) *Core {
	if cfg.InOrder {
		// An in-order pipeline has no reorder buffer: the "window" is a
		// short issue queue, and fetch is only lightly decoupled from
		// execute. (The out-of-order core's ability to keep fetching and
		// overlapping instruction misses during stalls is one of the
		// paper's observed advantages.)
		if cfg.WindowSize > 2*cfg.IssueWidth+8 {
			cfg.WindowSize = 2*cfg.IssueWidth + 8
		}
		if cfg.FetchBufferEntries > 2*cfg.IssueWidth {
			cfg.FetchBufferEntries = 2 * cfg.IssueWidth
		}
	}
	c := &Core{
		cfg: cfg,
		id:  id,
		mem: mem,
		pred: bpred.New(bpred.Config{
			PAEntries:   cfg.BPredPAEntries,
			HistoryBits: cfg.BPredHistoryBits,
			BTBEntries:  cfg.BTBEntries,
			BTBAssoc:    cfg.BTBAssoc,
			RASEntries:  cfg.RASEntries,
			Perfect:     cfg.PerfectBPred,
		}),
		locks: locks,
	}
	// The ROB ring is indexed by sequence number modulo its capacity on
	// every pipeline-stage touch; rounding the backing array up to a power
	// of two turns that modulo into a mask (the division was the hottest
	// instruction in the whole simulator). Occupancy is still bounded by
	// cfg.WindowSize at dispatch.
	robCap := 1
	for robCap < cfg.WindowSize {
		robCap <<= 1
	}
	c.rIn = make([]trace.Instr, robCap)
	c.rOp = make([]trace.Op, robCap)
	c.rState = make([]uint8, robCap)
	c.rFlags = make([]uint8, robCap)
	c.rFetchDone = make([]uint64, robCap)
	c.rProd1 = make([]uint64, robCap)
	c.rProd2 = make([]uint64, robCap)
	c.rComplete = make([]uint64, robCap)
	c.rAddrDone = make([]uint64, robCap)
	c.rLineAddr = make([]uint64, robCap)
	c.rClass = make([]memsys.Class, robCap)
	c.rNotBefore = make([]uint64, robCap)
	c.robMask = uint64(robCap - 1)
	c.headSeq, c.tailSeq = 1, 1
	if p, ok := locks.(LockProber); ok {
		c.prober = p
	}
	if v, ok := locks.(LockViewer); ok {
		c.viewer = v
	}
	c.latch = newLatchPolicy(cfg)
	c.latchMirrored = cfg.LatchPolicy != config.LatchHTM
	if cfg.LatchPolicy == config.LatchHTM {
		c.htmCfg = htm.Config{
			ReadSetLines:  cfg.HTMReadSetLines(),
			WriteSetLines: cfg.HTMWriteSetLines(),
			MaxRetries:    cfg.HTM.MaxRetries,
			BackoffCycles: cfg.HTM.BackoffCycles,
		}
	}
	mem.SetInvalidationHook(c.onInvalidation)
	return c
}

// SetTracer attaches (or with nil detaches) the event tracer. The tracer
// is a pure observer: attaching it does not change simulated timing.
func (c *Core) SetTracer(t *tracing.Tracer) { c.trc = t }

// Predictor exposes the branch predictor for reporting.
func (c *Core) Predictor() *bpred.Predictor { return c.pred }

// Context returns the running process (nil when idle).
func (c *Core) Context() *Context { return c.ctx }

// ix maps a sequence number to its ring index.
func (c *Core) ix(seq uint64) uint64 { return seq & c.robMask }

func (c *Core) robLen() int { return int(c.tailSeq - c.headSeq) }

func (c *Core) wbufLen() int { return len(c.wbuf) - c.wbHead }

// Empty reports whether the pipeline has fully drained.
func (c *Core) Empty() bool {
	return c.robLen() == 0 && c.fqHead >= len(c.fetchQ) && c.wbufLen() == 0
}

// NeedsSwitch reports that the running process hit a blocking system call
// (or finished its trace) and the pipeline has drained; the scheduler
// should switch.
func (c *Core) NeedsSwitch() bool {
	return c.ctx != nil && c.Empty() && (c.pendingSys || c.streamEnded)
}

// TakeContext removes the running process for a context switch, applying
// the pending blocking-call latency. The pipeline must be empty.
func (c *Core) TakeContext(now uint64) *Context {
	if !c.Empty() {
		panic("cpu: context switch with non-empty pipeline")
	}
	ctx := c.ctx
	// Descheduling a speculating process aborts its transaction (the
	// context switch spills state the hardware cannot keep watching).
	if ctx != nil && ctx.tx != nil && ctx.tx.AbortExplicit() {
		c.htmAborted(ctx.tx, 0)
	}
	c.ctx = nil
	if ctx != nil {
		if c.pendingSys {
			ctx.BlockedUntil = now + uint64(c.pendingSysNs)
		}
		if c.streamEnded {
			ctx.Finished = true
		}
	}
	c.pendingSys = false
	c.pendingSysNs = 0
	c.streamEnded = false
	return ctx
}

// SwitchTo installs a process on the core. TLBs are flushed (separate
// address-space identifiers are not modelled, as in the traced system's
// process-per-server design).
func (c *Core) SwitchTo(ctx *Context) {
	if c.ctx != nil {
		panic("cpu: SwitchTo with a process still installed")
	}
	c.ctx = ctx
	c.lineValid = false
	c.fetchQ = c.fetchQ[:0]
	c.fqHead = 0
	c.fetchReady = 0
	c.resumeAt = 0
	c.blockBranch = 0
	c.unresolved = 0
	c.issueQuiet = 0
	c.rename = [trace.MaxReg + 1]uint64{}
	c.mem.FlushTLBs()
}

// onInvalidation is the coherence callback used to detect speculative-load
// ordering violations: any outstanding speculative load whose line is
// invalidated or replaced must be squashed and re-executed (Section 3.4).
// Under LatchPolicy=htm it additionally feeds the running hardware
// transaction's conflict detection: a coherence invalidation hitting the
// read/write set is a conflict abort, a local eviction a capacity abort.
func (c *Core) onInvalidation(lineAddr uint64, eviction bool) {
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		i := seq & c.robMask
		if c.rFlags[i]&(fSpecLoad|fViolated) == fSpecLoad &&
			c.rState[i] == stExec && c.rLineAddr[i] == lineAddr {
			c.rFlags[i] |= fViolated
			// Invalidate any cached NextEvent bound: the violation makes the
			// rollback (and everything after it) due earlier than predicted.
			c.poked = true
		}
	}
	if c.ctx != nil && c.ctx.tx != nil && c.ctx.tx.OnInvalidation(lineAddr, eviction) {
		c.htmAborted(c.ctx.tx, lineAddr)
		c.poked = true
	}
}

// TakePoked reports and clears the asynchronous-wake flag: another core's
// store invalidated a line under one of this core's speculative loads since
// the last call, which voids any previously returned NextEvent bound.
func (c *Core) TakePoked() bool {
	p := c.poked
	c.poked = false
	return p
}

// Tick advances the core by one cycle.
func (c *Core) Tick(now uint64) {
	if c.ctx == nil {
		return
	}
	c.nowCycle = now
	if n := c.robLen(); n == 0 {
		c.ROBOcc[0]++
	} else if b := (4*n + c.cfg.WindowSize - 1) / c.cfg.WindowSize; b > 4 {
		c.ROBOcc[4]++
	} else {
		c.ROBOcc[b]++
	}
	c.drainWbuf(now)
	c.retireStage(now)
	c.issueStage(now)
	c.dispatchStage(now)
	c.fetchStage(now)
}

// String summarizes the core state (debugging aid).
func (c *Core) String() string {
	return fmt.Sprintf("core%d rob=%d fq=%d wbuf=%d retired=%d",
		c.id, c.robLen(), len(c.fetchQ)-c.fqHead, c.wbufLen(), c.Retired)
}
