package cpu

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/htm"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Checkpoint DTOs for one processor and its process contexts. Static
// structure (config, memory hierarchy wiring, latch policy, predictor
// geometry) is rebuilt by New from the same configuration; Snapshot
// captures only the dynamic pipeline and statistics state. The trace
// stream attached to each context is NOT serialized — workloads rebuild
// their streams deterministically and the caller re-attaches them.

// ContextState is one process context. The elision transaction is
// carried inline when present.
type ContextState struct {
	ID           int
	Retired      uint64
	BlockedUntil uint64
	Finished     bool
	CSDepth      int
	HasTx        bool
	Tx           htm.TxState
}

// Snapshot captures a process context (minus its trace stream).
func (c *Context) Snapshot() ContextState {
	s := ContextState{
		ID:           c.ID,
		Retired:      c.Retired,
		BlockedUntil: c.BlockedUntil,
		Finished:     c.Finished,
		CSDepth:      c.csDepth,
	}
	if c.tx != nil {
		s.HasTx = true
		s.Tx = c.tx.Snapshot()
	}
	return s
}

// Restore refills a process context. htmCfg sizes the transaction
// context when one was captured (the core's HTMCfg).
func (c *Context) Restore(s ContextState, htmCfg htm.Config) {
	c.Retired = s.Retired
	c.BlockedUntil = s.BlockedUntil
	c.Finished = s.Finished
	c.csDepth = s.CSDepth
	if s.HasTx {
		c.tx = htm.New(htmCfg)
		c.tx.Restore(s.Tx)
	} else {
		c.tx = nil
	}
}

// HTMCfg exposes the core's transaction bounds so the caller can restore
// per-context transactions.
func (c *Core) HTMCfg() htm.Config { return c.htmCfg }

// ROBEntryState mirrors robEntry.
type ROBEntryState struct {
	FetchDone uint64
	Prod1     uint64
	Prod2     uint64
	Complete  uint64
	AddrDone  uint64
	State     uint8
	IssuedMem bool
	Performed bool
	SpecLoad  bool
	Violated  bool
	Prefetch  bool
	Mispred   bool
	Waited    bool
	In        trace.Instr
	Seq       uint64
	LineAddr  uint64
	Class     uint8
	TLBMiss   bool
}

// FQEntryState mirrors fqEntry.
type FQEntryState struct {
	In        trace.Instr
	FetchDone uint64
	Mispred   bool
}

// WbufEntryState mirrors wbufEntry.
type WbufEntryState struct {
	Addr       uint64
	PC         uint64
	Done       uint64
	IsWMB      bool
	IsFlush    bool
	Issued     bool
	InCS       bool
	Release    bool
	FlushAfter bool
}

// CoreState is the dynamic state of a Core.
type CoreState struct {
	NowCycle uint64
	CtxID    int // installed process context, -1 when idle

	ROB        []ROBEntryState // in-flight window [headSeq, tailSeq), in order
	HeadSeq    uint64
	TailSeq    uint64
	Rename     [trace.MaxReg + 1]uint64
	MemInROB   int
	Waiting    int
	FenceCount int
	ScanFrom   uint64

	FetchQ      []FQEntryState // logical queue (head compacted to 0)
	CurLine     uint64
	LineValid   bool
	FetchReady  uint64
	BlockBranch uint64
	ResumeAt    uint64
	Unresolved  int
	PendingSys  bool
	PendingSysN uint32
	StreamEnded bool
	StallInstr  bool
	Poked       bool

	Wbuf []WbufEntryState // logical buffer (head compacted to 0)

	DbgLastPerform   uint64
	DbgLastLoadBind  uint64
	DbgLastStoreDone uint64

	Bk         stats.Breakdown
	Retired    uint64
	Rollbacks  uint64
	LockSpins  uint64
	LockTries  uint64
	LockWaits  uint64
	SpecLoads  uint64
	Violations uint64

	HTMBegins         uint64
	HTMCommits        uint64
	HTMConflictAborts uint64
	HTMCapacityAborts uint64
	HTMExplicitAborts uint64
	HTMFallbacks      uint64

	ROBOcc [5]uint64

	Pred bpred.PredictorState
}

// Snapshot captures the core's dynamic state.
func (c *Core) Snapshot() CoreState {
	s := CoreState{
		NowCycle:         c.nowCycle,
		CtxID:            -1,
		HeadSeq:          c.headSeq,
		TailSeq:          c.tailSeq,
		Rename:           c.rename,
		MemInROB:         c.memInROB,
		Waiting:          c.waiting,
		FenceCount:       c.fenceCount,
		ScanFrom:         c.scanFrom,
		CurLine:          c.curLine,
		LineValid:        c.lineValid,
		FetchReady:       c.fetchReady,
		BlockBranch:      c.blockBranch,
		ResumeAt:         c.resumeAt,
		Unresolved:       c.unresolved,
		PendingSys:       c.pendingSys,
		PendingSysN:      c.pendingSysNs,
		StreamEnded:      c.streamEnded,
		StallInstr:       c.stallInstr,
		Poked:            c.poked,
		DbgLastPerform:   c.dbgLastPerform,
		DbgLastLoadBind:  c.dbgLastLoadBind,
		DbgLastStoreDone: c.dbgLastStoreDone,
		Bk:               c.Bk,
		Retired:          c.Retired,
		Rollbacks:        c.Rollbacks,
		LockSpins:        c.LockSpins,
		LockTries:        c.LockTries,
		LockWaits:        c.LockWaits,
		SpecLoads:        c.SpecLoads,
		Violations:       c.Violations,

		HTMBegins:         c.HTMBegins,
		HTMCommits:        c.HTMCommits,
		HTMConflictAborts: c.HTMConflictAborts,
		HTMCapacityAborts: c.HTMCapacityAborts,
		HTMExplicitAborts: c.HTMExplicitAborts,
		HTMFallbacks:      c.HTMFallbacks,

		ROBOcc: c.ROBOcc,
		Pred:   c.pred.Snapshot(),
	}
	if c.ctx != nil {
		s.CtxID = c.ctx.ID
	}
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		i := seq & c.robMask
		f := c.rFlags[i]
		s.ROB = append(s.ROB, ROBEntryState{
			FetchDone: c.rFetchDone[i],
			Prod1:     c.rProd1[i],
			Prod2:     c.rProd2[i],
			Complete:  c.rComplete[i],
			AddrDone:  c.rAddrDone[i],
			State:     c.rState[i],
			IssuedMem: f&fIssuedMem != 0,
			Performed: f&fPerformed != 0,
			SpecLoad:  f&fSpecLoad != 0,
			Violated:  f&fViolated != 0,
			Prefetch:  f&fPrefetch != 0,
			Mispred:   f&fMispred != 0,
			Waited:    f&fWaited != 0,
			In:        c.rIn[i],
			Seq:       seq,
			LineAddr:  c.rLineAddr[i],
			Class:     uint8(c.rClass[i]),
			TLBMiss:   f&fTLBMiss != 0,
		})
	}
	for i := c.fqHead; i < len(c.fetchQ); i++ {
		f := &c.fetchQ[i]
		s.FetchQ = append(s.FetchQ, FQEntryState{In: f.in, FetchDone: f.fetchDone, Mispred: f.mispred})
	}
	for i := c.wbHead; i < len(c.wbuf); i++ {
		w := &c.wbuf[i]
		s.Wbuf = append(s.Wbuf, WbufEntryState{
			Addr: w.addr, PC: w.pc, Done: w.done,
			IsWMB: w.isWMB, IsFlush: w.isFlush, Issued: w.issued,
			InCS: w.inCS, Release: w.release, FlushAfter: w.flushAfter,
		})
	}
	return s
}

// Restore refills the core from a snapshot taken under the same
// configuration. byID resolves the installed process context; contexts
// themselves must have been restored (and their streams re-attached)
// first.
func (c *Core) Restore(s CoreState, byID map[int]*Context) error {
	if n := s.TailSeq - s.HeadSeq; n != uint64(len(s.ROB)) || n > uint64(len(c.rState)) {
		return fmt.Errorf("cpu: core %d snapshot window [%d,%d) inconsistent with %d entries (cap %d)",
			c.id, s.HeadSeq, s.TailSeq, len(s.ROB), len(c.rState))
	}
	c.nowCycle = s.NowCycle
	if s.CtxID >= 0 {
		ctx, ok := byID[s.CtxID]
		if !ok {
			return fmt.Errorf("cpu: core %d snapshot references unknown context %d", c.id, s.CtxID)
		}
		c.ctx = ctx
	} else {
		c.ctx = nil
	}
	for i := range c.rState {
		c.rIn[i] = trace.Instr{}
		c.rOp[i] = 0
		c.rState[i] = 0
		c.rFlags[i] = 0
		c.rFetchDone[i] = 0
		c.rProd1[i] = 0
		c.rProd2[i] = 0
		c.rComplete[i] = 0
		c.rAddrDone[i] = 0
		c.rLineAddr[i] = 0
		c.rClass[i] = 0
		c.rNotBefore[i] = 0
	}
	c.headSeq = s.HeadSeq
	c.tailSeq = s.TailSeq
	for k, es := range s.ROB {
		i := (s.HeadSeq + uint64(k)) & c.robMask
		c.rIn[i] = es.In
		c.rOp[i] = es.In.Op
		c.rState[i] = es.State
		f := uint8(0)
		if es.IssuedMem {
			f |= fIssuedMem
		}
		if es.Performed {
			f |= fPerformed
		}
		if es.SpecLoad {
			f |= fSpecLoad
		}
		if es.Violated {
			f |= fViolated
		}
		if es.Prefetch {
			f |= fPrefetch
		}
		if es.Mispred {
			f |= fMispred
		}
		if es.Waited {
			f |= fWaited
		}
		if es.TLBMiss {
			f |= fTLBMiss
		}
		c.rFlags[i] = f
		c.rFetchDone[i] = es.FetchDone
		c.rProd1[i] = es.Prod1
		c.rProd2[i] = es.Prod2
		c.rComplete[i] = es.Complete
		c.rAddrDone[i] = es.AddrDone
		c.rLineAddr[i] = es.LineAddr
		c.rClass[i] = memsys.Class(es.Class)
	}
	c.rename = s.Rename
	c.memInROB = s.MemInROB
	c.waiting = s.Waiting
	c.fenceCount = s.FenceCount
	c.scanFrom = s.ScanFrom
	c.issueQuiet = 0 // derived; recomputed by the next scan

	c.fetchQ = c.fetchQ[:0]
	for _, f := range s.FetchQ {
		c.fetchQ = append(c.fetchQ, fqEntry{in: f.In, fetchDone: f.FetchDone, mispred: f.Mispred})
	}
	c.fqHead = 0
	c.curLine = s.CurLine
	c.lineValid = s.LineValid
	c.fetchReady = s.FetchReady
	c.blockBranch = s.BlockBranch
	c.resumeAt = s.ResumeAt
	c.unresolved = s.Unresolved
	c.pendingSys = s.PendingSys
	c.pendingSysNs = s.PendingSysN
	c.streamEnded = s.StreamEnded
	c.stallInstr = s.StallInstr
	c.poked = s.Poked
	c.inScratch = trace.Instr{}

	c.wbuf = c.wbuf[:0]
	for _, w := range s.Wbuf {
		c.wbuf = append(c.wbuf, wbufEntry{
			addr: w.Addr, pc: w.PC, done: w.Done,
			isWMB: w.IsWMB, isFlush: w.IsFlush, issued: w.Issued,
			inCS: w.InCS, release: w.Release, flushAfter: w.FlushAfter,
		})
	}
	c.wbHead = 0

	c.dbgLastPerform = s.DbgLastPerform
	c.dbgLastLoadBind = s.DbgLastLoadBind
	c.dbgLastStoreDone = s.DbgLastStoreDone

	c.Bk = s.Bk
	c.Retired = s.Retired
	c.Rollbacks = s.Rollbacks
	c.LockSpins = s.LockSpins
	c.LockTries = s.LockTries
	c.LockWaits = s.LockWaits
	c.SpecLoads = s.SpecLoads
	c.Violations = s.Violations
	c.HTMBegins = s.HTMBegins
	c.HTMCommits = s.HTMCommits
	c.HTMConflictAborts = s.HTMConflictAborts
	c.HTMCapacityAborts = s.HTMCapacityAborts
	c.HTMExplicitAborts = s.HTMExplicitAborts
	c.HTMFallbacks = s.HTMFallbacks
	c.ROBOcc = s.ROBOcc

	return c.pred.Restore(s.Pred)
}
