package cpu

import (
	"repro/internal/config"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/trace"
)

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// live reports whether seq names an entry currently in the window.
func (c *Core) live(seq uint64) bool { return seq >= c.headSeq && seq < c.tailSeq }

// prodReady reports whether the producer identified by seq has its result
// available at cycle now. Retired producers are always ready.
func (c *Core) prodReady(seq, now uint64) bool {
	if seq == noProd || !c.live(seq) {
		return true
	}
	e := c.entry(seq)
	return e.state == stExec && e.complete <= now
}

func (c *Core) srcsReady(e *robEntry, now uint64) bool {
	return c.prodReady(e.prod1, now) && c.prodReady(e.prod2, now)
}

// ---------------------------------------------------------------- fetch --

func (c *Core) fetchStage(now uint64) {
	if c.pendingSys || c.streamEnded {
		return
	}
	if c.blockBranch != 0 {
		// Fetch is halted behind a mispredicted branch; resolution is
		// detected here or at the branch's retirement.
		if c.live(c.blockBranch) {
			e := c.entry(c.blockBranch)
			if e.state == stExec && e.complete <= now {
				c.resumeAt = e.complete + uint64(c.cfg.BranchRestart)
				c.blockBranch = 0
			} else {
				c.stallInstr = false
				return
			}
		} else {
			c.blockBranch = 0
		}
	}
	if now < c.resumeAt {
		c.stallInstr = false
		return
	}
	if now < c.fetchReady {
		c.stallInstr = true
		return
	}
	lineShift := c.mem.L1I().LineShift()
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if len(c.fetchQ)-c.fqHead >= c.cfg.FetchBufferEntries {
			return
		}
		if c.unresolved >= c.cfg.MaxSpeculatedBr {
			c.stallInstr = false
			return
		}
		// The instruction buffer is a reused field: a local escapes to the
		// heap through the Stream interface call, at one allocation per
		// fetched instruction (the simulator's dominant allocation site).
		in := &c.inScratch
		*in = trace.Instr{}
		if !c.ctx.Stream.Next(in) {
			c.streamEnded = true
			return
		}
		if in.Op == trace.OpSyscall {
			c.pendingSys = true
			c.pendingSysNs = in.Latency
			return
		}
		avail := now + 1
		stop := false
		if line := in.PC >> lineShift; !c.lineValid || line != c.curLine {
			res := c.mem.IFetch(in.PC, now)
			c.curLine, c.lineValid = line, true
			if res.Done > avail {
				avail = res.Done
				c.fetchReady = res.Done
				c.stallInstr = true
				stop = true // the rest of this line arrives later
			}
		}
		mis := false
		if in.Op.IsBranch() {
			mis = !c.pred.PredictAndUpdate(in)
			c.unresolved++
			if c.cfg.BTBPrefetch && !mis && in.Taken && in.Target>>lineShift != c.curLine {
				// BTB-directed prefetch of the predicted target's line
				// (correct predictions only: wrong-path fetch is not
				// simulated, matching the trace-driven methodology).
				c.mem.PrefetchInstr(in.Target, now)
			}
		}
		c.fetchQ = append(c.fetchQ, fqEntry{in: *in, fetchDone: avail, mispred: mis})
		if mis {
			// Trace-driven: no wrong-path fetch; stall until resolution.
			c.stallInstr = false
			return
		}
		if stop {
			return
		}
	}
}

// -------------------------------------------------------------- dispatch --

func (c *Core) dispatchStage(now uint64) {
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.fqHead >= len(c.fetchQ) {
			break
		}
		fe := &c.fetchQ[c.fqHead]
		if fe.fetchDone > now {
			break
		}
		if c.robLen() >= c.cfg.WindowSize {
			break
		}
		isMem := fe.in.Op.IsMem()
		if isMem && c.memInROB >= c.cfg.MemQueueSize {
			break
		}
		seq := c.tailSeq
		e := c.entry(seq)
		*e = robEntry{in: fe.in, seq: seq, fetchDone: fe.fetchDone, mispred: fe.mispred}
		if s := fe.in.Src1; s != trace.NoReg {
			e.prod1 = c.rename[s]
		}
		if s := fe.in.Src2; s != trace.NoReg {
			e.prod2 = c.rename[s]
		}
		if d := fe.in.Dest; d != trace.NoReg {
			c.rename[d] = seq
		}
		if isMem {
			c.memInROB++
		}
		switch fe.in.Op {
		case trace.OpMemBar, trace.OpWriteBar, trace.OpLockAcquire, trace.OpLockRelease,
			trace.OpPrefetch, trace.OpPrefetchX, trace.OpFlush:
			// These execute at retirement (fences, locks, hints); mark them
			// executed so they do not block the in-order issue scan.
			e.state = stExec
			e.complete = fe.fetchDone
		}
		switch fe.in.Op {
		case trace.OpMemBar, trace.OpLockAcquire:
			c.fenceCount++
		}
		if e.state != stExec {
			c.waiting++
		}
		if fe.mispred {
			c.blockBranch = seq
		}
		c.tailSeq++
		c.fqHead++
	}
	if c.fqHead >= len(c.fetchQ) {
		c.fetchQ = c.fetchQ[:0]
		c.fqHead = 0
	}
}

// ----------------------------------------------------------------- issue --

// issueStage walks the window in program order, starting execution of
// ready instructions subject to functional units, issue width, and the
// memory consistency model. The walk maintains the ordering flags each
// model needs, so consistency checks are O(1) per instruction.
func (c *Core) issueStage(now uint64) {
	if c.waiting == 0 {
		// Every in-window entry is already executing: the scan would only
		// recompute ordering flags nobody consumes. (The scanFrom cache may
		// lag; starting the next real scan earlier changes no decision.)
		return
	}
	intFree, fpFree, agFree := c.cfg.IntALUs, c.cfg.FPUs, c.cfg.AddrGenUnits
	if c.cfg.InfiniteFUs {
		intFree, fpFree, agFree = 1<<30, 1<<30, 1<<30
	}
	budget := c.cfg.IssueWidth
	// Entries younger than the last non-executing one contribute ordering
	// flags nobody consumes, so the scan can stop once it has visited all
	// c.waiting of them instead of walking to the window tail.
	remaining := c.waiting

	// Fast path: under RC with no fence in flight the ordering flags are
	// irrelevant (loads are never blocked by older accesses), so a
	// specialized scan skips the already-executing prefix and already-
	// executing entries without maintaining any flags.
	if c.cfg.Consistency == config.RC && c.fenceCount == 0 {
		c.issueStageRC(now, intFree, fpFree, agFree, budget, remaining)
		return
	}

	olderLoadUnperformed := false
	olderMemUnperformed := false
	olderFence := false // unretired MB or lock acquire ahead of this point

	start := c.headSeq

	for seq := start; seq < c.tailSeq && budget > 0; seq++ {
		e := c.entry(seq)
		if e.state != stExec {
			remaining--
		}

		// Ordering flags are updated after the entry is considered, below.
		issuedSomething := false
		switch e.in.Op {
		case trace.OpIntALU, trace.OpFPALU:
			if e.state == stExec {
				break
			}
			if e.fetchDone > now || !c.srcsReady(e, now) {
				if c.cfg.InOrder {
					return
				}
				break
			}
			lat, free := c.cfg.IntLatency, &intFree
			if e.in.Op == trace.OpFPALU {
				lat, free = c.cfg.FPLatency, &fpFree
			}
			if *free == 0 {
				if c.cfg.InOrder {
					return
				}
				break
			}
			*free--
			budget--
			e.state = stExec
			c.waiting--
			e.complete = now + uint64(lat)
			issuedSomething = true

		case trace.OpBranch, trace.OpJump, trace.OpCall, trace.OpReturn:
			if e.state == stExec {
				break
			}
			if e.fetchDone > now || !c.srcsReady(e, now) || intFree == 0 {
				if c.cfg.InOrder {
					return
				}
				break
			}
			intFree--
			budget--
			e.state = stExec
			c.waiting--
			e.complete = now + uint64(c.cfg.IntLatency)
			issuedSomething = true

		case trace.OpLoad:
			done := c.issueLoad(e, now, &agFree, &budget,
				olderLoadUnperformed, olderMemUnperformed, olderFence)
			if !done && c.cfg.InOrder {
				return
			}
			issuedSomething = done

		case trace.OpStore:
			// Stores execute (address + data ready) here; the memory
			// access happens at retirement per the consistency model.
			if e.state == stExec {
				break
			}
			if e.fetchDone > now || !c.srcsReady(e, now) {
				if c.cfg.InOrder {
					return
				}
				break
			}
			if e.addrDone == 0 {
				if agFree == 0 {
					if c.cfg.InOrder {
						return
					}
					break
				}
				agFree--
				budget--
				e.addrDone = now + 1
				break
			}
			if e.addrDone <= now {
				e.state = stExec
				c.waiting--
				e.complete = e.addrDone
				issuedSomething = true
				if c.cfg.ConsistencyOpts != config.ImplPlain && !e.prefetch {
					// Hardware prefetch from the window: request ownership
					// early for stores blocked by consistency/retirement.
					c.mem.Prefetch(e.in.Addr, e.in.PC, now, true, c.inCS())
					e.prefetch = true
				}
			}

		default:
			// Fences, locks and hints were marked executed at dispatch.
		}
		_ = issuedSomething

		// Update ordering flags for younger instructions.
		switch e.in.Op {
		case trace.OpLoad:
			if !(e.issuedMem && e.complete <= now) {
				olderLoadUnperformed = true
				olderMemUnperformed = true
			}
		case trace.OpStore:
			// An in-window store is not yet globally performed (it issues
			// at retirement at the earliest).
			olderMemUnperformed = true
		case trace.OpMemBar, trace.OpLockAcquire:
			olderFence = true
		}
		if remaining == 0 {
			break
		}
	}

	// Advance the fast-path scan start past the fully executing prefix.
	if c.scanFrom < c.headSeq {
		c.scanFrom = c.headSeq
	}
	for c.scanFrom < c.tailSeq && c.entry(c.scanFrom).state == stExec {
		c.scanFrom++
	}
}

// issueStageRC is the issue scan specialized for RC with no fence in
// flight: ordering flags are irrelevant, so already-executing entries are
// skipped with a single state check and loads issue with all ordering
// restrictions clear. Decisions are identical to the generic scan — only
// the per-entry bookkeeping is cheaper.
func (c *Core) issueStageRC(now uint64, intFree, fpFree, agFree, budget, remaining int) {
	start := c.headSeq
	if c.scanFrom > start {
		start = c.scanFrom
	}
	inOrder := c.cfg.InOrder
	for seq := start; seq < c.tailSeq && budget > 0 && remaining > 0; seq++ {
		e := c.entry(seq)
		if e.state == stExec {
			continue
		}
		remaining--
		switch e.in.Op {
		case trace.OpIntALU, trace.OpFPALU:
			if e.fetchDone > now || !c.srcsReady(e, now) {
				if inOrder {
					return
				}
				continue
			}
			lat, free := c.cfg.IntLatency, &intFree
			if e.in.Op == trace.OpFPALU {
				lat, free = c.cfg.FPLatency, &fpFree
			}
			if *free == 0 {
				if inOrder {
					return
				}
				continue
			}
			*free--
			budget--
			e.state = stExec
			c.waiting--
			e.complete = now + uint64(lat)

		case trace.OpBranch, trace.OpJump, trace.OpCall, trace.OpReturn:
			if e.fetchDone > now || !c.srcsReady(e, now) || intFree == 0 {
				if inOrder {
					return
				}
				continue
			}
			intFree--
			budget--
			e.state = stExec
			c.waiting--
			e.complete = now + uint64(c.cfg.IntLatency)

		case trace.OpLoad:
			if !c.issueLoad(e, now, &agFree, &budget, false, false, false) && inOrder {
				return
			}

		case trace.OpStore:
			if e.fetchDone > now || !c.srcsReady(e, now) {
				if inOrder {
					return
				}
				continue
			}
			if e.addrDone == 0 {
				if agFree == 0 {
					if inOrder {
						return
					}
					continue
				}
				agFree--
				budget--
				e.addrDone = now + 1
				continue
			}
			if e.addrDone <= now {
				e.state = stExec
				c.waiting--
				e.complete = e.addrDone
				if c.cfg.ConsistencyOpts != config.ImplPlain && !e.prefetch {
					c.mem.Prefetch(e.in.Addr, e.in.PC, now, true, c.inCS())
					e.prefetch = true
				}
			}
		}
	}

	if c.scanFrom < c.headSeq {
		c.scanFrom = c.headSeq
	}
	for c.scanFrom < c.tailSeq && c.entry(c.scanFrom).state == stExec {
		c.scanFrom++
	}
}

// issueLoad handles the two-phase (address generation, then cache access)
// execution of a load under the configured consistency model. It returns
// true when the load made progress this cycle.
func (c *Core) issueLoad(e *robEntry, now uint64, agFree, budget *int,
	olderLoadUnperformed, olderMemUnperformed, olderFence bool) bool {

	if e.issuedMem || e.fetchDone > now {
		return e.issuedMem
	}
	if e.addrDone == 0 {
		if !c.srcsReady(e, now) || *agFree == 0 {
			return false
		}
		*agFree--
		*budget--
		e.addrDone = now + 1
		return true
	}
	if e.addrDone > now {
		return false
	}

	allowed := false
	switch c.cfg.Consistency {
	case config.RC:
		allowed = !olderFence
	case config.PC:
		allowed = !olderLoadUnperformed && !olderFence
	case config.SC:
		allowed = !olderMemUnperformed && !olderFence
	}
	spec := false
	if !allowed {
		switch c.cfg.ConsistencyOpts {
		case config.ImplPlain:
			return false
		case config.ImplPrefetch:
			if !e.prefetch {
				c.mem.Prefetch(e.in.Addr, e.in.PC, now, false, c.inCS())
				e.prefetch = true
			}
			return false
		case config.ImplSpeculative:
			spec = true
		}
	}
	if c.cfg.DebugChecks && !spec {
		c.dbgCheckLoadBind(now, e.in.PC)
	}
	res := c.mem.DataRead(e.in.Addr, e.in.PC, now, c.inCS())
	e.issuedMem = true
	e.state = stExec
	c.waiting--
	e.complete = res.Done
	e.class = res.Class
	e.tlbMiss = res.TLBMiss
	e.lineAddr = res.LineAddr // physical, as delivered by invalidation hooks
	e.specLoad = spec
	if spec {
		c.SpecLoads++
	}
	if c.ctx.tx != nil {
		c.trackRead(res.LineAddr)
	}
	return true
}

func (c *Core) inCS() bool { return c.ctx != nil && c.ctx.csDepth > 0 }

// ---------------------------------------------------------------- retire --

func (c *Core) retireStage(now uint64) {
	width := c.cfg.IssueWidth
	retired := 0
	var stallCat stats.Category
	stalled := false
	for retired < width && c.robLen() > 0 {
		e := c.entry(c.headSeq)
		ok, cat := c.tryRetire(e, now)
		if !ok {
			stallCat, stalled = cat, true
			break
		}
		if e.in.Op.IsMem() {
			c.memInROB--
		}
		switch e.in.Op {
		case trace.OpMemBar, trace.OpLockAcquire:
			c.fenceCount--
		}
		if e.in.Op.IsBranch() {
			c.unresolved--
			if e.seq == c.blockBranch {
				c.resumeAt = e.complete + uint64(c.cfg.BranchRestart)
				c.blockBranch = 0
			}
		}
		c.ctx.Retired++
		c.Retired++
		if c.trc != nil {
			c.trc.RetireSlot(c.id, e.in.PC, 1/float64(width))
		}
		c.headSeq++
		retired++
	}
	c.Bk[stats.Busy] += float64(retired) / float64(width)
	if retired == width {
		return
	}
	frac := float64(width-retired) / float64(width)
	stallPC := uint64(0)
	if stalled {
		stallPC = c.entry(c.headSeq).in.PC
	} else {
		// Window empty: charge the fetch-side reason (PC 0 marks the
		// frontend in the stall profile).
		if c.pendingSys || c.streamEnded {
			return // transition cycles; the scheduler accounts switches
		}
		if c.stallInstr {
			stallCat = stats.Instr
		} else {
			stallCat = stats.CPUStall
		}
	}
	c.Bk[stallCat] += frac
	if c.trc != nil {
		c.trc.StallSlot(c.id, c.ctx.ID, stallPC, stallCat, frac, now)
	}
}

// readCategory maps a load's service point to its stall category.
func readCategory(class memsys.Class, tlbMiss bool) stats.Category {
	if tlbMiss && class == memsys.ClassL1 {
		return stats.ReadDTLB
	}
	switch class {
	case memsys.ClassL1:
		return stats.ReadL1
	case memsys.ClassL2:
		return stats.ReadL2
	case memsys.ClassLocal:
		return stats.ReadLocal
	case memsys.ClassRemote:
		return stats.ReadRemote
	case memsys.ClassRemoteDirty:
		return stats.ReadDirty
	}
	return stats.ReadL1
}

// tryRetire attempts to retire the head entry, returning the stall
// category on failure.
func (c *Core) tryRetire(e *robEntry, now uint64) (bool, stats.Category) {
	switch e.in.Op {
	case trace.OpLoad:
		if e.state != stExec {
			if e.fetchDone > now {
				return false, stats.Instr
			}
			return false, stats.ReadL1 // address generation / dependence
		}
		if e.violated {
			// Speculative-load ordering violation: squash and re-execute
			// from this load (recovery as for branch mispredictions).
			c.rollback(e.seq, now)
			c.Violations++
			return false, stats.ReadL1
		}
		if e.complete > now {
			return false, readCategory(e.class, e.tlbMiss)
		}
		return true, 0

	case trace.OpStore:
		if e.state != stExec {
			if e.fetchDone > now {
				return false, stats.Instr
			}
			return false, stats.ReadL1 // address generation / dependence
		}
		if c.cfg.Consistency == config.SC {
			// SC: the store performs at the head of the window and blocks
			// retirement until globally performed.
			if !e.issuedMem {
				res := c.mem.DataWrite(e.in.Addr, e.in.PC, now, c.inCS())
				e.issuedMem = true
				e.complete = res.Done
				e.class = res.Class
				if c.cfg.DebugChecks {
					c.dbgCheckStorePerform(e.complete, e.in.PC)
				}
				if c.ctx.tx != nil {
					c.trackWrite(res.LineAddr)
				}
			}
			if e.complete > now {
				return false, stats.Write
			}
			return true, 0
		}
		// PC/RC: retire into the write buffer.
		if c.wbufLen() >= c.cfg.WriteBufEntries {
			return false, stats.Write
		}
		c.wbuf = append(c.wbuf, wbufEntry{addr: e.in.Addr, pc: e.in.PC, inCS: c.inCS()})
		return true, 0

	case trace.OpLockAcquire:
		if e.fetchDone > now {
			return false, stats.Instr
		}
		return c.latch.acquire(c, e, now)

	case trace.OpLockRelease:
		if e.fetchDone > now {
			return false, stats.Instr
		}
		return c.latch.release(c, e, now)

	case trace.OpMemBar:
		// Full barrier: all prior memory operations performed and the
		// write buffer drained (older window entries retired by induction).
		if c.wbufLen() != 0 {
			return false, stats.Sync
		}
		return true, 0

	case trace.OpWriteBar:
		if c.wbufLen() >= c.cfg.WriteBufEntries {
			return false, stats.Sync
		}
		c.wbuf = append(c.wbuf, wbufEntry{isWMB: true})
		return true, 0

	case trace.OpPrefetch, trace.OpPrefetchX:
		if e.fetchDone > now {
			return false, stats.Instr
		}
		if !e.issuedMem {
			c.mem.Prefetch(e.in.Addr, e.in.PC, now, e.in.Op == trace.OpPrefetchX, c.inCS())
			e.issuedMem = true
		}
		return true, 0

	case trace.OpFlush:
		if e.fetchDone > now {
			return false, stats.Instr
		}
		if c.cfg.Consistency == config.SC {
			// Under SC all prior stores have performed by the time the
			// flush reaches the head; execute directly.
			c.mem.Flush(e.in.Addr, now)
			return true, 0
		}
		// PC/RC: queue behind the buffered stores so the flush executes
		// once they perform, without stalling retirement (the hint is off
		// the critical path, as in the paper).
		if c.wbufLen() >= c.cfg.WriteBufEntries {
			return false, stats.Write
		}
		c.wbuf = append(c.wbuf, wbufEntry{addr: e.in.Addr, isFlush: true})
		return true, 0

	default: // ALU and branches
		if e.state != stExec {
			if e.fetchDone > now {
				return false, stats.Instr
			}
			return false, stats.CPUStall
		}
		if e.complete > now {
			return false, stats.CPUStall
		}
		return true, 0
	}
}

// rollback squashes the window from fromSeq on, resetting the squashed
// instructions for re-execution after a pipeline-restart penalty (the
// recovery mechanism is the one used for branch mispredictions).
func (c *Core) rollback(fromSeq, now uint64) {
	c.Rollbacks++
	if c.scanFrom > fromSeq {
		c.scanFrom = fromSeq
	}
	width := uint64(c.cfg.IssueWidth)
	for seq := fromSeq; seq < c.tailSeq; seq++ {
		e := c.entry(seq)
		wasExec := e.state == stExec
		refetch := now + uint64(c.cfg.BranchRestart) + (seq-fromSeq)/width
		*e = robEntry{
			in:        e.in,
			seq:       e.seq,
			fetchDone: maxU(e.fetchDone, refetch),
			prod1:     e.prod1,
			prod2:     e.prod2,
			mispred:   e.mispred,
		}
		switch e.in.Op {
		case trace.OpMemBar, trace.OpWriteBar, trace.OpLockAcquire, trace.OpLockRelease,
			trace.OpPrefetch, trace.OpPrefetchX, trace.OpFlush:
			e.state = stExec
			e.complete = e.fetchDone
		}
		if wasExec && e.state != stExec {
			c.waiting++
		}
	}
}

// ---------------------------------------------------------- write buffer --

// drainWbuf issues and retires buffered stores per the consistency model:
// RC overlaps stores freely between WMB markers; PC issues one store at a
// time in FIFO order.
func (c *Core) drainWbuf(now uint64) {
	if c.wbufLen() == 0 {
		return
	}
	switch c.cfg.Consistency {
	case config.RC:
		allPriorDone := true
		for i := c.wbHead; i < len(c.wbuf); i++ {
			w := &c.wbuf[i]
			if w.isWMB {
				if !allPriorDone {
					break
				}
				continue
			}
			if w.isFlush {
				continue
			}
			if !w.issued {
				res := c.mem.DataWrite(w.addr, w.pc, now, w.inCS)
				w.issued = true
				w.done = res.Done
				if c.ctx.tx != nil {
					c.trackWrite(res.LineAddr)
				}
			}
			if w.done > now {
				allPriorDone = false
			}
		}
	case config.PC:
		for i := c.wbHead; i < len(c.wbuf); i++ {
			w := &c.wbuf[i]
			if w.isWMB || w.isFlush {
				continue
			}
			if !w.issued {
				res := c.mem.DataWrite(w.addr, w.pc, now, w.inCS)
				w.issued = true
				w.done = res.Done
				if c.cfg.DebugChecks {
					c.dbgCheckStoreFIFO(now, w.done, w.pc)
				}
				if c.ctx.tx != nil {
					c.trackWrite(res.LineAddr)
				}
			}
			// Strict FIFO: the next store may not issue until this one
			// has performed.
			if w.done > now {
				break
			}
		}
	}
	// Retire performed entries from the front. A flush at the front has
	// seen all prior stores perform; it executes now, off the critical
	// path.
	for c.wbufLen() > 0 {
		w := c.wbuf[c.wbHead]
		switch {
		case w.isWMB:
		case w.isFlush:
			c.mem.Flush(w.addr, now)
		case w.issued && w.done <= now:
			if w.release {
				c.locks.Release(w.addr, c.ctx.ID, w.done)
				if c.trc != nil {
					c.trc.LockReleased(c.id, c.ctx.ID, w.addr, w.done)
				}
				if w.flushAfter {
					// Hints policy: push the released latch line home.
					c.mem.Flush(w.addr, now)
				}
			}
		default:
			return
		}
		c.wbHead++
	}
	if c.wbHead == len(c.wbuf) {
		// Keep the backing array: the buffer refills constantly and a nil
		// reset made every refill reallocate.
		c.wbuf = c.wbuf[:0]
		c.wbHead = 0
	}
}
