package cpu

import (
	"repro/internal/config"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/trace"
)

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// live reports whether seq names an entry currently in the window.
func (c *Core) live(seq uint64) bool { return seq >= c.headSeq && seq < c.tailSeq }

// prodReady reports whether the producer identified by seq has its result
// available at cycle now. Retired producers are always ready.
func (c *Core) prodReady(seq, now uint64) bool {
	if seq == noProd || seq < c.headSeq || seq >= c.tailSeq {
		return true
	}
	j := seq & c.robMask
	return c.rState[j] == stExec && c.rComplete[j] <= now
}

func (c *Core) srcsReady(i, now uint64) bool {
	return c.prodReady(c.rProd1[i], now) && c.prodReady(c.rProd2[i], now)
}

// readyBound returns the earliest cycle entry i's fetch and source
// operands can all be available — a lower bound proven purely from
// immutable inputs (the entry's fetchDone and the completion times of
// producers already executing) — plus whether a producer has not yet
// started executing, in which case the bound is incomplete and the entry
// must be rechecked once it passes. A producer that has not issued still
// contributes its own cached not-before bound: the consumer cannot issue
// before the producer does (completion never precedes issue), so a
// dependency chain behind one long-latency miss collapses into cached
// bounds instead of a full recheck per link per cycle. b > now || blocked
// is equivalent to rFetchDone[i] > now || !srcsReady(i, now): a producer
// that has left the window completed at or before the cycle it retired,
// so it never contributes a bound, and a cached producer bound > now
// implies that producer is not executing now.
func (c *Core) readyBound(i uint64) (b uint64, blocked bool) {
	b = c.rFetchDone[i]
	head, tail, mask := c.headSeq, c.tailSeq, c.robMask
	if p := c.rProd1[i]; p != noProd && p >= head && p < tail {
		j := p & mask
		if c.rState[j] != stExec {
			blocked = true
			if t := c.rNotBefore[j]; t > b {
				b = t
			}
		} else if t := c.rComplete[j]; t > b {
			b = t
		}
	}
	if p := c.rProd2[i]; p != noProd && p >= head && p < tail {
		j := p & mask
		if c.rState[j] != stExec {
			blocked = true
			if t := c.rNotBefore[j]; t > b {
				b = t
			}
		} else if t := c.rComplete[j]; t > b {
			b = t
		}
	}
	return b, blocked
}

// ---------------------------------------------------------------- fetch --

func (c *Core) fetchStage(now uint64) {
	if c.pendingSys || c.streamEnded {
		return
	}
	if c.blockBranch != 0 {
		// Fetch is halted behind a mispredicted branch; resolution is
		// detected here or at the branch's retirement.
		if c.live(c.blockBranch) {
			i := c.blockBranch & c.robMask
			if c.rState[i] == stExec && c.rComplete[i] <= now {
				c.resumeAt = c.rComplete[i] + uint64(c.cfg.BranchRestart)
				c.blockBranch = 0
			} else {
				c.stallInstr = false
				return
			}
		} else {
			c.blockBranch = 0
		}
	}
	if now < c.resumeAt {
		c.stallInstr = false
		return
	}
	if now < c.fetchReady {
		c.stallInstr = true
		return
	}
	lineShift := c.mem.L1I().LineShift()
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if len(c.fetchQ)-c.fqHead >= c.cfg.FetchBufferEntries {
			return
		}
		if c.unresolved >= c.cfg.MaxSpeculatedBr {
			c.stallInstr = false
			return
		}
		// The instruction buffer is a reused field: a local escapes to the
		// heap through the Stream interface call, at one allocation per
		// fetched instruction (the simulator's dominant allocation site).
		in := &c.inScratch
		*in = trace.Instr{}
		if !c.ctx.Stream.Next(in) {
			c.streamEnded = true
			return
		}
		if in.Op == trace.OpSyscall {
			c.pendingSys = true
			c.pendingSysNs = in.Latency
			return
		}
		avail := now + 1
		stop := false
		if line := in.PC >> lineShift; !c.lineValid || line != c.curLine {
			res := c.mem.IFetch(in.PC, now)
			c.curLine, c.lineValid = line, true
			if res.Done > avail {
				avail = res.Done
				c.fetchReady = res.Done
				c.stallInstr = true
				stop = true // the rest of this line arrives later
			}
		}
		mis := false
		if in.Op.IsBranch() {
			mis = !c.pred.PredictAndUpdate(in)
			c.unresolved++
			if c.cfg.BTBPrefetch && !mis && in.Taken && in.Target>>lineShift != c.curLine {
				// BTB-directed prefetch of the predicted target's line
				// (correct predictions only: wrong-path fetch is not
				// simulated, matching the trace-driven methodology).
				c.mem.PrefetchInstr(in.Target, now)
			}
		}
		c.fetchQ = append(c.fetchQ, fqEntry{in: *in, fetchDone: avail, mispred: mis})
		if mis {
			// Trace-driven: no wrong-path fetch; stall until resolution.
			c.stallInstr = false
			return
		}
		if stop {
			return
		}
	}
}

// -------------------------------------------------------------- dispatch --

func (c *Core) dispatchStage(now uint64) {
	dispatchFrom := c.tailSeq
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.fqHead >= len(c.fetchQ) {
			break
		}
		fe := &c.fetchQ[c.fqHead]
		if fe.fetchDone > now {
			break
		}
		if c.robLen() >= c.cfg.WindowSize {
			break
		}
		isMem := fe.in.Op.IsMem()
		if isMem && c.memInROB >= c.cfg.MemQueueSize {
			break
		}
		seq := c.tailSeq
		i := seq & c.robMask
		c.rIn[i] = fe.in
		c.rOp[i] = fe.in.Op
		c.rState[i] = stWaiting
		flags := uint8(0)
		if fe.mispred {
			flags = fMispred
		}
		c.rFlags[i] = flags
		c.rFetchDone[i] = fe.fetchDone
		c.rProd1[i], c.rProd2[i] = noProd, noProd
		c.rComplete[i] = 0
		c.rAddrDone[i] = 0
		c.rLineAddr[i] = 0
		c.rClass[i] = 0
		c.rNotBefore[i] = 0
		if s := fe.in.Src1; s != trace.NoReg {
			c.rProd1[i] = c.rename[s]
		}
		if s := fe.in.Src2; s != trace.NoReg {
			c.rProd2[i] = c.rename[s]
		}
		if d := fe.in.Dest; d != trace.NoReg {
			c.rename[d] = seq
		}
		if isMem {
			c.memInROB++
		}
		switch fe.in.Op {
		case trace.OpMemBar, trace.OpWriteBar, trace.OpLockAcquire, trace.OpLockRelease,
			trace.OpPrefetch, trace.OpPrefetchX, trace.OpFlush:
			// These execute at retirement (fences, locks, hints); mark them
			// executed so they do not block the in-order issue scan.
			c.rState[i] = stExec
			c.rComplete[i] = fe.fetchDone
		}
		switch fe.in.Op {
		case trace.OpMemBar, trace.OpLockAcquire:
			c.fenceCount++
		}
		if c.rState[i] != stExec {
			c.waiting++
		}
		if fe.mispred {
			c.blockBranch = seq
		}
		c.tailSeq++
		c.fqHead++
	}
	if c.fqHead >= len(c.fetchQ) {
		c.fetchQ = c.fetchQ[:0]
		c.fqHead = 0
	}
	if c.tailSeq != dispatchFrom {
		// New issue candidates invalidate any whole-window quiet horizon.
		c.issueQuiet = 0
	}
}

// ----------------------------------------------------------------- issue --

// issueStage walks the window in program order, starting execution of
// ready instructions subject to functional units, issue width, and the
// memory consistency model. The walk maintains the ordering flags each
// model needs, so consistency checks are O(1) per instruction.
func (c *Core) issueStage(now uint64) {
	if c.waiting == 0 {
		// Every in-window entry is already executing: the scan would only
		// recompute ordering flags nobody consumes. (The scanFrom cache may
		// lag; starting the next real scan earlier changes no decision.)
		return
	}
	intFree, fpFree, agFree := c.cfg.IntALUs, c.cfg.FPUs, c.cfg.AddrGenUnits
	if c.cfg.InfiniteFUs {
		intFree, fpFree, agFree = 1<<30, 1<<30, 1<<30
	}
	budget := c.cfg.IssueWidth
	// Entries younger than the last non-executing one contribute ordering
	// flags nobody consumes, so the scan can stop once it has visited all
	// c.waiting of them instead of walking to the window tail.
	remaining := c.waiting

	// Fast path: under RC with no fence in flight the ordering flags are
	// irrelevant (loads are never blocked by older accesses), so a
	// specialized scan skips the already-executing prefix and already-
	// executing entries without maintaining any flags. If a previous scan
	// proved the whole window quiet until issueQuiet, skip the scan: it
	// would examine every waiting entry only to re-fail each one.
	if c.cfg.Consistency == config.RC && c.fenceCount == 0 {
		if now < c.issueQuiet {
			return
		}
		c.issueStageRC(now, intFree, fpFree, agFree, budget, remaining)
		return
	}

	olderLoadUnperformed := false
	olderMemUnperformed := false
	olderFence := false // unretired MB or lock acquire ahead of this point

	start := c.headSeq

	for seq := start; seq < c.tailSeq && budget > 0; seq++ {
		i := seq & c.robMask
		if c.rState[i] != stExec {
			remaining--
		}

		// Ordering flags are updated after the entry is considered, below.
		op := c.rOp[i]
		switch op {
		case trace.OpIntALU, trace.OpFPALU:
			if c.rState[i] == stExec {
				break
			}
			if c.rFetchDone[i] > now || !c.srcsReady(i, now) {
				if c.cfg.InOrder {
					return
				}
				break
			}
			lat, free := c.cfg.IntLatency, &intFree
			if op == trace.OpFPALU {
				lat, free = c.cfg.FPLatency, &fpFree
			}
			if *free == 0 {
				if c.cfg.InOrder {
					return
				}
				break
			}
			*free--
			budget--
			c.rState[i] = stExec
			c.waiting--
			c.rComplete[i] = now + uint64(lat)

		case trace.OpBranch, trace.OpJump, trace.OpCall, trace.OpReturn:
			if c.rState[i] == stExec {
				break
			}
			if c.rFetchDone[i] > now || !c.srcsReady(i, now) || intFree == 0 {
				if c.cfg.InOrder {
					return
				}
				break
			}
			intFree--
			budget--
			c.rState[i] = stExec
			c.waiting--
			c.rComplete[i] = now + uint64(c.cfg.IntLatency)

		case trace.OpLoad:
			done := c.issueLoad(i, now, &agFree, &budget,
				olderLoadUnperformed, olderMemUnperformed, olderFence)
			if !done && c.cfg.InOrder {
				return
			}

		case trace.OpStore:
			// Stores execute (address + data ready) here; the memory
			// access happens at retirement per the consistency model.
			if c.rState[i] == stExec {
				break
			}
			if c.rFetchDone[i] > now || !c.srcsReady(i, now) {
				if c.cfg.InOrder {
					return
				}
				break
			}
			if c.rAddrDone[i] == 0 {
				if agFree == 0 {
					if c.cfg.InOrder {
						return
					}
					break
				}
				agFree--
				budget--
				c.rAddrDone[i] = now + 1
				break
			}
			if c.rAddrDone[i] <= now {
				c.rState[i] = stExec
				c.waiting--
				c.rComplete[i] = c.rAddrDone[i]
				if c.cfg.ConsistencyOpts != config.ImplPlain && c.rFlags[i]&fPrefetch == 0 {
					// Hardware prefetch from the window: request ownership
					// early for stores blocked by consistency/retirement.
					c.mem.Prefetch(c.rIn[i].Addr, c.rIn[i].PC, now, true, c.inCS())
					c.rFlags[i] |= fPrefetch
				}
			}

		default:
			// Fences, locks and hints were marked executed at dispatch.
		}

		// Update ordering flags for younger instructions.
		switch op {
		case trace.OpLoad:
			if !(c.rFlags[i]&fIssuedMem != 0 && c.rComplete[i] <= now) {
				olderLoadUnperformed = true
				olderMemUnperformed = true
			}
		case trace.OpStore:
			// An in-window store is not yet globally performed (it issues
			// at retirement at the earliest).
			olderMemUnperformed = true
		case trace.OpMemBar, trace.OpLockAcquire:
			olderFence = true
		}
		if remaining == 0 {
			break
		}
	}

	// Advance the fast-path scan start past the fully executing prefix.
	if c.scanFrom < c.headSeq {
		c.scanFrom = c.headSeq
	}
	for c.scanFrom < c.tailSeq && c.rState[c.scanFrom&c.robMask] == stExec {
		c.scanFrom++
	}
}

// issueStageRC is the issue scan specialized for RC with no fence in
// flight: ordering flags are irrelevant, so already-executing entries are
// skipped with a single state check and loads issue with all ordering
// restrictions clear. Waiting entries carry a cached not-before bound
// (rNotBefore) so an entry blocked on a long-latency producer costs one
// compare per scan instead of a full readiness check. Decisions are
// identical to the generic scan — only the per-entry bookkeeping is
// cheaper.
//
// The scan additionally tracks whether every failure this cycle came with
// a sound not-before bound (as opposed to a functional-unit or issue-width
// limit, which any cycle can lift). If so, the minimum such bound is a
// cycle before which the whole window provably cannot issue, and it is
// published as c.issueQuiet so issueStage skips the scan outright until
// then. In-order cores stop at the first non-issuing entry, so its bound
// alone is the horizon. Dispatching a new entry clears the horizon.
func (c *Core) issueStageRC(now uint64, intFree, fpFree, agFree, budget, remaining int) {
	start := c.headSeq
	if c.scanFrom > start {
		start = c.scanFrom
	}
	inOrder := c.cfg.InOrder
	st, nb, mask := c.rState, c.rNotBefore, c.robMask
	minB := ^uint64(0) // min sound bound over all failed entries
	bounded := true    // every failure so far carried a bound
	for seq := start; seq < c.tailSeq && budget > 0 && remaining > 0; seq++ {
		i := seq & mask
		if st[i] == stExec {
			continue
		}
		remaining--
		if nb[i] > now {
			// Proven unable to make progress yet (operands, fetch, or a
			// pending address still in flight). Cached bounds are only ever
			// written where the full check's failure would have hit the
			// same in-order stop below.
			if nb[i] < minB {
				minB = nb[i]
			}
			if inOrder {
				c.issueQuiet = minB
				return
			}
			continue
		}
		switch c.rOp[i] {
		case trace.OpIntALU, trace.OpFPALU:
			if b, blocked := c.readyBound(i); b > now || blocked {
				if b > now {
					nb[i] = b
					if b < minB {
						minB = b
					}
					if inOrder {
						c.issueQuiet = minB
						return
					}
				} else {
					bounded = false
					if inOrder {
						return
					}
				}
				continue
			}
			lat, free := c.cfg.IntLatency, &intFree
			if c.rOp[i] == trace.OpFPALU {
				lat, free = c.cfg.FPLatency, &fpFree
			}
			if *free == 0 {
				bounded = false
				if inOrder {
					return
				}
				continue
			}
			*free--
			budget--
			st[i] = stExec
			c.waiting--
			c.rComplete[i] = now + uint64(lat)

		case trace.OpBranch, trace.OpJump, trace.OpCall, trace.OpReturn:
			if b, blocked := c.readyBound(i); b > now || blocked {
				if b > now {
					nb[i] = b
					if b < minB {
						minB = b
					}
					if inOrder {
						c.issueQuiet = minB
						return
					}
				} else {
					bounded = false
					if inOrder {
						return
					}
				}
				continue
			}
			if intFree == 0 {
				bounded = false
				if inOrder {
					return
				}
				continue
			}
			intFree--
			budget--
			st[i] = stExec
			c.waiting--
			c.rComplete[i] = now + uint64(c.cfg.IntLatency)

		case trace.OpLoad:
			// Mirrors issueLoad under RC with no fence in flight: the
			// consistency decision is always "allowed", and an issued load
			// is stExec (skipped above).
			if c.rAddrDone[i] == 0 {
				b, blocked := c.readyBound(i)
				if b > now || blocked {
					if b > now {
						nb[i] = b
						if b < minB {
							minB = b
						}
						if inOrder {
							c.issueQuiet = minB
							return
						}
					} else {
						bounded = false
						if inOrder {
							return
						}
					}
					continue
				}
				if agFree == 0 {
					bounded = false
					if inOrder {
						return
					}
					continue
				}
				agFree--
				budget--
				c.rAddrDone[i] = now + 1
				// Address generation is in flight; the entry becomes a
				// memory-issue candidate next cycle, bounding the horizon.
				if now+1 < minB {
					minB = now + 1
				}
				continue
			}
			if c.rAddrDone[i] > now {
				nb[i] = c.rAddrDone[i]
				if c.rAddrDone[i] < minB {
					minB = c.rAddrDone[i]
				}
				if inOrder {
					c.issueQuiet = minB
					return
				}
				continue
			}
			if c.cfg.DebugChecks {
				c.dbgCheckLoadBind(now, c.rIn[i].PC)
			}
			res := c.mem.DataRead(c.rIn[i].Addr, c.rIn[i].PC, now, c.inCS())
			c.rFlags[i] |= fIssuedMem
			st[i] = stExec
			c.waiting--
			c.rComplete[i] = res.Done
			c.rClass[i] = res.Class
			if res.TLBMiss {
				c.rFlags[i] |= fTLBMiss
			}
			c.rLineAddr[i] = res.LineAddr
			if c.ctx.tx != nil {
				c.trackRead(res.LineAddr)
			}

		case trace.OpStore:
			if b, blocked := c.readyBound(i); b > now || blocked {
				if b > now {
					nb[i] = b
					if b < minB {
						minB = b
					}
					if inOrder {
						c.issueQuiet = minB
						return
					}
				} else {
					bounded = false
					if inOrder {
						return
					}
				}
				continue
			}
			if c.rAddrDone[i] == 0 {
				if agFree == 0 {
					bounded = false
					if inOrder {
						return
					}
					continue
				}
				agFree--
				budget--
				c.rAddrDone[i] = now + 1
				if now+1 < minB {
					minB = now + 1
				}
				continue
			}
			if c.rAddrDone[i] <= now {
				st[i] = stExec
				c.waiting--
				c.rComplete[i] = c.rAddrDone[i]
				if c.cfg.ConsistencyOpts != config.ImplPlain && c.rFlags[i]&fPrefetch == 0 {
					c.mem.Prefetch(c.rIn[i].Addr, c.rIn[i].PC, now, true, c.inCS())
					c.rFlags[i] |= fPrefetch
				}
			} else if c.rAddrDone[i] < minB {
				// Pending store address: a sound bound for the horizon, but
				// deliberately not cached in rNotBefore and no in-order stop
				// (the generic scan lets younger entries proceed past it).
				minB = c.rAddrDone[i]
			}
		}
	}

	// remaining > 0 means issue width ran out with waiting entries never
	// examined — no claim about them is possible.
	if bounded && remaining == 0 && minB > now && minB != ^uint64(0) {
		c.issueQuiet = minB
	}

	if c.scanFrom < c.headSeq {
		c.scanFrom = c.headSeq
	}
	for c.scanFrom < c.tailSeq && st[c.scanFrom&mask] == stExec {
		c.scanFrom++
	}
}

// issueLoad handles the two-phase (address generation, then cache access)
// execution of a load under the configured consistency model. It returns
// true when the load made progress this cycle. i is the load's ring index.
func (c *Core) issueLoad(i, now uint64, agFree, budget *int,
	olderLoadUnperformed, olderMemUnperformed, olderFence bool) bool {

	if c.rFlags[i]&fIssuedMem != 0 {
		return true
	}
	if c.rFetchDone[i] > now {
		return false
	}
	if c.rAddrDone[i] == 0 {
		if !c.srcsReady(i, now) || *agFree == 0 {
			return false
		}
		*agFree--
		*budget--
		c.rAddrDone[i] = now + 1
		return true
	}
	if c.rAddrDone[i] > now {
		return false
	}

	allowed := false
	switch c.cfg.Consistency {
	case config.RC:
		allowed = !olderFence
	case config.PC:
		allowed = !olderLoadUnperformed && !olderFence
	case config.SC:
		allowed = !olderMemUnperformed && !olderFence
	}
	spec := false
	if !allowed {
		switch c.cfg.ConsistencyOpts {
		case config.ImplPlain:
			return false
		case config.ImplPrefetch:
			if c.rFlags[i]&fPrefetch == 0 {
				c.mem.Prefetch(c.rIn[i].Addr, c.rIn[i].PC, now, false, c.inCS())
				c.rFlags[i] |= fPrefetch
			}
			return false
		case config.ImplSpeculative:
			spec = true
		}
	}
	if c.cfg.DebugChecks && !spec {
		c.dbgCheckLoadBind(now, c.rIn[i].PC)
	}
	res := c.mem.DataRead(c.rIn[i].Addr, c.rIn[i].PC, now, c.inCS())
	c.rFlags[i] |= fIssuedMem
	c.rState[i] = stExec
	c.waiting--
	c.rComplete[i] = res.Done
	c.rClass[i] = res.Class
	if res.TLBMiss {
		c.rFlags[i] |= fTLBMiss
	}
	c.rLineAddr[i] = res.LineAddr // physical, as delivered by invalidation hooks
	if spec {
		c.rFlags[i] |= fSpecLoad
		c.SpecLoads++
	}
	if c.ctx.tx != nil {
		c.trackRead(res.LineAddr)
	}
	return true
}

func (c *Core) inCS() bool { return c.ctx != nil && c.ctx.csDepth > 0 }

// ---------------------------------------------------------------- retire --

func (c *Core) retireStage(now uint64) {
	width := c.cfg.IssueWidth
	retired := 0
	var stallCat stats.Category
	stalled := false
	for retired < width && c.robLen() > 0 {
		seq := c.headSeq
		i := seq & c.robMask
		ok, cat := c.tryRetire(i, now)
		if !ok {
			stallCat, stalled = cat, true
			break
		}
		op := c.rOp[i]
		if op.IsMem() {
			c.memInROB--
		}
		switch op {
		case trace.OpMemBar, trace.OpLockAcquire:
			c.fenceCount--
		}
		if op.IsBranch() {
			c.unresolved--
			if seq == c.blockBranch {
				c.resumeAt = c.rComplete[i] + uint64(c.cfg.BranchRestart)
				c.blockBranch = 0
			}
		}
		c.ctx.Retired++
		c.Retired++
		if c.trc != nil {
			c.trc.RetireSlot(c.id, c.rIn[i].PC, 1/float64(width))
		}
		c.headSeq++
		retired++
	}
	c.Bk[stats.Busy] += float64(retired) / float64(width)
	if retired == width {
		return
	}
	frac := float64(width-retired) / float64(width)
	stallPC := uint64(0)
	if stalled {
		stallPC = c.rIn[c.headSeq&c.robMask].PC
	} else {
		// Window empty: charge the fetch-side reason (PC 0 marks the
		// frontend in the stall profile).
		if c.pendingSys || c.streamEnded {
			return // transition cycles; the scheduler accounts switches
		}
		if c.stallInstr {
			stallCat = stats.Instr
		} else {
			stallCat = stats.CPUStall
		}
	}
	c.Bk[stallCat] += frac
	if c.trc != nil {
		c.trc.StallSlot(c.id, c.ctx.ID, stallPC, stallCat, frac, now)
	}
}

// readCategory maps a load's service point to its stall category.
func readCategory(class memsys.Class, tlbMiss bool) stats.Category {
	if tlbMiss && class == memsys.ClassL1 {
		return stats.ReadDTLB
	}
	switch class {
	case memsys.ClassL1:
		return stats.ReadL1
	case memsys.ClassL2:
		return stats.ReadL2
	case memsys.ClassLocal:
		return stats.ReadLocal
	case memsys.ClassRemote:
		return stats.ReadRemote
	case memsys.ClassRemoteDirty:
		return stats.ReadDirty
	}
	return stats.ReadL1
}

// tryRetire attempts to retire the head entry (ring index i), returning
// the stall category on failure.
func (c *Core) tryRetire(i, now uint64) (bool, stats.Category) {
	switch c.rOp[i] {
	case trace.OpLoad:
		if c.rState[i] != stExec {
			if c.rFetchDone[i] > now {
				return false, stats.Instr
			}
			return false, stats.ReadL1 // address generation / dependence
		}
		if c.rFlags[i]&fViolated != 0 {
			// Speculative-load ordering violation: squash and re-execute
			// from this load (recovery as for branch mispredictions).
			c.rollback(c.headSeq, now)
			c.Violations++
			return false, stats.ReadL1
		}
		if c.rComplete[i] > now {
			return false, readCategory(c.rClass[i], c.rFlags[i]&fTLBMiss != 0)
		}
		return true, 0

	case trace.OpStore:
		if c.rState[i] != stExec {
			if c.rFetchDone[i] > now {
				return false, stats.Instr
			}
			return false, stats.ReadL1 // address generation / dependence
		}
		if c.cfg.Consistency == config.SC {
			// SC: the store performs at the head of the window and blocks
			// retirement until globally performed.
			if c.rFlags[i]&fIssuedMem == 0 {
				res := c.mem.DataWrite(c.rIn[i].Addr, c.rIn[i].PC, now, c.inCS())
				c.rFlags[i] |= fIssuedMem
				c.rComplete[i] = res.Done
				c.rClass[i] = res.Class
				if c.cfg.DebugChecks {
					c.dbgCheckStorePerform(c.rComplete[i], c.rIn[i].PC)
				}
				if c.ctx.tx != nil {
					c.trackWrite(res.LineAddr)
				}
			}
			if c.rComplete[i] > now {
				return false, stats.Write
			}
			return true, 0
		}
		// PC/RC: retire into the write buffer.
		if c.wbufLen() >= c.cfg.WriteBufEntries {
			return false, stats.Write
		}
		c.wbuf = append(c.wbuf, wbufEntry{addr: c.rIn[i].Addr, pc: c.rIn[i].PC, inCS: c.inCS()})
		return true, 0

	case trace.OpLockAcquire:
		if c.rFetchDone[i] > now {
			return false, stats.Instr
		}
		return c.latch.acquire(c, i, now)

	case trace.OpLockRelease:
		if c.rFetchDone[i] > now {
			return false, stats.Instr
		}
		return c.latch.release(c, i, now)

	case trace.OpMemBar:
		// Full barrier: all prior memory operations performed and the
		// write buffer drained (older window entries retired by induction).
		if c.wbufLen() != 0 {
			return false, stats.Sync
		}
		return true, 0

	case trace.OpWriteBar:
		if c.wbufLen() >= c.cfg.WriteBufEntries {
			return false, stats.Sync
		}
		c.wbuf = append(c.wbuf, wbufEntry{isWMB: true})
		return true, 0

	case trace.OpPrefetch, trace.OpPrefetchX:
		if c.rFetchDone[i] > now {
			return false, stats.Instr
		}
		if c.rFlags[i]&fIssuedMem == 0 {
			c.mem.Prefetch(c.rIn[i].Addr, c.rIn[i].PC, now, c.rOp[i] == trace.OpPrefetchX, c.inCS())
			c.rFlags[i] |= fIssuedMem
		}
		return true, 0

	case trace.OpFlush:
		if c.rFetchDone[i] > now {
			return false, stats.Instr
		}
		if c.cfg.Consistency == config.SC {
			// Under SC all prior stores have performed by the time the
			// flush reaches the head; execute directly.
			c.mem.Flush(c.rIn[i].Addr, now)
			return true, 0
		}
		// PC/RC: queue behind the buffered stores so the flush executes
		// once they perform, without stalling retirement (the hint is off
		// the critical path, as in the paper).
		if c.wbufLen() >= c.cfg.WriteBufEntries {
			return false, stats.Write
		}
		c.wbuf = append(c.wbuf, wbufEntry{addr: c.rIn[i].Addr, isFlush: true})
		return true, 0

	default: // ALU and branches
		if c.rState[i] != stExec {
			if c.rFetchDone[i] > now {
				return false, stats.Instr
			}
			return false, stats.CPUStall
		}
		if c.rComplete[i] > now {
			return false, stats.CPUStall
		}
		return true, 0
	}
}

// rollback squashes the window from fromSeq on, resetting the squashed
// instructions for re-execution after a pipeline-restart penalty (the
// recovery mechanism is the one used for branch mispredictions).
func (c *Core) rollback(fromSeq, now uint64) {
	c.Rollbacks++
	if c.scanFrom > fromSeq {
		c.scanFrom = fromSeq
	}
	c.issueQuiet = 0
	width := uint64(c.cfg.IssueWidth)
	for seq := fromSeq; seq < c.tailSeq; seq++ {
		i := seq & c.robMask
		wasExec := c.rState[i] == stExec
		refetch := now + uint64(c.cfg.BranchRestart) + (seq-fromSeq)/width
		c.rFetchDone[i] = maxU(c.rFetchDone[i], refetch)
		c.rState[i] = stWaiting
		c.rFlags[i] &= fMispred
		c.rComplete[i] = 0
		c.rAddrDone[i] = 0
		c.rLineAddr[i] = 0
		c.rClass[i] = 0
		// The squash re-times this entry, so its cached issue bound is
		// stale. Unsquashed entries are unaffected: a consumer is never
		// older than its producer, so none of them consumes a squashed
		// entry's completion time.
		c.rNotBefore[i] = 0
		switch c.rOp[i] {
		case trace.OpMemBar, trace.OpWriteBar, trace.OpLockAcquire, trace.OpLockRelease,
			trace.OpPrefetch, trace.OpPrefetchX, trace.OpFlush:
			c.rState[i] = stExec
			c.rComplete[i] = c.rFetchDone[i]
		}
		if wasExec && c.rState[i] != stExec {
			c.waiting++
		}
	}
}

// ---------------------------------------------------------- write buffer --

// drainWbuf issues and retires buffered stores per the consistency model:
// RC overlaps stores freely between WMB markers; PC issues one store at a
// time in FIFO order.
func (c *Core) drainWbuf(now uint64) {
	if c.wbufLen() == 0 {
		return
	}
	switch c.cfg.Consistency {
	case config.RC:
		allPriorDone := true
		for i := c.wbHead; i < len(c.wbuf); i++ {
			w := &c.wbuf[i]
			if w.isWMB {
				if !allPriorDone {
					break
				}
				continue
			}
			if w.isFlush {
				continue
			}
			if !w.issued {
				res := c.mem.DataWrite(w.addr, w.pc, now, w.inCS)
				w.issued = true
				w.done = res.Done
				if c.ctx.tx != nil {
					c.trackWrite(res.LineAddr)
				}
			}
			if w.done > now {
				allPriorDone = false
			}
		}
	case config.PC:
		for i := c.wbHead; i < len(c.wbuf); i++ {
			w := &c.wbuf[i]
			if w.isWMB || w.isFlush {
				continue
			}
			if !w.issued {
				res := c.mem.DataWrite(w.addr, w.pc, now, w.inCS)
				w.issued = true
				w.done = res.Done
				if c.cfg.DebugChecks {
					c.dbgCheckStoreFIFO(now, w.done, w.pc)
				}
				if c.ctx.tx != nil {
					c.trackWrite(res.LineAddr)
				}
			}
			// Strict FIFO: the next store may not issue until this one
			// has performed.
			if w.done > now {
				break
			}
		}
	}
	// Retire performed entries from the front. A flush at the front has
	// seen all prior stores perform; it executes now, off the critical
	// path.
	for c.wbufLen() > 0 {
		w := c.wbuf[c.wbHead]
		switch {
		case w.isWMB:
		case w.isFlush:
			c.mem.Flush(w.addr, now)
		case w.issued && w.done <= now:
			if w.release {
				c.locks.Release(w.addr, c.ctx.ID, w.done)
				if c.trc != nil {
					c.trc.LockReleased(c.id, c.ctx.ID, w.addr, w.done)
				}
				if w.flushAfter {
					// Hints policy: push the released latch line home.
					c.mem.Flush(w.addr, now)
				}
			}
		default:
			return
		}
		c.wbHead++
	}
	if c.wbHead == len(c.wbuf) {
		// Keep the backing array: the buffer refills constantly and a nil
		// reset made every refill reallocate.
		c.wbuf = c.wbuf[:0]
		c.wbHead = 0
	}
}
