package cpu

import (
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// EventNever is the NextEvent result of a component with no self-generated
// future event: it will only act again after some other component does.
const EventNever = ^uint64(0)

// LockProber is optionally implemented by a LockManager to expose the next
// cycle at which a failing TryAcquire could change outcome. NextTry returns
// now+1 when an attempt could succeed (or anything else might change)
// immediately, the lock's freeAt when it is released but still cooling
// down, and EventNever when it is held by another process — in that case
// the holder's own pipeline events (the releasing store performing) bound
// the wait, so the machine-wide minimum still wakes the spinner in time.
type LockProber interface {
	NextTry(addr uint64, proc int, now uint64) uint64
}

// NextEvent returns a conservative lower bound on the next cycle at which
// this core could do anything beyond constant per-cycle bookkeeping
// (occupancy histogram bumps and repeated identical stall charges). A
// result of now+1 means "cannot prove the next cycle is quiet"; EventNever
// means the core is fully event-free and will only be woken by another
// component. Any cycle t with now < t < NextEvent(now) is provably a
// steady cycle: Tick(t) would mutate no machine state, perform no memory
// access, and charge exactly the same stall category as Tick(NextEvent-1)
// — which is what lets core.Run bulk-apply the span with FastForward.
//
// The bound is deliberately conservative (early wakes are always safe):
// every in-flight completion time is treated as an event even when it
// would enable nothing.
func (c *Core) NextEvent(now uint64) uint64 {
	if c.ctx == nil {
		return EventNever
	}
	w := c.wbufNextEvent(now)
	if w <= now+1 {
		return now + 1
	}
	if c.robLen() > 0 {
		if t := c.retireNextEvent(now); t < w {
			w = t
		}
		if w <= now+1 {
			return now + 1
		}
		if t := c.robNextEvent(now); t < w {
			w = t
		}
		if w <= now+1 {
			return now + 1
		}
	}
	if t := c.dispatchNextEvent(now); t < w {
		w = t
	}
	if w <= now+1 {
		return now + 1
	}
	if t := c.fetchNextEvent(now); t < w {
		w = t
	}
	if w <= now+1 {
		return now + 1
	}
	return w
}

// wbufNextEvent bounds the next cycle drainWbuf would issue, retire, or
// unblock anything.
func (c *Core) wbufNextEvent(now uint64) uint64 {
	if c.wbufLen() == 0 {
		return EventNever
	}
	front := &c.wbuf[c.wbHead]
	if front.isWMB || front.isFlush || !front.issued {
		// Barriers and flushes at the front pop (and flushes access memory)
		// on the very next tick; an unissued front store would issue.
		return now + 1
	}
	w := front.done
	if w <= now {
		return now + 1
	}
	if c.cfg.Consistency == config.RC {
		// Stores behind a blocking WMB issue the cycle the barrier's
		// predecessors have all performed.
		var maxDone uint64
		for i := c.wbHead; i < len(c.wbuf); i++ {
			e := &c.wbuf[i]
			if e.isWMB {
				if maxDone > now {
					if maxDone < w {
						w = maxDone
					}
					break
				}
				continue
			}
			if e.isFlush {
				continue
			}
			if !e.issued {
				return now + 1
			}
			if e.done > maxDone {
				maxDone = e.done
			}
		}
	}
	// PC: strict FIFO — the next store issues when the front one performs,
	// which is already w. SC never buffers plain stores.
	return w
}

// retireNextEvent bounds the next cycle tryRetire on the head entry would
// either succeed, mutate state, or change its failure category. EventNever
// means head progress is gated purely on other mirrors (write-buffer
// drain, an older producer's issue event).
func (c *Core) retireNextEvent(now uint64) uint64 {
	i := c.headSeq & c.robMask
	switch c.rOp[i] {
	case trace.OpLoad:
		if c.rState[i] != stExec {
			if c.rFetchDone[i] > now {
				return c.rFetchDone[i] // failure category flips Instr -> ReadL1
			}
			return EventNever // steady ReadL1; progress via the issue mirror
		}
		if c.rFlags[i]&fViolated != 0 {
			return now + 1 // rollback fires on the next tick
		}
		if c.rComplete[i] > now {
			return c.rComplete[i]
		}
		return now + 1
	case trace.OpStore:
		if c.rState[i] != stExec {
			if c.rFetchDone[i] > now {
				return c.rFetchDone[i]
			}
			return EventNever
		}
		if c.cfg.Consistency == config.SC {
			if c.rFlags[i]&fIssuedMem == 0 {
				return now + 1 // would perform the store at the head
			}
			if c.rComplete[i] > now {
				return c.rComplete[i]
			}
			return now + 1
		}
		if c.wbufLen() >= c.cfg.WriteBufEntries {
			return EventNever // gated on the write buffer draining
		}
		return now + 1
	case trace.OpLockAcquire:
		if c.rFetchDone[i] > now {
			return c.rFetchDone[i]
		}
		if !c.latchMirrored {
			// The HTM policy's per-cycle resolution has no mirror; a lock op
			// at the head simply disables fast-forward (conservative bound).
			return now + 1
		}
		if c.rFlags[i]&fIssuedMem == 0 {
			// Spinning. Steady only once the first failing TryAcquire has
			// run (waited set: LockWaits and the tracer's contention window
			// are already open); after that every spin cycle repeats the
			// same counter bumps, which FastForward applies in bulk.
			if c.rFlags[i]&fWaited == 0 || c.prober == nil {
				return now + 1
			}
			return c.prober.NextTry(c.rIn[i].Addr, c.ctx.ID, now)
		}
		if c.rComplete[i] > now {
			return c.rComplete[i]
		}
		return now + 1
	case trace.OpLockRelease:
		if c.rFetchDone[i] > now {
			return c.rFetchDone[i]
		}
		if !c.latchMirrored {
			return now + 1
		}
		if c.cfg.Consistency == config.SC {
			if c.rFlags[i]&fIssuedMem == 0 {
				return now + 1
			}
			if c.rComplete[i] > now {
				return c.rComplete[i]
			}
			return now + 1
		}
		if c.wbufLen() >= c.cfg.WriteBufEntries {
			return EventNever
		}
		return now + 1
	case trace.OpMemBar:
		if c.wbufLen() != 0 {
			return EventNever // gated on the write buffer draining
		}
		return now + 1
	case trace.OpWriteBar:
		if c.wbufLen() >= c.cfg.WriteBufEntries {
			return EventNever
		}
		return now + 1
	case trace.OpPrefetch, trace.OpPrefetchX:
		if c.rFetchDone[i] > now {
			return c.rFetchDone[i]
		}
		return now + 1
	case trace.OpFlush:
		if c.rFetchDone[i] > now {
			return c.rFetchDone[i]
		}
		if c.cfg.Consistency != config.SC && c.wbufLen() >= c.cfg.WriteBufEntries {
			return EventNever
		}
		return now + 1
	default: // ALU and branches
		if c.rState[i] != stExec {
			if c.rFetchDone[i] > now {
				return c.rFetchDone[i]
			}
			return EventNever // steady CPUStall; progress via the issue mirror
		}
		if c.rComplete[i] > now {
			return c.rComplete[i]
		}
		return now + 1
	}
}

// robNextEvent bounds the next cycle the issue stage would start any
// instruction, mirroring issueStage's program-order walk and its
// consistency-ordering flags. Every in-flight completion is also an event:
// completions flip ordering flags, wake consumers, resolve branches and
// enable retirement.
func (c *Core) robNextEvent(now uint64) uint64 {
	w := uint64(EventNever)
	olderLoadUnperformed := false
	olderMemUnperformed := false
	olderFence := false
	st, mask := c.rState, c.robMask
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		i := seq & mask
		if st[i] == stExec {
			if t := c.rComplete[i]; t > now && t < w {
				w = t
			}
		} else {
			if t := c.entryIssueEvent(i, now, olderLoadUnperformed, olderMemUnperformed, olderFence); t < w {
				w = t
			}
			if c.cfg.InOrder {
				// In-order issue stops at the first non-executing entry;
				// younger entries cannot act before it does.
				break
			}
		}
		if w <= now+1 {
			return now + 1
		}
		switch c.rOp[i] {
		case trace.OpLoad:
			if !(c.rFlags[i]&fIssuedMem != 0 && c.rComplete[i] <= now) {
				olderLoadUnperformed = true
				olderMemUnperformed = true
			}
		case trace.OpStore:
			olderMemUnperformed = true
		case trace.OpMemBar, trace.OpLockAcquire:
			olderFence = true
		}
	}
	return w
}

// entryIssueEvent bounds when a not-yet-executing entry (ring index i)
// could make issue progress. EventNever means it is gated on another
// entry's event (a non-executing producer, or ordering flags that only
// change when an older instruction completes or retires — both already
// candidate events).
func (c *Core) entryIssueEvent(i, now uint64,
	olderLoadUnperformed, olderMemUnperformed, olderFence bool) uint64 {

	ready := uint64(0) // cycle both source operands are available
	if p := c.rProd1[i]; p != noProd && c.live(p) {
		j := p & c.robMask
		if c.rState[j] != stExec {
			return EventNever
		}
		if c.rComplete[j] > ready {
			ready = c.rComplete[j]
		}
	}
	if p := c.rProd2[i]; p != noProd && c.live(p) {
		j := p & c.robMask
		if c.rState[j] != stExec {
			return EventNever
		}
		if c.rComplete[j] > ready {
			ready = c.rComplete[j]
		}
	}

	switch c.rOp[i] {
	case trace.OpLoad:
		if c.rFlags[i]&fIssuedMem != 0 {
			return EventNever // outstanding access; complete handled by caller
		}
		if c.rAddrDone[i] == 0 {
			t := maxU(c.rFetchDone[i], ready)
			return maxU(t, now+1) // address generation
		}
		if c.rAddrDone[i] > now {
			return c.rAddrDone[i] // cache access (or consistency decision)
		}
		allowed := false
		switch c.cfg.Consistency {
		case config.RC:
			allowed = !olderFence
		case config.PC:
			allowed = !olderLoadUnperformed && !olderFence
		case config.SC:
			allowed = !olderMemUnperformed && !olderFence
		}
		if allowed {
			return now + 1 // ready to access the cache
		}
		switch c.cfg.ConsistencyOpts {
		case config.ImplPrefetch:
			if c.rFlags[i]&fPrefetch == 0 {
				return now + 1 // would issue the consistency prefetch
			}
			return EventNever
		case config.ImplSpeculative:
			return now + 1 // would issue speculatively
		}
		return EventNever // plain: unblocks only via older entries' events
	case trace.OpStore:
		if c.rAddrDone[i] == 0 {
			t := maxU(c.rFetchDone[i], ready)
			return maxU(t, now+1)
		}
		if c.rAddrDone[i] > now {
			return c.rAddrDone[i] // executes (and may consistency-prefetch)
		}
		return now + 1
	default:
		// ALU and branches; fences/hints are stExec from dispatch and
		// never reach here.
		t := maxU(c.rFetchDone[i], ready)
		return maxU(t, now+1)
	}
}

// dispatchNextEvent bounds the next cycle the dispatch stage would move an
// instruction into the window.
func (c *Core) dispatchNextEvent(now uint64) uint64 {
	if c.fqHead >= len(c.fetchQ) {
		return EventNever
	}
	if c.robLen() >= c.cfg.WindowSize {
		return EventNever // gated on retirement freeing a window slot
	}
	fe := &c.fetchQ[c.fqHead]
	if fe.in.Op.IsMem() && c.memInROB >= c.cfg.MemQueueSize {
		return EventNever // gated on a memory op retiring
	}
	return maxU(fe.fetchDone, now+1)
}

// fetchNextEvent bounds the next cycle the fetch stage would consume the
// stream, redirect, or touch the instruction cache.
func (c *Core) fetchNextEvent(now uint64) uint64 {
	if c.pendingSys || c.streamEnded {
		return EventNever // drained cores switch via the scheduler's mirror
	}
	if c.blockBranch != 0 {
		if !c.live(c.blockBranch) {
			return now + 1 // cleared (and fetch resumes) next tick
		}
		i := c.blockBranch & c.robMask
		if c.rState[i] != stExec {
			return EventNever // gated on the branch's own issue event
		}
		if c.rComplete[i] > now {
			return c.rComplete[i] // redirect computed when the branch resolves
		}
		return now + 1
	}
	if now < c.resumeAt {
		return c.resumeAt
	}
	if now < c.fetchReady {
		return c.fetchReady
	}
	if len(c.fetchQ)-c.fqHead >= c.cfg.FetchBufferEntries {
		return EventNever // gated on dispatch draining the fetch queue
	}
	if c.unresolved >= c.cfg.MaxSpeculatedBr {
		return EventNever // gated on a speculated branch retiring
	}
	return now + 1 // fetch is live: it consumes the stream every cycle
}

// steadyStall mirrors tryRetire's failure path without side effects,
// returning the stall category and PC every cycle of a steady span is
// charged with, plus whether the head is spinning on a lock (per-cycle
// LockTries/LockSpins bumps). t is any cycle inside the span; NextEvent
// guarantees the answer is constant across it.
func (c *Core) steadyStall(t uint64) (stats.Category, uint64, bool) {
	if c.robLen() == 0 {
		// Empty window: the frontend is charged (PC 0 in the profile).
		if c.stallInstr {
			return stats.Instr, 0, false
		}
		return stats.CPUStall, 0, false
	}
	i := c.headSeq & c.robMask
	pc := c.rIn[i].PC
	switch c.rOp[i] {
	case trace.OpLoad:
		if c.rState[i] != stExec {
			if c.rFetchDone[i] > t {
				return stats.Instr, pc, false
			}
			return stats.ReadL1, pc, false
		}
		return readCategory(c.rClass[i], c.rFlags[i]&fTLBMiss != 0), pc, false
	case trace.OpStore:
		if c.rState[i] != stExec {
			if c.rFetchDone[i] > t {
				return stats.Instr, pc, false
			}
			return stats.ReadL1, pc, false
		}
		return stats.Write, pc, false
	case trace.OpLockAcquire:
		if c.rFetchDone[i] > t {
			return stats.Instr, pc, false
		}
		return stats.Sync, pc, c.rFlags[i]&fIssuedMem == 0
	case trace.OpLockRelease:
		if c.rFetchDone[i] > t {
			return stats.Instr, pc, false
		}
		if c.cfg.Consistency == config.SC {
			return stats.Sync, pc, false
		}
		return stats.Write, pc, false
	case trace.OpMemBar, trace.OpWriteBar:
		return stats.Sync, pc, false
	case trace.OpPrefetch, trace.OpPrefetchX:
		return stats.Instr, pc, false
	case trace.OpFlush:
		if c.rFetchDone[i] > t {
			return stats.Instr, pc, false
		}
		return stats.Write, pc, false // PC/RC flush behind a full buffer
	default:
		if c.rState[i] != stExec && c.rFetchDone[i] > t {
			return stats.Instr, pc, false
		}
		return stats.CPUStall, pc, false
	}
}

// fetchStallWrite mirrors the stallInstr assignment fetchStage performs on
// every cycle of a steady span (fetch gated in the same state throughout).
// ok is false when fetchStage would leave the flag untouched. The write is
// the one piece of state a gated fetch stage still mutates per cycle; it
// feeds the next cycle's empty-window charge category (Instr vs CPUStall),
// so FastForward must replay it.
func (c *Core) fetchStallWrite(now uint64) (val, ok bool) {
	if c.pendingSys || c.streamEnded {
		return false, false
	}
	if c.blockBranch != 0 {
		// Unresolved across the span (resolution is a NextEvent candidate).
		return false, true
	}
	if now < c.resumeAt {
		return false, true
	}
	if now < c.fetchReady {
		return true, true
	}
	if len(c.fetchQ)-c.fqHead >= c.cfg.FetchBufferEntries {
		return false, false
	}
	if c.unresolved >= c.cfg.MaxSpeculatedBr {
		return false, true
	}
	return false, false // live fetch never yields a steady span
}

// FastForward bulk-applies the per-cycle bookkeeping of the steady cycles
// [from, to] (inclusive), which core.Run has proven event-free via
// NextEvent: the occupancy histogram bump, the full-width stall charge,
// the spin counters, the gated fetch stage's stallInstr write, and the
// tracer's coalesced stall span — each bit-identical to ticking the core
// through every cycle.
func (c *Core) FastForward(from, to uint64) {
	if c.ctx == nil {
		return
	}
	c.nowCycle = to
	n := to - from + 1
	if rl := c.robLen(); rl == 0 {
		c.ROBOcc[0] += n
	} else if b := (4*rl + c.cfg.WindowSize - 1) / c.cfg.WindowSize; b > 4 {
		c.ROBOcc[4] += n
	} else {
		c.ROBOcc[b] += n
	}
	if c.robLen() == 0 && (c.pendingSys || c.streamEnded) {
		return // drain-transition cycles: retireStage charges nothing
	}
	// Zero retires per steady cycle: Bk[Busy] += 0 is skipped (bitwise
	// no-op) and the full width is charged to the head stall each cycle.
	cat, pc, spinning := c.steadyStall(from)
	if spinning {
		c.LockTries += n
		c.LockSpins += n
		if c.trc != nil {
			// Re-opens the contention window if the warm-up reset cleared
			// it (otherwise a no-op, exactly like the per-cycle calls).
			c.trc.LockSpin(c.id, c.ctx.ID, pc, c.rIn[c.headSeq&c.robMask].Addr, from)
		}
	}
	if wv, ok := c.fetchStallWrite(from); ok && wv != c.stallInstr {
		c.stallInstr = wv
		if c.robLen() == 0 {
			// Retire runs before fetch: the first span cycle is charged
			// under the pre-write flag, the rest under the new one.
			c.Bk[cat] += 1
			if c.trc != nil {
				c.trc.StallRun(c.id, c.ctx.ID, pc, cat, 1, from, from)
			}
			if n == 1 {
				return
			}
			cat2, pc2, _ := c.steadyStall(from + 1)
			stats.AddRepeat(&c.Bk[cat2], 1, n-1)
			if c.trc != nil {
				c.trc.StallRun(c.id, c.ctx.ID, pc2, cat2, 1, from+1, to)
			}
			return
		}
	}
	stats.AddRepeat(&c.Bk[cat], 1, n)
	if c.trc != nil {
		c.trc.StallRun(c.id, c.ctx.ID, pc, cat, 1, from, to)
	}
}
